// Interval time series over telemetry snapshots: the longitudinal half of
// the GWP-style pipeline.
//
// The paper's methodology is continuous fleet telemetry — per-machine
// metrics sampled over days and folded into fleet-wide series and CDFs —
// not end-of-run snapshots. IntervalSeries adds that time dimension on the
// *logical* clock: at each sim-interval boundary a process captures the
// delta of every counter and histogram bucket since the previous capture,
// plus a point sample of every gauge. Because capture times are simulated
// (never wall clock) and merges align intervals by index, the series a
// fleet run produces is byte-identical for any --threads value.
//
// Deltas telescope: the sum of a process's interval deltas equals its
// end-of-run snapshot exactly (asserted by tests), so streaming fleet
// aggregation loses nothing relative to buffering every ProcessResult.
// Named QuantileSketch instances ride along for distributions (footprint,
// per-interval alloc latency) that need fleet percentiles without
// per-machine retention.

#ifndef WSC_TELEMETRY_TIMESERIES_H_
#define WSC_TELEMETRY_TIMESERIES_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/registry.h"
#include "telemetry/sketch.h"

namespace wsc::telemetry {

class IntervalSeries {
 public:
  // Bucketwise histogram delta for one interval.
  struct HistogramDelta {
    std::vector<uint64_t> buckets;
    uint64_t count = 0;
    double sum = 0;

    bool operator==(const HistogramDelta&) const = default;
  };

  // One captured interval. Keys are fully qualified "component/name".
  // std::map keys keep serialization and merges deterministically ordered.
  struct Interval {
    uint64_t index = 0;    // strictly increasing; gaps allowed
    double t_seconds = 0;  // logical time of the capture
    std::map<std::string, uint64_t> counters;  // deltas since last capture
    std::map<std::string, double> gauges;      // point samples (merge: sum)
    std::map<std::string, HistogramDelta> histograms;

    bool operator==(const Interval&) const = default;
  };

  // Captures the delta between `snapshot` and the previously captured
  // snapshot as interval `index` at logical time `t_seconds`. `index` must
  // be strictly greater than the last captured index. Every metric in the
  // snapshot appears in the interval (zero deltas included), so the series
  // is fixed-width once the metric set stabilizes.
  void Capture(uint64_t index, double t_seconds, const Snapshot& snapshot);

  // Named sketch, created on first use. Sketches merge alongside intervals
  // in MergeFrom.
  QuantileSketch& Sketch(std::string_view name);

  // Aligns `other`'s intervals by index: matching indices sum counter
  // deltas, gauges, and histogram buckets (the fleet aggregate of a level
  // metric is the sum over processes, matching Snapshot::MergeFrom);
  // intervals present on one side only are kept as-is. Associative, and
  // exact: no rebinning, no averaging.
  void MergeFrom(const IntervalSeries& other);

  const std::vector<Interval>& intervals() const { return intervals_; }
  const std::map<std::string, QuantileSketch>& sketches() const {
    return sketches_;
  }
  const std::map<std::string, std::vector<double>>& histogram_bounds() const {
    return hist_bounds_;
  }

  bool empty() const { return intervals_.empty() && sketches_.empty(); }

  // Sum of a counter's deltas over every interval — equals the counter's
  // value in the end-of-run snapshot (the telescoping property tests pin).
  uint64_t TotalCounter(std::string_view key) const;

  // NDJSON export: one {"kind":"timeseries",...} object per interval
  // (sorted "counters"/"gauges"/"histograms" maps) followed by one
  // {"kind":"sketch",...} object per named sketch. Every line carries
  // schema_version/bench; `arm` is added when non-empty (A/B runs). No
  // trailing newline on the last line is *not* guaranteed — each line ends
  // in '\n' so files concatenate.
  std::string RenderNdjson(std::string_view bench, std::string_view arm) const;

  bool operator==(const IntervalSeries&) const = default;

 private:
  Snapshot last_;
  std::vector<Interval> intervals_;
  std::map<std::string, std::vector<double>> hist_bounds_;
  std::map<std::string, QuantileSketch> sketches_;
};

}  // namespace wsc::telemetry

#endif  // WSC_TELEMETRY_TIMESERIES_H_
