#include "telemetry/timeseries.h"

#include <algorithm>

#include "common/logging.h"
#include "telemetry/statsz.h"

namespace wsc::telemetry {

void IntervalSeries::Capture(uint64_t index, double t_seconds,
                             const Snapshot& snapshot) {
  WSC_CHECK(intervals_.empty() || index > intervals_.back().index);
  Interval interval;
  interval.index = index;
  interval.t_seconds = t_seconds;
  for (const MetricSample& s : snapshot.samples) {
    const std::string key = s.Key();
    const MetricSample* prev = last_.Find(s.component, s.name);
    switch (s.kind) {
      case MetricKind::kCounter: {
        uint64_t before = prev != nullptr ? prev->counter : 0;
        // Counters are monotone by contract; a regression here would mean
        // an exporter republished less than it had, which would silently
        // corrupt fleet sums — clamp, but loudly in debug builds.
        WSC_DCHECK_GE(s.counter, before);
        interval.counters[key] = s.counter >= before ? s.counter - before : 0;
        break;
      }
      case MetricKind::kGauge:
        interval.gauges[key] = s.gauge;
        break;
      case MetricKind::kHistogram: {
        auto [it, inserted] = hist_bounds_.try_emplace(key, s.bounds);
        WSC_CHECK(it->second == s.bounds);  // fixed-bounds contract
        HistogramDelta delta;
        delta.buckets.assign(s.buckets.size(), 0);
        delta.count = s.hist_count;
        delta.sum = s.hist_sum;
        for (size_t b = 0; b < s.buckets.size(); ++b) {
          delta.buckets[b] = s.buckets[b];
        }
        if (prev != nullptr) {
          WSC_CHECK_EQ(prev->buckets.size(), delta.buckets.size());
          for (size_t b = 0; b < delta.buckets.size(); ++b) {
            WSC_DCHECK_GE(delta.buckets[b], prev->buckets[b]);
            delta.buckets[b] -= std::min(prev->buckets[b], delta.buckets[b]);
          }
          delta.count -= std::min(prev->hist_count, delta.count);
          delta.sum -= prev->hist_sum;
        }
        interval.histograms[key] = std::move(delta);
        break;
      }
    }
  }
  intervals_.push_back(std::move(interval));
  last_ = snapshot;
}

QuantileSketch& IntervalSeries::Sketch(std::string_view name) {
  return sketches_[std::string(name)];
}

void IntervalSeries::MergeFrom(const IntervalSeries& other) {
  // Bounds tables must agree where they overlap (fixed-bounds contract).
  for (const auto& [key, bounds] : other.hist_bounds_) {
    auto [it, inserted] = hist_bounds_.try_emplace(key, bounds);
    WSC_CHECK(it->second == bounds);
  }

  // Merge interval lists by index (both sorted ascending).
  std::vector<Interval> merged;
  merged.reserve(intervals_.size() + other.intervals_.size());
  size_t a = 0, b = 0;
  while (a < intervals_.size() || b < other.intervals_.size()) {
    if (b >= other.intervals_.size() ||
        (a < intervals_.size() &&
         intervals_[a].index < other.intervals_[b].index)) {
      merged.push_back(std::move(intervals_[a++]));
      continue;
    }
    if (a >= intervals_.size() ||
        other.intervals_[b].index < intervals_[a].index) {
      merged.push_back(other.intervals_[b++]);
      continue;
    }
    // Same index: sum deltas and gauges elementwise.
    Interval out = std::move(intervals_[a++]);
    const Interval& in = other.intervals_[b++];
    // max keeps t deterministic and associative when drain captures of
    // different processes land on the same index at different times.
    out.t_seconds = std::max(out.t_seconds, in.t_seconds);
    for (const auto& [key, delta] : in.counters) out.counters[key] += delta;
    for (const auto& [key, value] : in.gauges) out.gauges[key] += value;
    for (const auto& [key, delta] : in.histograms) {
      auto [it, inserted] = out.histograms.try_emplace(key, delta);
      if (!inserted) {
        HistogramDelta& mine = it->second;
        WSC_CHECK_EQ(mine.buckets.size(), delta.buckets.size());
        for (size_t i = 0; i < mine.buckets.size(); ++i) {
          mine.buckets[i] += delta.buckets[i];
        }
        mine.count += delta.count;
        mine.sum += delta.sum;
      }
    }
    merged.push_back(std::move(out));
  }
  intervals_ = std::move(merged);

  for (const auto& [name, sketch] : other.sketches_) {
    sketches_[name].MergeFrom(sketch);
  }
}

uint64_t IntervalSeries::TotalCounter(std::string_view key) const {
  uint64_t total = 0;
  for (const Interval& interval : intervals_) {
    auto it = interval.counters.find(std::string(key));
    if (it != interval.counters.end()) total += it->second;
  }
  return total;
}

std::string IntervalSeries::RenderNdjson(std::string_view bench,
                                         std::string_view arm) const {
  std::string out;
  auto open_line = [&](const char* kind) {
    out += "{\"schema_version\":2,\"bench\":\"";
    AppendJsonEscaped(out, bench);
    out += "\",\"kind\":\"";
    out += kind;
    out += "\"";
    if (!arm.empty()) {
      out += ",\"arm\":\"";
      AppendJsonEscaped(out, arm);
      out += "\"";
    }
  };

  for (const Interval& interval : intervals_) {
    open_line("timeseries");
    out += ",\"interval\":" + std::to_string(interval.index);
    out += ",\"t_seconds\":" + FormatJsonNumber(interval.t_seconds);
    out += ",\"counters\":{";
    bool first = true;
    for (const auto& [key, delta] : interval.counters) {
      if (!first) out += ",";
      first = false;
      out += "\"";
      AppendJsonEscaped(out, key);
      out += "\":" + std::to_string(delta);
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [key, value] : interval.gauges) {
      if (!first) out += ",";
      first = false;
      out += "\"";
      AppendJsonEscaped(out, key);
      out += "\":" + FormatJsonNumber(value);
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [key, delta] : interval.histograms) {
      if (!first) out += ",";
      first = false;
      out += "\"";
      AppendJsonEscaped(out, key);
      out += "\":{\"count\":" + std::to_string(delta.count);
      out += ",\"sum\":" + FormatJsonNumber(delta.sum);
      out += ",\"buckets\":[";
      for (size_t i = 0; i < delta.buckets.size(); ++i) {
        if (i) out += ",";
        out += std::to_string(delta.buckets[i]);
      }
      out += "]}";
    }
    out += "}}\n";
  }

  for (const auto& [name, sketch] : sketches_) {
    open_line("sketch");
    out += ",\"name\":\"";
    AppendJsonEscaped(out, name);
    out += "\",\"sketch\":";
    sketch.AppendJson(out);
    out += "}\n";
  }
  return out;
}

}  // namespace wsc::telemetry
