// Metric value types for the GWP-style telemetry layer.
//
// The paper's methodology is fleet telemetry: every figure and table is an
// aggregate of named counters sampled across thousands of machines by
// Google-Wide Profiling. This header defines the three metric shapes that
// aggregation pipeline understands:
//
//   Counter        monotone event count (cache hits, spans fetched)
//   Gauge          point-in-time level   (cached bytes, live hugepages)
//   FixedHistogram fixed-bucket distribution (footprint samples)
//
// All three are plain single-writer values: one allocator instance == one
// simulated process, owned by exactly one fleet worker thread at a time,
// so the hot path is a bare `+=` with no locks and no atomics — lock-free
// by construction. Cross-thread aggregation happens only on immutable
// `Snapshot`s (registry.h), which the parallel fleet engine merges in
// machine-index order to keep results bit-identical for any thread count.

#ifndef WSC_TELEMETRY_METRIC_H_
#define WSC_TELEMETRY_METRIC_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace wsc::telemetry {

enum class MetricKind { kCounter, kGauge, kHistogram };

// Returns the kind as a stable lowercase token ("counter", "gauge",
// "histogram") used by the statsz and BENCH_JSON serializers.
const char* MetricKindName(MetricKind kind);

// Monotone event counter. Hot-path handles returned by
// MetricRegistry::RegisterCounter point directly at the stored value.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }

  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

// Point-in-time level. Exported gauges accumulate contributions from
// multiple tier instances (per-node transfer caches, per-class central
// free lists) between BeginExport() and TakeSnapshot().
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double v) { value_ += v; }
  double value() const { return value_; }

  void Reset() { value_ = 0; }

 private:
  double value_ = 0;
};

// Histogram over fixed, registration-time bucket bounds. A value lands in
// the first bucket whose upper bound is >= the value; values above the
// last bound land in the overflow bucket, so there are bounds.size() + 1
// buckets. Fixed bounds are what make fleet-wide merges exact: two
// histograms merge bucket-by-bucket with no rebinning error.
class FixedHistogram {
 public:
  explicit FixedHistogram(std::vector<double> bounds)
      : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1, 0) {
    for (size_t i = 1; i < bounds_.size(); ++i) {
      WSC_CHECK(bounds_[i - 1] < bounds_[i]);
    }
  }

  void Record(double v, uint64_t weight = 1) {
    size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    buckets_[i] += weight;
    count_ += weight;
    sum_ += v * static_cast<double>(weight);
  }

  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<uint64_t>& buckets() const { return buckets_; }
  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double Mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }

  // Adds pre-bucketed counts (exported-histogram path). `buckets` must
  // already be binned onto this histogram's bounds; `sum` carries the exact
  // value mass so means survive the rebinning.
  void MergeBuckets(const std::vector<uint64_t>& buckets, uint64_t count,
                    double sum) {
    WSC_CHECK_EQ(buckets.size(), buckets_.size());
    for (size_t i = 0; i < buckets.size(); ++i) buckets_[i] += buckets[i];
    count_ += count;
    sum_ += sum;
  }

  void Reset() {
    buckets_.assign(buckets_.size(), 0);
    count_ = 0;
    sum_ = 0;
  }

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0;
};

}  // namespace wsc::telemetry

#endif  // WSC_TELEMETRY_METRIC_H_
