// Mergeable log-bucket quantile sketch for fleet-wide distributions.
//
// The paper's fleet CDFs (Fig. 3) aggregate per-machine distributions
// across thousands of machines without retaining per-machine data: each
// machine keeps a tiny mergeable summary, and the GWP pipeline folds
// summaries together. This sketch is that summary, DDSketch-style: values
// land in logarithmic buckets (each power of two split into kSubBuckets
// linear sub-buckets, ~3% relative error), merges are exact bucketwise
// sums, and quantiles come from a cumulative walk over the fixed bucket
// layout — so the fold is associative and bit-identical in any order on
// any machine.
//
// Everything here is integer/bit-exact double arithmetic (frexp/ldexp);
// no platform-dependent transcendentals, which is what keeps fleet runs
// byte-identical for any --threads value.

#ifndef WSC_TELEMETRY_SKETCH_H_
#define WSC_TELEMETRY_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace wsc::telemetry {

class QuantileSketch {
 public:
  // Linear sub-buckets per power of two. 16 gives a worst-case relative
  // error of 1/32 (~3.1%) on the bucket representative.
  static constexpr int kSubBuckets = 16;
  // Bucket 0 holds everything <= 0 and every value < 1 (sub-unit values
  // are below the resolution any byte/ns metric here cares about);
  // buckets 1.. cover exponents 0..kMaxExponent.
  static constexpr int kMaxExponent = 63;
  static constexpr size_t kNumBuckets =
      1 + static_cast<size_t>(kMaxExponent + 1) * kSubBuckets;

  QuantileSketch();

  // Adds `weight` observations of value `v`.
  void Record(double v, uint64_t weight = 1);

  // Bucketwise sum; exact and associative.
  void MergeFrom(const QuantileSketch& other);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double Mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }

  // Value at quantile q in [0,1]: the representative (bucket midpoint) of
  // the bucket holding the rank-floor(q*(count-1)) observation, clamped to
  // the exact observed [min, max]. Returns 0 on an empty sketch.
  double Quantile(double q) const;

  // Bucket index for a value (exposed for tests of the layout).
  static size_t BucketIndex(double v);
  // Representative value (midpoint) of a bucket.
  static double BucketValue(size_t index);

  // Non-zero buckets as (representative value, count) pairs in increasing
  // value order — the self-describing "points" array consumers rebuild
  // CDFs from without knowing the bucket layout.
  std::vector<std::pair<double, uint64_t>> Points() const;

  // Appends the sketch as a JSON object:
  // {"count":N,"sum":X,"min":X,"max":X,
  //  "quantiles":{"p50":..,"p90":..,"p95":..,"p99":..},
  //  "points":[[value,count],...]}
  void AppendJson(std::string& out) const;

  bool operator==(const QuantileSketch&) const = default;

 private:
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace wsc::telemetry

#endif  // WSC_TELEMETRY_SKETCH_H_
