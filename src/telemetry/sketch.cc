#include "telemetry/sketch.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "telemetry/statsz.h"

namespace wsc::telemetry {

QuantileSketch::QuantileSketch() : buckets_(kNumBuckets, 0) {}

size_t QuantileSketch::BucketIndex(double v) {
  if (!(v >= 1.0) || !std::isfinite(v)) return 0;  // <=0, <1, NaN
  int exp = 0;
  double m = std::frexp(v, &exp);  // v = m * 2^exp, m in [0.5, 1)
  --exp;                           // mantissa in [1, 2)
  if (exp > kMaxExponent) {
    return kNumBuckets - 1;
  }
  int sub = static_cast<int>((m * 2.0 - 1.0) * kSubBuckets);
  sub = std::min(sub, kSubBuckets - 1);
  return 1 + static_cast<size_t>(exp) * kSubBuckets + static_cast<size_t>(sub);
}

double QuantileSketch::BucketValue(size_t index) {
  if (index == 0) return 0.0;
  size_t i = index - 1;
  int exp = static_cast<int>(i / kSubBuckets);
  int sub = static_cast<int>(i % kSubBuckets);
  // Midpoint of [2^exp * (1 + sub/k), 2^exp * (1 + (sub+1)/k)).
  double mantissa = 1.0 + (static_cast<double>(sub) + 0.5) / kSubBuckets;
  return std::ldexp(mantissa, exp);
}

void QuantileSketch::Record(double v, uint64_t weight) {
  if (weight == 0) return;
  buckets_[BucketIndex(v)] += weight;
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  count_ += weight;
  sum_ += v * static_cast<double>(weight);
}

void QuantileSketch::MergeFrom(const QuantileSketch& other) {
  if (other.count_ == 0) return;
  WSC_CHECK_EQ(buckets_.size(), other.buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double QuantileSketch::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t rank =
      static_cast<uint64_t>(q * static_cast<double>(count_ - 1));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative > rank) {
      return std::clamp(BucketValue(i), min_, max_);
    }
  }
  return max_;
}

std::vector<std::pair<double, uint64_t>> QuantileSketch::Points() const {
  std::vector<std::pair<double, uint64_t>> points;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] != 0) points.emplace_back(BucketValue(i), buckets_[i]);
  }
  return points;
}

void QuantileSketch::AppendJson(std::string& out) const {
  out += "{\"count\":" + std::to_string(count_);
  out += ",\"sum\":" + FormatJsonNumber(sum_);
  out += ",\"min\":" + FormatJsonNumber(min());
  out += ",\"max\":" + FormatJsonNumber(max());
  out += ",\"quantiles\":{";
  constexpr struct {
    const char* name;
    double q;
  } kQuantiles[] = {
      {"p50", 0.50}, {"p90", 0.90}, {"p95", 0.95}, {"p99", 0.99}};
  bool first = true;
  for (const auto& [name, q] : kQuantiles) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += name;
    out += "\":" + FormatJsonNumber(Quantile(q));
  }
  out += "},\"points\":[";
  first = true;
  for (const auto& [value, cnt] : Points()) {
    if (!first) out += ",";
    first = false;
    out += "[" + FormatJsonNumber(value) + "," + std::to_string(cnt) + "]";
  }
  out += "]}";
}

}  // namespace wsc::telemetry
