#include "telemetry/registry.h"

#include <algorithm>

#include "common/logging.h"

namespace wsc::telemetry {

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

double MetricSample::ScalarValue() const {
  switch (kind) {
    case MetricKind::kCounter:
      return static_cast<double>(counter);
    case MetricKind::kGauge:
      return gauge;
    case MetricKind::kHistogram:
      return static_cast<double>(hist_count);
  }
  return 0;
}

void Snapshot::MergeFrom(const Snapshot& other) {
  WSC_CHECK_EQ(schema_version, other.schema_version);
  // Both sample lists are sorted by key; walk them together, summing
  // matches and inserting one-sided metrics, producing a sorted result.
  std::vector<MetricSample> merged;
  merged.reserve(std::max(samples.size(), other.samples.size()));
  size_t i = 0, j = 0;
  while (i < samples.size() || j < other.samples.size()) {
    if (j >= other.samples.size() ||
        (i < samples.size() && samples[i].Key() < other.samples[j].Key())) {
      merged.push_back(samples[i++]);
      continue;
    }
    if (i >= samples.size() || other.samples[j].Key() < samples[i].Key()) {
      merged.push_back(other.samples[j++]);
      continue;
    }
    MetricSample s = samples[i++];
    const MetricSample& o = other.samples[j++];
    WSC_CHECK(s.kind == o.kind);
    switch (s.kind) {
      case MetricKind::kCounter:
        s.counter += o.counter;
        break;
      case MetricKind::kGauge:
        s.gauge += o.gauge;
        break;
      case MetricKind::kHistogram:
        WSC_CHECK(s.bounds == o.bounds);
        for (size_t b = 0; b < s.buckets.size(); ++b) {
          s.buckets[b] += o.buckets[b];
        }
        s.hist_count += o.hist_count;
        s.hist_sum += o.hist_sum;
        break;
    }
    merged.push_back(std::move(s));
  }
  samples = std::move(merged);
}

const MetricSample* Snapshot::Find(std::string_view component,
                                   std::string_view name) const {
  for (const MetricSample& s : samples) {
    if (s.component == component && s.name == name) return &s;
  }
  return nullptr;
}

double Snapshot::ComponentTotal(std::string_view component) const {
  double total = 0;
  for (const MetricSample& s : samples) {
    if (s.component == component) total += s.ScalarValue();
  }
  return total;
}

MetricRegistry::Entry& MetricRegistry::GetOrCreate(std::string_view component,
                                                   std::string_view name,
                                                   MetricKind kind,
                                                   bool exported) {
  std::string key;
  key.reserve(component.size() + 1 + name.size());
  key.append(component).append("/").append(name);
  auto [it, inserted] = entries_.try_emplace(std::move(key));
  Entry& e = it->second;
  if (inserted) {
    e.kind = kind;
    e.exported = exported;
  } else {
    WSC_CHECK(e.kind == kind);
    WSC_CHECK_EQ(e.exported, exported);
  }
  return e;
}

Counter* MetricRegistry::RegisterCounter(std::string_view component,
                                         std::string_view name) {
  return &GetOrCreate(component, name, MetricKind::kCounter,
                      /*exported=*/false)
              .counter;
}

Gauge* MetricRegistry::RegisterGauge(std::string_view component,
                                     std::string_view name) {
  return &GetOrCreate(component, name, MetricKind::kGauge, /*exported=*/false)
              .gauge;
}

FixedHistogram* MetricRegistry::RegisterHistogram(std::string_view component,
                                                  std::string_view name,
                                                  std::vector<double> bounds) {
  Entry& e = GetOrCreate(component, name, MetricKind::kHistogram,
                         /*exported=*/false);
  if (e.histogram == nullptr) {
    e.histogram = std::make_unique<FixedHistogram>(std::move(bounds));
  } else {
    WSC_CHECK(e.histogram->bounds() == bounds);
  }
  return e.histogram.get();
}

void MetricRegistry::BeginExport() {
  for (auto& [key, e] : entries_) {
    if (!e.exported) continue;
    e.counter.Reset();
    e.gauge.Reset();
    if (e.histogram != nullptr) e.histogram->Reset();
  }
}

void MetricRegistry::ExportCounter(std::string_view component,
                                   std::string_view name, uint64_t value) {
  GetOrCreate(component, name, MetricKind::kCounter, /*exported=*/true)
      .counter.Add(value);
}

void MetricRegistry::ExportGauge(std::string_view component,
                                 std::string_view name, double value) {
  GetOrCreate(component, name, MetricKind::kGauge, /*exported=*/true)
      .gauge.Add(value);
}

void MetricRegistry::ExportHistogram(std::string_view component,
                                     std::string_view name,
                                     const std::vector<double>& bounds,
                                     const std::vector<uint64_t>& buckets,
                                     uint64_t count, double sum) {
  Entry& e = GetOrCreate(component, name, MetricKind::kHistogram,
                         /*exported=*/true);
  if (e.histogram == nullptr) {
    e.histogram = std::make_unique<FixedHistogram>(bounds);
  } else {
    WSC_CHECK(e.histogram->bounds() == bounds);
  }
  e.histogram->MergeBuckets(buckets, count, sum);
}

Snapshot MetricRegistry::TakeSnapshot() const {
  Snapshot snap;
  snap.samples.reserve(entries_.size());
  for (const auto& [key, e] : entries_) {
    MetricSample s;
    size_t slash = key.find('/');
    s.component = key.substr(0, slash);
    s.name = key.substr(slash + 1);
    s.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
        s.counter = e.counter.value();
        break;
      case MetricKind::kGauge:
        s.gauge = e.gauge.value();
        break;
      case MetricKind::kHistogram:
        s.bounds = e.histogram->bounds();
        s.buckets = e.histogram->buckets();
        s.hist_count = e.histogram->count();
        s.hist_sum = e.histogram->sum();
        break;
    }
    snap.samples.push_back(std::move(s));
  }
  return snap;
}

}  // namespace wsc::telemetry
