#include "telemetry/statsz.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace wsc::telemetry {

void AppendJsonEscaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string FormatJsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

std::string RenderStatszText(const Snapshot& snapshot) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "statsz (telemetry schema v%d)\n",
                snapshot.schema_version);
  out += line;

  std::string component;
  for (const MetricSample& s : snapshot.samples) {
    if (s.component != component) {
      component = s.component;
      out += "\n[" + component + "]\n";
    }
    switch (s.kind) {
      case MetricKind::kCounter:
        std::snprintf(line, sizeof(line), "  %-38s counter %20" PRIu64 "\n",
                      s.name.c_str(), s.counter);
        out += line;
        break;
      case MetricKind::kGauge:
        std::snprintf(line, sizeof(line), "  %-38s gauge   %20.0f\n",
                      s.name.c_str(), s.gauge);
        out += line;
        break;
      case MetricKind::kHistogram: {
        std::snprintf(line, sizeof(line),
                      "  %-38s histogram  count=%" PRIu64 " sum=%.0f\n",
                      s.name.c_str(), s.hist_count, s.hist_sum);
        out += line;
        for (size_t b = 0; b < s.buckets.size(); ++b) {
          if (s.buckets[b] == 0) continue;
          if (b < s.bounds.size()) {
            std::snprintf(line, sizeof(line), "    <= %-14.0f %12" PRIu64 "\n",
                          s.bounds[b], s.buckets[b]);
          } else {
            std::snprintf(line, sizeof(line), "    >  %-14.0f %12" PRIu64 "\n",
                          s.bounds.empty() ? 0.0 : s.bounds.back(),
                          s.buckets[b]);
          }
          out += line;
        }
        break;
      }
    }
  }
  return out;
}

std::string RenderStatszJson(const Snapshot& snapshot) {
  std::string out = "{\"schema_version\":";
  out += std::to_string(snapshot.schema_version);
  out += ",\"metrics\":[";
  bool first = true;
  for (const MetricSample& s : snapshot.samples) {
    if (!first) out += ",";
    first = false;
    out += "{\"component\":\"";
    AppendJsonEscaped(out, s.component);
    out += "\",\"name\":\"";
    AppendJsonEscaped(out, s.name);
    out += "\",\"kind\":\"";
    out += MetricKindName(s.kind);
    out += "\"";
    switch (s.kind) {
      case MetricKind::kCounter:
        out += ",\"value\":" + std::to_string(s.counter);
        break;
      case MetricKind::kGauge:
        out += ",\"value\":" + FormatJsonNumber(s.gauge);
        break;
      case MetricKind::kHistogram: {
        out += ",\"count\":" + std::to_string(s.hist_count);
        out += ",\"sum\":" + FormatJsonNumber(s.hist_sum);
        out += ",\"bounds\":[";
        for (size_t b = 0; b < s.bounds.size(); ++b) {
          if (b) out += ",";
          out += FormatJsonNumber(s.bounds[b]);
        }
        out += "],\"buckets\":[";
        for (size_t b = 0; b < s.buckets.size(); ++b) {
          if (b) out += ",";
          out += std::to_string(s.buckets[b]);
        }
        out += "]";
        break;
      }
    }
    out += "}";
  }
  out += "]}";
  return out;
}

namespace {

// "wsc_<component>_<name>" with everything outside [a-zA-Z0-9_] mapped to
// '_': the OpenMetrics name charset.
std::string OpenMetricsName(const MetricSample& s) {
  std::string name = "wsc_" + s.component + "_" + s.name;
  for (char& c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    if (!ok) c = '_';
  }
  return name;
}

}  // namespace

std::string RenderOpenMetrics(const Snapshot& snapshot) {
  std::string out;
  for (const MetricSample& s : snapshot.samples) {
    std::string name = OpenMetricsName(s);
    switch (s.kind) {
      case MetricKind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + "_total " + std::to_string(s.counter) + "\n";
        break;
      case MetricKind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + FormatJsonNumber(s.gauge) + "\n";
        break;
      case MetricKind::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        uint64_t cumulative = 0;
        for (size_t b = 0; b < s.buckets.size(); ++b) {
          cumulative += s.buckets[b];
          std::string le = b < s.bounds.size()
                               ? FormatJsonNumber(s.bounds[b])
                               : std::string("+Inf");
          out += name + "_bucket{le=\"" + le + "\"} " +
                 std::to_string(cumulative) + "\n";
        }
        out += name + "_sum " + FormatJsonNumber(s.hist_sum) + "\n";
        out += name + "_count " + std::to_string(s.hist_count) + "\n";
        break;
      }
    }
  }
  out += "# EOF\n";
  return out;
}

bool WriteStatszFile(const std::string& path, const Snapshot& snapshot) {
  if (path == "-") {
    std::fputs(RenderStatszText(snapshot).c_str(), stdout);
    return true;
  }
  auto has_suffix = [&](std::string_view suffix) {
    return path.size() >= suffix.size() &&
           path.compare(path.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
  };
  bool json = has_suffix(".json");
  bool openmetrics = has_suffix(".om") || has_suffix(".prom");
  std::string body = json          ? RenderStatszJson(snapshot)
                     : openmetrics ? RenderOpenMetrics(snapshot)
                                   : RenderStatszText(snapshot);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "statsz: cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  if (json) std::fputc('\n', f);
  std::fclose(f);
  return true;
}

}  // namespace wsc::telemetry
