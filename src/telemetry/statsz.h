// MallocZ-style introspection dumps ("statsz") of a telemetry Snapshot.
//
// Production TCMalloc exposes its internal state through a statusz-style
// page; the paper's analysis pipeline consumes the same counters via GWP.
// This renders a Snapshot in two forms:
//
//   * human text — aligned `component/name  kind  value` lines with
//     histogram bucket tables, for eyeballing an allocator mid-run;
//   * machine JSON — schema-versioned, for tools/check_bench_json.py and
//     downstream regression tracking.
//
// Every bench accepts --statsz=<path>: paths ending in ".json" get the
// JSON form, everything else ("-" = stdout) gets the text form.

#ifndef WSC_TELEMETRY_STATSZ_H_
#define WSC_TELEMETRY_STATSZ_H_

#include <string>
#include <string_view>

#include "telemetry/registry.h"

namespace wsc::telemetry {

// Appends `s` JSON-escaped (quotes, backslashes, control chars) to `out`.
void AppendJsonEscaped(std::string& out, std::string_view s);

// Formats a double as a JSON number: integral values print without a
// fractional part, everything else with enough digits to round-trip.
std::string FormatJsonNumber(double v);

// Human-readable dump, grouped by component.
std::string RenderStatszText(const Snapshot& snapshot);

// Machine-readable dump:
// {"schema_version":N,"metrics":[{"component":...,"name":...,"kind":...,
//  "value":... | "buckets":[...],"bounds":[...],"count":N,"sum":X}, ...]}
std::string RenderStatszJson(const Snapshot& snapshot);

// OpenMetrics / Prometheus text exposition format. Metric names are
// "wsc_<component>_<name>" (characters outside [a-zA-Z0-9_] become '_');
// counters get the mandatory "_total" sample suffix, histograms render
// cumulative "_bucket{le=...}" series ending in le="+Inf" plus "_sum" and
// "_count", and the body ends with the "# EOF" terminator the OpenMetrics
// spec requires. Linted by tools/check_openmetrics.py.
std::string RenderOpenMetrics(const Snapshot& snapshot);

// Writes the snapshot to `path`: JSON when the path ends in ".json",
// OpenMetrics when it ends in ".om" or ".prom", text otherwise; "-" prints
// the text form to stdout. Returns false (with a log line) when the file
// cannot be written.
bool WriteStatszFile(const std::string& path, const Snapshot& snapshot);

}  // namespace wsc::telemetry

#endif  // WSC_TELEMETRY_STATSZ_H_
