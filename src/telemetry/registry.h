// Metric registry: the per-process metric namespace every allocator tier
// registers into, and the immutable Snapshot the fleet layer aggregates.
//
// Two usage modes, mirroring production telemetry exporters:
//
//  * Live metrics — RegisterCounter / RegisterHistogram return stable
//    handles the owner increments on its hot path (plain `+=`, no locks;
//    see metric.h for the single-writer contract). Handles stay valid for
//    the registry's lifetime.
//
//  * Exported metrics — tiers whose stats live in their own structures
//    publish them at snapshot time through ExportCounter / ExportGauge.
//    BeginExport() zeroes every exported metric so multi-instance tiers
//    (per-NUMA-node transfer caches, per-class central free lists) can
//    each Add their share; live metrics are left untouched.
//
// Metric identity is (component, name): component is the allocator tier
// ("cpu_cache", "transfer_cache", "central_free_list", "huge_page_filler",
// "huge_cache", "page_heap", ...), name is the measurement. Snapshots list
// samples sorted by that key, so equality and merges are deterministic.

#ifndef WSC_TELEMETRY_REGISTRY_H_
#define WSC_TELEMETRY_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/metric.h"

namespace wsc::telemetry {

// Version of the snapshot/statsz wire format. Bump when MetricSample
// fields or their serialization change.
inline constexpr int kTelemetrySchemaVersion = 1;

// One metric's value at snapshot time.
struct MetricSample {
  std::string component;
  std::string name;
  MetricKind kind = MetricKind::kCounter;

  uint64_t counter = 0;  // kCounter
  double gauge = 0;      // kGauge

  // kHistogram: buckets.size() == bounds.size() + 1 (overflow bucket).
  std::vector<double> bounds;
  std::vector<uint64_t> buckets;
  uint64_t hist_count = 0;
  double hist_sum = 0;

  // Scalar view used by the flat BENCH_JSON metrics object.
  double ScalarValue() const;

  // Fully-qualified "component/name" key.
  std::string Key() const { return component + "/" + name; }

  bool operator==(const MetricSample&) const = default;
};

// An immutable, ordered picture of one registry. Snapshots from different
// processes merge by summing counters and gauges and adding histograms
// bucket-by-bucket; merging is associative, and merging in machine-index
// order makes the fleet aggregate bit-identical for any worker count.
struct Snapshot {
  int schema_version = kTelemetrySchemaVersion;
  std::vector<MetricSample> samples;  // sorted by (component, name)

  // Adds `other` into this snapshot. Metrics present in only one side are
  // kept as-is; histogram bounds must match where both sides have the
  // metric.
  void MergeFrom(const Snapshot& other);

  const MetricSample* Find(std::string_view component,
                           std::string_view name) const;

  // Sum of ScalarValue over samples of `component`; used by tests and the
  // statsz non-emptiness checks.
  double ComponentTotal(std::string_view component) const;

  bool operator==(const Snapshot&) const = default;
};

// The registry. Not thread-safe: owned by one simulated process.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // --- live metrics (hot-path handles) ---
  Counter* RegisterCounter(std::string_view component, std::string_view name);
  Gauge* RegisterGauge(std::string_view component, std::string_view name);
  FixedHistogram* RegisterHistogram(std::string_view component,
                                    std::string_view name,
                                    std::vector<double> bounds);

  // --- exported metrics (snapshot-time publication) ---
  // Zeroes every exported metric. Call once per snapshot, before tiers
  // contribute.
  void BeginExport();
  // Accumulates into the exported metric, creating it on first use. The
  // kind of an existing metric must match.
  void ExportCounter(std::string_view component, std::string_view name,
                     uint64_t value);
  void ExportGauge(std::string_view component, std::string_view name,
                   double value);
  // Accumulates pre-bucketed counts into the exported histogram, creating
  // it with `bounds` on first use. Later calls (and other processes'
  // snapshots) must present identical bounds — the fixed-bounds contract
  // that keeps fleet merges exact.
  void ExportHistogram(std::string_view component, std::string_view name,
                       const std::vector<double>& bounds,
                       const std::vector<uint64_t>& buckets, uint64_t count,
                       double sum);

  Snapshot TakeSnapshot() const;

  size_t num_metrics() const { return entries_.size(); }

 private:
  struct Entry {
    MetricKind kind;
    bool exported = false;
    Counter counter;
    Gauge gauge;
    std::unique_ptr<FixedHistogram> histogram;
  };

  Entry& GetOrCreate(std::string_view component, std::string_view name,
                     MetricKind kind, bool exported);

  // Keyed by "component/name"; std::map keeps snapshot order sorted and
  // Entry addresses stable, so live handles never dangle.
  std::map<std::string, Entry> entries_;
};

}  // namespace wsc::telemetry

#endif  // WSC_TELEMETRY_REGISTRY_H_
