#include "profiler/self_profiler.h"

#include <utility>

namespace wsc::prof {

SelfProfiler::SelfProfiler(uint64_t sample_interval)
    : interval_(sample_interval == 0 ? 1 : sample_interval),
      until_sample_(interval_) {}

void SelfProfiler::TakeSample() {
  StackKey key;
  key.depth = depth_ < kMaxDepth ? depth_ : kMaxDepth;
  for (int i = 0; i < key.depth; ++i) key.frames[i] = frames_[i];
  for (int i = key.depth; i < kMaxDepth; ++i) key.frames[i] = nullptr;
  ++counts_[key];
  ++samples_;
}

FoldedProfile SelfProfiler::Folded() const {
  FoldedProfile profile;
  profile.total_samples = samples_;
  profile.total_ticks = ticks();
  profile.sample_interval = interval_;
  for (const auto& [key, count] : counts_) {
    std::string folded;
    if (key.depth == 0) {
      folded = "(idle)";
    } else {
      for (int i = 0; i < key.depth; ++i) {
        if (i > 0) folded += ';';
        folded += key.frames[i];
      }
    }
    profile.stacks[std::move(folded)] += count;
  }
  return profile;
}

void FoldedProfile::MergeFrom(const FoldedProfile& other) {
  for (const auto& [stack, count] : other.stacks) stacks[stack] += count;
  total_samples += other.total_samples;
  total_ticks += other.total_ticks;
  if (sample_interval == 0) sample_interval = other.sample_interval;
}

std::string RenderFolded(const FoldedProfile& profile) {
  std::string out;
  for (const auto& [stack, count] : profile.stacks) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

namespace {

void AppendJsonEscaped(std::string& out, const std::string& text) {
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        out += c;
    }
  }
}

}  // namespace

std::string RenderFoldedJson(const FoldedProfile& profile) {
  std::string out = "{\"schema_version\":1,\"kind\":\"selfprof\",";
  out += "\"sample_interval\":" + std::to_string(profile.sample_interval);
  out += ",\"total_ticks\":" + std::to_string(profile.total_ticks);
  out += ",\"total_samples\":" + std::to_string(profile.total_samples);
  out += ",\"stacks\":[";
  bool first = true;
  for (const auto& [stack, count] : profile.stacks) {
    if (!first) out += ',';
    first = false;
    out += "{\"stack\":\"";
    AppendJsonEscaped(out, stack);
    out += "\",\"samples\":" + std::to_string(count) + "}";
  }
  out += "]}\n";
  return out;
}

}  // namespace wsc::prof
