// Sampling self-profiler: deterministic scope-stack sampling for the
// simulator's own hot paths.
//
// The paper's methodology is continuous fleet-wide profiling — regressions
// are found because every machine profiles itself and diffs the result
// against history. This is that loop turned inward: the simulator (and the
// real-threads allocator) carries lightweight manual instrumentation
// (`WSC_PROF_SCOPE("allocator/Allocate")`) and a per-process sampler that
// snapshots the current scope stack on a fixed *logical* cadence — every
// N scope entries, never wall clock — so a profile of a deterministic run
// is itself deterministic: bit-identical folded output for any --threads
// value, diffable across commits by tools/flamediff.py.
//
// Cost contract (same as the flight recorder's `if (trace_)` idiom):
//
//   - Disabled (no profiler installed): each scope is one thread_local
//     load plus a predicted-not-taken branch. No allocation, no atomics.
//   - Enabled: push = two stores + a decrement-and-test; every
//     `sample_interval` pushes the stack (≤ kMaxDepth interned `const
//     char*` literals) is hashed and counted in a flat table.
//
// Threading model: a SelfProfiler is single-writer, like the telemetry
// registry. The fleet engine installs the owning process's profiler into
// `tls_profiler` only around that process's Step() call, so worker threads
// never share one. Real-threads benches give each OS thread its own
// profiler and merge after join (commutative counts, deterministic render).

#ifndef WSC_PROFILER_SELF_PROFILER_H_
#define WSC_PROFILER_SELF_PROFILER_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>

namespace wsc::prof {

// A rendered, mergeable profile: folded stack ("outer;inner;leaf") to
// sample count. std::map keys keep every render deterministically ordered.
struct FoldedProfile {
  std::map<std::string, uint64_t> stacks;
  uint64_t total_samples = 0;
  uint64_t total_ticks = 0;      // scope entries observed
  uint64_t sample_interval = 0;  // ticks between samples (0 = unset)

  bool empty() const { return stacks.empty(); }
  void MergeFrom(const FoldedProfile& other);
};

// Brendan-Gregg folded format, one "stack count" line per stack, sorted.
std::string RenderFolded(const FoldedProfile& profile);

// JSON form of the same data (schema_version 1, kind "selfprof").
std::string RenderFoldedJson(const FoldedProfile& profile);

class SelfProfiler {
 public:
  // Stacks deeper than this are truncated to their outermost kMaxDepth
  // frames; pushes and pops stay balanced regardless.
  static constexpr int kMaxDepth = 24;

  explicit SelfProfiler(uint64_t sample_interval);

  SelfProfiler(const SelfProfiler&) = delete;
  SelfProfiler& operator=(const SelfProfiler&) = delete;

  // Hot path. `frame` must be a string literal (or otherwise outlive the
  // profiler): frames are interned by pointer, not copied. Tick counting
  // rides the sampling countdown (ticks() reconstructs the exact total),
  // keeping the per-scope cost to two stores and a decrement-and-test.
  void Push(const char* frame) {
    if (depth_ < kMaxDepth) frames_[depth_] = frame;
    ++depth_;
    if (--until_sample_ == 0) {
      until_sample_ = interval_;
      TakeSample();
    }
  }

  void Pop() {
    if (depth_ > 0) --depth_;
  }

  uint64_t ticks() const {
    return samples_ * interval_ + (interval_ - until_sample_);
  }
  uint64_t samples_taken() const { return samples_; }
  uint64_t sample_interval() const { return interval_; }
  int depth() const { return depth_; }

  // Renders the counted stacks into a mergeable FoldedProfile.
  FoldedProfile Folded() const;

 private:
  struct StackKey {
    std::array<const char*, kMaxDepth> frames;
    int depth;

    bool operator==(const StackKey& other) const {
      if (depth != other.depth) return false;
      for (int i = 0; i < depth; ++i) {
        if (frames[i] != other.frames[i]) return false;
      }
      return true;
    }
  };

  struct StackKeyHash {
    size_t operator()(const StackKey& key) const {
      // FNV-1a over the frame pointers; pointers are stable literals.
      uint64_t h = 1469598103934665603ull;
      for (int i = 0; i < key.depth; ++i) {
        h ^= reinterpret_cast<uintptr_t>(key.frames[i]);
        h *= 1099511628211ull;
      }
      return static_cast<size_t>(h);
    }
  };

  void TakeSample();

  const uint64_t interval_;
  uint64_t until_sample_;
  uint64_t samples_ = 0;
  int depth_ = 0;
  std::array<const char*, kMaxDepth> frames_{};
  std::unordered_map<StackKey, uint64_t, StackKeyHash> counts_;
};

// The currently-installed profiler for this thread; null means every
// WSC_PROF_SCOPE in scope is a no-op (the disabled-cost contract above).
inline thread_local SelfProfiler* tls_profiler = nullptr;

// RAII install/restore of tls_profiler. The fleet engine wraps each
// process Step() in one of these so a worker thread samples into whichever
// process it is currently simulating.
class ScopedInstall {
 public:
  explicit ScopedInstall(SelfProfiler* profiler) : prev_(tls_profiler) {
    tls_profiler = profiler;
  }
  ~ScopedInstall() { tls_profiler = prev_; }

  ScopedInstall(const ScopedInstall&) = delete;
  ScopedInstall& operator=(const ScopedInstall&) = delete;

 private:
  SelfProfiler* prev_;
};

// One profiled scope. Captures tls_profiler once so an install change
// mid-scope cannot unbalance the stack; unwinds correctly on early return
// and on exceptions (dtor pops during unwind).
class ProfScope {
 public:
  explicit ProfScope(const char* frame) : prof_(tls_profiler) {
    if (prof_ != nullptr) prof_->Push(frame);
  }
  ~ProfScope() {
    if (prof_ != nullptr) prof_->Pop();
  }

  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  SelfProfiler* prof_;
};

#define WSC_PROF_CONCAT_INNER_(a, b) a##b
#define WSC_PROF_CONCAT_(a, b) WSC_PROF_CONCAT_INNER_(a, b)

// Marks the enclosing scope with a frame name for the self-profiler.
// `frame` must be a string literal, conventionally "tier/Method".
#define WSC_PROF_SCOPE(frame)                                   \
  ::wsc::prof::ProfScope WSC_PROF_CONCAT_(wsc_prof_scope_,      \
                                          __COUNTER__) { frame }

}  // namespace wsc::prof

#endif  // WSC_PROFILER_SELF_PROFILER_H_
