// Hardware platform model: sockets, LLC (NUCA) domains, cores, hyperthreads.
//
// Section 4.2 of the paper observes that a significant fraction of the fleet
// uses chiplet-based CPUs with multiple last-level-cache domains per socket
// (NUCA), and Section 4.1 notes a 4x growth in hyperthreads per server over
// five platform generations. This module models both dimensions so the
// allocator and the fleet simulator can react to them.

#ifndef WSC_HW_TOPOLOGY_H_
#define WSC_HW_TOPOLOGY_H_

#include <string>
#include <vector>

namespace wsc::hw {

// Static description of one server platform generation.
struct PlatformSpec {
  std::string name;
  int sockets = 1;
  int llc_domains_per_socket = 1;  // >1 => chiplet/NUCA platform
  int cores_per_domain = 8;
  int threads_per_core = 2;  // SMT width

  // Core-to-core cache transfer latencies (ns), calibrated against the
  // paper's Fig. 11 measurement (inter-domain = 2.07x intra-domain).
  double intra_domain_latency_ns = 21.0;
  double inter_domain_latency_ns = 43.5;
  double inter_socket_latency_ns = 62.0;
  double memory_latency_ns = 98.0;

  // Nominal core frequency used to convert cycles <-> ns.
  double ghz = 2.4;

  int num_domains() const { return sockets * llc_domains_per_socket; }
  int num_cores() const { return num_domains() * cores_per_domain; }
  int num_cpus() const { return num_cores() * threads_per_core; }
  bool is_nuca() const { return llc_domains_per_socket > 1; }
};

// A concrete machine topology: maps logical CPU ids to cores, LLC domains
// and sockets, and answers transfer-latency queries.
class CpuTopology {
 public:
  explicit CpuTopology(PlatformSpec spec);

  const PlatformSpec& spec() const { return spec_; }
  int num_cpus() const { return spec_.num_cpus(); }
  int num_cores() const { return spec_.num_cores(); }
  int num_domains() const { return spec_.num_domains(); }

  // Logical CPU -> physical core (SMT siblings share a core).
  int CoreOfCpu(int cpu) const;

  // Logical CPU -> LLC domain (global index across sockets).
  int DomainOfCpu(int cpu) const;

  // Logical CPU -> socket.
  int SocketOfCpu(int cpu) const;

  // Latency (ns) for a cache line produced on cpu_from to be consumed on
  // cpu_to. Same domain -> intra-domain latency; same socket, different
  // domain -> inter-domain; different socket -> inter-socket.
  double TransferLatencyNs(int cpu_from, int cpu_to) const;

  // Latency (ns) between two LLC domains.
  double DomainTransferLatencyNs(int domain_from, int domain_to) const;

 private:
  PlatformSpec spec_;
};

// Named platform generations available in the simulated fleet. Generation 0
// is a small monolithic-LLC part; later generations adopt chiplets and grow
// the hyperthread count ~4x from first to last, mirroring the fleet trend
// described in Section 4.1.
enum class PlatformGeneration {
  kGenA = 0,  // monolithic, 28 cores x 2 SMT
  kGenB,      // monolithic, 36 cores x 2 SMT
  kGenC,      // chiplet, 4 domains x 8 cores x 2 SMT
  kGenD,      // chiplet, 2 sockets x 4 domains x 8 cores x 2 SMT
  kGenE,      // chiplet, 2 sockets x 8 domains x 8 cores x 2 SMT
};

// Returns the spec for a platform generation.
PlatformSpec PlatformSpecFor(PlatformGeneration gen);

// All generations, oldest first.
std::vector<PlatformGeneration> AllPlatformGenerations();

}  // namespace wsc::hw

#endif  // WSC_HW_TOPOLOGY_H_
