// Core-to-core latency measurement harness over the topology model.
//
// Reproduces the paper's Fig. 11 experiment (Intel MLC core-to-core
// latencies on a chiplet platform): producer core writes a line, consumer
// core on the same / a different LLC domain reads it.

#ifndef WSC_HW_LATENCY_MODEL_H_
#define WSC_HW_LATENCY_MODEL_H_

#include "hw/topology.h"

namespace wsc::hw {

// Results of a core-to-core latency sweep on one platform.
struct CoreToCoreLatency {
  double intra_domain_ns = 0.0;
  double inter_domain_ns = 0.0;
  double inter_socket_ns = 0.0;  // 0 when single-socket

  double InterToIntraRatio() const {
    return intra_domain_ns > 0 ? inter_domain_ns / intra_domain_ns : 0.0;
  }
};

// Sweeps all (producer, consumer) core pairs of the topology and averages
// transfer latency per relationship class.
CoreToCoreLatency MeasureCoreToCore(const CpuTopology& topology);

}  // namespace wsc::hw

#endif  // WSC_HW_LATENCY_MODEL_H_
