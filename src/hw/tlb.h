// dTLB simulator.
//
// The paper's lifetime-aware hugepage filler (Section 4.4) wins by improving
// hugepage coverage, which reduces dTLB misses and page-walk cycles
// (Fig. 17, Table 2). We model a two-level data TLB: split L1 (4 KiB and
// 2 MiB entries) backed by a unified L2 STLB, with a page walker whose cost
// is charged to the productivity model.
//
// The simulator is driven by the workload driver, which "touches" allocated
// objects; whether a touch maps to a 4 KiB or 2 MiB entry is answered by a
// PageBackingOracle implemented over the allocator's page heap state.

#ifndef WSC_HW_TLB_H_
#define WSC_HW_TLB_H_

#include <cstdint>
#include <vector>

namespace wsc::hw {

// Answers whether a virtual address is currently backed by a (transparent)
// hugepage. The allocator's page heap implements this from its own
// bookkeeping: an intact, never-subreleased hugepage is THP-backed.
class PageBackingOracle {
 public:
  virtual ~PageBackingOracle() = default;
  virtual bool IsHugepageBacked(uint64_t addr) const = 0;
};

// Configuration for the simulated dTLB. Entry counts are scaled to ~1/3 of
// a contemporary x86 server core (64/32 L1, 1536 L2) because simulated
// working sets are 10-100x smaller than the production heaps the paper
// profiles; the scaled TLB reproduces the same coverage-to-working-set
// ratio and hence the fleet's dTLB pressure.
struct TlbConfig {
  int l1_4k_entries = 48;
  int l1_2m_entries = 16;
  int l2_entries = 512;        // unified STLB
  double l2_hit_cycles = 7.0;  // extra cycles on L1 miss / L2 hit
  double walk_cycles = 40.0;   // page walk on L2 miss
};

// Aggregate TLB statistics.
struct TlbStats {
  uint64_t accesses = 0;
  uint64_t l1_misses = 0;
  uint64_t l2_misses = 0;  // == page walks
  double stall_cycles = 0.0;

  double L1MissRate() const {
    return accesses ? static_cast<double>(l1_misses) / accesses : 0.0;
  }
  double WalkRate() const {
    return accesses ? static_cast<double>(l2_misses) / accesses : 0.0;
  }
};

// Fully-associative, LRU-replacement TLB model. Fully associative is a
// simplification (real parts are 4-8 way), but preserves the first-order
// effect we need: 2 MiB entries cover 512x more address space per entry.
class TlbSimulator {
 public:
  explicit TlbSimulator(TlbConfig config = TlbConfig());

  // Simulates one data access to `addr`. `hugepage_backed` selects the page
  // size. Returns the stall cycles charged to this access (0 on L1 hit).
  double Access(uint64_t addr, bool hugepage_backed);

  // Invalidates all entries (e.g., after a simulated process restart).
  void Flush();

  const TlbStats& stats() const { return stats_; }
  void ResetStats() { stats_ = TlbStats(); }

 private:
  struct Entry {
    uint64_t tag = ~0ULL;
    uint64_t last_use = 0;
  };

  // Looks up / inserts a tag; returns true on hit.
  static bool Probe(std::vector<Entry>& entries, uint64_t tag,
                    uint64_t stamp);

  TlbConfig config_;
  std::vector<Entry> l1_4k_;
  std::vector<Entry> l1_2m_;
  std::vector<Entry> l2_;
  uint64_t stamp_ = 0;
  // MRU filters: consecutive accesses to the same page (the common case
  // when touching an object's lines) skip the associative probe.
  uint64_t mru_4k_ = ~0ULL;
  uint64_t mru_2m_ = ~0ULL;
  TlbStats stats_;
};

}  // namespace wsc::hw

#endif  // WSC_HW_TLB_H_
