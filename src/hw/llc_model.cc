#include "hw/llc_model.h"

#include <algorithm>

#include "common/logging.h"

namespace wsc::hw {

namespace {

constexpr int kLineShift = 6;  // 64 B cache lines
constexpr size_t kWays = 8;    // associativity of the model

uint64_t HashLine(uint64_t line) {
  // Fibonacci hashing; good dispersion for sequential lines.
  return line * 0x9e3779b97f4a7c15ULL;
}

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

LlcModel::LlcModel(const CpuTopology* topology, size_t lines_per_domain,
                   uint64_t seed)
    : topology_(topology), rng_(seed) {
  WSC_CHECK(topology != nullptr);
  WSC_CHECK_GE(lines_per_domain, kWays);
  size_t sets = RoundUpPow2(lines_per_domain / kWays);
  domains_.resize(topology->num_domains());
  for (DomainSet& d : domains_) {
    d.slots.assign(sets * kWays, 0);
    d.mask = sets - 1;
    d.capacity = sets * kWays;
    d.size = 0;
  }
}

bool LlcModel::Lookup(const DomainSet& set, uint64_t line) const {
  size_t base = (HashLine(line) & set.mask) * kWays;
  uint64_t key = line + 1;
  for (size_t w = 0; w < kWays; ++w) {
    if (set.slots[base + w] == key) return true;
  }
  return false;
}

void LlcModel::Insert(DomainSet& set, uint64_t line) {
  size_t base = (HashLine(line) & set.mask) * kWays;
  uint64_t key = line + 1;
  // Prefer an empty way; otherwise evict a random way.
  for (size_t w = 0; w < kWays; ++w) {
    if (set.slots[base + w] == key) return;
    if (set.slots[base + w] == 0) {
      set.slots[base + w] = key;
      ++set.size;
      return;
    }
  }
  size_t victim = rng_.UniformInt(kWays);
  set.slots[base + victim] = key;
}

void LlcModel::Erase(DomainSet& set, uint64_t line) {
  size_t base = (HashLine(line) & set.mask) * kWays;
  uint64_t key = line + 1;
  for (size_t w = 0; w < kWays; ++w) {
    if (set.slots[base + w] == key) {
      set.slots[base + w] = 0;
      --set.size;
      return;
    }
  }
}

double LlcModel::AccessNs(int cpu, uint64_t addr) {
  ++stats_.accesses;
  int home = topology_->DomainOfCpu(cpu);
  uint64_t line = addr >> kLineShift;

  if (Lookup(domains_[home], line)) {
    ++stats_.local_hits;
    return 0.0;
  }
  // Search remote domains (nearest first would require distance ordering;
  // with a flat interconnect the order does not affect the outcome).
  for (int d = 0; d < static_cast<int>(domains_.size()); ++d) {
    if (d == home) continue;
    if (Lookup(domains_[d], line)) {
      ++stats_.remote_hits;
      // Line migrates to the consumer's domain (MESI forward + invalidate).
      Erase(domains_[d], line);
      Insert(domains_[home], line);
      double ns = topology_->DomainTransferLatencyNs(d, home);
      stats_.stall_ns += ns;
      return ns;
    }
  }
  ++stats_.memory_misses;
  Insert(domains_[home], line);
  double ns = topology_->spec().memory_latency_ns;
  stats_.stall_ns += ns;
  return ns;
}

void LlcModel::EvictRange(uint64_t addr, uint64_t size) {
  uint64_t first = addr >> kLineShift;
  uint64_t last = (addr + size - 1) >> kLineShift;
  for (DomainSet& d : domains_) {
    for (uint64_t line = first; line <= last; ++line) Erase(d, line);
  }
}

}  // namespace wsc::hw
