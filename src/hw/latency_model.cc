#include "hw/latency_model.h"

#include "common/stats.h"

namespace wsc::hw {

CoreToCoreLatency MeasureCoreToCore(const CpuTopology& topology) {
  RunningStat intra, inter, socket;
  int n = topology.num_cpus();
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      if (a == b) continue;
      double ns = topology.TransferLatencyNs(a, b);
      if (topology.DomainOfCpu(a) == topology.DomainOfCpu(b)) {
        intra.Add(ns);
      } else if (topology.SocketOfCpu(a) == topology.SocketOfCpu(b)) {
        inter.Add(ns);
      } else {
        socket.Add(ns);
      }
    }
  }
  CoreToCoreLatency result;
  result.intra_domain_ns = intra.Mean();
  result.inter_domain_ns = inter.Mean();
  result.inter_socket_ns = socket.Mean();
  return result;
}

}  // namespace wsc::hw
