#include "hw/tlb.h"

#include <algorithm>

#include "common/logging.h"

namespace wsc::hw {

namespace {
constexpr int kSmallPageShift = 12;  // 4 KiB native page
constexpr int kHugePageShift = 21;   // 2 MiB hugepage
}  // namespace

TlbSimulator::TlbSimulator(TlbConfig config) : config_(config) {
  WSC_CHECK_GT(config_.l1_4k_entries, 0);
  WSC_CHECK_GT(config_.l1_2m_entries, 0);
  WSC_CHECK_GT(config_.l2_entries, 0);
  l1_4k_.resize(config_.l1_4k_entries);
  l1_2m_.resize(config_.l1_2m_entries);
  l2_.resize(config_.l2_entries);
}

bool TlbSimulator::Probe(std::vector<Entry>& entries, uint64_t tag,
                         uint64_t stamp) {
  Entry* victim = &entries[0];
  for (Entry& e : entries) {
    if (e.tag == tag) {
      e.last_use = stamp;
      return true;
    }
    if (e.last_use < victim->last_use) victim = &e;
  }
  victim->tag = tag;
  victim->last_use = stamp;
  return false;
}

double TlbSimulator::Access(uint64_t addr, bool hugepage_backed) {
  ++stats_.accesses;
  int shift = hugepage_backed ? kHugePageShift : kSmallPageShift;
  uint64_t page = addr >> shift;

  // Fast path: repeated access to the most recently used page.
  uint64_t& mru = hugepage_backed ? mru_2m_ : mru_4k_;
  if (page == mru) return 0.0;

  ++stamp_;
  // Tag both the page number and the page size so a 4K and a 2M mapping
  // never alias in the unified L2.
  uint64_t l2_tag = (page << 1) | (hugepage_backed ? 1u : 0u);

  std::vector<Entry>& l1 = hugepage_backed ? l1_2m_ : l1_4k_;
  if (Probe(l1, page, stamp_)) {
    mru = page;
    return 0.0;
  }

  ++stats_.l1_misses;
  mru = page;
  if (Probe(l2_, l2_tag, stamp_)) {
    stats_.stall_cycles += config_.l2_hit_cycles;
    return config_.l2_hit_cycles;
  }
  ++stats_.l2_misses;
  double cycles = config_.l2_hit_cycles + config_.walk_cycles;
  stats_.stall_cycles += cycles;
  return cycles;
}

void TlbSimulator::Flush() {
  for (auto* v : {&l1_4k_, &l1_2m_, &l2_}) {
    for (Entry& e : *v) e = Entry();
  }
  mru_4k_ = ~0ULL;
  mru_2m_ = ~0ULL;
}

}  // namespace wsc::hw
