// Last-level-cache locality model for NUCA (chiplet) platforms.
//
// Section 4.2 shows that on chiplet platforms the legacy centralized
// transfer cache moves free objects between LLC domains, so a consumer core
// must fetch the object's cache lines from a remote LLC (2.07x the local
// latency) or from memory. We model each LLC domain as a set of resident
// cache lines with random replacement; an access that hits a *remote*
// domain's set counts as a local-LLC load miss served by a cache-to-cache
// transfer, and an access resident nowhere is a memory miss. Table 1's
// LLC-MPKI deltas are produced by this model.

#ifndef WSC_HW_LLC_MODEL_H_
#define WSC_HW_LLC_MODEL_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "hw/topology.h"

namespace wsc::hw {

// Aggregate LLC statistics.
struct LlcStats {
  uint64_t accesses = 0;
  uint64_t local_hits = 0;
  uint64_t remote_hits = 0;     // cache-to-cache, counts as local-LLC miss
  uint64_t memory_misses = 0;   // served from DRAM
  double stall_ns = 0.0;

  // Local-LLC load misses per kilo-instruction.
  double Mpki(uint64_t instructions) const {
    if (instructions == 0) return 0.0;
    return static_cast<double>(remote_hits + memory_misses) /
           (static_cast<double>(instructions) / 1000.0);
  }
};

// Per-domain resident-line sets with random replacement. The set is an
// open-addressed hash table of line addresses; random replacement is a
// standard approximation of LRU at LLC associativities.
class LlcModel {
 public:
  // `lines_per_domain` bounds each domain's resident set (capacity / 64B,
  // possibly scaled down when the driver samples accesses).
  LlcModel(const CpuTopology* topology, size_t lines_per_domain,
           uint64_t seed);

  // Simulates a load from `cpu` to `addr`. Returns the stall nanoseconds
  // beyond an L1/L2 hit (0 for a local LLC hit).
  double AccessNs(int cpu, uint64_t addr);

  // Removes all lines covering [addr, addr+size) from every domain
  // (used when memory is released to the OS).
  void EvictRange(uint64_t addr, uint64_t size);

  const LlcStats& stats() const { return stats_; }
  void ResetStats() { stats_ = LlcStats(); }

 private:
  struct DomainSet {
    std::vector<uint64_t> slots;  // line address + 1, 0 = empty
    size_t mask = 0;
    size_t size = 0;
    size_t capacity = 0;
  };

  bool Lookup(const DomainSet& set, uint64_t line) const;
  void Insert(DomainSet& set, uint64_t line);
  void Erase(DomainSet& set, uint64_t line);

  const CpuTopology* topology_;
  std::vector<DomainSet> domains_;
  Rng rng_;
  LlcStats stats_;
};

}  // namespace wsc::hw

#endif  // WSC_HW_LLC_MODEL_H_
