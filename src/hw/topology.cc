#include "hw/topology.h"

#include "common/logging.h"

namespace wsc::hw {

CpuTopology::CpuTopology(PlatformSpec spec) : spec_(std::move(spec)) {
  WSC_CHECK_GT(spec_.sockets, 0);
  WSC_CHECK_GT(spec_.llc_domains_per_socket, 0);
  WSC_CHECK_GT(spec_.cores_per_domain, 0);
  WSC_CHECK_GT(spec_.threads_per_core, 0);
}

// Logical CPUs are numbered so that consecutive ids fill a core's SMT
// siblings, then the next core in the same domain, then the next domain.
int CpuTopology::CoreOfCpu(int cpu) const {
  WSC_DCHECK_GE(cpu, 0);
  WSC_DCHECK_LT(cpu, num_cpus());
  return cpu / spec_.threads_per_core;
}

int CpuTopology::DomainOfCpu(int cpu) const {
  return CoreOfCpu(cpu) / spec_.cores_per_domain;
}

int CpuTopology::SocketOfCpu(int cpu) const {
  return DomainOfCpu(cpu) / spec_.llc_domains_per_socket;
}

double CpuTopology::TransferLatencyNs(int cpu_from, int cpu_to) const {
  return DomainTransferLatencyNs(DomainOfCpu(cpu_from), DomainOfCpu(cpu_to));
}

double CpuTopology::DomainTransferLatencyNs(int domain_from,
                                            int domain_to) const {
  if (domain_from == domain_to) return spec_.intra_domain_latency_ns;
  int socket_from = domain_from / spec_.llc_domains_per_socket;
  int socket_to = domain_to / spec_.llc_domains_per_socket;
  if (socket_from == socket_to) return spec_.inter_domain_latency_ns;
  return spec_.inter_socket_latency_ns;
}

PlatformSpec PlatformSpecFor(PlatformGeneration gen) {
  PlatformSpec spec;
  switch (gen) {
    case PlatformGeneration::kGenA:
      spec.name = "gen-a-monolithic";
      spec.sockets = 1;
      spec.llc_domains_per_socket = 1;
      spec.cores_per_domain = 28;
      spec.threads_per_core = 2;
      spec.ghz = 2.0;
      break;
    case PlatformGeneration::kGenB:
      spec.name = "gen-b-monolithic";
      spec.sockets = 1;
      spec.llc_domains_per_socket = 1;
      spec.cores_per_domain = 36;
      spec.threads_per_core = 2;
      spec.ghz = 2.2;
      break;
    case PlatformGeneration::kGenC:
      spec.name = "gen-c-chiplet";
      spec.sockets = 1;
      spec.llc_domains_per_socket = 4;
      spec.cores_per_domain = 8;
      spec.threads_per_core = 2;
      spec.ghz = 2.4;
      break;
    case PlatformGeneration::kGenD:
      spec.name = "gen-d-chiplet";
      spec.sockets = 2;
      spec.llc_domains_per_socket = 4;
      spec.cores_per_domain = 8;
      spec.threads_per_core = 2;
      spec.ghz = 2.6;
      break;
    case PlatformGeneration::kGenE:
      spec.name = "gen-e-chiplet";
      spec.sockets = 2;
      spec.llc_domains_per_socket = 8;
      spec.cores_per_domain = 8;
      spec.threads_per_core = 2;
      spec.ghz = 2.8;
      break;
  }
  return spec;
}

std::vector<PlatformGeneration> AllPlatformGenerations() {
  return {PlatformGeneration::kGenA, PlatformGeneration::kGenB,
          PlatformGeneration::kGenC, PlatformGeneration::kGenD,
          PlatformGeneration::kGenE};
}

}  // namespace wsc::hw
