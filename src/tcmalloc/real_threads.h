// Real-threads execution mode (--exec=real-threads).
//
// The simulator's Allocator models concurrency with discrete-event virtual
// threads so every result is bit-identical; this file is the other half of
// the story: a real allocator front/middle end that OS threads hammer
// concurrently, so contention, cache-line traffic, and refill scalability
// are measured instead of modeled. It shares the size-class table and
// AllocatorConfig with the simulator but deliberately does NOT touch the
// simulated Allocator — the deterministic oracle stays byte-for-byte
// untouched (tools/check_determinism.sh enforces this).
//
// Design, shaped by two results from the literature (see DESIGN.md):
//
//  * The per-thread fast path is genuinely lock-free: each registered
//    thread owns a ThreadCache whose per-class freelists are plain
//    push/pop — no atomics, no fences on the hit path — and size-class
//    lookup is the branch-free flat LUT in SizeClasses::ClassFor.
//
//  * Replenishment is sharded end to end. SNIPPETS.md Snippet 1
//    (AllocatorBench) documents the trap where sharding only the
//    size-class freelist locks moves the bottleneck to a global refill
//    lock and scaling stays flat. Here BOTH the transfer cache and the
//    CFL-equivalent free store are sharded by (size class x shard), a
//    miss on the home shard work-steals from sibling shards before
//    carving fresh address space, and the final carve is a single
//    atomic fetch_add on the arena bump pointer — there is no global
//    lock anywhere on the refill path.
//
//  * Every hot per-thread / per-shard structure is alignas(64) so two
//    threads' hot state never share a cache line; static_asserts below
//    (duplicated in tools/check_alignment.cc, compiled by CI) pin the
//    layout.
//
// Memory: two backings behind one seam (tcmalloc/memory_backing.h).
//
//  * Virtual (default): addresses come from a private range and are never
//    dereferenced, so a 4 TiB heap costs nothing and ASan/TSan see only
//    the allocator's own bookkeeping — which is precisely what the tests
//    need to race-check. Freelists are side-table vectors.
//
//  * Real (AllocatorConfig::Builder::WithRealMemory()): one contiguous
//    MAP_NORESERVE reservation, hinted MADV_HUGEPAGE. Freelists thread
//    through the objects themselves (the link is the object's first
//    word), a per-page atomic directory recovers size classes for the
//    malloc shim's unsized free/usable_size, freed large ranges keep
//    their bookkeeping in their own first page, and
//    ReleaseMemoryToSystem() madvises pending large ranges back to the
//    OS. Exhaustion returns 0 (the shim turns that into ENOMEM) instead
//    of the virtual mode's CHECK.
//
// Telemetry: TelemetrySnapshot() exports "allocator", "thread_cache", and
// "contention" components (per-shard lock acquisitions, contended
// acquisitions, refill stalls, work steals, arena carves). It requires
// quiescence — call it after worker threads joined; the join gives the
// happens-before edge that makes the plain counter reads race-free.

#ifndef WSC_TCMALLOC_REAL_THREADS_H_
#define WSC_TCMALLOC_REAL_THREADS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "profiler/self_profiler.h"
#include "tcmalloc/config.h"
#include "tcmalloc/memory_backing.h"
#include "tcmalloc/pages.h"
#include "tcmalloc/size_classes.h"
#include "telemetry/registry.h"

namespace wsc::tcmalloc {

// Cache-line size the false-sharing audit pins. 64 bytes on every x86 and
// most AArch64 parts; hot structs are aligned to it so concurrent writers
// never invalidate each other's lines.
inline constexpr size_t kCacheLineSize = 64;

// Test-and-test-and-set spinlock that counts its own traffic. The counters
// are written only while the lock is held (single writer at a time), so
// they need no atomics; reading them requires quiescence. Spins are
// bounded before yielding so oversubscribed runs (more threads than
// cores — e.g. a 1-core CI box) degrade to scheduling instead of burning
// a full quantum per acquisition.
class ContendedLock {
 public:
  void Lock() {
    bool contended = false;
    while (locked_.exchange(true, std::memory_order_acquire)) {
      contended = true;
      int spins = 0;
      while (locked_.load(std::memory_order_relaxed)) {
        if (++spins >= kSpinsBeforeYield) {
          std::this_thread::yield();
          spins = 0;
        }
      }
    }
    ++acquisitions_;
    if (contended) ++contended_;
  }

  // Single attempt; used by the work-stealing probe so a busy sibling
  // shard is skipped instead of waited on.
  bool TryLock() {
    if (locked_.exchange(true, std::memory_order_acquire)) return false;
    ++acquisitions_;
    return true;
  }

  void Unlock() { locked_.store(false, std::memory_order_release); }

  // Quiescent reads (no concurrent holders).
  uint64_t acquisitions() const { return acquisitions_; }
  uint64_t contended() const { return contended_; }

 private:
  static constexpr int kSpinsBeforeYield = 64;

  std::atomic<bool> locked_{false};
  uint64_t acquisitions_ = 0;  // written under the lock
  uint64_t contended_ = 0;     // acquisitions that found the lock held
};

// One (size class x shard) slice of the transfer cache: a bounded stack of
// free objects batches move through between thread caches and the CFL
// store. All fields behind `lock`.
struct alignas(kCacheLineSize) TransferShard {
  ContendedLock lock;
  uint32_t capacity = 0;  // max cached objects; set at construction
  std::vector<uintptr_t> objects;  // virtual mode
  // Real mode: intrusive freelist threaded through object storage (the
  // link is the object's first word). `objects` stays empty.
  uintptr_t head = 0;
  uint32_t count = 0;

  uint64_t inserts = 0;
  uint64_t inserted_objects = 0;
  uint64_t insert_overflows = 0;  // inserts that spilled to the CFL shard
  uint64_t removes = 0;
  uint64_t removed_objects = 0;
  uint64_t remove_misses = 0;  // removes that found the shard empty
};

// One (size class x shard) slice of the central free store (the
// CFL-equivalent): the free objects of spans carved for this shard, plus
// the refill/steal/carve counters the "contention" component reports.
// All fields behind `lock` (stolen objects move victim->thief while both
// locks are held).
struct alignas(kCacheLineSize) CflShard {
  ContendedLock lock;
  std::vector<uintptr_t> free_objects;  // virtual mode
  // Real mode: intrusive freelist (see TransferShard).
  uintptr_t head = 0;
  uint32_t count = 0;

  uint64_t refills = 0;         // batch requests served
  uint64_t refill_stalls = 0;   // home shard could not cover the batch
  uint64_t steals = 0;          // successful cross-shard grabs
  uint64_t stolen_objects = 0;
  uint64_t steal_probes = 0;    // sibling shards probed (incl. failures)
  uint64_t carves = 0;          // fresh spans carved from the arena
  uint64_t carved_objects = 0;
};

// Per-thread cache: the lock-free fast path. Owned and written by exactly
// one thread between RegisterThread() and the thread's join; only the
// owner touches `lists` and the counters, so the hit path has no atomics
// at all. alignas keeps neighbouring caches off each other's lines.
class alignas(kCacheLineSize) RealThreadCache {
 public:
  struct ClassList {
    std::vector<uintptr_t> slots;  // virtual mode
    // Real mode: intrusive freelist threaded through the cached objects.
    uintptr_t head = 0;
    uint32_t count = 0;
    uint32_t cap = 0;  // per-class object cap (size_classes max_per_cpu)
  };

  int shard = 0;  // home (transfer, CFL) shard, assigned round-robin

  // Single-writer counters; read at quiescence by TelemetrySnapshot().
  uint64_t allocations = 0;
  uint64_t frees = 0;
  uint64_t fast_alloc_hits = 0;
  uint64_t fast_free_hits = 0;
  uint64_t underflows = 0;  // allocs that took the slow path
  uint64_t overflows = 0;   // frees that took the slow path
  uint64_t large_allocations = 0;
  uint64_t large_frees = 0;
  // Net bytes this thread allocated minus bytes it freed; negative for
  // threads that mostly free others' objects. The fleet-wide sum is the
  // live heap.
  int64_t live_bytes = 0;

  std::vector<ClassList> lists;

  size_t CachedObjects() const {
    size_t n = 0;
    // Exactly one of slots / count is populated per mode, so summing both
    // is correct in either.
    for (const ClassList& list : lists) n += list.slots.size() + list.count;
    return n;
  }
};

// The real-threads allocator: one shared instance, N OS threads.
//
// Usage:
//   RealThreadsAllocator alloc(config, /*expected_threads=*/8);
//   // per thread:
//   RealThreadCache* tc = alloc.RegisterThread();
//   uintptr_t p = alloc.Allocate(tc, 48);
//   alloc.Free(tc, p, 48);           // sized free; any thread may free
//   // after joining all threads:
//   telemetry::Snapshot snap = alloc.TelemetrySnapshot();
//
// Frees are sized (the caller passes the request size back, as with
// C++ sized-delete) so the free path needs no pagemap lookup; the
// simulator's pagemap already models that cost and re-modeling it here
// would add a global radix tree to an otherwise sharded design.
class RealThreadsAllocator {
 public:
  // `expected_threads` sizes the shard count (min(expected, kMaxShards),
  // overridable via `num_shards` for tests). More shards than threads
  // buys nothing; fewer concentrates contention — which the telemetry
  // then shows.
  explicit RealThreadsAllocator(
      const AllocatorConfig& config, int expected_threads,
      const SizeClasses* size_classes = &SizeClasses::Default(),
      int num_shards = 0);

  ~RealThreadsAllocator();

  RealThreadsAllocator(const RealThreadsAllocator&) = delete;
  RealThreadsAllocator& operator=(const RealThreadsAllocator&) = delete;

  // Registers the calling thread and returns its cache. Cold path (global
  // mutex); call once per thread. The returned pointer stays valid for
  // the allocator's lifetime and must only be used by one thread at a
  // time.
  RealThreadCache* RegisterThread();

  // Returns every object cached by `tc` to the middle end. Must be called
  // by the owning thread or after it joined.
  void FlushThreadCache(RealThreadCache* tc);

  // Lock-free on the fast path: per-thread list hit costs a LUT load and
  // a pop (pop_back in virtual mode, one pointer chase in real mode).
  // `size` must be > 0. Real mode returns 0 on arena exhaustion; the
  // virtual arena CHECKs instead, so virtual callers never see 0.
  uintptr_t Allocate(RealThreadCache* tc, size_t size) {
    WSC_PROF_SCOPE("rt/Allocate");
    WSC_DCHECK_GT(size, size_t{0});
    int cls = size_classes_->ClassFor(size);
    if (cls >= 0) return AllocateClass(tc, cls);
    return AllocateLarge(tc, size);
  }

  // Allocates one object of exactly size class `cls` (the Allocate fast
  // path with the class lookup already done). The aligned-allocation path
  // uses this to request a class whose size is a multiple of the
  // alignment.
  uintptr_t AllocateClass(RealThreadCache* tc, int cls) {
    ++tc->allocations;
    tc->live_bytes += static_cast<int64_t>(size_classes_->class_size(cls));
    RealThreadCache::ClassList& list = tc->lists[cls];
    if (real_) {
      if (list.head != 0) {
        ++tc->fast_alloc_hits;
        uintptr_t obj = list.head;
        list.head = *reinterpret_cast<uintptr_t*>(obj);
        --list.count;
        return obj;
      }
    } else if (!list.slots.empty()) {
      ++tc->fast_alloc_hits;
      uintptr_t obj = list.slots.back();
      list.slots.pop_back();
      return obj;
    }
    ++tc->underflows;
    uintptr_t obj = SlowAllocate(tc, cls);
    if (obj == 0) {
      // Real-memory exhaustion: undo the optimistic accounting so the
      // caller can fail the allocation cleanly (ENOMEM in the shim).
      --tc->allocations;
      --tc->underflows;
      tc->live_bytes -= static_cast<int64_t>(size_classes_->class_size(cls));
    }
    return obj;
  }

  // Sized free; `size` must match the Allocate request. Cross-thread
  // frees are the norm (the bench hands objects between threads): the
  // object lands in the FREEING thread's cache, exactly like production
  // TCMalloc.
  void Free(RealThreadCache* tc, uintptr_t addr, size_t size) {
    WSC_PROF_SCOPE("rt/Free");
    int cls = size_classes_->ClassFor(size);
    if (cls >= 0) {
      FreeClass(tc, cls, addr);
      return;
    }
    FreeLarge(tc, addr, size);
  }

  // The small-object free fast path with the class already known.
  void FreeClass(RealThreadCache* tc, int cls, uintptr_t addr) {
    ++tc->frees;
    tc->live_bytes -= static_cast<int64_t>(size_classes_->class_size(cls));
    RealThreadCache::ClassList& list = tc->lists[cls];
    if (real_) {
      if (list.count < list.cap) {
        ++tc->fast_free_hits;
        *reinterpret_cast<uintptr_t*>(addr) = list.head;
        list.head = addr;
        ++list.count;
        return;
      }
    } else if (list.slots.size() < list.cap) {
      ++tc->fast_free_hits;
      list.slots.push_back(addr);
      return;
    }
    ++tc->overflows;
    SlowFree(tc, cls, addr);
  }

  // ---- Real-memory mode API (the malloc shim's contract) ----

  // Unsized free: the page directory recovers the size class (or large
  // range length) from the address alone. Unknown addresses inside the
  // reservation are ignored (defensive: a double free of a large range
  // whose directory entry was already cleared must not corrupt the
  // allocator). Real mode only.
  void FreeAddr(RealThreadCache* tc, uintptr_t addr);

  // malloc_usable_size: the full capacity of the block `addr` points at,
  // or 0 when the address is not a live allocation of this allocator.
  size_t UsableSize(uintptr_t addr) const;

  // Whether `addr` falls inside this allocator's reservation (real mode;
  // always false in virtual mode). An Owns() address may still be unknown
  // to the directory — pair with UsableSize() for liveness.
  bool Owns(uintptr_t addr) const {
    return real_ && addr >= arena_base_ && addr < arena_end_;
  }

  // Aligned allocation (posix_memalign / aligned_alloc). `align` must be
  // a power of two. Small requests are served from the smallest size
  // class whose size is a multiple of `align` (spans are page-aligned, so
  // every object of such a class is aligned for align <= page size);
  // everything else takes an aligned large carve. Returns 0 on
  // exhaustion. Real mode only.
  uintptr_t AllocateAligned(RealThreadCache* tc, size_t size, size_t align);

  // madvises up to `bytes` of pending (freed, not yet released) large
  // ranges back to the OS; returns the bytes newly released as confirmed
  // by the backing. Virtual mode returns 0.
  size_t ReleaseMemoryToSystem(size_t bytes);

  BackendKind backend_kind() const {
    return real_ ? BackendKind::kRealMemory : BackendKind::kVirtualArena;
  }
  // The real backing (null in virtual mode); exposes reservation bounds
  // and release/commit stats.
  const MemoryBacking* backing() const { return backing_.get(); }

  // Pending large bytes above this watermark trigger an eager release on
  // the free path; 0 disables eager release. Set before worker threads
  // start (plain write).
  void SetLargeReleaseThreshold(size_t bytes) {
    large_release_threshold_bytes_ = bytes;
  }

  // fork() support for the malloc shim: ForkPrepare() (in
  // pthread_atfork's prepare hook) acquires every lock in a fixed order
  // so the child inherits them all in a known, consistent state;
  // ForkRelease() (parent and child hooks) drops them again. Without
  // this, a fork racing another thread's refill leaves a shard lock held
  // forever in the child.
  void ForkPrepare();
  void ForkRelease();

  int num_shards() const { return num_shards_; }
  int registered_threads() const;

  size_t ArenaUsedBytes() const {
    return arena_next_.load(std::memory_order_relaxed) - arena_base_;
  }

  // Bytes held from the "OS": small-object spans ever carved (spans are
  // never returned, like a cache-everything TCMalloc) plus live large
  // objects (freed large ranges are returned to the virtual OS
  // immediately). Quiescent.
  size_t FootprintBytes() const;

  // Quiescent: call only after all worker threads joined (the join is the
  // synchronization point for the plain per-thread/per-shard counters).
  telemetry::Snapshot TelemetrySnapshot() const;

 private:
  TransferShard& transfer_shard(int cls, int shard) {
    return transfer_[static_cast<size_t>(cls) * num_shards_ + shard];
  }
  CflShard& cfl_shard(int cls, int shard) {
    return cfl_[static_cast<size_t>(cls) * num_shards_ + shard];
  }

  uintptr_t SlowAllocate(RealThreadCache* tc, int cls);
  void SlowFree(RealThreadCache* tc, int cls, uintptr_t obj);
  uintptr_t AllocateLarge(RealThreadCache* tc, size_t size);
  void FreeLarge(RealThreadCache* tc, uintptr_t addr, size_t size);

  // Real-mode large path: first-fit over the pending (freed) range list,
  // else an aligned bump carve. `align` >= kPageSize, power of two.
  // Returns 0 on exhaustion.
  uintptr_t AllocateLargeReal(RealThreadCache* tc, size_t size,
                              size_t align);
  void FreeLargeReal(RealThreadCache* tc, uintptr_t addr, size_t pages);
  // Releases tails of pending large ranges until `want_bytes` confirmed
  // or the list is dry. Caller holds large_mu_.
  size_t ReleasePendingLocked(size_t want_bytes);

  // Fills out[0..want) from the CFL layer: home shard first, then
  // work-stealing probes of the siblings, then fresh carves. Returns the
  // number filled (always == want in virtual mode — the virtual arena
  // cannot run dry before the CHECK in CarveSpan fires; real mode can
  // return short, including 0, on exhaustion).
  int RefillFromCfl(int cls, int shard, uintptr_t* out, int want);

  // Returns objects to a CFL shard's free store (transfer overflow or
  // cache flush).
  void ReturnToCfl(int cls, int shard, const uintptr_t* objs, int count);

  // Carves one span of `cls` from the arena bump pointer and pushes its
  // objects onto `shard`'s free store. Caller holds shard.lock; the bump
  // itself is lock-free. Returns false when the real-memory reservation
  // is exhausted (the virtual arena CHECKs instead).
  bool CarveSpan(int cls, CflShard& shard);

  // Real mode: the per-page directory entry for `addr`'s page.
  std::atomic<uint32_t>& dir_entry(uintptr_t addr) const {
    WSC_DCHECK(addr >= arena_base_ && addr < arena_end_);
    return dir_[(addr - arena_base_) >> kPageShift];
  }

  const SizeClasses* size_classes_;
  int num_classes_;
  int num_shards_;

  // Per-class caps, derived once from SizeClassInfo / config.
  std::vector<uint32_t> thread_cap_;     // objects per thread cache
  std::vector<uint32_t> transfer_cap_;   // objects per transfer shard

  // Flat [cls * num_shards_ + shard] grids. Each element is 64-byte
  // aligned, so neighbouring shards never share a line. Plain arrays
  // (not vectors): the atomics inside ContendedLock make shards
  // immovable by design — a shard's address is its identity.
  size_t grid_size_ = 0;
  std::unique_ptr<TransferShard[]> transfer_;
  std::unique_ptr<CflShard[]> cfl_;

  // Address space. fetch_add / CAS on arena_next_ is the only cross-shard
  // hot-path synchronization in the whole refill chain. In virtual mode
  // the range is the config's arena; in real mode it is the backing's
  // mmap reservation.
  uintptr_t arena_base_ = 0;
  uintptr_t arena_end_ = 0;
  std::atomic<uintptr_t> arena_next_{0};
  std::atomic<uint64_t> small_carved_bytes_{0};
  std::atomic<int64_t> large_live_bytes_{0};
  std::atomic<uint64_t> large_carves_{0};

  // ---- Real-memory mode state ----
  // Page directory entry encoding: 0 = unknown; cls+1 = small page of
  // size class cls; kDirLargeFlag|pages = first page of a live large
  // range of `pages` pages. Interior large pages stay 0, which is safe:
  // starts never become interior (pending ranges are reused from the
  // front and never coalesced), so a stale entry cannot alias a live one.
  static constexpr uint32_t kDirLargeFlag = 0x80000000u;

  const bool real_;
  std::unique_ptr<RealMemoryBacking> backing_;  // null in virtual mode
  std::atomic<uint32_t>* dir_ = nullptr;  // one entry per reservation page
  size_t dir_entries_ = 0;

  // Freed large ranges, singly linked through their own first page (a
  // LargeRange header lives in the freed memory). Guarded by large_mu_;
  // the page counters are atomic only so FootprintBytes/telemetry can
  // read them without the mutex.
  struct LargeRange {
    uintptr_t next;
    size_t pages;
    bool released;  // tail (everything past the header page) madvised
  };
  std::mutex large_mu_;
  uintptr_t large_free_head_ = 0;
  std::atomic<size_t> large_free_pages_{0};
  std::atomic<size_t> large_unreleased_pages_{0};
  // Pending large bytes above this watermark trigger an eager release on
  // the free path (0 disables). ReleaseMemoryToSystem works regardless.
  size_t large_release_threshold_bytes_ = size_t{256} << 20;

  // Thread registry (cold path only).
  mutable std::mutex threads_mu_;
  std::vector<std::unique_ptr<RealThreadCache>> threads_;
  int next_shard_rr_ = 0;
};

// False-sharing audit: the layout contract the real-threads mode depends
// on. tools/check_alignment.cc compiles the same assertions standalone so
// CI fails loudly if a refactor drops an alignas.
static_assert(sizeof(ContendedLock) <= kCacheLineSize,
              "ContendedLock must fit in one cache line");
static_assert(alignof(TransferShard) == kCacheLineSize,
              "TransferShard lost its cache-line alignment");
static_assert(sizeof(TransferShard) % kCacheLineSize == 0,
              "adjacent TransferShards would share a cache line");
static_assert(alignof(CflShard) == kCacheLineSize,
              "CflShard lost its cache-line alignment");
static_assert(sizeof(CflShard) % kCacheLineSize == 0,
              "adjacent CflShards would share a cache line");
static_assert(alignof(RealThreadCache) == kCacheLineSize,
              "RealThreadCache lost its cache-line alignment");

}  // namespace wsc::tcmalloc

#endif  // WSC_TCMALLOC_REAL_THREADS_H_
