// Hugepage-aware page heap (Section 2.1 back-end, Section 4.4).
//
// Composes the three components of TCMalloc's hugepage-aware page heap:
//   (1) the hugepage filler for requests smaller than a hugepage,
//   (2) hugepage regions for requests that slightly exceed hugepages, and
//   (3) the hugepage cache for large whole-hugepage requests, whose tail
//       slack is donated to the filler.
// Also implements the page-backing oracle for the dTLB model and the
// page-heap fragmentation breakdown of Fig. 15.

#ifndef WSC_TCMALLOC_PAGE_HEAP_H_
#define WSC_TCMALLOC_PAGE_HEAP_H_

#include <cstdint>
#include <deque>
#include <unordered_set>

#include "common/flat_map.h"
#include "tcmalloc/central_free_list.h"
#include "tcmalloc/config.h"
#include "tcmalloc/huge_cache.h"
#include "tcmalloc/huge_page_filler.h"
#include "tcmalloc/huge_region.h"
#include "tcmalloc/pagemap.h"
#include "tcmalloc/size_classes.h"
#include "tcmalloc/span.h"
#include "tcmalloc/system_alloc.h"

namespace wsc::tcmalloc {

// Fig. 15-style component breakdown, all in bytes.
struct PageHeapStats {
  size_t filler_used = 0;
  size_t filler_free = 0;           // intact free pages (fragmentation)
  size_t filler_released = 0;       // subreleased free pages (returned)
  size_t region_used = 0;
  size_t region_free = 0;
  size_t cache_used = 0;            // large-span bytes on whole hugepages
  size_t cache_free = 0;            // cached free hugepages
  size_t cache_released = 0;        // free hugepages returned to the OS

  size_t TotalInUse() const { return filler_used + region_used + cache_used; }
  size_t TotalFree() const { return filler_free + region_free + cache_free; }
  size_t TotalReleased() const { return filler_released + cache_released; }
};

// The back-end of the allocator. Privately a HugePageBacking: the filler
// draws fresh hugepages from (and returns empty ones to) the huge cache
// through this page heap.
class PageHeap : public SpanSource, private HugePageBacking {
 public:
  PageHeap(const SizeClasses* size_classes, const AllocatorConfig& config,
           SystemAllocator* system, PageMap* pagemap);
  ~PageHeap() override = default;

  PageHeap(const PageHeap&) = delete;
  PageHeap& operator=(const PageHeap&) = delete;

  // SpanSource: small-object spans for the central free lists. Returns
  // nullptr when the filler cannot grow (fault injection or simulated
  // OOM); central free lists degrade to partial batches.
  Span* NewSpan(int cls) override;
  void ReturnSpan(Span* span) override;

  // Large allocations (> kMaxSmallSize), in pages. Returns nullptr when
  // every placement ladder rung fails (filler -> regions for sub-hugepage
  // spans, regions -> whole cache hugepages for awkward sizes); fallbacks
  // taken along the way are counted in large_fallbacks().
  Span* NewLargeSpan(Length pages);
  void FreeLargeSpan(Span* span);

  // Growth-failure observability for the failure telemetry component.
  uint64_t large_fallbacks() const { return large_fallbacks_; }
  uint64_t large_failures() const { return large_failures_; }
  uint64_t region_growth_failures() const {
    return regions_.growth_failures();
  }

  // Periodic background maintenance: subrelease from the filler when its
  // free fraction exceeds the configured threshold.
  void BackgroundRelease();

  // Pressure-driven release (the background reclaimer's final tier, also
  // backing MallocExtension::ReleaseMemoryToSystem): returns up to
  // `target_bytes` of free back-end memory to the OS — whole cached
  // hugepages first (cheapest: no live THP mapping breaks), then
  // aggressive filler subrelease with no demand guard. Returns the bytes
  // actually released.
  size_t ReleaseForPressure(size_t target_bytes);

  // True if the (live) address is backed by an intact transparent
  // hugepage. Subreleased filler hugepages are the only broken mappings a
  // live object can sit on.
  bool IsHugepageBacked(uintptr_t addr) const;

  // Fraction of in-use page-heap bytes residing on intact hugepages
  // (Fig. 17a's hugepage coverage).
  double HugepageCoverage() const;

  // Free bytes stranded on the filler-owned hugepage containing `addr`, or
  // 0 when the address is not filler-backed (regions and whole cache
  // hugepages carry no per-hugepage fragmentation by construction). The
  // heap profiler attributes these bytes to the live sampled objects that
  // pin the hugepage.
  size_t FragmentedBytesOnHugepage(uintptr_t addr) const;

  PageHeapStats stats() const;
  const FillerStats filler_stats() const { return filler_.stats(); }
  const HugeCacheStats cache_stats() const { return cache_.stats(); }

  // Publishes the back-end metrics: the page-heap breakdown (component
  // "page_heap") plus the filler, huge cache, and huge region components
  // it composes.
  void ContributeTelemetry(telemetry::MetricRegistry& registry) const;

  uint64_t spans_created() const { return next_span_id_; }

  // Attaches (or detaches, with nullptr) the flight recorder for this tier
  // and the filler it composes.
  void set_flight_recorder(trace::FlightRecorder* recorder) {
    trace_ = recorder;
    filler_.set_flight_recorder(recorder);
  }

 private:
  enum class LargeKind { kFiller, kRegion, kCache };
  struct LargeAlloc {
    LargeKind kind;
    int cache_hugepages = 0;        // whole hugepages (kCache)
    Length donated_head_pages = 0;  // span pages on the donated tail hp
  };

  Span* RegisterSpan(Span* span);

  // HugePageBacking: the filler's hugepage supply line.
  HugePageId GetHugePage() override;
  bool LastHugePageBacked() const override;
  void PutHugePage(HugePageId hp, bool intact) override;
  size_t ReleasePageRange(HugePageId hp, int offset, Length n) override;
  void CommitPageRange(HugePageId hp, int offset, Length n) override;

  // Erases up to `n` hugepages starting at `hp` from the unbacked set;
  // returns true if the run was unbacked (scarcity runs are uniform, so
  // checking the first index suffices).
  bool TakeUnbacked(HugePageId hp, int n);

  const SizeClasses* size_classes_;
  AllocatorConfig config_;
  SystemAllocator* system_;
  PageMap* pagemap_;

  HugeCache cache_;
  HugeRegionSet regions_;
  HugePageFiller filler_;

  // Large-span records by start address; flat open addressing, probed on
  // every large free.
  FlatPtrMap<LargeAlloc> large_allocs_;
  Length cache_span_pages_ = 0;  // large-span pages on non-donated hugepages
  uint64_t next_span_id_ = 0;
  uint64_t large_fallbacks_ = 0;  // ladder rung failed, next rung served
  uint64_t large_failures_ = 0;   // whole ladder failed -> nullptr
  // Whole cache hugepages granted without THP backing (hugepage
  // scarcity); consulted by IsHugepageBacked, erased on free. Regions and
  // filler hugepages track their own backing.
  std::unordered_set<uintptr_t> unbacked_;
  trace::FlightRecorder* trace_ = nullptr;

  // Sliding window of recent filler demand (used pages), sampled once per
  // BackgroundRelease call; its peak guards subrelease against transient
  // load troughs.
  std::deque<Length> recent_used_;
};

}  // namespace wsc::tcmalloc

#endif  // WSC_TCMALLOC_PAGE_HEAP_H_
