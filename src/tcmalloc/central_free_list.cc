#include "tcmalloc/central_free_list.h"

#include <bit>

#include "common/logging.h"
#include "profiler/self_profiler.h"

namespace wsc::tcmalloc {

CentralFreeList::CentralFreeList(int cls, const SizeClassInfo& info,
                                 int num_lists, SpanSource* source)
    : cls_(cls),
      info_(info),
      num_lists_(num_lists),
      source_(source),
      lists_(num_lists) {
  WSC_CHECK_GE(num_lists, 1);
  WSC_CHECK(source != nullptr);
}

CentralFreeList::~CentralFreeList() {
  // Spans still owned at teardown (process exit) are metadata we must free.
  auto drain = [](SpanList& list) {
    while (!list.empty()) delete list.PopFront();
  };
  for (SpanList& list : lists_) drain(list);
  drain(full_);
}

int CentralFreeList::ListIndexFor(int live) const {
  if (num_lists_ == 1) return 0;
  if (live <= 0) return num_lists_ - 1;
  // Paper: index = max(0, L - log2(A)); with zero-based lists this is
  // max(0, (L-1) - floor(log2(A))), so spans with fewer live allocations
  // land in higher-indexed lists and fine granularity is preserved at the
  // low-occupancy end (spans with 132 or 255 live allocations share a list).
  int log2_live = std::bit_width(static_cast<unsigned>(live)) - 1;
  int idx = (num_lists_ - 1) - log2_live;
  return idx < 0 ? 0 : idx;
}

void CentralFreeList::Relist(Span* span) {
  int target;
  if (span->full()) {
    target = num_lists_;  // sentinel: the full_ list
  } else {
    target = ListIndexFor(span->live_objects());
  }
  if (span->list_index == target) return;
  if (span->list_index == num_lists_) {
    full_.Remove(span);
  } else if (span->list_index >= 0) {
    lists_[span->list_index].Remove(span);
  }
  if (target == num_lists_) {
    full_.PushFront(span);
  } else {
    lists_[target].PushFront(span);
  }
  span->list_index = target;
}

int CentralFreeList::RemoveRange(uintptr_t* out, int n) {
  WSC_PROF_SCOPE("cfl/RemoveRange");
  int produced = 0;
  while (produced < n) {
    // Allocate from the most-occupied spans first (lowest list index). In
    // the baseline (num_lists_ == 1) this degenerates to "front of the
    // single list", i.e. whichever span happens to be first.
    Span* span = nullptr;
    for (SpanList& list : lists_) {
      if (!list.empty()) {
        span = list.front();
        break;
      }
    }
    if (span == nullptr) {
      span = source_->NewSpan(cls_);
      if (span == nullptr) {
        // The page heap cannot grow; hand back what we produced so far and
        // let the caller degrade (partial batch, emergency reclaim).
        ++span_fetch_failures_;
        break;
      }
      WSC_CHECK_EQ(span->size_class(), cls_);
      WSC_CHECK(span->empty());
      span->list_index = -1;
      ++num_spans_;
      ++stats_.fetched_spans;
      free_objects_ += static_cast<size_t>(span->capacity());
      lists_[ListIndexFor(0)].PushFront(span);
      span->list_index = ListIndexFor(0);
      if (trace_) {
        trace_->Emit(trace::EventType::kCflSpanAllocate, -1, -1, cls_,
                     static_cast<int16_t>(span->list_index), span->span_id,
                     static_cast<uint64_t>(span->capacity()));
      }
    }
    while (produced < n && !span->full()) {
      out[produced++] = span->AllocateObject();
      --free_objects_;
      ++stats_.allocations;
    }
    Relist(span);
  }
  return produced;
}

void CentralFreeList::InsertObject(Span* span, uintptr_t obj) {
  WSC_PROF_SCOPE("cfl/InsertObject");
  WSC_CHECK(span != nullptr);
  WSC_CHECK_EQ(span->size_class(), cls_);
  span->FreeObject(obj);
  ++free_objects_;
  ++stats_.deallocations;
  if (span->empty()) {
    // Every object came home: the span can be returned to the page heap.
    if (span->list_index == num_lists_) {
      full_.Remove(span);
    } else if (span->list_index >= 0) {
      lists_[span->list_index].Remove(span);
    }
    if (trace_) {
      trace_->Emit(trace::EventType::kCflSpanReturn, -1, -1, cls_,
                   static_cast<int16_t>(span->list_index), span->span_id,
                   static_cast<uint64_t>(span->capacity()));
    }
    span->list_index = -1;
    WSC_CHECK_GE(free_objects_, static_cast<size_t>(span->capacity()));
    free_objects_ -= static_cast<size_t>(span->capacity());
    --num_spans_;
    ++stats_.returned_spans;
    returned_span_ids_.push_back(span->span_id);
    source_->ReturnSpan(span);
    return;
  }
  Relist(span);
}

size_t CentralFreeList::num_live_spans_with_free_objects() const {
  size_t n = 0;
  for (const SpanList& list : lists_) n += list.size();
  return n;
}

double CentralFreeList::SpanReturnRate() const {
  if (stats_.fetched_spans == 0) return 0.0;
  return static_cast<double>(stats_.returned_spans) /
         static_cast<double>(stats_.fetched_spans);
}

std::vector<CentralFreeList::SpanSnapshot> CentralFreeList::SnapshotSpans()
    const {
  std::vector<SpanSnapshot> snapshot;
  snapshot.reserve(num_spans_);
  for (const SpanList& list : lists_) {
    for (Span* s = list.front(); s != nullptr; s = s->next) {
      snapshot.push_back({s->span_id, s->live_objects()});
    }
  }
  for (Span* s = full_.front(); s != nullptr; s = s->next) {
    snapshot.push_back({s->span_id, s->live_objects()});
  }
  return snapshot;
}

std::vector<uint64_t> CentralFreeList::DrainReturnedSpanIds() {
  std::vector<uint64_t> out;
  out.swap(returned_span_ids_);
  return out;
}

void CentralFreeList::ContributeTelemetry(
    telemetry::MetricRegistry& registry) const {
  registry.ExportCounter("central_free_list", "fetched_spans",
                         stats_.fetched_spans);
  registry.ExportCounter("central_free_list", "returned_spans",
                         stats_.returned_spans);
  registry.ExportCounter("central_free_list", "object_allocations",
                         stats_.allocations);
  registry.ExportCounter("central_free_list", "object_deallocations",
                         stats_.deallocations);
  registry.ExportGauge("central_free_list", "free_object_bytes",
                       static_cast<double>(FreeObjectBytes()));
  registry.ExportGauge("central_free_list", "spans",
                       static_cast<double>(num_spans_));
  registry.ExportGauge("central_free_list", "live_spans_with_free_objects",
                       static_cast<double>(num_live_spans_with_free_objects()));
  registry.ExportCounter("central_free_list", "span_fetch_failures",
                         span_fetch_failures_);
}

}  // namespace wsc::tcmalloc
