// Span: a contiguous run of TCMalloc pages carved into equal-size objects.
//
// A span belongs to exactly one size class (or none, for large allocations
// that bypass the caches). The central free list hands objects out of spans
// and returns whole spans to the page heap only when every object is free —
// which is why a single long-lived object strands a whole span (Section 4.3).
//
// Because this allocator manages a virtual arena (no real backing memory),
// per-object free/live state is tracked in a metadata bitmap rather than by
// threading a freelist through the objects themselves. The bitmap also gives
// us double-free detection for free.

#ifndef WSC_TCMALLOC_SPAN_H_
#define WSC_TCMALLOC_SPAN_H_

#include <cstdint>
#include <vector>

#include "tcmalloc/pages.h"

namespace wsc::tcmalloc {

// Allocation state of one span.
class Span {
 public:
  // Small-object span for `size_class` with `objects_per_span` objects of
  // `object_size` bytes each.
  Span(PageId first_page, Length num_pages, int size_class,
       size_t object_size, int objects_per_span);

  // Large span (single allocation, no size class).
  Span(PageId first_page, Length num_pages);

  PageId first_page() const { return first_page_; }
  Length num_pages() const { return num_pages_; }
  uintptr_t start_addr() const { return first_page_.Addr(); }
  size_t span_bytes() const { return LengthToBytes(num_pages_); }

  // -1 for large spans.
  int size_class() const { return size_class_; }
  bool is_large() const { return size_class_ < 0; }

  size_t object_size() const { return object_size_; }
  int capacity() const { return capacity_; }

  // Objects currently allocated to the application from this span.
  int live_objects() const { return live_; }
  // Objects handed out of the span but cached in upper tiers also count as
  // "allocated" from the span's perspective; the span cannot be returned
  // until they come back.
  bool empty() const { return live_ == 0; }
  bool full() const { return live_ == capacity_; }
  int free_objects() const { return capacity_ - live_; }

  // Pops one free object; span must not be full.
  uintptr_t AllocateObject();

  // Returns an object to the span; `addr` must be a live object address
  // belonging to this span (fatal otherwise — double free / wild pointer).
  void FreeObject(uintptr_t addr);

  // True if `addr` is the base address of an object currently live.
  bool IsLiveObject(uintptr_t addr) const;

  // Address of object `index`.
  uintptr_t ObjectAddr(int index) const {
    return start_addr() + static_cast<uintptr_t>(index) * object_size_;
  }

  // Intrusive doubly-linked list hooks (used by the central free list and
  // the page heap; a span is on at most one list at a time).
  Span* prev = nullptr;
  Span* next = nullptr;

  // Unique id assigned by the page heap at creation; used by telemetry to
  // track span return events across metadata reuse (Figs. 13 and 16).
  uint64_t span_id = 0;

  // Index of the occupancy list currently holding this span in the central
  // free list (-1 when not listed). Maintained by CentralFreeList.
  int list_index = -1;

 private:
  int IndexOf(uintptr_t addr) const;

  PageId first_page_;
  Length num_pages_;
  int size_class_;
  size_t object_size_;
  int capacity_;
  int live_ = 0;
  int next_hint_ = 0;  // rotating search start for the free-bit scan
  std::vector<uint64_t> live_bits_;  // bit i set => object i is allocated
};

// Intrusive list of spans. Head sentinel-free; O(1) push/remove.
class SpanList {
 public:
  bool empty() const { return head_ == nullptr; }
  Span* front() const { return head_; }
  size_t size() const { return size_; }

  // Pushes to the front.
  void PushFront(Span* span);

  // Removes a span known to be on this list.
  void Remove(Span* span);

  // Pops the front span (list must be non-empty).
  Span* PopFront();

 private:
  Span* head_ = nullptr;
  size_t size_ = 0;
};

}  // namespace wsc::tcmalloc

#endif  // WSC_TCMALLOC_SPAN_H_
