// Hugepage filler (Section 4.4).
//
// The filler packs spans smaller than a hugepage into hugepage-aligned
// 2 MiB regions so the kernel can back them with transparent hugepages. It
// frees a hugepage only when all spans on it are gone; it is the dominant
// source of page-heap fragmentation (Fig. 15: 83.6% of in-use memory, 94.4%
// of page-heap fragmentation). The baseline prioritizes placing spans on
// the hugepages that already have the most allocations. The paper's
// lifetime-aware design additionally segregates spans by their statically
// known capacity (objects per span): low-capacity spans (capacity < C,
// C = 16) have a high return rate (Fig. 16, Spearman -0.75) and are packed
// onto dedicated hugepages that therefore become fully free sooner.
//
// Subrelease: under memory pressure the filler can break a partially-free
// hugepage and return its free TCMalloc pages to the OS; that hugepage
// loses THP backing (the dTLB model then charges 4 KiB-entry walks).

#ifndef WSC_TCMALLOC_HUGE_PAGE_FILLER_H_
#define WSC_TCMALLOC_HUGE_PAGE_FILLER_H_

#include <cstdint>
#include <vector>

#include "common/flat_map.h"
#include "tcmalloc/pages.h"
#include "telemetry/registry.h"
#include "trace/flight_recorder.h"

namespace wsc::tcmalloc {

// Allocation bitmap over one hugepage's 256 TCMalloc pages.
class PageTracker {
 public:
  explicit PageTracker(HugePageId hp);

  HugePageId hugepage() const { return hp_; }
  Length used_pages() const { return used_; }
  Length free_pages() const { return kPagesPerHugePage - used_; }
  bool empty() const { return used_ == 0; }
  bool full() const { return used_ == kPagesPerHugePage; }

  // Longest run of contiguous free pages.
  Length LongestFreeRange() const;

  // Allocates `n` contiguous pages (first fit); returns the page offset
  // within the hugepage, or -1 if no run fits.
  int Allocate(Length n);

  // Marks [offset, offset+n) used; the range must currently be free.
  // Used for donated tails whose head is owned by a large span.
  void MarkAllocated(int offset, Length n);

  // Frees [offset, offset+n); the range must currently be used.
  void Free(int offset, Length n);

  // A hugepage that has been subreleased lost its THP backing for good
  // (until fully freed back to the OS).
  bool released() const { return released_; }
  void set_released(bool released) { released_ = released; }

  // Donated trackers carry the tail slack of a large allocation.
  bool donated() const { return donated_; }
  void set_donated(bool donated) { donated_ = donated; }

  // Lifetime set this tracker belongs to (see HugePageFiller).
  int lifetime_set() const { return lifetime_set_; }
  void set_lifetime_set(int s) { lifetime_set_ = s; }

  // Invokes fn(offset, len) for every maximal run of contiguous free
  // pages. Used by subrelease to hand the exact free ranges to the memory
  // backing (madvise in real-memory mode).
  template <typename Fn>
  void ForEachFreeRun(Fn&& fn) const {
    int run_start = -1;
    for (int i = 0; i < static_cast<int>(kPagesPerHugePage); ++i) {
      const bool used = (bitmap_[i / 64] >> (i % 64)) & 1;
      if (!used && run_start < 0) run_start = i;
      if (used && run_start >= 0) {
        fn(run_start, static_cast<Length>(i - run_start));
        run_start = -1;
      }
    }
    if (run_start >= 0) {
      fn(run_start,
         static_cast<Length>(static_cast<int>(kPagesPerHugePage) -
                             run_start));
    }
  }

  // Intrusive list hooks managed by HugePageFiller.
  PageTracker* prev = nullptr;
  PageTracker* next = nullptr;

 private:
  static constexpr int kWords = kPagesPerHugePage / 64;  // 4

  HugePageId hp_;
  Length used_ = 0;
  bool released_ = false;
  bool donated_ = false;
  int lifetime_set_ = 0;
  uint64_t bitmap_[kWords] = {};  // bit set => page used
};

// Filler statistics (drives Figs. 15 and 17).
struct FillerStats {
  Length used_pages = 0;          // pages allocated to spans
  Length free_pages = 0;          // free pages on intact hugepages
  Length released_free_pages = 0; // free pages on subreleased hugepages
  size_t total_hugepages = 0;
  size_t released_hugepages = 0;  // currently owned and broken
  size_t donated_hugepages = 0;
  uint64_t subrelease_events = 0;
  uint64_t hugepages_freed = 0;   // became fully empty and left the filler
  uint64_t growth_failures = 0;   // backing refused a hugepage, no fallback
  uint64_t cross_set_fallbacks = 0;  // placed across the lifetime boundary
  uint64_t unbacked_hugepages = 0;   // born without THP backing (scarcity)
};

// Supplier/consumer of the whole hugepages backing the filler: the page
// heap's huge cache in production, a harness in tests. A plain virtual
// interface rather than std::function callbacks — GetHugePage sits on the
// span-allocation slow path (every span miss that grows the footprint), so
// the indirection must be one devirtualizable call, not a type-erased
// closure.
class HugePageBacking {
 public:
  virtual ~HugePageBacking() = default;

  // Provides a fresh hugepage for the filler to pack spans into, or
  // kInvalidHugePage when the system refuses to grow (fault injection or
  // simulated OOM) — the filler then falls back or propagates the failure.
  virtual HugePageId GetHugePage() = 0;

  // Whether the hugepage from the most recent successful GetHugePage came
  // THP-backed; under hugepage scarcity the mapping is usable but not huge.
  virtual bool LastHugePageBacked() const { return true; }

  // Accepts a fully-empty hugepage leaving the filler; `intact` tells
  // whether it left THP-intact.
  virtual void PutHugePage(HugePageId hp, bool intact) = 0;

  // Returns pages [offset, offset+n) of `hp` to the OS (madvise in
  // real-memory mode). Returns the bytes the backing confirmed as *newly*
  // released; the default (test harnesses) confirms everything.
  virtual size_t ReleasePageRange(HugePageId hp, int offset, Length n) {
    (void)hp;
    (void)offset;
    return LengthToBytes(n);
  }

  // Declares pages [offset, offset+n) of `hp` in use again after a
  // ReleasePageRange (refault semantics; bookkeeping-only by default).
  virtual void CommitPageRange(HugePageId hp, int offset, Length n) {
    (void)hp;
    (void)offset;
    (void)n;
  }
};

// Packs sub-hugepage allocations into hugepages.
class HugePageFiller {
 public:
  // Lifetime sets: with lifetime awareness off everything goes to set 0.
  static constexpr int kLongLived = 0;
  static constexpr int kShortLived = 1;

  // `lifetime_aware` enables the dedicated short-lived hugepage set;
  // `capacity_threshold` is the paper's C (spans with capacity < C are
  // treated as short-lived). `backing` supplies fresh hugepages and takes
  // back fully-empty ones; it must outlive the filler.
  HugePageFiller(bool lifetime_aware, int capacity_threshold,
                 HugePageBacking* backing);
  ~HugePageFiller();

  HugePageFiller(const HugePageFiller&) = delete;
  HugePageFiller& operator=(const HugePageFiller&) = delete;

  // Allocates `n` contiguous pages (n < kPagesPerHugePage) for a span whose
  // size class has `span_capacity` objects per span. Returns the first
  // page, or kInvalidPageId when no tracker fits and the backing refuses a
  // fresh hugepage (with lifetime awareness on, the other lifetime set is
  // tried first — a mispacked span beats a failed allocation).
  PageId Allocate(Length n, int span_capacity);

  // Frees pages previously returned by Allocate.
  void Free(PageId page, Length n);

  // Accepts the tail of a large allocation: pages [donated_offset, 256) of
  // `hp` are free for the filler to pack spans into; pages before the
  // offset belong to the large span and are freed via FreeDonatedHead.
  // `backed` = false (injected hugepage scarcity) makes the tracker start
  // life broken, like a subreleased hugepage.
  void Donate(HugePageId hp, int donated_offset, bool backed = true);

  // Frees the large-span head of a donated hugepage.
  void FreeDonatedHead(HugePageId hp, Length head_pages);

  // Subreleases free pages from the sparsest hugepages until the filler's
  // intact free-page fraction drops below `target_fraction`.
  // `demand_guard_pages` free pages are additionally retained to absorb a
  // return to recent peak demand (the "skip subrelease" policy of adaptive
  // hugepage subrelease, Maas et al. ISMM'21) — without it every transient
  // load trough would break hugepages that are about to be refilled.
  // Returns pages released to the OS.
  Length SubreleaseExcess(double target_fraction,
                          Length demand_guard_pages = 0);

  // Aggressive pressure-driven subrelease (the background reclaimer's last
  // tier): releases free pages from the sparsest intact hugepages until at
  // least `need` pages are released or no intact free pages remain. Unlike
  // SubreleaseExcess there is no fraction target and no demand guard — a
  // process over its memory limit gives pages back even if load may
  // return. Returns pages released to the OS.
  Length SubreleaseUpTo(Length need);

  // True if `addr` lies on a hugepage owned by the filler that is still
  // THP-intact.
  bool IsIntactHugepage(uintptr_t addr) const;

  // Whether the filler owns the hugepage containing `addr` at all.
  bool Owns(uintptr_t addr) const;

  // Free pages on the filler-owned hugepage containing `addr` (intact or
  // subreleased), or 0 if the filler does not own it. The heap profiler
  // charges these to the live objects sharing the hugepage.
  Length FreePagesOnHugepage(uintptr_t addr) const;

  FillerStats stats() const;

  // In-use pages on intact hugepages (numerator of hugepage coverage).
  Length UsedPagesOnIntactHugepages() const;

  // Publishes this tier's metrics (component "huge_page_filler") into
  // `registry`.
  void ContributeTelemetry(telemetry::MetricRegistry& registry) const;

  // Attaches (or detaches, with nullptr) the flight recorder this tier
  // emits kFillerPlace/Subrelease events into.
  void set_flight_recorder(trace::FlightRecorder* recorder) {
    trace_ = recorder;
  }

 private:
  // lists_[set][free_pages] -> trackers with exactly that many free pages.
  // Index 0 (full trackers) through kPagesPerHugePage.
  using FreeLists = std::vector<PageTracker*>;

  PageTracker* FindTracker(HugePageId hp) const;
  void ListInsert(PageTracker* t);
  void ListRemove(PageTracker* t);

  // Picks the fullest tracker in `set` able to fit `n` contiguous pages;
  // prefers intact trackers over released ones, donated last.
  PageTracker* PickTracker(int set, Length n);

  // Marks the sparsest intact hugepages released until `need` pages are
  // released; shared victim-ordering core of SubreleaseExcess and
  // SubreleaseUpTo. Returns pages released.
  Length ReleaseSparsest(Length need);

  // Handles a tracker that became empty: returns the hugepage upstream.
  void ReleaseEmpty(PageTracker* t);

  bool lifetime_aware_;
  int capacity_threshold_;
  HugePageBacking* backing_;

  // Two lifetime sets x (free count -> list head). Donated trackers are
  // kept in a separate per-free-count structure.
  std::vector<FreeLists> lists_;        // [set][free_count]
  FreeLists donated_lists_;             // [free_count]

  // hugepage index -> tracker (ownership). Flat open addressing: this is
  // probed on every filler free and every dTLB backing query.
  FlatPtrMap<PageTracker*> tracker_index_;

  FillerStats stats_;
  trace::FlightRecorder* trace_ = nullptr;
};

}  // namespace wsc::tcmalloc

#endif  // WSC_TCMALLOC_HUGE_PAGE_FILLER_H_
