#include "tcmalloc/page_heap.h"

#include <algorithm>

#include "common/logging.h"
#include "profiler/self_profiler.h"

namespace wsc::tcmalloc {

namespace {
// Requests at or above a hugepage but below this length with a non-aligned
// tail are packed into shared hugepage regions ("slightly exceed the size
// of a hugepage", e.g. 2.1 MiB).
constexpr Length kRegionMaxPages = 4 * kPagesPerHugePage;  // 8 MiB
}  // namespace

PageHeap::PageHeap(const SizeClasses* size_classes,
                   const AllocatorConfig& config, SystemAllocator* system,
                   PageMap* pagemap)
    : size_classes_(size_classes),
      config_(config),
      system_(system),
      pagemap_(pagemap),
      cache_(system),
      regions_(&cache_),
      filler_(config.lifetime_aware_filler, config.filler_capacity_threshold,
              this) {
  WSC_CHECK(size_classes != nullptr);
  WSC_CHECK(system != nullptr);
  WSC_CHECK(pagemap != nullptr);
}

HugePageId PageHeap::GetHugePage() { return cache_.Allocate(1); }

size_t PageHeap::ReleasePageRange(HugePageId hp, int offset, Length n) {
  return system_->Release(hp.Addr() + LengthToBytes(offset),
                          LengthToBytes(n));
}

void PageHeap::CommitPageRange(HugePageId hp, int offset, Length n) {
  system_->Commit(hp.Addr() + LengthToBytes(offset), LengthToBytes(n));
}

bool PageHeap::LastHugePageBacked() const {
  return cache_.last_allocation_backed();
}

void PageHeap::PutHugePage(HugePageId hp, bool intact) {
  cache_.Release(hp, 1, intact);
}

bool PageHeap::TakeUnbacked(HugePageId hp, int n) {
  if (unbacked_.empty()) return false;
  bool found = unbacked_.count(hp.index) > 0;
  for (int i = 0; i < n; ++i) {
    unbacked_.erase(hp.index + static_cast<uintptr_t>(i));
  }
  return found;
}

Span* PageHeap::RegisterSpan(Span* span) {
  span->span_id = ++next_span_id_;
  pagemap_->Insert(span);
  return span;
}

Span* PageHeap::NewSpan(int cls) {
  WSC_PROF_SCOPE("page_heap/NewSpan");
  const SizeClassInfo& info = size_classes_->info(cls);
  WSC_CHECK_LT(info.pages_per_span, kPagesPerHugePage);
  PageId first = filler_.Allocate(info.pages_per_span, info.objects_per_span);
  if (!IsValid(first)) return nullptr;  // growth denied; CFLs degrade
  Span* span = RegisterSpan(new Span(first, info.pages_per_span, cls,
                                     info.size, info.objects_per_span));
  if (trace_) {
    trace_->Emit(trace::EventType::kPageHeapSpanAlloc, -1, -1, cls, -1,
                 span->span_id, static_cast<uint64_t>(span->num_pages()));
  }
  return span;
}

void PageHeap::ReturnSpan(Span* span) {
  WSC_PROF_SCOPE("page_heap/ReturnSpan");
  WSC_CHECK(!span->is_large());
  WSC_CHECK(span->empty());
  if (trace_) {
    trace_->Emit(trace::EventType::kPageHeapSpanFree, -1, -1,
                 static_cast<int16_t>(span->size_class()), -1, span->span_id,
                 static_cast<uint64_t>(span->num_pages()));
  }
  pagemap_->Erase(span);
  filler_.Free(span->first_page(), span->num_pages());
  delete span;
}

Span* PageHeap::NewLargeSpan(Length pages) {
  WSC_PROF_SCOPE("page_heap/NewLargeSpan");
  WSC_CHECK_GT(pages, 0u);
  LargeAlloc record;
  PageId first = kInvalidPageId;

  auto try_filler = [&] {
    // Large object that still fits inside one hugepage: pack via the filler
    // (span capacity 1: this is a high-return-rate span, Fig. 16).
    record.kind = LargeKind::kFiller;
    first = filler_.Allocate(pages, /*span_capacity=*/1);
  };
  auto try_region = [&] {
    record.kind = LargeKind::kRegion;
    first = regions_.Allocate(pages);
  };
  auto try_cache = [&] {
    record.kind = LargeKind::kCache;
    int k = static_cast<int>(
        (pages + kPagesPerHugePage - 1) / kPagesPerHugePage);
    HugePageId hp = cache_.Allocate(k);
    if (!IsValid(hp)) return;
    record.cache_hugepages = k;
    bool backed = cache_.last_allocation_backed();
    first = hp.first_page();
    Length slack = static_cast<Length>(k) * kPagesPerHugePage - pages;
    int owned = k;  // hugepages fully owned by the span (not donated)
    if (slack > 0) {
      // The allocation's tail partially covers the last hugepage; donate
      // the slack to the filler so small spans can use it.
      Length head = kPagesPerHugePage - slack;
      record.donated_head_pages = head;
      HugePageId last{hp.index + static_cast<uintptr_t>(k - 1)};
      filler_.Donate(last, static_cast<int>(head), backed);
      cache_span_pages_ += pages - head;
      owned = k - 1;
    } else {
      cache_span_pages_ += pages;
    }
    if (!backed) {
      for (int i = 0; i < owned; ++i) {
        unbacked_.insert(hp.index + static_cast<uintptr_t>(i));
      }
    }
  };

  // The placement ladder. When a rung's supply line is cut (fault
  // injection or simulated OOM) the next rung gets a chance: sub-hugepage
  // spans retry in the shared regions (which may have room without
  // growing), awkward region sizes round up to whole cache hugepages.
  if (pages < kPagesPerHugePage) {
    try_filler();
    if (!IsValid(first)) {
      try_region();
      if (IsValid(first)) ++large_fallbacks_;
    }
  } else if (pages % kPagesPerHugePage != 0 && pages < kRegionMaxPages) {
    try_region();
    if (!IsValid(first)) {
      try_cache();
      if (IsValid(first)) ++large_fallbacks_;
    }
  } else {
    try_cache();
  }
  if (!IsValid(first)) {
    ++large_failures_;
    return nullptr;
  }
  Span* span = RegisterSpan(new Span(first, pages));
  large_allocs_.Insert(span->start_addr(), record);
  if (trace_) {
    trace_->Emit(trace::EventType::kPageHeapSpanAlloc, -1, -1, -1, -1,
                 span->span_id, static_cast<uint64_t>(pages));
  }
  return span;
}

void PageHeap::FreeLargeSpan(Span* span) {
  WSC_PROF_SCOPE("page_heap/FreeLargeSpan");
  WSC_CHECK(span->is_large());
  if (trace_) {
    trace_->Emit(trace::EventType::kPageHeapSpanFree, -1, -1, -1, -1,
                 span->span_id, static_cast<uint64_t>(span->num_pages()));
  }
  LargeAlloc* found = large_allocs_.Find(span->start_addr());
  WSC_CHECK(found != nullptr);
  LargeAlloc record = *found;
  large_allocs_.Erase(span->start_addr());
  pagemap_->Erase(span);

  switch (record.kind) {
    case LargeKind::kFiller:
      filler_.Free(span->first_page(), span->num_pages());
      break;
    case LargeKind::kRegion:
      WSC_CHECK(regions_.Free(span->first_page(), span->num_pages()));
      break;
    case LargeKind::kCache: {
      HugePageId hp = HugePageContaining(span->first_page());
      int k = record.cache_hugepages;
      if (record.donated_head_pages > 0) {
        // Release the fully-owned hugepages; the donated tail hugepage is
        // handed back page-wise through the filler.
        bool intact = !TakeUnbacked(hp, k - 1);
        if (k > 1) cache_.Release(hp, k - 1, intact);
        HugePageId last{hp.index + static_cast<uintptr_t>(k - 1)};
        filler_.FreeDonatedHead(last, record.donated_head_pages);
        cache_span_pages_ -= span->num_pages() - record.donated_head_pages;
      } else {
        cache_.Release(hp, k, /*intact=*/!TakeUnbacked(hp, k));
        cache_span_pages_ -= span->num_pages();
      }
      break;
    }
  }
  delete span;
}

void PageHeap::BackgroundRelease() {
  WSC_PROF_SCOPE("page_heap/BackgroundRelease");
  // Track recent peak demand so transient troughs do not trigger
  // subrelease (free pages will be needed again when load returns).
  constexpr size_t kDemandWindow = 3;  // release intervals; production keeps
  // this window far shorter than the diurnal load period it guards against
  Length used = filler_.stats().used_pages;
  recent_used_.push_back(used);
  if (recent_used_.size() > kDemandWindow) recent_used_.pop_front();
  Length peak = *std::max_element(recent_used_.begin(), recent_used_.end());
  Length guard = peak > used ? peak - used : 0;
  filler_.SubreleaseExcess(config_.subrelease_free_fraction, guard);
}

size_t PageHeap::ReleaseForPressure(size_t target_bytes) {
  WSC_PROF_SCOPE("page_heap/ReleaseForPressure");
  size_t released = 0;
  if (target_bytes == 0) return 0;
  HugeCacheStats c = cache_.stats();
  if (c.cached_hugepages > 0) {
    size_t want_hp =
        (target_bytes + kHugePageSize - 1) / kHugePageSize;
    size_t keep =
        c.cached_hugepages > want_hp ? c.cached_hugepages - want_hp : 0;
    released += cache_.ReleaseExcess(keep) * kHugePageSize;
  }
  if (released < target_bytes) {
    Length need = BytesToLengthCeil(target_bytes - released);
    released += LengthToBytes(filler_.SubreleaseUpTo(need));
  }
  return released;
}

bool PageHeap::IsHugepageBacked(uintptr_t addr) const {
  if (filler_.Owns(addr)) return filler_.IsIntactHugepage(addr);
  PageId page = PageIdContaining(addr);
  if (regions_.Owns(page)) return regions_.IsBacked(page);
  // Whole cache hugepages never subrelease while occupied, but injected
  // hugepage scarcity can have granted them without THP backing.
  if (!unbacked_.empty() &&
      unbacked_.count(HugePageContainingAddr(addr).index) > 0) {
    return false;
  }
  return true;
}

size_t PageHeap::FragmentedBytesOnHugepage(uintptr_t addr) const {
  return LengthToBytes(filler_.FreePagesOnHugepage(addr));
}

double PageHeap::HugepageCoverage() const {
  PageHeapStats s = stats();
  size_t in_use = s.TotalInUse();
  if (in_use == 0) return 1.0;
  // Unbacked region/cache hugepages (injected scarcity) do not count as
  // covered; owned unbacked cache hugepages are fully used by their span.
  size_t intact_used = LengthToBytes(filler_.UsedPagesOnIntactHugepages()) +
                       LengthToBytes(regions_.backed_used_pages()) +
                       (s.cache_used - unbacked_.size() * kHugePageSize);
  return static_cast<double>(intact_used) / static_cast<double>(in_use);
}

PageHeapStats PageHeap::stats() const {
  PageHeapStats s;
  FillerStats f = filler_.stats();
  s.filler_used = LengthToBytes(f.used_pages);
  s.filler_free = LengthToBytes(f.free_pages);
  s.filler_released = LengthToBytes(f.released_free_pages);
  s.region_used = LengthToBytes(regions_.used_pages());
  s.region_free = LengthToBytes(regions_.free_pages());
  HugeCacheStats c = cache_.stats();
  s.cache_used = LengthToBytes(cache_span_pages_);
  s.cache_free = c.cached_hugepages * kHugePageSize;
  s.cache_released = c.released_hugepages * kHugePageSize;
  return s;
}

void PageHeap::ContributeTelemetry(
    telemetry::MetricRegistry& registry) const {
  const PageHeapStats s = stats();
  registry.ExportGauge("page_heap", "filler_used_bytes",
                       static_cast<double>(s.filler_used));
  registry.ExportGauge("page_heap", "filler_free_bytes",
                       static_cast<double>(s.filler_free));
  registry.ExportGauge("page_heap", "filler_released_bytes",
                       static_cast<double>(s.filler_released));
  registry.ExportGauge("page_heap", "region_used_bytes",
                       static_cast<double>(s.region_used));
  registry.ExportGauge("page_heap", "region_free_bytes",
                       static_cast<double>(s.region_free));
  registry.ExportGauge("page_heap", "cache_used_bytes",
                       static_cast<double>(s.cache_used));
  registry.ExportGauge("page_heap", "cache_free_bytes",
                       static_cast<double>(s.cache_free));
  registry.ExportGauge("page_heap", "cache_released_bytes",
                       static_cast<double>(s.cache_released));
  registry.ExportCounter("page_heap", "spans_created", next_span_id_);
  registry.ExportCounter("page_heap", "large_fallbacks", large_fallbacks_);
  registry.ExportCounter("page_heap", "large_failures", large_failures_);
  filler_.ContributeTelemetry(registry);
  cache_.ContributeTelemetry(registry);
  regions_.ContributeTelemetry(registry);
}

}  // namespace wsc::tcmalloc
