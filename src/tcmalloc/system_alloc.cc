#include "tcmalloc/system_alloc.h"

#include "common/logging.h"

namespace wsc::tcmalloc {

SystemAllocator::SystemAllocator(uintptr_t base, size_t arena_bytes,
                                 double mmap_latency_ns)
    : base_(base),
      arena_bytes_(arena_bytes),
      next_(base),
      mmap_latency_ns_(mmap_latency_ns) {
  WSC_CHECK_EQ(base % kHugePageSize, 0u);
  WSC_CHECK_EQ(arena_bytes % kHugePageSize, 0u);
  WSC_CHECK_GT(arena_bytes, 0u);
}

HugePageId SystemAllocator::AllocateHugePages(int n) {
  WSC_CHECK_GT(n, 0);
  size_t bytes = static_cast<size_t>(n) * kHugePageSize;
  // A planned mmap fault or arena exhaustion (simulated OOM) is a counted
  // failure, never fatal: the tiers above fall back or surface nullptr.
  if (injector_ != nullptr && injector_->ShouldFailMmap()) {
    ++stats_.mmap_failures;
    return kInvalidHugePage;
  }
  if (next_ + bytes > base_ + arena_bytes_) {
    ++stats_.mmap_failures;
    return kInvalidHugePage;
  }
  uintptr_t addr = next_;
  next_ += bytes;
  ++stats_.mmap_calls;
  stats_.mapped_bytes += bytes;
  stats_.mmap_ns += mmap_latency_ns_;
  return HugePageContainingAddr(addr);
}

void SystemAllocator::ContributeTelemetry(
    telemetry::MetricRegistry& registry) const {
  registry.ExportCounter("system", "mmap_calls", stats_.mmap_calls);
  registry.ExportCounter("system", "mapped_bytes", stats_.mapped_bytes);
  registry.ExportGauge("system", "mmap_ns", stats_.mmap_ns);
  registry.ExportCounter("system", "mmap_failures", stats_.mmap_failures);
}

}  // namespace wsc::tcmalloc
