#include "tcmalloc/system_alloc.h"

#include "common/logging.h"

namespace wsc::tcmalloc {

SystemAllocator::SystemAllocator(uintptr_t base, size_t arena_bytes,
                                 double mmap_latency_ns)
    : owned_(std::make_unique<VirtualArenaBacking>(base, arena_bytes)),
      backing_(owned_.get()),
      mmap_latency_ns_(mmap_latency_ns) {}

SystemAllocator::SystemAllocator(MemoryBacking* backing,
                                 double mmap_latency_ns)
    : backing_(backing), mmap_latency_ns_(mmap_latency_ns) {
  WSC_CHECK(backing != nullptr);
}

HugePageId SystemAllocator::AllocateHugePages(int n) {
  WSC_CHECK_GT(n, 0);
  size_t bytes = static_cast<size_t>(n) * kHugePageSize;
  // A planned mmap fault or reservation exhaustion (OOM) is a counted
  // failure, never fatal: the tiers above fall back or surface nullptr.
  if (injector_ != nullptr && injector_->ShouldFailMmap()) {
    ++stats_.mmap_failures;
    return kInvalidHugePage;
  }
  uintptr_t addr = backing_->MapHugePages(n);
  if (addr == 0) {
    ++stats_.mmap_failures;
    return kInvalidHugePage;
  }
  ++stats_.mmap_calls;
  stats_.mapped_bytes += bytes;
  stats_.mmap_ns += mmap_latency_ns_;
  return HugePageContainingAddr(addr);
}

size_t SystemAllocator::Release(uintptr_t addr, size_t bytes) {
  const size_t fresh = backing_->Release(addr, bytes);
  stats_.released_bytes += fresh;
  return fresh;
}

void SystemAllocator::Commit(uintptr_t addr, size_t bytes) {
  const size_t before = backing_->stats().recommitted_bytes;
  backing_->Commit(addr, bytes);
  stats_.recommitted_bytes += backing_->stats().recommitted_bytes - before;
}

void SystemAllocator::ContributeTelemetry(
    telemetry::MetricRegistry& registry) const {
  registry.ExportCounter("system", "mmap_calls", stats_.mmap_calls);
  registry.ExportCounter("system", "mapped_bytes", stats_.mapped_bytes);
  registry.ExportGauge("system", "mmap_ns", stats_.mmap_ns);
  registry.ExportCounter("system", "mmap_failures", stats_.mmap_failures);
  registry.ExportCounter("system", "backing_released_bytes",
                         stats_.released_bytes);
  registry.ExportCounter("system", "backing_recommitted_bytes",
                         stats_.recommitted_bytes);
}

}  // namespace wsc::tcmalloc
