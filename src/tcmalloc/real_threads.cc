#include "tcmalloc/real_threads.h"

#include <algorithm>

namespace wsc::tcmalloc {

namespace {

// Shards beyond the thread count add footprint without reducing
// contention; 16 covers every core count this repo's benches target.
constexpr int kMaxShards = 16;

// Stack-buffer bound for batch moves; size-class batch sizes top out at 32.
constexpr int kMaxBatch = 64;

// Pops up to `want` objects from the back of `from` into `out`.
int TakeBack(std::vector<uintptr_t>& from, uintptr_t* out, int want) {
  int take = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(want), from.size()));
  for (int i = 0; i < take; ++i) {
    out[i] = from.back();
    from.pop_back();
  }
  return take;
}

}  // namespace

RealThreadsAllocator::RealThreadsAllocator(const AllocatorConfig& config,
                                           int expected_threads,
                                           const SizeClasses* size_classes,
                                           int num_shards)
    : size_classes_(size_classes),
      num_classes_(size_classes->num_classes()) {
  num_shards_ = num_shards > 0 ? std::min(num_shards, kMaxShards)
                               : std::clamp(expected_threads, 1, kMaxShards);

  thread_cap_.resize(num_classes_);
  transfer_cap_.resize(num_classes_);
  for (int cls = 0; cls < num_classes_; ++cls) {
    const SizeClassInfo& info = size_classes_->info(cls);
    WSC_CHECK_LE(info.batch_size, kMaxBatch);
    thread_cap_[cls] = static_cast<uint32_t>(info.max_per_cpu_objects);
    // The simulator's transfer cache budgets transfer_cache_batches
    // batches per class; split that budget across the shards, with a
    // two-batch floor so every shard can absorb an insert and still
    // serve a remove.
    int batches = std::max(2, config.transfer_cache_batches / num_shards_);
    transfer_cap_[cls] = static_cast<uint32_t>(batches * info.batch_size);
  }

  grid_size_ = static_cast<size_t>(num_classes_) * num_shards_;
  transfer_ = std::make_unique<TransferShard[]>(grid_size_);
  cfl_ = std::make_unique<CflShard[]>(grid_size_);
  for (int cls = 0; cls < num_classes_; ++cls) {
    for (int shard = 0; shard < num_shards_; ++shard) {
      transfer_shard(cls, shard).capacity = transfer_cap_[cls];
    }
  }

  arena_base_ = config.arena_base;
  arena_end_ = config.arena_base + config.arena_bytes;
  arena_next_.store(arena_base_, std::memory_order_relaxed);
}

RealThreadCache* RealThreadsAllocator::RegisterThread() {
  std::lock_guard<std::mutex> guard(threads_mu_);
  auto tc = std::make_unique<RealThreadCache>();
  tc->shard = next_shard_rr_;
  next_shard_rr_ = (next_shard_rr_ + 1) % num_shards_;
  tc->lists.resize(num_classes_);
  for (int cls = 0; cls < num_classes_; ++cls) {
    tc->lists[cls].cap = thread_cap_[cls];
  }
  RealThreadCache* raw = tc.get();
  threads_.push_back(std::move(tc));
  return raw;
}

int RealThreadsAllocator::registered_threads() const {
  std::lock_guard<std::mutex> guard(threads_mu_);
  return static_cast<int>(threads_.size());
}

void RealThreadsAllocator::FlushThreadCache(RealThreadCache* tc) {
  for (int cls = 0; cls < num_classes_; ++cls) {
    std::vector<uintptr_t>& slots = tc->lists[cls].slots;
    if (slots.empty()) continue;
    ReturnToCfl(cls, tc->shard, slots.data(),
                static_cast<int>(slots.size()));
    slots.clear();
  }
}

uintptr_t RealThreadsAllocator::SlowAllocate(RealThreadCache* tc, int cls) {
  WSC_PROF_SCOPE("rt/SlowAllocate");
  const int batch = size_classes_->batch_size(cls);
  uintptr_t buf[kMaxBatch];

  // One lock on the home transfer shard for the whole batch.
  TransferShard& ts = transfer_shard(cls, tc->shard);
  ts.lock.Lock();
  ++ts.removes;
  int got = TakeBack(ts.objects, buf, batch);
  ts.removed_objects += static_cast<uint64_t>(got);
  if (got == 0) ++ts.remove_misses;
  ts.lock.Unlock();

  if (got < batch) {
    got += RefillFromCfl(cls, tc->shard, buf + got, batch - got);
  }
  WSC_CHECK_GE(got, 1);

  // Keep one, cache the rest. The slow path only runs when the list is
  // empty and caps are >= two batches, so the remainder always fits.
  RealThreadCache::ClassList& list = tc->lists[cls];
  WSC_DCHECK_LE(static_cast<size_t>(got - 1), list.cap - list.slots.size());
  list.slots.insert(list.slots.end(), buf + 1, buf + got);
  return buf[0];
}

void RealThreadsAllocator::SlowFree(RealThreadCache* tc, int cls,
                                    uintptr_t obj) {
  WSC_PROF_SCOPE("rt/SlowFree");
  // The list is at cap: push one batch down to the middle end, then cache
  // the object being freed.
  const int batch = size_classes_->batch_size(cls);
  uintptr_t buf[kMaxBatch];
  RealThreadCache::ClassList& list = tc->lists[cls];
  int moved = TakeBack(list.slots, buf, batch);

  TransferShard& ts = transfer_shard(cls, tc->shard);
  ts.lock.Lock();
  ++ts.inserts;
  int room = static_cast<int>(ts.capacity) -
             static_cast<int>(ts.objects.size());
  int put = std::clamp(room, 0, moved);
  ts.objects.insert(ts.objects.end(), buf, buf + put);
  ts.inserted_objects += static_cast<uint64_t>(put);
  if (put < moved) ++ts.insert_overflows;
  ts.lock.Unlock();

  if (put < moved) {
    ReturnToCfl(cls, tc->shard, buf + put, moved - put);
  }
  list.slots.push_back(obj);
}

int RealThreadsAllocator::RefillFromCfl(int cls, int shard, uintptr_t* out,
                                        int want) {
  WSC_PROF_SCOPE("rt/RefillFromCfl");
  CflShard& home = cfl_shard(cls, shard);
  home.lock.Lock();
  ++home.refills;
  int got = TakeBack(home.free_objects, out, want);
  if (got < want) {
    ++home.refill_stalls;
    // Work-steal from sibling shards before carving fresh address space:
    // this is the piece Snippet 1's sharded allocator was missing — a
    // shard whose home store runs dry must not serialize on (or bloat)
    // the backing store while siblings sit on free objects. TryLock only:
    // a busy sibling is skipped, never waited on (also rules out
    // lock-order deadlock, since the only blocking acquisition held here
    // is the home shard's).
    for (int probe = 1; probe < num_shards_ && got < want; ++probe) {
      CflShard& victim = cfl_shard(cls, (shard + probe) % num_shards_);
      ++home.steal_probes;
      if (!victim.lock.TryLock()) continue;
      size_t avail = victim.free_objects.size();
      if (avail > 0) {
        // Take what the batch still needs plus half the surplus, so one
        // steal rebalances the pair instead of ping-ponging per object.
        size_t need = static_cast<size_t>(want - got);
        size_t take = std::min(avail, need + (avail - std::min(avail, need)) / 2);
        ++home.steals;
        home.stolen_objects += take;
        for (size_t i = 0; i < take; ++i) {
          uintptr_t obj = victim.free_objects.back();
          victim.free_objects.pop_back();
          if (got < want) {
            out[got++] = obj;
          } else {
            home.free_objects.push_back(obj);
          }
        }
      }
      victim.lock.Unlock();
    }
    while (got < want) {
      CarveSpan(cls, home);
      got += TakeBack(home.free_objects, out + got, want - got);
    }
  }
  home.lock.Unlock();
  return got;
}

void RealThreadsAllocator::ReturnToCfl(int cls, int shard,
                                       const uintptr_t* objs, int count) {
  WSC_PROF_SCOPE("rt/ReturnToCfl");
  CflShard& home = cfl_shard(cls, shard);
  home.lock.Lock();
  home.free_objects.insert(home.free_objects.end(), objs, objs + count);
  home.lock.Unlock();
}

void RealThreadsAllocator::CarveSpan(int cls, CflShard& shard) {
  WSC_PROF_SCOPE("rt/CarveSpan");
  const SizeClassInfo& info = size_classes_->info(cls);
  size_t span_bytes = LengthToBytes(info.pages_per_span);
  uintptr_t base =
      arena_next_.fetch_add(span_bytes, std::memory_order_relaxed);
  WSC_CHECK_LE(base + span_bytes, arena_end_);
  small_carved_bytes_.fetch_add(span_bytes, std::memory_order_relaxed);
  ++shard.carves;
  shard.carved_objects += static_cast<uint64_t>(info.objects_per_span);
  for (int i = 0; i < info.objects_per_span; ++i) {
    shard.free_objects.push_back(base + static_cast<size_t>(i) * info.size);
  }
}

uintptr_t RealThreadsAllocator::AllocateLarge(RealThreadCache* tc,
                                              size_t size) {
  ++tc->allocations;
  ++tc->large_allocations;
  size_t bytes = LengthToBytes(BytesToLengthCeil(size));
  uintptr_t addr = arena_next_.fetch_add(bytes, std::memory_order_relaxed);
  WSC_CHECK_LE(addr + bytes, arena_end_);
  large_live_bytes_.fetch_add(static_cast<int64_t>(bytes),
                              std::memory_order_relaxed);
  large_carves_.fetch_add(1, std::memory_order_relaxed);
  tc->live_bytes += static_cast<int64_t>(bytes);
  return addr;
}

void RealThreadsAllocator::FreeLarge(RealThreadCache* tc, uintptr_t addr,
                                     size_t size) {
  (void)addr;
  ++tc->frees;
  ++tc->large_frees;
  size_t bytes = LengthToBytes(BytesToLengthCeil(size));
  large_live_bytes_.fetch_sub(static_cast<int64_t>(bytes),
                              std::memory_order_relaxed);
  tc->live_bytes -= static_cast<int64_t>(bytes);
}

size_t RealThreadsAllocator::FootprintBytes() const {
  int64_t large = large_live_bytes_.load(std::memory_order_relaxed);
  return small_carved_bytes_.load(std::memory_order_relaxed) +
         static_cast<size_t>(std::max<int64_t>(0, large));
}

telemetry::Snapshot RealThreadsAllocator::TelemetrySnapshot() const {
  // Thread-cache aggregates. Quiescence contract: every worker has joined
  // (or only the caller is running), so plain reads are race-free.
  uint64_t allocations = 0, frees = 0;
  uint64_t fast_alloc_hits = 0, fast_free_hits = 0;
  uint64_t underflows = 0, overflows = 0;
  uint64_t large_allocations = 0, large_frees = 0;
  int64_t live_bytes = 0;
  uint64_t thread_cached_objects = 0;
  double thread_cached_bytes = 0;
  size_t nthreads = 0;
  {
    std::lock_guard<std::mutex> guard(threads_mu_);
    nthreads = threads_.size();
    for (const auto& tc : threads_) {
      allocations += tc->allocations;
      frees += tc->frees;
      fast_alloc_hits += tc->fast_alloc_hits;
      fast_free_hits += tc->fast_free_hits;
      underflows += tc->underflows;
      overflows += tc->overflows;
      large_allocations += tc->large_allocations;
      large_frees += tc->large_frees;
      live_bytes += tc->live_bytes;
      for (int cls = 0; cls < num_classes_; ++cls) {
        size_t n = tc->lists[cls].slots.size();
        thread_cached_objects += n;
        thread_cached_bytes +=
            static_cast<double>(n) *
            static_cast<double>(size_classes_->class_size(cls));
      }
    }
  }

  // Shard aggregates.
  uint64_t transfer_acq = 0, transfer_contended = 0;
  uint64_t transfer_inserts = 0, transfer_inserted = 0;
  uint64_t transfer_overflows = 0;
  uint64_t transfer_removes = 0, transfer_removed = 0, transfer_misses = 0;
  uint64_t transfer_cached = 0;
  for (size_t i = 0; i < grid_size_; ++i) {
    const TransferShard& ts = transfer_[i];
    transfer_acq += ts.lock.acquisitions();
    transfer_contended += ts.lock.contended();
    transfer_inserts += ts.inserts;
    transfer_inserted += ts.inserted_objects;
    transfer_overflows += ts.insert_overflows;
    transfer_removes += ts.removes;
    transfer_removed += ts.removed_objects;
    transfer_misses += ts.remove_misses;
    transfer_cached += ts.objects.size();
  }
  uint64_t cfl_acq = 0, cfl_contended = 0;
  uint64_t refills = 0, refill_stalls = 0;
  uint64_t steals = 0, stolen_objects = 0, steal_probes = 0;
  uint64_t carves = 0, carved_objects = 0;
  uint64_t cfl_free = 0;
  for (size_t i = 0; i < grid_size_; ++i) {
    const CflShard& cs = cfl_[i];
    cfl_acq += cs.lock.acquisitions();
    cfl_contended += cs.lock.contended();
    refills += cs.refills;
    refill_stalls += cs.refill_stalls;
    steals += cs.steals;
    stolen_objects += cs.stolen_objects;
    steal_probes += cs.steal_probes;
    carves += cs.carves;
    carved_objects += cs.carved_objects;
    cfl_free += cs.free_objects.size();
  }

  telemetry::MetricRegistry registry;
  registry.BeginExport();
  registry.ExportCounter("allocator", "allocations", allocations);
  registry.ExportCounter("allocator", "frees", frees);
  registry.ExportCounter("allocator", "large_allocations", large_allocations);
  registry.ExportCounter("allocator", "large_frees", large_frees);
  registry.ExportCounter("allocator", "carved_objects", carved_objects);
  registry.ExportGauge("allocator", "live_objects",
                       static_cast<double>(allocations - frees));
  registry.ExportGauge("allocator", "live_bytes",
                       static_cast<double>(live_bytes));
  registry.ExportGauge("allocator", "cached_objects",
                       static_cast<double>(thread_cached_objects +
                                           transfer_cached + cfl_free));
  registry.ExportGauge("allocator", "footprint_bytes",
                       static_cast<double>(FootprintBytes()));
  registry.ExportGauge("allocator", "arena_used_bytes",
                       static_cast<double>(ArenaUsedBytes()));

  registry.ExportCounter("thread_cache", "fast_alloc_hits", fast_alloc_hits);
  registry.ExportCounter("thread_cache", "fast_free_hits", fast_free_hits);
  registry.ExportCounter("thread_cache", "underflows", underflows);
  registry.ExportCounter("thread_cache", "overflows", overflows);
  registry.ExportGauge("thread_cache", "registered_threads",
                       static_cast<double>(nthreads));
  registry.ExportGauge("thread_cache", "cached_objects",
                       static_cast<double>(thread_cached_objects));
  registry.ExportGauge("thread_cache", "cached_bytes", thread_cached_bytes);

  registry.ExportCounter("sharded_transfer", "inserts", transfer_inserts);
  registry.ExportCounter("sharded_transfer", "inserted_objects",
                         transfer_inserted);
  registry.ExportCounter("sharded_transfer", "insert_overflows",
                         transfer_overflows);
  registry.ExportCounter("sharded_transfer", "removes", transfer_removes);
  registry.ExportCounter("sharded_transfer", "removed_objects",
                         transfer_removed);
  registry.ExportCounter("sharded_transfer", "remove_misses",
                         transfer_misses);
  registry.ExportGauge("sharded_transfer", "cached_objects",
                       static_cast<double>(transfer_cached));

  registry.ExportCounter("sharded_cfl", "refills", refills);
  registry.ExportCounter("sharded_cfl", "carves", carves);
  registry.ExportCounter("sharded_cfl", "carved_objects", carved_objects);
  registry.ExportGauge("sharded_cfl", "free_objects",
                       static_cast<double>(cfl_free));
  registry.ExportGauge("sharded_cfl", "num_shards",
                       static_cast<double>(num_shards_));

  // The contention component the fig_mt_scaling bench and
  // check_bench_json.py key on: lock traffic, refill stalls, and how the
  // stalls were resolved (steal vs carve).
  registry.ExportCounter("contention", "transfer_lock_acquisitions",
                         transfer_acq);
  registry.ExportCounter("contention", "transfer_lock_contended",
                         transfer_contended);
  registry.ExportCounter("contention", "cfl_lock_acquisitions", cfl_acq);
  registry.ExportCounter("contention", "cfl_lock_contended", cfl_contended);
  registry.ExportCounter("contention", "refill_stalls", refill_stalls);
  registry.ExportCounter("contention", "work_steals", steals);
  registry.ExportCounter("contention", "stolen_objects", stolen_objects);
  registry.ExportCounter("contention", "steal_probes", steal_probes);
  registry.ExportCounter("contention", "arena_carves",
                         carves + large_carves_.load(
                                      std::memory_order_relaxed));
  return registry.TakeSnapshot();
}

}  // namespace wsc::tcmalloc
