#include "tcmalloc/real_threads.h"

#include <algorithm>

namespace wsc::tcmalloc {

namespace {

// Shards beyond the thread count add footprint without reducing
// contention; 16 covers every core count this repo's benches target.
constexpr int kMaxShards = 16;

// Stack-buffer bound for batch moves; size-class batch sizes top out at 32.
constexpr int kMaxBatch = 64;

// Pops up to `want` objects from the back of `from` into `out`.
int TakeBack(std::vector<uintptr_t>& from, uintptr_t* out, int want) {
  int take = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(want), from.size()));
  for (int i = 0; i < take; ++i) {
    out[i] = from.back();
    from.pop_back();
  }
  return take;
}

// Real-mode counterparts of TakeBack / insert over an intrusive freelist
// whose link is the object's first word.
int TakeIntrusive(uintptr_t& head, uint32_t& count, uintptr_t* out,
                  int want) {
  int take = std::min(want, static_cast<int>(count));
  for (int i = 0; i < take; ++i) {
    out[i] = head;
    head = *reinterpret_cast<uintptr_t*>(head);
  }
  count -= static_cast<uint32_t>(take);
  return take;
}

void PutIntrusive(uintptr_t& head, uint32_t& count, const uintptr_t* objs,
                  int n) {
  for (int i = 0; i < n; ++i) {
    *reinterpret_cast<uintptr_t*>(objs[i]) = head;
    head = objs[i];
  }
  count += static_cast<uint32_t>(n);
}

// The real-memory reservation is capped below the simulator's default
// 4 TiB arena: virtual address space is nearly free, but the page
// directory costs 4 bytes per 8 KiB page of reservation.
constexpr size_t kMaxRealReserveBytes = size_t{256} << 30;  // 256 GiB

}  // namespace

RealThreadsAllocator::RealThreadsAllocator(const AllocatorConfig& config,
                                           int expected_threads,
                                           const SizeClasses* size_classes,
                                           int num_shards)
    : size_classes_(size_classes),
      num_classes_(size_classes->num_classes()),
      real_(config.real_memory) {
  num_shards_ = num_shards > 0 ? std::min(num_shards, kMaxShards)
                               : std::clamp(expected_threads, 1, kMaxShards);

  thread_cap_.resize(num_classes_);
  transfer_cap_.resize(num_classes_);
  for (int cls = 0; cls < num_classes_; ++cls) {
    const SizeClassInfo& info = size_classes_->info(cls);
    WSC_CHECK_LE(info.batch_size, kMaxBatch);
    thread_cap_[cls] = static_cast<uint32_t>(info.max_per_cpu_objects);
    // The simulator's transfer cache budgets transfer_cache_batches
    // batches per class; split that budget across the shards, with a
    // two-batch floor so every shard can absorb an insert and still
    // serve a remove.
    int batches = std::max(2, config.transfer_cache_batches / num_shards_);
    transfer_cap_[cls] = static_cast<uint32_t>(batches * info.batch_size);
  }

  grid_size_ = static_cast<size_t>(num_classes_) * num_shards_;
  transfer_ = std::make_unique<TransferShard[]>(grid_size_);
  cfl_ = std::make_unique<CflShard[]>(grid_size_);
  for (int cls = 0; cls < num_classes_; ++cls) {
    for (int shard = 0; shard < num_shards_; ++shard) {
      transfer_shard(cls, shard).capacity = transfer_cap_[cls];
    }
  }

  if (real_) {
    size_t reserve = config.real_memory_reserve_bytes != 0
                         ? config.real_memory_reserve_bytes
                         : std::min(config.arena_bytes, kMaxRealReserveBytes);
    backing_ = std::make_unique<RealMemoryBacking>(reserve);
    WSC_CHECK(backing_->ok());
    arena_base_ = backing_->base();
    arena_end_ = backing_->end();
    dir_entries_ = backing_->reserved_bytes() >> kPageShift;
    dir_ = reinterpret_cast<std::atomic<uint32_t>*>(
        RealMemoryBacking::MapMetadata(dir_entries_ * sizeof(uint32_t)));
    WSC_CHECK(dir_ != nullptr);
    static_assert(sizeof(LargeRange) <= kPageSize,
                  "large-range header must fit in its own first page");
    // The object's first word doubles as the freelist link, so every
    // class must hold one.
    WSC_CHECK_GE(size_classes_->class_size(0), sizeof(uintptr_t));
  } else {
    arena_base_ = config.arena_base;
    arena_end_ = config.arena_base + config.arena_bytes;
  }
  arena_next_.store(arena_base_, std::memory_order_relaxed);
}

RealThreadsAllocator::~RealThreadsAllocator() {
  if (dir_ != nullptr) {
    RealMemoryBacking::UnmapMetadata(reinterpret_cast<uintptr_t>(dir_),
                                     dir_entries_ * sizeof(uint32_t));
  }
}

RealThreadCache* RealThreadsAllocator::RegisterThread() {
  std::lock_guard<std::mutex> guard(threads_mu_);
  auto tc = std::make_unique<RealThreadCache>();
  tc->shard = next_shard_rr_;
  next_shard_rr_ = (next_shard_rr_ + 1) % num_shards_;
  tc->lists.resize(num_classes_);
  for (int cls = 0; cls < num_classes_; ++cls) {
    tc->lists[cls].cap = thread_cap_[cls];
  }
  RealThreadCache* raw = tc.get();
  threads_.push_back(std::move(tc));
  return raw;
}

int RealThreadsAllocator::registered_threads() const {
  std::lock_guard<std::mutex> guard(threads_mu_);
  return static_cast<int>(threads_.size());
}

void RealThreadsAllocator::FlushThreadCache(RealThreadCache* tc) {
  uintptr_t buf[kMaxBatch];
  for (int cls = 0; cls < num_classes_; ++cls) {
    RealThreadCache::ClassList& list = tc->lists[cls];
    if (real_) {
      while (list.count > 0) {
        int moved = TakeIntrusive(list.head, list.count, buf, kMaxBatch);
        ReturnToCfl(cls, tc->shard, buf, moved);
      }
      continue;
    }
    std::vector<uintptr_t>& slots = list.slots;
    if (slots.empty()) continue;
    ReturnToCfl(cls, tc->shard, slots.data(),
                static_cast<int>(slots.size()));
    slots.clear();
  }
}

uintptr_t RealThreadsAllocator::SlowAllocate(RealThreadCache* tc, int cls) {
  WSC_PROF_SCOPE("rt/SlowAllocate");
  const int batch = size_classes_->batch_size(cls);
  uintptr_t buf[kMaxBatch];

  // One lock on the home transfer shard for the whole batch.
  TransferShard& ts = transfer_shard(cls, tc->shard);
  ts.lock.Lock();
  ++ts.removes;
  int got = real_ ? TakeIntrusive(ts.head, ts.count, buf, batch)
                  : TakeBack(ts.objects, buf, batch);
  ts.removed_objects += static_cast<uint64_t>(got);
  if (got == 0) ++ts.remove_misses;
  ts.lock.Unlock();

  if (got < batch) {
    got += RefillFromCfl(cls, tc->shard, buf + got, batch - got);
  }
  if (got == 0) {
    // Only the real backing can run dry; the virtual arena CHECKs in
    // CarveSpan long before.
    WSC_CHECK(real_);
    return 0;
  }

  // Keep one, cache the rest. The slow path only runs when the list is
  // empty and caps are >= two batches, so the remainder always fits.
  RealThreadCache::ClassList& list = tc->lists[cls];
  if (real_) {
    PutIntrusive(list.head, list.count, buf + 1, got - 1);
  } else {
    WSC_DCHECK_LE(static_cast<size_t>(got - 1),
                  list.cap - list.slots.size());
    list.slots.insert(list.slots.end(), buf + 1, buf + got);
  }
  return buf[0];
}

void RealThreadsAllocator::SlowFree(RealThreadCache* tc, int cls,
                                    uintptr_t obj) {
  WSC_PROF_SCOPE("rt/SlowFree");
  // The list is at cap: push one batch down to the middle end, then cache
  // the object being freed.
  const int batch = size_classes_->batch_size(cls);
  uintptr_t buf[kMaxBatch];
  RealThreadCache::ClassList& list = tc->lists[cls];
  int moved = real_ ? TakeIntrusive(list.head, list.count, buf, batch)
                    : TakeBack(list.slots, buf, batch);

  TransferShard& ts = transfer_shard(cls, tc->shard);
  ts.lock.Lock();
  ++ts.inserts;
  int room = static_cast<int>(ts.capacity) -
             static_cast<int>(real_ ? ts.count : ts.objects.size());
  int put = std::clamp(room, 0, moved);
  if (real_) {
    PutIntrusive(ts.head, ts.count, buf, put);
  } else {
    ts.objects.insert(ts.objects.end(), buf, buf + put);
  }
  ts.inserted_objects += static_cast<uint64_t>(put);
  if (put < moved) ++ts.insert_overflows;
  ts.lock.Unlock();

  if (put < moved) {
    ReturnToCfl(cls, tc->shard, buf + put, moved - put);
  }
  if (real_) {
    PutIntrusive(list.head, list.count, &obj, 1);
  } else {
    list.slots.push_back(obj);
  }
}

int RealThreadsAllocator::RefillFromCfl(int cls, int shard, uintptr_t* out,
                                        int want) {
  WSC_PROF_SCOPE("rt/RefillFromCfl");
  CflShard& home = cfl_shard(cls, shard);
  home.lock.Lock();
  ++home.refills;
  int got = real_ ? TakeIntrusive(home.head, home.count, out, want)
                  : TakeBack(home.free_objects, out, want);
  if (got < want) {
    ++home.refill_stalls;
    // Work-steal from sibling shards before carving fresh address space:
    // this is the piece Snippet 1's sharded allocator was missing — a
    // shard whose home store runs dry must not serialize on (or bloat)
    // the backing store while siblings sit on free objects. TryLock only:
    // a busy sibling is skipped, never waited on (also rules out
    // lock-order deadlock, since the only blocking acquisition held here
    // is the home shard's).
    for (int probe = 1; probe < num_shards_ && got < want; ++probe) {
      CflShard& victim = cfl_shard(cls, (shard + probe) % num_shards_);
      ++home.steal_probes;
      if (!victim.lock.TryLock()) continue;
      size_t avail = real_ ? victim.count : victim.free_objects.size();
      if (avail > 0) {
        // Take what the batch still needs plus half the surplus, so one
        // steal rebalances the pair instead of ping-ponging per object.
        size_t need = static_cast<size_t>(want - got);
        size_t take = std::min(avail, need + (avail - std::min(avail, need)) / 2);
        ++home.steals;
        home.stolen_objects += take;
        for (size_t i = 0; i < take; ++i) {
          uintptr_t obj = 0;
          if (real_) {
            TakeIntrusive(victim.head, victim.count, &obj, 1);
          } else {
            obj = victim.free_objects.back();
            victim.free_objects.pop_back();
          }
          if (got < want) {
            out[got++] = obj;
          } else if (real_) {
            PutIntrusive(home.head, home.count, &obj, 1);
          } else {
            home.free_objects.push_back(obj);
          }
        }
      }
      victim.lock.Unlock();
    }
    while (got < want) {
      if (!CarveSpan(cls, home)) break;  // real-memory reservation dry
      got += real_
                 ? TakeIntrusive(home.head, home.count, out + got, want - got)
                 : TakeBack(home.free_objects, out + got, want - got);
    }
  }
  home.lock.Unlock();
  return got;
}

void RealThreadsAllocator::ReturnToCfl(int cls, int shard,
                                       const uintptr_t* objs, int count) {
  WSC_PROF_SCOPE("rt/ReturnToCfl");
  CflShard& home = cfl_shard(cls, shard);
  home.lock.Lock();
  if (real_) {
    PutIntrusive(home.head, home.count, objs, count);
  } else {
    home.free_objects.insert(home.free_objects.end(), objs, objs + count);
  }
  home.lock.Unlock();
}

bool RealThreadsAllocator::CarveSpan(int cls, CflShard& shard) {
  WSC_PROF_SCOPE("rt/CarveSpan");
  const SizeClassInfo& info = size_classes_->info(cls);
  size_t span_bytes = LengthToBytes(info.pages_per_span);
  uintptr_t base;
  if (real_) {
    // CAS loop instead of fetch_add so a failed carve does not advance
    // the bump pointer past the reservation.
    base = arena_next_.load(std::memory_order_relaxed);
    do {
      if (base + span_bytes > arena_end_) return false;
    } while (!arena_next_.compare_exchange_weak(base, base + span_bytes,
                                                std::memory_order_relaxed));
    // Publish the size class for every page of the span before the
    // objects escape via the shard lock, so FreeAddr/UsableSize on any
    // thread that legitimately receives an object sees the entry.
    for (size_t p = 0; p < static_cast<size_t>(info.pages_per_span); ++p) {
      dir_entry(base + (p << kPageShift))
          .store(static_cast<uint32_t>(cls) + 1, std::memory_order_relaxed);
    }
  } else {
    base = arena_next_.fetch_add(span_bytes, std::memory_order_relaxed);
    WSC_CHECK_LE(base + span_bytes, arena_end_);
  }
  small_carved_bytes_.fetch_add(span_bytes, std::memory_order_relaxed);
  ++shard.carves;
  shard.carved_objects += static_cast<uint64_t>(info.objects_per_span);
  if (real_) {
    // Push in reverse so pops hand out ascending addresses, matching the
    // virtual mode's TakeBack order.
    for (int i = info.objects_per_span - 1; i >= 0; --i) {
      uintptr_t obj = base + static_cast<size_t>(i) * info.size;
      PutIntrusive(shard.head, shard.count, &obj, 1);
    }
  } else {
    for (int i = 0; i < info.objects_per_span; ++i) {
      shard.free_objects.push_back(base + static_cast<size_t>(i) * info.size);
    }
  }
  return true;
}

uintptr_t RealThreadsAllocator::AllocateLarge(RealThreadCache* tc,
                                              size_t size) {
  if (real_) return AllocateLargeReal(tc, size, kPageSize);
  ++tc->allocations;
  ++tc->large_allocations;
  size_t bytes = LengthToBytes(BytesToLengthCeil(size));
  uintptr_t addr = arena_next_.fetch_add(bytes, std::memory_order_relaxed);
  WSC_CHECK_LE(addr + bytes, arena_end_);
  large_live_bytes_.fetch_add(static_cast<int64_t>(bytes),
                              std::memory_order_relaxed);
  large_carves_.fetch_add(1, std::memory_order_relaxed);
  tc->live_bytes += static_cast<int64_t>(bytes);
  return addr;
}

void RealThreadsAllocator::FreeLarge(RealThreadCache* tc, uintptr_t addr,
                                     size_t size) {
  if (real_) {
    // Trust the directory over the sized hint: an aligned allocation may
    // have carved more pages than the request implies.
    uint32_t entry = dir_entry(addr).load(std::memory_order_relaxed);
    WSC_CHECK(entry & kDirLargeFlag);
    FreeLargeReal(tc, addr, entry & ~kDirLargeFlag);
    return;
  }
  (void)addr;
  ++tc->frees;
  ++tc->large_frees;
  size_t bytes = LengthToBytes(BytesToLengthCeil(size));
  large_live_bytes_.fetch_sub(static_cast<int64_t>(bytes),
                              std::memory_order_relaxed);
  tc->live_bytes -= static_cast<int64_t>(bytes);
}

uintptr_t RealThreadsAllocator::AllocateLargeReal(RealThreadCache* tc,
                                                  size_t size, size_t align) {
  WSC_DCHECK((align & (align - 1)) == 0 && align >= kPageSize);
  size_t pages = static_cast<size_t>(BytesToLengthCeil(size));
  size_t bytes = pages << kPageShift;
  uintptr_t addr = 0;
  {
    std::lock_guard<std::mutex> guard(large_mu_);
    // First fit over pending ranges, reused from the front; tails become
    // new pending ranges (never coalesced, so range starts keep their
    // identity — the invariant the page directory's "interior pages stay
    // 0" encoding relies on). Range starts are page-aligned, so any range
    // satisfies align == kPageSize; bigger alignments must line up.
    uintptr_t* prev = &large_free_head_;
    for (uintptr_t cur = large_free_head_; cur != 0;) {
      LargeRange* range = reinterpret_cast<LargeRange*>(cur);
      if (range->pages >= pages && (cur & (align - 1)) == 0) {
        uintptr_t next = range->next;
        bool released = range->released;
        if (range->pages > pages) {
          uintptr_t tail = cur + bytes;
          if (released) {
            // The tail's new header page was madvised away; re-commit it
            // (bookkeeping only — the write below refaults it).
            backing_->Commit(tail, kPageSize);
          }
          LargeRange* tail_range = reinterpret_cast<LargeRange*>(tail);
          tail_range->next = next;
          tail_range->pages = range->pages - pages;
          tail_range->released = released;
          *prev = tail;
        } else {
          *prev = next;
        }
        large_free_pages_.fetch_sub(pages, std::memory_order_relaxed);
        if (released) {
          backing_->Commit(cur, bytes);
        } else {
          large_unreleased_pages_.fetch_sub(pages,
                                            std::memory_order_relaxed);
        }
        addr = cur;
        break;
      }
      prev = &range->next;
      cur = range->next;
    }
  }
  if (addr == 0) {
    // Bump-carve, aligning up. The skipped gap is never touched, so it
    // costs address space, not resident memory.
    uintptr_t base = arena_next_.load(std::memory_order_relaxed);
    uintptr_t aligned;
    do {
      aligned = (base + (align - 1)) & ~(align - 1);
      if (aligned + bytes > arena_end_) return 0;
    } while (!arena_next_.compare_exchange_weak(base, aligned + bytes,
                                                std::memory_order_relaxed));
    addr = aligned;
  }
  dir_entry(addr).store(kDirLargeFlag | static_cast<uint32_t>(pages),
                        std::memory_order_relaxed);
  ++tc->allocations;
  ++tc->large_allocations;
  large_live_bytes_.fetch_add(static_cast<int64_t>(bytes),
                              std::memory_order_relaxed);
  large_carves_.fetch_add(1, std::memory_order_relaxed);
  tc->live_bytes += static_cast<int64_t>(bytes);
  return addr;
}

void RealThreadsAllocator::FreeLargeReal(RealThreadCache* tc, uintptr_t addr,
                                         size_t pages) {
  size_t bytes = pages << kPageShift;
  dir_entry(addr).store(0, std::memory_order_relaxed);
  ++tc->frees;
  ++tc->large_frees;
  large_live_bytes_.fetch_sub(static_cast<int64_t>(bytes),
                              std::memory_order_relaxed);
  tc->live_bytes -= static_cast<int64_t>(bytes);

  std::lock_guard<std::mutex> guard(large_mu_);
  LargeRange* range = reinterpret_cast<LargeRange*>(addr);
  range->next = large_free_head_;
  range->pages = pages;
  range->released = false;
  large_free_head_ = addr;
  large_free_pages_.fetch_add(pages, std::memory_order_relaxed);
  size_t unreleased =
      large_unreleased_pages_.fetch_add(pages, std::memory_order_relaxed) +
      pages;
  if (large_release_threshold_bytes_ > 0 &&
      (unreleased << kPageShift) > large_release_threshold_bytes_) {
    ReleasePendingLocked((unreleased << kPageShift) -
                         large_release_threshold_bytes_ / 2);
  }
}

size_t RealThreadsAllocator::ReleasePendingLocked(size_t want_bytes) {
  size_t confirmed = 0;
  for (uintptr_t cur = large_free_head_; cur != 0 && confirmed < want_bytes;) {
    LargeRange* range = reinterpret_cast<LargeRange*>(cur);
    if (!range->released && range->pages > 1) {
      // Keep the header page resident — it holds the list node — and
      // return the tail to the OS.
      confirmed += backing_->Release(cur + kPageSize,
                                     (range->pages - 1) << kPageShift);
      range->released = true;
      large_unreleased_pages_.fetch_sub(range->pages,
                                        std::memory_order_relaxed);
    }
    cur = range->next;
  }
  return confirmed;
}

size_t RealThreadsAllocator::ReleaseMemoryToSystem(size_t bytes) {
  if (!real_) return 0;
  std::lock_guard<std::mutex> guard(large_mu_);
  return ReleasePendingLocked(bytes);
}

void RealThreadsAllocator::ForkPrepare() {
  // Fixed order (the reverse of ForkRelease): registry, large pool,
  // every shard, then the backing. Holding them all across fork() means
  // no lock in the child's copy belongs to a thread that no longer
  // exists.
  threads_mu_.lock();
  large_mu_.lock();
  for (size_t i = 0; i < grid_size_; ++i) transfer_[i].lock.Lock();
  for (size_t i = 0; i < grid_size_; ++i) cfl_[i].lock.Lock();
  if (backing_ != nullptr) backing_->ForkLock();
}

void RealThreadsAllocator::ForkRelease() {
  if (backing_ != nullptr) backing_->ForkUnlock();
  for (size_t i = 0; i < grid_size_; ++i) cfl_[i].lock.Unlock();
  for (size_t i = 0; i < grid_size_; ++i) transfer_[i].lock.Unlock();
  large_mu_.unlock();
  threads_mu_.unlock();
}

void RealThreadsAllocator::FreeAddr(RealThreadCache* tc, uintptr_t addr) {
  WSC_CHECK(real_);
  uint32_t entry = dir_entry(addr).load(std::memory_order_relaxed);
  if (entry == 0) return;  // unknown page: stale/foreign pointer, ignore
  if (entry & kDirLargeFlag) {
    // Only the exact range start is a valid large pointer.
    WSC_CHECK_EQ(addr & (kPageSize - 1), uintptr_t{0});
    FreeLargeReal(tc, addr, entry & ~kDirLargeFlag);
    return;
  }
  FreeClass(tc, static_cast<int>(entry) - 1, addr);
}

size_t RealThreadsAllocator::UsableSize(uintptr_t addr) const {
  if (!Owns(addr)) return 0;
  uint32_t entry = dir_[(addr - arena_base_) >> kPageShift].load(
      std::memory_order_relaxed);
  if (entry == 0) return 0;
  if (entry & kDirLargeFlag) {
    return static_cast<size_t>(entry & ~kDirLargeFlag) << kPageShift;
  }
  return size_classes_->class_size(static_cast<int>(entry) - 1);
}

uintptr_t RealThreadsAllocator::AllocateAligned(RealThreadCache* tc,
                                                size_t size, size_t align) {
  WSC_CHECK(real_);
  WSC_CHECK((align & (align - 1)) == 0 && align > 0);
  if (size == 0) size = 1;
  if (align <= sizeof(void*)) {
    // Size classes are at least pointer-aligned already.
    return Allocate(tc, size);
  }
  if (align <= kPageSize) {
    int cls = size_classes_->ClassFor(size);
    if (cls >= 0) {
      // Spans are page-aligned and objects are laid out back to back, so
      // every object of a class whose size is a multiple of `align` is
      // itself aligned (align divides the page size here).
      while (cls < num_classes_ &&
             size_classes_->class_size(cls) % align != 0) {
        ++cls;
      }
      if (cls < num_classes_) return AllocateClass(tc, cls);
    }
  }
  return AllocateLargeReal(tc, size, std::max(align, kPageSize));
}

size_t RealThreadsAllocator::FootprintBytes() const {
  int64_t large = large_live_bytes_.load(std::memory_order_relaxed);
  size_t fp = small_carved_bytes_.load(std::memory_order_relaxed) +
              static_cast<size_t>(std::max<int64_t>(0, large));
  if (real_) {
    // Pending large ranges are freed but still resident until released.
    fp += large_unreleased_pages_.load(std::memory_order_relaxed)
          << kPageShift;
  }
  return fp;
}

telemetry::Snapshot RealThreadsAllocator::TelemetrySnapshot() const {
  // Thread-cache aggregates. Quiescence contract: every worker has joined
  // (or only the caller is running), so plain reads are race-free.
  uint64_t allocations = 0, frees = 0;
  uint64_t fast_alloc_hits = 0, fast_free_hits = 0;
  uint64_t underflows = 0, overflows = 0;
  uint64_t large_allocations = 0, large_frees = 0;
  int64_t live_bytes = 0;
  uint64_t thread_cached_objects = 0;
  double thread_cached_bytes = 0;
  size_t nthreads = 0;
  {
    std::lock_guard<std::mutex> guard(threads_mu_);
    nthreads = threads_.size();
    for (const auto& tc : threads_) {
      allocations += tc->allocations;
      frees += tc->frees;
      fast_alloc_hits += tc->fast_alloc_hits;
      fast_free_hits += tc->fast_free_hits;
      underflows += tc->underflows;
      overflows += tc->overflows;
      large_allocations += tc->large_allocations;
      large_frees += tc->large_frees;
      live_bytes += tc->live_bytes;
      for (int cls = 0; cls < num_classes_; ++cls) {
        // One of slots/count is populated per mode; summing both covers
        // either.
        size_t n = tc->lists[cls].slots.size() + tc->lists[cls].count;
        thread_cached_objects += n;
        thread_cached_bytes +=
            static_cast<double>(n) *
            static_cast<double>(size_classes_->class_size(cls));
      }
    }
  }

  // Shard aggregates.
  uint64_t transfer_acq = 0, transfer_contended = 0;
  uint64_t transfer_inserts = 0, transfer_inserted = 0;
  uint64_t transfer_overflows = 0;
  uint64_t transfer_removes = 0, transfer_removed = 0, transfer_misses = 0;
  uint64_t transfer_cached = 0;
  for (size_t i = 0; i < grid_size_; ++i) {
    const TransferShard& ts = transfer_[i];
    transfer_acq += ts.lock.acquisitions();
    transfer_contended += ts.lock.contended();
    transfer_inserts += ts.inserts;
    transfer_inserted += ts.inserted_objects;
    transfer_overflows += ts.insert_overflows;
    transfer_removes += ts.removes;
    transfer_removed += ts.removed_objects;
    transfer_misses += ts.remove_misses;
    transfer_cached += ts.objects.size() + ts.count;
  }
  uint64_t cfl_acq = 0, cfl_contended = 0;
  uint64_t refills = 0, refill_stalls = 0;
  uint64_t steals = 0, stolen_objects = 0, steal_probes = 0;
  uint64_t carves = 0, carved_objects = 0;
  uint64_t cfl_free = 0;
  for (size_t i = 0; i < grid_size_; ++i) {
    const CflShard& cs = cfl_[i];
    cfl_acq += cs.lock.acquisitions();
    cfl_contended += cs.lock.contended();
    refills += cs.refills;
    refill_stalls += cs.refill_stalls;
    steals += cs.steals;
    stolen_objects += cs.stolen_objects;
    steal_probes += cs.steal_probes;
    carves += cs.carves;
    carved_objects += cs.carved_objects;
    cfl_free += cs.free_objects.size() + cs.count;
  }

  telemetry::MetricRegistry registry;
  registry.BeginExport();
  registry.ExportCounter("allocator", "allocations", allocations);
  registry.ExportCounter("allocator", "frees", frees);
  registry.ExportCounter("allocator", "large_allocations", large_allocations);
  registry.ExportCounter("allocator", "large_frees", large_frees);
  registry.ExportCounter("allocator", "carved_objects", carved_objects);
  registry.ExportGauge("allocator", "live_objects",
                       static_cast<double>(allocations - frees));
  registry.ExportGauge("allocator", "live_bytes",
                       static_cast<double>(live_bytes));
  registry.ExportGauge("allocator", "cached_objects",
                       static_cast<double>(thread_cached_objects +
                                           transfer_cached + cfl_free));
  registry.ExportGauge("allocator", "footprint_bytes",
                       static_cast<double>(FootprintBytes()));
  registry.ExportGauge("allocator", "arena_used_bytes",
                       static_cast<double>(ArenaUsedBytes()));

  registry.ExportCounter("thread_cache", "fast_alloc_hits", fast_alloc_hits);
  registry.ExportCounter("thread_cache", "fast_free_hits", fast_free_hits);
  registry.ExportCounter("thread_cache", "underflows", underflows);
  registry.ExportCounter("thread_cache", "overflows", overflows);
  registry.ExportGauge("thread_cache", "registered_threads",
                       static_cast<double>(nthreads));
  registry.ExportGauge("thread_cache", "cached_objects",
                       static_cast<double>(thread_cached_objects));
  registry.ExportGauge("thread_cache", "cached_bytes", thread_cached_bytes);

  registry.ExportCounter("sharded_transfer", "inserts", transfer_inserts);
  registry.ExportCounter("sharded_transfer", "inserted_objects",
                         transfer_inserted);
  registry.ExportCounter("sharded_transfer", "insert_overflows",
                         transfer_overflows);
  registry.ExportCounter("sharded_transfer", "removes", transfer_removes);
  registry.ExportCounter("sharded_transfer", "removed_objects",
                         transfer_removed);
  registry.ExportCounter("sharded_transfer", "remove_misses",
                         transfer_misses);
  registry.ExportGauge("sharded_transfer", "cached_objects",
                       static_cast<double>(transfer_cached));

  registry.ExportCounter("sharded_cfl", "refills", refills);
  registry.ExportCounter("sharded_cfl", "carves", carves);
  registry.ExportCounter("sharded_cfl", "carved_objects", carved_objects);
  registry.ExportGauge("sharded_cfl", "free_objects",
                       static_cast<double>(cfl_free));
  registry.ExportGauge("sharded_cfl", "num_shards",
                       static_cast<double>(num_shards_));

  // The contention component the fig_mt_scaling bench and
  // check_bench_json.py key on: lock traffic, refill stalls, and how the
  // stalls were resolved (steal vs carve).
  registry.ExportCounter("contention", "transfer_lock_acquisitions",
                         transfer_acq);
  registry.ExportCounter("contention", "transfer_lock_contended",
                         transfer_contended);
  registry.ExportCounter("contention", "cfl_lock_acquisitions", cfl_acq);
  registry.ExportCounter("contention", "cfl_lock_contended", cfl_contended);
  registry.ExportCounter("contention", "refill_stalls", refill_stalls);
  registry.ExportCounter("contention", "work_steals", steals);
  registry.ExportCounter("contention", "stolen_objects", stolen_objects);
  registry.ExportCounter("contention", "steal_probes", steal_probes);
  registry.ExportCounter("contention", "arena_carves",
                         carves + large_carves_.load(
                                      std::memory_order_relaxed));

  // Real-memory-only extras: backing release/commit traffic and the
  // pending large pool. Exported only in real mode so virtual-mode
  // snapshots stay byte-identical with the pre-backing builds.
  if (real_) {
    const MemoryBackingStats& bs = backing_->stats();
    registry.ExportCounter("system", "release_calls", bs.release_calls);
    registry.ExportCounter("system", "released_bytes", bs.released_bytes);
    registry.ExportCounter("system", "recommitted_bytes",
                           bs.recommitted_bytes);
    registry.ExportGauge("system", "reserved_bytes",
                         static_cast<double>(backing_->reserved_bytes()));
    registry.ExportGauge(
        "allocator", "large_pending_bytes",
        static_cast<double>(
            large_free_pages_.load(std::memory_order_relaxed) << kPageShift));
  }
  return registry.TakeSnapshot();
}

}  // namespace wsc::tcmalloc
