#include "tcmalloc/pagemap.h"

#include "common/logging.h"
#include "tcmalloc/span.h"

namespace wsc::tcmalloc {

PageMap::PageMap(PageId base_page, Length num_pages)
    : base_page_(base_page), num_pages_(num_pages) {
  size_t num_leaves = (num_pages + kLeafSize - 1) / kLeafSize;
  roots_.resize(num_leaves);
}

Span** PageMap::SlotFor(PageId page, bool create) {
  WSC_CHECK_GE(page.index, base_page_.index);
  uintptr_t rel = page.index - base_page_.index;
  WSC_CHECK_LT(rel, num_pages_);
  size_t leaf_idx = rel >> kLeafBits;
  size_t slot_idx = rel & (kLeafSize - 1);
  if (roots_[leaf_idx] == nullptr) {
    if (!create) return nullptr;
    roots_[leaf_idx] = std::make_unique<Leaf>();
  }
  return &roots_[leaf_idx]->spans[slot_idx];
}

void PageMap::Insert(Span* span) {
  for (Length i = 0; i < span->num_pages(); ++i) {
    Span** slot = SlotFor(span->first_page() + i, /*create=*/true);
    WSC_CHECK(*slot == nullptr);
    *slot = span;
  }
}

void PageMap::Erase(Span* span) {
  for (Length i = 0; i < span->num_pages(); ++i) {
    Span** slot = SlotFor(span->first_page() + i, /*create=*/false);
    WSC_CHECK(slot != nullptr && *slot == span);
    *slot = nullptr;
  }
}

Span* PageMap::Lookup(PageId page) const {
  if (page.index < base_page_.index) return nullptr;
  uintptr_t rel = page.index - base_page_.index;
  if (rel >= num_pages_) return nullptr;
  size_t leaf_idx = rel >> kLeafBits;
  size_t slot_idx = rel & (kLeafSize - 1);
  const auto& leaf = roots_[leaf_idx];
  if (leaf == nullptr) return nullptr;
  return leaf->spans[slot_idx];
}

}  // namespace wsc::tcmalloc
