// GWP-style allocation sampler (Section 2.2 / Section 3).
//
// Production TCMalloc samples one allocation per 2 MiB of allocated bytes
// and records a stack trace; the fleet profiles of Figs. 7 and 8 (object
// size and lifetime distributions) come from these samples. We reproduce
// the mechanism: a byte countdown selects sampled allocations, each sample
// carries its size and allocation timestamp, and the free path finalizes
// the lifetime. Sampled allocations are charged extra cycles (Fig. 6a's
// "Sampled" slice).

#ifndef WSC_TCMALLOC_SAMPLER_H_
#define WSC_TCMALLOC_SAMPLER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/histogram.h"
#include "common/sim_clock.h"

namespace wsc::tcmalloc {

// Lifetime bucket boundaries used by the Fig. 8 style size x lifetime
// profile.
struct LifetimeProfile {
  // One histogram of lifetimes (ns) per power-of-two size bucket
  // [2^i, 2^{i+1}).
  static constexpr int kSizeBuckets = 44;  // up to 2^44 bytes
  LogHistogram lifetime_by_size[kSizeBuckets];

  // Histogram over all sampled objects.
  LogHistogram all_lifetimes;

  static int SizeBucketFor(size_t size);
  void Merge(const LifetimeProfile& other);
};

// Samples allocations on a byte-count trigger.
class Sampler {
 public:
  explicit Sampler(size_t sample_interval_bytes);

  // Returns true if this allocation is sampled (caller charges the extra
  // sampling cost). Must be called once per allocation.
  bool RecordAllocation(uintptr_t addr, size_t requested, size_t allocated,
                        SimTime now);

  // Finalizes a sampled allocation if `addr` was sampled.
  void RecordFree(uintptr_t addr, SimTime now);

  // Marks every outstanding sampled object as living until `now` (used at
  // the end of a simulation so long-lived objects contribute their
  // right-censored lifetimes, like fleet servers profiled mid-life).
  void FlushOutstanding(SimTime now);

  const LifetimeProfile& profile() const { return profile_; }
  uint64_t samples_taken() const { return samples_taken_; }

 private:
  struct Sample {
    size_t allocated;
    SimTime alloc_time;
  };

  size_t interval_;
  size_t bytes_until_sample_;
  uint64_t samples_taken_ = 0;
  std::unordered_map<uintptr_t, Sample> live_samples_;
  LifetimeProfile profile_;
};

}  // namespace wsc::tcmalloc

#endif  // WSC_TCMALLOC_SAMPLER_H_
