// GWP-style allocation sampler (Section 2.2 / Section 3).
//
// Production TCMalloc samples one allocation per 2 MiB of allocated bytes
// and records a stack trace; the fleet profiles of Figs. 7 and 8 (object
// size and lifetime distributions) come from these samples. We reproduce
// the mechanism: a byte countdown selects sampled allocations, each sample
// carries its size and allocation timestamp, and the free path finalizes
// the lifetime. Sampled allocations are charged extra cycles (Fig. 6a's
// "Sampled" slice).

#ifndef WSC_TCMALLOC_SAMPLER_H_
#define WSC_TCMALLOC_SAMPLER_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/sim_clock.h"

namespace wsc::tcmalloc {

// Lifetime bucket boundaries used by the Fig. 8 style size x lifetime
// profile.
struct LifetimeProfile {
  // One histogram of lifetimes (ns) per power-of-two size bucket
  // [2^i, 2^{i+1}).
  static constexpr int kSizeBuckets = 44;  // up to 2^44 bytes
  LogHistogram lifetime_by_size[kSizeBuckets];

  // Histogram over all sampled objects.
  LogHistogram all_lifetimes;

  static int SizeBucketFor(size_t size);
  void Merge(const LifetimeProfile& other);
};

// Samples allocations on a byte-count trigger.
class Sampler {
 public:
  // Per-callsite aggregates over sampled allocations (the sampled
  // dimensions of the heap profile; exact live-byte attribution is kept by
  // the allocator). Callsite 0 means "untagged".
  struct CallsiteSamples {
    uint64_t samples = 0;          // sampled allocations attributed here
    uint64_t live_bytes = 0;       // allocated bytes of live samples
    uint64_t lifetimes = 0;        // finalized (freed or flushed) samples
    double lifetime_sum_ns = 0;    // over finalized samples
  };

  struct Sample {
    size_t requested;   // caller-requested bytes (guard overrun boundary)
    size_t allocated;
    SimTime alloc_time;
    uint64_t callsite;
  };

  // What RecordFree learned about the freed address.
  struct FreeRecord {
    bool sampled = false;
    size_t allocated = 0;
    uint64_t callsite = 0;
  };

  // GWP-ASan-style guard state left behind when a guarded (sampled)
  // allocation is freed. A later free or access of the same address hits
  // the tombstone and is reported with the original allocation's callsite.
  struct Tombstone {
    size_t requested = 0;
    size_t allocated = 0;
    uint64_t callsite = 0;
    SimTime free_time = 0;
  };

  explicit Sampler(size_t sample_interval_bytes);

  // Enables guarded sampling (config.guarded_sampling): sampled
  // allocations become guards and their frees leave bounded tombstones.
  void set_guarded(bool on) { guarded_ = on; }
  bool guarded() const { return guarded_; }

  // Returns true if this allocation is sampled (caller charges the extra
  // sampling cost). Must be called once per allocation. `callsite` is the
  // synthetic callsite ID tagged by the workload driver (0 = untagged).
  bool RecordAllocation(uintptr_t addr, size_t requested, size_t allocated,
                        SimTime now, uint64_t callsite = 0);

  // Finalizes a sampled allocation if `addr` was sampled; the returned
  // record carries the sample's payload so the caller can emit trace
  // events without a second lookup.
  FreeRecord RecordFree(uintptr_t addr, SimTime now);

  // Marks every outstanding sampled object as living until `now` (used at
  // the end of a simulation so long-lived objects contribute their
  // right-censored lifetimes, like fleet servers profiled mid-life).
  void FlushOutstanding(SimTime now);

  const LifetimeProfile& profile() const { return profile_; }
  uint64_t samples_taken() const { return samples_taken_; }
  size_t live_sample_count() const { return live_samples_.size(); }

  // Sampled per-callsite aggregates, deterministically ordered.
  const std::map<uint64_t, CallsiteSamples>& by_callsite() const {
    return by_callsite_;
  }

  // Live sampled objects sorted by address — the deterministic walk order
  // used for fragmentation attribution.
  std::vector<std::pair<uintptr_t, Sample>> SortedLiveSamples() const;

  // --- Guard queries (all no-ops / misses unless guarded sampling is on) ---
  //
  // True when `addr` is a live guarded allocation.
  bool IsGuarded(uintptr_t addr) const {
    return guarded_ && live_samples_.count(addr) > 0;
  }
  // The live sample at `addr`, or nullptr.
  const Sample* FindLiveSample(uintptr_t addr) const;
  // The tombstone at `addr`, or nullptr (the address was never a guard, or
  // its tombstone was retired by reuse or FIFO eviction).
  const Tombstone* FindTombstone(uintptr_t addr) const;
  // Removes and returns the tombstone at `addr` (a detection consumes its
  // guard so one bug yields one report). Returns false on a miss.
  bool TakeTombstone(uintptr_t addr, Tombstone* out);

  size_t tombstone_count() const { return tombstones_.size(); }
  uint64_t guarded_allocs() const { return guarded_allocs_; }

 private:
  // Bounded tombstone pool, like GWP-ASan's fixed guard slots: the oldest
  // tombstone is retired when a new one would exceed this.
  static constexpr size_t kMaxTombstones = 512;

  void InsertTombstone(uintptr_t addr, const Tombstone& tombstone);

  size_t interval_;
  size_t bytes_until_sample_;
  bool guarded_ = false;
  uint64_t samples_taken_ = 0;
  uint64_t guarded_allocs_ = 0;
  std::unordered_map<uintptr_t, Sample> live_samples_;
  std::unordered_map<uintptr_t, Tombstone> tombstones_;
  // FIFO of tombstone addresses for bounded eviction; entries whose
  // tombstone was already retired (address reuse) are skipped lazily.
  std::vector<uintptr_t> tombstone_fifo_;
  size_t tombstone_fifo_head_ = 0;
  LifetimeProfile profile_;
  std::map<uint64_t, CallsiteSamples> by_callsite_;
};

}  // namespace wsc::tcmalloc

#endif  // WSC_TCMALLOC_SAMPLER_H_
