// GWP-style allocation sampler (Section 2.2 / Section 3).
//
// Production TCMalloc samples one allocation per 2 MiB of allocated bytes
// and records a stack trace; the fleet profiles of Figs. 7 and 8 (object
// size and lifetime distributions) come from these samples. We reproduce
// the mechanism: a byte countdown selects sampled allocations, each sample
// carries its size and allocation timestamp, and the free path finalizes
// the lifetime. Sampled allocations are charged extra cycles (Fig. 6a's
// "Sampled" slice).

#ifndef WSC_TCMALLOC_SAMPLER_H_
#define WSC_TCMALLOC_SAMPLER_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/sim_clock.h"

namespace wsc::tcmalloc {

// Lifetime bucket boundaries used by the Fig. 8 style size x lifetime
// profile.
struct LifetimeProfile {
  // One histogram of lifetimes (ns) per power-of-two size bucket
  // [2^i, 2^{i+1}).
  static constexpr int kSizeBuckets = 44;  // up to 2^44 bytes
  LogHistogram lifetime_by_size[kSizeBuckets];

  // Histogram over all sampled objects.
  LogHistogram all_lifetimes;

  static int SizeBucketFor(size_t size);
  void Merge(const LifetimeProfile& other);
};

// Samples allocations on a byte-count trigger.
class Sampler {
 public:
  // Per-callsite aggregates over sampled allocations (the sampled
  // dimensions of the heap profile; exact live-byte attribution is kept by
  // the allocator). Callsite 0 means "untagged".
  struct CallsiteSamples {
    uint64_t samples = 0;          // sampled allocations attributed here
    uint64_t live_bytes = 0;       // allocated bytes of live samples
    uint64_t lifetimes = 0;        // finalized (freed or flushed) samples
    double lifetime_sum_ns = 0;    // over finalized samples
  };

  struct Sample {
    size_t allocated;
    SimTime alloc_time;
    uint64_t callsite;
  };

  // What RecordFree learned about the freed address.
  struct FreeRecord {
    bool sampled = false;
    size_t allocated = 0;
    uint64_t callsite = 0;
  };

  explicit Sampler(size_t sample_interval_bytes);

  // Returns true if this allocation is sampled (caller charges the extra
  // sampling cost). Must be called once per allocation. `callsite` is the
  // synthetic callsite ID tagged by the workload driver (0 = untagged).
  bool RecordAllocation(uintptr_t addr, size_t requested, size_t allocated,
                        SimTime now, uint64_t callsite = 0);

  // Finalizes a sampled allocation if `addr` was sampled; the returned
  // record carries the sample's payload so the caller can emit trace
  // events without a second lookup.
  FreeRecord RecordFree(uintptr_t addr, SimTime now);

  // Marks every outstanding sampled object as living until `now` (used at
  // the end of a simulation so long-lived objects contribute their
  // right-censored lifetimes, like fleet servers profiled mid-life).
  void FlushOutstanding(SimTime now);

  const LifetimeProfile& profile() const { return profile_; }
  uint64_t samples_taken() const { return samples_taken_; }
  size_t live_sample_count() const { return live_samples_.size(); }

  // Sampled per-callsite aggregates, deterministically ordered.
  const std::map<uint64_t, CallsiteSamples>& by_callsite() const {
    return by_callsite_;
  }

  // Live sampled objects sorted by address — the deterministic walk order
  // used for fragmentation attribution.
  std::vector<std::pair<uintptr_t, Sample>> SortedLiveSamples() const;

 private:
  size_t interval_;
  size_t bytes_until_sample_;
  uint64_t samples_taken_ = 0;
  std::unordered_map<uintptr_t, Sample> live_samples_;
  LifetimeProfile profile_;
  std::map<uint64_t, CallsiteSamples> by_callsite_;
};

}  // namespace wsc::tcmalloc

#endif  // WSC_TCMALLOC_SAMPLER_H_
