// Virtual-arena system allocator.
//
// The real TCMalloc obtains zero-initialized, hugepage-aligned 2 MiB blocks
// from the kernel with mmap (Section 3, Fig. 4: the mmap path is orders of
// magnitude slower than any cache tier). Here the arena is virtual: we hand
// out hugepage-aligned *address ranges* by bumping a pointer inside a
// reserved numeric address space, and charge the simulated mmap latency.
// Nothing is ever dereferenced; all object state lives in allocator
// metadata (see span.h). Address space is never reused, exactly like
// TCMalloc, which also never unmaps — "releasing" memory is an madvise that
// keeps the mapping (modeled in the page heap).

#ifndef WSC_TCMALLOC_SYSTEM_ALLOC_H_
#define WSC_TCMALLOC_SYSTEM_ALLOC_H_

#include <cstdint>

#include "tcmalloc/fault_injection.h"
#include "tcmalloc/pages.h"
#include "telemetry/registry.h"

namespace wsc::tcmalloc {

// Statistics of the simulated OS interface.
struct SystemStats {
  uint64_t mmap_calls = 0;
  uint64_t mapped_bytes = 0;
  double mmap_ns = 0.0;  // cumulative simulated syscall latency
  uint64_t mmap_failures = 0;  // denied by fault injection or exhaustion
};

// Bump allocator over a reserved virtual arena.
class SystemAllocator {
 public:
  // Arena of `arena_bytes` starting at hugepage-aligned `base`.
  SystemAllocator(uintptr_t base, size_t arena_bytes,
                  double mmap_latency_ns = 8000.0);

  // Returns `n` contiguous hugepages (hugepage-aligned), or
  // kInvalidHugePage when the simulated mmap fails — a planned fault from
  // the installed injector, or arena exhaustion (simulated OOM). Callers
  // must check IsValid() and degrade; nothing in this path is fatal.
  HugePageId AllocateHugePages(int n);

  // Installs (or clears, with nullptr) the fault injector consulted before
  // every simulated mmap. Borrowed, not owned.
  void SetFaultInjector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

  uintptr_t base() const { return base_; }
  size_t arena_bytes() const { return arena_bytes_; }
  PageId base_page() const { return PageIdContaining(base_); }
  Length arena_pages() const { return arena_bytes_ >> kPageShift; }

  const SystemStats& stats() const { return stats_; }

  // Publishes the simulated OS interface metrics (component "system") into
  // `registry`.
  void ContributeTelemetry(telemetry::MetricRegistry& registry) const;

 private:
  uintptr_t base_;
  size_t arena_bytes_;
  uintptr_t next_;
  double mmap_latency_ns_;
  SystemStats stats_;
  FaultInjector* injector_ = nullptr;  // null: no faults
};

}  // namespace wsc::tcmalloc

#endif  // WSC_TCMALLOC_SYSTEM_ALLOC_H_
