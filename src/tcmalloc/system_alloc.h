// System allocator over a pluggable memory backing.
//
// The real TCMalloc obtains zero-initialized, hugepage-aligned 2 MiB blocks
// from the kernel with mmap (Section 3, Fig. 4: the mmap path is orders of
// magnitude slower than any cache tier). Here the OS interface is a
// MemoryBacking: by default the deterministic virtual arena (hugepage-
// aligned *address ranges* bump-allocated inside a reserved numeric address
// space, nothing ever dereferenced, simulated mmap latency charged), and
// optionally RealMemoryBacking where the same indices are real memory.
// Address space is never unmapped in either mode, exactly like TCMalloc —
// "releasing" memory is an madvise that keeps the mapping, routed through
// Release()/Commit() below so the page heap reports bytes the backing
// actually confirmed.

#ifndef WSC_TCMALLOC_SYSTEM_ALLOC_H_
#define WSC_TCMALLOC_SYSTEM_ALLOC_H_

#include <cstdint>
#include <memory>

#include "tcmalloc/fault_injection.h"
#include "tcmalloc/memory_backing.h"
#include "tcmalloc/pages.h"
#include "telemetry/registry.h"

namespace wsc::tcmalloc {

// Statistics of the (simulated or real) OS interface.
struct SystemStats {
  uint64_t mmap_calls = 0;
  uint64_t mapped_bytes = 0;
  double mmap_ns = 0.0;  // cumulative simulated syscall latency
  uint64_t mmap_failures = 0;  // denied by fault injection or exhaustion
  uint64_t released_bytes = 0;  // confirmed returned by the backing
  uint64_t recommitted_bytes = 0;  // released bytes brought back into use
};

// OS interface of one allocator node, delegating address-space decisions
// to a MemoryBacking.
class SystemAllocator {
 public:
  // Deterministic virtual arena of `arena_bytes` starting at
  // hugepage-aligned `base` (the historical constructor; behavior and
  // stats are bit-identical to the pre-backing implementation).
  SystemAllocator(uintptr_t base, size_t arena_bytes,
                  double mmap_latency_ns = 8000.0);

  // Runs on top of a caller-owned backing (e.g. RealMemoryBacking carved
  // per NUMA node by the Allocator). Borrowed; must outlive this.
  SystemAllocator(MemoryBacking* backing, double mmap_latency_ns = 8000.0);

  // Returns `n` contiguous hugepages (hugepage-aligned), or
  // kInvalidHugePage when the (simulated) mmap fails — a planned fault from
  // the installed injector, or reservation exhaustion (OOM). Callers must
  // check IsValid() and degrade; nothing in this path is fatal.
  HugePageId AllocateHugePages(int n);

  // Returns [addr, addr+bytes) to the OS via the backing. Returns the
  // bytes the backing *newly* released (0 for re-release), which is the
  // honest figure ReleaseMemoryToSystem reports.
  size_t Release(uintptr_t addr, size_t bytes);

  // Declares a previously released range in use again.
  void Commit(uintptr_t addr, size_t bytes);

  // Installs (or clears, with nullptr) the fault injector consulted before
  // every simulated mmap. Borrowed, not owned.
  void SetFaultInjector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

  BackendKind kind() const { return backing_->kind(); }
  const MemoryBacking& backing() const { return *backing_; }

  uintptr_t base() const { return backing_->base(); }
  size_t arena_bytes() const { return backing_->reserved_bytes(); }
  PageId base_page() const { return PageIdContaining(base()); }
  Length arena_pages() const { return arena_bytes() >> kPageShift; }

  const SystemStats& stats() const { return stats_; }

  // Publishes the OS interface metrics (component "system") into
  // `registry`.
  void ContributeTelemetry(telemetry::MetricRegistry& registry) const;

 private:
  std::unique_ptr<MemoryBacking> owned_;  // set for the virtual-arena ctor
  MemoryBacking* backing_;                // always valid
  double mmap_latency_ns_;
  SystemStats stats_;
  FaultInjector* injector_ = nullptr;  // null: no faults
};

}  // namespace wsc::tcmalloc

#endif  // WSC_TCMALLOC_SYSTEM_ALLOC_H_
