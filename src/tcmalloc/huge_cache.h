// Hugepage cache: pool of free hugepage runs.
//
// Handles large allocations of at least a hugepage (Section 4.4, component
// (3) of the page heap). Keeps recently-freed hugepages cached for reuse —
// refilling from the OS costs a zero-filled 2 MiB mmap, the slowest path in
// Fig. 4 — and releases excess free hugepages back to the OS. Tail slack of
// large allocations (e.g. 1.5 MiB of a 4.5 MiB request) is donated to the
// hugepage filler by the page heap.

#ifndef WSC_TCMALLOC_HUGE_CACHE_H_
#define WSC_TCMALLOC_HUGE_CACHE_H_

#include <cstdint>
#include <map>
#include <unordered_set>

#include "tcmalloc/pages.h"
#include "tcmalloc/system_alloc.h"
#include "telemetry/registry.h"

namespace wsc::tcmalloc {

// Hugepage cache statistics.
struct HugeCacheStats {
  size_t cached_hugepages = 0;    // free, still THP-backed
  size_t released_hugepages = 0;  // free, returned to the OS
  size_t in_use_hugepages = 0;    // handed out and not yet returned
  uint64_t os_allocations = 0;    // runs obtained from the system
  uint64_t reuse_hits = 0;        // runs served from the cache
  uint64_t allocation_failures = 0;  // system refused to grow the arena
  uint64_t backing_denied = 0;       // granted, but without THP backing
};

// Free-run pool with coalescing and a bounded cached-footprint.
class HugeCache {
 public:
  // Keeps at most `max_cached` free hugepages THP-backed; excess free
  // hugepages are immediately released to the OS (madvise-equivalent).
  HugeCache(SystemAllocator* system, size_t max_cached = 64);

  // Allocates `n` contiguous hugepages (from the cache if a run fits,
  // otherwise from the system). Returns kInvalidHugePage when the system
  // refuses to grow the arena (planned mmap fault or simulated OOM);
  // callers must check IsValid(). After a successful call,
  // last_allocation_backed() says whether the kernel granted THP backing —
  // hugepage scarcity (a planned fault) yields usable but non-huge memory.
  HugePageId Allocate(int n);

  // Whether the most recent successful Allocate() came THP-backed. Cached
  // runs are always backed (released pages refault on reuse); only the
  // system path can be denied backing.
  bool last_allocation_backed() const { return last_allocation_backed_; }

  // Returns a run of `n` hugepages to the cache. `intact` = false means the
  // pages were already returned to the OS (e.g. the run drained out of a
  // subreleased filler hugepage), so they enter the pool OS-released.
  void Release(HugePageId hp, int n, bool intact = true);

  // Shrinks the cached footprint to `limit` hugepages, releasing the rest
  // to the OS. Returns hugepages released.
  size_t ReleaseExcess(size_t limit);

  HugeCacheStats stats() const;

  // Free bytes still cached (page-heap external fragmentation).
  size_t CachedBytes() const {
    return stats_.cached_hugepages * kHugePageSize;
  }

  // Publishes this tier's metrics (component "huge_cache") into `registry`.
  void ContributeTelemetry(telemetry::MetricRegistry& registry) const;

 private:
  // Marks up to `count` cached free hugepages as released to the OS.
  size_t MarkReleased(size_t count);

  SystemAllocator* system_;
  size_t max_cached_;
  // Free runs keyed by start hugepage index -> length, coalesced.
  std::map<uintptr_t, size_t> free_runs_;
  // Free hugepages already released to the OS (subset of free_runs_ pages).
  std::unordered_set<uintptr_t> released_;
  HugeCacheStats stats_;
  bool last_allocation_backed_ = true;
};

}  // namespace wsc::tcmalloc

#endif  // WSC_TCMALLOC_HUGE_CACHE_H_
