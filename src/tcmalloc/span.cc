#include "tcmalloc/span.h"

#include "common/logging.h"

namespace wsc::tcmalloc {

Span::Span(PageId first_page, Length num_pages, int size_class,
           size_t object_size, int objects_per_span)
    : first_page_(first_page),
      num_pages_(num_pages),
      size_class_(size_class),
      object_size_(object_size),
      capacity_(objects_per_span) {
  WSC_CHECK_GT(object_size, 0u);
  WSC_CHECK_GT(objects_per_span, 0);
  WSC_CHECK_LE(object_size * static_cast<size_t>(objects_per_span),
               span_bytes());
  live_bits_.assign((capacity_ + 63) / 64, 0);
}

Span::Span(PageId first_page, Length num_pages)
    : first_page_(first_page),
      num_pages_(num_pages),
      size_class_(-1),
      object_size_(LengthToBytes(num_pages)),
      capacity_(1) {
  live_bits_.assign(1, 0);
}

int Span::IndexOf(uintptr_t addr) const {
  WSC_CHECK_GE(addr, start_addr());
  uintptr_t offset = addr - start_addr();
  WSC_CHECK_EQ(offset % object_size_, 0u);
  int index = static_cast<int>(offset / object_size_);
  WSC_CHECK_LT(index, capacity_);
  return index;
}

uintptr_t Span::AllocateObject() {
  WSC_CHECK_LT(live_, capacity_);
  int words = static_cast<int>(live_bits_.size());
  int start_word = next_hint_;
  for (int w = 0; w < words; ++w) {
    int word = (start_word + w) % words;
    uint64_t bits = live_bits_[word];
    if (bits == ~uint64_t{0}) continue;
    int bit = __builtin_ctzll(~bits);
    int index = word * 64 + bit;
    if (index >= capacity_) continue;  // padding bits in the last word
    live_bits_[word] |= uint64_t{1} << bit;
    ++live_;
    next_hint_ = word;
    return ObjectAddr(index);
  }
  WSC_CHECK(false);  // live_ < capacity_ guarantees a free bit exists
  return 0;
}

void Span::FreeObject(uintptr_t addr) {
  int index = IndexOf(addr);
  uint64_t mask = uint64_t{1} << (index % 64);
  WSC_CHECK((live_bits_[index / 64] & mask) != 0);  // double free otherwise
  live_bits_[index / 64] &= ~mask;
  --live_;
  WSC_CHECK_GE(live_, 0);
  next_hint_ = index / 64;
}

bool Span::IsLiveObject(uintptr_t addr) const {
  if (addr < start_addr() || addr >= start_addr() + span_bytes()) return false;
  uintptr_t offset = addr - start_addr();
  if (offset % object_size_ != 0) return false;
  int index = static_cast<int>(offset / object_size_);
  if (index >= capacity_) return false;
  return (live_bits_[index / 64] >> (index % 64)) & 1;
}

void SpanList::PushFront(Span* span) {
  WSC_DCHECK(span->prev == nullptr && span->next == nullptr);
  span->next = head_;
  if (head_ != nullptr) head_->prev = span;
  head_ = span;
  ++size_;
}

void SpanList::Remove(Span* span) {
  if (span->prev != nullptr) {
    span->prev->next = span->next;
  } else {
    WSC_DCHECK(head_ == span);
    head_ = span->next;
  }
  if (span->next != nullptr) span->next->prev = span->prev;
  span->prev = nullptr;
  span->next = nullptr;
  WSC_DCHECK_GT(size_, 0u);
  --size_;
}

Span* SpanList::PopFront() {
  WSC_CHECK(head_ != nullptr);
  Span* span = head_;
  Remove(span);
  return span;
}

}  // namespace wsc::tcmalloc
