// PageMap: radix map from PageId to owning Span.
//
// Free(ptr) must find the span that owns an arbitrary interior address in
// O(1); TCMalloc uses a radix-tree pagemap for this. We use a two-level
// radix over arena-relative page indices with lazily allocated leaves so
// that fleet simulations with hundreds of allocator instances stay cheap.

#ifndef WSC_TCMALLOC_PAGEMAP_H_
#define WSC_TCMALLOC_PAGEMAP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "tcmalloc/pages.h"

namespace wsc::tcmalloc {

class Span;

// Two-level radix map: PageId -> Span*.
class PageMap {
 public:
  // Covers pages [base_page, base_page + num_pages).
  PageMap(PageId base_page, Length num_pages);

  // Registers `span` for all of its pages.
  void Insert(Span* span);

  // Unregisters `span` (all of its pages must currently map to it).
  void Erase(Span* span);

  // Span owning `page`, or nullptr.
  Span* Lookup(PageId page) const;

  // Span owning the page containing `addr`, or nullptr.
  Span* LookupAddr(uintptr_t addr) const {
    return Lookup(PageIdContaining(addr));
  }

 private:
  static constexpr int kLeafBits = 14;  // 16K pages (128 MiB) per leaf
  static constexpr size_t kLeafSize = size_t{1} << kLeafBits;

  struct Leaf {
    Span* spans[kLeafSize] = {};
  };

  Span** SlotFor(PageId page, bool create);

  PageId base_page_;
  Length num_pages_;
  std::vector<std::unique_ptr<Leaf>> roots_;
};

}  // namespace wsc::tcmalloc

#endif  // WSC_TCMALLOC_PAGEMAP_H_
