#include "tcmalloc/huge_page_filler.h"

#include <algorithm>

#include "common/logging.h"
#include "profiler/self_profiler.h"

namespace wsc::tcmalloc {

// ---------------------------------------------------------------------------
// PageTracker
// ---------------------------------------------------------------------------

PageTracker::PageTracker(HugePageId hp) : hp_(hp) {}

Length PageTracker::LongestFreeRange() const {
  Length longest = 0;
  Length run = 0;
  for (size_t p = 0; p < kPagesPerHugePage; ++p) {
    bool used = (bitmap_[p / 64] >> (p % 64)) & 1;
    if (used) {
      longest = std::max(longest, run);
      run = 0;
    } else {
      ++run;
    }
  }
  return std::max(longest, run);
}

int PageTracker::Allocate(Length n) {
  WSC_CHECK_GT(n, 0u);
  WSC_CHECK_LE(n, kPagesPerHugePage);
  // First fit over the bitmap.
  Length run = 0;
  for (size_t p = 0; p < kPagesPerHugePage; ++p) {
    bool used = (bitmap_[p / 64] >> (p % 64)) & 1;
    if (used) {
      run = 0;
      continue;
    }
    if (++run == n) {
      size_t start = p + 1 - n;
      for (size_t q = start; q <= p; ++q) {
        bitmap_[q / 64] |= uint64_t{1} << (q % 64);
      }
      used_ += n;
      return static_cast<int>(start);
    }
  }
  return -1;
}

void PageTracker::MarkAllocated(int offset, Length n) {
  WSC_CHECK_GE(offset, 0);
  WSC_CHECK_LE(static_cast<Length>(offset) + n, kPagesPerHugePage);
  for (Length q = offset; q < offset + n; ++q) {
    uint64_t mask = uint64_t{1} << (q % 64);
    WSC_CHECK_EQ(bitmap_[q / 64] & mask, 0u);
    bitmap_[q / 64] |= mask;
  }
  used_ += n;
}

void PageTracker::Free(int offset, Length n) {
  WSC_CHECK_GE(offset, 0);
  WSC_CHECK_LE(static_cast<Length>(offset) + n, kPagesPerHugePage);
  for (Length q = offset; q < offset + n; ++q) {
    uint64_t mask = uint64_t{1} << (q % 64);
    WSC_CHECK_NE(bitmap_[q / 64] & mask, 0u);  // double free of pages
    bitmap_[q / 64] &= ~mask;
  }
  WSC_CHECK_GE(used_, n);
  used_ -= n;
}

// ---------------------------------------------------------------------------
// HugePageFiller
// ---------------------------------------------------------------------------

HugePageFiller::HugePageFiller(bool lifetime_aware, int capacity_threshold,
                               HugePageBacking* backing)
    : lifetime_aware_(lifetime_aware),
      capacity_threshold_(capacity_threshold),
      backing_(backing) {
  WSC_CHECK(backing != nullptr);
  lists_.resize(lifetime_aware_ ? 2 : 1);
  for (auto& set : lists_) set.assign(kPagesPerHugePage + 1, nullptr);
  donated_lists_.assign(kPagesPerHugePage + 1, nullptr);
}

HugePageFiller::~HugePageFiller() {
  tracker_index_.ForEach([](uintptr_t, PageTracker* const& t) { delete t; });
}

PageTracker* HugePageFiller::FindTracker(HugePageId hp) const {
  PageTracker* const* t = tracker_index_.Find(hp.index);
  return t == nullptr ? nullptr : *t;
}

void HugePageFiller::ListInsert(PageTracker* t) {
  FreeLists& lists = t->donated()
                         ? donated_lists_
                         : lists_[lifetime_aware_ ? t->lifetime_set() : 0];
  PageTracker*& head = lists[t->free_pages()];
  t->prev = nullptr;
  t->next = head;
  if (head != nullptr) head->prev = t;
  head = t;
}

void HugePageFiller::ListRemove(PageTracker* t) {
  FreeLists& lists = t->donated()
                         ? donated_lists_
                         : lists_[lifetime_aware_ ? t->lifetime_set() : 0];
  if (t->prev != nullptr) {
    t->prev->next = t->next;
  } else {
    WSC_CHECK(lists[t->free_pages()] == t);
    lists[t->free_pages()] = t->next;
  }
  if (t->next != nullptr) t->next->prev = t->prev;
  t->prev = nullptr;
  t->next = nullptr;
}

PageTracker* HugePageFiller::PickTracker(int set, Length n) {
  // Prefer the hugepages with the most allocations (fewest free pages)
  // that can still fit the request: scan free counts from n upward. Within
  // a free count, prefer intact trackers over subreleased ones.
  FreeLists& lists = lists_[set];
  PageTracker* released_candidate = nullptr;
  for (Length free_count = n; free_count <= kPagesPerHugePage; ++free_count) {
    for (PageTracker* t = lists[free_count]; t != nullptr; t = t->next) {
      if (t->LongestFreeRange() < n) continue;
      if (!t->released()) return t;
      if (released_candidate == nullptr) released_candidate = t;
    }
  }
  if (released_candidate != nullptr) return released_candidate;
  // Fall back to donated tails before growing the footprint.
  for (Length free_count = n; free_count <= kPagesPerHugePage; ++free_count) {
    for (PageTracker* t = donated_lists_[free_count]; t != nullptr;
         t = t->next) {
      if (t->LongestFreeRange() >= n) return t;
    }
  }
  return nullptr;
}

PageId HugePageFiller::Allocate(Length n, int span_capacity) {
  WSC_PROF_SCOPE("filler/Allocate");
  WSC_CHECK_GT(n, 0u);
  WSC_CHECK_LT(n, kPagesPerHugePage);
  int set = 0;
  if (lifetime_aware_) {
    // Span capacity is the statically known lifetime proxy: low-capacity
    // spans return to the filler at a much higher rate (Fig. 16).
    set = (span_capacity < capacity_threshold_) ? kShortLived : kLongLived;
  }
  PageTracker* t = PickTracker(set, n);
  if (t == nullptr) {
    HugePageId hp = backing_->GetHugePage();
    if (IsValid(hp)) {
      t = new PageTracker(hp);
      t->set_lifetime_set(set);
      if (!backing_->LastHugePageBacked()) {
        // Hugepage scarcity: the mapping is usable but the kernel refused
        // THP backing, so the tracker starts life broken, exactly like a
        // subreleased hugepage (the dTLB model charges 4 KiB walks).
        t->set_released(true);
        ++stats_.released_hugepages;
        ++stats_.unbacked_hugepages;
      }
      tracker_index_.Insert(hp.index, t);
      ++stats_.total_hugepages;
      ListInsert(t);
    } else if (lifetime_aware_) {
      // Growth denied: place across the lifetime-set boundary rather than
      // fail — a mispacked span beats a failed allocation.
      t = PickTracker(1 - set, n);
      if (t != nullptr) ++stats_.cross_set_fallbacks;
    }
    if (t == nullptr) {
      ++stats_.growth_failures;
      return kInvalidPageId;
    }
  }
  bool was_released = t->released();
  ListRemove(t);
  if (t->donated()) {
    // First reuse of a donated tail: it now behaves like a normal filler
    // hugepage of this lifetime set.
    t->set_donated(false);
    --stats_.donated_hugepages;
    t->set_lifetime_set(set);
  }
  int offset = t->Allocate(n);
  WSC_CHECK_GE(offset, 0);
  ListInsert(t);
  if (trace_) {
    trace_->Emit(trace::EventType::kFillerPlace, -1, -1, -1,
                 static_cast<int16_t>(set), t->hugepage().index,
                 static_cast<uint64_t>(n));
  }
  if (was_released) {
    // Pages on a broken hugepage get recommitted on use; they stop counting
    // as released. (The hugepage itself stays broken until fully free.)
    backing_->CommitPageRange(t->hugepage(), offset, n);
  }
  return PageId{t->hugepage().first_page().index +
                static_cast<uintptr_t>(offset)};
}

void HugePageFiller::Free(PageId page, Length n) {
  WSC_PROF_SCOPE("filler/Free");
  HugePageId hp = HugePageContaining(page);
  PageTracker* t = FindTracker(hp);
  WSC_CHECK(t != nullptr);
  int offset = static_cast<int>(page.index - hp.first_page().index);
  ListRemove(t);
  t->Free(offset, n);
  if (t->released()) {
    // Pages freed onto a broken hugepage go straight back to the OS; by
    // the time the tracker empties, its whole 2 MiB is already released.
    backing_->ReleasePageRange(hp, offset, n);
  }
  if (t->empty()) {
    ReleaseEmpty(t);
    return;
  }
  ListInsert(t);
}

void HugePageFiller::Donate(HugePageId hp, int donated_offset, bool backed) {
  WSC_CHECK_GE(donated_offset, 0);
  WSC_CHECK_LT(static_cast<Length>(donated_offset), kPagesPerHugePage);
  WSC_CHECK(FindTracker(hp) == nullptr);
  auto* t = new PageTracker(hp);
  t->set_donated(true);
  if (!backed) {
    t->set_released(true);
    ++stats_.released_hugepages;
    ++stats_.unbacked_hugepages;
  }
  // The head [0, donated_offset) belongs to the large span.
  if (donated_offset > 0) t->MarkAllocated(0, donated_offset);
  tracker_index_.Insert(hp.index, t);
  ++stats_.total_hugepages;
  ++stats_.donated_hugepages;
  ListInsert(t);
}

void HugePageFiller::FreeDonatedHead(HugePageId hp, Length head_pages) {
  PageTracker* t = FindTracker(hp);
  WSC_CHECK(t != nullptr);
  ListRemove(t);
  t->Free(0, head_pages);
  if (t->released()) {
    backing_->ReleasePageRange(hp, 0, head_pages);
  }
  if (t->empty()) {
    ReleaseEmpty(t);
    return;
  }
  ListInsert(t);
}

void HugePageFiller::ReleaseEmpty(PageTracker* t) {
  bool intact = !t->released();
  if (t->released()) --stats_.released_hugepages;
  if (t->donated()) --stats_.donated_hugepages;
  --stats_.total_hugepages;
  ++stats_.hugepages_freed;
  HugePageId hp = t->hugepage();
  tracker_index_.Erase(hp.index);
  delete t;
  backing_->PutHugePage(hp, intact);
}

Length HugePageFiller::SubreleaseExcess(double target_fraction,
                                        Length demand_guard_pages) {
  // Compute intact free pages and the filler's total span.
  Length used = 0, intact_free = 0;
  tracker_index_.ForEach([&](uintptr_t, PageTracker* const& t) {
    used += t->used_pages();
    if (!t->released()) intact_free += t->free_pages();
  });
  Length total = used + intact_free;
  if (total == 0) return 0;
  // Retain enough free pages to serve a return to recent peak demand.
  if (intact_free <= demand_guard_pages) return 0;
  Length releasable_free = intact_free - demand_guard_pages;
  double fraction =
      static_cast<double>(releasable_free) / static_cast<double>(total);
  if (fraction <= target_fraction) return 0;

  Length need =
      releasable_free - static_cast<Length>(target_fraction * total);
  return ReleaseSparsest(need);
}

Length HugePageFiller::SubreleaseUpTo(Length need) {
  WSC_PROF_SCOPE("filler/SubreleaseUpTo");
  return ReleaseSparsest(need);
}

Length HugePageFiller::ReleaseSparsest(Length need) {
  if (need == 0) return 0;
  // Break the sparsest intact hugepages first: their free pages buy the
  // most released memory per broken hugepage. At equal sparseness, prefer
  // short-lived-set victims — they drain to fully free and leave the
  // filler whole, while a broken long-lived hugepage stays uncovered for
  // its tenants' whole lifetime (Section 4.4) — then the hugepage whose
  // free space is most fragmented (smallest longest-free-run: the least
  // useful to keep for future span placement), then the newest hugepage.
  // The full key makes victim order independent of hash-table layout.
  std::vector<PageTracker*> intact;
  tracker_index_.ForEach([&](uintptr_t, PageTracker* const& t) {
    if (!t->released() && t->free_pages() > 0 && !t->donated()) {
      intact.push_back(t);
    }
  });
  std::sort(intact.begin(), intact.end(),
            [](const PageTracker* a, const PageTracker* b) {
              if (a->free_pages() != b->free_pages()) {
                return a->free_pages() > b->free_pages();
              }
              if (a->lifetime_set() != b->lifetime_set()) {
                return a->lifetime_set() > b->lifetime_set();
              }
              if (a->LongestFreeRange() != b->LongestFreeRange()) {
                return a->LongestFreeRange() < b->LongestFreeRange();
              }
              return a->hugepage().index > b->hugepage().index;
            });
  Length released = 0;
  size_t confirmed_bytes = 0;
  for (PageTracker* t : intact) {
    if (released >= need) break;
    t->set_released(true);
    ++stats_.released_hugepages;
    ++stats_.subrelease_events;
    released += t->free_pages();
    // Hand the exact free ranges to the backing (madvise in real-memory
    // mode). Victims are intact trackers, whose free pages are always
    // committed, so in virtual mode confirmed == marked and the return
    // value is unchanged by this plumbing.
    t->ForEachFreeRun([&](int offset, Length len) {
      confirmed_bytes += backing_->ReleasePageRange(t->hugepage(), offset,
                                                    len);
    });
    if (trace_) {
      trace_->Emit(trace::EventType::kFillerSubrelease, -1, -1, -1,
                   static_cast<int16_t>(t->lifetime_set()),
                   t->hugepage().index,
                   static_cast<uint64_t>(t->free_pages()));
    }
  }
  // Report what the backing confirmed, not what was marked: this is the
  // figure ReleaseMemoryToSystem surfaces to callers.
  return static_cast<Length>(confirmed_bytes >> kPageShift);
}

bool HugePageFiller::IsIntactHugepage(uintptr_t addr) const {
  PageTracker* t = FindTracker(HugePageContainingAddr(addr));
  if (t == nullptr) return false;
  return !t->released();
}

bool HugePageFiller::Owns(uintptr_t addr) const {
  return FindTracker(HugePageContainingAddr(addr)) != nullptr;
}

Length HugePageFiller::FreePagesOnHugepage(uintptr_t addr) const {
  PageTracker* t = FindTracker(HugePageContainingAddr(addr));
  return t == nullptr ? 0 : t->free_pages();
}

FillerStats HugePageFiller::stats() const {
  FillerStats s = stats_;
  s.used_pages = 0;
  s.free_pages = 0;
  s.released_free_pages = 0;
  tracker_index_.ForEach([&](uintptr_t, PageTracker* const& t) {
    s.used_pages += t->used_pages();
    if (t->released()) {
      s.released_free_pages += t->free_pages();
    } else {
      s.free_pages += t->free_pages();
    }
  });
  return s;
}

Length HugePageFiller::UsedPagesOnIntactHugepages() const {
  Length used = 0;
  tracker_index_.ForEach([&](uintptr_t, PageTracker* const& t) {
    if (!t->released()) used += t->used_pages();
  });
  return used;
}

void HugePageFiller::ContributeTelemetry(
    telemetry::MetricRegistry& registry) const {
  const FillerStats s = stats();
  registry.ExportGauge("huge_page_filler", "used_pages",
                       static_cast<double>(s.used_pages));
  registry.ExportGauge("huge_page_filler", "free_pages",
                       static_cast<double>(s.free_pages));
  registry.ExportGauge("huge_page_filler", "released_free_pages",
                       static_cast<double>(s.released_free_pages));
  registry.ExportGauge("huge_page_filler", "hugepages",
                       static_cast<double>(s.total_hugepages));
  registry.ExportGauge("huge_page_filler", "released_hugepages",
                       static_cast<double>(s.released_hugepages));
  registry.ExportGauge("huge_page_filler", "donated_hugepages",
                       static_cast<double>(s.donated_hugepages));
  registry.ExportCounter("huge_page_filler", "subrelease_events",
                         s.subrelease_events);
  registry.ExportCounter("huge_page_filler", "hugepages_freed",
                         s.hugepages_freed);
  registry.ExportCounter("huge_page_filler", "growth_failures",
                         s.growth_failures);
  registry.ExportCounter("huge_page_filler", "cross_set_fallbacks",
                         s.cross_set_fallbacks);
  registry.ExportCounter("huge_page_filler", "unbacked_hugepages",
                         s.unbacked_hugepages);
}

}  // namespace wsc::tcmalloc
