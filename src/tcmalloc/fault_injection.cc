#include "tcmalloc/fault_injection.h"

namespace wsc::tcmalloc {

bool FaultInjector::Consult(FaultKind kind,
                            const std::vector<FaultWindow>& windows) {
  uint64_t call = stats_.calls[static_cast<int>(kind)]++;
  // Plans carry a handful of windows; a linear scan beats maintaining a
  // cursor that overlapping windows would invalidate.
  for (const FaultWindow& w : windows) {
    if (w.Contains(call)) {
      ++stats_.denied[static_cast<int>(kind)];
      return true;
    }
  }
  return false;
}

}  // namespace wsc::tcmalloc
