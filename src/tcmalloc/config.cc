#include "tcmalloc/config.h"

#include <cstdio>
#include <cstdlib>

#include "tcmalloc/pages.h"

namespace wsc::tcmalloc {

namespace {

std::string BadKnob(const char* what, const std::string& how_to_fix) {
  return std::string(what) + ": " + how_to_fix;
}

}  // namespace

std::string AllocatorConfig::ValidationError() const {
  if (num_vcpus < 1) {
    return BadKnob("num_vcpus must be >= 1",
                   "pass a positive count to WithVcpus()");
  }
  if (per_cpu_cache_min_bytes > per_cpu_cache_bytes) {
    return BadKnob(
        "per_cpu_cache_min_bytes exceeds per_cpu_cache_bytes",
        "lower WithCpuCacheMinBytes() or raise WithCpuCacheBytes()");
  }
  if (cpu_cache_grow_candidates < 1) {
    return BadKnob("cpu_cache_grow_candidates must be >= 1",
                   "pass a positive count to WithCpuCacheGrowCandidates()");
  }
  if (num_llc_domains == kTopologyDerived) {
    return BadKnob(
        "num_llc_domains is unresolved (kTopologyDerived)",
        "construct the allocator through fleet::Machine so the LLC domain "
        "count comes from the machine topology, or choose one explicitly "
        "with WithLlcDomains(n)");
  }
  if (num_llc_domains < 1) {
    return BadKnob("num_llc_domains must be >= 1",
                   "pass a positive count to WithLlcDomains()");
  }
  if (transfer_cache_batches < 1) {
    return BadKnob("transfer_cache_batches must be >= 1",
                   "pass a positive count to WithTransferCacheBatches()");
  }
  if (nuca_shard_batches < 1 || nuca_shard_batches > transfer_cache_batches) {
    return BadKnob(
        "nuca_shard_batches must be in [1, transfer_cache_batches]",
        "NUCA shards hold a fraction of the central capacity; adjust "
        "WithNucaShardBatches()");
  }
  if (cfl_num_lists < 1) {
    return BadKnob("cfl_num_lists must be >= 1",
                   "pass a positive count to WithCflNumLists()");
  }
  if (filler_capacity_threshold < 1) {
    return BadKnob("filler_capacity_threshold must be >= 1",
                   "pass a positive threshold to WithFillerCapacityThreshold()");
  }
  if (subrelease_free_fraction < 0.0 || subrelease_free_fraction > 1.0) {
    return BadKnob("subrelease_free_fraction must be in [0, 1]",
                   "pass a fraction to WithSubreleaseFreeFraction()");
  }
  if (numa_aware && num_numa_nodes == kTopologyDerived) {
    return BadKnob(
        "num_numa_nodes is unresolved (kTopologyDerived)",
        "construct the allocator through fleet::Machine so the node count "
        "comes from the machine topology, or choose one explicitly with "
        "WithNumaNodes(n)");
  }
  if (num_numa_nodes < 0 || (!numa_aware && num_numa_nodes < 1)) {
    return BadKnob("num_numa_nodes must be >= 1",
                   "pass a positive count to WithNumaNodes()");
  }
  if (sample_interval_bytes < 1) {
    return BadKnob("sample_interval_bytes must be >= 1",
                   "pass a positive interval to WithSampleIntervalBytes()");
  }
  int nodes = numa_aware ? num_numa_nodes : 1;
  if (arena_bytes / static_cast<size_t>(nodes) < kHugePageSize) {
    return BadKnob(
        "arena_bytes too small",
        "each (per-node) arena slice needs at least one hugepage; enlarge "
        "WithArena()");
  }
  if (pressure_cache_floor_fraction < 0.0 ||
      pressure_cache_floor_fraction > 1.0) {
    return BadKnob("pressure_cache_floor_fraction must be in [0, 1]",
                   "pass a fraction to WithPressureCacheFloorFraction()");
  }
  if (soft_limit_bytes != 0 && hard_limit_bytes != 0 &&
      soft_limit_bytes > hard_limit_bytes) {
    return BadKnob(
        "soft_limit_bytes exceeds hard_limit_bytes",
        "the soft limit must trigger reclaim before the hard limit fails "
        "allocations; swap WithSoftMemoryLimit()/WithHardMemoryLimit()");
  }
  return "";
}

AllocatorConfig::Builder::Builder(const AllocatorConfig& base)
    : config_(base),
      explicit_llc_domains_(base.num_llc_domains !=
                            AllocatorConfig::kTopologyDerived),
      explicit_numa_nodes_(base.num_numa_nodes !=
                           AllocatorConfig::kTopologyDerived),
      explicit_arena_(base.arena_base != AllocatorConfig{}.arena_base ||
                      base.arena_bytes != AllocatorConfig{}.arena_bytes) {}

AllocatorConfig::Builder& AllocatorConfig::Builder::WithVcpus(int n) {
  config_.num_vcpus = n;
  return *this;
}

AllocatorConfig::Builder& AllocatorConfig::Builder::WithPerThreadFrontEnd(
    bool on) {
  config_.per_thread_front_end = on;
  return *this;
}

AllocatorConfig::Builder& AllocatorConfig::Builder::WithCpuCacheBytes(
    size_t bytes) {
  config_.per_cpu_cache_bytes = bytes;
  return *this;
}

AllocatorConfig::Builder& AllocatorConfig::Builder::WithDynamicCpuCaches(
    bool on) {
  config_.dynamic_cpu_caches = on;
  return *this;
}

AllocatorConfig::Builder& AllocatorConfig::Builder::WithCpuCacheResizeInterval(
    SimTime interval) {
  config_.cpu_cache_resize_interval = interval;
  return *this;
}

AllocatorConfig::Builder& AllocatorConfig::Builder::WithCpuCacheGrowCandidates(
    int n) {
  config_.cpu_cache_grow_candidates = n;
  return *this;
}

AllocatorConfig::Builder& AllocatorConfig::Builder::WithCpuCacheMinBytes(
    size_t bytes) {
  config_.per_cpu_cache_min_bytes = bytes;
  return *this;
}

AllocatorConfig::Builder& AllocatorConfig::Builder::WithNucaTransferCache(
    bool on) {
  config_.nuca_transfer_cache = on;
  if (on && !explicit_llc_domains_) {
    config_.num_llc_domains = AllocatorConfig::kTopologyDerived;
  }
  return *this;
}

AllocatorConfig::Builder& AllocatorConfig::Builder::WithLlcDomains(int n) {
  config_.num_llc_domains = n;
  explicit_llc_domains_ = true;
  return *this;
}

AllocatorConfig::Builder& AllocatorConfig::Builder::WithTransferCacheBatches(
    int n) {
  config_.transfer_cache_batches = n;
  return *this;
}

AllocatorConfig::Builder& AllocatorConfig::Builder::WithNucaShardBatches(
    int n) {
  config_.nuca_shard_batches = n;
  return *this;
}

AllocatorConfig::Builder& AllocatorConfig::Builder::WithNucaPlunderInterval(
    SimTime interval) {
  config_.nuca_plunder_interval = interval;
  return *this;
}

AllocatorConfig::Builder& AllocatorConfig::Builder::WithSpanPrioritization(
    bool on) {
  config_.span_prioritization = on;
  return *this;
}

AllocatorConfig::Builder& AllocatorConfig::Builder::WithCflNumLists(int n) {
  config_.cfl_num_lists = n;
  return *this;
}

AllocatorConfig::Builder& AllocatorConfig::Builder::WithLifetimeAwareFiller(
    bool on) {
  config_.lifetime_aware_filler = on;
  return *this;
}

AllocatorConfig::Builder&
AllocatorConfig::Builder::WithFillerCapacityThreshold(int threshold) {
  config_.filler_capacity_threshold = threshold;
  return *this;
}

AllocatorConfig::Builder&
AllocatorConfig::Builder::WithSubreleaseFreeFraction(double fraction) {
  config_.subrelease_free_fraction = fraction;
  return *this;
}

AllocatorConfig::Builder& AllocatorConfig::Builder::WithReleaseInterval(
    SimTime interval) {
  config_.release_interval = interval;
  return *this;
}

AllocatorConfig::Builder& AllocatorConfig::Builder::WithNumaAware(bool on) {
  config_.numa_aware = on;
  if (on && !explicit_numa_nodes_) {
    config_.num_numa_nodes = AllocatorConfig::kTopologyDerived;
  } else if (!on && !explicit_numa_nodes_) {
    config_.num_numa_nodes = 1;
  }
  return *this;
}

AllocatorConfig::Builder& AllocatorConfig::Builder::WithNumaNodes(int n) {
  config_.numa_aware = true;
  config_.num_numa_nodes = n;
  explicit_numa_nodes_ = true;
  return *this;
}

AllocatorConfig::Builder& AllocatorConfig::Builder::WithSampleIntervalBytes(
    size_t bytes) {
  config_.sample_interval_bytes = bytes;
  return *this;
}

AllocatorConfig::Builder& AllocatorConfig::Builder::WithGuardedSampling(
    bool on) {
  config_.guarded_sampling = on;
  return *this;
}

AllocatorConfig::Builder& AllocatorConfig::Builder::WithArena(uintptr_t base,
                                                              size_t bytes) {
  config_.arena_base = base;
  config_.arena_bytes = bytes;
  explicit_arena_ = true;
  return *this;
}

AllocatorConfig::Builder& AllocatorConfig::Builder::WithRealMemory(bool on) {
  config_.real_memory = on;
  return *this;
}

AllocatorConfig::Builder& AllocatorConfig::Builder::WithRealMemoryReserve(
    size_t bytes) {
  config_.real_memory_reserve_bytes = bytes;
  return *this;
}

AllocatorConfig::Builder& AllocatorConfig::Builder::WithCostModel(
    const CostModel& costs) {
  config_.costs = costs;
  return *this;
}

AllocatorConfig::Builder& AllocatorConfig::Builder::WithSoftMemoryLimit(
    size_t bytes) {
  config_.soft_limit_bytes = bytes;
  return *this;
}

AllocatorConfig::Builder& AllocatorConfig::Builder::WithHardMemoryLimit(
    size_t bytes) {
  config_.hard_limit_bytes = bytes;
  return *this;
}

AllocatorConfig::Builder&
AllocatorConfig::Builder::WithPressureCacheFloorFraction(double fraction) {
  config_.pressure_cache_floor_fraction = fraction;
  return *this;
}

AllocatorConfig::Builder& AllocatorConfig::Builder::WithAllOptimizations() {
  config_ = AllocatorConfig::AllOptimizations(config_);
  if (explicit_llc_domains_ &&
      config_.num_llc_domains == AllocatorConfig::kTopologyDerived) {
    // AllOptimizations resets a monolithic explicit count; keep the
    // explicit flag consistent with the now-derived value.
    explicit_llc_domains_ = false;
  }
  return *this;
}

std::optional<AllocatorConfig> AllocatorConfig::Builder::TryBuild(
    std::string* error) const {
  auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };

  // Builder-level combination checks: these knobs were chosen explicitly,
  // so a contradictory pair is a caller bug even when the config would be
  // constructible (e.g. NUCA quietly disabled on one domain).
  if (config_.nuca_transfer_cache && explicit_llc_domains_ &&
      config_.num_llc_domains < 2) {
    return fail(BadKnob(
        "nuca_transfer_cache requires num_llc_domains >= 2",
        "a NUCA transfer cache shards per LLC domain; pass WithLlcDomains(n "
        ">= 2), or drop WithLlcDomains() to derive the count from the "
        "machine topology"));
  }
  if (config_.numa_aware && explicit_numa_nodes_ &&
      config_.num_numa_nodes < 2) {
    return fail(BadKnob(
        "numa_aware requires num_numa_nodes >= 2",
        "NUMA mode duplicates the middle/back end per node; pass "
        "WithNumaNodes(n >= 2), or use WithNumaAware() to derive the count "
        "from the machine topology"));
  }
  // Real-memory mode combination checks: TryBuild reports, never aborts.
  if (config_.real_memory && config_.numa_aware) {
    return fail(BadKnob(
        "real_memory is incompatible with numa_aware",
        "real-memory mode manages one contiguous kernel reservation, while "
        "NUMA mode slices the arena per node; drop WithNumaAware()/"
        "WithNumaNodes() or run the virtual arena"));
  }
  if (config_.real_memory && config_.guarded_sampling) {
    return fail(BadKnob(
        "real_memory is incompatible with guarded_sampling",
        "guarded sampling leaves tombstones on never-reused virtual "
        "addresses; real memory reuses and madvises them, so drop "
        "WithGuardedSampling() or run the virtual arena"));
  }
  if (!config_.real_memory && config_.real_memory_reserve_bytes != 0) {
    return fail(BadKnob(
        "real_memory_reserve_bytes requires real_memory",
        "WithRealMemoryReserve() only sizes the real-memory reservation; "
        "add WithRealMemory() or drop the reserve"));
  }
  if (config_.real_memory && explicit_arena_) {
    return fail(BadKnob(
        "real_memory ignores an explicit WithArena()",
        "the kernel chooses the reservation base in real-memory mode; drop "
        "WithArena() (the reservation is sized to min(arena_bytes default, "
        "64 GiB)) or run the virtual arena"));
  }

  AllocatorConfig config = config_;
  // Topology sentinels are legal in a *built* config — fleet::Machine
  // resolves them at placement — so validate everything else with the
  // sentinels masked to a resolvable value.
  AllocatorConfig check = config;
  if (check.num_llc_domains == AllocatorConfig::kTopologyDerived) {
    check.num_llc_domains = 2;
  }
  if (check.numa_aware &&
      check.num_numa_nodes == AllocatorConfig::kTopologyDerived) {
    check.num_numa_nodes = 2;
  }
  if (std::string err = check.ValidationError(); !err.empty()) {
    return fail(err);
  }
  return config;
}

AllocatorConfig AllocatorConfig::Builder::Build() const {
  std::string error;
  std::optional<AllocatorConfig> config = TryBuild(&error);
  if (!config.has_value()) {
    std::fprintf(stderr, "AllocatorConfig::Builder::Build failed: %s\n",
                 error.c_str());
    std::abort();
  }
  return *config;
}

}  // namespace wsc::tcmalloc
