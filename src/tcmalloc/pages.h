// Page-granularity types and constants.
//
// TCMalloc manages memory in its own 8 KiB pages (two native x86 4 KiB
// pages) grouped into 2 MiB hugepages (256 TCMalloc pages). Spans are
// contiguous runs of TCMalloc pages; objects <= 256 KiB are carved from
// spans, larger objects go straight to the page heap.

#ifndef WSC_TCMALLOC_PAGES_H_
#define WSC_TCMALLOC_PAGES_H_

#include <cstddef>
#include <cstdint>

namespace wsc::tcmalloc {

// TCMalloc page: 8 KiB.
inline constexpr int kPageShift = 13;
inline constexpr size_t kPageSize = size_t{1} << kPageShift;

// Hugepage: 2 MiB.
inline constexpr int kHugePageShift = 21;
inline constexpr size_t kHugePageSize = size_t{1} << kHugePageShift;
inline constexpr size_t kPagesPerHugePage = kHugePageSize / kPageSize;  // 256

// Requests above this bypass the caches and go straight to the page heap.
inline constexpr size_t kMaxSmallSize = 256 * 1024;

// Number of TCMalloc pages.
using Length = size_t;

// Identifies one TCMalloc page by its index (addr >> kPageShift).
struct PageId {
  uintptr_t index = 0;

  constexpr uintptr_t Addr() const { return index << kPageShift; }
  constexpr PageId operator+(Length n) const { return PageId{index + n}; }
  constexpr PageId operator-(Length n) const { return PageId{index - n}; }
  constexpr Length operator-(PageId other) const {
    return index - other.index;
  }
  auto operator<=>(const PageId&) const = default;
};

constexpr PageId PageIdContaining(uintptr_t addr) {
  return PageId{addr >> kPageShift};
}

// Index 0 doubles as the "growth failed" sentinel: every process arena
// starts at or above 1 << 44 (machine.cc), so no real page or hugepage can
// ever have index 0. Tiers return these when SystemAllocator growth is
// denied (fault injection or arena exhaustion) and callers must check
// IsValid() before using the result.
inline constexpr PageId kInvalidPageId{0};

constexpr bool IsValid(PageId p) { return p.index != 0; }

// Identifies one 2 MiB hugepage.
struct HugePageId {
  uintptr_t index = 0;

  constexpr uintptr_t Addr() const { return index << kHugePageShift; }
  constexpr PageId first_page() const {
    return PageId{index * kPagesPerHugePage};
  }
  auto operator<=>(const HugePageId&) const = default;
};

// Invalid-hugepage sentinel; see kInvalidPageId above.
inline constexpr HugePageId kInvalidHugePage{0};

constexpr bool IsValid(HugePageId hp) { return hp.index != 0; }

constexpr HugePageId HugePageContaining(PageId page) {
  return HugePageId{page.index / kPagesPerHugePage};
}

constexpr HugePageId HugePageContainingAddr(uintptr_t addr) {
  return HugePageId{addr >> kHugePageShift};
}

// Bytes <-> pages helpers. BytesToLengthCeil rounds partial pages up.
constexpr Length BytesToLengthCeil(size_t bytes) {
  return (bytes + kPageSize - 1) >> kPageShift;
}
constexpr size_t LengthToBytes(Length pages) { return pages << kPageShift; }

}  // namespace wsc::tcmalloc

#endif  // WSC_TCMALLOC_PAGES_H_
