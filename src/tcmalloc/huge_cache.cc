#include "tcmalloc/huge_cache.h"

#include "common/logging.h"
#include "profiler/self_profiler.h"

namespace wsc::tcmalloc {

HugeCache::HugeCache(SystemAllocator* system, size_t max_cached)
    : system_(system), max_cached_(max_cached) {
  WSC_CHECK(system != nullptr);
}

HugePageId HugeCache::Allocate(int n) {
  WSC_PROF_SCOPE("huge_cache/Allocate");
  WSC_CHECK_GT(n, 0);
  // Best-fit over cached runs.
  auto best = free_runs_.end();
  for (auto it = free_runs_.begin(); it != free_runs_.end(); ++it) {
    if (it->second < static_cast<size_t>(n)) continue;
    if (best == free_runs_.end() || it->second < best->second) best = it;
  }
  if (best != free_runs_.end()) {
    uintptr_t start = best->first;
    size_t len = best->second;
    free_runs_.erase(best);
    if (len > static_cast<size_t>(n)) {
      free_runs_.emplace(start + n, len - n);
    }
    for (uintptr_t i = start; i < start + static_cast<uintptr_t>(n); ++i) {
      // Reused released hugepages are refaulted by the kernel on touch and
      // become THP-backed again.
      auto it = released_.find(i);
      if (it != released_.end()) {
        released_.erase(it);
        --stats_.released_hugepages;
        // Tell the backing this hugepage is in use again (real memory
        // refaults on touch; the virtual arena clears its released mark).
        system_->Commit(HugePageId{i}.Addr(), kHugePageSize);
      } else {
        --stats_.cached_hugepages;
      }
    }
    stats_.in_use_hugepages += n;
    ++stats_.reuse_hits;
    last_allocation_backed_ = true;
    return HugePageId{start};
  }
  HugePageId hp = system_->AllocateHugePages(n);
  if (!IsValid(hp)) {
    // The system refused (planned fault or arena exhaustion): nothing was
    // handed out, so no accounting moves. Callers degrade.
    ++stats_.allocation_failures;
    return kInvalidHugePage;
  }
  ++stats_.os_allocations;
  stats_.in_use_hugepages += n;
  // Fresh mappings can come up without THP backing under hugepage
  // scarcity; the memory is usable, just not huge.
  FaultInjector* injector = system_->fault_injector();
  last_allocation_backed_ =
      injector == nullptr || !injector->ShouldDenyHugeBacking();
  if (!last_allocation_backed_) stats_.backing_denied += n;
  return hp;
}

void HugeCache::Release(HugePageId hp, int n, bool intact) {
  WSC_PROF_SCOPE("huge_cache/Release");
  WSC_CHECK_GT(n, 0);
  WSC_CHECK_GE(stats_.in_use_hugepages, static_cast<size_t>(n));
  stats_.in_use_hugepages -= n;
  if (intact) {
    stats_.cached_hugepages += n;
  } else {
    for (int i = 0; i < n; ++i) {
      WSC_CHECK(released_.insert(hp.index + i).second);
    }
    stats_.released_hugepages += n;
  }

  uintptr_t start = hp.index;
  size_t len = n;
  // Overlap (double-release) detection: the next run must start at or
  // after the end of this one, and the previous must end at or before its
  // start.
  auto it = free_runs_.lower_bound(start);
  if (it != free_runs_.end()) {
    WSC_CHECK_GE(it->first, start + len);
  }
  // Coalesce with the predecessor run.
  it = free_runs_.lower_bound(start);
  if (it != free_runs_.begin()) {
    auto prev = std::prev(it);
    WSC_CHECK_LE(prev->first + prev->second, start);  // overlap = double free
    if (prev->first + prev->second == start) {
      start = prev->first;
      len += prev->second;
      free_runs_.erase(prev);
    }
  }
  // Coalesce with the successor run.
  it = free_runs_.lower_bound(start + len);
  if (it != free_runs_.end() && it->first == hp.index + n) {
    len += it->second;
    free_runs_.erase(it);
  }
  free_runs_.emplace(start, len);

  if (stats_.cached_hugepages > max_cached_) {
    MarkReleased(stats_.cached_hugepages - max_cached_);
  }
}

size_t HugeCache::MarkReleased(size_t count) {
  size_t released = 0;
  for (auto& [start, len] : free_runs_) {
    for (size_t i = 0; i < len && released < count; ++i) {
      if (released_.insert(start + i).second) {
        ++released;
        --stats_.cached_hugepages;
        ++stats_.released_hugepages;
        // madvise-equivalent: the backing returns the pages to the OS.
        system_->Release(HugePageId{start + i}.Addr(), kHugePageSize);
      }
    }
    if (released >= count) break;
  }
  return released;
}

size_t HugeCache::ReleaseExcess(size_t limit) {
  WSC_PROF_SCOPE("huge_cache/ReleaseExcess");
  if (stats_.cached_hugepages <= limit) return 0;
  return MarkReleased(stats_.cached_hugepages - limit);
}

HugeCacheStats HugeCache::stats() const { return stats_; }

void HugeCache::ContributeTelemetry(
    telemetry::MetricRegistry& registry) const {
  registry.ExportGauge("huge_cache", "cached_hugepages",
                       static_cast<double>(stats_.cached_hugepages));
  registry.ExportGauge("huge_cache", "released_hugepages",
                       static_cast<double>(stats_.released_hugepages));
  registry.ExportGauge("huge_cache", "in_use_hugepages",
                       static_cast<double>(stats_.in_use_hugepages));
  registry.ExportCounter("huge_cache", "os_allocations",
                         stats_.os_allocations);
  registry.ExportCounter("huge_cache", "reuse_hits", stats_.reuse_hits);
  registry.ExportCounter("huge_cache", "allocation_failures",
                         stats_.allocation_failures);
  registry.ExportCounter("huge_cache", "backing_denied",
                         stats_.backing_denied);
}

}  // namespace wsc::tcmalloc
