#include "tcmalloc/sampler.h"

#include <algorithm>
#include <bit>
#include <cstddef>

#include "common/logging.h"

namespace wsc::tcmalloc {

int LifetimeProfile::SizeBucketFor(size_t size) {
  if (size <= 1) return 0;
  int b = std::bit_width(size - 1);  // ceil(log2(size))
  return b < kSizeBuckets ? b : kSizeBuckets - 1;
}

void LifetimeProfile::Merge(const LifetimeProfile& other) {
  for (int i = 0; i < kSizeBuckets; ++i) {
    lifetime_by_size[i].Merge(other.lifetime_by_size[i]);
  }
  all_lifetimes.Merge(other.all_lifetimes);
}

Sampler::Sampler(size_t sample_interval_bytes)
    : interval_(sample_interval_bytes), bytes_until_sample_(interval_) {
  WSC_CHECK_GT(interval_, 0u);
}

bool Sampler::RecordAllocation(uintptr_t addr, size_t requested,
                               size_t allocated, SimTime now,
                               uint64_t callsite) {
  // Address reuse retires any tombstone parked there: the guard's address
  // is live again, so a stale use-after-free report would be wrong.
  if (guarded_ && !tombstones_.empty()) tombstones_.erase(addr);
  if (allocated < bytes_until_sample_) {
    bytes_until_sample_ -= allocated;
    return false;
  }
  bytes_until_sample_ = interval_;
  ++samples_taken_;
  if (guarded_) ++guarded_allocs_;
  live_samples_[addr] = Sample{requested, allocated, now, callsite};
  CallsiteSamples& cs = by_callsite_[callsite];
  ++cs.samples;
  cs.live_bytes += allocated;
  return true;
}

Sampler::FreeRecord Sampler::RecordFree(uintptr_t addr, SimTime now) {
  auto it = live_samples_.find(addr);
  if (it == live_samples_.end()) return {};
  const Sample& sample = it->second;
  double lifetime_ns = static_cast<double>(now - sample.alloc_time);
  int bucket = LifetimeProfile::SizeBucketFor(sample.allocated);
  profile_.lifetime_by_size[bucket].Add(lifetime_ns);
  profile_.all_lifetimes.Add(lifetime_ns);
  CallsiteSamples& cs = by_callsite_[sample.callsite];
  WSC_CHECK_GE(cs.live_bytes, sample.allocated);
  cs.live_bytes -= sample.allocated;
  ++cs.lifetimes;
  cs.lifetime_sum_ns += lifetime_ns;
  FreeRecord record{true, sample.allocated, sample.callsite};
  if (guarded_) {
    InsertTombstone(addr, Tombstone{sample.requested, sample.allocated,
                                    sample.callsite, now});
  }
  live_samples_.erase(it);
  return record;
}

void Sampler::InsertTombstone(uintptr_t addr, const Tombstone& tombstone) {
  if (tombstones_.size() >= kMaxTombstones) {
    // Retire the oldest live tombstone; FIFO entries already retired by
    // address reuse are skipped.
    while (tombstone_fifo_head_ < tombstone_fifo_.size()) {
      uintptr_t victim = tombstone_fifo_[tombstone_fifo_head_++];
      if (tombstones_.erase(victim) > 0) break;
    }
  }
  tombstones_[addr] = tombstone;
  tombstone_fifo_.push_back(addr);
  // Compact the FIFO once the consumed prefix dominates.
  if (tombstone_fifo_head_ > 0 &&
      tombstone_fifo_head_ * 2 >= tombstone_fifo_.size()) {
    tombstone_fifo_.erase(
        tombstone_fifo_.begin(),
        tombstone_fifo_.begin() +
            static_cast<ptrdiff_t>(tombstone_fifo_head_));
    tombstone_fifo_head_ = 0;
  }
}

const Sampler::Sample* Sampler::FindLiveSample(uintptr_t addr) const {
  auto it = live_samples_.find(addr);
  return it == live_samples_.end() ? nullptr : &it->second;
}

const Sampler::Tombstone* Sampler::FindTombstone(uintptr_t addr) const {
  auto it = tombstones_.find(addr);
  return it == tombstones_.end() ? nullptr : &it->second;
}

bool Sampler::TakeTombstone(uintptr_t addr, Tombstone* out) {
  auto it = tombstones_.find(addr);
  if (it == tombstones_.end()) return false;
  if (out != nullptr) *out = it->second;
  tombstones_.erase(it);
  return true;
}

void Sampler::FlushOutstanding(SimTime now) {
  for (const auto& [addr, sample] : live_samples_) {
    double lifetime_ns = static_cast<double>(now - sample.alloc_time);
    int bucket = LifetimeProfile::SizeBucketFor(sample.allocated);
    profile_.lifetime_by_size[bucket].Add(lifetime_ns);
    profile_.all_lifetimes.Add(lifetime_ns);
    CallsiteSamples& cs = by_callsite_[sample.callsite];
    WSC_CHECK_GE(cs.live_bytes, sample.allocated);
    cs.live_bytes -= sample.allocated;
    ++cs.lifetimes;
    cs.lifetime_sum_ns += lifetime_ns;
  }
  live_samples_.clear();
}

std::vector<std::pair<uintptr_t, Sampler::Sample>>
Sampler::SortedLiveSamples() const {
  std::vector<std::pair<uintptr_t, Sample>> out(live_samples_.begin(),
                                                live_samples_.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

}  // namespace wsc::tcmalloc
