#include "tcmalloc/sampler.h"

#include <bit>

#include "common/logging.h"

namespace wsc::tcmalloc {

int LifetimeProfile::SizeBucketFor(size_t size) {
  if (size <= 1) return 0;
  int b = std::bit_width(size - 1);  // ceil(log2(size))
  return b < kSizeBuckets ? b : kSizeBuckets - 1;
}

void LifetimeProfile::Merge(const LifetimeProfile& other) {
  for (int i = 0; i < kSizeBuckets; ++i) {
    lifetime_by_size[i].Merge(other.lifetime_by_size[i]);
  }
  all_lifetimes.Merge(other.all_lifetimes);
}

Sampler::Sampler(size_t sample_interval_bytes)
    : interval_(sample_interval_bytes), bytes_until_sample_(interval_) {
  WSC_CHECK_GT(interval_, 0u);
}

bool Sampler::RecordAllocation(uintptr_t addr, size_t requested,
                               size_t allocated, SimTime now) {
  (void)requested;
  if (allocated < bytes_until_sample_) {
    bytes_until_sample_ -= allocated;
    return false;
  }
  bytes_until_sample_ = interval_;
  ++samples_taken_;
  live_samples_[addr] = Sample{allocated, now};
  return true;
}

void Sampler::RecordFree(uintptr_t addr, SimTime now) {
  auto it = live_samples_.find(addr);
  if (it == live_samples_.end()) return;
  double lifetime_ns = static_cast<double>(now - it->second.alloc_time);
  int bucket = LifetimeProfile::SizeBucketFor(it->second.allocated);
  profile_.lifetime_by_size[bucket].Add(lifetime_ns);
  profile_.all_lifetimes.Add(lifetime_ns);
  live_samples_.erase(it);
}

void Sampler::FlushOutstanding(SimTime now) {
  for (const auto& [addr, sample] : live_samples_) {
    double lifetime_ns = static_cast<double>(now - sample.alloc_time);
    int bucket = LifetimeProfile::SizeBucketFor(sample.allocated);
    profile_.lifetime_by_size[bucket].Add(lifetime_ns);
    profile_.all_lifetimes.Add(lifetime_ns);
  }
  live_samples_.clear();
}

}  // namespace wsc::tcmalloc
