#include "tcmalloc/sampler.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"

namespace wsc::tcmalloc {

int LifetimeProfile::SizeBucketFor(size_t size) {
  if (size <= 1) return 0;
  int b = std::bit_width(size - 1);  // ceil(log2(size))
  return b < kSizeBuckets ? b : kSizeBuckets - 1;
}

void LifetimeProfile::Merge(const LifetimeProfile& other) {
  for (int i = 0; i < kSizeBuckets; ++i) {
    lifetime_by_size[i].Merge(other.lifetime_by_size[i]);
  }
  all_lifetimes.Merge(other.all_lifetimes);
}

Sampler::Sampler(size_t sample_interval_bytes)
    : interval_(sample_interval_bytes), bytes_until_sample_(interval_) {
  WSC_CHECK_GT(interval_, 0u);
}

bool Sampler::RecordAllocation(uintptr_t addr, size_t requested,
                               size_t allocated, SimTime now,
                               uint64_t callsite) {
  (void)requested;
  if (allocated < bytes_until_sample_) {
    bytes_until_sample_ -= allocated;
    return false;
  }
  bytes_until_sample_ = interval_;
  ++samples_taken_;
  live_samples_[addr] = Sample{allocated, now, callsite};
  CallsiteSamples& cs = by_callsite_[callsite];
  ++cs.samples;
  cs.live_bytes += allocated;
  return true;
}

Sampler::FreeRecord Sampler::RecordFree(uintptr_t addr, SimTime now) {
  auto it = live_samples_.find(addr);
  if (it == live_samples_.end()) return {};
  const Sample& sample = it->second;
  double lifetime_ns = static_cast<double>(now - sample.alloc_time);
  int bucket = LifetimeProfile::SizeBucketFor(sample.allocated);
  profile_.lifetime_by_size[bucket].Add(lifetime_ns);
  profile_.all_lifetimes.Add(lifetime_ns);
  CallsiteSamples& cs = by_callsite_[sample.callsite];
  WSC_CHECK_GE(cs.live_bytes, sample.allocated);
  cs.live_bytes -= sample.allocated;
  ++cs.lifetimes;
  cs.lifetime_sum_ns += lifetime_ns;
  FreeRecord record{true, sample.allocated, sample.callsite};
  live_samples_.erase(it);
  return record;
}

void Sampler::FlushOutstanding(SimTime now) {
  for (const auto& [addr, sample] : live_samples_) {
    double lifetime_ns = static_cast<double>(now - sample.alloc_time);
    int bucket = LifetimeProfile::SizeBucketFor(sample.allocated);
    profile_.lifetime_by_size[bucket].Add(lifetime_ns);
    profile_.all_lifetimes.Add(lifetime_ns);
    CallsiteSamples& cs = by_callsite_[sample.callsite];
    WSC_CHECK_GE(cs.live_bytes, sample.allocated);
    cs.live_bytes -= sample.allocated;
    ++cs.lifetimes;
    cs.lifetime_sum_ns += lifetime_ns;
  }
  live_samples_.clear();
}

std::vector<std::pair<uintptr_t, Sampler::Sample>>
Sampler::SortedLiveSamples() const {
  std::vector<std::pair<uintptr_t, Sample>> out(live_samples_.begin(),
                                                live_samples_.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

}  // namespace wsc::tcmalloc
