// Hugepage regions: contiguous multi-hugepage areas for allocations that
// slightly exceed a hugepage (Section 4.4, component (2) of the page heap).
//
// A 2.1 MiB allocation placed on dedicated hugepages would waste nearly a
// whole hugepage of tail slack. Regions pack such awkwardly-sized
// allocations next to each other on a shared contiguous run of hugepages.

#ifndef WSC_TCMALLOC_HUGE_REGION_H_
#define WSC_TCMALLOC_HUGE_REGION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "tcmalloc/huge_cache.h"
#include "tcmalloc/pages.h"
#include "telemetry/registry.h"

namespace wsc::tcmalloc {

// One region: a contiguous run of hugepages allocated at page granularity.
class HugeRegion {
 public:
  // Region size in hugepages (16 x 2 MiB = 32 MiB).
  static constexpr size_t kRegionHugePages = 16;
  static constexpr Length kRegionPages =
      kRegionHugePages * kPagesPerHugePage;

  explicit HugeRegion(HugePageId first);

  HugePageId first_hugepage() const { return first_; }
  PageId first_page() const { return first_.first_page(); }
  Length used_pages() const { return used_; }
  Length free_pages() const { return kRegionPages - used_; }
  bool empty() const { return used_ == 0; }

  // First-fit allocation of `n` contiguous pages; returns page offset in
  // the region or -1.
  int Allocate(Length n);

  // Frees [offset, offset + n).
  void Free(int offset, Length n);

  // True if the region spans `page`.
  bool Contains(PageId page) const {
    return page >= first_page() && page.index < first_page().index + kRegionPages;
  }

 private:
  HugePageId first_;
  Length used_ = 0;
  std::vector<uint64_t> bitmap_;  // kRegionPages bits; set => used
};

// Set of regions; grows on demand from the huge cache and returns empty
// regions to it.
class HugeRegionSet {
 public:
  explicit HugeRegionSet(HugeCache* cache);

  // Allocates `n` contiguous pages from some region (creating one if
  // needed). n must fit in a region.
  PageId Allocate(Length n);

  // Frees pages if they belong to a region; returns false otherwise.
  bool Free(PageId page, Length n);

  // True if any region contains `page`.
  bool Owns(PageId page) const { return RegionFor(page) != nullptr; }

  Length used_pages() const;
  Length free_pages() const;
  size_t num_regions() const { return regions_.size(); }

  // Publishes this tier's metrics (component "huge_region") into
  // `registry`.
  void ContributeTelemetry(telemetry::MetricRegistry& registry) const;

 private:
  HugeRegion* RegionFor(PageId page) const;

  HugeCache* cache_;
  std::vector<std::unique_ptr<HugeRegion>> regions_;
};

}  // namespace wsc::tcmalloc

#endif  // WSC_TCMALLOC_HUGE_REGION_H_
