// Hugepage regions: contiguous multi-hugepage areas for allocations that
// slightly exceed a hugepage (Section 4.4, component (2) of the page heap).
//
// A 2.1 MiB allocation placed on dedicated hugepages would waste nearly a
// whole hugepage of tail slack. Regions pack such awkwardly-sized
// allocations next to each other on a shared contiguous run of hugepages.

#ifndef WSC_TCMALLOC_HUGE_REGION_H_
#define WSC_TCMALLOC_HUGE_REGION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "tcmalloc/huge_cache.h"
#include "tcmalloc/pages.h"
#include "telemetry/registry.h"

namespace wsc::tcmalloc {

// One region: a contiguous run of hugepages allocated at page granularity.
class HugeRegion {
 public:
  // Region size in hugepages (16 x 2 MiB = 32 MiB).
  static constexpr size_t kRegionHugePages = 16;
  static constexpr Length kRegionPages =
      kRegionHugePages * kPagesPerHugePage;

  // `backed` records whether the kernel granted THP backing for the run
  // (false under injected hugepage scarcity).
  explicit HugeRegion(HugePageId first, bool backed = true);

  HugePageId first_hugepage() const { return first_; }
  bool backed() const { return backed_; }
  PageId first_page() const { return first_.first_page(); }
  Length used_pages() const { return used_; }
  Length free_pages() const { return kRegionPages - used_; }
  bool empty() const { return used_ == 0; }

  // First-fit allocation of `n` contiguous pages; returns page offset in
  // the region or -1.
  int Allocate(Length n);

  // Frees [offset, offset + n).
  void Free(int offset, Length n);

  // True if the region spans `page`.
  bool Contains(PageId page) const {
    return page >= first_page() && page.index < first_page().index + kRegionPages;
  }

 private:
  HugePageId first_;
  bool backed_;
  Length used_ = 0;
  std::vector<uint64_t> bitmap_;  // kRegionPages bits; set => used
};

// Set of regions; grows on demand from the huge cache and returns empty
// regions to it.
class HugeRegionSet {
 public:
  explicit HugeRegionSet(HugeCache* cache);

  // Allocates `n` contiguous pages from some region (creating one if
  // needed). n must fit in a region. Returns kInvalidPageId when no
  // existing region fits and the huge cache refuses a fresh region run
  // (fault injection or simulated OOM); the page heap then falls back to
  // whole cache hugepages.
  PageId Allocate(Length n);

  uint64_t growth_failures() const { return growth_failures_; }

  // Frees pages if they belong to a region; returns false otherwise.
  bool Free(PageId page, Length n);

  // True if any region contains `page`.
  bool Owns(PageId page) const { return RegionFor(page) != nullptr; }

  // True if the region containing `page` is THP-backed (true for pages no
  // region owns — the caller resolves ownership first).
  bool IsBacked(PageId page) const {
    const HugeRegion* region = RegionFor(page);
    return region == nullptr || region->backed();
  }

  Length used_pages() const;
  Length free_pages() const;
  // Used pages on THP-backed regions only (hugepage-coverage numerator).
  Length backed_used_pages() const;
  size_t num_regions() const { return regions_.size(); }

  // Publishes this tier's metrics (component "huge_region") into
  // `registry`.
  void ContributeTelemetry(telemetry::MetricRegistry& registry) const;

 private:
  HugeRegion* RegionFor(PageId page) const;

  HugeCache* cache_;
  std::vector<std::unique_ptr<HugeRegion>> regions_;
  uint64_t growth_failures_ = 0;
};

}  // namespace wsc::tcmalloc

#endif  // WSC_TCMALLOC_HUGE_REGION_H_
