// Background reclaim actor: the per-process memory-pressure control plane.
//
// Production TCMalloc gives memory back under pressure — cache shrinking,
// transfer-cache plundering, hugepage subrelease — coordinated by a
// background thread against soft/hard memory limits (Section 4.4's
// deployment story; the paper's "handles as many scenarios as you can
// imagine" robustness axis). This simulated actor runs at sim-interval
// boundaries (Allocator::Maintain) and degrades the hierarchy gracefully
// in tier order when the footprint exceeds the soft limit:
//
//   tier 1  shrink cold per-CPU caches below their configured floor
//   tier 2  plunder NUCA transfer-cache shards and drain the whole tier
//   tier 3  central-free-list partial spans drained by tiers 1-2 complete
//           and flow back to the page heap as free pages
//   tier 4  subrelease sparse hugepages aggressively (no demand guard)
//
// Tiers 1-3 mobilize cached memory downward; the footprint only drops at
// OS-release points (whole cached hugepages, filler subrelease), so the
// cascade releases from the back end after each tier and stops as soon as
// the footprint is back under the limit.
//
// The hard limit turns allocations into counted, surfaced failures:
// Allocator::Allocate returns 0 after one emergency reclaim attempt
// instead of growing the arena past the limit.
//
// Every action is published through the process's telemetry registry under
// component "pressure".

#ifndef WSC_TCMALLOC_BACKGROUND_H_
#define WSC_TCMALLOC_BACKGROUND_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/sim_clock.h"
#include "telemetry/registry.h"
#include "trace/flight_recorder.h"

namespace wsc::tcmalloc {

class Allocator;

// Which memory limit a control-plane call addresses.
enum class MemoryLimitKind {
  kSoft,  // reclaim target: exceeded footprint triggers the tier cascade
  kHard,  // admission bound: exceeding allocations fail (Allocate == 0)
};

// One reclaim actor per Allocator (constructed by the allocator itself;
// reach it through Allocator::reclaimer() or the MallocExtension facade).
class BackgroundReclaimer {
 public:
  explicit BackgroundReclaimer(Allocator* allocator);

  BackgroundReclaimer(const BackgroundReclaimer&) = delete;
  BackgroundReclaimer& operator=(const BackgroundReclaimer&) = delete;

  // Adjusts a limit at runtime (the fleet layer retargets soft limits as
  // pressure events come and go). 0 disables the limit; disabling the soft
  // limit lifts the per-CPU pressure cap.
  void SetLimit(MemoryLimitKind kind, size_t bytes);
  size_t GetLimit(MemoryLimitKind kind) const;

  // Runs the actor once; called from Allocator::Maintain at sim-interval
  // boundaries. Reclaims toward the soft limit when exceeded, and lifts
  // tier-1 pressure caps once the footprint is comfortably back under it.
  void Tick(SimTime now);

  // Releases up to `bytes` of free back-end memory to the OS immediately
  // (MallocExtension::ReleaseMemoryToSystem). Returns bytes released.
  size_t ReleaseMemoryToSystem(size_t bytes);

  // Hard-limit admission check for Allocator::Allocate. Returns false —
  // after one emergency reclaim attempt — when admitting `size` bytes
  // would push the footprint past the hard limit; the failure is counted.
  bool AdmitAllocation(size_t size);

  // Emergency response to denied arena growth (fault injection / simulated
  // OOM): runs the tier cascade once to mobilize cached memory back down
  // to the page heap, so the failed allocation can retry against existing
  // hugepages instead of fresh mmap. Rate-limited by footprint, capping
  // the backoff: when the footprint has not moved since the last emergency
  // run the cascade already ran dry, and the caller must surface the
  // failure instead of retrying. Returns true when a retry is worthwhile.
  bool EmergencyReclaimForGrowth();

  uint64_t soft_limit_hits() const { return soft_limit_hits_->value(); }
  uint64_t hard_limit_failures() const {
    return hard_limit_failures_->value();
  }
  uint64_t reclaimed_bytes() const { return reclaimed_bytes_->value(); }
  uint64_t reclaim_runs() const { return reclaim_runs_->value(); }

  // Exports the current limits (snapshot-time gauges); called by
  // Allocator::TelemetrySnapshot between BeginExport and TakeSnapshot.
  void ContributeTelemetry(telemetry::MetricRegistry& registry) const;

  // Attaches (or detaches, with nullptr) the flight recorder this actor
  // emits kPressureStep events into (one per cascade tier).
  void set_flight_recorder(trace::FlightRecorder* recorder) {
    trace_ = recorder;
  }

 private:
  // Runs the tier cascade until the footprint is at or under
  // `target_bytes` or every tier is exhausted. Returns bytes released to
  // the OS.
  size_t ReclaimTiers(size_t target_bytes);

  // Releases free back-end memory (tier 4 mechanics) until `deficit`
  // bytes are released or the back end runs dry. Returns bytes released.
  size_t ReleaseBackend(size_t deficit);

  // Sum over nodes of page-heap bytes released to the OS.
  size_t TotalReleasedBytes() const;

  // Per-(node, class) returned-span counters, used to attribute tier-3
  // bytes (spans the central free lists return while tiers 1-2 flush).
  std::vector<uint64_t> SnapshotReturnedSpans() const;
  size_t ReturnedSpanBytesSince(const std::vector<uint64_t>& before) const;

  Allocator* allocator_;
  size_t soft_limit_ = 0;
  size_t hard_limit_ = 0;

  // Admission-path footprint cache: exact recomputation is O(#vcpus +
  // #classes), so between refreshes the estimate advances by admitted
  // bytes only (conservative: frees make it an overestimate, and an
  // estimated rejection always re-checks exactly).
  size_t cached_footprint_ = 0;
  size_t pending_admitted_bytes_ = 0;
  int admissions_since_refresh_ = 0;
  bool footprint_cache_valid_ = false;
  // Emergency-reclaim rate limit: don't re-run the cascade while the
  // footprint sits unchanged at the limit.
  size_t last_emergency_footprint_ = 0;

  telemetry::Counter* soft_limit_hits_;
  telemetry::Counter* hard_limit_failures_;
  telemetry::Counter* reclaim_runs_;
  telemetry::Counter* reclaimed_bytes_;
  telemetry::FixedHistogram* tier_cpu_cache_hist_;
  telemetry::FixedHistogram* tier_transfer_cache_hist_;
  telemetry::FixedHistogram* tier_central_free_list_hist_;
  telemetry::FixedHistogram* tier_page_heap_hist_;
  trace::FlightRecorder* trace_ = nullptr;
};

}  // namespace wsc::tcmalloc

#endif  // WSC_TCMALLOC_BACKGROUND_H_
