#include "tcmalloc/transfer_cache.h"

#include <algorithm>

#include "common/logging.h"
#include "profiler/self_profiler.h"

namespace wsc::tcmalloc {

TransferCache::TransferCache(const SizeClasses* size_classes,
                             const AllocatorConfig& config)
    : size_classes_(size_classes),
      nuca_(config.nuca_transfer_cache && config.num_llc_domains > 1),
      shard_batches_(config.nuca_shard_batches) {
  WSC_CHECK(size_classes != nullptr);
  int n = size_classes_->num_classes();
  central_.resize(n);
  for (int cls = 0; cls < n; ++cls) {
    // Capacity is batch-count bounded for small classes and byte-bounded
    // for large ones (a 64-batch cache of 64 KiB objects would be an 8 MiB
    // buffer that starves the central free list of returned objects).
    size_t batch_cap = static_cast<size_t>(config.transfer_cache_batches) *
                       size_classes_->batch_size(cls);
    size_t byte_cap = std::max<size_t>(
        2 * size_classes_->batch_size(cls),
        (512 * 1024) / size_classes_->class_size(cls));
    central_[cls].capacity = std::min(batch_cap, byte_cap);
  }
  if (nuca_) {
    shards_.resize(config.num_llc_domains);
  }
}

int TransferCache::RemoveFrom(ClassCache& cache, uintptr_t* out, int n) {
  int taken = 0;
  while (taken < n && !cache.objects.empty()) {
    out[taken++] = cache.objects.back();
    cache.objects.pop_back();
  }
  cache.low_water = std::min(cache.low_water, cache.objects.size());
  return taken;
}

int TransferCache::InsertInto(ClassCache& cache, const uintptr_t* objs,
                              int n) {
  int accepted = 0;
  while (accepted < n && cache.objects.size() < cache.capacity) {
    cache.objects.push_back(objs[accepted++]);
  }
  return accepted;
}

int TransferCache::Remove(int domain, int cls, uintptr_t* out, int n) {
  WSC_PROF_SCOPE("transfer_cache/Remove");
  WSC_DCHECK_GE(n, 0);
  int taken = 0;
  if (nuca_) {
    WSC_CHECK_GE(domain, 0);
    WSC_CHECK_LT(domain, static_cast<int>(shards_.size()));
    auto& shard = shards_[domain];
    if (!shard.empty()) {
      taken += RemoveFrom(shard[cls], out, n);
      stats_.shard_hits += taken;
    }
  }
  if (taken < n) {
    int from_central = RemoveFrom(central_[cls], out + taken, n - taken);
    stats_.central_hits += from_central;
    taken += from_central;
  }
  if (taken < n) ++stats_.misses;
  if (trace_) {
    trace_->Emit(trace::EventType::kTransferRemove, -1, domain, cls, -1,
                 static_cast<uint64_t>(n), static_cast<uint64_t>(taken));
  }
  return taken;
}

int TransferCache::Insert(int domain, int cls, const uintptr_t* objs, int n) {
  WSC_PROF_SCOPE("transfer_cache/Insert");
  int accepted = 0;
  if (nuca_) {
    WSC_CHECK_GE(domain, 0);
    WSC_CHECK_LT(domain, static_cast<int>(shards_.size()));
    auto& shard = shards_[domain];
    if (shard.empty()) {
      // Activate this domain's shard on first use only, so we populate
      // exactly as many NUCA caches as the application is scheduled on.
      shard.resize(size_classes_->num_classes());
      for (int c = 0; c < size_classes_->num_classes(); ++c) {
        size_t batch_cap = static_cast<size_t>(shard_batches_) *
                           size_classes_->batch_size(c);
        size_t byte_cap = std::max<size_t>(
            size_classes_->batch_size(c),
            (128 * 1024) / size_classes_->class_size(c));
        shard[c].capacity = std::min(batch_cap, byte_cap);
      }
    }
    accepted += InsertInto(shard[cls], objs, n);
  }
  if (accepted < n) {
    accepted += InsertInto(central_[cls], objs + accepted, n - accepted);
  }
  stats_.inserts_accepted += accepted;
  stats_.inserts_overflowed += n - accepted;
  if (trace_) {
    trace_->Emit(trace::EventType::kTransferInsert, -1, domain, cls, -1,
                 static_cast<uint64_t>(n), static_cast<uint64_t>(n - accepted));
  }
  return accepted;
}

void TransferCache::Plunder() {
  WSC_PROF_SCOPE("transfer_cache/Plunder");
  if (!nuca_) return;
  for (size_t domain = 0; domain < shards_.size(); ++domain) {
    auto& shard = shards_[domain];
    if (shard.empty()) continue;
    uint64_t moved = 0;
    for (int cls = 0; cls < size_classes_->num_classes(); ++cls) {
      ClassCache& c = shard[cls];
      // Objects below the low-water mark were never touched during the
      // interval; hand them back to the central cache.
      size_t move = std::min(c.low_water, c.objects.size());
      for (size_t i = 0; i < move; ++i) {
        uintptr_t obj = c.objects.back();
        c.objects.pop_back();
        // Central overflow would drop the object on the floor; callers of
        // Plunder route overflow to the central free list, so expose it by
        // re-inserting later. To keep the invariant simple we only move
        // what fits and leave the rest in the shard.
        if (central_[cls].objects.size() < central_[cls].capacity) {
          central_[cls].objects.push_back(obj);
          ++stats_.plundered_objects;
          ++moved;
        } else {
          c.objects.push_back(obj);
          break;
        }
      }
      c.low_water = c.objects.size();
    }
    if (trace_ && moved > 0) {
      trace_->Emit(trace::EventType::kTransferPlunder, -1,
                   static_cast<int16_t>(domain), -1, -1, moved, 0);
    }
  }
}

size_t TransferCache::TotalCachedBytes() const {
  size_t total = 0;
  for (int cls = 0; cls < size_classes_->num_classes(); ++cls) {
    size_t count = central_[cls].objects.size();
    for (const auto& shard : shards_) {
      if (!shard.empty()) count += shard[cls].objects.size();
    }
    total += count * size_classes_->class_size(cls);
  }
  return total;
}

void TransferCache::ContributeTelemetry(
    telemetry::MetricRegistry& registry) const {
  registry.ExportCounter("transfer_cache", "shard_hits", stats_.shard_hits);
  registry.ExportCounter("transfer_cache", "central_hits",
                         stats_.central_hits);
  registry.ExportCounter("transfer_cache", "misses", stats_.misses);
  registry.ExportCounter("transfer_cache", "inserts_accepted",
                         stats_.inserts_accepted);
  registry.ExportCounter("transfer_cache", "inserts_overflowed",
                         stats_.inserts_overflowed);
  registry.ExportCounter("transfer_cache", "plundered_objects",
                         stats_.plundered_objects);
  registry.ExportGauge("transfer_cache", "cached_bytes",
                       static_cast<double>(TotalCachedBytes()));
  size_t active_shards = 0;
  for (const auto& shard : shards_) {
    if (!shard.empty()) ++active_shards;
  }
  registry.ExportGauge("transfer_cache", "active_nuca_shards",
                       static_cast<double>(active_shards));
}

}  // namespace wsc::tcmalloc
