// Central free list (Section 4.3).
//
// One central free list per size class manages spans and hands objects to
// the transfer cache. A span can only be returned to the page heap when
// every object on it is free, so a single long-lived object strands the
// whole span. The baseline keeps spans in one linked list and allocates
// from the front — which may pick nearly-empty spans that were about to be
// released. The paper's redesign keeps L=8 lists indexed by occupancy
// (max(0, L - log2(live))) and allocates from the fullest spans first,
// densely packing allocations onto spans least likely to be released.

#ifndef WSC_TCMALLOC_CENTRAL_FREE_LIST_H_
#define WSC_TCMALLOC_CENTRAL_FREE_LIST_H_

#include <cstdint>
#include <vector>

#include "tcmalloc/size_classes.h"
#include "tcmalloc/span.h"
#include "telemetry/registry.h"
#include "trace/flight_recorder.h"

namespace wsc::tcmalloc {

// Where central free lists obtain and return spans (implemented by the
// page heap).
class SpanSource {
 public:
  virtual ~SpanSource() = default;

  // Allocates a new span for size class `cls` (all objects free).
  virtual Span* NewSpan(int cls) = 0;

  // Returns a fully-free span to the page heap, which frees its pages.
  virtual void ReturnSpan(Span* span) = 0;
};

// Per-size-class central free list statistics.
struct CentralFreeListStats {
  uint64_t fetched_spans = 0;   // spans obtained from the page heap
  uint64_t returned_spans = 0;  // spans returned (fully free)
  uint64_t allocations = 0;     // objects handed out
  uint64_t deallocations = 0;   // objects returned
};

// Central free list for one size class.
class CentralFreeList {
 public:
  // `num_lists` > 1 enables span prioritization.
  CentralFreeList(int cls, const SizeClassInfo& info, int num_lists,
                  SpanSource* source);
  ~CentralFreeList();

  CentralFreeList(const CentralFreeList&) = delete;
  CentralFreeList& operator=(const CentralFreeList&) = delete;

  // Removes up to `n` objects into `out`, fetching spans from the page heap
  // as needed. Returns the number of objects produced: n in the common
  // case, fewer (possibly zero) when the page heap cannot grow (fault
  // injection or simulated OOM) — callers proceed with the partial batch
  // or surface the failure upward.
  int RemoveRange(uintptr_t* out, int n);

  // Span fetches refused by the page heap (growth denied).
  uint64_t span_fetch_failures() const { return span_fetch_failures_; }

  // Returns one object to its span. `span` must belong to this free list's
  // size class (the allocator resolves it via the pagemap). Fully-free
  // spans are returned to the page heap.
  void InsertObject(Span* span, uintptr_t obj);

  // Bytes of free (unallocated) objects sitting in partially-used spans —
  // this tier's external fragmentation.
  size_t FreeObjectBytes() const {
    return free_objects_ * info_.size;
  }

  size_t num_spans() const { return num_spans_; }
  size_t num_live_spans_with_free_objects() const;

  const CentralFreeListStats& stats() const { return stats_; }

  // Span return rate: fraction of fetched spans that have been returned.
  double SpanReturnRate() const;

  // --- Telemetry for Figs. 13/16 ---
  // Snapshot of (span id, live objects) for every span currently owned.
  struct SpanSnapshot {
    uint64_t span_id;
    int live_objects;
  };
  std::vector<SpanSnapshot> SnapshotSpans() const;

  // Span ids returned to the page heap since the last call (cleared).
  std::vector<uint64_t> DrainReturnedSpanIds();

  int size_class() const { return cls_; }
  const SizeClassInfo& info() const { return info_; }

  // Publishes this tier's metrics (component "central_free_list") into
  // `registry`. Per-class instances accumulate into the same metrics, so
  // the snapshot carries the tier aggregate.
  void ContributeTelemetry(telemetry::MetricRegistry& registry) const;

  // Attaches (or detaches, with nullptr) the flight recorder this tier
  // emits kCflSpanAllocate/Return events into.
  void set_flight_recorder(trace::FlightRecorder* recorder) {
    trace_ = recorder;
  }

 private:
  // Occupancy list index for a span with `live` allocated objects (live>=1).
  int ListIndexFor(int live) const;

  // Moves `span` to the list matching its occupancy (and out of full_).
  void Relist(Span* span);

  int cls_;
  SizeClassInfo info_;
  int num_lists_;
  SpanSource* source_;

  std::vector<SpanList> lists_;  // index 0 = most occupied
  SpanList full_;                // spans with no free objects
  size_t num_spans_ = 0;
  size_t free_objects_ = 0;

  CentralFreeListStats stats_;
  uint64_t span_fetch_failures_ = 0;
  std::vector<uint64_t> returned_span_ids_;
  trace::FlightRecorder* trace_ = nullptr;
};

}  // namespace wsc::tcmalloc

#endif  // WSC_TCMALLOC_CENTRAL_FREE_LIST_H_
