#include "tcmalloc/memory_backing.h"

#include <sys/mman.h>

#include <algorithm>
#include <cerrno>

#include "common/logging.h"

namespace wsc::tcmalloc {

const char* BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kVirtualArena:
      return "virtual-arena";
    case BackendKind::kRealMemory:
      return "real-memory";
  }
  return "unknown";
}

size_t ReleasedRangeSet::Add(uintptr_t addr, size_t bytes) {
  if (bytes == 0) return 0;
  uintptr_t start = addr;
  uintptr_t end = addr + bytes;
  size_t fresh = bytes;

  // Find all existing runs overlapping or touching [start, end) and merge
  // them, subtracting the overlap from the fresh-byte count.
  auto it = runs_.upper_bound(start);
  if (it != runs_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= start) it = prev;
  }
  while (it != runs_.end() && it->first <= end) {
    uintptr_t olap_lo = std::max(it->first, start);
    uintptr_t olap_hi = std::min(it->second, end);
    if (olap_hi > olap_lo) fresh -= olap_hi - olap_lo;
    start = std::min(start, it->first);
    end = std::max(end, it->second);
    it = runs_.erase(it);
  }
  runs_[start] = end;
  total_bytes_ += fresh;
  return fresh;
}

size_t ReleasedRangeSet::Remove(uintptr_t addr, size_t bytes) {
  if (bytes == 0) return 0;
  const uintptr_t start = addr;
  const uintptr_t end = addr + bytes;
  size_t removed = 0;

  auto it = runs_.upper_bound(start);
  if (it != runs_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > start) it = prev;
  }
  while (it != runs_.end() && it->first < end) {
    uintptr_t run_lo = it->first;
    uintptr_t run_hi = it->second;
    uintptr_t olap_lo = std::max(run_lo, start);
    uintptr_t olap_hi = std::min(run_hi, end);
    it = runs_.erase(it);
    removed += olap_hi - olap_lo;
    if (run_lo < olap_lo) runs_[run_lo] = olap_lo;
    if (olap_hi < run_hi) runs_[olap_hi] = run_hi;
    it = runs_.upper_bound(olap_hi);
  }
  total_bytes_ -= removed;
  return removed;
}

VirtualArenaBacking::VirtualArenaBacking(uintptr_t base, size_t bytes) {
  WSC_CHECK(base % kHugePageSize == 0);
  WSC_CHECK(bytes % kHugePageSize == 0);
  WSC_CHECK_GT(bytes, 0u);
  base_ = base;
  reserved_bytes_ = bytes;
  next_ = base;
}

uintptr_t VirtualArenaBacking::MapHugePages(int n) {
  WSC_CHECK_GT(n, 0);
  const size_t bytes = static_cast<size_t>(n) * kHugePageSize;
  if (next_ + bytes > base_ + reserved_bytes_) return 0;
  const uintptr_t addr = next_;
  next_ += bytes;
  ++stats_.map_calls;
  stats_.mapped_bytes += bytes;
  return addr;
}

size_t VirtualArenaBacking::Release(uintptr_t addr, size_t bytes) {
  ++stats_.release_calls;
  const size_t fresh = released_.Add(addr, bytes);
  stats_.released_bytes += fresh;
  return fresh;
}

void VirtualArenaBacking::Commit(uintptr_t addr, size_t bytes) {
  ++stats_.commit_calls;
  stats_.recommitted_bytes += released_.Remove(addr, bytes);
}

RealMemoryBacking::RealMemoryBacking(size_t reserve_bytes) {
  size_t want = std::max(reserve_bytes, kMinReserveBytes);
  want = (want + kHugePageSize - 1) & ~(kHugePageSize - 1);
  // Over-map by one hugepage so the working base can be aligned up to a
  // 2 MiB boundary; the slack stays mapped (NORESERVE, never touched).
  for (; want >= kMinReserveBytes; want /= 2) {
    void* p = mmap(nullptr, want + kHugePageSize, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    if (p != MAP_FAILED) {
      raw_base_ = reinterpret_cast<uintptr_t>(p);
      raw_bytes_ = want + kHugePageSize;
      base_ = (raw_base_ + kHugePageSize - 1) & ~(kHugePageSize - 1);
      reserved_bytes_ = want;
      next_ = base_;
#ifdef MADV_HUGEPAGE
      // Best-effort: ask for transparent hugepages across the heap. THP
      // may be disabled system-wide; the allocator works either way.
      (void)madvise(reinterpret_cast<void*>(base_), reserved_bytes_,
                    MADV_HUGEPAGE);
#endif
      return;
    }
  }
  // base_ stays 0: ok() is false and the caller decides how to fail.
}

RealMemoryBacking::~RealMemoryBacking() {
  if (raw_base_ != 0) {
    (void)munmap(reinterpret_cast<void*>(raw_base_), raw_bytes_);
  }
}

uintptr_t RealMemoryBacking::MapHugePages(int n) {
  WSC_CHECK_GT(n, 0);
  const size_t bytes = static_cast<size_t>(n) * kHugePageSize;
  std::lock_guard<std::mutex> lock(mu_);
  if (next_ + bytes > base_ + reserved_bytes_) return 0;
  const uintptr_t addr = next_;
  next_ += bytes;
  ++stats_.map_calls;
  stats_.mapped_bytes += bytes;
  return addr;
}

size_t RealMemoryBacking::Release(uintptr_t addr, size_t bytes) {
  // Align inward to native page boundaries: a partial native page cannot
  // be returned to the OS.
  const uintptr_t kNative = 4096;
  uintptr_t lo = (addr + kNative - 1) & ~(kNative - 1);
  uintptr_t hi = (addr + bytes) & ~(kNative - 1);
  if (hi <= lo) return 0;

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.release_calls;
  const size_t fresh = released_.Add(lo, hi - lo);
  if (fresh > 0) {
    // madvise the whole aligned range: re-advising already-released pages
    // is harmless, and one syscall beats walking the fresh sub-runs.
    if (madvise(reinterpret_cast<void*>(lo), hi - lo, MADV_DONTNEED) != 0) {
      // The advice failed (e.g. range outside the mapping): undo the
      // bookkeeping so stats stay honest.
      released_.Remove(lo, hi - lo);
      return 0;
    }
    stats_.released_bytes += fresh;
  }
  return fresh;
}

void RealMemoryBacking::Commit(uintptr_t addr, size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.commit_calls;
  // No syscall: MADV_DONTNEED'd pages refault zero-filled on first touch.
  stats_.recommitted_bytes += released_.Remove(addr, bytes);
}

uintptr_t RealMemoryBacking::MapMetadata(size_t bytes) {
  void* p = mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (p == MAP_FAILED) return 0;
  return reinterpret_cast<uintptr_t>(p);
}

void RealMemoryBacking::UnmapMetadata(uintptr_t addr, size_t bytes) {
  if (addr != 0) (void)munmap(reinterpret_cast<void*>(addr), bytes);
}

}  // namespace wsc::tcmalloc
