// Allocator configuration: feature toggles for the four warehouse-scale
// optimizations studied in the paper, plus their tuning knobs and the
// calibrated cost model.
//
// The fleet A/B framework (src/fleet/experiment.h) flips exactly these
// fields between the experiment and control groups.

#ifndef WSC_TCMALLOC_CONFIG_H_
#define WSC_TCMALLOC_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "common/sim_clock.h"

namespace wsc::tcmalloc {

// Simulated cost (virtual nanoseconds) of each allocator code path,
// calibrated against the paper's Fig. 4 microbenchmarks.
struct CostModel {
  double cpu_cache_hit_ns = 3.1;       // rseq fast path (~40 instructions)
  double transfer_cache_ns = 12.9;     // mutex + flat-array batch move
  double central_free_list_ns = 16.7;  // span linked-list manipulation
  double page_heap_ns = 137.0;         // hugepage-aware page heap
  double mmap_ns = 8000.0;             // kernel, zeroing a 2 MiB hugepage
  double prefetch_ns = 0.95;           // next-object prefetch, every alloc
  double sampled_alloc_ns = 1600.0;    // stack capture on sampled allocs
  double other_ns = 0.5;               // dispatch/bookkeeping per operation
};

// Feature toggles + tuning knobs (defaults = paper's baseline TCMalloc).
//
// Construct through AllocatorConfig::Builder (below) outside src/tcmalloc/:
// the builder validates knob combinations and resolves topology-derived
// counts, and is the only construction path CI permits for benches and
// tests.
struct AllocatorConfig {
  // Sentinel for num_llc_domains / num_numa_nodes: "derive from the machine
  // topology at placement time". fleet::Machine resolves it when it places a
  // process; constructing an Allocator directly with an unresolved sentinel
  // is a fatal error (ValidationError explains how to fix it).
  static constexpr int kTopologyDerived = 0;

  // ---- Front-end: per-CPU caches (Section 4.1) ----
  // Number of virtual CPUs to populate caches for (dense vCPU id space).
  int num_vcpus = 8;
  // Legacy front end: one cache per *thread* instead of per CPU (the
  // paper's footnote 2 — strands memory when threads idle and scales
  // poorly with thread count). The machine model sizes the cache set by
  // thread count instead of the CPU mask when this is set.
  bool per_thread_front_end = false;
  // Static per-vCPU capacity. The paper's baseline is 3 MiB; the
  // heterogeneous design halves it to 1.5 MiB.
  size_t per_cpu_cache_bytes = 3 * 1024 * 1024;
  // Usage-based dynamic sizing of per-CPU caches ("heterogeneous caches").
  bool dynamic_cpu_caches = false;
  // Resize cadence and number of top-miss caches grown per step.
  SimTime cpu_cache_resize_interval = Seconds(5);
  int cpu_cache_grow_candidates = 5;
  // Floor below which a cache is never shrunk.
  size_t per_cpu_cache_min_bytes = 128 * 1024;

  // ---- Middle tier: transfer cache (Section 4.2) ----
  bool nuca_transfer_cache = false;
  // LLC domains on this machine (1 = monolithic).
  int num_llc_domains = 1;
  // Per-class object capacity of the centralized transfer cache, in
  // batches; NUCA shards get a fraction of this each.
  int transfer_cache_batches = 64;
  int nuca_shard_batches = 16;
  // Cadence at which unused shard objects are plundered back to the
  // central cache to prevent stranding.
  SimTime nuca_plunder_interval = Seconds(5);

  // ---- Middle tier: central free list (Section 4.3) ----
  bool span_prioritization = false;
  // Number of occupancy-indexed span lists L (paper: 8).
  int cfl_num_lists = 8;

  // ---- Back end: hugepage filler (Section 4.4) ----
  bool lifetime_aware_filler = false;
  // Span-capacity threshold C separating short-lived from long-lived span
  // hugepage sets (paper: 16).
  int filler_capacity_threshold = 16;
  // Background release: free pages are subreleased from sparse hugepages
  // when filler free space exceeds this fraction of filler total space.
  // Production tuning is memory-pressure driven; this fixed fraction
  // reproduces the fleet's ~50% baseline hugepage coverage under diurnal
  // load variation.
  double subrelease_free_fraction = 0.08;
  SimTime release_interval = Seconds(1);

  // ---- NUMA awareness (Section 5) ----
  // TCMalloc's NUMA mode duplicates the size-class caches and the page
  // allocator per NUMA node so allocations always return node-local
  // memory. When enabled, the arena is split into one slice per node and
  // every middle/back-end structure is instantiated per node.
  bool numa_aware = false;
  int num_numa_nodes = 1;

  // ---- Sampling (Section 3) ----
  // Sample one allocation for every this many allocated bytes.
  size_t sample_interval_bytes = 2 * 1024 * 1024;
  // GWP-ASan-style guarded sampling: sampled allocations double as guarded
  // allocations whose frees leave tombstones, so double frees and
  // use-after-frees of sampled objects are detected and attributed to the
  // allocating callsite instead of corrupting the heap (reported under the
  // "failure" telemetry component).
  bool guarded_sampling = false;

  // ---- Memory limits (background.h control plane) ----
  // Soft limit: the background reclaimer degrades the cache hierarchy in
  // tier order until the footprint drops back under it. 0 = no limit.
  size_t soft_limit_bytes = 0;
  // Hard limit: allocations that would push the footprint past it fail
  // (Allocate returns 0) after one emergency reclaim attempt. 0 = no limit.
  size_t hard_limit_bytes = 0;
  // Under soft-limit pressure, per-CPU caches are capped at this fraction
  // of per_cpu_cache_min_bytes — deliberately below the normal floor.
  double pressure_cache_floor_fraction = 0.25;

  // ---- Arena ----
  // The arena is purely virtual (addresses, not memory), so it is sized
  // generously: a bump allocator plus hugepage-run reuse can churn through
  // a lot of address space, exactly like a long-lived production process.
  uintptr_t arena_base = uintptr_t{1} << 44;
  size_t arena_bytes = size_t{4} << 40;  // 4 TiB of virtual space

  // ---- Memory backing ----
  // Real-memory mode: the allocator maps one contiguous anonymous
  // reservation (mmap + MADV_HUGEPAGE) and the arena becomes real,
  // dereferenceable memory — releases madvise, freelists may thread
  // through object storage. The arena base/size above are replaced by the
  // kernel-chosen reservation at construction. Opt in exclusively through
  // Builder::WithRealMemory(); defaults to the deterministic virtual
  // arena.
  bool real_memory = false;
  // Size of the real-memory reservation; 0 derives it from arena_bytes
  // (capped by the backend). The malloc shim sets this from
  // WSC_SHIM_RESERVE_MB so OOM behavior is testable without exhausting
  // terabytes of address space.
  size_t real_memory_reserve_bytes = 0;

  CostModel costs;

  // Returns the paper's optimized configuration: all four redesigns on
  // (Section 4.5 "putting it all together").
  static AllocatorConfig AllOptimizations(AllocatorConfig base) {
    base.dynamic_cpu_caches = true;
    base.per_cpu_cache_bytes = 3 * 1024 * 1024 / 2;
    base.nuca_transfer_cache = true;
    // NUCA shards are per LLC domain; the old behavior kept the monolithic
    // default (num_llc_domains = 1), silently turning the toggle into a
    // no-op for directly-constructed allocators. Derive the shard count
    // from the machine topology instead unless a count was chosen already.
    if (base.num_llc_domains <= 1) base.num_llc_domains = kTopologyDerived;
    base.span_prioritization = true;
    base.lifetime_aware_filler = true;
    return base;
  }

  // Empty when this config can construct an Allocator; otherwise an
  // actionable description of the first problem found (unresolved topology
  // sentinels, out-of-range knobs, soft limit above hard limit, ...).
  std::string ValidationError() const;

  class Builder;
};

// Fluent, validating construction for everything outside src/tcmalloc/.
//
//   auto config = tcmalloc::AllocatorConfig::Builder()
//                     .WithDynamicCpuCaches()
//                     .WithNumaNodes(2)
//                     .Build();
//
// Build() aborts with an actionable message on invalid knob combinations
// (e.g. NUCA with fewer than two LLC domains, NUMA with a single node);
// TryBuild() reports the error instead. Enabling a topology-dependent
// feature without an explicit count leaves the count at kTopologyDerived,
// to be resolved by fleet::Machine at placement time.
class AllocatorConfig::Builder {
 public:
  Builder() = default;
  // Starts from an existing config (all fields taken as explicit).
  explicit Builder(const AllocatorConfig& base);

  // ---- Front-end ----
  Builder& WithVcpus(int n);
  Builder& WithPerThreadFrontEnd(bool on = true);
  Builder& WithCpuCacheBytes(size_t bytes);
  Builder& WithDynamicCpuCaches(bool on = true);
  Builder& WithCpuCacheResizeInterval(SimTime interval);
  Builder& WithCpuCacheGrowCandidates(int n);
  Builder& WithCpuCacheMinBytes(size_t bytes);

  // ---- Transfer cache ----
  Builder& WithNucaTransferCache(bool on = true);
  Builder& WithLlcDomains(int n);
  Builder& WithTransferCacheBatches(int n);
  Builder& WithNucaShardBatches(int n);
  Builder& WithNucaPlunderInterval(SimTime interval);

  // ---- Central free list ----
  Builder& WithSpanPrioritization(bool on = true);
  Builder& WithCflNumLists(int n);

  // ---- Hugepage filler / release ----
  Builder& WithLifetimeAwareFiller(bool on = true);
  Builder& WithFillerCapacityThreshold(int threshold);
  Builder& WithSubreleaseFreeFraction(double fraction);
  Builder& WithReleaseInterval(SimTime interval);

  // ---- NUMA ----
  // Enables NUMA mode with a topology-derived node count.
  Builder& WithNumaAware(bool on = true);
  // Enables NUMA mode with an explicit node count (must be >= 2).
  Builder& WithNumaNodes(int n);

  // ---- Sampling / arena / costs ----
  Builder& WithSampleIntervalBytes(size_t bytes);
  Builder& WithGuardedSampling(bool on = true);
  Builder& WithArena(uintptr_t base, size_t bytes);
  Builder& WithCostModel(const CostModel& costs);

  // ---- Memory backing ----
  // Back the allocator with real memory (mmap/madvise) instead of the
  // deterministic virtual arena. The sole opt-in path for real-memory
  // mode; incompatible with NUMA mode, guarded sampling, and an explicit
  // WithArena() base (TryBuild explains each).
  Builder& WithRealMemory(bool on = true);
  // Bounds the real-memory reservation (implies nothing by itself:
  // TryBuild rejects it without WithRealMemory()).
  Builder& WithRealMemoryReserve(size_t bytes);

  // ---- Memory limits ----
  Builder& WithSoftMemoryLimit(size_t bytes);
  Builder& WithHardMemoryLimit(size_t bytes);
  Builder& WithPressureCacheFloorFraction(double fraction);

  // All four paper redesigns (Section 4.5), NUCA shard count derived from
  // topology unless WithLlcDomains chose one.
  Builder& WithAllOptimizations();

  // Validates and returns the config, or the reason it is invalid.
  std::optional<AllocatorConfig> TryBuild(std::string* error = nullptr) const;

  // Validates and returns the config; aborts with the error message on
  // invalid combinations.
  AllocatorConfig Build() const;

 private:
  AllocatorConfig config_;
  bool explicit_llc_domains_ = false;
  bool explicit_numa_nodes_ = false;
  bool explicit_arena_ = false;
};

}  // namespace wsc::tcmalloc

#endif  // WSC_TCMALLOC_CONFIG_H_
