// Deterministic fault injection for the simulated OS interface.
//
// Production fleets see mmap failures (VMA limits, cgroup memory caps) and
// hugepage scarcity (fragmented kernels refuse THP backing); the paper's
// telemetry only exists because the allocator survives both. A FaultPlan
// describes, per fault kind, half-open windows over *call indices* — the
// Nth mmap call, the Nth hugepage-backing decision — so the same plan
// produces the same failures regardless of simulated-time jitter, worker
// threads, or wall-clock. Plans are drawn by the fleet layer after the
// machine-seed fork (fleet.cc), which keeps every run bit-identical for any
// --threads while the faults themselves stay fully reproducible.
//
// A FaultInjector is owned per process (alongside the flight recorder) and
// installed on an Allocator with SetFaultInjector, which fans it out to
// every SystemAllocator and HugeCache. With no injector installed the
// consult sites cost one null-pointer branch.

#ifndef WSC_TCMALLOC_FAULT_INJECTION_H_
#define WSC_TCMALLOC_FAULT_INJECTION_H_

#include <cstdint>
#include <vector>

namespace wsc::tcmalloc {

// What gets denied.
enum class FaultKind {
  kMmap = 0,         // SystemAllocator::AllocateHugePages returns invalid
  kHugeBacking = 1,  // address range granted, but without THP backing
};
inline constexpr int kNumFaultKinds = 2;

// Half-open interval [begin, end) over the per-kind call index: the call
// numbered `begin` is the first to fail, `end` the first to succeed again.
struct FaultWindow {
  uint64_t begin = 0;
  uint64_t end = 0;

  bool Contains(uint64_t call) const { return call >= begin && call < end; }
  auto operator<=>(const FaultWindow&) const = default;
};

// The full schedule for one process. Windows should be sorted by begin and
// non-overlapping per kind; the injector tolerates overlap (a call fails if
// any window covers it).
struct FaultPlan {
  std::vector<FaultWindow> mmap_windows;
  std::vector<FaultWindow> huge_backing_windows;

  bool Empty() const {
    return mmap_windows.empty() && huge_backing_windows.empty();
  }
  auto operator<=>(const FaultPlan&) const = default;
};

// Per-fault-kind running totals, readable after (or during) a run.
struct FaultStats {
  uint64_t calls[kNumFaultKinds] = {0, 0};
  uint64_t denied[kNumFaultKinds] = {0, 0};
};

class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  // Each Should* call consumes one call index of its kind, so consult
  // exactly once per real operation.
  bool ShouldFailMmap() {
    return Consult(FaultKind::kMmap, plan_.mmap_windows);
  }
  bool ShouldDenyHugeBacking() {
    return Consult(FaultKind::kHugeBacking, plan_.huge_backing_windows);
  }

  const FaultPlan& plan() const { return plan_; }
  const FaultStats& stats() const { return stats_; }
  uint64_t mmap_denied() const {
    return stats_.denied[static_cast<int>(FaultKind::kMmap)];
  }
  uint64_t huge_backing_denied() const {
    return stats_.denied[static_cast<int>(FaultKind::kHugeBacking)];
  }

 private:
  bool Consult(FaultKind kind, const std::vector<FaultWindow>& windows);

  FaultPlan plan_;
  FaultStats stats_;
};

}  // namespace wsc::tcmalloc

#endif  // WSC_TCMALLOC_FAULT_INJECTION_H_
