#include "tcmalloc/per_cpu_cache.h"

#include <algorithm>

#include "common/logging.h"
#include "profiler/self_profiler.h"

namespace wsc::tcmalloc {

CpuCacheSet::CpuCacheSet(const SizeClasses* size_classes,
                         const AllocatorConfig& config)
    : size_classes_(size_classes),
      default_capacity_(config.per_cpu_cache_bytes),
      min_capacity_(config.per_cpu_cache_min_bytes),
      dynamic_(config.dynamic_cpu_caches),
      grow_candidates_(config.cpu_cache_grow_candidates) {
  WSC_CHECK(size_classes != nullptr);
  WSC_CHECK_GT(config.num_vcpus, 0);
  WSC_CHECK_GE(default_capacity_, min_capacity_);
  vcpus_.resize(config.num_vcpus);
}

int CpuCacheSet::Refill(int vcpu, int cls, const uintptr_t* objs, int n) {
  WSC_PROF_SCOPE("cpu_cache/Refill");
  VcpuCache& cache = Touch(vcpu);
  size_t size = size_classes_->class_size(cls);
  int max_objects = size_classes_->info(cls).max_per_cpu_objects;
  // First refill of this class: reserve a couple of batches up front so
  // the list does not regrow through its smallest doublings on the
  // allocation slow path. Lazy (per class actually used) — most classes
  // of a short-lived process are never touched.
  if (cache.objects[cls].capacity() == 0) {
    cache.objects[cls].reserve(
        static_cast<size_t>(2 * size_classes_->batch_size(cls)));
  }
  int accepted = 0;
  const size_t capacity = EffectiveCapacity(cache);
  while (accepted < n && cache.used_bytes + size <= capacity &&
         static_cast<int>(cache.objects[cls].size()) < max_objects) {
    cache.objects[cls].push_back(objs[accepted]);
    cache.used_bytes += size;
    ++accepted;
  }
  return accepted;
}

int CpuCacheSet::ExtractBatch(int vcpu, int cls, uintptr_t* out, int n) {
  WSC_PROF_SCOPE("cpu_cache/ExtractBatch");
  VcpuCache& cache = Touch(vcpu);
  std::vector<uintptr_t>& list = cache.objects[cls];
  int extracted = 0;
  while (extracted < n && !list.empty()) {
    out[extracted++] = list.back();
    list.pop_back();
    cache.used_bytes -= size_classes_->class_size(cls);
  }
  return extracted;
}

CpuCacheSet::VcpuStats CpuCacheSet::GetVcpuStats(int vcpu) const {
  WSC_CHECK_GE(vcpu, 0);
  WSC_CHECK_LT(vcpu, num_vcpus());
  const VcpuCache& c = vcpus_[vcpu];
  VcpuStats s;
  s.populated = c.populated;
  s.hits = c.hits;
  s.underflows = c.underflows;
  s.overflows = c.overflows;
  s.interval_misses = c.interval_misses;
  s.capacity_bytes = c.capacity_bytes;
  s.used_bytes = c.used_bytes;
  return s;
}

size_t CpuCacheSet::TotalCachedBytes() const {
  size_t total = 0;
  for (const VcpuCache& c : vcpus_) total += c.used_bytes;
  return total;
}

size_t CpuCacheSet::TotalCapacityBytes() const {
  size_t total = 0;
  for (const VcpuCache& c : vcpus_) {
    if (c.populated) total += c.capacity_bytes;
  }
  return total;
}

void CpuCacheSet::ContributeTelemetry(
    telemetry::MetricRegistry& registry) const {
  uint64_t hits = 0, underflows = 0, overflows = 0;
  size_t used = 0, capacity = 0;
  int populated = 0;
  for (const VcpuCache& c : vcpus_) {
    if (!c.populated) continue;
    ++populated;
    hits += c.hits;
    underflows += c.underflows;
    overflows += c.overflows;
    used += c.used_bytes;
    capacity += c.capacity_bytes;
  }
  registry.ExportCounter("cpu_cache", "hits", hits);
  registry.ExportCounter("cpu_cache", "underflows", underflows);
  registry.ExportCounter("cpu_cache", "overflows", overflows);
  registry.ExportGauge("cpu_cache", "cached_bytes",
                       static_cast<double>(used));
  registry.ExportGauge("cpu_cache", "capacity_bytes",
                       static_cast<double>(capacity));
  registry.ExportGauge("cpu_cache", "populated_vcpus", populated);
}

}  // namespace wsc::tcmalloc
