#include "tcmalloc/per_cpu_cache.h"

#include <algorithm>

#include "common/logging.h"

namespace wsc::tcmalloc {

CpuCacheSet::CpuCacheSet(const SizeClasses* size_classes,
                         const AllocatorConfig& config)
    : size_classes_(size_classes),
      default_capacity_(config.per_cpu_cache_bytes),
      min_capacity_(config.per_cpu_cache_min_bytes),
      dynamic_(config.dynamic_cpu_caches),
      grow_candidates_(config.cpu_cache_grow_candidates) {
  WSC_CHECK(size_classes != nullptr);
  WSC_CHECK_GT(config.num_vcpus, 0);
  WSC_CHECK_GE(default_capacity_, min_capacity_);
  vcpus_.resize(config.num_vcpus);
}

CpuCacheSet::VcpuCache& CpuCacheSet::Touch(int vcpu) {
  WSC_CHECK_GE(vcpu, 0);
  WSC_CHECK_LT(vcpu, num_vcpus());
  VcpuCache& cache = vcpus_[vcpu];
  if (!cache.populated) {
    cache.populated = true;
    cache.capacity_bytes = default_capacity_;
    cache.objects.resize(size_classes_->num_classes());
  }
  return cache;
}

uintptr_t CpuCacheSet::Allocate(int vcpu, int cls) {
  VcpuCache& cache = Touch(vcpu);
  ++cache.interval_ops;
  std::vector<uintptr_t>& list = cache.objects[cls];
  if (list.empty()) {
    ++cache.underflows;
    ++cache.interval_misses;
    return 0;
  }
  uintptr_t obj = list.back();
  list.pop_back();
  cache.used_bytes -= size_classes_->class_size(cls);
  ++cache.hits;
  return obj;
}

bool CpuCacheSet::Deallocate(int vcpu, int cls, uintptr_t obj) {
  VcpuCache& cache = Touch(vcpu);
  ++cache.interval_ops;
  size_t size = size_classes_->class_size(cls);
  if (cache.used_bytes + size > cache.capacity_bytes ||
      static_cast<int>(cache.objects[cls].size()) >=
          size_classes_->info(cls).max_per_cpu_objects) {
    ++cache.overflows;
    ++cache.interval_misses;
    return false;
  }
  cache.objects[cls].push_back(obj);
  cache.used_bytes += size;
  ++cache.hits;
  return true;
}

int CpuCacheSet::Refill(int vcpu, int cls, const uintptr_t* objs, int n) {
  VcpuCache& cache = Touch(vcpu);
  size_t size = size_classes_->class_size(cls);
  int max_objects = size_classes_->info(cls).max_per_cpu_objects;
  int accepted = 0;
  while (accepted < n && cache.used_bytes + size <= cache.capacity_bytes &&
         static_cast<int>(cache.objects[cls].size()) < max_objects) {
    cache.objects[cls].push_back(objs[accepted]);
    cache.used_bytes += size;
    ++accepted;
  }
  return accepted;
}

int CpuCacheSet::ExtractBatch(int vcpu, int cls, uintptr_t* out, int n) {
  VcpuCache& cache = Touch(vcpu);
  std::vector<uintptr_t>& list = cache.objects[cls];
  int extracted = 0;
  while (extracted < n && !list.empty()) {
    out[extracted++] = list.back();
    list.pop_back();
    cache.used_bytes -= size_classes_->class_size(cls);
  }
  return extracted;
}

void CpuCacheSet::EvictToCapacity(VcpuCache& cache, const FlushSink& flush) {
  // The paper's scheme prioritizes shrinking capacity for larger size
  // classes, since the bulk of allocations are small objects (Fig. 7).
  for (int cls = size_classes_->num_classes() - 1;
       cls >= 0 && cache.used_bytes > cache.capacity_bytes; --cls) {
    std::vector<uintptr_t>& list = cache.objects[cls];
    size_t size = size_classes_->class_size(cls);
    while (!list.empty() && cache.used_bytes > cache.capacity_bytes) {
      uintptr_t obj = list.back();
      list.pop_back();
      cache.used_bytes -= size;
      flush(cls, &obj, 1);
    }
  }
}

void CpuCacheSet::ResizeStep(const FlushSink& flush) {
  ReclaimIdle(flush);
  if (!dynamic_) {
    // Static sizing: still reset interval counters so telemetry (Fig. 9b)
    // has per-interval miss data.
    for (VcpuCache& c : vcpus_) {
      c.interval_misses = 0;
      c.interval_ops = 0;
    }
    return;
  }

  // Rank populated caches by misses in the previous interval.
  std::vector<int> populated;
  for (int i = 0; i < num_vcpus(); ++i) {
    if (vcpus_[i].populated) populated.push_back(i);
  }
  if (populated.size() < 2) {
    for (VcpuCache& c : vcpus_) c.interval_misses = 0;
    return;
  }
  std::vector<int> by_misses = populated;
  std::stable_sort(by_misses.begin(), by_misses.end(), [this](int a, int b) {
    return vcpus_[a].interval_misses > vcpus_[b].interval_misses;
  });

  int num_growers = std::min<int>(grow_candidates_,
                                  static_cast<int>(by_misses.size()) - 1);
  std::vector<int> growers;
  for (int i = 0; i < num_growers; ++i) {
    if (vcpus_[by_misses[i]].interval_misses == 0) break;  // nobody missing
    growers.push_back(by_misses[i]);
  }

  if (!growers.empty()) {
    // Steal capacity round-robin from the non-grower caches.
    constexpr size_t kStealStep = 64 * 1024;
    size_t stolen = 0;
    size_t want = kStealStep * growers.size();
    std::vector<int> victims;
    for (int idx : by_misses) {
      if (std::find(growers.begin(), growers.end(), idx) == growers.end()) {
        victims.push_back(idx);
      }
    }
    size_t attempts = victims.size();
    while (stolen < want && attempts > 0) {
      int victim = victims[steal_cursor_ % victims.size()];
      ++steal_cursor_;
      --attempts;
      VcpuCache& v = vcpus_[victim];
      size_t take = std::min(kStealStep, v.capacity_bytes > min_capacity_
                                             ? v.capacity_bytes - min_capacity_
                                             : 0);
      if (take == 0) continue;
      v.capacity_bytes -= take;
      stolen += take;
      EvictToCapacity(v, flush);
      attempts = victims.size();  // reset: a successful steal keeps going
      if (stolen >= want) break;
    }
    // Distribute stolen capacity equally among the growers.
    if (stolen > 0) {
      size_t share = stolen / growers.size();
      size_t remainder = stolen - share * growers.size();
      for (size_t i = 0; i < growers.size(); ++i) {
        vcpus_[growers[i]].capacity_bytes +=
            share + (i == 0 ? remainder : 0);
      }
    }
  }

  for (VcpuCache& c : vcpus_) {
    c.interval_misses = 0;
    c.interval_ops = 0;
  }
}

void CpuCacheSet::ReclaimIdle(const FlushSink& flush) {
  for (VcpuCache& cache : vcpus_) {
    if (!cache.populated || cache.interval_ops > 0 ||
        cache.used_bytes == 0) {
      continue;
    }
    for (int cls = 0; cls < size_classes_->num_classes(); ++cls) {
      std::vector<uintptr_t>& list = cache.objects[cls];
      if (list.empty()) continue;
      flush(cls, list.data(), static_cast<int>(list.size()));
      cache.used_bytes -= size_classes_->class_size(cls) * list.size();
      list.clear();
    }
    WSC_CHECK_EQ(cache.used_bytes, 0u);
  }
}

void CpuCacheSet::FlushAll(const FlushSink& flush) {
  for (VcpuCache& cache : vcpus_) {
    if (!cache.populated) continue;
    for (int cls = 0; cls < size_classes_->num_classes(); ++cls) {
      std::vector<uintptr_t>& list = cache.objects[cls];
      if (list.empty()) continue;
      flush(cls, list.data(), static_cast<int>(list.size()));
      cache.used_bytes -=
          size_classes_->class_size(cls) * list.size();
      list.clear();
    }
    WSC_CHECK_EQ(cache.used_bytes, 0u);
  }
}

CpuCacheSet::VcpuStats CpuCacheSet::GetVcpuStats(int vcpu) const {
  WSC_CHECK_GE(vcpu, 0);
  WSC_CHECK_LT(vcpu, num_vcpus());
  const VcpuCache& c = vcpus_[vcpu];
  VcpuStats s;
  s.populated = c.populated;
  s.hits = c.hits;
  s.underflows = c.underflows;
  s.overflows = c.overflows;
  s.interval_misses = c.interval_misses;
  s.capacity_bytes = c.capacity_bytes;
  s.used_bytes = c.used_bytes;
  return s;
}

size_t CpuCacheSet::TotalCachedBytes() const {
  size_t total = 0;
  for (const VcpuCache& c : vcpus_) total += c.used_bytes;
  return total;
}

size_t CpuCacheSet::TotalCapacityBytes() const {
  size_t total = 0;
  for (const VcpuCache& c : vcpus_) {
    if (c.populated) total += c.capacity_bytes;
  }
  return total;
}

}  // namespace wsc::tcmalloc
