// Front-end per-CPU caches (Section 4.1).
//
// Each virtual CPU owns a cache of free objects per size class, bounded by
// a byte capacity (baseline: statically 3 MiB per vCPU). Allocation misses
// (underflow) and deallocation misses (overflow) spill to the transfer
// cache. The paper observes that dense vCPU ids bias usage towards
// low-indexed caches while load spikes populate high-indexed caches that
// then sit idle (Fig. 9), and proposes *heterogeneous* caches: a background
// task that periodically moves capacity from low-miss caches to the top-N
// highest-miss caches, preferring to shrink larger size classes first.

#ifndef WSC_TCMALLOC_PER_CPU_CACHE_H_
#define WSC_TCMALLOC_PER_CPU_CACHE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "tcmalloc/config.h"
#include "tcmalloc/size_classes.h"

namespace wsc::tcmalloc {

// The set of all per-vCPU caches of one allocator instance.
class CpuCacheSet {
 public:
  CpuCacheSet(const SizeClasses* size_classes, const AllocatorConfig& config);

  // Fast-path allocation: pops an object of class `cls` from vCPU `vcpu`'s
  // cache. Returns 0 on miss (0 is never a valid arena address).
  uintptr_t Allocate(int vcpu, int cls);

  // Fast-path deallocation. Returns false on overflow (cache at capacity);
  // the caller then pushes a batch down to the transfer cache via
  // ExtractBatch and retries.
  bool Deallocate(int vcpu, int cls, uintptr_t obj);

  // Inserts up to `n` objects after an underflow; returns how many were
  // accepted (bounded by remaining byte capacity).
  int Refill(int vcpu, int cls, const uintptr_t* objs, int n);

  // Removes up to `n` cached objects of `cls` into `out`; used to make room
  // on overflow. Returns the number extracted.
  int ExtractBatch(int vcpu, int cls, uintptr_t* out, int n);

  // Sink receiving objects evicted during resizing/flushes.
  using FlushSink = std::function<void(int cls, const uintptr_t* objs, int n)>;

  // One step of the usage-based dynamic resizing algorithm: grows the
  // `cpu_cache_grow_candidates` caches with the most misses in the last
  // interval by stealing capacity round-robin from the others. Objects that
  // no longer fit are handed to `flush`. Capacity moves only when
  // dynamic_cpu_caches is set, but idle-cache reclaim (below) always runs.
  void ResizeStep(const FlushSink& flush);

  // Reclaims caches that served no operation since the previous call:
  // their objects are flushed to `flush` (production TCMalloc's
  // ReleaseCpuMemory for idle CPUs — without it, objects stranded in idle
  // vCPU caches pin spans forever). Called by ResizeStep.
  void ReclaimIdle(const FlushSink& flush);

  // Flushes every cached object (used at simulated process teardown and in
  // tests).
  void FlushAll(const FlushSink& flush);

  // --- Introspection ---
  struct VcpuStats {
    bool populated = false;
    uint64_t hits = 0;
    uint64_t underflows = 0;
    uint64_t overflows = 0;
    uint64_t interval_misses = 0;  // misses since last ResizeStep
    size_t capacity_bytes = 0;
    size_t used_bytes = 0;
  };

  int num_vcpus() const { return static_cast<int>(vcpus_.size()); }
  VcpuStats GetVcpuStats(int vcpu) const;

  // Total bytes cached across all vCPUs (external fragmentation in this
  // tier).
  size_t TotalCachedBytes() const;

  // Total configured capacity across populated vCPUs.
  size_t TotalCapacityBytes() const;

 private:
  struct VcpuCache {
    bool populated = false;
    size_t capacity_bytes = 0;
    size_t used_bytes = 0;
    uint64_t hits = 0;
    uint64_t underflows = 0;
    uint64_t overflows = 0;
    uint64_t interval_misses = 0;
    uint64_t interval_ops = 0;  // any access since the last ResizeStep
    std::vector<std::vector<uintptr_t>> objects;  // per size class
  };

  // Lazily populates a vCPU cache on first touch.
  VcpuCache& Touch(int vcpu);

  // Evicts objects (largest classes first) until used <= capacity.
  void EvictToCapacity(VcpuCache& cache, const FlushSink& flush);

  const SizeClasses* size_classes_;
  size_t default_capacity_;
  size_t min_capacity_;
  bool dynamic_;
  int grow_candidates_;
  std::vector<VcpuCache> vcpus_;
  int steal_cursor_ = 0;  // round-robin position for capacity stealing
};

}  // namespace wsc::tcmalloc

#endif  // WSC_TCMALLOC_PER_CPU_CACHE_H_
