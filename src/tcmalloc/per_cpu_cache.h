// Front-end per-CPU caches (Section 4.1).
//
// Each virtual CPU owns a cache of free objects per size class, bounded by
// a byte capacity (baseline: statically 3 MiB per vCPU). Allocation misses
// (underflow) and deallocation misses (overflow) spill to the transfer
// cache. The paper observes that dense vCPU ids bias usage towards
// low-indexed caches while load spikes populate high-indexed caches that
// then sit idle (Fig. 9), and proposes *heterogeneous* caches: a background
// task that periodically moves capacity from low-miss caches to the top-N
// highest-miss caches, preferring to shrink larger size classes first.

#ifndef WSC_TCMALLOC_PER_CPU_CACHE_H_
#define WSC_TCMALLOC_PER_CPU_CACHE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "profiler/self_profiler.h"
#include "tcmalloc/config.h"
#include "tcmalloc/size_classes.h"
#include "telemetry/registry.h"
#include "trace/flight_recorder.h"

namespace wsc::tcmalloc {

// The set of all per-vCPU caches of one allocator instance.
class CpuCacheSet {
 public:
  CpuCacheSet(const SizeClasses* size_classes, const AllocatorConfig& config);

  // Fast-path allocation: pops an object of class `cls` from vCPU `vcpu`'s
  // cache. Returns 0 on miss (0 is never a valid arena address). Defined
  // inline below: the self-profiler's fig03 profile puts the cache pop/push
  // pair at ~33% self-share of simulated work, and the out-of-line call
  // frame was a measurable slice of that.
  uintptr_t Allocate(int vcpu, int cls);

  // Fast-path deallocation. Returns false on overflow (cache at capacity);
  // the caller then pushes a batch down to the transfer cache via
  // ExtractBatch and retries. Inline, same rationale as Allocate.
  bool Deallocate(int vcpu, int cls, uintptr_t obj);

  // Inserts up to `n` objects after an underflow; returns how many were
  // accepted (bounded by remaining byte capacity).
  int Refill(int vcpu, int cls, const uintptr_t* objs, int n);

  // Removes up to `n` cached objects of `cls` into `out`; used to make room
  // on overflow. Returns the number extracted.
  int ExtractBatch(int vcpu, int cls, uintptr_t* out, int n);

  // Flush sinks are templated callables `void(int cls, const uintptr_t*
  // objs, int n)` receiving evicted objects. The maintenance paths run
  // every resize interval for every simulated process; a std::function
  // here would put a type-erased call (and a capture allocation) on that
  // path, so the sink type is threaded through instead and lambdas inline.

  // One step of the usage-based dynamic resizing algorithm: grows the
  // `cpu_cache_grow_candidates` caches with the most misses in the last
  // interval by stealing capacity round-robin from the others. Objects that
  // no longer fit are handed to `flush`. Capacity moves only when
  // dynamic_cpu_caches is set, but idle-cache reclaim (below) always runs.
  template <typename Flush>
  void ResizeStep(Flush&& flush);

  // Reclaims caches that served no operation since the previous call:
  // their objects are flushed to `flush` (production TCMalloc's
  // ReleaseCpuMemory for idle CPUs — without it, objects stranded in idle
  // vCPU caches pin spans forever). Called by ResizeStep.
  template <typename Flush>
  void ReclaimIdle(Flush&& flush);

  // Flushes every cached object (used at simulated process teardown and in
  // tests).
  template <typename Flush>
  void FlushAll(Flush&& flush);

  // Soft-limit pressure (tier 1 of the background reclaimer's cascade):
  // caps every cache at `floor_bytes` — deliberately below the configured
  // minimum — until LiftPressureCap(). Caches idle since the last
  // maintenance interval are flushed entirely (cold caches give back
  // everything); active caches evict down to the cap. Returns the bytes
  // flushed.
  template <typename Flush>
  size_t ShrinkForPressure(size_t floor_bytes, Flush&& flush);

  // Removes the pressure cap; caches refill to their configured capacity
  // through normal operation.
  void LiftPressureCap() { pressure_cap_bytes_ = kNoPressureCap; }
  bool pressure_capped() const {
    return pressure_cap_bytes_ != kNoPressureCap;
  }

  // --- Introspection ---
  struct VcpuStats {
    bool populated = false;
    uint64_t hits = 0;
    uint64_t underflows = 0;
    uint64_t overflows = 0;
    uint64_t interval_misses = 0;  // misses since last ResizeStep
    size_t capacity_bytes = 0;
    size_t used_bytes = 0;
  };

  int num_vcpus() const { return static_cast<int>(vcpus_.size()); }
  VcpuStats GetVcpuStats(int vcpu) const;

  // Total bytes cached across all vCPUs (external fragmentation in this
  // tier).
  size_t TotalCachedBytes() const;

  // Total configured capacity across populated vCPUs.
  size_t TotalCapacityBytes() const;

  // Publishes this tier's metrics (component "cpu_cache") into `registry`,
  // aggregated across vCPUs. Called between BeginExport() and
  // TakeSnapshot().
  void ContributeTelemetry(telemetry::MetricRegistry& registry) const;

  // Attaches (or detaches, with nullptr) the flight recorder this tier
  // emits kCpuCacheResize events into. The allocator owns the timestamp:
  // it stamps the recorder's `now` at operation entry.
  void set_flight_recorder(trace::FlightRecorder* recorder) {
    trace_ = recorder;
  }

 private:
  struct VcpuCache {
    bool populated = false;
    size_t capacity_bytes = 0;
    size_t used_bytes = 0;
    uint64_t hits = 0;
    uint64_t underflows = 0;
    uint64_t overflows = 0;
    uint64_t interval_misses = 0;
    uint64_t interval_ops = 0;  // any access since the last ResizeStep
    std::vector<std::vector<uintptr_t>> objects;  // per size class
  };

  static constexpr size_t kNoPressureCap = ~size_t{0};

  // Lazily populates a vCPU cache on first touch.
  VcpuCache& Touch(int vcpu);

  // Insertion-side capacity: the configured capacity, clipped by the
  // pressure cap while the background reclaimer holds one.
  size_t EffectiveCapacity(const VcpuCache& cache) const {
    return std::min(cache.capacity_bytes, pressure_cap_bytes_);
  }

  // Evicts objects (largest classes first) until used <= capacity.
  template <typename Flush>
  void EvictToCapacity(VcpuCache& cache, Flush&& flush);

  const SizeClasses* size_classes_;
  size_t default_capacity_;
  size_t min_capacity_;
  bool dynamic_;
  int grow_candidates_;
  std::vector<VcpuCache> vcpus_;
  int steal_cursor_ = 0;  // round-robin position for capacity stealing
  size_t pressure_cap_bytes_ = kNoPressureCap;
  trace::FlightRecorder* trace_ = nullptr;
};

// --- fast-path implementations ---

inline CpuCacheSet::VcpuCache& CpuCacheSet::Touch(int vcpu) {
  WSC_CHECK_GE(vcpu, 0);
  WSC_CHECK_LT(vcpu, num_vcpus());
  VcpuCache& cache = vcpus_[vcpu];
  if (!cache.populated) {
    cache.populated = true;
    cache.capacity_bytes = default_capacity_;
    cache.objects.resize(size_classes_->num_classes());
  }
  return cache;
}

inline uintptr_t CpuCacheSet::Allocate(int vcpu, int cls) {
  WSC_PROF_SCOPE("cpu_cache/Pop");
  VcpuCache& cache = Touch(vcpu);
  ++cache.interval_ops;
  std::vector<uintptr_t>& list = cache.objects[cls];
  if (list.empty()) {
    ++cache.underflows;
    ++cache.interval_misses;
    return 0;
  }
  uintptr_t obj = list.back();
  list.pop_back();
  cache.used_bytes -= size_classes_->class_size(cls);
  ++cache.hits;
  return obj;
}

inline bool CpuCacheSet::Deallocate(int vcpu, int cls, uintptr_t obj) {
  WSC_PROF_SCOPE("cpu_cache/Push");
  VcpuCache& cache = Touch(vcpu);
  ++cache.interval_ops;
  // One SizeClassInfo load serves both the byte and object-count bounds
  // (class_size(cls) would chase the same row a second time).
  const SizeClassInfo& info = size_classes_->info(cls);
  std::vector<uintptr_t>& list = cache.objects[cls];
  if (cache.used_bytes + info.size > EffectiveCapacity(cache) ||
      static_cast<int>(list.size()) >= info.max_per_cpu_objects) {
    ++cache.overflows;
    ++cache.interval_misses;
    return false;
  }
  list.push_back(obj);
  cache.used_bytes += info.size;
  ++cache.hits;
  return true;
}

// --- template implementations ---

template <typename Flush>
void CpuCacheSet::EvictToCapacity(VcpuCache& cache, Flush&& flush) {
  // The paper's scheme prioritizes shrinking capacity for larger size
  // classes, since the bulk of allocations are small objects (Fig. 7).
  const size_t capacity = EffectiveCapacity(cache);
  for (int cls = size_classes_->num_classes() - 1;
       cls >= 0 && cache.used_bytes > capacity; --cls) {
    std::vector<uintptr_t>& list = cache.objects[cls];
    size_t size = size_classes_->class_size(cls);
    while (!list.empty() && cache.used_bytes > capacity) {
      uintptr_t obj = list.back();
      list.pop_back();
      cache.used_bytes -= size;
      flush(cls, &obj, 1);
    }
  }
}

template <typename Flush>
size_t CpuCacheSet::ShrinkForPressure(size_t floor_bytes, Flush&& flush) {
  pressure_cap_bytes_ = floor_bytes;
  size_t flushed = 0;
  for (VcpuCache& cache : vcpus_) {
    if (!cache.populated || cache.used_bytes == 0) continue;
    size_t before = cache.used_bytes;
    if (cache.interval_ops == 0) {
      // Cold cache: nothing touched it since the last maintenance pass, so
      // its objects are pure stranding under pressure. Flush everything.
      for (int cls = 0; cls < size_classes_->num_classes(); ++cls) {
        std::vector<uintptr_t>& list = cache.objects[cls];
        if (list.empty()) continue;
        flush(cls, list.data(), static_cast<int>(list.size()));
        cache.used_bytes -= size_classes_->class_size(cls) * list.size();
        list.clear();
      }
      WSC_CHECK_EQ(cache.used_bytes, 0u);
    } else {
      EvictToCapacity(cache, flush);
    }
    flushed += before - cache.used_bytes;
  }
  return flushed;
}

template <typename Flush>
void CpuCacheSet::ResizeStep(Flush&& flush) {
  ReclaimIdle(flush);
  if (!dynamic_) {
    // Static sizing: still reset interval counters so telemetry (Fig. 9b)
    // has per-interval miss data.
    for (VcpuCache& c : vcpus_) {
      c.interval_misses = 0;
      c.interval_ops = 0;
    }
    return;
  }

  // Rank populated caches by misses in the previous interval.
  std::vector<int> populated;
  for (int i = 0; i < num_vcpus(); ++i) {
    if (vcpus_[i].populated) populated.push_back(i);
  }
  if (populated.size() < 2) {
    for (VcpuCache& c : vcpus_) c.interval_misses = 0;
    return;
  }
  std::vector<int> by_misses = populated;
  std::stable_sort(by_misses.begin(), by_misses.end(), [this](int a, int b) {
    return vcpus_[a].interval_misses > vcpus_[b].interval_misses;
  });

  int num_growers = std::min<int>(grow_candidates_,
                                  static_cast<int>(by_misses.size()) - 1);
  std::vector<int> growers;
  for (int i = 0; i < num_growers; ++i) {
    if (vcpus_[by_misses[i]].interval_misses == 0) break;  // nobody missing
    growers.push_back(by_misses[i]);
  }

  if (!growers.empty()) {
    // Steal capacity round-robin from the non-grower caches.
    constexpr size_t kStealStep = 64 * 1024;
    size_t stolen = 0;
    size_t want = kStealStep * growers.size();
    std::vector<int> victims;
    for (int idx : by_misses) {
      if (std::find(growers.begin(), growers.end(), idx) == growers.end()) {
        victims.push_back(idx);
      }
    }
    size_t attempts = victims.size();
    while (stolen < want && attempts > 0) {
      int victim = victims[steal_cursor_ % victims.size()];
      ++steal_cursor_;
      --attempts;
      VcpuCache& v = vcpus_[victim];
      size_t take = std::min(kStealStep, v.capacity_bytes > min_capacity_
                                             ? v.capacity_bytes - min_capacity_
                                             : 0);
      if (take == 0) continue;
      v.capacity_bytes -= take;
      stolen += take;
      EvictToCapacity(v, flush);
      attempts = victims.size();  // reset: a successful steal keeps going
      if (stolen >= want) break;
    }
    // Distribute stolen capacity equally among the growers.
    if (stolen > 0) {
      size_t share = stolen / growers.size();
      size_t remainder = stolen - share * growers.size();
      for (size_t i = 0; i < growers.size(); ++i) {
        size_t granted = share + (i == 0 ? remainder : 0);
        vcpus_[growers[i]].capacity_bytes += granted;
        if (trace_) {
          trace_->Emit(trace::EventType::kCpuCacheResize, growers[i], -1, -1,
                       -1, granted, victims.size());
        }
      }
    }
  }

  for (VcpuCache& c : vcpus_) {
    c.interval_misses = 0;
    c.interval_ops = 0;
  }
}

template <typename Flush>
void CpuCacheSet::ReclaimIdle(Flush&& flush) {
  for (VcpuCache& cache : vcpus_) {
    if (!cache.populated || cache.interval_ops > 0 ||
        cache.used_bytes == 0) {
      continue;
    }
    for (int cls = 0; cls < size_classes_->num_classes(); ++cls) {
      std::vector<uintptr_t>& list = cache.objects[cls];
      if (list.empty()) continue;
      flush(cls, list.data(), static_cast<int>(list.size()));
      cache.used_bytes -= size_classes_->class_size(cls) * list.size();
      list.clear();
    }
    WSC_CHECK_EQ(cache.used_bytes, 0u);
  }
}

template <typename Flush>
void CpuCacheSet::FlushAll(Flush&& flush) {
  for (VcpuCache& cache : vcpus_) {
    if (!cache.populated) continue;
    for (int cls = 0; cls < size_classes_->num_classes(); ++cls) {
      std::vector<uintptr_t>& list = cache.objects[cls];
      if (list.empty()) continue;
      flush(cls, list.data(), static_cast<int>(list.size()));
      cache.used_bytes -=
          size_classes_->class_size(cls) * list.size();
      list.clear();
    }
    WSC_CHECK_EQ(cache.used_bytes, 0u);
  }
}

}  // namespace wsc::tcmalloc

#endif  // WSC_TCMALLOC_PER_CPU_CACHE_H_
