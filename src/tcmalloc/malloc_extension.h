// MallocExtension-style public control/introspection facade.
//
// Production TCMalloc exposes one sanctioned surface — MallocExtension —
// through which applications and the control plane read allocator state
// and set policy (memory limits, ReleaseMemoryToSystem, numeric
// properties). This mirror of it is the single sanctioned way code outside
// src/tcmalloc/ (benches, tests, the fleet layer) interrogates or steers an
// Allocator; the raw component accessors on Allocator are deprecated for
// that purpose.
//
// The facade is a cheap, copyable view: it borrows the allocator and holds
// no state of its own.

#ifndef WSC_TCMALLOC_MALLOC_EXTENSION_H_
#define WSC_TCMALLOC_MALLOC_EXTENSION_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "tcmalloc/allocator.h"
#include "tcmalloc/background.h"
#include "trace/heap_profile.h"

namespace wsc::tcmalloc {

class MallocExtension {
 public:
  explicit MallocExtension(Allocator* allocator);

  // ---- Heap / cost statistics ----
  HeapStats GetHeapStats() const;
  const MallocCycleBreakdown& GetCycleBreakdown() const;
  const TierHitCounts& GetAllocTierHits() const;
  uint64_t GetNumAllocations() const;
  uint64_t GetNumFrees() const;
  // O(#vcpus + #classes + #hugepages) footprint: live bytes plus every
  // tier's cached/free bytes (HeapStats::HeapBytes without the
  // requested-byte estimation).
  size_t GetFootprintBytes() const;
  PageHeapStats GetPageHeapStats() const;
  SystemStats GetSystemStats() const;
  double GetHugepageCoverage() const;
  const LogHistogram& GetAllocCountHistogram() const;
  const LogHistogram& GetAllocBytesHistogram() const;

  // ---- Backend ----
  // Which memory backing the allocator runs on (production TCMalloc's
  // closest analogue is the "generic.*" property namespace).
  BackendKind GetBackendKind() const;

  // ---- Memory limits & release (background.h control plane) ----
  void SetMemoryLimit(MemoryLimitKind kind, size_t bytes);
  size_t GetMemoryLimit(MemoryLimitKind kind) const;
  // Releases up to `bytes` of free back-end memory to the OS; returns the
  // bytes actually released.
  size_t ReleaseMemoryToSystem(size_t bytes);

  // ---- Profiling ----
  // The pprof-style heap profile: per-callsite live/peak/cumulative bytes
  // (exact), sampled lifetimes, and hugepage-fragmentation attribution.
  trace::HeapProfile GetHeapProfileData() const;
  // The profile rendered as a human-readable text report.
  std::string GetHeapProfile() const;
  // The sampler's Fig. 8 size x lifetime profile.
  const LifetimeProfile& GetLifetimeProfile() const;
  uint64_t GetSamplesTaken() const;

  // ---- Telemetry ----
  telemetry::Snapshot GetTelemetrySnapshot();
  // Dotted "component.name" lookup over a fresh telemetry snapshot, e.g.
  // GetProperty("pressure.reclaimed_bytes") or
  // GetProperty("allocator.heap_bytes"). Returns the sample's scalar value
  // (counter count, gauge value, or histogram sum), or nullopt when the
  // property does not exist.
  std::optional<double> GetProperty(std::string_view name);
  // String-valued properties. Today: "generic.backend" ->
  // "virtual-arena" | "real-memory". Returns nullopt for anything else.
  std::optional<std::string> GetStringProperty(std::string_view name) const;

  // Escape hatch for callers that need operations the facade does not
  // cover (Allocate/Free themselves, vCPU placement).
  Allocator* allocator() { return allocator_; }
  const Allocator* allocator() const { return allocator_; }

 private:
  Allocator* allocator_;
};

}  // namespace wsc::tcmalloc

#endif  // WSC_TCMALLOC_MALLOC_EXTENSION_H_
