#include "tcmalloc/allocator.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/logging.h"
#include "profiler/self_profiler.h"

namespace wsc::tcmalloc {

namespace {

// Fails loudly (with the actionable message, not just an expression dump)
// on configs that would silently misbehave — e.g. the kTopologyDerived
// sentinel reaching a raw Allocator, or NUCA left with one LLC domain by
// an explicit setting.
const AllocatorConfig& ValidatedOrDie(const AllocatorConfig& config) {
  std::string error = config.ValidationError();
  if (!error.empty()) {
    std::fprintf(stderr, "Invalid AllocatorConfig: %s\n", error.c_str());
    std::abort();
  }
  return config;
}

}  // namespace

namespace {

// Creates the real-memory reservation before config_ is initialized (see
// the real_backing_ declaration-order note in allocator.h).
std::unique_ptr<MemoryBacking> MakeRealBacking(
    const AllocatorConfig& config) {
  if (!config.real_memory) return nullptr;
  // Cap the reservation: the 4 TiB virtual default is address-space
  // bookkeeping, but a real NORESERVE mapping this large per simulated
  // process would exhaust VA space in multi-process fleets.
  constexpr size_t kMaxRealReserve = size_t{64} << 30;  // 64 GiB
  size_t reserve = config.real_memory_reserve_bytes != 0
                       ? config.real_memory_reserve_bytes
                       : std::min(config.arena_bytes, kMaxRealReserve);
  auto backing = std::make_unique<RealMemoryBacking>(reserve);
  if (!backing->ok()) {
    std::fprintf(stderr,
                 "wsc-tcmalloc: failed to reserve real-memory arena\n");
    std::abort();
  }
  return backing;
}

// Rewrites the arena range to the kernel-chosen reservation.
AllocatorConfig PatchArena(const AllocatorConfig& config,
                           const MemoryBacking* backing) {
  AllocatorConfig patched = config;
  if (backing != nullptr) {
    patched.arena_base = backing->base();
    patched.arena_bytes = backing->reserved_bytes();
  }
  return patched;
}

}  // namespace

Allocator::NodeBackend::NodeBackend(const AllocatorConfig& config,
                                    const SizeClasses* size_classes,
                                    uintptr_t base, size_t bytes,
                                    PageMap* pagemap,
                                    MemoryBacking* real_backing)
    : system(real_backing != nullptr
                 ? SystemAllocator(real_backing, config.costs.mmap_ns)
                 : SystemAllocator(base, bytes, config.costs.mmap_ns)),
      page_heap(size_classes, config, &system, pagemap),
      transfer_cache(size_classes, config) {
  int n = size_classes->num_classes();
  cfls.reserve(n);
  int cfl_lists = config.span_prioritization ? config.cfl_num_lists : 1;
  for (int cls = 0; cls < n; ++cls) {
    cfls.push_back(std::make_unique<CentralFreeList>(
        cls, size_classes->info(cls), cfl_lists, &page_heap));
  }
}

Allocator::Allocator(const AllocatorConfig& config,
                     const SizeClasses* size_classes)
    : real_backing_(MakeRealBacking(ValidatedOrDie(config))),
      config_(PatchArena(config, real_backing_.get())),
      size_classes_(size_classes),
      pagemap_(PageIdContaining(config_.arena_base),
               config_.arena_bytes >> kPageShift),
      cpu_caches_(size_classes, config),
      sampler_(config.sample_interval_bytes) {
  int num_nodes = config.numa_aware ? std::max(1, config.num_numa_nodes) : 1;
  // Split the arena into hugepage-aligned node slices. (Real-memory mode
  // is single-node by validation, so the whole reservation is the slice.)
  node_arena_bytes_ = config_.arena_bytes / static_cast<size_t>(num_nodes);
  node_arena_bytes_ &= ~(kHugePageSize - 1);
  WSC_CHECK_GT(node_arena_bytes_, 0u);
  for (int node = 0; node < num_nodes; ++node) {
    nodes_.push_back(std::make_unique<NodeBackend>(
        config, size_classes,
        config_.arena_base + static_cast<uintptr_t>(node) * node_arena_bytes_,
        node_arena_bytes_, &pagemap_, real_backing_.get()));
  }

  int n = size_classes_->num_classes();
  vcpu_domain_.assign(config.num_vcpus, 0);
  vcpu_node_.assign(config.num_vcpus, 0);
  live_objects_per_class_.assign(n, 0);
  cumulative_requested_per_class_.assign(n, 0.0);
  cumulative_allocs_per_class_.assign(n, 0);
  batch_.resize(64);

  alloc_ops_ = registry_.RegisterCounter("allocator", "allocations");
  free_ops_ = registry_.RegisterCounter("allocator", "frees");
  // Footprint samples at sim-interval boundaries, bucketed 1 MiB .. 16 GiB
  // in powers of four (process heaps in the fleet span that range).
  std::vector<double> bounds;
  for (double b = 1 << 20; b <= 16.0 * (1u << 30); b *= 4) {
    bounds.push_back(b);
  }
  heap_sample_hist_ =
      registry_.RegisterHistogram("allocator", "heap_sample_bytes", bounds);

  fail_alloc_failures_ =
      registry_.RegisterCounter("failure", "alloc_failures");
  fail_emergency_recoveries_ =
      registry_.RegisterCounter("failure", "emergency_recoveries");
  fail_recovered_allocations_ =
      registry_.RegisterCounter("failure", "recovered_allocations");
  fail_partial_batches_ =
      registry_.RegisterCounter("failure", "partial_batches");
  fail_guard_double_frees_ =
      registry_.RegisterCounter("failure", "double_frees_detected");
  fail_guard_use_after_frees_ =
      registry_.RegisterCounter("failure", "use_after_frees_detected");
  fail_guard_overruns_ =
      registry_.RegisterCounter("failure", "buffer_overruns_detected");
  sampler_.set_guarded(config_.guarded_sampling);

  // Last: the reclaimer registers its own telemetry and reads the limits
  // out of the (validated) config.
  reclaimer_ = std::make_unique<BackgroundReclaimer>(this);
}

Allocator::~Allocator() {
  // Large spans never flow through the CFLs, so free their metadata here.
  large_objects_.ForEach([this](uintptr_t addr, const LargeObject& obj) {
    nodes_[NodeOfAddr(addr)]->page_heap.FreeLargeSpan(obj.span);
  });
}

void Allocator::SetVcpuDomain(int vcpu, int domain) {
  WSC_CHECK_GE(vcpu, 0);
  WSC_CHECK_LT(vcpu, static_cast<int>(vcpu_domain_.size()));
  WSC_CHECK_GE(domain, 0);
  WSC_CHECK_LT(domain, std::max(config_.num_llc_domains, 1));
  vcpu_domain_[vcpu] = domain;
}

void Allocator::SetVcpuNode(int vcpu, int node) {
  WSC_CHECK_GE(vcpu, 0);
  WSC_CHECK_LT(vcpu, static_cast<int>(vcpu_node_.size()));
  WSC_CHECK_GE(node, 0);
  WSC_CHECK_LT(node, num_numa_nodes());
  vcpu_node_[vcpu] = node;
}

int Allocator::NodeOfAddr(uintptr_t addr) const {
  WSC_DCHECK_GE(addr, config_.arena_base);
  size_t offset = addr - config_.arena_base;
  int node = static_cast<int>(offset / node_arena_bytes_);
  WSC_DCHECK_LT(node, num_numa_nodes());
  return node;
}

double Allocator::MmapNsTotal() const {
  double total = 0;
  for (const auto& node : nodes_) total += node->system.stats().mmap_ns;
  return total;
}

uintptr_t Allocator::Allocate(size_t size, int vcpu, SimTime now,
                              uint64_t callsite) {
  WSC_PROF_SCOPE("allocator/Allocate");
  WSC_CHECK_GT(size, 0u);
  if (trace_) trace_->set_now(now);
  if (!reclaimer_->AdmitAllocation(size)) {
    // Hard memory limit: a counted, surfaced failure (not an allocation).
    last_op_ns_ = config_.costs.other_ns;
    return 0;
  }
  last_op_ns_ = config_.costs.other_ns;
  cycles_.other_ns += config_.costs.other_ns;
  int node = vcpu_node_[vcpu];

  uintptr_t addr;
  size_t allocated_bytes;
  int cls = size_classes_->ClassFor(size);
  if (cls < 0) {
    // Large allocation: straight to the (node-local) page heap, bypassing
    // the caches.
    double mmap_before = MmapNsTotal();
    Length pages = BytesToLengthCeil(size);
    Span* span = nodes_[node]->page_heap.NewLargeSpan(pages);
    if (span == nullptr) {
      // Arena growth denied (injected mmap failure / hugepage scarcity):
      // mobilize cached memory back toward the page heap, then retry once.
      if (trace_) {
        trace_->Emit(trace::EventType::kGrowthFailure, vcpu,
                     vcpu_domain_[vcpu], -1, -1, size, 0);
      }
      if (reclaimer_->EmergencyReclaimForGrowth()) {
        fail_emergency_recoveries_->Add();
        if (trace_) {
          trace_->Emit(trace::EventType::kEmergencyRecovery, vcpu,
                       vcpu_domain_[vcpu], -1, -1, size, 0);
        }
        span = nodes_[node]->page_heap.NewLargeSpan(pages);
      }
      if (span == nullptr) {
        fail_alloc_failures_->Add();
        cycles_.page_heap_ns += config_.costs.page_heap_ns;
        last_op_ns_ += config_.costs.page_heap_ns;
        return 0;
      }
      fail_recovered_allocations_->Add();
    }
    addr = span->start_addr();
    allocated_bytes = span->span_bytes();
    large_live_bytes_ += allocated_bytes;
    large_live_requested_ += static_cast<double>(size);
    large_objects_.Insert(addr, LargeObject{span, size});
    ++alloc_hits_.page_heap;
    cycles_.page_heap_ns += config_.costs.page_heap_ns;
    last_op_ns_ += config_.costs.page_heap_ns;
    double mmap_delta = MmapNsTotal() - mmap_before;
    if (mmap_delta > 0) {
      cycles_.mmap_ns += mmap_delta;
      last_op_ns_ += mmap_delta;
      ++alloc_hits_.mmap;
    }
  } else {
    allocated_bytes = size_classes_->class_size(cls);
    addr = cpu_caches_.Allocate(vcpu, cls);
    if (addr != 0) {
      ++alloc_hits_.cpu_cache;
      cycles_.cpu_cache_ns += config_.costs.cpu_cache_hit_ns;
      last_op_ns_ += config_.costs.cpu_cache_hit_ns;
    } else {
      if (trace_) {
        trace_->Emit(trace::EventType::kCpuCacheMiss, vcpu,
                     vcpu_domain_[vcpu], cls, -1, allocated_bytes, 0);
      }
      addr = SlowPathAllocate(cls, vcpu, node);
      if (addr == 0) {
        // Growth denied at every tier and the emergency cascade ran dry:
        // a counted, surfaced failure (trace events were emitted inside
        // the slow path).
        fail_alloc_failures_->Add();
        return 0;
      }
    }
    ++live_objects_per_class_[cls];
    cumulative_requested_per_class_[cls] += static_cast<double>(size);
    ++cumulative_allocs_per_class_[cls];
    live_bytes_ += allocated_bytes;
    // TCMalloc prefetches the *next* object of this class on every
    // allocation; costly (Fig. 6a: 16% of malloc cycles) but key to data
    // cache locality.
    cycles_.prefetch_ns += config_.costs.prefetch_ns;
    last_op_ns_ += config_.costs.prefetch_ns;
  }

  // Success-only accounting: failed growth attempts return above, so
  // num_allocations() keeps counting exactly the allocations that exist.
  alloc_ops_->Add();
  alloc_count_hist_.Add(static_cast<double>(size), 1.0);
  alloc_bytes_hist_.Add(static_cast<double>(size),
                        static_cast<double>(size));

  if (callsite != 0) {
    CallsiteStats& cs = callsites_[callsite];
    ++cs.allocs;
    cs.live_bytes += allocated_bytes;
    cs.cum_bytes += allocated_bytes;
    if (cs.live_bytes > cs.peak_live_bytes) cs.peak_live_bytes = cs.live_bytes;
  }

  if (sampler_.RecordAllocation(addr, size, allocated_bytes, now, callsite)) {
    cycles_.sampled_ns += config_.costs.sampled_alloc_ns;
    last_op_ns_ += config_.costs.sampled_alloc_ns;
    if (trace_) {
      trace_->Emit(trace::EventType::kSampledAlloc, vcpu, -1, -1, -1,
                   allocated_bytes, callsite);
    }
  }
  return addr;
}

uintptr_t Allocator::SlowPathAllocate(int cls, int vcpu, int node) {
  WSC_PROF_SCOPE("allocator/SlowPathAllocate");
  NodeBackend& backend = *nodes_[node];
  int domain = vcpu_domain_[vcpu];
  int batch = size_classes_->batch_size(cls);
  WSC_CHECK_LE(batch, static_cast<int>(batch_.size()));

  // Fetch a batch from the node's transfer cache.
  int got = backend.transfer_cache.Remove(domain, cls, batch_.data(), batch);
  cycles_.transfer_cache_ns += config_.costs.transfer_cache_ns;
  last_op_ns_ += config_.costs.transfer_cache_ns;

  if (got < batch) {
    // Transfer cache exhausted: extract the remainder from the central
    // free list (which may fetch spans from the page heap).
    CentralFreeList& cfl = *backend.cfls[cls];
    uint64_t spans_before = cfl.stats().fetched_spans;
    double mmap_before = MmapNsTotal();
    got += cfl.RemoveRange(batch_.data() + got, batch - got);
    cycles_.central_free_list_ns += config_.costs.central_free_list_ns;
    last_op_ns_ += config_.costs.central_free_list_ns;
    uint64_t spans_fetched = cfl.stats().fetched_spans - spans_before;
    if (spans_fetched > 0) {
      double ph_ns =
          config_.costs.page_heap_ns * static_cast<double>(spans_fetched);
      cycles_.page_heap_ns += ph_ns;
      last_op_ns_ += ph_ns;
      ++alloc_hits_.page_heap;
      double mmap_delta = MmapNsTotal() - mmap_before;
      if (mmap_delta > 0) {
        cycles_.mmap_ns += mmap_delta;
        last_op_ns_ += mmap_delta;
        ++alloc_hits_.mmap;
      }
    } else {
      ++alloc_hits_.central_free_list;
    }
  } else {
    ++alloc_hits_.transfer_cache;
  }
  if (got == 0) {
    // Every tier is empty and the page heap cannot grow (injected mmap
    // failure / simulated OOM). Run one rate-limited emergency reclaim to
    // mobilize cached objects back down the hierarchy, then retry the
    // central free list once before surfacing the failure.
    if (trace_) {
      trace_->Emit(trace::EventType::kGrowthFailure, vcpu, domain, cls, -1,
                   size_classes_->class_size(cls), 0);
    }
    if (reclaimer_->EmergencyReclaimForGrowth()) {
      fail_emergency_recoveries_->Add();
      if (trace_) {
        trace_->Emit(trace::EventType::kEmergencyRecovery, vcpu, domain, cls,
                     -1, size_classes_->class_size(cls), 0);
      }
      got = backend.cfls[cls]->RemoveRange(batch_.data(), batch);
      cycles_.central_free_list_ns += config_.costs.central_free_list_ns;
      last_op_ns_ += config_.costs.central_free_list_ns;
    }
    if (got == 0) return 0;
    fail_recovered_allocations_->Add();
  } else if (got < batch) {
    // Partial batch: growth was denied midway through the refill. Proceed
    // with what we got — the caller's object is safe, the vCPU cache just
    // refills less.
    fail_partial_batches_->Add();
  }

  // Hand one object to the caller; cache the rest in the vCPU cache.
  uintptr_t result = batch_[0];
  int to_cache = got - 1;
  int accepted = cpu_caches_.Refill(vcpu, cls, batch_.data() + 1, to_cache);
  if (accepted < to_cache) {
    // Cache at byte capacity: return the leftovers to the middle tier.
    int leftover = to_cache - accepted;
    int back = backend.transfer_cache.Insert(
        domain, cls, batch_.data() + 1 + accepted, leftover);
    if (back < leftover) {
      ReturnToCfl(cls, batch_.data() + 1 + accepted + back, leftover - back);
    }
  }
  return result;
}

void Allocator::Free(uintptr_t addr, int vcpu, SimTime now,
                     uint64_t callsite) {
  WSC_PROF_SCOPE("allocator/Free");
  if (trace_) trace_->set_now(now);
  if (sampler_.guarded()) {
    Sampler::Tombstone tomb;
    if (sampler_.TakeTombstone(addr, &tomb)) {
      // Double free of a guarded (sampled) object: the tombstone proves
      // the address was already freed and not yet reused. Report with the
      // allocating callsite and swallow the free instead of corrupting
      // span bookkeeping.
      fail_guard_double_frees_->Add();
      last_op_ns_ = config_.costs.other_ns;
      cycles_.other_ns += config_.costs.other_ns;
      if (trace_) {
        trace_->Emit(
            trace::EventType::kGuardReport, vcpu, -1, -1,
            static_cast<int16_t>(trace::GuardReportKind::kDoubleFree),
            tomb.allocated, tomb.callsite);
      }
      return;
    }
  }
  free_ops_->Add();
  last_op_ns_ = config_.costs.other_ns;
  cycles_.other_ns += config_.costs.other_ns;
  Sampler::FreeRecord sampled = sampler_.RecordFree(addr, now);
  if (sampled.sampled && trace_) {
    trace_->Emit(trace::EventType::kSampledFree, vcpu, -1, -1, -1,
                 sampled.allocated, sampled.callsite);
  }

  Span* span = pagemap_.LookupAddr(addr);
  WSC_CHECK(span != nullptr);  // wild free otherwise
  if (span->is_large()) {
    WSC_CHECK_EQ(span->start_addr(), addr);
    size_t bytes = span->span_bytes();
    WSC_CHECK_GE(large_live_bytes_, bytes);
    large_live_bytes_ -= bytes;
    LargeObject* obj = large_objects_.Find(addr);
    WSC_CHECK(obj != nullptr);
    large_live_requested_ -= static_cast<double>(obj->requested);
    large_objects_.Erase(addr);
    nodes_[NodeOfAddr(addr)]->page_heap.FreeLargeSpan(span);
    cycles_.page_heap_ns += config_.costs.page_heap_ns;
    last_op_ns_ += config_.costs.page_heap_ns;
    if (callsite != 0) {
      CallsiteStats& cs = callsites_[callsite];
      ++cs.frees;
      WSC_CHECK_GE(cs.live_bytes, bytes);
      cs.live_bytes -= bytes;
    }
    return;
  }

  int cls = span->size_class();
  size_t size = size_classes_->class_size(cls);
  WSC_CHECK_GT(live_objects_per_class_[cls], 0);
  --live_objects_per_class_[cls];
  // Track average slack for the class to keep requested-byte estimates
  // consistent between Allocate and Free.
  cumulative_requested_per_class_[cls] -=
      cumulative_allocs_per_class_[cls] > 0
          ? cumulative_requested_per_class_[cls] /
                static_cast<double>(cumulative_allocs_per_class_[cls])
          : 0.0;
  --cumulative_allocs_per_class_[cls];
  WSC_CHECK_GE(live_bytes_, size);
  live_bytes_ -= size;
  if (callsite != 0) {
    CallsiteStats& cs = callsites_[callsite];
    ++cs.frees;
    WSC_CHECK_GE(cs.live_bytes, size);
    cs.live_bytes -= size;
  }

  if (cpu_caches_.Deallocate(vcpu, cls, addr)) {
    cycles_.cpu_cache_ns += config_.costs.cpu_cache_hit_ns;
    last_op_ns_ += config_.costs.cpu_cache_hit_ns;
    return;
  }
  if (trace_) {
    trace_->Emit(trace::EventType::kCpuCacheOverflow, vcpu,
                 vcpu_domain_[vcpu], cls, -1, size, 0);
  }
  SlowPathFree(cls, vcpu, addr);
}

bool Allocator::ProbeAccess(uintptr_t addr, size_t offset, int vcpu,
                            SimTime now) {
  if (!sampler_.guarded()) return false;
  if (trace_) trace_->set_now(now);
  Sampler::Tombstone tomb;
  if (sampler_.TakeTombstone(addr, &tomb)) {
    // Access through a tombstoned guard: use-after-free, caught because
    // the freed address has not been reused (GWP-ASan's quarantined page).
    fail_guard_use_after_frees_->Add();
    if (trace_) {
      trace_->Emit(
          trace::EventType::kGuardReport, vcpu, -1, -1,
          static_cast<int16_t>(trace::GuardReportKind::kUseAfterFree),
          tomb.allocated, tomb.callsite);
    }
    return true;
  }
  const Sampler::Sample* sample = sampler_.FindLiveSample(addr);
  if (sample != nullptr && offset >= sample->requested) {
    // Access past the requested size of a live guard: buffer overrun into
    // the canary redzone. The guard stays live (the object still is).
    fail_guard_overruns_->Add();
    if (trace_) {
      trace_->Emit(
          trace::EventType::kGuardReport, vcpu, -1, -1,
          static_cast<int16_t>(trace::GuardReportKind::kBufferOverrun),
          sample->allocated, sample->callsite);
    }
    return true;
  }
  return false;
}

void Allocator::SlowPathFree(int cls, int vcpu, uintptr_t obj) {
  WSC_PROF_SCOPE("allocator/SlowPathFree");
  // The cache is full: push a batch down to make room, then retry. Each
  // extracted object routes to the transfer cache of its owning node.
  int domain = vcpu_domain_[vcpu];
  int batch = size_classes_->batch_size(cls);
  int extracted = cpu_caches_.ExtractBatch(vcpu, cls, batch_.data(), batch);
  cycles_.transfer_cache_ns += config_.costs.transfer_cache_ns;
  last_op_ns_ += config_.costs.transfer_cache_ns;
  bool cfl_charged = false;
  for (int i = 0; i < extracted; ++i) {
    uintptr_t o = batch_[i];
    NodeBackend& backend = *nodes_[NodeOfAddr(o)];
    if (backend.transfer_cache.Insert(domain, cls, &o, 1) == 0) {
      if (!cfl_charged) {
        cycles_.central_free_list_ns += config_.costs.central_free_list_ns;
        last_op_ns_ += config_.costs.central_free_list_ns;
        cfl_charged = true;
      }
      ReturnToCfl(cls, &o, 1);
    }
  }
  // Retry the fast path; with a freed-up cache this must succeed unless
  // the cache capacity is smaller than one object, in which case bypass.
  if (!cpu_caches_.Deallocate(vcpu, cls, obj)) {
    NodeBackend& backend = *nodes_[NodeOfAddr(obj)];
    if (backend.transfer_cache.Insert(domain, cls, &obj, 1) == 0) {
      ReturnToCfl(cls, &obj, 1);
    }
  }
}

void Allocator::ReturnToCfl(int cls, const uintptr_t* objs, int n) {
  for (int i = 0; i < n; ++i) {
    Span* span = pagemap_.LookupAddr(objs[i]);
    WSC_CHECK(span != nullptr);
    nodes_[NodeOfAddr(objs[i])]->cfls[cls]->InsertObject(span, objs[i]);
  }
}

void Allocator::Maintain(SimTime now) {
  WSC_PROF_SCOPE("allocator/Maintain");
  if (trace_) trace_->set_now(now);
  if (now - last_resize_ >= config_.cpu_cache_resize_interval) {
    last_resize_ = now;
    cpu_caches_.ResizeStep([this](int cls, const uintptr_t* objs, int n) {
      for (int i = 0; i < n; ++i) {
        uintptr_t obj = objs[i];
        NodeBackend& backend = *nodes_[NodeOfAddr(obj)];
        if (backend.transfer_cache.Insert(/*domain=*/0, cls, &obj, 1) == 0) {
          ReturnToCfl(cls, &obj, 1);
        }
      }
    });
  }
  if (now - last_plunder_ >= config_.nuca_plunder_interval) {
    last_plunder_ = now;
    for (auto& node : nodes_) {
      if (node->transfer_cache.nuca_enabled()) node->transfer_cache.Plunder();
      node->transfer_cache.DrainCold(
          [this](int cls, const uintptr_t* objs, int n) {
            ReturnToCfl(cls, objs, n);
          });
    }
  }
  if (now - last_release_ >= config_.release_interval) {
    last_release_ = now;
    for (auto& node : nodes_) node->page_heap.BackgroundRelease();
  }
  // The pressure actor rides the same cadence as the production background
  // thread: every Maintain boundary it compares footprint to the soft
  // limit and runs the tier cascade when over.
  reclaimer_->Tick(now);
}

size_t Allocator::FootprintBytes() const {
  size_t footprint =
      live_bytes_ + large_live_bytes_ + cpu_caches_.TotalCachedBytes();
  for (const auto& node : nodes_) {
    footprint += node->transfer_cache.TotalCachedBytes();
    for (const auto& cfl : node->cfls) {
      footprint += cfl->FreeObjectBytes();
    }
    footprint += node->page_heap.stats().TotalFree();
  }
  return footprint;
}

HeapStats Allocator::CollectStats() const {
  HeapStats stats;
  stats.live_bytes = live_bytes_ + large_live_bytes_;

  double requested = large_live_requested_;
  for (int cls = 0; cls < size_classes_->num_classes(); ++cls) {
    if (cumulative_allocs_per_class_[cls] == 0) continue;
    double avg_requested =
        cumulative_requested_per_class_[cls] /
        static_cast<double>(cumulative_allocs_per_class_[cls]);
    requested +=
        avg_requested * static_cast<double>(live_objects_per_class_[cls]);
  }
  stats.requested_bytes = static_cast<size_t>(requested);

  stats.cpu_cache_free = cpu_caches_.TotalCachedBytes();
  for (const auto& node : nodes_) {
    stats.transfer_cache_free += node->transfer_cache.TotalCachedBytes();
    for (const auto& cfl : node->cfls) {
      stats.central_free_list_free += cfl->FreeObjectBytes();
    }
    PageHeapStats ph = node->page_heap.stats();
    // Pages held by CFL spans are "used" from the page heap's perspective;
    // the page heap's own fragmentation is its free (unreleased) space.
    stats.page_heap_free += ph.TotalFree();
    stats.released_bytes += ph.TotalReleased();
  }
  return stats;
}

SystemStats Allocator::system_stats() const {
  SystemStats total;
  for (const auto& node : nodes_) {
    const SystemStats& s = node->system.stats();
    total.mmap_calls += s.mmap_calls;
    total.mapped_bytes += s.mapped_bytes;
    total.mmap_ns += s.mmap_ns;
  }
  return total;
}

PageHeapStats Allocator::page_heap_stats() const {
  PageHeapStats total;
  for (const auto& node : nodes_) {
    PageHeapStats s = node->page_heap.stats();
    total.filler_used += s.filler_used;
    total.filler_free += s.filler_free;
    total.filler_released += s.filler_released;
    total.region_used += s.region_used;
    total.region_free += s.region_free;
    total.cache_used += s.cache_used;
    total.cache_free += s.cache_free;
    total.cache_released += s.cache_released;
  }
  return total;
}

bool Allocator::IsHugepageBacked(uintptr_t addr) const {
  return nodes_[NodeOfAddr(addr)]->page_heap.IsHugepageBacked(addr);
}

double Allocator::HugepageCoverage() const {
  double intact_used = 0, in_use = 0;
  for (const auto& node : nodes_) {
    PageHeapStats s = node->page_heap.stats();
    in_use += static_cast<double>(s.TotalInUse());
    intact_used += node->page_heap.HugepageCoverage() *
                   static_cast<double>(s.TotalInUse());
  }
  return in_use > 0 ? intact_used / in_use : 1.0;
}

void Allocator::RecordHeapSample(const HeapStats& heap) {
  heap_sample_hist_->Record(static_cast<double>(heap.HeapBytes()));
}

telemetry::Snapshot Allocator::TelemetrySnapshot() {
  telemetry::MetricRegistry& reg = registry_;
  reg.BeginExport();

  // Allocator-level aggregates: heap accounting, the Fig. 6a cycle
  // breakdown, and the Fig. 4 tier hit counts.
  const HeapStats heap = CollectStats();
  reg.ExportGauge("allocator", "live_bytes",
                  static_cast<double>(heap.live_bytes));
  reg.ExportGauge("allocator", "requested_bytes",
                  static_cast<double>(heap.requested_bytes));
  reg.ExportGauge("allocator", "heap_bytes",
                  static_cast<double>(heap.HeapBytes()));
  reg.ExportGauge("allocator", "external_fragmentation_bytes",
                  static_cast<double>(heap.ExternalFragmentation()));
  reg.ExportGauge("allocator", "internal_fragmentation_bytes",
                  static_cast<double>(heap.InternalFragmentation()));
  reg.ExportGauge("allocator", "released_bytes",
                  static_cast<double>(heap.released_bytes));
  reg.ExportGauge("allocator", "hugepage_coverage", HugepageCoverage());

  reg.ExportGauge("allocator", "cycles_cpu_cache_ns", cycles_.cpu_cache_ns);
  reg.ExportGauge("allocator", "cycles_transfer_cache_ns",
                  cycles_.transfer_cache_ns);
  reg.ExportGauge("allocator", "cycles_central_free_list_ns",
                  cycles_.central_free_list_ns);
  reg.ExportGauge("allocator", "cycles_page_heap_ns", cycles_.page_heap_ns);
  reg.ExportGauge("allocator", "cycles_mmap_ns", cycles_.mmap_ns);
  reg.ExportGauge("allocator", "cycles_sampled_ns", cycles_.sampled_ns);
  reg.ExportGauge("allocator", "cycles_prefetch_ns", cycles_.prefetch_ns);
  reg.ExportGauge("allocator", "cycles_other_ns", cycles_.other_ns);

  reg.ExportCounter("allocator", "alloc_hits_cpu_cache",
                    alloc_hits_.cpu_cache);
  reg.ExportCounter("allocator", "alloc_hits_transfer_cache",
                    alloc_hits_.transfer_cache);
  reg.ExportCounter("allocator", "alloc_hits_central_free_list",
                    alloc_hits_.central_free_list);
  reg.ExportCounter("allocator", "alloc_hits_page_heap",
                    alloc_hits_.page_heap);
  reg.ExportCounter("allocator", "alloc_hits_mmap", alloc_hits_.mmap);

  // Every tier of every NUMA node contributes into the shared component
  // namespaces; multi-instance tiers accumulate.
  cpu_caches_.ContributeTelemetry(reg);
  for (const auto& node : nodes_) {
    node->transfer_cache.ContributeTelemetry(reg);
    for (const auto& cfl : node->cfls) {
      cfl->ContributeTelemetry(reg);
    }
    node->page_heap.ContributeTelemetry(reg);
    node->system.ContributeTelemetry(reg);
  }
  reclaimer_->ContributeTelemetry(reg);

  // Failure component: the guard/recovery live handles registered at
  // construction are joined by the per-tier denial counts, so
  // GetProperty("failure.*") sees the whole fault-injection story in one
  // place.
  {
    uint64_t mmap_denied = 0, backing_denied = 0, huge_alloc_failures = 0;
    uint64_t filler_growth = 0, cross_set = 0, unbacked = 0;
    uint64_t region_growth = 0, span_fetch = 0;
    uint64_t large_fallbacks = 0, large_failures = 0;
    for (const auto& node : nodes_) {
      mmap_denied += node->system.stats().mmap_failures;
      const HugeCacheStats cache = node->page_heap.cache_stats();
      backing_denied += cache.backing_denied;
      huge_alloc_failures += cache.allocation_failures;
      const FillerStats filler = node->page_heap.filler_stats();
      filler_growth += filler.growth_failures;
      cross_set += filler.cross_set_fallbacks;
      unbacked += filler.unbacked_hugepages;
      region_growth += node->page_heap.region_growth_failures();
      large_fallbacks += node->page_heap.large_fallbacks();
      large_failures += node->page_heap.large_failures();
      for (const auto& cfl : node->cfls) {
        span_fetch += cfl->span_fetch_failures();
      }
    }
    reg.ExportCounter("failure", "mmap_denied", mmap_denied);
    reg.ExportCounter("failure", "hugepage_backing_denied", backing_denied);
    reg.ExportCounter("failure", "huge_cache_allocation_failures",
                      huge_alloc_failures);
    reg.ExportCounter("failure", "filler_growth_failures", filler_growth);
    reg.ExportCounter("failure", "filler_cross_set_fallbacks", cross_set);
    reg.ExportCounter("failure", "unbacked_hugepages", unbacked);
    reg.ExportCounter("failure", "region_growth_failures", region_growth);
    reg.ExportCounter("failure", "span_fetch_failures", span_fetch);
    reg.ExportCounter("failure", "large_fallbacks", large_fallbacks);
    reg.ExportCounter("failure", "large_failures", large_failures);
    reg.ExportCounter("failure", "guarded_samples", sampler_.guarded_allocs());
    reg.ExportGauge("failure", "live_tombstones",
                    static_cast<double>(sampler_.tombstone_count()));
  }

  // Sampler component: sample counts plus the all-sizes lifetime
  // distribution, rebinned from the sampler's log histogram onto fixed
  // bounds so fleet-wide merges stay exact (satisfying Snapshot::MergeFrom's
  // equal-bounds requirement).
  reg.ExportCounter("sampler", "samples_taken", sampler_.samples_taken());
  reg.ExportGauge("sampler", "live_samples",
                  static_cast<double>(sampler_.live_sample_count()));
  {
    const LogHistogram& lifetimes = sampler_.profile().all_lifetimes;
    // Fixed bounds: 2^8 .. 2^44 ns in powers of 16 (256 ns to ~4.9 hours).
    std::vector<double> bounds;
    for (int b = 8; b <= 44; b += 4) {
      bounds.push_back(static_cast<double>(uint64_t{1} << b));
    }
    std::vector<uint64_t> buckets(bounds.size() + 1, 0);
    double sum = 0;
    for (int b = 0; b < LogHistogram::kNumBuckets; ++b) {
      double weight = lifetimes.BucketWeight(b);
      if (weight <= 0) continue;
      // Rebin by the bucket's representative value; the exact per-bucket
      // value sum keeps the histogram mean exact.
      double rep = 1.5 * static_cast<double>(uint64_t{1} << b);
      size_t i = 0;
      while (i < bounds.size() && rep > bounds[i]) ++i;
      buckets[i] += static_cast<uint64_t>(weight + 0.5);
      sum += lifetimes.BucketValueSum(b);
    }
    reg.ExportHistogram("sampler", "lifetime_ns", bounds, buckets,
                        static_cast<uint64_t>(lifetimes.total_weight() + 0.5),
                        sum);
  }
  return reg.TakeSnapshot();
}

void Allocator::SetFlightRecorder(trace::FlightRecorder* recorder) {
  trace_ = recorder;
  cpu_caches_.set_flight_recorder(recorder);
  for (auto& node : nodes_) {
    node->transfer_cache.set_flight_recorder(recorder);
    for (auto& cfl : node->cfls) cfl->set_flight_recorder(recorder);
    node->page_heap.set_flight_recorder(recorder);
  }
  reclaimer_->set_flight_recorder(recorder);
}

void Allocator::SetFaultInjector(FaultInjector* injector) {
  fault_injector_ = injector;
  for (auto& node : nodes_) node->system.SetFaultInjector(injector);
}

void Allocator::RegisterCallsite(uint64_t id, std::string_view name) {
  WSC_CHECK_NE(id, 0u);
  callsites_[id].name = std::string(name);
}

trace::HeapProfile Allocator::CollectHeapProfile() const {
  trace::HeapProfile profile;
  profile.total_live_bytes = live_bytes_ + large_live_bytes_;
  profile.samples_taken = sampler_.samples_taken();

  // Exact dimensions from the per-callsite accounting.
  for (const auto& [id, cs] : callsites_) {
    trace::CallsiteProfile& row = profile.callsites[id];
    row.name = cs.name;
    row.allocs = cs.allocs;
    row.frees = cs.frees;
    row.live_bytes = cs.live_bytes;
    row.peak_live_bytes = cs.peak_live_bytes;
    row.cum_bytes = cs.cum_bytes;
    profile.attributed_live_bytes += cs.live_bytes;
  }

  // Sampled dimensions. Callsite 0 collects untagged allocations.
  for (const auto& [id, ss] : sampler_.by_callsite()) {
    trace::CallsiteProfile& row = profile.callsites[id];
    if (row.name.empty()) {
      row.name = id == 0 ? "<untagged>" : "<unregistered>";
    }
    row.samples = ss.samples;
    row.sampled_live_bytes = ss.live_bytes;
    row.sampled_lifetimes = ss.lifetimes;
    row.lifetime_sum_ns = ss.lifetime_sum_ns;
  }

  // Size x lifetime table from the Fig. 8 profile.
  const LifetimeProfile& lp = sampler_.profile();
  static_assert(trace::HeapProfile::kSizeBuckets ==
                LifetimeProfile::kSizeBuckets);
  for (int i = 0; i < LifetimeProfile::kSizeBuckets; ++i) {
    profile.size_lifetime[i].samples = lp.lifetime_by_size[i].count();
    profile.size_lifetime[i].lifetime_sum_ns =
        lp.lifetime_by_size[i].weighted_sum();
  }

  // Fragmentation attribution: walk live sampled objects in address order;
  // a callsite whose sample sits on a filler hugepage that carries free
  // (or subreleased) pages is pinning a fragmented hugepage. Each
  // (callsite, hugepage) pair counts once.
  std::map<std::pair<uint64_t, uint64_t>, bool> seen;
  for (const auto& [addr, sample] : sampler_.SortedLiveSamples()) {
    const PageHeap& heap = nodes_[NodeOfAddr(addr)]->page_heap;
    size_t free_bytes = heap.FragmentedBytesOnHugepage(addr);
    if (free_bytes == 0) continue;
    uint64_t hp = addr / kHugePageSize;
    if (!seen.emplace(std::make_pair(sample.callsite, hp), true).second) {
      continue;
    }
    trace::CallsiteProfile& row = profile.callsites[sample.callsite];
    if (row.name.empty()) {
      row.name = sample.callsite == 0 ? "<untagged>" : "<unregistered>";
    }
    ++row.fragmented_hugepages;
    row.fragmented_free_bytes += free_bytes;
  }
  return profile;
}

bool Allocator::IsLiveObject(uintptr_t addr) const {
  Span* span = pagemap_.LookupAddr(addr);
  if (span == nullptr) return false;
  if (span->is_large()) return span->start_addr() == addr;
  // From the span's perspective objects cached in upper tiers are live;
  // the span bitmap alone cannot distinguish app-live from cached. This
  // helper is used by tests that bypass the caches.
  return span->IsLiveObject(addr);
}

}  // namespace wsc::tcmalloc
