#include "tcmalloc/size_classes.h"

#include <algorithm>

#include "common/logging.h"

namespace wsc::tcmalloc {

namespace {

// Class spacing: fine granularity for small sizes (where slack is cheap in
// absolute terms but requests are frequent), geometric above 8 KiB where a
// ~12.5% step bounds internal fragmentation.
std::vector<size_t> GenerateClassSizes() {
  std::vector<size_t> sizes;
  for (size_t s = 8; s <= 128; s += 8) sizes.push_back(s);
  for (size_t s = 128 + 16; s <= 256; s += 16) sizes.push_back(s);
  for (size_t s = 256 + 32; s <= 512; s += 32) sizes.push_back(s);
  for (size_t s = 512 + 64; s <= 1024; s += 64) sizes.push_back(s);
  for (size_t s = 1024 + 128; s <= 2048; s += 128) sizes.push_back(s);
  for (size_t s = 2048 + 256; s <= 4096; s += 256) sizes.push_back(s);
  for (size_t s = 4096 + 512; s <= 8192; s += 512) sizes.push_back(s);
  // Geometric with ratio ~1.2, aligned to 1 KiB, up to 256 KiB.
  size_t s = 8192;
  while (s < kMaxSmallSize) {
    size_t next = s + s / 5;
    next = (next + 1023) & ~size_t{1023};
    s = std::min(next, kMaxSmallSize);
    sizes.push_back(s);
  }
  return sizes;
}

// Picks the span length for a class: the smallest page count (up to 64)
// whose tail waste is <= 1/8 of the span.
Length PickPagesPerSpan(size_t size) {
  Length min_pages = std::max<Length>(1, BytesToLengthCeil(size));
  for (Length p = min_pages; p <= 64; ++p) {
    size_t span_bytes = LengthToBytes(p);
    if (span_bytes < size) continue;
    size_t waste = span_bytes % size;
    if (waste * 8 <= span_bytes) return p;
  }
  return min_pages;
}

}  // namespace

SizeClasses::SizeClasses() {
  for (size_t size : GenerateClassSizes()) {
    SizeClassInfo info;
    info.size = size;
    info.pages_per_span = PickPagesPerSpan(size);
    info.objects_per_span =
        static_cast<int>(LengthToBytes(info.pages_per_span) / size);
    info.batch_size = static_cast<int>(
        std::min<size_t>(32, std::max<size_t>(2, 8192 / size)));
    // Cap each class at ~128 KiB per CPU (and at least two batches), so a
    // 3 MiB cache shared by ~85 classes cannot be hoarded by one class and
    // freed objects of big classes drain to the middle tier.
    info.max_per_cpu_objects = static_cast<int>(std::min<size_t>(
        1024,
        std::max<size_t>(2 * info.batch_size, (128 * 1024) / size)));
    WSC_CHECK_GT(info.objects_per_span, 0);
    classes_.push_back(info);
  }
  WSC_CHECK_GE(num_classes(), 80);  // "80-90 size classes" (Section 2.1)
  WSC_CHECK_LE(num_classes(), 90);
  WSC_CHECK_EQ(classes_.back().size, kMaxSmallSize);

  WSC_CHECK_LT(num_classes(), 1 << 15);  // classes must fit the int16_t LUT

  // ClassFor's flat LUT: slot i covers requests (8(i-1), 8i]; the class of
  // slot i is the class of request 8i, since class sizes are multiples of 8
  // and therefore no class boundary falls strictly inside a slot. Built by
  // one merged walk (classes_ is sorted by size).
  lut_.assign(kMaxSmallSize / 8 + 1, -1);
  int cls = 0;
  for (size_t slot = 1; slot < lut_.size(); ++slot) {
    while (classes_[cls].size < slot * 8) ++cls;
    lut_[slot] = static_cast<int16_t>(cls);
  }
}

const SizeClasses& SizeClasses::Default() {
  static const SizeClasses* instance = new SizeClasses();
  return *instance;
}

}  // namespace wsc::tcmalloc
