#include "tcmalloc/malloc_extension.h"

#include <string>

#include "common/logging.h"

namespace wsc::tcmalloc {

MallocExtension::MallocExtension(Allocator* allocator)
    : allocator_(allocator) {
  WSC_CHECK(allocator != nullptr);
}

HeapStats MallocExtension::GetHeapStats() const {
  return allocator_->CollectStats();
}

const MallocCycleBreakdown& MallocExtension::GetCycleBreakdown() const {
  return allocator_->cycle_breakdown();
}

const TierHitCounts& MallocExtension::GetAllocTierHits() const {
  return allocator_->alloc_tier_hits();
}

uint64_t MallocExtension::GetNumAllocations() const {
  return allocator_->num_allocations();
}

uint64_t MallocExtension::GetNumFrees() const {
  return allocator_->num_frees();
}

size_t MallocExtension::GetFootprintBytes() const {
  return allocator_->FootprintBytes();
}

PageHeapStats MallocExtension::GetPageHeapStats() const {
  return allocator_->page_heap_stats();
}

SystemStats MallocExtension::GetSystemStats() const {
  return allocator_->system_stats();
}

double MallocExtension::GetHugepageCoverage() const {
  return allocator_->HugepageCoverage();
}

const LogHistogram& MallocExtension::GetAllocCountHistogram() const {
  return allocator_->alloc_count_hist();
}

const LogHistogram& MallocExtension::GetAllocBytesHistogram() const {
  return allocator_->alloc_bytes_hist();
}

BackendKind MallocExtension::GetBackendKind() const {
  return allocator_->backend_kind();
}

std::optional<std::string> MallocExtension::GetStringProperty(
    std::string_view name) const {
  if (name == "generic.backend") {
    return std::string(BackendKindName(allocator_->backend_kind()));
  }
  return std::nullopt;
}

void MallocExtension::SetMemoryLimit(MemoryLimitKind kind, size_t bytes) {
  allocator_->reclaimer().SetLimit(kind, bytes);
}

size_t MallocExtension::GetMemoryLimit(MemoryLimitKind kind) const {
  return allocator_->reclaimer().GetLimit(kind);
}

size_t MallocExtension::ReleaseMemoryToSystem(size_t bytes) {
  return allocator_->reclaimer().ReleaseMemoryToSystem(bytes);
}

trace::HeapProfile MallocExtension::GetHeapProfileData() const {
  return allocator_->CollectHeapProfile();
}

std::string MallocExtension::GetHeapProfile() const {
  return trace::RenderHeapProfileText(allocator_->CollectHeapProfile());
}

const LifetimeProfile& MallocExtension::GetLifetimeProfile() const {
  return allocator_->sampler().profile();
}

uint64_t MallocExtension::GetSamplesTaken() const {
  return allocator_->sampler().samples_taken();
}

telemetry::Snapshot MallocExtension::GetTelemetrySnapshot() {
  return allocator_->TelemetrySnapshot();
}

std::optional<double> MallocExtension::GetProperty(std::string_view name) {
  size_t dot = name.find('.');
  if (dot == std::string_view::npos || dot == 0 ||
      dot == name.size() - 1) {
    return std::nullopt;
  }
  std::string_view component = name.substr(0, dot);
  std::string_view metric = name.substr(dot + 1);
  telemetry::Snapshot snapshot = allocator_->TelemetrySnapshot();
  const telemetry::MetricSample* sample = snapshot.Find(component, metric);
  if (sample == nullptr) return std::nullopt;
  return sample->ScalarValue();
}

}  // namespace wsc::tcmalloc
