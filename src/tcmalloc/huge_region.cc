#include "tcmalloc/huge_region.h"

#include "common/logging.h"

namespace wsc::tcmalloc {

HugeRegion::HugeRegion(HugePageId first, bool backed)
    : first_(first), backed_(backed) {
  bitmap_.assign(kRegionPages / 64, 0);
}

int HugeRegion::Allocate(Length n) {
  WSC_CHECK_GT(n, 0u);
  if (n > free_pages()) return -1;
  Length run = 0;
  for (size_t p = 0; p < kRegionPages; ++p) {
    bool used = (bitmap_[p / 64] >> (p % 64)) & 1;
    if (used) {
      run = 0;
      continue;
    }
    if (++run == n) {
      size_t start = p + 1 - n;
      for (size_t q = start; q <= p; ++q) {
        bitmap_[q / 64] |= uint64_t{1} << (q % 64);
      }
      used_ += n;
      return static_cast<int>(start);
    }
  }
  return -1;
}

void HugeRegion::Free(int offset, Length n) {
  WSC_CHECK_GE(offset, 0);
  WSC_CHECK_LE(static_cast<Length>(offset) + n, kRegionPages);
  for (Length q = offset; q < offset + n; ++q) {
    uint64_t mask = uint64_t{1} << (q % 64);
    WSC_CHECK_NE(bitmap_[q / 64] & mask, 0u);
    bitmap_[q / 64] &= ~mask;
  }
  WSC_CHECK_GE(used_, n);
  used_ -= n;
}

HugeRegionSet::HugeRegionSet(HugeCache* cache) : cache_(cache) {
  WSC_CHECK(cache != nullptr);
}

PageId HugeRegionSet::Allocate(Length n) {
  WSC_CHECK_LE(n, HugeRegion::kRegionPages);
  // Prefer the fullest region that fits, to densify and let sparse regions
  // drain (same packing philosophy as the filler).
  HugeRegion* best = nullptr;
  for (const auto& region : regions_) {
    if (region->free_pages() < n) continue;
    if (best == nullptr || region->used_pages() > best->used_pages()) {
      best = region.get();
    }
  }
  if (best != nullptr) {
    int offset = best->Allocate(n);
    if (offset >= 0) {
      return PageId{best->first_page().index +
                    static_cast<uintptr_t>(offset)};
    }
    // Fullest region had the pages but not contiguously; fall through and
    // scan the rest before growing.
    for (const auto& region : regions_) {
      if (region.get() == best) continue;
      int off = region->Allocate(n);
      if (off >= 0) {
        return PageId{region->first_page().index +
                      static_cast<uintptr_t>(off)};
      }
    }
  }
  HugePageId hp = cache_->Allocate(HugeRegion::kRegionHugePages);
  if (!IsValid(hp)) {
    // No region run to be had; the caller falls back to the huge cache's
    // whole-hugepage path (which can serve smaller runs).
    ++growth_failures_;
    return kInvalidPageId;
  }
  regions_.push_back(
      std::make_unique<HugeRegion>(hp, cache_->last_allocation_backed()));
  int offset = regions_.back()->Allocate(n);
  WSC_CHECK_GE(offset, 0);
  return PageId{regions_.back()->first_page().index +
                static_cast<uintptr_t>(offset)};
}

bool HugeRegionSet::Free(PageId page, Length n) {
  HugeRegion* region = RegionFor(page);
  if (region == nullptr) return false;
  region->Free(static_cast<int>(page.index - region->first_page().index), n);
  if (region->empty()) {
    cache_->Release(region->first_hugepage(), HugeRegion::kRegionHugePages,
                    /*intact=*/region->backed());
    for (auto it = regions_.begin(); it != regions_.end(); ++it) {
      if (it->get() == region) {
        regions_.erase(it);
        break;
      }
    }
  }
  return true;
}

HugeRegion* HugeRegionSet::RegionFor(PageId page) const {
  for (const auto& region : regions_) {
    if (region->Contains(page)) return region.get();
  }
  return nullptr;
}

Length HugeRegionSet::used_pages() const {
  Length used = 0;
  for (const auto& region : regions_) used += region->used_pages();
  return used;
}

Length HugeRegionSet::backed_used_pages() const {
  Length used = 0;
  for (const auto& region : regions_) {
    if (region->backed()) used += region->used_pages();
  }
  return used;
}

Length HugeRegionSet::free_pages() const {
  Length free = 0;
  for (const auto& region : regions_) free += region->free_pages();
  return free;
}

void HugeRegionSet::ContributeTelemetry(
    telemetry::MetricRegistry& registry) const {
  registry.ExportGauge("huge_region", "used_pages",
                       static_cast<double>(used_pages()));
  registry.ExportGauge("huge_region", "free_pages",
                       static_cast<double>(free_pages()));
  registry.ExportGauge("huge_region", "regions",
                       static_cast<double>(regions_.size()));
  registry.ExportCounter("huge_region", "growth_failures", growth_failures_);
}

}  // namespace wsc::tcmalloc
