#include "tcmalloc/background.h"

#include <algorithm>

#include "common/logging.h"
#include "tcmalloc/allocator.h"

namespace wsc::tcmalloc {

namespace {

// Exact footprint recomputation is O(#vcpus + #classes + #hugepages), so
// the admission path refreshes every this many allocations and advances an
// admitted-bytes estimate in between.
constexpr int kAdmissionRefreshInterval = 16;

// Per-tier reclaim-size histogram bounds: 64 KiB .. 4 GiB in powers of 4.
std::vector<double> TierHistBounds() {
  std::vector<double> bounds;
  for (double b = 64.0 * 1024.0; b <= 4.0 * (1ull << 30); b *= 4) {
    bounds.push_back(b);
  }
  return bounds;
}

}  // namespace

BackgroundReclaimer::BackgroundReclaimer(Allocator* allocator)
    : allocator_(allocator),
      soft_limit_(allocator->config().soft_limit_bytes),
      hard_limit_(allocator->config().hard_limit_bytes) {
  WSC_CHECK(allocator != nullptr);
  telemetry::MetricRegistry& reg = allocator_->registry_;
  soft_limit_hits_ = reg.RegisterCounter("pressure", "soft_limit_hits");
  hard_limit_failures_ =
      reg.RegisterCounter("pressure", "hard_limit_failures");
  reclaim_runs_ = reg.RegisterCounter("pressure", "reclaim_runs");
  reclaimed_bytes_ = reg.RegisterCounter("pressure", "reclaimed_bytes");
  std::vector<double> bounds = TierHistBounds();
  tier_cpu_cache_hist_ = reg.RegisterHistogram(
      "pressure", "tier_cpu_cache_shrink_bytes", bounds);
  tier_transfer_cache_hist_ = reg.RegisterHistogram(
      "pressure", "tier_transfer_cache_drain_bytes", bounds);
  tier_central_free_list_hist_ = reg.RegisterHistogram(
      "pressure", "tier_central_free_list_return_bytes", bounds);
  tier_page_heap_hist_ = reg.RegisterHistogram(
      "pressure", "tier_page_heap_release_bytes", bounds);
}

void BackgroundReclaimer::SetLimit(MemoryLimitKind kind, size_t bytes) {
  if (kind == MemoryLimitKind::kSoft) {
    soft_limit_ = bytes;
    if (bytes == 0) allocator_->cpu_caches_.LiftPressureCap();
  } else {
    hard_limit_ = bytes;
    footprint_cache_valid_ = false;
  }
}

size_t BackgroundReclaimer::GetLimit(MemoryLimitKind kind) const {
  return kind == MemoryLimitKind::kSoft ? soft_limit_ : hard_limit_;
}

void BackgroundReclaimer::Tick(SimTime now) {
  (void)now;  // the actor is stateless in time; cadence comes from Maintain
  if (soft_limit_ == 0) return;
  size_t footprint = allocator_->FootprintBytes();
  if (footprint <= soft_limit_) {
    // Pressure subsided: let the per-CPU caches grow back to their
    // configured capacities.
    if (allocator_->cpu_caches_.pressure_capped()) {
      allocator_->cpu_caches_.LiftPressureCap();
    }
    return;
  }
  soft_limit_hits_->Add();
  ReclaimTiers(soft_limit_);
}

size_t BackgroundReclaimer::ReleaseMemoryToSystem(size_t bytes) {
  size_t released = ReleaseBackend(bytes);
  reclaimed_bytes_->Add(released);
  footprint_cache_valid_ = false;
  return released;
}

bool BackgroundReclaimer::AdmitAllocation(size_t size) {
  if (hard_limit_ == 0) return true;
  if (!footprint_cache_valid_ ||
      ++admissions_since_refresh_ >= kAdmissionRefreshInterval) {
    cached_footprint_ = allocator_->FootprintBytes();
    pending_admitted_bytes_ = 0;
    admissions_since_refresh_ = 0;
    footprint_cache_valid_ = true;
  }
  if (cached_footprint_ + pending_admitted_bytes_ + size <= hard_limit_) {
    pending_admitted_bytes_ += size;
    return true;
  }
  // The running estimate says no; recheck exactly (frees since the last
  // refresh make the estimate conservative).
  cached_footprint_ = allocator_->FootprintBytes();
  pending_admitted_bytes_ = 0;
  admissions_since_refresh_ = 0;
  if (cached_footprint_ + size <= hard_limit_) {
    pending_admitted_bytes_ = size;
    return true;
  }
  // One emergency reclaim attempt, rate-limited: if the footprint has not
  // moved since the last failed admission, the cascade already ran dry.
  if (cached_footprint_ != last_emergency_footprint_) {
    last_emergency_footprint_ = cached_footprint_;
    ReclaimTiers(hard_limit_ > size ? hard_limit_ - size : 0);
    cached_footprint_ = allocator_->FootprintBytes();
    footprint_cache_valid_ = true;
    if (cached_footprint_ + size <= hard_limit_) {
      pending_admitted_bytes_ = size;
      return true;
    }
  }
  hard_limit_failures_->Add();
  return false;
}

bool BackgroundReclaimer::EmergencyReclaimForGrowth() {
  size_t footprint = allocator_->FootprintBytes();
  if (footprint == last_emergency_footprint_) return false;
  last_emergency_footprint_ = footprint;
  // One hugepage of headroom is enough for any span: the cascade stops at
  // the first tier that frees it rather than draining every cache.
  size_t target = footprint > kHugePageSize ? footprint - kHugePageSize : 0;
  ReclaimTiers(target);
  return true;
}

size_t BackgroundReclaimer::ReclaimTiers(size_t target_bytes) {
  reclaim_runs_->Add();
  // Accumulate what each backend release call actually confirmed, rather
  // than diffing the released-pages gauge: the gauge also moves when frees
  // land on subreleased hugepages (over-report) or released memory is
  // reused mid-cascade (underflow), so it is not a measure of this run.
  size_t released = 0;
  const std::vector<uint64_t> spans_before = SnapshotReturnedSpans();
  auto to_cfl = [this](int cls, const uintptr_t* objs, int n) {
    allocator_->ReturnToCfl(cls, objs, n);
  };

  size_t footprint = allocator_->FootprintBytes();

  // Tier 1: shrink cold per-CPU caches below their floor. Objects go
  // straight to the central free lists so emptied spans can flow back to
  // the page heap immediately.
  if (footprint > target_bytes) {
    const AllocatorConfig& config = allocator_->config();
    size_t floor = static_cast<size_t>(
        static_cast<double>(config.per_cpu_cache_min_bytes) *
        config.pressure_cache_floor_fraction);
    size_t flushed =
        allocator_->cpu_caches_.ShrinkForPressure(floor, to_cfl);
    tier_cpu_cache_hist_->Record(static_cast<double>(flushed));
    if (trace_) {
      trace_->Emit(trace::EventType::kPressureStep, -1, -1, -1, 0, flushed,
                   footprint);
    }
    released += ReleaseBackend(footprint - target_bytes);
    footprint = allocator_->FootprintBytes();
  }

  // Tier 2: plunder NUCA shards, then drain the whole transfer cache.
  if (footprint > target_bytes) {
    size_t drained = 0;
    for (auto& node : allocator_->nodes_) {
      if (node->transfer_cache.nuca_enabled()) {
        node->transfer_cache.Plunder();
      }
      drained += node->transfer_cache.DrainAll(to_cfl);
    }
    tier_transfer_cache_hist_->Record(static_cast<double>(drained));
    if (trace_) {
      trace_->Emit(trace::EventType::kPressureStep, -1, -1, -1, 1, drained,
                   footprint);
    }
    released += ReleaseBackend(footprint - target_bytes);
    footprint = allocator_->FootprintBytes();
  }

  // Tier 3: partial spans drained by tiers 1-2 that completed and returned
  // to the page heap (the central free lists return fully-free spans
  // eagerly; this attributes those bytes to the cascade).
  size_t span_bytes = ReturnedSpanBytesSince(spans_before);
  tier_central_free_list_hist_->Record(static_cast<double>(span_bytes));
  if (trace_) {
    trace_->Emit(trace::EventType::kPressureStep, -1, -1, -1, 2, span_bytes,
                 footprint);
  }

  // Tier 4: whatever deficit remains comes straight out of the back end —
  // aggressive subrelease of sparse hugepages, no demand guard.
  if (footprint > target_bytes) {
    released += ReleaseBackend(footprint - target_bytes);
  }

  tier_page_heap_hist_->Record(static_cast<double>(released));
  if (trace_) {
    trace_->Emit(trace::EventType::kPressureStep, -1, -1, -1, 3, released,
                 footprint);
  }
  reclaimed_bytes_->Add(released);
  footprint_cache_valid_ = false;
  return released;
}

size_t BackgroundReclaimer::ReleaseBackend(size_t deficit) {
  size_t released = 0;
  for (auto& node : allocator_->nodes_) {
    if (released >= deficit) break;
    released += node->page_heap.ReleaseForPressure(deficit - released);
  }
  return released;
}

size_t BackgroundReclaimer::TotalReleasedBytes() const {
  size_t total = 0;
  for (const auto& node : allocator_->nodes_) {
    total += node->page_heap.stats().TotalReleased();
  }
  return total;
}

std::vector<uint64_t> BackgroundReclaimer::SnapshotReturnedSpans() const {
  std::vector<uint64_t> counts;
  counts.reserve(allocator_->nodes_.size() *
                 static_cast<size_t>(allocator_->size_classes().num_classes()));
  for (const auto& node : allocator_->nodes_) {
    for (const auto& cfl : node->cfls) {
      counts.push_back(cfl->stats().returned_spans);
    }
  }
  return counts;
}

size_t BackgroundReclaimer::ReturnedSpanBytesSince(
    const std::vector<uint64_t>& before) const {
  const SizeClasses& classes = allocator_->size_classes();
  size_t bytes = 0;
  size_t i = 0;
  for (const auto& node : allocator_->nodes_) {
    for (int cls = 0; cls < classes.num_classes(); ++cls, ++i) {
      uint64_t delta = node->cfls[cls]->stats().returned_spans - before[i];
      bytes += static_cast<size_t>(delta) *
               LengthToBytes(classes.pages_per_span(cls));
    }
  }
  return bytes;
}

void BackgroundReclaimer::ContributeTelemetry(
    telemetry::MetricRegistry& registry) const {
  registry.ExportGauge("pressure", "soft_limit_bytes",
                       static_cast<double>(soft_limit_));
  registry.ExportGauge("pressure", "hard_limit_bytes",
                       static_cast<double>(hard_limit_));
}

}  // namespace wsc::tcmalloc
