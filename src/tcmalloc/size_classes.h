// Size-class table.
//
// Small allocations (<= 256 KiB) are rounded up to one of ~85 size classes
// (Section 2.1). Class spacing balances internal fragmentation (slack
// between the request and the class) against external fragmentation (more
// classes => more per-class free lists in every tier). Each class also fixes
// how many TCMalloc pages a span of that class occupies and therefore the
// span's object capacity — the quantity the lifetime-aware hugepage filler
// uses as its lifetime proxy (Section 4.4).

#ifndef WSC_TCMALLOC_SIZE_CLASSES_H_
#define WSC_TCMALLOC_SIZE_CLASSES_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tcmalloc/pages.h"

namespace wsc::tcmalloc {

// Description of one size class.
struct SizeClassInfo {
  size_t size = 0;            // object size in bytes
  Length pages_per_span = 1;  // span length for this class
  int objects_per_span = 0;   // span capacity
  int batch_size = 0;         // objects moved between tiers at a time
  // Maximum objects of this class one per-CPU cache may hold. Without a
  // per-class cap a single hot class hoards the whole cache and freed
  // objects never drain to the middle tier.
  int max_per_cpu_objects = 0;
};

// Immutable table of size classes; construct once and share.
class SizeClasses {
 public:
  // Builds the default table (8 B .. 256 KiB).
  SizeClasses();

  // Number of classes.
  int num_classes() const { return static_cast<int>(classes_.size()); }

  // Maps a request size to its class, or -1 if size > kMaxSmallSize
  // (such requests go straight to the page heap) or size == 0. Branch-free
  // apart from the single range check (size == 0 folds into it via
  // unsigned wrap): one flat-LUT load, no search. Rounding the request up
  // to its 8 B slot is exact because every class size is a multiple of 8,
  // so no class boundary falls strictly inside a slot.
  int ClassFor(size_t size) const {
    if (size - 1 >= kMaxSmallSize) return -1;
    return lut_[(size + 7) >> 3];
  }

  // Class metadata accessors.
  const SizeClassInfo& info(int cls) const { return classes_[cls]; }
  size_t class_size(int cls) const { return classes_[cls].size; }
  Length pages_per_span(int cls) const { return classes_[cls].pages_per_span; }
  int objects_per_span(int cls) const { return classes_[cls].objects_per_span; }
  int batch_size(int cls) const { return classes_[cls].batch_size; }

  // Shared default instance (never destroyed; trivially safe to use from
  // static context per the style guide's function-local-static pattern).
  static const SizeClasses& Default();

 private:
  std::vector<SizeClassInfo> classes_;
  // Dense lookup over the whole small range at 8 B granularity, indexed by
  // ceil(size / 8). 64 KiB of int16_t — small enough to stay cache-resident
  // under load, and the flat load keeps the real-threads fast path free of
  // the binary search the old >1024 B path paid.
  std::vector<int16_t> lut_;
};

}  // namespace wsc::tcmalloc

#endif  // WSC_TCMALLOC_SIZE_CLASSES_H_
