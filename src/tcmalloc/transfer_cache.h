// Middle-tier transfer cache (Section 4.2).
//
// The legacy transfer cache is a centralized, mutex-protected flat array of
// free objects per size class; it lets memory flow rapidly between CPUs
// (objects freed on one CPU are re-allocated on another). On chiplet (NUCA)
// platforms this moves objects across LLC domains, so the consumer pays
// remote-LLC latency (Fig. 11: 2.07x local). The NUCA-aware design shards
// the transfer cache per LLC domain: each shard serves only its domain and
// is backed by the retained centralized cache; shard contents that sit
// unused are periodically plundered back to the central cache to prevent
// stranding.

#ifndef WSC_TCMALLOC_TRANSFER_CACHE_H_
#define WSC_TCMALLOC_TRANSFER_CACHE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "tcmalloc/config.h"
#include "tcmalloc/size_classes.h"
#include "telemetry/registry.h"
#include "trace/flight_recorder.h"

namespace wsc::tcmalloc {

// Transfer-cache statistics.
struct TransferCacheStats {
  uint64_t shard_hits = 0;    // object obtained from the requester's shard
  uint64_t central_hits = 0;  // object obtained from the centralized cache
  uint64_t misses = 0;        // request fell through to the central free list
  uint64_t inserts_accepted = 0;
  uint64_t inserts_overflowed = 0;  // pushed down to the central free list
  uint64_t plundered_objects = 0;
};

// Centralized transfer cache, optionally fronted by per-LLC-domain shards.
class TransferCache {
 public:
  TransferCache(const SizeClasses* size_classes,
                const AllocatorConfig& config);

  // Removes up to `n` objects of class `cls` for a CPU in LLC domain
  // `domain`. Returns the number obtained; the caller fetches the remainder
  // from the central free list.
  int Remove(int domain, int cls, uintptr_t* out, int n);

  // Inserts `n` objects freed by a CPU in `domain`. Returns the number
  // accepted; the caller returns the remainder to the central free list.
  int Insert(int domain, int cls, const uintptr_t* objs, int n);

  // Moves objects that sat unused in NUCA shards since the previous call
  // back to the centralized cache (the paper's periodic release that
  // prevents stranding). No-op when NUCA shards are disabled.
  void Plunder();

  // Returns centralized-cache objects that sat untouched since the
  // previous call to `sink` (the central free list). Without this, cold
  // classes strand objects at the bottom of the LIFO array forever,
  // pinning their spans. `sink` is a templated callable `void(int cls,
  // const uintptr_t* objs, int n)` — this runs every plunder interval for
  // every process, so the callback must not go through std::function.
  template <typename Sink>
  void DrainCold(Sink&& sink);

  // Drains every cached object — NUCA shards and the centralized cache —
  // to `sink` (tier 2 of the background reclaimer's pressure cascade:
  // plunder the shards, then hand the whole tier to the central free lists
  // so empty spans can flow back to the page heap). Returns bytes drained.
  template <typename Sink>
  size_t DrainAll(Sink&& sink);

  // Total free bytes cached in this tier.
  size_t TotalCachedBytes() const;

  const TransferCacheStats& stats() const { return stats_; }

  bool nuca_enabled() const { return nuca_; }

  // Publishes this tier's metrics (component "transfer_cache") into
  // `registry`; NUMA-node instances accumulate into the same metrics.
  void ContributeTelemetry(telemetry::MetricRegistry& registry) const;

  // Attaches (or detaches, with nullptr) the flight recorder this tier
  // emits kTransferInsert/Remove/Plunder events into.
  void set_flight_recorder(trace::FlightRecorder* recorder) {
    trace_ = recorder;
  }

 private:
  // Per-size-class object stack with a fixed capacity and a low-water mark.
  struct ClassCache {
    std::vector<uintptr_t> objects;
    size_t capacity = 0;   // max objects
    size_t low_water = 0;  // min size since last Plunder()
  };

  int RemoveFrom(ClassCache& cache, uintptr_t* out, int n);
  int InsertInto(ClassCache& cache, const uintptr_t* objs, int n);

  const SizeClasses* size_classes_;
  bool nuca_;
  std::vector<ClassCache> central_;  // per class
  // shards_[domain][class]; populated lazily per active domain.
  std::vector<std::vector<ClassCache>> shards_;
  TransferCacheStats stats_;
  int shard_batches_;
  trace::FlightRecorder* trace_ = nullptr;
};

template <typename Sink>
void TransferCache::DrainCold(Sink&& sink) {
  for (int cls = 0; cls < size_classes_->num_classes(); ++cls) {
    ClassCache& c = central_[cls];
    size_t move = std::min(c.low_water, c.objects.size());
    if (move > 0) {
      // The coldest objects are at the bottom of the LIFO stack.
      sink(cls, c.objects.data(), static_cast<int>(move));
      c.objects.erase(c.objects.begin(),
                      c.objects.begin() + static_cast<long>(move));
      stats_.plundered_objects += move;
    }
    c.low_water = c.objects.size();
  }
}

template <typename Sink>
size_t TransferCache::DrainAll(Sink&& sink) {
  size_t bytes = 0;
  auto drain = [&](int cls, ClassCache& c) {
    if (!c.objects.empty()) {
      sink(cls, c.objects.data(), static_cast<int>(c.objects.size()));
      bytes += size_classes_->class_size(cls) * c.objects.size();
      c.objects.clear();
    }
    c.low_water = 0;
  };
  for (auto& shard : shards_) {
    if (shard.empty()) continue;
    for (int cls = 0; cls < size_classes_->num_classes(); ++cls) {
      drain(cls, shard[cls]);
    }
  }
  for (int cls = 0; cls < size_classes_->num_classes(); ++cls) {
    drain(cls, central_[cls]);
  }
  return bytes;
}

}  // namespace wsc::tcmalloc

#endif  // WSC_TCMALLOC_TRANSFER_CACHE_H_
