// The backend seam: where allocator bookkeeping meets address space.
//
// Every tier above SystemAllocator hands out page/hugepage *indices*; this
// interface decides what those indices mean. VirtualArenaBacking keeps the
// deterministic simulation contract — addresses are bump-allocated from a
// fixed base and never dereferenced, so results are bit-identical for any
// thread count. RealMemoryBacking reserves one contiguous anonymous mapping
// and the same indices become real, dereferenceable memory: freelists can
// thread through object storage, Release() becomes madvise(MADV_DONTNEED),
// and hugepage hints become MADV_HUGEPAGE.
//
// Both backings share the bump-allocation discipline and the released-range
// bookkeeping, so the tiers above cannot tell them apart except through
// kind() — that is what keeps the virtual mode bit-identical across the
// refactor.

#ifndef WSC_TCMALLOC_MEMORY_BACKING_H_
#define WSC_TCMALLOC_MEMORY_BACKING_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>

#include "tcmalloc/pages.h"

namespace wsc::tcmalloc {

enum class BackendKind {
  kVirtualArena,  // deterministic metadata-only simulation (default)
  kRealMemory,    // mmap-backed, dereferenceable, madvise release
};

const char* BackendKindName(BackendKind kind);

struct MemoryBackingStats {
  uint64_t map_calls = 0;        // successful MapHugePages calls
  uint64_t mapped_bytes = 0;     // cumulative bytes handed out
  uint64_t release_calls = 0;
  uint64_t released_bytes = 0;   // cumulative bytes *newly* released
  uint64_t commit_calls = 0;
  uint64_t recommitted_bytes = 0;
};

// Tracks which byte ranges of the reservation are currently released to
// the OS, so Release() can report only *newly* returned bytes (releasing
// an already-released range is a no-op, not double credit) and Commit()
// can clear the marks when memory is reused. Interval-coalescing map,
// byte-granular; callers align to page boundaries.
class ReleasedRangeSet {
 public:
  // Marks [addr, addr+bytes) released; returns bytes not already released.
  size_t Add(uintptr_t addr, size_t bytes);
  // Clears released marks overlapping [addr, addr+bytes); returns bytes
  // that had been released (and are now considered committed again).
  size_t Remove(uintptr_t addr, size_t bytes);
  size_t total_bytes() const { return total_bytes_; }

 private:
  std::map<uintptr_t, uintptr_t> runs_;  // start -> end (exclusive)
  size_t total_bytes_ = 0;
};

class MemoryBacking {
 public:
  virtual ~MemoryBacking() = default;

  virtual BackendKind kind() const = 0;

  // Maps `n` contiguous hugepages (2 MiB-aligned by construction: the
  // reservation base is hugepage-aligned and growth is hugepage-granular).
  // Returns the address, or 0 when the reservation is exhausted.
  virtual uintptr_t MapHugePages(int n) = 0;

  // Returns [addr, addr+bytes) to the OS (madvise(MADV_DONTNEED) for real
  // memory; pure bookkeeping for the virtual arena). Returns the number of
  // bytes *newly* released — re-releasing an already-released range counts
  // zero, which is what makes ReleaseMemoryToSystem honest.
  virtual size_t Release(uintptr_t addr, size_t bytes) = 0;

  // Declares [addr, addr+bytes) in use again after a Release. Real memory
  // refaults on first touch, so this only clears the released marks.
  virtual void Commit(uintptr_t addr, size_t bytes) = 0;

  uintptr_t base() const { return base_; }
  size_t reserved_bytes() const { return reserved_bytes_; }
  uintptr_t end() const { return base_ + reserved_bytes_; }
  const MemoryBackingStats& stats() const { return stats_; }

 protected:
  uintptr_t base_ = 0;
  size_t reserved_bytes_ = 0;
  MemoryBackingStats stats_;
};

// The deterministic simulation arena: a bump pointer over [base,
// base+bytes) that is never dereferenced. Behavior (growth order, failure
// points, stats) is exactly the pre-refactor SystemAllocator arithmetic.
class VirtualArenaBacking final : public MemoryBacking {
 public:
  // `base` and `bytes` must be hugepage-aligned and nonzero.
  VirtualArenaBacking(uintptr_t base, size_t bytes);

  BackendKind kind() const override { return BackendKind::kVirtualArena; }
  uintptr_t MapHugePages(int n) override;
  size_t Release(uintptr_t addr, size_t bytes) override;
  void Commit(uintptr_t addr, size_t bytes) override;

 private:
  uintptr_t next_;
  ReleasedRangeSet released_;
};

// Real memory: one contiguous PROT_READ|PROT_WRITE anonymous
// MAP_NORESERVE reservation, hinted MADV_HUGEPAGE, bump-allocated with the
// same discipline as the virtual arena. Pages are committed by the kernel
// on first touch; Release() is madvise(MADV_DONTNEED). Thread-safe for
// Release/Commit (the real-threads allocator calls them concurrently);
// MapHugePages is serialized by the caller (SystemAllocator runs under the
// page-heap path, which is single-threaded per node in simulation).
class RealMemoryBacking final : public MemoryBacking {
 public:
  // Reserves `reserve_bytes` (rounded up to a hugepage), walking a
  // fallback ladder of halved sizes down to kMinReserveBytes if the mmap
  // is refused. ok() is false only if even the smallest rung failed.
  explicit RealMemoryBacking(size_t reserve_bytes);
  ~RealMemoryBacking() override;

  RealMemoryBacking(const RealMemoryBacking&) = delete;
  RealMemoryBacking& operator=(const RealMemoryBacking&) = delete;

  bool ok() const { return base_ != 0; }

  BackendKind kind() const override { return BackendKind::kRealMemory; }
  uintptr_t MapHugePages(int n) override;
  size_t Release(uintptr_t addr, size_t bytes) override;
  void Commit(uintptr_t addr, size_t bytes) override;

  // Plain anonymous RW mapping for allocator metadata (page directory,
  // bootstrap spill) that must not come from the object heap. Returns 0 on
  // failure. Unmap with UnmapMetadata.
  static uintptr_t MapMetadata(size_t bytes);
  static void UnmapMetadata(uintptr_t addr, size_t bytes);

  // fork() support: hold mu_ across the fork so the child's copy is not
  // left locked by a vanished thread (see RealThreadsAllocator::
  // ForkPrepare).
  void ForkLock() { mu_.lock(); }
  void ForkUnlock() { mu_.unlock(); }

  static constexpr size_t kMinReserveBytes = size_t{1} << 30;  // 1 GiB

 private:
  // Raw mapping before hugepage alignment trim (for munmap).
  uintptr_t raw_base_ = 0;
  size_t raw_bytes_ = 0;
  uintptr_t next_ = 0;
  // Guards released_ and stats_ against concurrent Release/Commit from
  // real threads. Uncontended in simulation.
  mutable std::mutex mu_;
  ReleasedRangeSet released_;
};

}  // namespace wsc::tcmalloc

#endif  // WSC_TCMALLOC_MEMORY_BACKING_H_
