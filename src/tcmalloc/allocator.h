// Allocator facade: the public malloc/free-style API tying together the
// TCMalloc cache hierarchy (Fig. 1).
//
//   front-end:  per-CPU caches            (per_cpu_cache.h)
//   middle:     transfer cache            (transfer_cache.h)
//               central free lists        (central_free_list.h)
//   back-end:   hugepage-aware page heap  (page_heap.h)
//
// Small requests (<= 256 KiB) are rounded to a size class and served from
// the hierarchy; larger requests go straight to the page heap. Every
// operation is charged simulated nanoseconds from the calibrated cost model
// (Fig. 4), accumulated per tier so the Fig. 6a cycle breakdown is
// emergent. The allocator manages a virtual arena: returned values are
// addresses in a reserved numeric address space, and all object state lives
// in allocator metadata (spans, bitmaps, pagemap).
//
// NUMA mode (Section 5): when `numa_aware` is set, the middle tier and the
// page allocator are duplicated per NUMA node — exactly TCMalloc's NUMA
// support — with the arena split into one slice per node, so allocations
// made on a node always return node-local memory and frees route back to
// the owning node's hierarchy. The per-CPU front end stays shared (as in
// TCMalloc, whose per-CPU caches are naturally node-local because threads
// rarely migrate across nodes).

#ifndef WSC_TCMALLOC_ALLOCATOR_H_
#define WSC_TCMALLOC_ALLOCATOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/flat_map.h"
#include "common/histogram.h"
#include "common/sim_clock.h"
#include "tcmalloc/background.h"
#include "tcmalloc/central_free_list.h"
#include "tcmalloc/config.h"
#include "tcmalloc/fault_injection.h"
#include "tcmalloc/page_heap.h"
#include "tcmalloc/pagemap.h"
#include "tcmalloc/per_cpu_cache.h"
#include "tcmalloc/sampler.h"
#include "tcmalloc/size_classes.h"
#include "tcmalloc/system_alloc.h"
#include "tcmalloc/transfer_cache.h"
#include "telemetry/registry.h"
#include "trace/flight_recorder.h"
#include "trace/heap_profile.h"

namespace wsc::tcmalloc {

// Simulated malloc-cycle accounting per code path (Fig. 6a).
struct MallocCycleBreakdown {
  double cpu_cache_ns = 0;
  double transfer_cache_ns = 0;
  double central_free_list_ns = 0;
  double page_heap_ns = 0;
  double mmap_ns = 0;
  double sampled_ns = 0;
  double prefetch_ns = 0;
  double other_ns = 0;

  double Total() const {
    return cpu_cache_ns + transfer_cache_ns + central_free_list_ns +
           page_heap_ns + mmap_ns + sampled_ns + prefetch_ns + other_ns;
  }
};

// Which tier ultimately satisfied an operation (Fig. 4 tiers).
struct TierHitCounts {
  uint64_t cpu_cache = 0;
  uint64_t transfer_cache = 0;
  uint64_t central_free_list = 0;
  uint64_t page_heap = 0;
  uint64_t mmap = 0;
};

// Heap accounting snapshot (Figs. 5b / 6b fragmentation).
struct HeapStats {
  size_t live_bytes = 0;        // size-class bytes held by the application
  size_t requested_bytes = 0;   // estimated live requested bytes
  size_t cpu_cache_free = 0;    // external fragmentation per tier:
  size_t transfer_cache_free = 0;
  size_t central_free_list_free = 0;
  size_t page_heap_free = 0;
  size_t released_bytes = 0;    // returned to the OS (not fragmentation)

  size_t ExternalFragmentation() const {
    return cpu_cache_free + transfer_cache_free + central_free_list_free +
           page_heap_free;
  }
  size_t InternalFragmentation() const {
    return live_bytes > requested_bytes ? live_bytes - requested_bytes : 0;
  }
  // Total heap footprint charged to the process (excludes released).
  size_t HeapBytes() const { return live_bytes + ExternalFragmentation(); }
  // Fragmentation ratio over live in-use memory, as defined in Section 3.
  double FragmentationRatio() const {
    if (live_bytes == 0) return 0.0;
    return static_cast<double>(ExternalFragmentation() +
                               InternalFragmentation()) /
           static_cast<double>(live_bytes);
  }
};

// One allocator instance == one simulated process.
class Allocator {
 public:
  explicit Allocator(const AllocatorConfig& config,
                     const SizeClasses* size_classes = &SizeClasses::Default());
  ~Allocator();

  Allocator(const Allocator&) = delete;
  Allocator& operator=(const Allocator&) = delete;

  // Allocates `size` bytes on virtual CPU `vcpu` at simulated time `now`.
  // Returns the object address, or 0 when the allocation fails as a
  // counted, surfaced failure: a hard memory limit would be exceeded (see
  // background.h), or injected mmap/hugepage faults denied arena growth
  // and one emergency reclaim could not recover (failure.alloc_failures).
  // Never 0 otherwise. Fatal on size == 0.
  // `callsite` is a synthetic callsite ID (the heap profiler's stand-in
  // for a stack trace; see RegisterCallsite); 0 leaves the allocation
  // unattributed at zero cost.
  uintptr_t Allocate(size_t size, int vcpu, SimTime now,
                     uint64_t callsite = 0);

  // Frees an address previously returned by Allocate. Fatal on wild or
  // double frees (span bookkeeping catches both) — except double frees of
  // guarded (sampled) objects under config.guarded_sampling, which are
  // detected, reported under the "failure" component with the allocating
  // callsite, and otherwise ignored. `callsite` must match the allocating
  // call's (the workload driver stores it per object).
  void Free(uintptr_t addr, int vcpu, SimTime now, uint64_t callsite = 0);

  // Models a memory access at `addr + offset` for guard checking (the
  // workload driver probes here when injecting use-after-free / overrun
  // bugs). Returns true when a guarded-sampling canary caught a bug: a
  // tombstoned guard address (use-after-free) or an offset past the
  // requested size of a live guard (buffer overrun). Without guarded
  // sampling (or on unguarded addresses) always false — the bug goes
  // undetected, exactly like an unsampled allocation under GWP-ASan.
  bool ProbeAccess(uintptr_t addr, size_t offset, int vcpu, SimTime now);

  // Simulated nanoseconds charged to the most recent Allocate/Free.
  double last_op_ns() const { return last_op_ns_; }

  // Background maintenance (the production background thread): per-CPU
  // cache resizing, NUCA shard plundering, page-heap release. Driven by
  // the workload driver's clock.
  void Maintain(SimTime now);

  // Updates the vCPU -> LLC domain mapping (the driver calls this as
  // threads are scheduled across domains).
  void SetVcpuDomain(int vcpu, int domain);
  int DomainOfVcpu(int vcpu) const { return vcpu_domain_[vcpu]; }

  // Updates the vCPU -> NUMA node mapping (no-op in single-node mode).
  void SetVcpuNode(int vcpu, int node);
  int NodeOfVcpu(int vcpu) const { return vcpu_node_[vcpu]; }

  // NUMA node owning an arena address.
  int NodeOfAddr(uintptr_t addr) const;

  int num_numa_nodes() const { return static_cast<int>(nodes_.size()); }

  // --- Introspection ---
  //
  // NOTE: outside src/tcmalloc/ these raw accessors (and the per-component
  // ones below) are DEPRECATED in favor of the MallocExtension facade
  // (malloc_extension.h) — the single sanctioned surface for benches,
  // tests, and the fleet layer. In-tree white-box tests may still reach
  // into components directly.
  HeapStats CollectStats() const;
  const MallocCycleBreakdown& cycle_breakdown() const { return cycles_; }
  const TierHitCounts& alloc_tier_hits() const { return alloc_hits_; }
  uint64_t num_allocations() const { return alloc_ops_->value(); }
  uint64_t num_frees() const { return free_ops_->value(); }

  // GWP-style telemetry: every tier publishes named metrics into this
  // process's registry; the returned snapshot carries all of them plus the
  // allocator-level aggregates. The fleet layer snapshots each process and
  // merges the results in machine-index order.
  telemetry::Snapshot TelemetrySnapshot();

  // --- Flight recorder (src/trace) ---
  //
  // Attaches (or detaches, with nullptr) the tier-event flight recorder,
  // propagating the pointer to every cache tier. With no recorder attached
  // every hook is a single null check — tracing disabled costs nothing on
  // the hot path.
  void SetFlightRecorder(trace::FlightRecorder* recorder);
  trace::FlightRecorder* flight_recorder() const { return trace_; }

  // --- Fault injection (fault_injection.h) ---
  //
  // Attaches (or detaches, with nullptr) the deterministic fault injector,
  // propagating it to every NUMA node's system allocator. The injector
  // fails mmap-style arena growth and denies THP backing at planned call
  // indices; every tier above degrades gracefully and the recoveries are
  // published under the "failure" telemetry component.
  void SetFaultInjector(FaultInjector* injector);
  FaultInjector* fault_injector() const { return fault_injector_; }

  // --- Heap profiler ---
  //
  // Registers a human-readable name for a synthetic callsite ID (the
  // workload driver hashes "<workload>/<behavior>" into IDs and registers
  // them here once, at startup).
  void RegisterCallsite(uint64_t id, std::string_view name);

  // Builds the pprof-style heap profile: exact per-callsite live/peak/
  // cumulative bytes, sampled lifetime aggregates, the size x lifetime
  // table, and fragmented-hugepage attribution via live sampled objects.
  trace::HeapProfile CollectHeapProfile() const;

  // Records one sim-interval footprint observation into the live
  // "allocator/heap_sample_bytes" histogram (called by the machine model
  // at its footprint-sampling boundaries).
  void RecordHeapSample(const HeapStats& heap);

  // Object-size distributions across all allocations (Fig. 7): by count
  // and by bytes.
  const LogHistogram& alloc_count_hist() const { return alloc_count_hist_; }
  const LogHistogram& alloc_bytes_hist() const { return alloc_bytes_hist_; }

  // Exact process footprint charged against memory limits: live bytes plus
  // every tier's cached/free bytes (HeapStats::HeapBytes without the
  // requested-size estimation). O(#vcpus + #classes + #hugepages).
  size_t FootprintBytes() const;

  // The memory-pressure control plane (limits, reclaim cascade).
  BackgroundReclaimer& reclaimer() { return *reclaimer_; }
  const BackgroundReclaimer& reclaimer() const { return *reclaimer_; }

  const SizeClasses& size_classes() const { return *size_classes_; }
  const AllocatorConfig& config() const { return config_; }

  // Which memory backing this allocator runs on (virtual arena by
  // default; real memory via Builder::WithRealMemory()).
  BackendKind backend_kind() const { return nodes_[0]->system.kind(); }

  CpuCacheSet& cpu_caches() { return cpu_caches_; }
  const CpuCacheSet& cpu_caches() const { return cpu_caches_; }

  // Per-node component accessors (node defaults to 0, which is the only
  // node unless NUMA mode is on).
  TransferCache& transfer_cache(int node = 0) {
    return nodes_[node]->transfer_cache;
  }
  const TransferCache& transfer_cache(int node = 0) const {
    return nodes_[node]->transfer_cache;
  }
  CentralFreeList& central_free_list(int cls, int node = 0) {
    return *nodes_[node]->cfls[cls];
  }
  const CentralFreeList& central_free_list(int cls, int node = 0) const {
    return *nodes_[node]->cfls[cls];
  }
  PageHeap& page_heap(int node = 0) { return nodes_[node]->page_heap; }
  const PageHeap& page_heap(int node = 0) const {
    return nodes_[node]->page_heap;
  }
  const PageMap& pagemap() const { return pagemap_; }
  Sampler& sampler() { return sampler_; }
  const Sampler& sampler() const { return sampler_; }

  // Aggregated system stats across all nodes' arenas.
  SystemStats system_stats() const;

  // Aggregated page-heap stats across nodes (Fig. 15).
  PageHeapStats page_heap_stats() const;

  // True if the (live) address is backed by an intact transparent
  // hugepage, whichever node owns it.
  bool IsHugepageBacked(uintptr_t addr) const;

  // In-use-byte-weighted hugepage coverage across nodes (Fig. 17a).
  double HugepageCoverage() const;

  // True when `addr` is live from the application's perspective.
  bool IsLiveObject(uintptr_t addr) const;

 private:
  // The reclaim actor walks the tiers directly (it is part of the
  // allocator's own control plane, not an external client).
  friend class BackgroundReclaimer;

  // One per-NUMA-node middle/back end: its own arena slice, page heap,
  // central free lists, and transfer cache.
  struct NodeBackend {
    // `real_backing` non-null switches the node's SystemAllocator onto the
    // shared real-memory reservation instead of a virtual arena slice.
    NodeBackend(const AllocatorConfig& config,
                const SizeClasses* size_classes, uintptr_t base,
                size_t bytes, PageMap* pagemap,
                MemoryBacking* real_backing);

    SystemAllocator system;
    PageHeap page_heap;
    std::vector<std::unique_ptr<CentralFreeList>> cfls;
    TransferCache transfer_cache;
  };

  // Moves one object of class `cls` into the caller after an underflow,
  // refilling the vCPU cache from node `node`'s middle tier.
  uintptr_t SlowPathAllocate(int cls, int vcpu, int node);

  // Pushes overflow objects down to the transfer cache / central free list
  // of each object's owning node.
  void SlowPathFree(int cls, int vcpu, uintptr_t obj);

  // Returns objects to the CFLs of their owning spans (per-object node
  // routing).
  void ReturnToCfl(int cls, const uintptr_t* objs, int n);

  double MmapNsTotal() const;

  // Declared (and thus initialized) before config_: with
  // config.real_memory set, the reservation is created first and config_'s
  // arena_base/arena_bytes are rewritten to the kernel-chosen range, so
  // everything downstream (pagemap_, node slices, NodeOfAddr) sees the
  // real addresses. Null in virtual-arena mode.
  std::unique_ptr<MemoryBacking> real_backing_;
  AllocatorConfig config_;
  const SizeClasses* size_classes_;

  PageMap pagemap_;
  std::vector<std::unique_ptr<NodeBackend>> nodes_;
  size_t node_arena_bytes_ = 0;
  CpuCacheSet cpu_caches_;
  Sampler sampler_;

  std::vector<int> vcpu_domain_;
  std::vector<int> vcpu_node_;

  // Live accounting. Internal fragmentation is estimated statistically:
  // exact per-object requested sizes are not stored (that would double the
  // metadata); instead each class tracks its cumulative average slack, and
  // live requested bytes = live class bytes - live_count * avg_slack.
  std::vector<int64_t> live_objects_per_class_;
  std::vector<double> cumulative_requested_per_class_;
  std::vector<uint64_t> cumulative_allocs_per_class_;
  size_t live_bytes_ = 0;
  size_t large_live_bytes_ = 0;
  double large_live_requested_ = 0;
  // Live large objects by start address: the span plus its exact requested
  // size (there are few large objects, so exact tracking is cheap;
  // per-class averages would be badly biased when small churning
  // large-spans coexist with huge permanent ones). One flat open-addressing
  // probe on the large-object free path instead of two node-based lookups.
  struct LargeObject {
    Span* span = nullptr;
    size_t requested = 0;
  };
  FlatPtrMap<LargeObject> large_objects_;

  MallocCycleBreakdown cycles_;
  TierHitCounts alloc_hits_;

  // Exact per-callsite accounting (the non-sampled dimensions of the heap
  // profile). Only updated for tagged allocations (callsite != 0), so
  // untagged callers skip the map entirely.
  struct CallsiteStats {
    std::string name;
    uint64_t allocs = 0;
    uint64_t frees = 0;
    uint64_t live_bytes = 0;
    uint64_t peak_live_bytes = 0;  // this callsite's own high-water mark
    uint64_t cum_bytes = 0;
  };
  std::map<uint64_t, CallsiteStats> callsites_;

  // Null unless a trace is being recorded; every tier shares this pointer.
  trace::FlightRecorder* trace_ = nullptr;

  // Metric registry plus the hot-path handles registered into it. The
  // allocation/free counts live directly in the registry (single-writer
  // `+=` through the handle), replacing bespoke counter members.
  telemetry::MetricRegistry registry_;
  telemetry::Counter* alloc_ops_;
  telemetry::Counter* free_ops_;
  telemetry::FixedHistogram* heap_sample_hist_;

  // "failure" component live handles, registered at construction so the
  // component appears in every snapshot (fault-free runs assert the
  // zeros). Tier-side denial counts join them at snapshot time.
  telemetry::Counter* fail_alloc_failures_;
  telemetry::Counter* fail_emergency_recoveries_;
  telemetry::Counter* fail_recovered_allocations_;
  telemetry::Counter* fail_partial_batches_;
  telemetry::Counter* fail_guard_double_frees_;
  telemetry::Counter* fail_guard_use_after_frees_;
  telemetry::Counter* fail_guard_overruns_;

  // Null unless the fleet layer planned faults for this process; shared by
  // every node's system allocator.
  FaultInjector* fault_injector_ = nullptr;

  double last_op_ns_ = 0;

  LogHistogram alloc_count_hist_;
  LogHistogram alloc_bytes_hist_;

  SimTime last_resize_ = 0;
  SimTime last_plunder_ = 0;
  SimTime last_release_ = 0;

  // Constructed last in the ctor (it registers telemetry and reads config).
  std::unique_ptr<BackgroundReclaimer> reclaimer_;

  // Scratch batch buffer (max batch size).
  std::vector<uintptr_t> batch_;
};

}  // namespace wsc::tcmalloc

#endif  // WSC_TCMALLOC_ALLOCATOR_H_
