#include "workload/driver.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/logging.h"
#include "profiler/self_profiler.h"
#include "trace/heap_profile.h"

namespace wsc::workload {

namespace {

// Working-set reservoir sizes: touches sample from recently allocated
// objects, so the touched footprint spans far more pages than any TLB
// covers (the fleet's dTLB pressure). Per-vCPU reservoirs carry the
// thread-local working set; the global reservoir carries shared state.
constexpr size_t kVcpuRingSize = 4096;
constexpr size_t kGlobalRingSize = 16384;
// Fraction of reuse touches that go to the executing thread's own data.
constexpr double kLocalTouchFraction = 0.8;
constexpr SimTime kThreadUpdatePeriod = Seconds(1);
constexpr SimTime kMaintainPeriod = Seconds(1);

MixtureDistribution BuildMix(const WorkloadSpec& spec) {
  WSC_CHECK(!spec.behaviors.empty());
  std::vector<MixtureDistribution::Component> components;
  for (const Behavior& b : spec.behaviors) {
    WSC_CHECK(b.size_bytes != nullptr);
    WSC_CHECK(b.lifetime_ns != nullptr);
    components.push_back({b.weight, b.size_bytes});
  }
  return MixtureDistribution(std::move(components));
}

}  // namespace

Driver::Driver(const WorkloadSpec& spec, tcmalloc::Allocator* allocator,
               const hw::CpuTopology* topology, std::vector<int> cpus,
               hw::LlcModel* llc, hw::TlbSimulator* tlb, uint64_t seed,
               SimTime start_time)
    : spec_(spec),
      allocator_(allocator),
      topology_(topology),
      cpus_(std::move(cpus)),
      llc_(llc),
      tlb_(tlb),
      rng_(seed),
      behavior_mix_(BuildMix(spec)) {
  WSC_CHECK(allocator != nullptr);
  WSC_CHECK(!cpus_.empty());
  if (start_time > 0) {
    // Deploy-restarted replacement: the whole local timeline (startup
    // allocations included) begins at the restart instant.
    clock_.AdvanceTo(start_time);
    last_thread_update_ = start_time;
    last_maintain_ = start_time;
  }
  recent_per_vcpu_.resize(allocator_->config().num_vcpus);
  recent_global_.reserve(kGlobalRingSize);
  thread_phase_ = rng_.UniformDouble() * 2.0 * M_PI;
  active_threads_ = std::max(1, spec_.min_threads);

  // Register one synthetic callsite per behavior (the stand-in for a stack
  // trace) so the heap profiler can attribute by name.
  behavior_callsites_.reserve(spec_.behaviors.size());
  for (size_t i = 0; i < spec_.behaviors.size(); ++i) {
    std::string name = spec_.name + "/behavior" + std::to_string(i);
    uint64_t id = trace::CallsiteId(name);
    behavior_callsites_.push_back(id);
    allocator_->RegisterCallsite(id, name);
  }
  {
    std::string name = spec_.name + "/startup";
    startup_callsite_ = trace::CallsiteId(name);
    allocator_->RegisterCallsite(startup_callsite_, name);
  }

  // Startup allocations: long-lived state (caches, tables, model weights)
  // that pins spans and hugepages for the whole run.
  if (spec_.startup_bytes > 0) {
    WSC_CHECK(spec_.startup_object_size != nullptr);
    double allocated = 0;
    int vcpu = 0;
    int num_vcpus = allocator_->config().num_vcpus;
    while (allocated < spec_.startup_bytes) {
      double raw = spec_.startup_object_size->Sample(rng_);
      size_t size = static_cast<size_t>(std::max(8.0, raw));
      uintptr_t addr =
          allocator_->Allocate(size, vcpu, clock_.now(), startup_callsite_);
      vcpu = (vcpu + 1) % num_vcpus;
      if (addr == 0) {
        // Hard-limit refusal: count it and keep making progress toward the
        // startup target (otherwise the loop would spin forever).
        ++metrics_.failed_allocations;
        allocated += static_cast<double>(size);
        continue;
      }
      live_.push(LiveObject{Days(365), addr, static_cast<uint32_t>(size),
                            startup_callsite_});
      live_bytes_ += size;
      allocated += static_cast<double>(size);
      ++metrics_.allocations;
      // Startup state is part of the shared working set.
      ReservoirAdd(recent_global_, kGlobalRingSize, addr,
                   static_cast<uint32_t>(size));
    }
  }
}

void Driver::UpdateThreads() {
  SimTime now = clock_.now();
  if (now - last_thread_update_ < kThreadUpdatePeriod) return;
  last_thread_update_ = now;
  double t = static_cast<double>(now) /
             static_cast<double>(std::max<SimTime>(spec_.thread_period, 1));
  double load = 0.5 + 0.5 * std::sin(2.0 * M_PI * t + thread_phase_);
  load *= 1.0 + spec_.thread_noise * (2.0 * rng_.UniformDouble() - 1.0);
  if (rng_.Bernoulli(spec_.spike_probability)) load = 1.0;
  // Scenario modulation scales the organic curve; the branch keeps the
  // phase-free floating-point path bit-identical.
  if (load_multiplier_ != 1.0) load *= load_multiplier_;
  load = std::clamp(load, 0.0, 1.0);
  int range = spec_.max_threads - spec_.min_threads;
  active_threads_ = spec_.min_threads +
                    static_cast<int>(std::lround(load * range));
  active_threads_ = std::clamp(active_threads_, std::max(1, spec_.min_threads),
                               std::max(1, spec_.max_threads));
}

double Driver::Touch(uintptr_t addr, size_t object_size, int lines, int cpu) {
  WSC_PROF_SCOPE("driver/Touch");
  double stall_ns = 0.0;
  size_t max_lines = object_size / 64 + 1;
  lines = static_cast<int>(std::min<size_t>(lines, max_lines));
  double ghz = topology_ != nullptr ? topology_->spec().ghz : 2.4;
  for (int i = 0; i < lines; ++i) {
    uintptr_t line_addr = addr + static_cast<uintptr_t>(i) * 64;
    if (tlb_ != nullptr) {
      bool huge = allocator_->IsHugepageBacked(line_addr);
      double cycles = tlb_->Access(line_addr, huge);
      double ns = cycles / ghz;
      stall_ns += ns;
      metrics_.tlb_stall_ns += ns;
    }
    if (llc_ != nullptr) {
      double ns = llc_->AccessNs(cpu, line_addr);
      stall_ns += ns;
      metrics_.llc_stall_ns += ns;
    }
  }
  return stall_ns;
}

double Driver::FreeDead(int vcpu) {
  WSC_PROF_SCOPE("driver/FreeDead");
  double ns = 0.0;
  SimTime now = clock_.now();
  while (!live_.empty() && live_.top().death <= now) {
    LiveObject obj = live_.top();
    live_.pop();
    allocator_->Free(obj.addr, vcpu, now, obj.callsite);
    ns += allocator_->last_op_ns();
    live_bytes_ -= obj.size;
    ++metrics_.frees;
  }
  return ns;
}

void Driver::UpdateLoadMultiplier() {
  if (spec_.load_phases.empty()) return;
  load_multiplier_ =
      LoadMultiplierAt(spec_.load_phases, clock_.now(), load_phase_hint_);
}

double Driver::FreeEpochObjects(std::vector<EpochObject>& objects, int vcpu) {
  double ns = 0.0;
  SimTime now = clock_.now();
  for (const EpochObject& obj : objects) {
    allocator_->Free(obj.addr, vcpu, now, obj.callsite);
    ns += allocator_->last_op_ns();
    live_bytes_ -= obj.size;
    --epoch_live_objects_;
    ++metrics_.frees;
  }
  objects.clear();
  return ns;
}

double Driver::CloseEpoch(int vcpu) {
  WSC_PROF_SCOPE("driver/CloseEpoch");
  double ns = 0.0;
  // Retire closed buckets whose lag has expired.
  size_t kept = 0;
  for (EpochBucket& bucket : epoch_closed_) {
    if (bucket.release_epoch <= epoch_index_) {
      ns += FreeEpochObjects(bucket.objects, vcpu);
    } else {
      epoch_closed_[kept++] = std::move(bucket);
    }
  }
  epoch_closed_.resize(kept);
  // Close the open bucket. kChurn alternates immediate churn (even
  // epochs: inference-step activations) with retained epochs (odd: replay
  // buffer / KV-cache state held for epoch_free_lag).
  int lag = spec_.epoch_free_lag;
  if (spec_.epoch_shape == EpochShape::kChurn && epoch_index_ % 2 == 0) {
    lag = 0;
  }
  if (lag <= 0) {
    ns += FreeEpochObjects(epoch_open_, vcpu);
  } else if (!epoch_open_.empty()) {
    epoch_closed_.push_back(EpochBucket{
        epoch_index_ + static_cast<uint64_t>(lag), std::move(epoch_open_)});
    epoch_open_.clear();
  }
  ++epoch_index_;
  ++metrics_.epochs_closed;
  return ns;
}

double Driver::Step() {
  WSC_PROF_SCOPE("driver/Step");
  UpdateLoadMultiplier();
  if (load_multiplier_ <= 0.0) {
    // Idled by the scenario (e.g. a zero-load antagonist): no requests,
    // no RNG draws, held memory stays put. The clock still advances so
    // the machine's event loop and allocator maintenance make progress.
    clock_.Advance(std::max<SimTime>(spec_.request_interval_ns,
                                     kThreadUpdatePeriod));
    if (clock_.now() - last_maintain_ >= kMaintainPeriod) {
      last_maintain_ = clock_.now();
      allocator_->Maintain(clock_.now());
    }
    return 0.0;
  }
  UpdateThreads();
  SimTime now = clock_.now();

  // Pick the executing thread; dense vCPU ids mean thread i uses vCPU i.
  int num_vcpus = allocator_->config().num_vcpus;
  int thread = static_cast<int>(rng_.UniformInt(active_threads_));
  int vcpu = thread % num_vcpus;
  int cpu = cpus_[static_cast<size_t>(vcpu) % cpus_.size()];
  if (topology_ != nullptr && allocator_->config().num_llc_domains > 1) {
    allocator_->SetVcpuDomain(vcpu, topology_->DomainOfCpu(cpu));
  }
  if (topology_ != nullptr && allocator_->num_numa_nodes() > 1) {
    allocator_->SetVcpuNode(
        vcpu, topology_->SocketOfCpu(cpu) % allocator_->num_numa_nodes());
  }

  double malloc_ns = 0.0;
  double stall_ns = 0.0;

  // Retire objects whose lifetime expired (possibly allocated by another
  // thread: memory flows between CPUs through the transfer cache).
  malloc_ns += FreeDead(vcpu);

  // Allocation burst for this request.
  int mean = static_cast<int>(spec_.allocs_per_request);
  int nallocs =
      1 + static_cast<int>(rng_.UniformInt(std::max(1, 2 * mean - 1)));
  for (int i = 0; i < nallocs; ++i) {
    size_t component = behavior_mix_.PickComponent(rng_);
    const Behavior& behavior = spec_.behaviors[component];
    double raw_size = behavior.size_bytes->Sample(rng_);
    size_t size = static_cast<size_t>(std::max(1.0, raw_size));
    double raw_life = behavior.lifetime_ns->Sample(rng_);
    SimTime death = now + static_cast<SimTime>(std::max(raw_life, 0.0));

    uint64_t callsite = behavior_callsites_[component];
    uintptr_t addr = allocator_->Allocate(size, vcpu, now, callsite);
    malloc_ns += allocator_->last_op_ns();
    if (addr == 0) {
      // Hard memory limit: the request sheds this allocation (production
      // would degrade or crash; we count and continue).
      ++metrics_.failed_allocations;
      continue;
    }
    ++metrics_.allocations;

    // Opt-in heap-bug injection, exercised only against guarded (sampled)
    // allocations so detection is deterministic and unguarded bookkeeping
    // is never corrupted. The RNG is consulted only when the spec enables
    // bugs, so bug-free runs keep their exact random streams.
    if (spec_.injects_bugs() && allocator_->sampler().IsGuarded(addr)) {
      double u = rng_.UniformDouble();
      double p_df = spec_.double_free_probability;
      double p_uaf = p_df + spec_.use_after_free_probability;
      double p_or = p_uaf + spec_.overrun_probability;
      if (u < p_df) {
        // Double free: the first Free is legitimate (and, being guarded,
        // leaves a tombstone); the second is the bug the guard catches.
        allocator_->Free(addr, vcpu, now, callsite);
        malloc_ns += allocator_->last_op_ns();
        ++metrics_.frees;
        allocator_->Free(addr, vcpu, now, callsite);
        malloc_ns += allocator_->last_op_ns();
        ++metrics_.injected_bugs;
        ++metrics_.detected_bugs;
        continue;
      }
      if (u < p_uaf) {
        // Use after free: free legitimately, then touch the dead object.
        allocator_->Free(addr, vcpu, now, callsite);
        malloc_ns += allocator_->last_op_ns();
        ++metrics_.frees;
        ++metrics_.injected_bugs;
        if (allocator_->ProbeAccess(addr, 0, vcpu, now)) {
          ++metrics_.detected_bugs;
        }
        continue;
      }
      if (u < p_or) {
        // Buffer overrun: touch one byte past the requested size. The
        // object stays live and dies normally later.
        ++metrics_.injected_bugs;
        if (allocator_->ProbeAccess(addr, size, vcpu, now)) {
          ++metrics_.detected_bugs;
        }
      }
    }

    // Epoch binding (temporal slabs): the RNG is consulted only for
    // epochal shapes, so kNone specs keep their exact random streams.
    if (spec_.epochal() && rng_.Bernoulli(spec_.epoch_bound_fraction)) {
      epoch_open_.push_back(
          EpochObject{addr, static_cast<uint32_t>(size), callsite});
      ++epoch_live_objects_;
      live_bytes_ += size;
    } else {
      live_.push(
          LiveObject{death, addr, static_cast<uint32_t>(size), callsite});
      live_bytes_ += size;
    }
    ReservoirAdd(recent_per_vcpu_[vcpu], kVcpuRingSize, addr,
                 static_cast<uint32_t>(size));
    if (rng_.Bernoulli(0.1)) {
      ReservoirAdd(recent_global_, kGlobalRingSize, addr,
                   static_cast<uint32_t>(size));
    }
    stall_ns += Touch(addr, size, spec_.touches_per_alloc, cpu);
  }

  // Working-set accesses: mostly into this thread's own recent data, with
  // a share into the process-global shared state.
  for (int i = 0; i < spec_.reuse_touches_per_request; ++i) {
    auto& own = recent_per_vcpu_[vcpu];
    bool use_own = !own.empty() && (recent_global_.empty() ||
                                    rng_.Bernoulli(kLocalTouchFraction));
    auto& ring = use_own ? own : recent_global_;
    if (ring.empty()) break;
    auto [addr, size] = ring[rng_.UniformInt(ring.size())];
    uintptr_t offset = 64 * rng_.UniformInt(size / 64 + 1);
    stall_ns += Touch(addr + offset, size - offset, 1, cpu);
  }

  // Request-epoch retirement rides the closing request's allocator time.
  if (spec_.epochal()) {
    ++epoch_requests_;
    if (epoch_requests_ >=
        static_cast<uint64_t>(std::max(1, spec_.epoch_close_requests))) {
      epoch_requests_ = 0;
      malloc_ns += CloseEpoch(vcpu);
    }
  }

  // Base application work with +-20% jitter.
  double work_ns =
      spec_.request_work_ns * (0.8 + 0.4 * rng_.UniformDouble());

  double service_ns = work_ns + malloc_ns + stall_ns;
  metrics_.base_work_ns += work_ns;
  metrics_.malloc_ns += malloc_ns;
  metrics_.cpu_ns += service_ns;
  ++metrics_.requests;

  // Wall-clock advance: active threads process requests concurrently, and
  // a thread that finishes before its request interval sits idle. Scenario
  // load multipliers shrink (or stretch) the think time; the branch keeps
  // the multiplier-free floating-point path bit-identical.
  double interval_ns = static_cast<double>(spec_.request_interval_ns);
  if (load_multiplier_ != 1.0) interval_ns /= load_multiplier_;
  double per_thread_ns = std::max(service_ns, interval_ns);
  clock_.Advance(static_cast<SimTime>(
      std::max(1.0, per_thread_ns / std::max(1, active_threads_))));

  if (clock_.now() - last_maintain_ >= kMaintainPeriod) {
    last_maintain_ = clock_.now();
    allocator_->Maintain(clock_.now());
  }
  return service_ns;
}

void Driver::ReservoirAdd(
    std::vector<std::pair<uintptr_t, uint32_t>>& reservoir, size_t cap,
    uintptr_t addr, uint32_t size) {
  if (reservoir.size() < cap) {
    reservoir.push_back({addr, size});
  } else {
    // Replace a random slot: the reservoir decays towards recent
    // allocations but spans a long window, approximating a live set.
    reservoir[rng_.UniformInt(cap)] = {addr, size};
  }
}

void Driver::RunUntil(SimTime until) {
  while (clock_.now() < until) Step();
}

void Driver::RunRequests(uint64_t n) {
  for (uint64_t i = 0; i < n; ++i) Step();
}

void Driver::Drain() {
  SimTime now = clock_.now();
  while (!live_.empty()) {
    LiveObject obj = live_.top();
    live_.pop();
    allocator_->Free(obj.addr, /*vcpu=*/0, now, obj.callsite);
    live_bytes_ -= obj.size;
    ++metrics_.frees;
  }
  // Flush request-epoch buckets (open and lagged) the same way.
  for (EpochBucket& bucket : epoch_closed_) {
    FreeEpochObjects(bucket.objects, /*vcpu=*/0);
  }
  epoch_closed_.clear();
  FreeEpochObjects(epoch_open_, /*vcpu=*/0);
  allocator_->sampler().FlushOutstanding(now);
}

}  // namespace wsc::workload
