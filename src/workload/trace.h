// Allocation traces: record/replay of alloc-free sequences.
//
// Used by tests and benches that need identical operation sequences across
// allocator configurations (e.g. comparing fragmentation of the baseline
// and the span-prioritized central free list on exactly the same behavior).

#ifndef WSC_WORKLOAD_TRACE_H_
#define WSC_WORKLOAD_TRACE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/sim_clock.h"
#include "tcmalloc/allocator.h"

namespace wsc::workload {

// One trace operation. Allocations carry a size; frees reference the
// i-th still-live allocation (in allocation order).
struct TraceOp {
  enum class Kind { kAlloc, kFree };
  Kind kind;
  uint64_t value;  // size for kAlloc; live-slot index for kFree
};

// An in-memory allocation trace.
class Trace {
 public:
  Trace() = default;

  void Alloc(size_t size) {
    ops_.push_back({TraceOp::Kind::kAlloc, size});
  }
  void Free(uint64_t live_index) {
    ops_.push_back({TraceOp::Kind::kFree, live_index});
  }

  size_t size() const { return ops_.size(); }
  const std::vector<TraceOp>& ops() const { return ops_; }

  // Generates a random but valid trace: `n` operations, allocation sizes
  // log-uniform in [8, max_size], ~balanced alloc/free with all remaining
  // objects freed at the end.
  static Trace GenerateRandom(size_t n, uint64_t seed, size_t max_size);

  // Replays the trace against an allocator on vCPU `vcpu`, advancing the
  // simulated clock by `step_ns` per op. Returns the peak live bytes
  // observed (requested sizes).
  size_t Replay(tcmalloc::Allocator& allocator, int vcpu = 0,
                SimTime step_ns = 100) const;

 private:
  std::vector<TraceOp> ops_;
};

}  // namespace wsc::workload

#endif  // WSC_WORKLOAD_TRACE_H_
