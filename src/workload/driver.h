// Discrete-event workload driver.
//
// Drives one simulated process (one WorkloadSpec against one Allocator) on
// a machine: issues requests from simulated threads scheduled onto dense
// virtual CPU ids (Section 4.1's vCPU model), allocates and frees objects
// with sampled sizes/lifetimes, touches memory through the dTLB and LLC
// models, and accounts CPU time so productivity metrics (throughput, CPI,
// malloc tax) can be computed. All randomness flows from one seeded Rng, so
// a (spec, seed, config) triple reproduces exactly.

#ifndef WSC_WORKLOAD_DRIVER_H_
#define WSC_WORKLOAD_DRIVER_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "common/rng.h"
#include "common/sim_clock.h"
#include "hw/llc_model.h"
#include "hw/tlb.h"
#include "hw/topology.h"
#include "tcmalloc/allocator.h"
#include "workload/workload.h"

namespace wsc::workload {

// Productivity metrics of one driver run (feeds the fleet A/B tables).
struct DriverMetrics {
  uint64_t requests = 0;
  uint64_t allocations = 0;
  uint64_t frees = 0;
  // Allocations refused by a hard memory limit or by unrecovered arena
  // growth denial (Allocate returned 0); surfaced failures, not counted in
  // `allocations`.
  uint64_t failed_allocations = 0;
  // Heap bugs deliberately injected by the driver (spec probabilities) and
  // the subset the allocator's guarded sampler caught. Injection targets
  // only guarded allocations, so with guarded sampling on these match.
  uint64_t injected_bugs = 0;
  uint64_t detected_bugs = 0;
  // Request epochs retired (0 unless the spec sets an epoch shape).
  uint64_t epochs_closed = 0;
  double cpu_ns = 0;        // total CPU time consumed
  double base_work_ns = 0;  // application compute share
  double malloc_ns = 0;     // allocator share
  double tlb_stall_ns = 0;
  double llc_stall_ns = 0;

  // Requests completed per CPU-second: the paper's application
  // productivity metric.
  double Throughput() const { return requests / (cpu_ns / 1e9); }
  // Fraction of CPU cycles spent in the allocator (Fig. 5a).
  double MallocCycleFraction() const {
    return cpu_ns > 0 ? malloc_ns / cpu_ns : 0.0;
  }
  // Cycles per instruction, with instructions proxied by base work at
  // IPC=1: stalls and allocator time raise CPI.
  double Cpi() const {
    return base_work_ns > 0 ? cpu_ns / base_work_ns : 0.0;
  }
  // Instruction count proxy for MPKI computations.
  uint64_t Instructions(double ghz) const {
    return static_cast<uint64_t>(base_work_ns * ghz);
  }
};

// Drives one workload against one allocator.
class Driver {
 public:
  // `cpus` lists the machine's logical CPUs this process may run on (the
  // control-plane CPU mask); thread i runs on vCPU i which is pinned to
  // cpus[i % cpus.size()]. `llc` and `tlb` may be null (no hardware
  // modeling; used by pure-allocator tests and benches).
  // `start_time` places the process's whole local timeline (startup
  // allocations included) at an absolute logical time — deploy-wave
  // restarts use it so a replacement process rejoins the machine's clock
  // instead of rewinding to zero.
  Driver(const WorkloadSpec& spec, tcmalloc::Allocator* allocator,
         const hw::CpuTopology* topology, std::vector<int> cpus,
         hw::LlcModel* llc, hw::TlbSimulator* tlb, uint64_t seed,
         SimTime start_time = 0);

  // Executes one request on some active thread and advances the local
  // clock. Returns the simulated service time in ns.
  double Step();

  // Runs until the local clock reaches `until`.
  void RunUntil(SimTime until);

  // Runs `n` requests.
  void RunRequests(uint64_t n);

  // Frees every outstanding object and flushes sampler state.
  void Drain();

  SimTime now() const { return clock_.now(); }
  const DriverMetrics& metrics() const { return metrics_; }
  void ResetMetrics() { metrics_ = DriverMetrics(); }

  int active_threads() const { return active_threads_; }
  uint64_t live_objects() const { return live_.size() + epoch_live_objects_; }
  size_t live_bytes() const { return live_bytes_; }
  // Load multiplier most recently applied by Step() (1.0 without phases).
  double load_multiplier() const { return load_multiplier_; }

  tcmalloc::Allocator* allocator() { return allocator_; }
  const WorkloadSpec& spec() const { return spec_; }

 private:
  struct LiveObject {
    SimTime death;
    uintptr_t addr;
    uint32_t size;
    uint64_t callsite;
    bool operator>(const LiveObject& o) const { return death > o.death; }
  };

  // An allocation bound to a request epoch (freed when the epoch retires,
  // not at a sampled death time).
  struct EpochObject {
    uintptr_t addr;
    uint32_t size;
    uint64_t callsite;
  };
  struct EpochBucket {
    uint64_t release_epoch;  // freed when this epoch index closes
    std::vector<EpochObject> objects;
  };

  // Updates the active thread count (diurnal curve + noise + spikes).
  void UpdateThreads();

  // Refreshes load_multiplier_ from spec_.load_phases (no-op when empty).
  void UpdateLoadMultiplier();

  // Frees objects whose death time has passed, from vCPU `vcpu`.
  double FreeDead(int vcpu);

  // Retires the open request epoch: frees every closed bucket whose lag
  // has expired, then closes (or immediately frees) the open bucket.
  // Returns allocator ns spent freeing.
  double CloseEpoch(int vcpu);

  // Frees one epoch bucket's objects from vCPU `vcpu`; returns allocator
  // ns.
  double FreeEpochObjects(std::vector<EpochObject>& objects, int vcpu);

  // Touches `lines` cache lines starting at `addr` from `cpu`; returns
  // stall ns.
  double Touch(uintptr_t addr, size_t object_size, int lines, int cpu);

  WorkloadSpec spec_;
  tcmalloc::Allocator* allocator_;
  const hw::CpuTopology* topology_;
  std::vector<int> cpus_;
  hw::LlcModel* llc_;
  hw::TlbSimulator* tlb_;
  Rng rng_;
  SimClock clock_;

  MixtureDistribution behavior_mix_;

  // Synthetic callsite IDs ("<workload>/behavior<i>", "<workload>/startup")
  // registered with the allocator so heap profiles attribute by name.
  std::vector<uint64_t> behavior_callsites_;
  uint64_t startup_callsite_ = 0;

  std::priority_queue<LiveObject, std::vector<LiveObject>,
                      std::greater<LiveObject>>
      live_;
  size_t live_bytes_ = 0;

  // Working-set reservoirs for reuse touches. Most touches go to the
  // executing vCPU's own recent allocations (request handlers touch what
  // they allocated — the locality premise behind the NUCA transfer cache);
  // a smaller share goes to a process-global reservoir (shared state).
  std::vector<std::vector<std::pair<uintptr_t, uint32_t>>> recent_per_vcpu_;
  std::vector<std::pair<uintptr_t, uint32_t>> recent_global_;

  // Inserts into a reservoir with random replacement once full.
  void ReservoirAdd(std::vector<std::pair<uintptr_t, uint32_t>>& reservoir,
                    size_t cap, uintptr_t addr, uint32_t size);

  int active_threads_ = 1;
  SimTime last_thread_update_ = 0;
  double thread_phase_;

  DriverMetrics metrics_;
  SimTime last_maintain_ = 0;

  // Scenario load modulation: cursor into spec_.load_phases plus the
  // multiplier currently in force. Both stay at their defaults (and cost
  // nothing) when the spec has no phases.
  size_t load_phase_hint_ = 0;
  double load_multiplier_ = 1.0;

  // Request-epoch state (unused for EpochShape::kNone).
  std::vector<EpochObject> epoch_open_;
  std::vector<EpochBucket> epoch_closed_;
  uint64_t epoch_requests_ = 0;
  uint64_t epoch_index_ = 0;
  size_t epoch_live_objects_ = 0;
};

}  // namespace wsc::workload

#endif  // WSC_WORKLOAD_DRIVER_H_
