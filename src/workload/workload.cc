#include "workload/workload.h"

namespace wsc::workload {

Behavior MakeBehavior(double weight, std::shared_ptr<const Distribution> size,
                      std::shared_ptr<const Distribution> lifetime) {
  Behavior b;
  b.weight = weight;
  b.size_bytes = std::move(size);
  b.lifetime_ns = std::move(lifetime);
  return b;
}

std::shared_ptr<const Distribution> SizeLognormal(double median_bytes,
                                                  double spread) {
  return std::make_shared<LognormalDistribution>(
      LognormalDistribution::FromMedian(median_bytes, spread));
}

std::shared_ptr<const Distribution> SizePoint(double bytes) {
  return std::make_shared<PointDistribution>(bytes);
}

std::shared_ptr<const Distribution> SizePareto(double scale, double alpha,
                                               double cap) {
  return std::make_shared<ParetoDistribution>(scale, alpha, cap);
}

std::shared_ptr<const Distribution> LifetimeLognormal(double median_ns,
                                                      double spread) {
  return std::make_shared<LognormalDistribution>(
      LognormalDistribution::FromMedian(median_ns, spread));
}

std::shared_ptr<const Distribution> LifetimePoint(double ns) {
  return std::make_shared<PointDistribution>(ns);
}

double LoadMultiplierAt(const std::vector<LoadPhase>& phases, SimTime t,
                        size_t& hint) {
  while (hint < phases.size() && phases[hint].end <= t) ++hint;
  if (hint < phases.size() && phases[hint].start <= t) {
    return phases[hint].multiplier;
  }
  return 1.0;
}

}  // namespace wsc::workload
