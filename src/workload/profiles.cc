#include "workload/profiles.h"

#include <algorithm>

#include "common/rng.h"

namespace wsc::workload {

// Calibration notes.
//
// All lifetime scales are compressed relative to the production fleet
// (seconds of simulation stand in for hours of production time) so that
// steady state is reached within runs of a few virtual minutes; the
// *relative* structure — small objects mostly short-lived, large objects
// long-lived, heavy tails in both dimensions — matches Figs. 7/8. Steady
// live-set sizes target 0.5-3 GiB per process:
//   live_bytes ~= alloc_rate * sum_i w_i * E[size_i] * E[lifetime_i].
// request_work_ns sets each workload's malloc tax (Fig. 5a ordering:
// f1-query and data-pipeline highest, monarch and spec-like lowest).

namespace {

// Effectively-forever lifetime (censored at drain time, like a production
// server profiled mid-life).
std::shared_ptr<const Distribution> Forever() {
  return LifetimePoint(static_cast<double>(Days(365)));
}

}  // namespace

WorkloadSpec SpannerProfile() {
  WorkloadSpec spec;
  spec.name = "spanner";
  spec.behaviors = {
      // RPC scratch and row decode buffers.
      MakeBehavior(0.70, SizeLognormal(64, 3.0),
                   LifetimeLognormal(Microseconds(300), 4.0)),
      // Same sizes, long lived (directory entries): within-class lifetime
      // diversity (Fig. 8) that pins spans and drives CFL fragmentation.
      MakeBehavior(0.03, SizeLognormal(64, 3.0),
                   LifetimeLognormal(Seconds(3), 3.0)),
      // Transaction / session state.
      MakeBehavior(0.18, SizeLognormal(4096, 2.0),
                   LifetimeLognormal(Milliseconds(400), 4.0)),
      MakeBehavior(0.02, SizeLognormal(4096, 2.0),
                   LifetimeLognormal(Seconds(5), 3.0)),
      // Storage block cache entries (adapts to provisioned memory).
      MakeBehavior(0.06, SizeLognormal(32 * 1024, 2.0),
                   LifetimeLognormal(Milliseconds(1500), 3.0)),
      // Large intermediate buffers.
      MakeBehavior(0.025, SizeLognormal(128 * 1024, 2.0),
                   LifetimeLognormal(Milliseconds(300), 3.0)),
      // Occasional very large allocations (compaction, snapshots).
      MakeBehavior(0.001,
                   SizePareto(1024.0 * 1024, 1.5, 16.0 * 1024 * 1024),
                   LifetimeLognormal(Milliseconds(200), 3.0)),
  };
  spec.allocs_per_request = 12;
  spec.request_work_ns = 4100;
  spec.request_interval_ns = Milliseconds(3);
  spec.touches_per_alloc = 2;
  spec.reuse_touches_per_request = 12;
  spec.min_threads = 8;
  spec.max_threads = 24;
  spec.thread_period = Seconds(6);
  spec.startup_bytes = 500e6;
  // Long-lived state is dominated by small objects (row index entries),
  // matching the fleet's capacity-lifetime correlation (Fig. 16).
  spec.startup_object_size = SizeLognormal(320, 2.5);
  return spec;
}

WorkloadSpec MonarchProfile() {
  WorkloadSpec spec;
  spec.name = "monarch";
  spec.behaviors = {
      // Query evaluation scratch.
      MakeBehavior(0.48, SizeLognormal(48, 2.5),
                   LifetimeLognormal(Microseconds(200), 4.0)),
      MakeBehavior(0.03, SizeLognormal(48, 2.5),
                   LifetimeLognormal(Seconds(4), 3.0)),
      // Stream data points held in memory (long lived) plus short-lived
      // decode copies of the same sizes (Fig. 8's within-class diversity).
      MakeBehavior(0.30, SizeLognormal(1024, 2.0),
                   LifetimeLognormal(Seconds(5), 4.0)),
      MakeBehavior(0.05, SizeLognormal(1024, 2.0),
                   LifetimeLognormal(Milliseconds(5), 4.0)),
      // Time-series blocks.
      MakeBehavior(0.06, SizeLognormal(16 * 1024, 2.0),
                   LifetimeLognormal(Seconds(8), 3.0)),
      // Large aggregation buffers.
      MakeBehavior(0.006, SizeLognormal(256 * 1024, 2.0),
                   LifetimeLognormal(Seconds(2), 3.0)),
  };
  spec.allocs_per_request = 8;
  spec.request_work_ns = 4900;
  spec.request_interval_ns = Milliseconds(4);
  spec.touches_per_alloc = 2;
  spec.reuse_touches_per_request = 16;
  spec.min_threads = 2;
  spec.max_threads = 16;
  spec.thread_period = Seconds(7);
  // Long-lived in-memory time-series index: many small pinned objects,
  // the driver of monarch's high fragmentation.
  spec.startup_bytes = 800e6;
  spec.startup_object_size = SizeLognormal(256, 2.0);
  return spec;
}

WorkloadSpec BigtableProfile() {
  WorkloadSpec spec;
  spec.name = "bigtable";
  spec.behaviors = {
      // RPC handling and key decode.
      MakeBehavior(0.82, SizeLognormal(256, 2.5),
                   LifetimeLognormal(Milliseconds(1), 4.0)),
      MakeBehavior(0.03, SizeLognormal(256, 2.5),
                   LifetimeLognormal(Seconds(3), 3.0)),
      // SSTable blocks served to clients; a slice stays pinned in the
      // block cache (within-class lifetime diversity).
      MakeBehavior(0.10, SizeLognormal(8 * 1024, 1.8),
                   LifetimeLognormal(Milliseconds(1500), 4.0)),
      MakeBehavior(0.02, SizeLognormal(8 * 1024, 1.8),
                   LifetimeLognormal(Seconds(8), 3.0)),
      // Compaction buffers.
      MakeBehavior(0.02, SizeLognormal(64 * 1024, 2.0),
                   LifetimeLognormal(Milliseconds(400), 3.0)),
      // Memtable chunks.
      MakeBehavior(0.001, SizeLognormal(1024 * 1024, 1.6),
                   LifetimeLognormal(Milliseconds(300), 2.0)),
  };
  spec.allocs_per_request = 14;
  spec.request_work_ns = 2800;
  spec.request_interval_ns = Microseconds(2500);
  spec.touches_per_alloc = 3;
  spec.reuse_touches_per_request = 10;
  spec.min_threads = 12;
  spec.max_threads = 32;
  spec.thread_period = Seconds(5);
  spec.startup_bytes = 400e6;
  spec.startup_object_size = SizeLognormal(384, 2.0);
  return spec;
}

WorkloadSpec F1QueryProfile() {
  WorkloadSpec spec;
  spec.name = "f1-query";
  spec.behaviors = {
      // Expression evaluation temporaries: tiny, extremely short lived.
      MakeBehavior(0.85, SizeLognormal(32, 3.0),
                   LifetimeLognormal(Microseconds(100), 4.0)),
      // Plan-cache entries of the same sizes, living across queries.
      MakeBehavior(0.03, SizeLognormal(32, 3.0),
                   LifetimeLognormal(Seconds(2), 3.0)),
      // Row batches flowing between operators.
      MakeBehavior(0.12, SizeLognormal(2048, 2.0),
                   LifetimeLognormal(Milliseconds(50), 4.0)),
      // Hash-join / sort buffers.
      MakeBehavior(0.004, SizeLognormal(128 * 1024, 2.0),
                   LifetimeLognormal(Milliseconds(300), 3.0)),
  };
  spec.allocs_per_request = 30;
  spec.request_work_ns = 2100;
  spec.request_interval_ns = Milliseconds(2);
  spec.touches_per_alloc = 1;
  spec.reuse_touches_per_request = 6;
  spec.min_threads = 4;
  spec.max_threads = 28;
  spec.thread_period = Seconds(5);
  spec.startup_bytes = 200e6;
  spec.startup_object_size = SizeLognormal(256, 2.0);
  return spec;
}

WorkloadSpec DiskProfile() {
  WorkloadSpec spec;
  spec.name = "disk";
  spec.behaviors = {
      // RPC metadata.
      MakeBehavior(0.86, SizeLognormal(128, 2.5),
                   LifetimeLognormal(Microseconds(500), 4.0)),
      // Open-file table entries of the same sizes (long lived).
      MakeBehavior(0.02, SizeLognormal(128, 2.5),
                   LifetimeLognormal(Seconds(3), 3.0)),
      // Read/write I/O buffers.
      MakeBehavior(0.09, SizeLognormal(64 * 1024, 1.6),
                   LifetimeLognormal(Milliseconds(400), 3.0)),
      // Larger striped buffers.
      MakeBehavior(0.012, SizeLognormal(512 * 1024, 1.5),
                   LifetimeLognormal(Milliseconds(500), 2.5)),
      // Full-chunk buffers.
      MakeBehavior(0.0008, SizeLognormal(4.0 * 1024 * 1024, 1.4),
                   LifetimeLognormal(Milliseconds(600), 2.0)),
  };
  spec.allocs_per_request = 10;
  spec.request_work_ns = 3700;
  spec.request_interval_ns = Milliseconds(2);
  spec.touches_per_alloc = 4;
  spec.reuse_touches_per_request = 8;
  spec.min_threads = 6;
  spec.max_threads = 16;
  spec.thread_period = Seconds(6);
  spec.startup_bytes = 150e6;
  spec.startup_object_size = SizeLognormal(512, 2.0);
  return spec;
}

WorkloadSpec RedisProfile() {
  WorkloadSpec spec;
  spec.name = "redis";
  spec.behaviors = {
      // 1000 B values (redis-benchmark -d 1000), overwritten/evicted on a
      // long horizon.
      MakeBehavior(0.80, SizeLognormal(1000, 1.2),
                   LifetimeLognormal(Seconds(3), 4.0)),
      // Small per-command scratch.
      MakeBehavior(0.18, SizeLognormal(64, 2.0),
                   LifetimeLognormal(Milliseconds(1), 3.0)),
      // Dict rehash chunks.
      MakeBehavior(0.02, SizeLognormal(16 * 1024, 2.0),
                   LifetimeLognormal(Seconds(5), 3.0)),
  };
  spec.allocs_per_request = 3;
  spec.request_work_ns = 1000;
  spec.request_interval_ns = Microseconds(100);
  spec.touches_per_alloc = 4;
  spec.reuse_touches_per_request = 6;
  spec.min_threads = 1;
  spec.max_threads = 1;  // Redis is single-threaded
  spec.startup_bytes = 300e6;
  spec.startup_object_size = SizeLognormal(320, 1.5);
  return spec;
}

WorkloadSpec DataPipelineProfile() {
  WorkloadSpec spec;
  spec.name = "data-pipeline";
  spec.behaviors = {
      // Word strings: tiny, immediately consumed.
      MakeBehavior(0.85, SizeLognormal(16, 1.8),
                   LifetimeLognormal(Microseconds(100), 3.0)),
      // Hash-table nodes of the running count (live until the end).
      MakeBehavior(0.10, SizeLognormal(64, 1.5),
                   LifetimeLognormal(Seconds(60), 2.0)),
      // Input chunks.
      MakeBehavior(0.05, SizeLognormal(256 * 1024, 1.5),
                   LifetimeLognormal(Milliseconds(50), 2.0)),
  };
  spec.allocs_per_request = 50;
  spec.request_work_ns = 5000;
  spec.request_interval_ns = Microseconds(1500);
  spec.touches_per_alloc = 1;
  spec.reuse_touches_per_request = 10;
  spec.min_threads = 2;
  spec.max_threads = 8;
  spec.thread_period = Seconds(7);
  spec.startup_bytes = 100e6;
  spec.startup_object_size = SizeLognormal(64, 1.5);
  return spec;
}

WorkloadSpec ImageProcessingProfile() {
  WorkloadSpec spec;
  spec.name = "image-processing";
  spec.behaviors = {
      // Request metadata and small headers.
      MakeBehavior(0.92, SizeLognormal(256, 2.5),
                   LifetimeLognormal(Milliseconds(1), 3.0)),
      // Tile buffers.
      MakeBehavior(0.06, SizeLognormal(128 * 1024, 1.8),
                   LifetimeLognormal(Milliseconds(300), 3.0)),
      // Whole-image buffers.
      MakeBehavior(0.02, SizeLognormal(1024 * 1024, 1.8),
                   LifetimeLognormal(Milliseconds(400), 2.5)),
  };
  spec.allocs_per_request = 8;
  spec.request_work_ns = 8500;
  spec.request_interval_ns = Milliseconds(4);
  spec.touches_per_alloc = 6;
  spec.reuse_touches_per_request = 12;
  spec.min_threads = 2;
  spec.max_threads = 12;
  spec.thread_period = Seconds(6);
  spec.startup_bytes = 200e6;
  spec.startup_object_size = SizeLognormal(256, 2.0);
  return spec;
}

WorkloadSpec TensorflowProfile() {
  WorkloadSpec spec;
  spec.name = "tensorflow";
  spec.behaviors = {
      // Tensor metadata / Eigen expression temporaries.
      MakeBehavior(0.85, SizeLognormal(96, 3.0),
                   LifetimeLognormal(Microseconds(500), 4.0)),
      // Small activations.
      MakeBehavior(0.10, SizeLognormal(16 * 1024, 2.5),
                   LifetimeLognormal(Milliseconds(60), 3.0)),
      // Layer activations.
      MakeBehavior(0.04, SizeLognormal(512 * 1024, 2.0),
                   LifetimeLognormal(Milliseconds(150), 2.0)),
      // Large per-batch activations.
      MakeBehavior(0.008, SizeLognormal(4.0 * 1024 * 1024, 1.5),
                   LifetimeLognormal(Milliseconds(120), 2.0)),
      // Rare arena growth for the session state, effectively permanent.
      MakeBehavior(0.0004, SizeLognormal(2.0 * 1024 * 1024, 1.4), Forever()),
  };
  spec.allocs_per_request = 20;
  spec.request_work_ns = 12000;
  spec.request_interval_ns = Milliseconds(5);
  spec.touches_per_alloc = 6;
  spec.reuse_touches_per_request = 16;
  spec.min_threads = 2;
  spec.max_threads = 16;
  spec.thread_period = Seconds(6);
  // Model weights: loaded once, live forever (the fleet's ">1 GiB objects
  // live >1 day" tail).
  spec.startup_bytes = 600e6;
  spec.startup_object_size = SizeLognormal(8.0 * 1024 * 1024, 1.4);
  return spec;
}

WorkloadSpec SpecLikeProfile() {
  WorkloadSpec spec;
  spec.name = "spec-like";
  spec.behaviors = {
      // Rare short-lived temporaries in steady state.
      MakeBehavior(0.95, SizeLognormal(64, 2.0),
                   LifetimeLognormal(Microseconds(50), 3.0)),
      // Occasional small long-lived additions.
      MakeBehavior(0.05, SizeLognormal(1024, 2.0),
                   LifetimeLognormal(Seconds(10), 3.0)),
  };
  spec.allocs_per_request = 1;
  spec.request_work_ns = 50000;  // compute-bound: near-zero malloc tax
  spec.request_interval_ns = Microseconds(60);
  spec.touches_per_alloc = 2;
  spec.reuse_touches_per_request = 20;
  spec.min_threads = 1;
  spec.max_threads = 4;
  // Everything interesting is allocated at startup (SPEC-style).
  spec.startup_bytes = 700e6;
  spec.startup_object_size = SizeLognormal(384, 2.5);
  return spec;
}

WorkloadSpec BurstEpochProfile() {
  // Snippet 2's burst pattern: every request opens a temporal slab, fills
  // it with scratch, and closes it before returning — frees arrive in the
  // exact reverse of a steady mixed stream, stressing per-CPU cache
  // overflow into the transfer cache.
  WorkloadSpec spec;
  spec.name = "burst-epoch";
  spec.behaviors = {
      // Request-scoped scratch (epoch-bound in the common case).
      MakeBehavior(0.90, SizeLognormal(128, 2.5),
                   LifetimeLognormal(Microseconds(200), 3.0)),
      // Response buffers.
      MakeBehavior(0.09, SizeLognormal(8 * 1024, 2.0),
                   LifetimeLognormal(Milliseconds(2), 3.0)),
      // Occasional cross-request state.
      MakeBehavior(0.01, SizeLognormal(2048, 2.0),
                   LifetimeLognormal(Seconds(2), 3.0)),
  };
  spec.epoch_shape = EpochShape::kBurst;
  spec.epoch_bound_fraction = 0.9;
  spec.epoch_close_requests = 1;  // one epoch per request
  spec.epoch_free_lag = 0;
  spec.allocs_per_request = 24;
  spec.request_work_ns = 3000;
  spec.request_interval_ns = Milliseconds(1);
  spec.touches_per_alloc = 2;
  spec.reuse_touches_per_request = 8;
  spec.min_threads = 4;
  spec.max_threads = 16;
  spec.thread_period = Seconds(6);
  spec.startup_bytes = 100e6;
  spec.startup_object_size = SizeLognormal(256, 2.0);
  return spec;
}

WorkloadSpec SteadyEpochProfile() {
  // Snippet 2's steady pattern: a constant request stream whose frees lag
  // allocation by one batch epoch, holding a rolling window of live
  // batches (the allocator sees a stable live set with batched turnover).
  WorkloadSpec spec = BurstEpochProfile();
  spec.name = "steady-epoch";
  spec.epoch_shape = EpochShape::kSteady;
  spec.epoch_bound_fraction = 0.8;
  spec.epoch_close_requests = 16;  // batch epoch of 16 requests
  spec.epoch_free_lag = 1;         // freed one epoch behind
  spec.allocs_per_request = 12;
  spec.request_work_ns = 4000;
  spec.request_interval_ns = Microseconds(200);  // ~5000 req/s per thread
  return spec;
}

WorkloadSpec LaggedFreeEpochProfile() {
  // Lagged-free: epochs retire several batches late, so the live set is a
  // deep window of whole epochs — span reuse is deferred and the page
  // heap sees saw-tooth release pressure.
  WorkloadSpec spec = BurstEpochProfile();
  spec.name = "lagged-free-epoch";
  spec.epoch_shape = EpochShape::kLaggedFree;
  spec.epoch_bound_fraction = 0.85;
  spec.epoch_close_requests = 16;
  spec.epoch_free_lag = 4;
  spec.allocs_per_request = 10;
  spec.request_work_ns = 5000;
  spec.request_interval_ns = Microseconds(500);
  return spec;
}

WorkloadSpec InferenceChurnProfile() {
  // Snippet 1's RL/inference serving shape: each step allocates a burst
  // of small short-lived activations freed at step end (even epochs),
  // while replay-buffer / KV-cache state (odd epochs) is retained across
  // many steps — extreme churn against a slowly rolling retained set.
  WorkloadSpec spec;
  spec.name = "inference-churn";
  spec.behaviors = {
      // Activation tensors: small, hot, freed at step end.
      MakeBehavior(0.80, SizeLognormal(512, 2.5),
                   LifetimeLognormal(Microseconds(300), 3.0)),
      // Intermediate feature maps.
      MakeBehavior(0.15, SizeLognormal(32 * 1024, 2.0),
                   LifetimeLognormal(Milliseconds(5), 3.0)),
      // Per-step output logits / sampled tokens.
      MakeBehavior(0.05, SizeLognormal(4096, 1.8),
                   LifetimeLognormal(Milliseconds(20), 3.0)),
  };
  spec.epoch_shape = EpochShape::kChurn;
  spec.epoch_bound_fraction = 0.85;
  spec.epoch_close_requests = 4;  // a serving "step" every 4 requests
  spec.epoch_free_lag = 8;        // retained epochs live 8 steps
  spec.allocs_per_request = 32;
  spec.request_work_ns = 9000;
  spec.request_interval_ns = Milliseconds(2);
  spec.touches_per_alloc = 4;
  spec.reuse_touches_per_request = 12;
  spec.min_threads = 2;
  spec.max_threads = 12;
  spec.thread_period = Seconds(6);
  // Model weights resident for the whole run.
  spec.startup_bytes = 400e6;
  spec.startup_object_size = SizeLognormal(4.0 * 1024 * 1024, 1.4);
  return spec;
}

std::vector<WorkloadSpec> EpochProfiles() {
  return {BurstEpochProfile(), SteadyEpochProfile(), LaggedFreeEpochProfile(),
          InferenceChurnProfile()};
}

WorkloadSpec AntagonistProfile() {
  // The scenario layer's noisy neighbor: allocation-heavy, cache-hostile
  // churn sharing the victims' allocator and LLC. Its request rate is
  // scaled (or zeroed) through spec.load_phases by the scenario planner.
  WorkloadSpec spec = InferenceChurnProfile();
  spec.name = "antagonist";
  spec.antagonist = true;
  spec.allocs_per_request = 48;
  spec.request_work_ns = 1500;  // little compute per byte: pure pressure
  spec.request_interval_ns = Microseconds(500);
  spec.touches_per_alloc = 6;
  spec.reuse_touches_per_request = 24;
  spec.startup_bytes = 50e6;
  return spec;
}

std::vector<WorkloadSpec> TopFiveProfiles() {
  return {SpannerProfile(), MonarchProfile(), BigtableProfile(),
          F1QueryProfile(), DiskProfile()};
}

std::vector<WorkloadSpec> BenchmarkProfiles() {
  return {RedisProfile(), DataPipelineProfile(), ImageProcessingProfile(),
          TensorflowProfile()};
}

WorkloadSpec SyntheticBinary(int rank, uint64_t seed) {
  // Base family rotates through the production profiles; parameters are
  // jittered so every binary behaves distinctly (the fleet's diversity).
  std::vector<WorkloadSpec> bases = TopFiveProfiles();
  bases.push_back(DataPipelineProfile());
  bases.push_back(ImageProcessingProfile());
  bases.push_back(TensorflowProfile());
  WorkloadSpec spec = bases[static_cast<size_t>(rank) % bases.size()];
  Rng rng(seed ^ (static_cast<uint64_t>(rank) * 0x9e3779b97f4a7c15ULL));
  spec.name = "binary-" + std::to_string(rank) + "-" + spec.name;
  // The wide fleet is less allocation-intensive than the top-5 malloc
  // users (fleet tax 4.3% vs up to 10.1%), so most variants get more
  // application work per request.
  spec.request_work_ns *= 0.8 + 4.0 * rng.UniformDouble();
  spec.allocs_per_request = std::max(
      1.0, spec.allocs_per_request * (0.7 + 0.6 * rng.UniformDouble()));
  spec.startup_bytes *= 0.5 + rng.UniformDouble();
  for (Behavior& b : spec.behaviors) {
    b.weight *= 0.7 + 0.6 * rng.UniformDouble();
  }
  spec.max_threads = std::max(
      spec.min_threads,
      static_cast<int>(spec.max_threads * (0.5 + rng.UniformDouble())));
  return spec;
}

}  // namespace wsc::workload
