#include "workload/trace.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace wsc::workload {

Trace Trace::GenerateRandom(size_t n, uint64_t seed, size_t max_size) {
  WSC_CHECK_GE(max_size, 8u);
  Trace trace;
  Rng rng(seed);
  size_t live = 0;
  double log_max = std::log2(static_cast<double>(max_size));
  for (size_t i = 0; i < n; ++i) {
    bool do_free = live > 0 && rng.Bernoulli(0.5);
    if (do_free) {
      trace.Free(rng.UniformInt(live));
      --live;
    } else {
      double log_size = 3.0 + (log_max - 3.0) * rng.UniformDouble();
      auto size = static_cast<size_t>(std::pow(2.0, log_size));
      trace.Alloc(std::max<size_t>(8, size));
      ++live;
    }
  }
  while (live > 0) {
    trace.Free(rng.UniformInt(live));
    --live;
  }
  return trace;
}

size_t Trace::Replay(tcmalloc::Allocator& allocator, int vcpu,
                     SimTime step_ns) const {
  std::vector<std::pair<uintptr_t, size_t>> live;
  size_t live_bytes = 0;
  size_t peak = 0;
  SimTime now = 0;
  for (const TraceOp& op : ops_) {
    now += step_ns;
    if (op.kind == TraceOp::Kind::kAlloc) {
      uintptr_t addr = allocator.Allocate(op.value, vcpu, now);
      live.push_back({addr, op.value});
      live_bytes += op.value;
      peak = std::max(peak, live_bytes);
    } else {
      WSC_CHECK_LT(op.value, live.size());
      auto [addr, size] = live[op.value];
      allocator.Free(addr, vcpu, now);
      live[op.value] = live.back();
      live.pop_back();
      live_bytes -= size;
    }
  }
  WSC_CHECK(live.empty());
  return peak;
}

}  // namespace wsc::workload
