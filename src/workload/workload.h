// Workload model.
//
// Section 3 shows WSC allocation behavior is a heavy-tailed joint
// distribution over object size and lifetime (Figs. 7-8), with dynamic
// thread counts (Fig. 9a). A WorkloadSpec captures one application as a
// mixture of *behaviors*: each behavior couples a size distribution with a
// lifetime distribution (so sizes and lifetimes are correlated through the
// mixture component, as in the fleet where e.g. >1 GiB objects are mostly
// >1 day lived), plus request-level parameters (allocations per request,
// base compute per request, touch counts) and thread dynamics.

#ifndef WSC_WORKLOAD_WORKLOAD_H_
#define WSC_WORKLOAD_WORKLOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "common/distribution.h"
#include "common/sim_clock.h"

namespace wsc::workload {

// One allocation behavior: a (size, lifetime) joint component.
struct Behavior {
  double weight = 1.0;
  std::shared_ptr<const Distribution> size_bytes;
  std::shared_ptr<const Distribution> lifetime_ns;
};

// Static description of one application.
struct WorkloadSpec {
  std::string name;

  std::vector<Behavior> behaviors;

  // Mean allocations per request (actual count is uniform in
  // [1, 2*mean-1], keeping the mean while adding burstiness).
  double allocs_per_request = 8.0;

  // Base application compute per request, in virtual ns. Sets the malloc
  // tax denominator: raising it lowers the workload's malloc-cycle
  // percentage (Fig. 5a).
  double request_work_ns = 20000.0;

  // Cache lines touched per object right after allocation.
  int touches_per_alloc = 2;

  // Additional touches per request into recently allocated objects
  // (models the working set; drives the dTLB and LLC models).
  int reuse_touches_per_request = 8;

  // Thread-count dynamics (Fig. 9a): the active thread count follows a
  // sinusoid between min_threads and max_threads with period
  // thread_period, multiplicative noise, and occasional spikes to max.
  int min_threads = 1;
  int max_threads = 8;
  SimTime thread_period = Hours(24);
  double thread_noise = 0.1;
  double spike_probability = 0.01;

  // Mean wall-clock interval between requests on one thread (think time /
  // duty cycle). Service time shorter than this leaves the thread idle;
  // zero means CPU-bound. The process-level request rate is roughly
  // active_threads / max(request_interval, service_time).
  SimTime request_interval_ns = 0;

  // Long-lived state allocated once at startup (tables, caches, model
  // weights) that lives for the whole run. These objects pin spans and
  // hugepages exactly like production long-lived allocations.
  double startup_bytes = 0;
  std::shared_ptr<const Distribution> startup_object_size;

  // ---- Injected heap bugs (fault-resilience studies; all default 0) ----
  // Per-allocation probabilities of the driver deliberately misusing a
  // fresh object: freeing it twice, touching it after free, or writing one
  // byte past the requested size. Bugs are exercised only against guarded
  // (sampled) allocations — config.guarded_sampling — so every injected
  // bug is detectable and the run never corrupts allocator bookkeeping,
  // mirroring GWP-ASan's sampled-coverage contract. The three
  // probabilities are exclusive per allocation (their sum must be <= 1).
  double double_free_probability = 0.0;
  double use_after_free_probability = 0.0;
  double overrun_probability = 0.0;

  bool injects_bugs() const {
    return double_free_probability > 0 || use_after_free_probability > 0 ||
           overrun_probability > 0;
  }

  // If true the workload is effectively single-threaded (Redis).
  bool single_threaded() const { return max_threads <= 1; }
};

// Convenience builders for behaviors.
Behavior MakeBehavior(double weight, std::shared_ptr<const Distribution> size,
                      std::shared_ptr<const Distribution> lifetime);

// Lognormal helpers returning shared_ptr for use in Behavior.
std::shared_ptr<const Distribution> SizeLognormal(double median_bytes,
                                                  double spread);
std::shared_ptr<const Distribution> SizePoint(double bytes);
std::shared_ptr<const Distribution> SizePareto(double scale, double alpha,
                                               double cap);
std::shared_ptr<const Distribution> LifetimeLognormal(double median_ns,
                                                      double spread);
std::shared_ptr<const Distribution> LifetimePoint(double ns);

}  // namespace wsc::workload

#endif  // WSC_WORKLOAD_WORKLOAD_H_
