// Workload model.
//
// Section 3 shows WSC allocation behavior is a heavy-tailed joint
// distribution over object size and lifetime (Figs. 7-8), with dynamic
// thread counts (Fig. 9a). A WorkloadSpec captures one application as a
// mixture of *behaviors*: each behavior couples a size distribution with a
// lifetime distribution (so sizes and lifetimes are correlated through the
// mixture component, as in the fleet where e.g. >1 GiB objects are mostly
// >1 day lived), plus request-level parameters (allocations per request,
// base compute per request, touch counts) and thread dynamics.

#ifndef WSC_WORKLOAD_WORKLOAD_H_
#define WSC_WORKLOAD_WORKLOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "common/distribution.h"
#include "common/sim_clock.h"

namespace wsc::workload {

// One allocation behavior: a (size, lifetime) joint component.
struct Behavior {
  double weight = 1.0;
  std::shared_ptr<const Distribution> size_bytes;
  std::shared_ptr<const Distribution> lifetime_ns;
};

// One piecewise-constant load-multiplier segment on the logical clock.
// Phases are sorted by `start` and non-overlapping; time not covered by
// any phase runs at multiplier 1.0. A multiplier of 0 idles the process
// (no requests, held memory stays put) for the segment.
struct LoadPhase {
  SimTime start = 0;
  SimTime end = 0;
  double multiplier = 1.0;
};

// Request-epoch shapes (temporal-slab patterns): instead of sampling an
// independent lifetime per object, a share of allocations is bound to the
// current request epoch and freed when the epoch retires.
enum class EpochShape {
  kNone,        // classic lifetime-sampled frees (the default)
  kBurst,       // epoch per request, freed at close (free-within-request)
  kSteady,      // batched epochs retired with a short fixed lag
  kLaggedFree,  // batched epochs retired with a long fixed lag
  kChurn,       // alternating immediate churn / retained epochs (RL or
                // inference steps vs replay-buffer and KV-cache state)
};

// Static description of one application.
struct WorkloadSpec {
  std::string name;

  std::vector<Behavior> behaviors;

  // Mean allocations per request (actual count is uniform in
  // [1, 2*mean-1], keeping the mean while adding burstiness).
  double allocs_per_request = 8.0;

  // Base application compute per request, in virtual ns. Sets the malloc
  // tax denominator: raising it lowers the workload's malloc-cycle
  // percentage (Fig. 5a).
  double request_work_ns = 20000.0;

  // Cache lines touched per object right after allocation.
  int touches_per_alloc = 2;

  // Additional touches per request into recently allocated objects
  // (models the working set; drives the dTLB and LLC models).
  int reuse_touches_per_request = 8;

  // Thread-count dynamics (Fig. 9a): the active thread count follows a
  // sinusoid between min_threads and max_threads with period
  // thread_period, multiplicative noise, and occasional spikes to max.
  int min_threads = 1;
  int max_threads = 8;
  SimTime thread_period = Hours(24);
  double thread_noise = 0.1;
  double spike_probability = 0.01;

  // Mean wall-clock interval between requests on one thread (think time /
  // duty cycle). Service time shorter than this leaves the thread idle;
  // zero means CPU-bound. The process-level request rate is roughly
  // active_threads / max(request_interval, service_time).
  SimTime request_interval_ns = 0;

  // Long-lived state allocated once at startup (tables, caches, model
  // weights) that lives for the whole run. These objects pin spans and
  // hugepages exactly like production long-lived allocations.
  double startup_bytes = 0;
  std::shared_ptr<const Distribution> startup_object_size;

  // ---- Injected heap bugs (fault-resilience studies; all default 0) ----
  // Per-allocation probabilities of the driver deliberately misusing a
  // fresh object: freeing it twice, touching it after free, or writing one
  // byte past the requested size. Bugs are exercised only against guarded
  // (sampled) allocations — config.guarded_sampling — so every injected
  // bug is detectable and the run never corrupts allocator bookkeeping,
  // mirroring GWP-ASan's sampled-coverage contract. The three
  // probabilities are exclusive per allocation (their sum must be <= 1).
  double double_free_probability = 0.0;
  double use_after_free_probability = 0.0;
  double overrun_probability = 0.0;

  bool injects_bugs() const {
    return double_free_probability > 0 || use_after_free_probability > 0 ||
           overrun_probability > 0;
  }

  // ---- Traffic-scenario load modulation (src/fleet/scenario) ----
  // Sorted, non-overlapping load-multiplier segments on the logical clock.
  // Empty means a flat 1.0 multiplier, and the driver then takes code and
  // RNG paths bit-identical to a spec without phases.
  std::vector<LoadPhase> load_phases;

  // ---- Request-epoch shape (SNIPPETS Snippets 1-2) ----
  // With a shape other than kNone, each allocation is bound to the current
  // request epoch with probability epoch_bound_fraction (the rest keep
  // sampled lifetimes). The epoch closes every epoch_close_requests
  // requests and its objects are freed epoch_free_lag epochs after close
  // (0 = freed at close). kChurn alternates: even epochs free at close,
  // odd epochs are retained for epoch_free_lag.
  EpochShape epoch_shape = EpochShape::kNone;
  double epoch_bound_fraction = 0.8;
  int epoch_close_requests = 16;
  int epoch_free_lag = 0;

  bool epochal() const { return epoch_shape != EpochShape::kNone; }

  // Marks a fleet-scenario antagonist (noisy neighbor). The machine
  // composes antagonists strictly after its primary processes: victim CPU
  // partitions, seeds, and arena slots are identical with or without the
  // antagonist present.
  bool antagonist = false;

  // If true the workload is effectively single-threaded (Redis).
  bool single_threaded() const { return max_threads <= 1; }
};

// Convenience builders for behaviors.
Behavior MakeBehavior(double weight, std::shared_ptr<const Distribution> size,
                      std::shared_ptr<const Distribution> lifetime);

// Lognormal helpers returning shared_ptr for use in Behavior.
std::shared_ptr<const Distribution> SizeLognormal(double median_bytes,
                                                  double spread);
std::shared_ptr<const Distribution> SizePoint(double bytes);
std::shared_ptr<const Distribution> SizePareto(double scale, double alpha,
                                               double cap);
std::shared_ptr<const Distribution> LifetimeLognormal(double median_ns,
                                                      double spread);
std::shared_ptr<const Distribution> LifetimePoint(double ns);

// Multiplier of the phase covering `t`, or 1.0 when uncovered. `hint` is a
// cursor advanced across calls with monotonically non-decreasing `t`
// (phases must be sorted by start and non-overlapping).
double LoadMultiplierAt(const std::vector<LoadPhase>& phases, SimTime t,
                        size_t& hint);

}  // namespace wsc::workload

#endif  // WSC_WORKLOAD_WORKLOAD_H_
