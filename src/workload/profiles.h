// Workload profiles (Section 2.3).
//
// Synthetic stand-ins for the paper's five production workloads with the
// highest malloc usage (Spanner, Monarch, Bigtable, F1 query, Disk), the
// four dedicated-server benchmarks (Redis, data-processing pipeline, image
// processing server, TensorFlow serving), and a SPEC CPU2006-like contrast
// workload. Parameters (size/lifetime mixtures, allocation rates, thread
// dynamics) are chosen so the fleet-level shapes of Figs. 5, 7 and 8
// emerge: ~98% of objects < 1 KiB but only ~28% of bytes, >8 KiB objects
// ~50% of bytes, lifetimes from < 1 ms to effectively-forever, and
// per-application malloc tax between ~3.5% and ~10%.

#ifndef WSC_WORKLOAD_PROFILES_H_
#define WSC_WORKLOAD_PROFILES_H_

#include <cstdint>
#include <vector>

#include "workload/workload.h"

namespace wsc::workload {

// --- Production workloads (fleet top-5 by malloc usage) ---
WorkloadSpec SpannerProfile();     // distributed SQL node with block cache
WorkloadSpec MonarchProfile();     // in-memory time-series store
WorkloadSpec BigtableProfile();    // NoSQL tablet server
WorkloadSpec F1QueryProfile();     // distributed query engine
WorkloadSpec DiskProfile();        // distributed storage server

// --- Dedicated-server benchmarks ---
WorkloadSpec RedisProfile();            // single-threaded KV store, 1000 B ops
WorkloadSpec DataPipelineProfile();     // word count over 100M words
WorkloadSpec ImageProcessingProfile();  // image filter/transform server
WorkloadSpec TensorflowProfile();       // InceptionV3 serving

// --- Contrast workload ---
WorkloadSpec SpecLikeProfile();  // allocate-at-start, near-zero steady malloc

// --- Request-epoch shaped workloads (SNIPPETS Snippets 1-2) ---
// Temporal-slab epoch patterns: allocations bound to request epochs that
// retire in bulk, instead of independently sampled lifetimes.
WorkloadSpec BurstEpochProfile();       // free-within-request, epoch/request
WorkloadSpec SteadyEpochProfile();      // 16-request epochs, one-epoch lag
WorkloadSpec LaggedFreeEpochProfile();  // 16-request epochs, 4-epoch lag
WorkloadSpec InferenceChurnProfile();   // RL/inference step churn + retained
                                        // replay/KV state (alternating lag)

// The four epoch-shaped workloads above, in that order.
std::vector<WorkloadSpec> EpochProfiles();

// Noisy neighbor co-located by the antagonist scenario: churny,
// cache-hostile, and marked spec.antagonist so the machine composes it
// after (and invisibly to) the victim processes.
WorkloadSpec AntagonistProfile();

// The paper's top-5 production workloads, in its reporting order.
std::vector<WorkloadSpec> TopFiveProfiles();

// The four benchmarks, in the paper's reporting order.
std::vector<WorkloadSpec> BenchmarkProfiles();

// A synthetic fleet binary: a jittered variant of one of the base
// profiles, for populating many-binary fleets (Fig. 3). `rank` selects the
// base profile family deterministically; `seed` jitters the parameters.
WorkloadSpec SyntheticBinary(int rank, uint64_t seed);

}  // namespace wsc::workload

#endif  // WSC_WORKLOAD_PROFILES_H_
