#include "shim/shim_core.h"

#include <errno.h>
#include <fcntl.h>
#include <pthread.h>
#include <signal.h>
#include <string.h>
#include <sys/mman.h>
#include <time.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "tcmalloc/config.h"
#include "tcmalloc/memory_backing.h"
#include "tcmalloc/pages.h"
#include "tcmalloc/real_threads.h"
#include "telemetry/registry.h"

namespace wsc::shim {
namespace {

using tcmalloc::RealThreadCache;
using tcmalloc::RealThreadsAllocator;

// ---- Bootstrap arena -------------------------------------------------
//
// Serves three kinds of allocation the real allocator cannot: (a) calls
// made before/while the allocator constructs (ld.so and libc start
// allocating before any constructor runs), (b) reentrant calls from
// inside the allocator's own bookkeeping (vector growth in
// RegisterThread, std::map nodes in the released-range set), (c) calls
// from threads racing the one-time init. It is a dumb mmap'd bump
// allocator with a size header per block; frees are no-ops, so it must
// stay small — once the allocator is up, only (b) lands here.

constexpr size_t kBootstrapBytes = size_t{256} << 20;  // 256 MiB of VA
constexpr size_t kBootstrapHeader = 16;                // keeps 16-alignment

std::atomic<uintptr_t> g_boot_base{0};
std::atomic<uintptr_t> g_boot_next{0};

uintptr_t BootstrapBase() {
  uintptr_t base = g_boot_base.load(std::memory_order_acquire);
  if (base != 0) return base;
  void* mem = mmap(nullptr, kBootstrapBytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (mem == MAP_FAILED) return 0;
  uintptr_t fresh = reinterpret_cast<uintptr_t>(mem);
  uintptr_t expected = 0;
  if (g_boot_base.compare_exchange_strong(expected, fresh,
                                          std::memory_order_acq_rel)) {
    g_boot_next.store(fresh, std::memory_order_release);
    return fresh;
  }
  munmap(mem, kBootstrapBytes);  // lost the race; use the winner's
  return expected;
}

void* BootstrapAlloc(size_t size, size_t align) {
  uintptr_t base = BootstrapBase();
  if (base == 0) return nullptr;
  if (align < kBootstrapHeader) align = kBootstrapHeader;
  size_t need = (size + kBootstrapHeader - 1) & ~(kBootstrapHeader - 1);
  uintptr_t next = g_boot_next.load(std::memory_order_relaxed);
  uintptr_t block;
  do {
    block = (next + kBootstrapHeader + (align - 1)) & ~(align - 1);
    if (block + need > base + kBootstrapBytes) return nullptr;
  } while (!g_boot_next.compare_exchange_weak(next, block + need,
                                              std::memory_order_relaxed));
  reinterpret_cast<size_t*>(block)[-1] = size;
  return reinterpret_cast<void*>(block);
}

bool IsBootstrap(const void* ptr) {
  uintptr_t base = g_boot_base.load(std::memory_order_acquire);
  uintptr_t p = reinterpret_cast<uintptr_t>(ptr);
  return base != 0 && p >= base && p < base + kBootstrapBytes;
}

size_t BootstrapUsable(const void* ptr) {
  return reinterpret_cast<const size_t*>(ptr)[-1];
}

// ---- One-time initialization ----------------------------------------

enum : int { kUninit = 0, kConstructing = 1, kReady = 2 };

std::atomic<int> g_state{kUninit};
alignas(RealThreadsAllocator) unsigned char
    g_alloc_storage[sizeof(RealThreadsAllocator)];
RealThreadsAllocator* g_alloc = nullptr;

// Per-thread state. initial-exec TLS: resolved at load time, no
// __tls_get_addr (which would malloc) on access.
__attribute__((tls_model("initial-exec"))) thread_local RealThreadCache*
    t_cache = nullptr;
// Set while this thread is inside the allocator (or its construction):
// nested malloc calls are allocator bookkeeping and must come from the
// bootstrap arena, not recurse.
__attribute__((tls_model("initial-exec"))) thread_local bool t_busy = false;

struct BusyScope {
  BusyScope() { t_busy = true; }
  ~BusyScope() { t_busy = false; }
};

size_t EnvBytesMb(const char* name, size_t fallback) {
  const char* v = getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  unsigned long long mb = strtoull(v, &end, 10);
  if (end == v) return fallback;
  return static_cast<size_t>(mb) << 20;
}

long EnvLong(const char* name, long fallback) {
  const char* v = getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  long n = strtol(v, &end, 10);
  if (end == v) return fallback;
  return n;
}

// ---- Live statsz ------------------------------------------------------
//
// A background thread that makes any preloaded process observable while
// it runs, not just at exit: every WSC_SHIM_STATSZ_INTERVAL_MS (default
// 1000, floor 10) it takes a counter sample into a fixed ring and — when
// WSC_SHIM_STATSZ_PATH is set — appends the sample as one pid-tagged
// NDJSON line (O_APPEND open/write/close per dump, so many preloaded
// processes can share one file). SIGUSR2 forces an immediate
// out-of-schedule dump. The ring is exported via
// wscmalloc_stats_timeseries for in-process scrapers.
//
// Reentrancy: the thread is a normal malloc client (its snapshot vectors
// allocate and free through the shim itself — no bootstrap leak), but
// file output uses raw fd syscalls and a stack buffer so a dump never
// allocates. Fork: ForkPrepare takes g_statsz_mu *before* quiescing the
// allocator, so no sample is mid-flight at fork time and the child
// inherits an unlocked mutex + a consistent ring; the atfork child
// handler restarts the thread (fork drops all threads but ours must
// survive conceptually) with the child's own pid tag.

struct StatszSample {
  long pid;            // taker's pid (inherited ring entries keep the
                       // parent's pid after fork)
  uint64_t seq;        // monotonically increasing per process image
  uint64_t uptime_ms;  // since the stats thread started
  bool signal;         // true when SIGUSR2 forced this dump
  double allocations;
  double frees;
  double live_bytes;
  size_t footprint_bytes;
  double released_bytes;
  int threads;
};

constexpr int kStatszRing = 64;
constexpr int kStatszDefaultIntervalMs = 1000;
constexpr int kStatszPollMs = 10;  // SIGUSR2 latency / shutdown poll

pthread_mutex_t g_statsz_mu = PTHREAD_MUTEX_INITIALIZER;
StatszSample g_statsz_ring[kStatszRing];   // guarded by g_statsz_mu
uint64_t g_statsz_count = 0;               // guarded by g_statsz_mu
char g_statsz_path[512];                   // fixed at thread start
int g_statsz_interval_ms = kStatszDefaultIntervalMs;
std::atomic<bool> g_statsz_enabled{false};
volatile sig_atomic_t g_statsz_sigusr2 = 0;
uint64_t g_statsz_epoch_ms = 0;

uint64_t MonotonicMs() {
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) != 0) return 0;
  return static_cast<uint64_t>(ts.tv_sec) * 1000 +
         static_cast<uint64_t>(ts.tv_nsec) / 1000000;
}

void StatszSignalHandler(int) { g_statsz_sigusr2 = 1; }

int FormatStatszLine(const StatszSample& s, char* buf, size_t cap) {
  return snprintf(
      buf, cap,
      "{\"pid\":%ld,\"seq\":%llu,\"uptime_ms\":%llu,"
      "\"trigger\":\"%s\",\"allocations\":%.0f,\"frees\":%.0f,"
      "\"live_bytes\":%.0f,\"footprint_bytes\":%zu,"
      "\"released_bytes\":%.0f,\"threads\":%d}\n",
      s.pid, static_cast<unsigned long long>(s.seq),
      static_cast<unsigned long long>(s.uptime_ms),
      s.signal ? "signal" : "interval", s.allocations, s.frees,
      s.live_bytes, s.footprint_bytes, s.released_bytes, s.threads);
}

// Takes one sample into the ring and appends it to the statsz file.
// Called only from the stats thread, after the allocator is kReady.
void StatszTakeSample(bool signal_dump) {
  StatszSample s;
  s.pid = static_cast<long>(getpid());
  s.signal = signal_dump;
  s.uptime_ms = MonotonicMs() - g_statsz_epoch_ms;
  {
    // Snapshot outside the ring lock: it mallocs (through the shim) and
    // must never do so while ForkPrepare could be waiting on g_statsz_mu.
    wsc::telemetry::Snapshot snap = g_alloc->TelemetrySnapshot();
    auto metric = [&snap](const char* c, const char* n) -> double {
      const wsc::telemetry::MetricSample* m = snap.Find(c, n);
      return m != nullptr ? m->ScalarValue() : 0.0;
    };
    s.allocations = metric("allocator", "allocations");
    s.frees = metric("allocator", "frees");
    s.live_bytes = metric("allocator", "live_bytes");
    s.footprint_bytes = g_alloc->FootprintBytes();
    s.released_bytes = metric("system", "released_bytes");
    s.threads = g_alloc->registered_threads();
  }
  char line[512];
  int n;
  pthread_mutex_lock(&g_statsz_mu);
  s.seq = g_statsz_count;
  g_statsz_ring[g_statsz_count % kStatszRing] = s;
  ++g_statsz_count;
  n = FormatStatszLine(s, line, sizeof(line));
  pthread_mutex_unlock(&g_statsz_mu);
  if (n <= 0 || g_statsz_path[0] == '\0') return;
  int fd = open(g_statsz_path, O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return;
  size_t len = static_cast<size_t>(n) < sizeof(line)
                   ? static_cast<size_t>(n)
                   : sizeof(line) - 1;
  ssize_t ignored = write(fd, line, len);
  (void)ignored;
  close(fd);
}

void* StatszThreadMain(void*) {
  // Block nothing: SIGUSR2 is delivered process-wide; any thread's
  // handler just sets the flag this loop polls.
  uint64_t next_due = MonotonicMs() + static_cast<uint64_t>(g_statsz_interval_ms);
  for (;;) {
    struct timespec ts = {0, kStatszPollMs * 1000000};
    nanosleep(&ts, nullptr);
    bool signal_dump = g_statsz_sigusr2 != 0;
    uint64_t now = MonotonicMs();
    if (!signal_dump && now < next_due) continue;
    if (signal_dump) {
      g_statsz_sigusr2 = 0;
    } else {
      // Schedule from "now", not "due": a late wakeup must not cause a
      // burst of catch-up dumps.
      next_due = now + static_cast<uint64_t>(g_statsz_interval_ms);
    }
    StatszTakeSample(signal_dump);
  }
  return nullptr;
}

// Spawns the detached stats thread (it dies with the process / exec).
// Called at allocator construction and again in the atfork child.
void StatszStartThread() {
  g_statsz_epoch_ms = MonotonicMs();
  pthread_t tid;
  pthread_attr_t attr;
  if (pthread_attr_init(&attr) != 0) return;
  pthread_attr_setdetachstate(&attr, PTHREAD_CREATE_DETACHED);
  if (pthread_create(&tid, &attr, &StatszThreadMain, nullptr) != 0) {
    g_statsz_enabled.store(false, std::memory_order_release);
  }
  pthread_attr_destroy(&attr);
}

// One-time statsz setup, run inside allocator construction (under
// BusyScope, so the handful of bytes pthread_create mallocs land in the
// bootstrap arena). Enabled by either env knob so ring-only operation
// (scrape via wscmalloc_stats_timeseries, no file) works too.
void StatszInit() {
  const char* path = getenv("WSC_SHIM_STATSZ_PATH");
  const char* interval = getenv("WSC_SHIM_STATSZ_INTERVAL_MS");
  if ((path == nullptr || *path == '\0') &&
      (interval == nullptr || *interval == '\0')) {
    return;
  }
  if (path != nullptr) {
    strncpy(g_statsz_path, path, sizeof(g_statsz_path) - 1);
    g_statsz_path[sizeof(g_statsz_path) - 1] = '\0';
  }
  long ms = EnvLong("WSC_SHIM_STATSZ_INTERVAL_MS", kStatszDefaultIntervalMs);
  g_statsz_interval_ms =
      ms < kStatszPollMs ? kStatszPollMs
                         : static_cast<int>(ms > 3600000 ? 3600000 : ms);
  struct sigaction sa;
  memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &StatszSignalHandler;
  sa.sa_flags = SA_RESTART;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGUSR2, &sa, nullptr);
  g_statsz_enabled.store(true, std::memory_order_release);
  StatszStartThread();
}

void ForkPrepare() {
  // Statsz first: once we hold g_statsz_mu no dump is mid-write, and the
  // sampler cannot be inside the allocator either (samples malloc only
  // outside the lock), so the allocator quiesce below cannot deadlock
  // against the stats thread.
  pthread_mutex_lock(&g_statsz_mu);
  if (g_state.load(std::memory_order_acquire) == kReady) {
    g_alloc->ForkPrepare();
  }
}

void ForkRelease() {
  if (g_state.load(std::memory_order_acquire) == kReady) {
    g_alloc->ForkRelease();
  }
  pthread_mutex_unlock(&g_statsz_mu);
}

void ForkChild() {
  ForkRelease();
  // fork() dropped every thread but the forker; give the child image its
  // own stats thread so longitudinal observation survives process trees.
  if (g_statsz_enabled.load(std::memory_order_acquire)) {
    StatszStartThread();
  }
}

RealThreadsAllocator* GetAllocator() {
  int state = g_state.load(std::memory_order_acquire);
  if (state == kReady) return g_alloc;
  int expected = kUninit;
  if (!g_state.compare_exchange_strong(expected, kConstructing,
                                       std::memory_order_acq_rel)) {
    // Someone else is constructing (or just finished).
    return g_state.load(std::memory_order_acquire) == kReady ? g_alloc
                                                             : nullptr;
  }
  // We construct. Everything the constructor allocates lands in the
  // bootstrap arena via t_busy.
  BusyScope busy;
  size_t reserve = EnvBytesMb("WSC_SHIM_RESERVE_MB", 0);
  long nproc = sysconf(_SC_NPROCESSORS_ONLN);
  int expected_threads = nproc > 0 ? static_cast<int>(nproc) : 4;
  auto builder = tcmalloc::AllocatorConfig::Builder()
                     .WithRealMemory()
                     .WithRealMemoryReserve(reserve);
  auto built = builder.TryBuild();
  if (!built.has_value()) {
    // Cannot happen with the knobs above, but never abort inside malloc.
    g_state.store(kUninit, std::memory_order_release);
    return nullptr;
  }
  g_alloc = new (g_alloc_storage)
      RealThreadsAllocator(*built, expected_threads);
  size_t release_mb = EnvBytesMb("WSC_SHIM_RELEASE_MB", size_t{256} << 20);
  g_alloc->SetLargeReleaseThreshold(release_mb);
  pthread_atfork(&ForkPrepare, &ForkRelease, &ForkChild);
  g_state.store(kReady, std::memory_order_release);
  StatszInit();  // after kReady: the thread samples the live allocator
  return g_alloc;
}

RealThreadCache* GetCache(RealThreadsAllocator* alloc) {
  RealThreadCache* tc = t_cache;
  if (tc != nullptr) return tc;
  BusyScope busy;  // RegisterThread grows vectors
  tc = alloc->RegisterThread();
  t_cache = tc;
  return tc;
}

void* FinishAlloc(uintptr_t addr) {
  if (addr == 0) {
    errno = ENOMEM;
    return nullptr;
  }
  return reinterpret_cast<void*>(addr);
}

}  // namespace

void* ShimMalloc(size_t size) {
  if (size == 0) size = 1;
  if (t_busy) {
    void* p = BootstrapAlloc(size, kBootstrapHeader);
    if (p == nullptr) errno = ENOMEM;
    return p;
  }
  RealThreadsAllocator* alloc = GetAllocator();
  if (alloc == nullptr) {
    void* p = BootstrapAlloc(size, kBootstrapHeader);
    if (p == nullptr) errno = ENOMEM;
    return p;
  }
  RealThreadCache* tc = GetCache(alloc);
  BusyScope busy;
  return FinishAlloc(alloc->Allocate(tc, size));
}

void ShimFree(void* ptr) {
  if (ptr == nullptr || IsBootstrap(ptr)) return;
  RealThreadsAllocator* alloc = GetAllocator();
  if (alloc == nullptr || !alloc->Owns(reinterpret_cast<uintptr_t>(ptr))) {
    // Foreign pointer (allocated past the shim, e.g. by libc internals
    // that bypass malloc): leaking it is safe, freeing it is not.
    return;
  }
  RealThreadCache* tc = GetCache(alloc);
  BusyScope busy;
  alloc->FreeAddr(tc, reinterpret_cast<uintptr_t>(ptr));
}

void* ShimCalloc(size_t n, size_t size) {
  size_t bytes;
  if (__builtin_mul_overflow(n, size, &bytes)) {
    errno = ENOMEM;
    return nullptr;
  }
  void* p = ShimMalloc(bytes == 0 ? 1 : bytes);
  if (p != nullptr) memset(p, 0, bytes);
  return p;
}

void* ShimRealloc(void* ptr, size_t size) {
  if (ptr == nullptr) return ShimMalloc(size);
  if (size == 0) {
    ShimFree(ptr);
    return nullptr;
  }
  size_t old_usable = ShimUsableSize(ptr);
  // In place when it still fits and is not a pathological shrink (keep at
  // most 2x slack, mirroring size-class granularity).
  if (size <= old_usable && size >= old_usable / 2) return ptr;
  void* fresh = ShimMalloc(size);
  if (fresh == nullptr) return nullptr;  // old block stays valid
  memcpy(fresh, ptr, old_usable < size ? old_usable : size);
  ShimFree(ptr);
  return fresh;
}

void* ShimReallocArray(void* ptr, size_t n, size_t size) {
  size_t bytes;
  if (__builtin_mul_overflow(n, size, &bytes)) {
    errno = ENOMEM;
    return nullptr;
  }
  return ShimRealloc(ptr, bytes);
}

int ShimPosixMemalign(void** out, size_t align, size_t size) {
  if (out == nullptr || align < sizeof(void*) ||
      (align & (align - 1)) != 0) {
    return EINVAL;
  }
  if (size == 0) size = 1;
  if (t_busy) {
    void* p = BootstrapAlloc(size, align);
    if (p == nullptr) return ENOMEM;
    *out = p;
    return 0;
  }
  RealThreadsAllocator* alloc = GetAllocator();
  if (alloc == nullptr) {
    void* p = BootstrapAlloc(size, align);
    if (p == nullptr) return ENOMEM;
    *out = p;
    return 0;
  }
  RealThreadCache* tc = GetCache(alloc);
  BusyScope busy;
  uintptr_t addr = alloc->AllocateAligned(tc, size, align);
  if (addr == 0) return ENOMEM;
  *out = reinterpret_cast<void*>(addr);
  return 0;
}

void* ShimAlignedAlloc(size_t align, size_t size) {
  if (align == 0 || (align & (align - 1)) != 0) {
    errno = EINVAL;
    return nullptr;
  }
  void* out = nullptr;
  int err = ShimPosixMemalign(&out, align < sizeof(void*) ? sizeof(void*)
                                                          : align,
                              size);
  if (err != 0) {
    errno = err;
    return nullptr;
  }
  return out;
}

void* ShimMemalign(size_t align, size_t size) {
  return ShimAlignedAlloc(align == 0 ? sizeof(void*) : align, size);
}

void* ShimValloc(size_t size) {
  long page = sysconf(_SC_PAGESIZE);
  return ShimAlignedAlloc(page > 0 ? static_cast<size_t>(page) : 4096,
                          size);
}

void* ShimPvalloc(size_t size) {
  long page_l = sysconf(_SC_PAGESIZE);
  size_t page = page_l > 0 ? static_cast<size_t>(page_l) : 4096;
  size_t rounded = (size + page - 1) & ~(page - 1);
  return ShimAlignedAlloc(page, rounded == 0 ? page : rounded);
}

size_t ShimUsableSize(void* ptr) {
  if (ptr == nullptr) return 0;
  if (IsBootstrap(ptr)) return BootstrapUsable(ptr);
  if (g_state.load(std::memory_order_acquire) != kReady) return 0;
  return g_alloc->UsableSize(reinterpret_cast<uintptr_t>(ptr));
}

bool ShimIsActive() {
  return g_state.load(std::memory_order_acquire) == kReady;
}

const char* ShimBackendName() {
  if (!ShimIsActive()) return "bootstrap";
  return tcmalloc::BackendKindName(g_alloc->backend_kind());
}

size_t ShimReleaseMemory(size_t bytes) {
  if (!ShimIsActive()) return 0;
  BusyScope busy;
  return g_alloc->ReleaseMemoryToSystem(bytes);
}

size_t ShimStatsJson(char* buf, size_t cap) {
  if (buf == nullptr || cap == 0) return 0;
  if (!ShimIsActive()) {
    int n = snprintf(buf, cap, "{\"active\":false,\"bootstrap_bytes\":%zu}",
                     static_cast<size_t>(
                         g_boot_next.load(std::memory_order_relaxed) -
                         g_boot_base.load(std::memory_order_relaxed)));
    return n < 0 ? 0 : (static_cast<size_t>(n) < cap
                            ? static_cast<size_t>(n)
                            : cap - 1);
  }
  BusyScope busy;  // the snapshot's own vectors come from bootstrap
  wsc::telemetry::Snapshot snap = g_alloc->TelemetrySnapshot();
  auto metric = [&snap](const char* component, const char* name) -> double {
    const wsc::telemetry::MetricSample* s = snap.Find(component, name);
    return s != nullptr ? s->ScalarValue() : 0.0;
  };
  uintptr_t boot_base = g_boot_base.load(std::memory_order_relaxed);
  size_t boot_bytes =
      boot_base == 0
          ? 0
          : g_boot_next.load(std::memory_order_relaxed) - boot_base;
  int n = snprintf(
      buf, cap,
      "{\"active\":true,\"backend\":\"%s\","
      "\"allocations\":%.0f,\"frees\":%.0f,"
      "\"live_bytes\":%.0f,\"footprint_bytes\":%zu,"
      "\"released_bytes\":%.0f,\"recommitted_bytes\":%.0f,"
      "\"reserved_bytes\":%.0f,\"large_pending_bytes\":%.0f,"
      "\"threads\":%d,\"bootstrap_bytes\":%zu}",
      ShimBackendName(), metric("allocator", "allocations"),
      metric("allocator", "frees"), metric("allocator", "live_bytes"),
      g_alloc->FootprintBytes(), metric("system", "released_bytes"),
      metric("system", "recommitted_bytes"),
      metric("system", "reserved_bytes"),
      metric("allocator", "large_pending_bytes"),
      g_alloc->registered_threads(), boot_bytes);
  return n < 0 ? 0
               : (static_cast<size_t>(n) < cap ? static_cast<size_t>(n)
                                               : cap - 1);
}

size_t ShimStatsTimeseries(char* buf, size_t cap) {
  if (buf == nullptr || cap == 0) return 0;
  buf[0] = '\0';
  size_t written = 0;
  pthread_mutex_lock(&g_statsz_mu);
  uint64_t count = g_statsz_count;
  uint64_t first = count > kStatszRing ? count - kStatszRing : 0;
  for (uint64_t i = first; i < count; ++i) {
    char line[512];
    int n = FormatStatszLine(g_statsz_ring[i % kStatszRing], line,
                             sizeof(line));
    if (n <= 0) continue;
    size_t len = static_cast<size_t>(n) < sizeof(line)
                     ? static_cast<size_t>(n)
                     : sizeof(line) - 1;
    if (written + len >= cap) break;  // whole lines only
    memcpy(buf + written, line, len);
    written += len;
  }
  pthread_mutex_unlock(&g_statsz_mu);
  buf[written] = '\0';
  return written;
}

}  // namespace wsc::shim
