// The exported C symbol surface of libwscmalloc.so.
//
// LD_PRELOAD interposition: defining malloc & friends with default
// visibility in a preloaded object places them first in the global
// lookup scope, so every allocation in the process — the executable,
// libstdc++'s operator new, libc's own strdup — routes through the shim.
// No dlsym(RTLD_NEXT) chaining is needed because the shim is a complete
// allocator; pointers that predate the preload (libc-internal) are
// detected by range and deliberately leaked (see ShimFree).
//
// tools/check_shim_symbols.sh asserts with `nm -D` that every symbol
// below is actually exported.

#include <cstddef>

#include "shim/shim_core.h"

#define WSC_SHIM_EXPORT extern "C" __attribute__((visibility("default")))

WSC_SHIM_EXPORT void* malloc(size_t size) {
  return wsc::shim::ShimMalloc(size);
}

WSC_SHIM_EXPORT void free(void* ptr) { wsc::shim::ShimFree(ptr); }

WSC_SHIM_EXPORT void* calloc(size_t n, size_t size) {
  return wsc::shim::ShimCalloc(n, size);
}

WSC_SHIM_EXPORT void* realloc(void* ptr, size_t size) {
  return wsc::shim::ShimRealloc(ptr, size);
}

WSC_SHIM_EXPORT void* reallocarray(void* ptr, size_t n, size_t size) {
  return wsc::shim::ShimReallocArray(ptr, n, size);
}

WSC_SHIM_EXPORT int posix_memalign(void** out, size_t align, size_t size) {
  return wsc::shim::ShimPosixMemalign(out, align, size);
}

WSC_SHIM_EXPORT void* aligned_alloc(size_t align, size_t size) {
  return wsc::shim::ShimAlignedAlloc(align, size);
}

WSC_SHIM_EXPORT void* memalign(size_t align, size_t size) {
  return wsc::shim::ShimMemalign(align, size);
}

WSC_SHIM_EXPORT void* valloc(size_t size) {
  return wsc::shim::ShimValloc(size);
}

WSC_SHIM_EXPORT void* pvalloc(size_t size) {
  return wsc::shim::ShimPvalloc(size);
}

WSC_SHIM_EXPORT size_t malloc_usable_size(void* ptr) {
  return wsc::shim::ShimUsableSize(ptr);
}

// ---- wscmalloc introspection (for benches and tests; benign to call
// via dlsym from any process that preloaded the shim) ----

WSC_SHIM_EXPORT int wscmalloc_is_active() {
  return wsc::shim::ShimIsActive() ? 1 : 0;
}

WSC_SHIM_EXPORT const char* wscmalloc_backend() {
  return wsc::shim::ShimBackendName();
}

WSC_SHIM_EXPORT size_t wscmalloc_release_memory(size_t bytes) {
  return wsc::shim::ShimReleaseMemory(bytes);
}

WSC_SHIM_EXPORT size_t wscmalloc_stats_json(char* buf, size_t cap) {
  return wsc::shim::ShimStatsJson(buf, cap);
}

WSC_SHIM_EXPORT size_t wscmalloc_stats_timeseries(char* buf, size_t cap) {
  return wsc::shim::ShimStatsTimeseries(buf, cap);
}
