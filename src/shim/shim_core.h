// Core of the drop-in malloc shim (libwscmalloc.so).
//
// interpose.cc exports the C symbols (malloc/free/...); this layer owns
// the hard parts: bootstrap-safe one-time initialization, per-thread
// cache registration, reentrancy (allocator metadata — vector growth,
// released-range map nodes — must not recurse into the allocator that is
// mid-operation), fork handling, and errno-correct OOM.
//
// Split from interpose.cc so tests/shim can link the logic directly and
// exercise it without LD_PRELOAD.

#ifndef WSC_SHIM_SHIM_CORE_H_
#define WSC_SHIM_SHIM_CORE_H_

#include <cstddef>

namespace wsc::shim {

// The malloc-family entry points. All are safe to call at any point
// after process start, from any thread, including reentrantly from
// inside the allocator's own bookkeeping.
void* ShimMalloc(size_t size);
void ShimFree(void* ptr);
void* ShimCalloc(size_t n, size_t size);
void* ShimRealloc(void* ptr, size_t size);
void* ShimReallocArray(void* ptr, size_t n, size_t size);
int ShimPosixMemalign(void** out, size_t align, size_t size);
void* ShimAlignedAlloc(size_t align, size_t size);
void* ShimMemalign(size_t align, size_t size);
void* ShimValloc(size_t size);
void* ShimPvalloc(size_t size);
size_t ShimUsableSize(void* ptr);

// ---- Introspection (exported as wscmalloc_* from the .so) ----

// True once the real allocator constructed (false while still serving
// everything from the bootstrap arena).
bool ShimIsActive();
// "real-memory" once active.
const char* ShimBackendName();
// madvise up to `bytes` of pending freed memory back to the OS; returns
// bytes newly released.
size_t ShimReleaseMemory(size_t bytes);
// Writes a one-line JSON object of allocator counters (allocations,
// frees, footprint_bytes, released_bytes, bootstrap_bytes, threads) into
// buf; returns bytes written (excluding NUL), truncating at cap.
// Counters are gathered from racy relaxed reads — intended for
// end-of-run sidecars, not invariants while threads are hot.
size_t ShimStatsJson(char* buf, size_t cap);
// Writes the live statsz sample ring (most recent ~64 samples, oldest
// first) as pid-tagged NDJSON lines into buf; returns bytes written
// (excluding NUL), truncating at whole-line granularity. The ring is
// populated by the background stats thread, which starts with the
// allocator when WSC_SHIM_STATSZ_PATH or WSC_SHIM_STATSZ_INTERVAL_MS is
// set in the environment (see shim_core.cc "Live statsz" for the
// contract: periodic dumps, SIGUSR2-triggered dumps, fork restart).
// Returns 0 when the stats thread never ran.
size_t ShimStatsTimeseries(char* buf, size_t cap);

}  // namespace wsc::shim

#endif  // WSC_SHIM_SHIM_CORE_H_
