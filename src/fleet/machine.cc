#include "fleet/machine.h"

#include <algorithm>

#include "common/logging.h"
#include "tcmalloc/malloc_extension.h"

namespace wsc::fleet {

namespace {

// LLC model resident-line budget per domain: 256 Ki modeled lines
// (16 MiB) per domain, large enough that an object freed on one domain and
// re-allocated on another still has resident lines — the cross-domain
// transfer the NUCA transfer cache eliminates (Section 4.2).
constexpr size_t kLlcLinesPerDomain = 256 * 1024;

// Footprint sampling cadence: fine enough that time-averaged memory
// metrics resolve sub-percent A/B deltas on runs of tens of seconds.
constexpr SimTime kSamplePeriod = Milliseconds(500);

}  // namespace

tcmalloc::AllocatorConfig ResolveTopology(tcmalloc::AllocatorConfig config,
                                          const hw::CpuTopology& topology) {
  config.num_llc_domains = topology.num_domains();
  if (config.numa_aware) {
    config.num_numa_nodes = topology.spec().sockets;
  }
  return config;
}

Machine::Machine(const hw::PlatformSpec& platform,
                 std::vector<workload::WorkloadSpec> workloads,
                 const tcmalloc::AllocatorConfig& base_config, uint64_t seed,
                 std::vector<PressureEvent> pressure_events,
                 size_t trace_events_per_process, MachineFaults faults,
                 uint64_t selfprof_interval, SimTime timeseries_interval,
                 DeploySchedule deploys)
    : topology_(platform),
      base_config_(base_config),
      trace_capacity_(trace_events_per_process),
      selfprof_interval_(selfprof_interval),
      timeseries_interval_(timeseries_interval),
      faults_(std::move(faults)),
      deploys_(std::move(deploys)),
      pressure_events_(std::move(pressure_events)) {
  WSC_CHECK(!workloads.empty());
  Rng rng(seed);

  // Partition the machine's logical CPUs into contiguous blocks, one per
  // co-located *primary* process (the control-plane CPU mask). Scenario
  // antagonists (spec.antagonist, always appended after the primaries) do
  // not participate in the partition: a noisy neighbor spans the whole
  // machine, and its presence must leave every victim's CPU mask, seeds,
  // and arena slot exactly as they were without it.
  int total_cpus = topology_.num_cpus();
  int n = static_cast<int>(workloads.size());
  int n_primary = 0;
  for (const workload::WorkloadSpec& w : workloads) {
    if (!w.antagonist) ++n_primary;
  }
  WSC_CHECK_GT(n_primary, 0);
  int per_process = std::max(1, total_cpus / n_primary);
  next_arena_index_ = n;  // restarts recycle slots from the free pool

  int primary_ordinal = 0;
  for (int i = 0; i < n; ++i) {
    const workload::WorkloadSpec& spec = workloads[static_cast<size_t>(i)];
    std::vector<int> cpus;
    if (spec.antagonist) {
      cpus.resize(static_cast<size_t>(total_cpus));
      for (int c = 0; c < total_cpus; ++c) cpus[static_cast<size_t>(c)] = c;
    } else {
      int first = (primary_ordinal * per_process) % total_cpus;
      for (int c = 0; c < per_process; ++c) {
        cpus.push_back((first + c) % total_cpus);
      }
      ++primary_ordinal;
    }
    // Seeds fork in the same order as before faults existed (LLC first,
    // then driver), keeping fault-free machines bit-identical to history.
    uint64_t llc_seed = rng.Fork();
    uint64_t driver_seed = rng.Fork();
    processes_.push_back(MakeProcess(i, spec, std::move(cpus), llc_seed,
                                     driver_seed, /*arena_index=*/i));
  }
}

int Machine::AcquireArenaSlot() {
  if (!free_arena_slots_.empty()) {
    int slot = free_arena_slots_.back();
    free_arena_slots_.pop_back();
    return slot;
  }
  return next_arena_index_++;
}

void Machine::ReleaseArenaSlot(int slot) {
  // Keep the pool sorted descending so Acquire pops the smallest slot:
  // reuse is deterministic and the densest prefix of the table stays hot.
  auto it = std::lower_bound(free_arena_slots_.begin(),
                             free_arena_slots_.end(), slot,
                             [](int a, int b) { return a > b; });
  free_arena_slots_.insert(it, slot);
}

std::unique_ptr<Machine::Process> Machine::MakeProcess(
    int workload_index, const workload::WorkloadSpec& spec,
    std::vector<int> cpus, uint64_t llc_seed, uint64_t driver_seed,
    int arena_index, SimTime start_time) {
  auto process = std::make_unique<Process>();
  process->spec = spec;
  process->workload_index = workload_index;
  process->cpus = cpus;
  process->arena_slot = arena_index;
  process->start_time = start_time;
  process->last_sample = start_time;

  tcmalloc::AllocatorConfig config = ResolveTopology(base_config_, topology_);
  if (config.per_thread_front_end) {
    // Legacy per-thread caches: one front-end cache per thread.
    config.num_vcpus = std::max(1, process->spec.max_threads);
  } else {
    // Dense vCPU ids: populate only as many caches as the process can
    // use (bounded by its CPU mask).
    config.num_vcpus =
        std::max(1, std::min<int>(process->spec.max_threads,
                                  static_cast<int>(cpus.size())));
  }
  // Disjoint arenas per process on the same machine (16 TiB stride, larger
  // than any arena). Restarted processes take a fresh slot: a fresh exec
  // maps a fresh address space.
  config.arena_base =
      (uintptr_t{1} << 44) * (1 + static_cast<uintptr_t>(arena_index));

  process->allocator = std::make_unique<tcmalloc::Allocator>(config);
  if (selfprof_interval_ > 0) {
    process->profiler =
        std::make_unique<prof::SelfProfiler>(selfprof_interval_);
  }
  if (trace_capacity_ > 0) {
    process->recorder = std::make_unique<trace::FlightRecorder>(trace_capacity_);
    process->allocator->SetFlightRecorder(process->recorder.get());
  }
  size_t wi = static_cast<size_t>(workload_index);
  if (wi < faults_.fault_plans.size() && !faults_.fault_plans[wi].Empty()) {
    process->injector =
        std::make_unique<tcmalloc::FaultInjector>(faults_.fault_plans[wi]);
    process->allocator->SetFaultInjector(process->injector.get());
  }
  if (timeseries_interval_ > 0) {
    process->series = std::make_unique<telemetry::IntervalSeries>();
    // First boundary strictly after the local-timeline origin (deploy
    // replacements rejoin the shared clock mid-run).
    process->next_capture =
        (start_time / timeseries_interval_ + 1) * timeseries_interval_;
  }
  process->tlb = std::make_unique<hw::TlbSimulator>();
  process->llc =
      std::make_unique<hw::LlcModel>(&topology_, kLlcLinesPerDomain, llc_seed);
  process->driver = std::make_unique<workload::Driver>(
      process->spec, process->allocator.get(), &topology_, std::move(cpus),
      process->llc.get(), process->tlb.get(), driver_seed, start_time);
  return process;
}

void Machine::SampleFootprint(Process& p) {
  SimTime now = p.driver->now();
  SimTime dt = now - p.last_sample;
  if (dt <= 0) return;
  tcmalloc::HeapStats heap = p.allocator->CollectStats();
  p.heap_byte_seconds +=
      static_cast<double>(heap.HeapBytes()) * static_cast<double>(dt);
  p.live_byte_seconds +=
      static_cast<double>(heap.live_bytes) * static_cast<double>(dt);
  p.allocator->RecordHeapSample(heap);
  p.peak_heap_bytes = std::max(p.peak_heap_bytes, heap.HeapBytes());
  p.last_sample = now;
  ApplyPressure(p);
}

void Machine::ApplyPressure(Process& p) {
  if (pressure_events_.empty()) return;
  SimTime now = p.driver->now();
  double fraction = 1.0;
  for (const PressureEvent& e : pressure_events_) {
    if (now >= e.start && now < e.end) {
      fraction = std::min(fraction, e.limit_fraction);
    }
  }
  tcmalloc::MallocExtension extension(p.allocator.get());
  if (fraction < 1.0 && p.peak_heap_bytes > 0) {
    size_t target = static_cast<size_t>(
        static_cast<double>(p.peak_heap_bytes) * fraction);
    extension.SetMemoryLimit(tcmalloc::MemoryLimitKind::kSoft,
                             std::max<size_t>(target, 1));
  } else {
    // Event window over: restore the configured limit (0 = none).
    extension.SetMemoryLimit(tcmalloc::MemoryLimitKind::kSoft,
                             p.allocator->config().soft_limit_bytes);
  }
}

void Machine::Run(SimTime duration, uint64_t max_requests) {
  // Interleave processes by next-event order so co-located workloads share
  // the timeline.
  bool any_active = true;
  std::vector<SimTime> next_sample(processes_.size(), kSamplePeriod);
  while (any_active) {
    any_active = false;
    // Step the process with the smallest local clock.
    Process* lowest = nullptr;
    size_t lowest_idx = 0;
    for (size_t i = 0; i < processes_.size(); ++i) {
      Process& p = *processes_[i];
      if (p.done) continue;
      if (lowest == nullptr || p.driver->now() < lowest->driver->now()) {
        lowest = &p;
        lowest_idx = i;
      }
    }
    if (lowest == nullptr) break;
    // Machine OOM kill: fires once, when the machine's local timeline (the
    // minimum process clock — exactly `lowest`) crosses the planned kill
    // time. Restarting invalidates `lowest`, so re-select next iteration.
    if (!oom_fired_ && faults_.oom_kill_time > 0 &&
        lowest->driver->now() >= faults_.oom_kill_time) {
      oom_fired_ = true;
      OomKillAndRestart(next_sample);
      any_active = true;
      continue;
    }
    // Deploy wave: when the machine's local timeline (the minimum process
    // clock — exactly `lowest`) crosses the next scheduled restart, every
    // live process is retired and respawned in place. Restarting
    // invalidates `lowest`, so re-select next iteration.
    if (next_deploy_ < deploys_.restart_times.size() &&
        lowest->driver->now() >= deploys_.restart_times[next_deploy_]) {
      DeployRestartAll(next_sample, next_deploy_);
      ++next_deploy_;
      any_active = true;
      continue;
    }
    {
      // The worker thread samples into whichever process it is currently
      // simulating; the install is scoped to the Step so co-located
      // processes never share a tick counter.
      prof::ScopedInstall install(lowest->profiler.get());
      WSC_PROF_SCOPE("machine/ProcessLoop");
      lowest->driver->Step();
    }
    if (lowest->driver->now() >= next_sample[lowest_idx]) {
      SampleFootprint(*lowest);
      next_sample[lowest_idx] = lowest->driver->now() + kSamplePeriod;
    }
    if (lowest->series != nullptr &&
        lowest->driver->now() >= lowest->next_capture) {
      // The interval index is the boundary number on the logical clock, so
      // co-located processes (and every machine in the fleet) produce
      // alignable indices. A step that jumps several boundaries captures
      // once and leaves a gap.
      uint64_t index = static_cast<uint64_t>(lowest->driver->now() /
                                             timeseries_interval_);
      double t = static_cast<double>(index) *
                 static_cast<double>(timeseries_interval_) / 1e9;
      CaptureTimeseries(*lowest, index, t,
                        lowest->allocator->TelemetrySnapshot());
      lowest->next_capture =
          static_cast<SimTime>(index + 1) * timeseries_interval_;
    }
    if (lowest->driver->now() >= duration ||
        lowest->driver->metrics().requests >= max_requests) {
      SampleFootprint(*lowest);
      lowest->done = true;
    }
    for (const auto& p : processes_) {
      if (!p->done) {
        any_active = true;
        break;
      }
    }
  }

  // Finalize results: surviving processes first (process order), then the
  // OOM-killed instances captured mid-run (kill order).
  results_.clear();
  results_.reserve(processes_.size() + killed_results_.size());
  for (const auto& p : processes_) {
    results_.push_back(FinalizeResult(*p));
  }
  for (ProcessResult& r : killed_results_) {
    results_.push_back(std::move(r));
  }
  killed_results_.clear();
}

void Machine::CaptureTimeseries(Process& p, uint64_t index, double t_seconds,
                                const telemetry::Snapshot& snapshot) const {
  p.series->Capture(index, t_seconds, snapshot);
  // Footprint distribution: one point per interval, the fleet CDF input
  // (Fig. 3-style percentiles without retaining per-machine data).
  const telemetry::MetricSample* heap =
      snapshot.Find("allocator", "heap_bytes");
  if (heap != nullptr) {
    p.series->Sketch("footprint_bytes").Record(heap->gauge);
  }
  // Per-interval mean allocation latency, weighted by the interval's
  // allocation count — the alloc-latency class distribution.
  const workload::DriverMetrics& m = p.driver->metrics();
  uint64_t allocs = m.allocations - p.captured_allocations;
  if (allocs > 0) {
    double ns = (m.malloc_ns - p.captured_malloc_ns) /
                static_cast<double>(allocs);
    p.series->Sketch("alloc_latency_ns").Record(ns, allocs);
  }
  p.captured_malloc_ns = m.malloc_ns;
  p.captured_allocations = m.allocations;
}

ProcessResult Machine::FinalizeResult(Process& p) const {
  ProcessResult r;
  r.workload_name = p.spec.name;
  r.workload_index = p.workload_index;
  r.driver = p.driver->metrics();
  r.heap = p.allocator->CollectStats();
  SimTime elapsed = std::max<SimTime>(p.driver->now() - p.start_time, 1);
  r.avg_heap_bytes = p.heap_byte_seconds / static_cast<double>(elapsed);
  r.avg_live_bytes = p.live_byte_seconds / static_cast<double>(elapsed);
  if (r.avg_heap_bytes == 0) {
    r.avg_heap_bytes = static_cast<double>(r.heap.HeapBytes());
    r.avg_live_bytes = static_cast<double>(r.heap.live_bytes);
  }
  r.hugepage_coverage = p.allocator->HugepageCoverage();
  r.tlb = p.tlb->stats();
  r.llc = p.llc->stats();
  r.malloc_cycles = p.allocator->cycle_breakdown();
  r.tier_hits = p.allocator->alloc_tier_hits();
  r.telemetry = p.allocator->TelemetrySnapshot();
  if (p.series != nullptr) {
    // Drain interval: whatever accumulated since the last boundary, at an
    // index strictly past every captured one so restarts and stragglers
    // merge cleanly.
    uint64_t boundary =
        static_cast<uint64_t>(p.driver->now() / timeseries_interval_) + 1;
    if (!p.series->intervals().empty()) {
      boundary = std::max(boundary, p.series->intervals().back().index + 1);
    }
    CaptureTimeseries(p, boundary,
                      static_cast<double>(p.driver->now()) / 1e9, r.telemetry);
    r.timeseries = std::move(*p.series);
    *p.series = telemetry::IntervalSeries();
  }
  if (p.recorder != nullptr) r.trace = p.recorder->Drain();
  if (p.profiler != nullptr) r.self_profile = p.profiler->Folded();
  r.heap_profile = p.allocator->CollectHeapProfile();
  r.ghz = topology_.spec().ghz;
  return r;
}

void Machine::OomKillAndRestart(std::vector<SimTime>& next_sample) {
  // The machine OOM killer picks the biggest-footprint live process (ties
  // break to the lowest index, keeping the choice deterministic).
  size_t victim = processes_.size();
  size_t best = 0;
  for (size_t i = 0; i < processes_.size(); ++i) {
    if (processes_[i]->done) continue;
    size_t fp = processes_[i]->allocator->FootprintBytes();
    if (victim == processes_.size() || fp > best) {
      victim = i;
      best = fp;
    }
  }
  if (victim == processes_.size()) return;
  Process& p = *processes_[victim];

  // Process death: drain frees every live object at once, and the dying
  // instance's metrics become its kill report.
  SampleFootprint(p);
  {
    // Death drain is simulated work too: profile it against the dying
    // process (deterministic — the kill point is planned, not raced).
    prof::ScopedInstall install(p.profiler.get());
    WSC_PROF_SCOPE("machine/OomDrain");
    p.driver->Drain();
  }
  ProcessResult killed = FinalizeResult(p);
  killed.oom_killed = true;
  killed_results_.push_back(std::move(killed));
  ++oom_kills_;

  // Restart in place: same binary and CPU mask, fresh allocator and
  // hardware-model state, a seed forked from the planned restart seed, and
  // a fresh local timeline (like a fresh exec). The dead instance's arena
  // slot returns to the pool and the replacement takes the smallest free
  // slot, so restart storms never grow the stride table. The replacement
  // re-experiences its fault plan from call index zero.
  Rng rng(faults_.restart_seed + 0x9E3779B9u * static_cast<uint64_t>(victim));
  uint64_t llc_seed = rng.Fork();
  uint64_t driver_seed = rng.Fork();
  int workload_index = p.workload_index;
  workload::WorkloadSpec spec = p.spec;
  std::vector<int> cpus = p.cpus;
  ReleaseArenaSlot(p.arena_slot);
  processes_[victim] = MakeProcess(workload_index, spec, std::move(cpus),
                                   llc_seed, driver_seed, AcquireArenaSlot());
  next_sample[victim] = kSamplePeriod;
}

void Machine::DeployRestartAll(std::vector<SimTime>& next_sample,
                               size_t wave) {
  for (size_t i = 0; i < processes_.size(); ++i) {
    Process& p = *processes_[i];
    if (p.done) continue;
    // Graceful shutdown: the outgoing instance drains (frees everything,
    // flushes samplers) and its metrics become its retirement report.
    SampleFootprint(p);
    {
      prof::ScopedInstall install(p.profiler.get());
      WSC_PROF_SCOPE("machine/DeployDrain");
      p.driver->Drain();
    }
    ProcessResult retired = FinalizeResult(p);
    retired.deploy_restarted = true;
    killed_results_.push_back(std::move(retired));
    ++deploy_restarts_;

    // The replacement rejoins the shared clock where its predecessor
    // stopped (a deploy restarts a serving process mid-run; it does not
    // rewind the machine's timeline) and recycles the freed arena slot.
    SimTime start = p.driver->now();
    int workload_index = p.workload_index;
    workload::WorkloadSpec spec = p.spec;
    std::vector<int> cpus = p.cpus;
    Rng rng(deploys_.restart_seed +
            0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(wave + 1) +
            0x9E3779B9u * static_cast<uint64_t>(i));
    uint64_t llc_seed = rng.Fork();
    uint64_t driver_seed = rng.Fork();
    ReleaseArenaSlot(p.arena_slot);
    processes_[i] = MakeProcess(workload_index, spec, std::move(cpus),
                                llc_seed, driver_seed, AcquireArenaSlot(),
                                start);
    next_sample[i] = start + kSamplePeriod;
  }
}

}  // namespace wsc::fleet
