#include "fleet/parallel.h"

#include <atomic>
#include <algorithm>
#include <cstdlib>
#include <thread>
#include <vector>

namespace wsc::fleet {

int ResolveThreadCount(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("WSC_THREADS")) {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void ParallelFor(int n, int num_threads,
                 const std::function<void(int)>& body) {
  if (n <= 0) return;
  num_threads = std::min(num_threads, n);
  if (num_threads <= 1) {
    for (int i = 0; i < n; ++i) body(i);
    return;
  }

  std::atomic<int> next{0};
  auto worker = [&next, n, &body] {
    for (int i = next.fetch_add(1, std::memory_order_relaxed); i < n;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      body(i);
    }
  };
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(num_threads) - 1);
  for (int t = 1; t < num_threads; ++t) workers.emplace_back(worker);
  worker();  // the calling thread is worker 0
  for (std::thread& w : workers) w.join();
}

}  // namespace wsc::fleet
