// Machine model: one server running co-located workloads.
//
// WSC applications are co-located and constrained to CPU subsets by the
// control plane (Section 4.1). A Machine owns a platform topology and one
// simulated process per workload: each process has its own allocator
// instance (as in production, where every binary links its own TCMalloc),
// its own dTLB model, and its own LLC locality model (cross-process LLC
// interference is out of scope; the NUCA effects the paper studies are
// within-process object flows). Processes are interleaved on a shared
// timeline by next-event order.

#ifndef WSC_FLEET_MACHINE_H_
#define WSC_FLEET_MACHINE_H_

#include <memory>
#include <string>
#include <vector>

#include "hw/llc_model.h"
#include "hw/tlb.h"
#include "hw/topology.h"
#include "tcmalloc/allocator.h"
#include "telemetry/registry.h"
#include "trace/flight_recorder.h"
#include "trace/heap_profile.h"
#include "workload/driver.h"
#include "workload/profiles.h"

namespace wsc::fleet {

// One machine-level memory-pressure window: while the machine's local
// timeline is inside [start, end), every process's soft memory limit is
// retargeted to `limit_fraction` of its observed peak footprint (the
// control plane asking the binary to give memory back). Overlapping events
// compose by taking the tightest fraction. Outside all events, each
// process's configured soft limit (AllocatorConfig::soft_limit_bytes) is
// restored.
struct PressureEvent {
  SimTime start = 0;
  SimTime end = 0;
  double limit_fraction = 1.0;
};

// Resolves topology-derived knobs in `config` for a process placed on
// `topology`: the LLC domain count always comes from the machine, and the
// NUMA node count from its socket count when NUMA mode is on. This is the
// resolution Machine applies at placement time, exposed so tests can build
// placement-resolved configs (e.g. NUCA on a monolithic platform) without
// assigning config fields directly.
tcmalloc::AllocatorConfig ResolveTopology(tcmalloc::AllocatorConfig config,
                                          const hw::CpuTopology& topology);

// Final metrics of one process after a machine run.
struct ProcessResult {
  std::string workload_name;
  workload::DriverMetrics driver;
  tcmalloc::HeapStats heap;            // final heap snapshot
  double avg_heap_bytes = 0;           // time-averaged footprint
  double avg_live_bytes = 0;
  double hugepage_coverage = 0;        // page-heap coverage at end
  hw::TlbStats tlb;
  hw::LlcStats llc;
  tcmalloc::MallocCycleBreakdown malloc_cycles;
  tcmalloc::TierHitCounts tier_hits;
  // Full metric snapshot of the process's allocator, taken when the
  // process drains (its last sim-interval boundary). Snapshots merge
  // across processes/machines in index order (see fleet::MergedTelemetry).
  telemetry::Snapshot telemetry;
  // Drained flight-recorder contents (empty with capacity 0 when tracing
  // was off) and the process's heap profile, both taken at the same point
  // as `telemetry`. Merged machine-index ordered like telemetry.
  trace::TraceBuffer trace;
  trace::HeapProfile heap_profile;
  double ghz = 2.4;

  double LlcMpki() const {
    return llc.Mpki(driver.Instructions(ghz));
  }
  // Fraction of cycles spent walking the page table on dTLB misses.
  double DtlbWalkFraction() const {
    return driver.cpu_ns > 0 ? driver.tlb_stall_ns / driver.cpu_ns : 0.0;
  }
};

// One simulated server.
class Machine {
 public:
  // `trace_events_per_process` > 0 attaches a flight recorder of that
  // capacity to every process's allocator; the drained ring lands in
  // ProcessResult::trace.
  Machine(const hw::PlatformSpec& platform,
          std::vector<workload::WorkloadSpec> workloads,
          const tcmalloc::AllocatorConfig& base_config, uint64_t seed,
          std::vector<PressureEvent> pressure_events = {},
          size_t trace_events_per_process = 0);

  // Runs every process until its local clock reaches `duration` or it has
  // executed `max_requests` requests, whichever comes first, then drains.
  void Run(SimTime duration, uint64_t max_requests);

  // Results are valid after Run().
  const std::vector<ProcessResult>& results() const { return results_; }

  const hw::CpuTopology& topology() const { return topology_; }
  int num_processes() const { return static_cast<int>(processes_.size()); }
  workload::Driver& driver(int i) { return *processes_[i]->driver; }
  tcmalloc::Allocator& allocator(int i) { return *processes_[i]->allocator; }

 private:
  struct Process {
    workload::WorkloadSpec spec;
    // Declared before the allocator: ~Allocator drains leftover large
    // objects through the page heap, which emits trace events, so the
    // recorder must outlive it.
    std::unique_ptr<trace::FlightRecorder> recorder;  // null: tracing off
    std::unique_ptr<tcmalloc::Allocator> allocator;
    std::unique_ptr<hw::TlbSimulator> tlb;
    std::unique_ptr<hw::LlcModel> llc;
    std::unique_ptr<workload::Driver> driver;
    // Time-weighted footprint accumulators.
    double heap_byte_seconds = 0;
    double live_byte_seconds = 0;
    SimTime last_sample = 0;
    bool done = false;
    // Peak observed footprint; pressure events retarget soft limits as a
    // fraction of this.
    size_t peak_heap_bytes = 0;
  };

  void SampleFootprint(Process& p);

  // Retargets `p`'s soft limit for the pressure events active at its
  // local time (called at footprint-sample boundaries).
  void ApplyPressure(Process& p);

  hw::CpuTopology topology_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<ProcessResult> results_;
  std::vector<PressureEvent> pressure_events_;
};

}  // namespace wsc::fleet

#endif  // WSC_FLEET_MACHINE_H_
