// Machine model: one server running co-located workloads.
//
// WSC applications are co-located and constrained to CPU subsets by the
// control plane (Section 4.1). A Machine owns a platform topology and one
// simulated process per workload: each process has its own allocator
// instance (as in production, where every binary links its own TCMalloc),
// its own dTLB model, and its own LLC locality model (cross-process LLC
// interference is out of scope; the NUCA effects the paper studies are
// within-process object flows). Processes are interleaved on a shared
// timeline by next-event order.

#ifndef WSC_FLEET_MACHINE_H_
#define WSC_FLEET_MACHINE_H_

#include <memory>
#include <string>
#include <vector>

#include "hw/llc_model.h"
#include "hw/tlb.h"
#include "hw/topology.h"
#include "profiler/self_profiler.h"
#include "tcmalloc/allocator.h"
#include "tcmalloc/fault_injection.h"
#include "telemetry/registry.h"
#include "telemetry/timeseries.h"
#include "trace/flight_recorder.h"
#include "trace/heap_profile.h"
#include "workload/driver.h"
#include "workload/profiles.h"

namespace wsc::fleet {

// One machine-level memory-pressure window: while the machine's local
// timeline is inside [start, end), every process's soft memory limit is
// retargeted to `limit_fraction` of its observed peak footprint (the
// control plane asking the binary to give memory back). Overlapping events
// compose by taking the tightest fraction. Outside all events, each
// process's configured soft limit (AllocatorConfig::soft_limit_bytes) is
// restored.
struct PressureEvent {
  SimTime start = 0;
  SimTime end = 0;
  double limit_fraction = 1.0;
};

// Machine-level fault script, planned by the fleet after the machine-seed
// fork (fleet.cc) so that enabling faults never perturbs machine
// composition. `fault_plans[i]` is installed on process i's allocator as a
// FaultInjector; an empty vector (or an empty plan) means no injection.
// `oom_kill_time` > 0 schedules one machine OOM kill: when the machine's
// local timeline (the minimum process clock) crosses it, the
// biggest-footprint process is killed — its result is captured with
// `oom_killed` set — and restarted in place with a seed forked from
// `restart_seed`, a fresh arena, and a fresh local timeline.
struct MachineFaults {
  std::vector<tcmalloc::FaultPlan> fault_plans;
  SimTime oom_kill_time = 0;  // 0 = no kill
  uint64_t restart_seed = 0;
};

// Deploy-wave schedule, planned by the fleet scenario layer after the
// machine-seed fork. Each time in `restart_times` (sorted ascending, on
// the machine's local timeline) restarts every live process in place: the
// old instance drains and reports (tagged deploy_restarted), and its
// replacement — seeded from `restart_seed` — rejoins the shared clock at
// the restart instant and recycles the old instance's arena slot, so even
// hundred-restart waves keep the arena stride table bounded.
struct DeploySchedule {
  std::vector<SimTime> restart_times;
  uint64_t restart_seed = 0;
};

// Resolves topology-derived knobs in `config` for a process placed on
// `topology`: the LLC domain count always comes from the machine, and the
// NUMA node count from its socket count when NUMA mode is on. This is the
// resolution Machine applies at placement time, exposed so tests can build
// placement-resolved configs (e.g. NUCA on a monolithic platform) without
// assigning config fields directly.
tcmalloc::AllocatorConfig ResolveTopology(tcmalloc::AllocatorConfig config,
                                          const hw::CpuTopology& topology);

// Final metrics of one process after a machine run.
struct ProcessResult {
  std::string workload_name;
  // Index into the machine's workload list (and the fleet plan's `ranks`).
  // With OOM restarts a machine emits more results than workloads, so rank
  // attribution must go through this, not the result position.
  int workload_index = 0;
  // True when this result belongs to a process the machine OOM killer
  // terminated mid-run (a restarted instance reports separately).
  bool oom_killed = false;
  // True when this result belongs to an instance retired by a deploy-wave
  // restart (its replacement reports separately).
  bool deploy_restarted = false;
  workload::DriverMetrics driver;
  tcmalloc::HeapStats heap;            // final heap snapshot
  double avg_heap_bytes = 0;           // time-averaged footprint
  double avg_live_bytes = 0;
  double hugepage_coverage = 0;        // page-heap coverage at end
  hw::TlbStats tlb;
  hw::LlcStats llc;
  tcmalloc::MallocCycleBreakdown malloc_cycles;
  tcmalloc::TierHitCounts tier_hits;
  // Full metric snapshot of the process's allocator, taken when the
  // process drains (its last sim-interval boundary). Snapshots merge
  // across processes/machines in index order (see fleet::MergedTelemetry).
  telemetry::Snapshot telemetry;
  // Drained flight-recorder contents (empty with capacity 0 when tracing
  // was off) and the process's heap profile, both taken at the same point
  // as `telemetry`. Merged machine-index ordered like telemetry.
  trace::TraceBuffer trace;
  trace::HeapProfile heap_profile;
  // Folded self-profile of the process's own hot paths (empty unless the
  // machine ran with selfprof_interval > 0). Counts merge commutatively,
  // so MergedSelfProfile is bit-identical for any worker-thread count.
  prof::FoldedProfile self_profile;
  // Interval time series of this process's telemetry (empty unless the
  // machine ran with timeseries_interval > 0): counter/histogram deltas
  // and gauge samples at logical interval boundaries, plus footprint and
  // alloc-latency sketches. Interval indices are boundary numbers on the
  // shared logical clock, so series from co-located processes (and the
  // whole fleet) align by index and merge exactly.
  telemetry::IntervalSeries timeseries;
  double ghz = 2.4;

  double LlcMpki() const {
    return llc.Mpki(driver.Instructions(ghz));
  }
  // Fraction of cycles spent walking the page table on dTLB misses.
  double DtlbWalkFraction() const {
    return driver.cpu_ns > 0 ? driver.tlb_stall_ns / driver.cpu_ns : 0.0;
  }
};

// One simulated server.
class Machine {
 public:
  // `trace_events_per_process` > 0 attaches a flight recorder of that
  // capacity to every process's allocator; the drained ring lands in
  // ProcessResult::trace. `selfprof_interval` > 0 attaches a sampling
  // self-profiler to every process (one sample per that many scope
  // entries); the folded result lands in ProcessResult::self_profile.
  // `timeseries_interval` > 0 captures every process's telemetry deltas at
  // that logical-clock cadence into ProcessResult::timeseries.
  Machine(const hw::PlatformSpec& platform,
          std::vector<workload::WorkloadSpec> workloads,
          const tcmalloc::AllocatorConfig& base_config, uint64_t seed,
          std::vector<PressureEvent> pressure_events = {},
          size_t trace_events_per_process = 0, MachineFaults faults = {},
          uint64_t selfprof_interval = 0, SimTime timeseries_interval = 0,
          DeploySchedule deploys = {});

  // Runs every process until its local clock reaches `duration` or it has
  // executed `max_requests` requests, whichever comes first, then drains.
  void Run(SimTime duration, uint64_t max_requests);

  // Results are valid after Run(). Surviving processes come first in
  // process order; results of OOM-killed instances are appended after, in
  // kill order, tagged with their workload_index and oom_killed.
  const std::vector<ProcessResult>& results() const { return results_; }

  const hw::CpuTopology& topology() const { return topology_; }
  int num_processes() const { return static_cast<int>(processes_.size()); }
  int oom_kills() const { return oom_kills_; }
  int deploy_restarts() const { return deploy_restarts_; }
  // Arena stride slots ever handed out: the slot table's high-water mark.
  // With recycling this stays at the co-location count no matter how many
  // restarts a run performs (the bounded-table guarantee).
  int arena_slots_high_water() const { return next_arena_index_; }
  int free_arena_slots() const {
    return static_cast<int>(free_arena_slots_.size());
  }
  workload::Driver& driver(int i) { return *processes_[i]->driver; }
  tcmalloc::Allocator& allocator(int i) { return *processes_[i]->allocator; }

 private:
  struct Process {
    workload::WorkloadSpec spec;
    int workload_index = 0;
    std::vector<int> cpus;  // control-plane CPU mask (kept for restarts)
    int arena_slot = 0;     // arena stride slot (recycled on restart)
    // Local-timeline origin: 0 except for deploy-restarted replacements,
    // which rejoin the shared clock at the restart instant.
    SimTime start_time = 0;
    // Declared before the allocator: ~Allocator drains leftover large
    // objects through the page heap, which emits trace events, so the
    // recorder must outlive it. The fault injector likewise outlives the
    // allocator that consults it.
    std::unique_ptr<trace::FlightRecorder> recorder;  // null: tracing off
    std::unique_ptr<tcmalloc::FaultInjector> injector;  // null: no faults
    // Sampling self-profiler for this process's hot paths (null: profiling
    // off). Installed into tls_profiler only around this process's Step()
    // calls, so its tick counter is process-local and the profile is
    // bit-identical for any worker-thread count.
    std::unique_ptr<prof::SelfProfiler> profiler;
    std::unique_ptr<tcmalloc::Allocator> allocator;
    std::unique_ptr<hw::TlbSimulator> tlb;
    std::unique_ptr<hw::LlcModel> llc;
    std::unique_ptr<workload::Driver> driver;
    // Interval time series (null: timeseries off). Restarted processes get
    // a fresh series starting at interval 0, like a fresh exec.
    std::unique_ptr<telemetry::IntervalSeries> series;
    SimTime next_capture = 0;  // next timeseries boundary
    // Driver totals at the last capture, for per-interval alloc latency.
    double captured_malloc_ns = 0;
    uint64_t captured_allocations = 0;
    // Time-weighted footprint accumulators.
    double heap_byte_seconds = 0;
    double live_byte_seconds = 0;
    SimTime last_sample = 0;
    bool done = false;
    // Peak observed footprint; pressure events retarget soft limits as a
    // fraction of this.
    size_t peak_heap_bytes = 0;
  };

  void SampleFootprint(Process& p);

  // Retargets `p`'s soft limit for the pressure events active at its
  // local time (called at footprint-sample boundaries).
  void ApplyPressure(Process& p);

  // Builds one fully wired process: placement-resolved allocator (arena at
  // `arena_index` stride), optional flight recorder and fault injector,
  // hardware models, and driver. Used at construction and for OOM
  // restarts.
  std::unique_ptr<Process> MakeProcess(int workload_index,
                                       const workload::WorkloadSpec& spec,
                                       std::vector<int> cpus,
                                       uint64_t llc_seed, uint64_t driver_seed,
                                       int arena_index,
                                       SimTime start_time = 0);

  // Arena slot pool: Acquire returns the smallest recycled slot, or grows
  // the table when none is free; Release returns a dead instance's slot.
  int AcquireArenaSlot();
  void ReleaseArenaSlot(int slot);

  // Captures one timeseries interval for `p`: telemetry deltas plus the
  // footprint and per-interval alloc-latency sketches.
  void CaptureTimeseries(Process& p, uint64_t index, double t_seconds,
                         const telemetry::Snapshot& snapshot) const;

  // Captures the final metrics of one process (used at the end of Run and
  // at OOM-kill time for the dying instance), including the series' final
  // drain interval.
  ProcessResult FinalizeResult(Process& p) const;

  // Kills the biggest-footprint live process (draining it and recording
  // its result with oom_killed set) and restarts it in place.
  void OomKillAndRestart(std::vector<SimTime>& next_sample);

  // One deploy-wave restart: retires every live process (results tagged
  // deploy_restarted) and respawns each in place at its own local time,
  // recycling arena slots. `wave` indexes the restart within the schedule
  // and salts the replacement seeds.
  void DeployRestartAll(std::vector<SimTime>& next_sample, size_t wave);

  hw::CpuTopology topology_;
  tcmalloc::AllocatorConfig base_config_;
  size_t trace_capacity_ = 0;
  uint64_t selfprof_interval_ = 0;
  SimTime timeseries_interval_ = 0;
  MachineFaults faults_;
  DeploySchedule deploys_;
  size_t next_deploy_ = 0;  // cursor into deploys_.restart_times
  bool oom_fired_ = false;
  int oom_kills_ = 0;
  int deploy_restarts_ = 0;
  // Arena stride slot table: slots ever handed out number
  // [0, next_arena_index_); dead instances' slots return to the pool and
  // are reused smallest-first, keeping the table bounded across restarts.
  int next_arena_index_ = 0;
  std::vector<int> free_arena_slots_;  // sorted descending (smallest last)
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<ProcessResult> results_;
  std::vector<ProcessResult> killed_results_;
  std::vector<PressureEvent> pressure_events_;
};

}  // namespace wsc::fleet

#endif  // WSC_FLEET_MACHINE_H_
