// Traffic-scenario layer: planet-scale load shapes on the logical clock.
//
// The paper's fleet characterization averages over traffic that is anything
// but stationary: load follows the sun, releases roll across the fleet in
// waves, and co-located neighbors steal caches. This layer composes those
// shapes deterministically on top of the existing pressure/fault planners:
//
//   - diurnal curves with regional phase shifts (machines assigned to K
//     regions; each region's sinusoid is phase-shifted by its longitude),
//   - flash crowds (a sudden multi-x load on one region for a window),
//   - deploy waves (a rolling mass restart of a fraction of machines,
//     exercising Machine's arena slot recycling), and
//   - antagonist co-location (a noisy-neighbor workload dropped onto a
//     machine, composed after the victims so their results are untouched).
//
// Planning follows the same discipline as pressure and faults
// (fleet::PlanMachines): everything is sampled per machine strictly after
// the machine-seed fork and draws the RNG only when enabled, so enabling a
// scenario never perturbs machine composition and every result stays
// bit-identical for any --threads value.

#ifndef WSC_FLEET_SCENARIO_H_
#define WSC_FLEET_SCENARIO_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/sim_clock.h"
#include "workload/workload.h"

namespace wsc::fleet {

// Diurnal load: every machine's request rate follows a sinusoid between
// `trough` and `peak`, phase-shifted by the machine's region so the fleet
// never breathes in unison (region r leads by r/regions of a cycle).
struct DiurnalSpec {
  bool enabled = false;
  double trough = 0.4;  // multiplier at the bottom of the curve
  double peak = 1.6;    // multiplier at the top
  double cycles = 1.0;  // full day-night cycles over the run
  // Piecewise sampling step for the multiplier curve (the driver applies
  // piecewise-constant phases; see workload::LoadPhase).
  SimTime step = Milliseconds(500);
};

// Flash crowd: the targeted region's load jumps `multiplier`-fold for the
// window [start_frac, start_frac + duration_frac) of the run, multiplying
// whatever the diurnal curve says.
struct FlashCrowdSpec {
  bool enabled = false;
  int region = 0;
  double multiplier = 3.0;
  double start_frac = 0.45;
  double duration_frac = 0.2;
};

// Deploy wave: `fraction` of machines (spread evenly across the fleet by
// index) each restart all their processes `restarts_per_machine` times,
// at instants rolled across the window [start_frac, end_frac) of the run
// in machine order — the fleet's rolling-release shape.
struct DeployWaveSpec {
  bool enabled = false;
  double fraction = 0.5;
  double start_frac = 0.3;
  double end_frac = 0.8;
  int restarts_per_machine = 1;
};

// Antagonist co-location: with `probability`, a machine gets a noisy
// neighbor (workload::AntagonistProfile) running at `load` times its base
// request rate (0 idles it: the co-location exists but does nothing —
// the control test for victim isolation).
struct AntagonistSpec {
  bool enabled = false;
  double probability = 0.5;
  double load = 1.0;
};

// A composable traffic scenario. Sub-specs combine freely; `regions`
// partitions machines round-robin by index (machine m is in region
// m % regions) without consuming randomness.
struct ScenarioConfig {
  bool enabled = false;
  int regions = 3;
  DiurnalSpec diurnal;
  FlashCrowdSpec flash;
  DeployWaveSpec deploy;
  AntagonistSpec antagonist;
};

// One machine's planned scenario: the composed load-multiplier step
// function for its processes, its deploy-restart schedule, and whether it
// hosts an antagonist.
struct MachineScenario {
  int region = 0;
  std::vector<workload::LoadPhase> load_phases;
  std::vector<SimTime> deploy_restarts;  // sorted ascending
  uint64_t deploy_restart_seed = 0;
  bool antagonist = false;
  double antagonist_load = 1.0;
};

// Plans machine `machine_index`'s slice of the scenario over a run of
// `duration`. Must be called strictly after the machine-seed fork; draws
// from `rng` only for enabled sub-specs (the antagonist coin flip and the
// deploy restart seed), so disabled scenarios consume no randomness.
MachineScenario PlanMachineScenario(const ScenarioConfig& config,
                                    int machine_index, int num_machines,
                                    SimTime duration, Rng& rng);

// The four named presets the CI scenario matrix sweeps.
const std::vector<std::string>& ScenarioNames();

// Preset by name ("diurnal", "flash-crowd", "deploy-wave", "antagonist");
// check-fails on an unknown name.
ScenarioConfig ScenarioByName(const std::string& name);

// The antagonist workload for a machine: AntagonistProfile with a single
// whole-run load phase at `load`.
workload::WorkloadSpec AntagonistWorkload(double load, SimTime duration);

}  // namespace wsc::fleet

#endif  // WSC_FLEET_SCENARIO_H_
