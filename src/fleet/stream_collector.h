// Streaming fleet aggregation: the bounded-memory half of warehouse scale.
//
// Fleet::Run() buffers every machine's full observation list before
// merging — O(machines) memory, which caps fleet size long before the
// paper's thousands of machines. StreamCollector is the GWP-style
// alternative: Fleet::RunStreaming folds each machine's observations into
// the collector in strict machine-index order the moment the fold cursor
// reaches them, then discards them. What survives is only the aggregate —
// one merged telemetry snapshot, one merged interval series, a handful of
// fleet distribution sketches, and scalar totals: O(metrics × intervals),
// independent of machine count (asserted by tests and the CI stream-
// scaling smoke).
//
// The fold order is exactly the merge order of the buffered path, so every
// aggregate is bit-identical to Run() + MergedTelemetry/MergedTimeSeries
// for any worker-thread count.

#ifndef WSC_FLEET_STREAM_COLLECTOR_H_
#define WSC_FLEET_STREAM_COLLECTOR_H_

#include <cstddef>
#include <cstdint>

#include "fleet/fleet.h"
#include "profiler/self_profiler.h"
#include "telemetry/registry.h"
#include "telemetry/timeseries.h"

namespace wsc::fleet {

// Not thread-safe: Fleet::RunStreaming serializes Collect calls under its
// fold lock, in machine-index order.
class StreamCollector {
 public:
  // Folds one machine's observations into the aggregate. `machine_index`
  // must be the next index in sequence (0, 1, 2, ... — checked), the
  // contract that keeps streaming results equal to the buffered merge.
  void Collect(int machine_index,
               const std::vector<FleetObservation>& observations);

  // GWP-style aggregates.
  const telemetry::Snapshot& telemetry() const { return telemetry_; }
  const telemetry::IntervalSeries& timeseries() const { return timeseries_; }
  // Folded self-profile across every process (empty unless the fleet ran
  // with selfprof_interval > 0). Counts merge commutatively, so this
  // equals MergedSelfProfile over the buffered observations.
  const prof::FoldedProfile& self_profile() const { return self_profile_; }

  // Scalar fleet totals.
  int machines() const { return machines_; }
  int processes() const { return processes_; }
  int oom_kills() const { return oom_kills_; }
  // Process instances retired by deploy-wave restarts across the fleet.
  int deploy_restarts() const { return deploy_restarts_; }
  // Co-located scenario antagonist processes observed across the fleet.
  int antagonists() const { return antagonists_; }
  uint64_t total_requests() const { return total_requests_; }
  uint64_t total_failed_allocations() const {
    return total_failed_allocations_;
  }
  double total_avg_heap_bytes() const { return total_avg_heap_bytes_; }

  // Peak size of RunStreaming's reorder buffer (completed machines waiting
  // for the fold cursor) — the bounded-memory assertion hook. Bounded by
  // the streaming window, never by machine count.
  size_t peak_pending() const { return peak_pending_; }
  void set_peak_pending(size_t n) { peak_pending_ = n; }

 private:
  telemetry::Snapshot telemetry_;
  telemetry::IntervalSeries timeseries_;
  prof::FoldedProfile self_profile_;
  int machines_ = 0;
  int processes_ = 0;
  int oom_kills_ = 0;
  int deploy_restarts_ = 0;
  int antagonists_ = 0;
  uint64_t total_requests_ = 0;
  uint64_t total_failed_allocations_ = 0;
  double total_avg_heap_bytes_ = 0;
  size_t peak_pending_ = 0;
};

}  // namespace wsc::fleet

#endif  // WSC_FLEET_STREAM_COLLECTOR_H_
