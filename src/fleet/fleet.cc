#include "fleet/fleet.h"

#include "common/distribution.h"
#include "common/logging.h"
#include "common/rng.h"

namespace wsc::fleet {

Fleet::Fleet(const FleetConfig& config,
             const tcmalloc::AllocatorConfig& allocator, uint64_t seed)
    : config_(config), allocator_config_(allocator), seed_(seed) {
  WSC_CHECK_GT(config.num_machines, 0);
  WSC_CHECK_GT(config.num_binaries, 0);
  WSC_CHECK_GE(config.max_colocated, config.min_colocated);
  WSC_CHECK_EQ(config.platform_mix.size(),
               hw::AllPlatformGenerations().size());
}

workload::WorkloadSpec Fleet::BinarySpec(int rank) const {
  if (config_.include_top_five && rank < 5) {
    return workload::TopFiveProfiles()[rank];
  }
  return workload::SyntheticBinary(rank, seed_ ^ 0xF1EE7ULL);
}

void Fleet::Run() {
  observations_.clear();
  ZipfDistribution zipf(config_.num_binaries, config_.zipf_exponent);
  auto generations = hw::AllPlatformGenerations();

  for (int m = 0; m < config_.num_machines; ++m) {
    // Machine composition derives only from (seed_, m).
    Rng rng(seed_ + 0x1000003 * static_cast<uint64_t>(m));

    // Platform generation by configured mix.
    double u = rng.UniformDouble();
    size_t gen = 0;
    double acc = 0;
    for (size_t g = 0; g < config_.platform_mix.size(); ++g) {
      acc += config_.platform_mix[g];
      if (u < acc) {
        gen = g;
        break;
      }
      gen = g;
    }
    hw::PlatformSpec platform = hw::PlatformSpecFor(generations[gen]);

    // Co-located binaries by Zipf popularity. The first five machines
    // each host one of the top-5 production binaries so per-application
    // telemetry (the paper's per-app tables) always has observations.
    int n = config_.min_colocated +
            static_cast<int>(rng.UniformInt(
                config_.max_colocated - config_.min_colocated + 1));
    std::vector<workload::WorkloadSpec> workloads;
    std::vector<int> ranks;
    for (int i = 0; i < n; ++i) {
      int rank;
      if (config_.include_top_five && m < 5 && i == 0) {
        rank = m;
      } else {
        rank = static_cast<int>(zipf.Sample(rng)) - 1;
      }
      workloads.push_back(BinarySpec(rank));
      ranks.push_back(rank);
    }

    Machine machine(platform, workloads, allocator_config_, rng.Fork());
    machine.Run(config_.duration, config_.max_requests_per_process);
    for (size_t i = 0; i < machine.results().size(); ++i) {
      FleetObservation obs;
      obs.machine = m;
      obs.binary_rank = ranks[i];
      obs.result = machine.results()[i];
      observations_.push_back(std::move(obs));
    }
  }
}

}  // namespace wsc::fleet
