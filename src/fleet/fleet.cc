#include "fleet/fleet.h"

#include <algorithm>
#include <condition_variable>
#include <map>
#include <mutex>

#include "common/distribution.h"
#include "common/logging.h"
#include "common/rng.h"
#include "fleet/parallel.h"
#include "fleet/stream_collector.h"

namespace wsc::fleet {

Fleet::Fleet(const FleetConfig& config,
             const tcmalloc::AllocatorConfig& allocator, uint64_t seed)
    : config_(config), allocator_config_(allocator), seed_(seed) {
  WSC_CHECK_GT(config.num_machines, 0);
  WSC_CHECK_GT(config.num_binaries, 0);
  WSC_CHECK_GE(config.max_colocated, config.min_colocated);
  WSC_CHECK_EQ(config.platform_mix.size(),
               hw::AllPlatformGenerations().size());
}

workload::WorkloadSpec Fleet::BinarySpec(int rank) const {
  if (config_.include_top_five && rank < 5) {
    return workload::TopFiveProfiles()[rank];
  }
  return workload::SyntheticBinary(rank, seed_ ^ 0xF1EE7ULL);
}

std::vector<Fleet::MachinePlan> Fleet::PlanMachines() const {
  std::vector<MachinePlan> plans;
  plans.reserve(static_cast<size_t>(config_.num_machines));
  ZipfDistribution zipf(config_.num_binaries, config_.zipf_exponent);
  auto generations = hw::AllPlatformGenerations();

  for (int m = 0; m < config_.num_machines; ++m) {
    // Machine composition derives only from (seed_, m). Sampling stays
    // sequential and seed-ordered even though execution is parallel, so
    // seeds are stable by machine index.
    Rng rng(seed_ + 0x1000003 * static_cast<uint64_t>(m));
    MachinePlan plan;

    // Platform generation by configured mix.
    double u = rng.UniformDouble();
    size_t gen = 0;
    double acc = 0;
    for (size_t g = 0; g < config_.platform_mix.size(); ++g) {
      acc += config_.platform_mix[g];
      if (u < acc) {
        gen = g;
        break;
      }
      gen = g;
    }
    plan.platform = hw::PlatformSpecFor(generations[gen]);

    // Co-located binaries by Zipf popularity. The first five machines
    // each host one of the top-5 production binaries so per-application
    // telemetry (the paper's per-app tables) always has observations.
    int n = config_.min_colocated +
            static_cast<int>(rng.UniformInt(
                config_.max_colocated - config_.min_colocated + 1));
    for (int i = 0; i < n; ++i) {
      int rank;
      if (config_.include_top_five && m < 5 && i == 0) {
        rank = m;
      } else {
        rank = static_cast<int>(zipf.Sample(rng)) - 1;
      }
      plan.workloads.push_back(BinarySpec(rank));
      plan.ranks.push_back(rank);
    }

    plan.machine_seed = rng.Fork();

    // Pressure events come after the seed fork and only draw when enabled,
    // so machine seeds (and thus every pressure-free result) are identical
    // whether or not pressure injection is on.
    if (config_.pressure.enabled) {
      const PressureConfig& pc = config_.pressure;
      double dur = static_cast<double>(config_.duration);
      PressureEvent diurnal;
      diurnal.start = static_cast<SimTime>(dur * pc.diurnal_start_frac);
      diurnal.end = static_cast<SimTime>(dur * pc.diurnal_end_frac);
      diurnal.limit_fraction = pc.diurnal_fraction;
      plan.pressure_events.push_back(diurnal);
      if (rng.UniformDouble() < pc.spike_probability) {
        PressureEvent spike;
        double start_frac = rng.UniformDouble() *
                            std::max(0.0, 1.0 - pc.spike_duration_frac);
        spike.start = static_cast<SimTime>(dur * start_frac);
        spike.end = static_cast<SimTime>(
            dur * (start_frac + pc.spike_duration_frac));
        spike.limit_fraction = pc.spike_fraction;
        plan.pressure_events.push_back(spike);
      }
    }

    // Fault plans follow the same discipline as pressure events: drawn
    // after the seed fork, and only when enabled, so a faulted fleet
    // shares machine composition and seeds with a fault-free one.
    if (config_.faults.enabled) {
      const FaultConfig& fc = config_.faults;
      for (size_t i = 0; i < plan.workloads.size(); ++i) {
        tcmalloc::FaultPlan fault;
        for (int w = 0; w < fc.mmap_windows; ++w) {
          uint64_t begin = rng.UniformInt(std::max<uint64_t>(
              fc.mmap_call_horizon, 1));
          fault.mmap_windows.push_back({begin, begin + fc.mmap_window_calls});
        }
        for (int w = 0; w < fc.huge_backing_windows; ++w) {
          uint64_t begin = rng.UniformInt(std::max<uint64_t>(
              fc.huge_backing_call_horizon, 1));
          fault.huge_backing_windows.push_back(
              {begin, begin + fc.huge_backing_window_calls});
        }
        plan.fault_plans.push_back(std::move(fault));
        // Bug injection is a spec stamp, not an RNG draw: the driver rolls
        // the dice itself, and only on guarded allocations.
        plan.workloads[i].double_free_probability = fc.double_free_probability;
        plan.workloads[i].use_after_free_probability =
            fc.use_after_free_probability;
        plan.workloads[i].overrun_probability = fc.overrun_probability;
      }
      if (fc.oom_kill_probability > 0 &&
          rng.UniformDouble() < fc.oom_kill_probability) {
        double span =
            std::max(0.0, fc.oom_kill_max_frac - fc.oom_kill_min_frac);
        double frac = fc.oom_kill_min_frac + rng.UniformDouble() * span;
        plan.oom_kill_time = std::max<SimTime>(
            static_cast<SimTime>(static_cast<double>(config_.duration) * frac),
            1);
        plan.restart_seed = rng.Fork();
      }
    }

    // The traffic scenario plans last, under the same discipline: strictly
    // after the machine-seed fork, drawing only when enabled — so the
    // scenario-free composition (and the pressure/fault streams above) are
    // identical whether or not a scenario is on.
    if (config_.scenario.enabled) {
      MachineScenario scenario = PlanMachineScenario(
          config_.scenario, m, config_.num_machines, config_.duration, rng);
      if (!scenario.load_phases.empty()) {
        for (workload::WorkloadSpec& w : plan.workloads) {
          w.load_phases = scenario.load_phases;
        }
      }
      plan.deploy_restarts = scenario.deploy_restarts;
      plan.deploy_restart_seed = scenario.deploy_restart_seed;
      if (scenario.antagonist) {
        // Appended after every victim: the machine partitions CPUs, forks
        // seeds, and assigns arena slots for primaries first, so victim
        // results are bit-identical with or without the antagonist.
        plan.workloads.push_back(AntagonistWorkload(scenario.antagonist_load,
                                                    config_.duration));
        plan.ranks.push_back(kAntagonistRank);
      }
    }
    plans.push_back(std::move(plan));
  }
  return plans;
}

std::vector<FleetObservation> Fleet::RunMachine(
    int m, const MachinePlan& plan) const {
  MachineFaults faults;
  faults.fault_plans = plan.fault_plans;
  faults.oom_kill_time = plan.oom_kill_time;
  faults.restart_seed = plan.restart_seed;
  DeploySchedule deploys;
  deploys.restart_times = plan.deploy_restarts;
  deploys.restart_seed = plan.deploy_restart_seed;
  Machine machine(plan.platform, plan.workloads, allocator_config_,
                  plan.machine_seed, plan.pressure_events,
                  config_.trace_events_per_process, std::move(faults),
                  config_.selfprof_interval, config_.timeseries_interval,
                  std::move(deploys));
  machine.Run(config_.duration, config_.max_requests_per_process);
  std::vector<FleetObservation> observations;
  observations.reserve(machine.results().size());
  for (size_t i = 0; i < machine.results().size(); ++i) {
    const ProcessResult& result = machine.results()[i];
    FleetObservation obs;
    obs.machine = m;
    obs.process = static_cast<int>(i);
    // Rank attribution goes through workload_index: OOM restarts make a
    // machine emit more results than workloads.
    obs.binary_rank = plan.ranks[static_cast<size_t>(result.workload_index)];
    obs.result = result;
    observations.push_back(std::move(obs));
  }
  return observations;
}

void Fleet::Run() { Run(ResolveThreadCount(config_.num_threads)); }

void Fleet::Run(int num_threads) {
  observations_.clear();
  std::vector<MachinePlan> plans = PlanMachines();

  // Machines share nothing — each owns its allocators, hardware models,
  // and RNG stream — so they run concurrently. Merging per-machine slots
  // in machine-index order makes the reduction order-independent: results
  // are bit-identical for any thread count.
  std::vector<std::vector<FleetObservation>> per_machine(plans.size());
  ParallelFor(static_cast<int>(plans.size()), num_threads, [&](int m) {
    per_machine[static_cast<size_t>(m)] =
        RunMachine(m, plans[static_cast<size_t>(m)]);
  });
  for (std::vector<FleetObservation>& machine_obs : per_machine) {
    for (FleetObservation& obs : machine_obs) {
      observations_.push_back(std::move(obs));
    }
  }
}

void Fleet::RunStreaming(StreamCollector& collector) {
  RunStreaming(collector, ResolveThreadCount(config_.num_threads));
}

void Fleet::RunStreaming(StreamCollector& collector, int num_threads,
                         int window) {
  observations_.clear();
  std::vector<MachinePlan> plans = PlanMachines();
  if (window <= 0) window = std::max(2 * num_threads, 2);

  // Reorder buffer: machines complete out of order, the fold cursor
  // consumes them in index order. ParallelFor hands out indices in order,
  // and a worker whose index is `window` past the fold cursor waits before
  // running its machine, so `pending` never exceeds `window` entries — the
  // machine the cursor is waiting on is always being run by a worker that
  // did not wait, so the fold always advances.
  std::mutex mu;
  std::condition_variable cv;
  std::map<int, std::vector<FleetObservation>> pending;
  int next_to_fold = 0;
  size_t peak_pending = 0;

  ParallelFor(static_cast<int>(plans.size()), num_threads, [&](int m) {
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return m < next_to_fold + window; });
    }
    std::vector<FleetObservation> machine_obs =
        RunMachine(m, plans[static_cast<size_t>(m)]);
    std::unique_lock<std::mutex> lock(mu);
    pending.emplace(m, std::move(machine_obs));
    peak_pending = std::max(peak_pending, pending.size());
    bool advanced = false;
    while (!pending.empty() && pending.begin()->first == next_to_fold) {
      // Folding under the lock serializes Collect — the fold is cheap
      // relative to a machine run, and the order is what buys bit-exact
      // equality with the buffered path.
      collector.Collect(next_to_fold, pending.begin()->second);
      pending.erase(pending.begin());
      ++next_to_fold;
      advanced = true;
    }
    if (advanced) cv.notify_all();
  });
  WSC_CHECK(pending.empty());
  collector.set_peak_pending(
      std::max(collector.peak_pending(), peak_pending));
}

telemetry::Snapshot MergedTelemetry(
    const std::vector<FleetObservation>& observations) {
  telemetry::Snapshot merged;
  for (const FleetObservation& obs : observations) {
    merged.MergeFrom(obs.result.telemetry);
  }
  return merged;
}

std::vector<trace::ProcessTrace> MergedTrace(
    const std::vector<FleetObservation>& observations) {
  std::vector<trace::ProcessTrace> traces;
  traces.reserve(observations.size());
  for (const FleetObservation& obs : observations) {
    traces.push_back({obs.machine, obs.process, obs.result.trace});
  }
  return traces;
}

trace::HeapProfile MergedHeapProfile(
    const std::vector<FleetObservation>& observations) {
  trace::HeapProfile merged;
  for (const FleetObservation& obs : observations) {
    merged.MergeFrom(obs.result.heap_profile);
  }
  return merged;
}

prof::FoldedProfile MergedSelfProfile(
    const std::vector<FleetObservation>& observations) {
  prof::FoldedProfile merged;
  for (const FleetObservation& obs : observations) {
    merged.MergeFrom(obs.result.self_profile);
  }
  return merged;
}

telemetry::IntervalSeries MergedTimeSeries(
    const std::vector<FleetObservation>& observations) {
  telemetry::IntervalSeries merged;
  for (const FleetObservation& obs : observations) {
    merged.MergeFrom(obs.result.timeseries);
  }
  return merged;
}

}  // namespace wsc::fleet
