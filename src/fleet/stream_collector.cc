#include "fleet/stream_collector.h"

#include "common/logging.h"

namespace wsc::fleet {

void StreamCollector::Collect(
    int machine_index, const std::vector<FleetObservation>& observations) {
  WSC_CHECK_EQ(machine_index, machines_);
  ++machines_;
  double machine_heap = 0;
  for (const FleetObservation& obs : observations) {
    const ProcessResult& r = obs.result;
    telemetry_.MergeFrom(r.telemetry);
    timeseries_.MergeFrom(r.timeseries);
    self_profile_.MergeFrom(r.self_profile);
    ++processes_;
    if (r.oom_killed) ++oom_kills_;
    if (r.deploy_restarted) ++deploy_restarts_;
    if (obs.binary_rank == kAntagonistRank) ++antagonists_;
    total_requests_ += r.driver.requests;
    total_failed_allocations_ += r.driver.failed_allocations;
    total_avg_heap_bytes_ += r.avg_heap_bytes;
    machine_heap += r.avg_heap_bytes;
    // Cross-fleet distributions (the Fig. 3 CDF inputs): one point per
    // process, retained only as sketch buckets.
    timeseries_.Sketch("process_avg_heap_bytes").Record(r.avg_heap_bytes);
    timeseries_.Sketch("process_requests")
        .Record(static_cast<double>(r.driver.requests));
  }
  // And one point per machine: the paper's per-machine footprint CDF.
  timeseries_.Sketch("machine_avg_heap_bytes").Record(machine_heap);
}

}  // namespace wsc::fleet
