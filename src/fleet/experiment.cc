#include "fleet/experiment.h"

#include <algorithm>

#include "common/logging.h"
#include "common/stats.h"
#include "fleet/parallel.h"

namespace wsc::fleet {

void Accumulate(MetricSet& set, const ProcessResult& r) {
  set.requests += static_cast<double>(r.driver.requests);
  set.failed_allocations += static_cast<double>(r.driver.failed_allocations);
  set.cpu_ns += r.driver.cpu_ns;
  set.base_work_ns += r.driver.base_work_ns;
  set.malloc_ns += r.driver.malloc_ns;
  set.tlb_stall_ns += r.driver.tlb_stall_ns;
  set.llc_stall_ns += r.driver.llc_stall_ns;
  set.memory_bytes += r.avg_heap_bytes;
  set.live_bytes += r.avg_live_bytes;
  set.llc_misses +=
      static_cast<double>(r.llc.remote_hits + r.llc.memory_misses);
  set.instructions += static_cast<double>(r.driver.Instructions(r.ghz));
  set.frag_bytes += r.avg_heap_bytes - r.avg_live_bytes;
  set.coverage_weighted += r.hugepage_coverage * r.avg_heap_bytes;
  ++set.processes;
}

double AbDelta::ThroughputChangePct() const {
  return PercentChange(control.Throughput(), experiment.Throughput());
}

double AbDelta::MemoryChangePct() const {
  return PercentChange(control.memory_bytes, experiment.memory_bytes);
}

double AbDelta::CpiChangePct() const {
  return PercentChange(control.Cpi(), experiment.Cpi());
}

double AbDelta::MallocFractionChangePct() const {
  return PercentChange(control.MallocFraction(),
                       experiment.MallocFraction());
}

const AbDelta* AbResult::FindApp(const std::string& name) const {
  for (const AbDelta& delta : per_app) {
    if (delta.label == name) return &delta;
  }
  return nullptr;
}

AbResult RunFleetAb(const FleetConfig& config,
                    const tcmalloc::AllocatorConfig& control,
                    const tcmalloc::AllocatorConfig& experiment,
                    uint64_t seed) {
  Fleet control_fleet(config, control, seed);
  Fleet experiment_fleet(config, experiment, seed);

  // The two arms are independent paired fleets, so they run concurrently,
  // splitting the worker budget between them; each arm's machines are
  // merged in machine-index order, so the result matches the sequential
  // run bit for bit.
  int threads = ResolveThreadCount(config.num_threads);
  Fleet* arms[2] = {&control_fleet, &experiment_fleet};
  ParallelFor(2, std::min(threads, 2), [&](int arm) {
    arms[arm]->Run(std::max(1, (threads + 1 - arm) / 2));
  });

  const auto& c_obs = control_fleet.observations();
  const auto& e_obs = experiment_fleet.observations();
  WSC_CHECK_EQ(c_obs.size(), e_obs.size());  // paired by construction

  AbResult result;
  result.fleet.label = "fleet";
  result.fleet.control_telemetry = MergedTelemetry(c_obs);
  result.fleet.experiment_telemetry = MergedTelemetry(e_obs);
  result.fleet.control_self_profile = MergedSelfProfile(c_obs);
  result.fleet.experiment_self_profile = MergedSelfProfile(e_obs);
  result.fleet.control_timeseries = MergedTimeSeries(c_obs);
  result.fleet.experiment_timeseries = MergedTimeSeries(e_obs);
  std::vector<std::string> apps = {"spanner", "monarch", "bigtable",
                                   "f1-query", "disk"};
  for (const std::string& app : apps) {
    AbDelta delta;
    delta.label = app;
    result.per_app.push_back(delta);
  }

  for (size_t i = 0; i < c_obs.size(); ++i) {
    WSC_CHECK_EQ(c_obs[i].binary_rank, e_obs[i].binary_rank);
    Accumulate(result.fleet.control, c_obs[i].result);
    Accumulate(result.fleet.experiment, e_obs[i].result);
    for (AbDelta& delta : result.per_app) {
      if (c_obs[i].result.workload_name == delta.label) {
        Accumulate(delta.control, c_obs[i].result);
        Accumulate(delta.experiment, e_obs[i].result);
      }
    }
  }
  return result;
}

AbDelta RunBenchmarkAb(const workload::WorkloadSpec& spec,
                       const hw::PlatformSpec& platform,
                       const tcmalloc::AllocatorConfig& control,
                       const tcmalloc::AllocatorConfig& experiment,
                       uint64_t seed, SimTime duration,
                       uint64_t max_requests,
                       uint64_t selfprof_interval) {
  AbDelta delta;
  delta.label = spec.name;
  for (int side = 0; side < 2; ++side) {
    const tcmalloc::AllocatorConfig& cfg = side == 0 ? control : experiment;
    Machine machine(platform, {spec}, cfg, seed, /*pressure_events=*/{},
                    /*trace_events_per_process=*/0, /*faults=*/{},
                    selfprof_interval);
    machine.Run(duration, max_requests);
    WSC_CHECK_EQ(machine.results().size(), 1u);
    Accumulate(side == 0 ? delta.control : delta.experiment,
               machine.results()[0]);
    (side == 0 ? delta.control_telemetry : delta.experiment_telemetry) =
        machine.results()[0].telemetry;
    (side == 0 ? delta.control_self_profile
               : delta.experiment_self_profile) =
        machine.results()[0].self_profile;
  }
  return delta;
}

}  // namespace wsc::fleet
