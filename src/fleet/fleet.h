// Fleet model: a population of machines running a Zipf-weighted binary mix.
//
// Section 2.2: there is no killer app — the top 50 binaries cover only
// ~50% of fleet malloc cycles and ~65% of allocated memory (Fig. 3). The
// fleet samples binaries by Zipf popularity onto machines of mixed platform
// generations, with 1-3 co-located processes per machine, and aggregates
// telemetry across all of them.

#ifndef WSC_FLEET_FLEET_H_
#define WSC_FLEET_FLEET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/machine.h"
#include "hw/topology.h"
#include "tcmalloc/config.h"
#include "workload/profiles.h"

namespace wsc::fleet {

// Fleet shape and run-length parameters.
struct FleetConfig {
  int num_machines = 16;
  int num_binaries = 50;
  double zipf_exponent = 1.1;  // binary popularity skew
  int min_colocated = 1;
  int max_colocated = 3;

  // Per-process run bounds.
  SimTime duration = Minutes(5);
  uint64_t max_requests_per_process = 120000;

  // Fraction of machines per platform generation (kGenA..kGenE); chiplet
  // platforms are generations C-E.
  std::vector<double> platform_mix = {0.10, 0.20, 0.30, 0.25, 0.15};

  // Ranks 0-4 are the exact top-5 production profiles (they are also the
  // most popular by Zipf weight); higher ranks are jittered variants.
  bool include_top_five = true;
};

// One process observation, tagged with provenance.
struct FleetObservation {
  int machine = 0;
  int binary_rank = 0;
  ProcessResult result;
};

// A runnable fleet. Machine composition (platforms, binary placement,
// seeds) is a pure function of (config, seed) and never depends on the
// allocator configuration — this is what makes paired A/B runs
// low-variance.
class Fleet {
 public:
  Fleet(const FleetConfig& config, const tcmalloc::AllocatorConfig& allocator,
        uint64_t seed);

  // Runs every machine and collects observations.
  void Run();

  const std::vector<FleetObservation>& observations() const {
    return observations_;
  }

  // The workload spec for a binary rank under this fleet's seed.
  workload::WorkloadSpec BinarySpec(int rank) const;

 private:
  FleetConfig config_;
  tcmalloc::AllocatorConfig allocator_config_;
  uint64_t seed_;
  std::vector<FleetObservation> observations_;
};

}  // namespace wsc::fleet

#endif  // WSC_FLEET_FLEET_H_
