// Fleet model: a population of machines running a Zipf-weighted binary mix.
//
// Section 2.2: there is no killer app — the top 50 binaries cover only
// ~50% of fleet malloc cycles and ~65% of allocated memory (Fig. 3). The
// fleet samples binaries by Zipf popularity onto machines of mixed platform
// generations, with 1-3 co-located processes per machine, and aggregates
// telemetry across all of them.

#ifndef WSC_FLEET_FLEET_H_
#define WSC_FLEET_FLEET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/machine.h"
#include "fleet/scenario.h"
#include "hw/topology.h"
#include "tcmalloc/config.h"
#include "tcmalloc/fault_injection.h"
#include "trace/chrome_trace.h"
#include "workload/profiles.h"

namespace wsc::fleet {

class StreamCollector;

// Fleet-wide memory-pressure injection (ISSUE: diurnal trough + random
// spikes). Events are planned per machine in PlanMachines — sampled
// seed-ordered after the machine seed fork, so enabling pressure never
// perturbs machine composition — and retarget each process's soft limit
// as a fraction of its observed peak footprint (see fleet::PressureEvent).
struct PressureConfig {
  bool enabled = false;
  // Diurnal trough: every machine's limit drops to this fraction of peak
  // for the window [diurnal_start_frac, diurnal_end_frac) of the run.
  double diurnal_fraction = 0.6;
  double diurnal_start_frac = 0.35;
  double diurnal_end_frac = 0.8;
  // Per-machine antagonist spike: with this probability, a machine gets a
  // harsher window of `spike_duration_frac` of the run at `spike_fraction`
  // of peak, starting at a uniformly drawn offset.
  double spike_probability = 0.25;
  double spike_fraction = 0.45;
  double spike_duration_frac = 0.15;
};

// Fleet-wide deterministic fault injection: mmap failures, hugepage
// scarcity, driver-injected heap bugs, and machine OOM kills. Like
// pressure events, everything here is planned per machine in PlanMachines
// strictly after the machine-seed fork and draws the RNG only when
// enabled, so a faulted fleet shares machine composition (and every
// fault-free result) with an unfaulted one. Fault points are windows over
// per-kind *call indices* (see tcmalloc::FaultPlan), which keeps results
// bit-identical for any --threads value.
struct FaultConfig {
  bool enabled = false;

  // Per-process mmap-failure windows: `mmap_windows` windows, each denying
  // `mmap_window_calls` consecutive SystemAllocator hugepage requests,
  // starting at call indices drawn uniformly from [0, mmap_call_horizon).
  int mmap_windows = 1;
  uint64_t mmap_window_calls = 4;
  uint64_t mmap_call_horizon = 256;

  // Hugepage-scarcity windows: address ranges are granted but THP backing
  // is denied (the range runs at 4 KiB TLB reach until released).
  int huge_backing_windows = 1;
  uint64_t huge_backing_window_calls = 32;
  uint64_t huge_backing_call_horizon = 256;

  // Driver-injected heap bugs, stamped onto every workload spec (see
  // WorkloadSpec: exercised only against guarded/sampled allocations, so
  // pair with AllocatorConfig guarded_sampling to detect them).
  double double_free_probability = 0.0;
  double use_after_free_probability = 0.0;
  double overrun_probability = 0.0;

  // With this probability a machine schedules one OOM kill at a uniformly
  // drawn fraction of the run in [oom_kill_min_frac, oom_kill_max_frac):
  // the biggest-footprint process dies and restarts (fleet::MachineFaults).
  double oom_kill_probability = 0.0;
  double oom_kill_min_frac = 0.3;
  double oom_kill_max_frac = 0.7;
};

// Fleet shape and run-length parameters.
struct FleetConfig {
  int num_machines = 16;
  int num_binaries = 50;
  double zipf_exponent = 1.1;  // binary popularity skew
  int min_colocated = 1;
  int max_colocated = 3;

  // Worker threads for Run(): machines execute concurrently on this many
  // threads. 0 = auto (WSC_THREADS env var, else hardware concurrency).
  // Results are bit-identical for every value.
  int num_threads = 0;

  // Per-process run bounds.
  SimTime duration = Minutes(5);
  uint64_t max_requests_per_process = 120000;

  // Fraction of machines per platform generation (kGenA..kGenE); chiplet
  // platforms are generations C-E.
  std::vector<double> platform_mix = {0.10, 0.20, 0.30, 0.25, 0.15};

  // Ranks 0-4 are the exact top-5 production profiles (they are also the
  // most popular by Zipf weight); higher ranks are jittered variants.
  bool include_top_five = true;

  // Memory-pressure event injection (off by default).
  PressureConfig pressure;

  // Deterministic fault injection (off by default).
  FaultConfig faults;

  // Traffic scenario (off by default): diurnal curves, flash crowds,
  // deploy waves, antagonist co-location (fleet::ScenarioConfig). Planned
  // per machine after the machine-seed fork, exactly like pressure and
  // faults, so enabling a scenario never perturbs machine composition.
  ScenarioConfig scenario;

  // Flight-recorder ring capacity per process (0 = tracing off). When set,
  // every process's drained ring lands in its ProcessResult::trace and the
  // fleet trace is exported via MergedTrace.
  size_t trace_events_per_process = 0;

  // Self-profiler sampling cadence in scope entries (0 = profiling off).
  // When set, every process samples its own hot-path scope stack once per
  // this many WSC_PROF_SCOPE entries; folded results land in
  // ProcessResult::self_profile and merge via MergedSelfProfile. The
  // cadence is logical (never wall clock), so profiles of a deterministic
  // run are bit-identical for any --threads value.
  uint64_t selfprof_interval = 0;

  // Telemetry time-series capture cadence on the logical clock (0 = off).
  // When set, every process captures counter/histogram deltas and gauge
  // samples at each boundary into ProcessResult::timeseries; series merge
  // via MergedTimeSeries / StreamCollector, aligned by interval index, so
  // the fleet series is bit-identical for any --threads value.
  SimTime timeseries_interval = 0;
};

// Binary rank assigned to scenario antagonists: they are fleet furniture,
// not sampled binaries, and per-rank reports should skip them.
inline constexpr int kAntagonistRank = -1;

// One process observation, tagged with provenance.
struct FleetObservation {
  int machine = 0;
  int process = 0;  // process index within its machine
  int binary_rank = 0;
  ProcessResult result;
};

// GWP-style fleet aggregate: merges every observation's telemetry
// snapshot in observation order (machine-index order, the order Run()
// produces), so the result is bit-identical for any worker-thread count.
telemetry::Snapshot MergedTelemetry(
    const std::vector<FleetObservation>& observations);

// Per-process trace buffers tagged pid = machine index, tid = process
// index, in observation order — ready for trace::RenderChromeTrace.
// Observation order is machine-index order, so the rendered trace is
// bit-identical for any worker-thread count.
std::vector<trace::ProcessTrace> MergedTrace(
    const std::vector<FleetObservation>& observations);

// Fleet-wide heap profile: every observation's profile merged in
// observation order (bit-identical for any worker-thread count).
trace::HeapProfile MergedHeapProfile(
    const std::vector<FleetObservation>& observations);

// Fleet-wide self-profile: every observation's folded profile merged in
// observation order. Folded counts are commutative, so the merge is
// bit-identical for any worker-thread count.
prof::FoldedProfile MergedSelfProfile(
    const std::vector<FleetObservation>& observations);

// Fleet-wide time series: every observation's interval series merged in
// observation order, aligned by interval index (exact bucketwise sums —
// bit-identical for any worker-thread count).
telemetry::IntervalSeries MergedTimeSeries(
    const std::vector<FleetObservation>& observations);

// A runnable fleet. Machine composition (platforms, binary placement,
// seeds) is a pure function of (config, seed) and never depends on the
// allocator configuration — this is what makes paired A/B runs
// low-variance.
class Fleet {
 public:
  Fleet(const FleetConfig& config, const tcmalloc::AllocatorConfig& allocator,
        uint64_t seed);

  // Everything one machine needs before it runs: platform, workload mix,
  // and a forked RNG seed, all sampled sequentially in machine-index order
  // from (config, seed) alone. Execution never draws from the composition
  // RNG, so plans are stable however machines are scheduled.
  struct MachinePlan {
    hw::PlatformSpec platform;
    std::vector<workload::WorkloadSpec> workloads;
    std::vector<int> ranks;      // binary rank per workload
    uint64_t machine_seed = 0;
    // Pressure windows for this machine (empty unless config.pressure is
    // enabled). Planned seed-ordered, after the machine seed fork, so a
    // pressure run shares machine composition with a pressure-free run.
    std::vector<PressureEvent> pressure_events;
    // Per-process fault plans plus the machine's OOM-kill schedule (empty
    // and zero unless config.faults is enabled). Planned after the seed
    // fork, exactly like pressure events.
    std::vector<tcmalloc::FaultPlan> fault_plans;
    SimTime oom_kill_time = 0;  // 0 = no kill planned
    uint64_t restart_seed = 0;
    // Scenario slice (empty/zero unless config.scenario is enabled),
    // planned last, after pressure and faults. Load phases are stamped
    // directly onto `workloads`; an antagonist, when present, is appended
    // to `workloads` with rank kAntagonistRank so victims keep their CPU
    // masks, seeds, and arena slots.
    std::vector<SimTime> deploy_restarts;
    uint64_t deploy_restart_seed = 0;
  };

  // The deterministic composition of every machine (exposed for tests).
  std::vector<MachinePlan> PlanMachines() const;

  // Runs every machine and collects observations. Machines execute
  // concurrently on `config.num_threads` workers; per-machine results are
  // merged in machine-index order, so the outcome is bit-identical to the
  // sequential run for any thread count. May be called with an explicit
  // worker count (overriding the config), e.g. when two fleets share a
  // thread budget.
  void Run();
  void Run(int num_threads);

  // Streaming variant for warehouse scale: machines still execute
  // concurrently, but observations are folded into `collector` in strict
  // machine-index order as machines complete and then discarded — memory
  // stays O(metrics × intervals) instead of O(machines). Workers that run
  // more than `window` machines ahead of the fold cursor wait (window = 2×
  // worker count when 0), which bounds the reorder buffer without ever
  // blocking the machine the fold is waiting on. The fold order equals the
  // buffered Run()'s merge order, so every aggregate is bit-identical to
  // Run() + Merged* for any thread count. observations() is left empty.
  void RunStreaming(StreamCollector& collector);
  void RunStreaming(StreamCollector& collector, int num_threads,
                    int window = 0);

  const std::vector<FleetObservation>& observations() const {
    return observations_;
  }

  // The workload spec for a binary rank under this fleet's seed.
  workload::WorkloadSpec BinarySpec(int rank) const;

 private:
  // Executes one planned machine and tags its observations.
  std::vector<FleetObservation> RunMachine(int m,
                                           const MachinePlan& plan) const;

  FleetConfig config_;
  tcmalloc::AllocatorConfig allocator_config_;
  uint64_t seed_;
  std::vector<FleetObservation> observations_;
};

}  // namespace wsc::fleet

#endif  // WSC_FLEET_FLEET_H_
