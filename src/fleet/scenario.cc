#include "fleet/scenario.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "workload/profiles.h"

namespace wsc::fleet {

namespace {

// Flash-crowd multiplier at time `t` for a machine in `region` (1.0 when
// the crowd does not apply).
double FlashMultiplierAt(const FlashCrowdSpec& flash, int region,
                         SimTime duration, SimTime t) {
  if (!flash.enabled || region != flash.region) return 1.0;
  double dur = static_cast<double>(duration);
  SimTime start = static_cast<SimTime>(dur * flash.start_frac);
  SimTime end = static_cast<SimTime>(
      dur * (flash.start_frac + flash.duration_frac));
  return (t >= start && t < end) ? flash.multiplier : 1.0;
}

// Diurnal multiplier at time `t` for a machine in `region`: a sinusoid
// between trough and peak, phase-led by region/regions of a cycle.
double DiurnalMultiplierAt(const DiurnalSpec& diurnal, int region,
                           int regions, SimTime duration, SimTime t) {
  double frac = static_cast<double>(t) /
                static_cast<double>(std::max<SimTime>(duration, 1));
  double phase = 2.0 * M_PI * static_cast<double>(region) /
                 static_cast<double>(std::max(1, regions));
  double wave =
      0.5 + 0.5 * std::sin(2.0 * M_PI * diurnal.cycles * frac + phase);
  return diurnal.trough + (diurnal.peak - diurnal.trough) * wave;
}

}  // namespace

MachineScenario PlanMachineScenario(const ScenarioConfig& config,
                                    int machine_index, int num_machines,
                                    SimTime duration, Rng& rng) {
  MachineScenario scenario;
  int regions = std::max(1, config.regions);
  scenario.region = machine_index % regions;

  // Load phases: the diurnal curve (piecewise-sampled at diurnal.step) and
  // the flash crowd compose multiplicatively into one non-overlapping step
  // function. Pure arithmetic — no RNG draws.
  if (config.diurnal.enabled) {
    SimTime step = std::max<SimTime>(config.diurnal.step, Milliseconds(1));
    for (SimTime t = 0; t < duration; t += step) {
      SimTime end = std::min<SimTime>(t + step, duration);
      SimTime mid = t + (end - t) / 2;
      double mult =
          DiurnalMultiplierAt(config.diurnal, scenario.region, regions,
                              duration, mid) *
          FlashMultiplierAt(config.flash, scenario.region, duration, mid);
      if (!scenario.load_phases.empty() &&
          scenario.load_phases.back().end == t &&
          scenario.load_phases.back().multiplier == mult) {
        scenario.load_phases.back().end = end;  // merge equal neighbors
      } else {
        scenario.load_phases.push_back(workload::LoadPhase{t, end, mult});
      }
    }
  } else if (config.flash.enabled && scenario.region == config.flash.region) {
    double dur = static_cast<double>(duration);
    SimTime start = static_cast<SimTime>(dur * config.flash.start_frac);
    SimTime end = static_cast<SimTime>(
        dur * (config.flash.start_frac + config.flash.duration_frac));
    if (end > start) {
      scenario.load_phases.push_back(
          workload::LoadPhase{start, end, config.flash.multiplier});
    }
  }

  // Deploy wave: `fraction` of machines, spread evenly by index (machine m
  // is selected when floor((m+1)f) > floor(mf) — Bresenham's line). Wave k
  // rolls across the selected machines in index order inside the window.
  if (config.deploy.enabled && num_machines > 0) {
    const DeployWaveSpec& dw = config.deploy;
    double f = std::clamp(dw.fraction, 0.0, 1.0);
    auto selected_before = [f](int m) {
      return static_cast<int>(std::floor(static_cast<double>(m) * f + 1e-9));
    };
    bool selected = selected_before(machine_index + 1) >
                    selected_before(machine_index);
    if (selected && dw.restarts_per_machine > 0) {
      int rank = selected_before(machine_index);
      int total = std::max(1, selected_before(num_machines));
      double dur = static_cast<double>(duration);
      double window_start = dur * dw.start_frac;
      double window_span = dur * std::max(0.0, dw.end_frac - dw.start_frac);
      int slots = total * dw.restarts_per_machine;
      for (int k = 0; k < dw.restarts_per_machine; ++k) {
        int slot = k * total + rank;
        SimTime t = static_cast<SimTime>(
            window_start +
            window_span * (static_cast<double>(slot) + 0.5) /
                static_cast<double>(slots));
        scenario.deploy_restarts.push_back(std::max<SimTime>(t, 1));
      }
      // The only RNG draw the wave makes, and only on selected machines.
      scenario.deploy_restart_seed = rng.Fork();
    }
  }

  // Antagonist co-location: one coin flip, only when enabled.
  if (config.antagonist.enabled &&
      rng.UniformDouble() < config.antagonist.probability) {
    scenario.antagonist = true;
    scenario.antagonist_load = config.antagonist.load;
  }
  return scenario;
}

const std::vector<std::string>& ScenarioNames() {
  static const std::vector<std::string> names = {
      "diurnal", "flash-crowd", "deploy-wave", "antagonist"};
  return names;
}

ScenarioConfig ScenarioByName(const std::string& name) {
  ScenarioConfig config;
  config.enabled = true;
  if (name == "diurnal") {
    // Follow-the-sun load: three regions a third of a cycle apart, two
    // full cycles over the run.
    config.regions = 3;
    config.diurnal.enabled = true;
    config.diurnal.trough = 0.35;
    config.diurnal.peak = 1.8;
    config.diurnal.cycles = 2.0;
  } else if (name == "flash-crowd") {
    // A 3.5x surge on region 0 for the middle quarter of the run.
    config.regions = 3;
    config.flash.enabled = true;
    config.flash.region = 0;
    config.flash.multiplier = 3.5;
    config.flash.start_frac = 0.4;
    config.flash.duration_frac = 0.25;
  } else if (name == "deploy-wave") {
    // A release rolling one restart across half the fleet mid-run.
    config.deploy.enabled = true;
    config.deploy.fraction = 0.5;
    config.deploy.start_frac = 0.25;
    config.deploy.end_frac = 0.75;
    config.deploy.restarts_per_machine = 1;
  } else if (name == "antagonist") {
    // Half the machines catch a noisy neighbor at 1.5x base load.
    config.antagonist.enabled = true;
    config.antagonist.probability = 0.5;
    config.antagonist.load = 1.5;
  } else {
    WSC_CHECK(false && "unknown scenario name");
  }
  return config;
}

workload::WorkloadSpec AntagonistWorkload(double load, SimTime duration) {
  workload::WorkloadSpec spec = workload::AntagonistProfile();
  spec.load_phases.push_back(workload::LoadPhase{0, duration, load});
  return spec;
}

}  // namespace wsc::fleet
