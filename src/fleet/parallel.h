// Parallel fleet execution engine.
//
// Every simulated machine is an independent allocator instance with its own
// pre-forked RNG seed, so fleet runs are embarrassingly parallel. This
// worker pool runs machine bodies concurrently; determinism is the caller's
// bargain: sample all randomness up front (sequentially, in index order),
// give each body only its own pre-assigned state, and merge results in
// index order. Under that contract the outcome is bit-identical for any
// thread count.

#ifndef WSC_FLEET_PARALLEL_H_
#define WSC_FLEET_PARALLEL_H_

#include <functional>

namespace wsc::fleet {

// Resolves a thread-count request into a worker count:
//   requested  > 0 -> requested
//   requested == 0 -> WSC_THREADS env var if set and positive, else
//                     std::thread::hardware_concurrency().
int ResolveThreadCount(int requested = 0);

// Runs body(0), ..., body(n-1), distributing indices to `num_threads`
// workers through a shared atomic cursor. Each index runs exactly once and
// the call returns only after all bodies finish. Degrades to a plain inline
// loop when n <= 1 or num_threads <= 1. Bodies must not share mutable
// state.
void ParallelFor(int n, int num_threads,
                 const std::function<void(int)>& body);

}  // namespace wsc::fleet

#endif  // WSC_FLEET_PARALLEL_H_
