// Fleet A/B experiment framework (Section 2.2 "Fleet experiment").
//
// The paper evaluates each allocator redesign by applying it to an
// experiment group of machines and comparing productivity metrics against a
// control group. We strengthen the design into *paired* experiments: the
// control and experiment fleets share identical composition and workload
// randomness (same master seed) and differ only in the allocator
// configuration, so small deltas (the paper's effects are 0.3%-8%) are
// measurable with modest fleet sizes.

#ifndef WSC_FLEET_EXPERIMENT_H_
#define WSC_FLEET_EXPERIMENT_H_

#include <string>
#include <vector>

#include "fleet/fleet.h"

namespace wsc::fleet {

// Aggregated productivity metrics over a set of process observations.
// Stores raw sums; derived metrics are computed on demand.
struct MetricSet {
  double requests = 0;
  double failed_allocations = 0;  // hard-limit allocation failures
  double cpu_ns = 0;
  double base_work_ns = 0;
  double malloc_ns = 0;
  double tlb_stall_ns = 0;
  double llc_stall_ns = 0;
  double memory_bytes = 0;  // sum of time-averaged heap footprints
  double live_bytes = 0;
  double llc_misses = 0;  // remote hits + memory misses
  double instructions = 0;
  double frag_bytes = 0;
  double coverage_weighted = 0;  // hugepage coverage weighted by heap
  int processes = 0;

  double Throughput() const { return cpu_ns > 0 ? requests / (cpu_ns / 1e9) : 0; }
  double Cpi() const { return base_work_ns > 0 ? cpu_ns / base_work_ns : 0; }
  double MallocFraction() const { return cpu_ns > 0 ? malloc_ns / cpu_ns : 0; }
  double DtlbWalkFraction() const {
    return cpu_ns > 0 ? tlb_stall_ns / cpu_ns : 0;
  }
  double LlcMpki() const {
    return instructions > 0 ? llc_misses / (instructions / 1000.0) : 0;
  }
  double FragRatio() const {
    return live_bytes > 0 ? frag_bytes / live_bytes : 0;
  }
  double HugepageCoverage() const {
    return memory_bytes > 0 ? coverage_weighted / memory_bytes : 0;
  }
};

// Accumulates one process observation into a MetricSet.
void Accumulate(MetricSet& set, const ProcessResult& result);

// Control-vs-experiment comparison for one population slice.
struct AbDelta {
  std::string label;
  MetricSet control;
  MetricSet experiment;

  // Merged telemetry of each arm. Filled for fleet-wide deltas
  // (RunFleetAb's `fleet` slice) and dedicated-server runs
  // (RunBenchmarkAb); empty for per-app slices.
  telemetry::Snapshot control_telemetry;
  telemetry::Snapshot experiment_telemetry;

  // Merged self-profile of each arm (empty unless the fleet config set a
  // selfprof_interval). Same fill rules as the telemetry snapshots.
  prof::FoldedProfile control_self_profile;
  prof::FoldedProfile experiment_self_profile;

  // Merged interval series of each arm (empty unless the fleet config set
  // a timeseries_interval). Same fill rules as the telemetry snapshots.
  telemetry::IntervalSeries control_timeseries;
  telemetry::IntervalSeries experiment_timeseries;

  double ThroughputChangePct() const;
  double MemoryChangePct() const;
  double CpiChangePct() const;
  double MallocFractionChangePct() const;
};

// Full A/B outcome: fleet-wide plus per-application slices.
struct AbResult {
  AbDelta fleet;
  std::vector<AbDelta> per_app;  // one per top-5 production workload

  const AbDelta* FindApp(const std::string& name) const;
};

// Runs paired fleets under `control` and `experiment` allocator configs.
AbResult RunFleetAb(const FleetConfig& config,
                    const tcmalloc::AllocatorConfig& control,
                    const tcmalloc::AllocatorConfig& experiment,
                    uint64_t seed);

// Runs one workload on a dedicated server under both configs (the paper's
// dedicated-server benchmark experiments). `selfprof_interval` > 0
// attaches a sampling self-profiler to each arm's process.
AbDelta RunBenchmarkAb(const workload::WorkloadSpec& spec,
                       const hw::PlatformSpec& platform,
                       const tcmalloc::AllocatorConfig& control,
                       const tcmalloc::AllocatorConfig& experiment,
                       uint64_t seed, SimTime duration,
                       uint64_t max_requests,
                       uint64_t selfprof_interval = 0);

}  // namespace wsc::fleet

#endif  // WSC_FLEET_EXPERIMENT_H_
