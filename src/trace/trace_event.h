// Typed tier events for the allocation flight recorder.
//
// The paper's §3 analysis attributes allocator cycles to individual cache
// tiers (Fig. 6); answering "what sequence of tier events produced this
// slow allocation?" needs the events themselves, not just counters. Each
// event names the tier it came from (the Chrome-tracing category) and
// carries a handful of small integer payloads whose meaning depends on the
// event type. Events are plain data: the emitting tier never formats or
// allocates, so a disabled recorder costs one predicted-not-taken branch.

#ifndef WSC_TRACE_TRACE_EVENT_H_
#define WSC_TRACE_TRACE_EVENT_H_

#include <cstdint>

#include "common/sim_clock.h"

namespace wsc::trace {

// One enumerator per hook point across the cache hierarchy. Keep the
// kMaxEventType sentinel last: the name/category tables are indexed by it.
enum class EventType : uint8_t {
  kCpuCacheMiss = 0,    // vcpu, cls; a = size-class bytes
  kCpuCacheOverflow,    // vcpu, cls; a = size-class bytes
  kCpuCacheResize,      // vcpu (grower); a = bytes gained, b = victim count
  kTransferInsert,      // domain, cls; a = objects, b = objects overflowed
  kTransferRemove,      // domain, cls; a = objects requested, b = served
  kTransferPlunder,     // domain; a = objects plundered from its shard
  kCflSpanAllocate,     // cls, index = occupancy list; a = span id, b = cap
  kCflSpanReturn,       // cls, index = occupancy list; a = span id, b = cap
  kPageHeapSpanAlloc,   // cls (-1 for large); a = span id, b = pages
  kPageHeapSpanFree,    // cls (-1 for large); a = span id, b = pages
  kFillerPlace,         // index = lifetime set; a = hugepage id, b = pages
  kFillerSubrelease,    // index = lifetime set; a = hugepage id, b = pages
  kPressureStep,        // index = cascade tier (0..3); a = bytes reclaimed
  kSampledAlloc,        // vcpu; a = allocated bytes, b = callsite id
  kSampledFree,         // vcpu; a = allocated bytes, b = callsite id
  kGrowthFailure,       // vcpu, cls (-1 = large); a = requested bytes
  kEmergencyRecovery,   // vcpu, cls (-1 = large); a = requested bytes
  kGuardReport,         // vcpu; index = report kind (GuardReportKind),
                        // a = allocated bytes, b = alloc callsite id
  kMaxEventType,        // sentinel, not a real event
};

inline constexpr int kNumEventTypes = static_cast<int>(EventType::kMaxEventType);

// Stable lowercase event name ("cpu_cache_miss", ...), used as the Chrome
// trace event name.
const char* EventTypeName(EventType type);

// The owning tier ("cpu_cache", "transfer_cache", "central_free_list",
// "page_heap", "huge_page_filler", "pressure", "sampler", "failure"), used
// as the Chrome trace category. Matches the telemetry component names.
const char* EventTypeCategory(EventType type);

// kGuardReport's `index` payload: which heap bug the guarded sampler
// caught.
enum class GuardReportKind : int16_t {
  kDoubleFree = 0,
  kUseAfterFree = 1,
  kBufferOverrun = 2,
};

// One recorded event. 32 bytes; the ring buffer is a flat array of these.
struct TraceEvent {
  SimTime ts = 0;        // simulated nanoseconds
  uint64_t a = 0;        // primary payload (see EventType comments)
  uint64_t b = 0;        // secondary payload
  EventType type = EventType::kCpuCacheMiss;
  int16_t vcpu = -1;     // emitting vCPU, when known
  int16_t domain = -1;   // NUCA/NUMA domain, when known
  int16_t cls = -1;      // size class, when applicable
  int16_t index = -1;    // occupancy-list index / cascade tier

  bool operator==(const TraceEvent&) const = default;
};

}  // namespace wsc::trace

#endif  // WSC_TRACE_TRACE_EVENT_H_
