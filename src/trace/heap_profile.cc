#include "trace/heap_profile.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "common/logging.h"
#include "telemetry/statsz.h"

namespace wsc::trace {

namespace {

using telemetry::AppendJsonEscaped;
using telemetry::FormatJsonNumber;

std::string HumanBytes(uint64_t bytes) {
  char buf[32];
  if (bytes >= (uint64_t{1} << 30)) {
    std::snprintf(buf, sizeof(buf), "%.1f GiB",
                  static_cast<double>(bytes) / (uint64_t{1} << 30));
  } else if (bytes >= (uint64_t{1} << 20)) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB",
                  static_cast<double>(bytes) / (uint64_t{1} << 20));
  } else if (bytes >= (uint64_t{1} << 10)) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB",
                  static_cast<double>(bytes) / (uint64_t{1} << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 " B", bytes);
  }
  return buf;
}

}  // namespace

void CallsiteProfile::MergeFrom(const CallsiteProfile& other) {
  if (name.empty()) name = other.name;
  WSC_CHECK(other.name.empty() || name == other.name);
  allocs += other.allocs;
  frees += other.frees;
  live_bytes += other.live_bytes;
  // Callsite peaks in different processes are independent heaps; the
  // fleet-level peak attribution is their sum.
  peak_live_bytes += other.peak_live_bytes;
  cum_bytes += other.cum_bytes;
  samples += other.samples;
  sampled_live_bytes += other.sampled_live_bytes;
  sampled_lifetimes += other.sampled_lifetimes;
  lifetime_sum_ns += other.lifetime_sum_ns;
  fragmented_hugepages += other.fragmented_hugepages;
  fragmented_free_bytes += other.fragmented_free_bytes;
}

void HeapProfile::MergeFrom(const HeapProfile& other) {
  total_live_bytes += other.total_live_bytes;
  attributed_live_bytes += other.attributed_live_bytes;
  samples_taken += other.samples_taken;
  for (const auto& [id, row] : other.callsites) {
    callsites[id].MergeFrom(row);
  }
  for (int i = 0; i < kSizeBuckets; ++i) {
    size_lifetime[i].samples += other.size_lifetime[i].samples;
    size_lifetime[i].lifetime_sum_ns += other.size_lifetime[i].lifetime_sum_ns;
  }
}

std::string RenderHeapProfileText(const HeapProfile& profile) {
  std::vector<const std::pair<const uint64_t, CallsiteProfile>*> rows;
  rows.reserve(profile.callsites.size());
  for (const auto& entry : profile.callsites) rows.push_back(&entry);
  std::sort(rows.begin(), rows.end(), [](const auto* a, const auto* b) {
    if (a->second.live_bytes != b->second.live_bytes) {
      return a->second.live_bytes > b->second.live_bytes;
    }
    if (a->second.name != b->second.name) {
      return a->second.name < b->second.name;
    }
    return a->first < b->first;
  });

  double coverage =
      profile.total_live_bytes > 0
          ? 100.0 * static_cast<double>(profile.attributed_live_bytes) /
                static_cast<double>(profile.total_live_bytes)
          : 100.0;

  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "Heap profile: %s live in %zu callsites "
                "(%.1f%% attributed); %" PRIu64 " samples\n",
                HumanBytes(profile.total_live_bytes).c_str(),
                profile.callsites.size(), coverage, profile.samples_taken);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "%14s %14s %14s %10s %10s %8s %12s %8s %14s  %s\n", "live",
                "peak", "cum", "allocs", "frees", "samples", "avg_life_ms",
                "frag_hp", "frag_free", "callsite");
  out += buf;
  for (const auto* row : rows) {
    const CallsiteProfile& c = row->second;
    double avg_life_ms =
        c.sampled_lifetimes > 0
            ? c.lifetime_sum_ns / static_cast<double>(c.sampled_lifetimes) / 1e6
            : 0.0;
    std::snprintf(buf, sizeof(buf),
                  "%14" PRIu64 " %14" PRIu64 " %14" PRIu64 " %10" PRIu64
                  " %10" PRIu64 " %8" PRIu64 " %12.3f %8" PRIu64 " %14" PRIu64
                  "  %s\n",
                  c.live_bytes, c.peak_live_bytes, c.cum_bytes, c.allocs,
                  c.frees, c.samples, avg_life_ms, c.fragmented_hugepages,
                  c.fragmented_free_bytes, c.name.c_str());
    out += buf;
  }

  out += "Size x lifetime (sampled):\n";
  std::snprintf(buf, sizeof(buf), "%20s %10s %16s\n", "size_bucket",
                "samples", "mean_life_ms");
  out += buf;
  for (int i = 0; i < HeapProfile::kSizeBuckets; ++i) {
    const SizeLifetimeRow& r = profile.size_lifetime[i];
    if (r.samples == 0) continue;
    double lo = i == 0 ? 0 : static_cast<double>(uint64_t{1} << (i - 1));
    double hi = static_cast<double>(uint64_t{1} << i);
    std::snprintf(buf, sizeof(buf), "%9.0f-%-10.0f %10" PRIu64 " %16.3f\n", lo,
                  hi, r.samples,
                  r.lifetime_sum_ns / static_cast<double>(r.samples) / 1e6);
    out += buf;
  }
  return out;
}

std::string RenderHeapProfileJson(const HeapProfile& profile) {
  std::string out = "{\"schema_version\":";
  out += std::to_string(kHeapProfileSchemaVersion);
  out += ",\"kind\":\"heap_profile\",\"total_live_bytes\":";
  out += std::to_string(profile.total_live_bytes);
  out += ",\"attributed_live_bytes\":";
  out += std::to_string(profile.attributed_live_bytes);
  out += ",\"samples_taken\":";
  out += std::to_string(profile.samples_taken);
  out += ",\"callsites\":[";
  bool first = true;
  for (const auto& [id, c] : profile.callsites) {
    if (!first) out += ',';
    first = false;
    out += "{\"id\":";
    out += std::to_string(id);
    out += ",\"name\":\"";
    AppendJsonEscaped(out, c.name);
    out += "\",\"live_bytes\":";
    out += std::to_string(c.live_bytes);
    out += ",\"peak_live_bytes\":";
    out += std::to_string(c.peak_live_bytes);
    out += ",\"cum_bytes\":";
    out += std::to_string(c.cum_bytes);
    out += ",\"allocs\":";
    out += std::to_string(c.allocs);
    out += ",\"frees\":";
    out += std::to_string(c.frees);
    out += ",\"samples\":";
    out += std::to_string(c.samples);
    out += ",\"sampled_live_bytes\":";
    out += std::to_string(c.sampled_live_bytes);
    out += ",\"sampled_lifetimes\":";
    out += std::to_string(c.sampled_lifetimes);
    out += ",\"lifetime_sum_ns\":";
    out += FormatJsonNumber(c.lifetime_sum_ns);
    out += ",\"fragmented_hugepages\":";
    out += std::to_string(c.fragmented_hugepages);
    out += ",\"fragmented_free_bytes\":";
    out += std::to_string(c.fragmented_free_bytes);
    out += '}';
  }
  out += "],\"size_lifetime\":[";
  first = true;
  for (int i = 0; i < HeapProfile::kSizeBuckets; ++i) {
    const SizeLifetimeRow& r = profile.size_lifetime[i];
    if (r.samples == 0) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"bucket\":";
    out += std::to_string(i);
    out += ",\"samples\":";
    out += std::to_string(r.samples);
    out += ",\"lifetime_sum_ns\":";
    out += FormatJsonNumber(r.lifetime_sum_ns);
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace wsc::trace
