// Allocation flight recorder: a fixed-size ring buffer of tier events.
//
// Production allocators cannot afford unbounded logs on the allocation hot
// path; what they can afford is a small, preallocated ring that always
// holds the most recent events — a flight recorder. Every tier of the
// simulated allocator holds a `FlightRecorder*` that defaults to null, so
// the hook in the hot path is a single predicted branch:
//
//   if (trace_) trace_->Emit(EventType::kTransferInsert, ...);
//
// When tracing is off the pointer stays null and the allocator's behavior
// and cost accounting are bit-identical to a build without hooks.
//
// The recorder belongs to one simulated process (same single-writer
// contract as the telemetry registry), so Emit is lock-free by
// construction. Tiers do not know the simulated time; the Allocator stamps
// the recorder with `set_now()` on entry to Allocate/Free/Maintain and
// every event emitted below it inherits that timestamp.

#ifndef WSC_TRACE_FLIGHT_RECORDER_H_
#define WSC_TRACE_FLIGHT_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/sim_clock.h"
#include "trace/trace_event.h"

namespace wsc::trace {

// The drained contents of one process's recorder, oldest event first.
// When the ring wrapped, `dropped` counts the overwritten events; the
// per-type totals cover every Emit call, including dropped ones, so a
// Fig. 6-style tier breakdown stays exact even for a small ring.
struct TraceBuffer {
  size_t capacity = 0;
  uint64_t total_emitted = 0;
  uint64_t dropped = 0;
  std::vector<TraceEvent> events;                 // chronological
  uint64_t emitted_by_type[kNumEventTypes] = {};  // includes dropped

  bool operator==(const TraceBuffer&) const = default;
};

class FlightRecorder {
 public:
  // A recorder always records; "tracing disabled" is a null pointer at the
  // hook site, not a flag here. Capacity must be positive.
  explicit FlightRecorder(size_t capacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Stamps the simulated time applied to subsequent Emit calls.
  void set_now(SimTime now) { now_ = now; }
  SimTime now() const { return now_; }

  void Emit(EventType type, int vcpu, int domain, int cls, int index,
            uint64_t a, uint64_t b) {
    TraceEvent& e = ring_[next_ % ring_.size()];
    e.ts = now_;
    e.a = a;
    e.b = b;
    e.type = type;
    e.vcpu = static_cast<int16_t>(vcpu);
    e.domain = static_cast<int16_t>(domain);
    e.cls = static_cast<int16_t>(cls);
    e.index = static_cast<int16_t>(index);
    ++next_;
    ++emitted_by_type_[static_cast<int>(type)];
  }

  size_t capacity() const { return ring_.size(); }
  uint64_t total_emitted() const { return next_; }

  // Copies out the ring, oldest first. The recorder keeps recording.
  TraceBuffer Drain() const;

 private:
  std::vector<TraceEvent> ring_;
  uint64_t next_ = 0;  // total events ever emitted; next slot is next_ % cap
  SimTime now_ = 0;
  uint64_t emitted_by_type_[kNumEventTypes] = {};
};

}  // namespace wsc::trace

#endif  // WSC_TRACE_FLIGHT_RECORDER_H_
