#include "trace/chrome_trace.h"

#include <set>
#include <utility>

#include "telemetry/statsz.h"

namespace wsc::trace {

namespace {

using telemetry::AppendJsonEscaped;
using telemetry::FormatJsonNumber;

// Payload field names per event type (nullptr = field unused, omitted).
struct ArgNames {
  const char* a;
  const char* b;
};

constexpr ArgNames kArgNames[kNumEventTypes] = {
    {"bytes", nullptr},          // kCpuCacheMiss
    {"bytes", nullptr},          // kCpuCacheOverflow
    {"bytes_gained", "victims"}, // kCpuCacheResize
    {"objects", "overflowed"},   // kTransferInsert
    {"requested", "served"},     // kTransferRemove
    {"objects", nullptr},        // kTransferPlunder
    {"span_id", "capacity"},     // kCflSpanAllocate
    {"span_id", "capacity"},     // kCflSpanReturn
    {"span_id", "pages"},        // kPageHeapSpanAlloc
    {"span_id", "pages"},        // kPageHeapSpanFree
    {"hugepage", "pages"},       // kFillerPlace
    {"hugepage", "pages"},       // kFillerSubrelease
    {"bytes", "footprint"},      // kPressureStep
    {"bytes", "callsite"},       // kSampledAlloc
    {"bytes", "callsite"},       // kSampledFree
};

void AppendArg(std::string& out, bool& first, const char* name, uint64_t v) {
  if (!first) out += ',';
  first = false;
  out += '"';
  out += name;
  out += "\":";
  out += std::to_string(v);
}

void AppendEvent(std::string& out, const ProcessTrace& p,
                 const TraceEvent& e) {
  out += "{\"name\":\"";
  out += EventTypeName(e.type);
  out += "\",\"cat\":\"";
  out += EventTypeCategory(e.type);
  out += "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
  out += FormatJsonNumber(static_cast<double>(e.ts) / 1000.0);
  out += ",\"pid\":";
  out += std::to_string(p.pid);
  out += ",\"tid\":";
  out += std::to_string(p.tid);
  out += ",\"args\":{";
  bool first = true;
  if (e.vcpu >= 0) AppendArg(out, first, "vcpu", e.vcpu);
  if (e.domain >= 0) AppendArg(out, first, "domain", e.domain);
  if (e.cls >= 0) AppendArg(out, first, "cls", e.cls);
  if (e.index >= 0) AppendArg(out, first, "index", e.index);
  const ArgNames& names = kArgNames[static_cast<int>(e.type)];
  if (names.a != nullptr) AppendArg(out, first, names.a, e.a);
  if (names.b != nullptr) AppendArg(out, first, names.b, e.b);
  out += "}}";
}

void AppendMetadata(std::string& out, const char* name, int pid, int tid,
                    const std::string& value, const std::string& extra) {
  out += "{\"name\":\"";
  out += name;
  out += "\",\"ph\":\"M\",\"pid\":";
  out += std::to_string(pid);
  if (tid >= 0) {
    out += ",\"tid\":";
    out += std::to_string(tid);
  }
  out += ",\"args\":{\"name\":\"";
  AppendJsonEscaped(out, value);
  out += '"';
  out += extra;
  out += "}}";
}

}  // namespace

std::string RenderChromeTrace(const std::vector<ProcessTrace>& processes) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  std::set<int> named_pids;
  for (const ProcessTrace& p : processes) {
    if (named_pids.insert(p.pid).second) {
      if (!first) out += ',';
      first = false;
      AppendMetadata(out, "process_name", p.pid, -1,
                     "machine" + std::to_string(p.pid), "");
    }
    if (!first) out += ',';
    first = false;
    std::string drop_args = ",\"emitted\":" +
                            std::to_string(p.buffer.total_emitted) +
                            ",\"dropped\":" + std::to_string(p.buffer.dropped);
    AppendMetadata(out, "thread_name", p.pid, p.tid,
                   "process" + std::to_string(p.tid), drop_args);
  }
  for (const ProcessTrace& p : processes) {
    for (const TraceEvent& e : p.buffer.events) {
      if (!first) out += ',';
      first = false;
      AppendEvent(out, p, e);
    }
  }
  out += "]}";
  return out;
}

}  // namespace wsc::trace
