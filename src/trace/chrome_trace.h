// Chrome-tracing / Perfetto JSON export of drained flight-recorder rings.
//
// The JSON Object Format understood by chrome://tracing and ui.perfetto.dev:
// a top-level {"traceEvents":[...]} array of instant events, one per
// recorded tier event, with pid = machine index and tid = process index
// within the machine. Timestamps are simulated nanoseconds converted to the
// format's microsecond unit.
//
// Rendering is deterministic: events appear in the order the caller lists
// the per-process buffers (the fleet merge lists them machine-index
// ordered), and all numbers go through the statsz round-trip formatter, so
// a trace of the same fleet run is bit-identical for any --threads value.

#ifndef WSC_TRACE_CHROME_TRACE_H_
#define WSC_TRACE_CHROME_TRACE_H_

#include <string>
#include <vector>

#include "trace/flight_recorder.h"

namespace wsc::trace {

// One drained recorder with its trace coordinates.
struct ProcessTrace {
  int pid = 0;  // machine index
  int tid = 0;  // process index within the machine
  TraceBuffer buffer;
};

// Renders the full Chrome-tracing JSON document: process/thread metadata
// records first, then every buffered event. Dropped-event counts are
// summarized per process in the metadata args.
std::string RenderChromeTrace(const std::vector<ProcessTrace>& processes);

}  // namespace wsc::trace

#endif  // WSC_TRACE_CHROME_TRACE_H_
