#include "trace/flight_recorder.h"

#include <algorithm>

#include "common/logging.h"

namespace wsc::trace {

namespace {

struct EventTypeInfo {
  const char* name;
  const char* category;
};

constexpr EventTypeInfo kEventTypeInfo[kNumEventTypes] = {
    {"cpu_cache_miss", "cpu_cache"},
    {"cpu_cache_overflow", "cpu_cache"},
    {"cpu_cache_resize", "cpu_cache"},
    {"transfer_insert", "transfer_cache"},
    {"transfer_remove", "transfer_cache"},
    {"transfer_plunder", "transfer_cache"},
    {"cfl_span_allocate", "central_free_list"},
    {"cfl_span_return", "central_free_list"},
    {"page_heap_span_alloc", "page_heap"},
    {"page_heap_span_free", "page_heap"},
    {"filler_place", "huge_page_filler"},
    {"filler_subrelease", "huge_page_filler"},
    {"pressure_step", "pressure"},
    {"sampled_alloc", "sampler"},
    {"sampled_free", "sampler"},
    {"growth_failure", "failure"},
    {"emergency_recovery", "failure"},
    {"guard_report", "failure"},
};

}  // namespace

const char* EventTypeName(EventType type) {
  int i = static_cast<int>(type);
  WSC_CHECK(i >= 0 && i < kNumEventTypes);
  return kEventTypeInfo[i].name;
}

const char* EventTypeCategory(EventType type) {
  int i = static_cast<int>(type);
  WSC_CHECK(i >= 0 && i < kNumEventTypes);
  return kEventTypeInfo[i].category;
}

FlightRecorder::FlightRecorder(size_t capacity) : ring_(capacity) {
  WSC_CHECK(capacity > 0);
}

TraceBuffer FlightRecorder::Drain() const {
  TraceBuffer out;
  out.capacity = ring_.size();
  out.total_emitted = next_;
  size_t kept = std::min<uint64_t>(next_, ring_.size());
  out.dropped = next_ - kept;
  out.events.reserve(kept);
  // Oldest surviving event sits at next_ % capacity once the ring wrapped,
  // at slot 0 before that.
  uint64_t start = next_ - kept;
  for (uint64_t i = start; i < next_; ++i) {
    out.events.push_back(ring_[i % ring_.size()]);
  }
  for (int t = 0; t < kNumEventTypes; ++t) {
    out.emitted_by_type[t] = emitted_by_type_[t];
  }
  return out;
}

}  // namespace wsc::trace
