// pprof-style heap profile: callsite-attributed live heap, peaks,
// sampled lifetimes, and hugepage-fragmentation attribution.
//
// Production TCMalloc's heapz answers "which callsites own the heap?";
// the paper's Figs. 7-8 are fleet aggregates of exactly such profiles.
// Our workloads have no real stacks, so a callsite is a synthetic 64-bit
// ID (an FNV-1a hash of "<workload>/<behavior>") registered with a
// human-readable name by the workload driver.
//
// This header is pure data + rendering. Collection lives in the allocator
// (`Allocator::CollectHeapProfile`), which owns the pagemap, filler, and
// sampler the profile is derived from. Profiles from different processes
// merge by summing per-callsite rows keyed by ID; merging machine-index
// ordered keeps fleet profiles bit-identical for any --threads value.

#ifndef WSC_TRACE_HEAP_PROFILE_H_
#define WSC_TRACE_HEAP_PROFILE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace wsc::trace {

inline constexpr int kHeapProfileSchemaVersion = 1;

// Synthetic callsite ID for `name`: 64-bit FNV-1a. Deterministic across
// processes and runs; 0 is reserved for "untagged" (FNV-1a never produces
// 0 for the short names used here, and RegisterCallsite rejects it).
constexpr uint64_t CallsiteId(std::string_view name) {
  uint64_t h = 14695981039346656037ull;
  for (char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// Per-callsite row. `peak_live_bytes` is the callsite's own high-water
// mark (callsite peaks are not simultaneous, so their sum can exceed the
// process peak — same caveat as production heapz growth profiles).
struct CallsiteProfile {
  std::string name;
  uint64_t allocs = 0;
  uint64_t frees = 0;
  uint64_t live_bytes = 0;
  uint64_t peak_live_bytes = 0;
  uint64_t cum_bytes = 0;  // total bytes ever allocated here

  // Sampled dimensions (GWP-style, one sample per interval bytes).
  uint64_t samples = 0;
  uint64_t sampled_live_bytes = 0;
  uint64_t sampled_lifetimes = 0;   // finalized (freed or flushed) samples
  double lifetime_sum_ns = 0;       // over finalized samples

  // Fragmentation attribution: hugepages that hold a live sampled object
  // of this callsite while also carrying free (or subreleased) pages —
  // i.e. the callsite pins a partially-used hugepage — and the stranded
  // free bytes on them.
  uint64_t fragmented_hugepages = 0;
  uint64_t fragmented_free_bytes = 0;

  void MergeFrom(const CallsiteProfile& other);

  bool operator==(const CallsiteProfile&) const = default;
};

// One row of the Fig. 8-style size x lifetime table, per power-of-two
// size bucket [2^i, 2^{i+1}).
struct SizeLifetimeRow {
  uint64_t samples = 0;
  double lifetime_sum_ns = 0;

  bool operator==(const SizeLifetimeRow&) const = default;
};

struct HeapProfile {
  static constexpr int kSizeBuckets = 44;  // mirrors LifetimeProfile

  uint64_t total_live_bytes = 0;       // exact allocator in-use bytes
  uint64_t attributed_live_bytes = 0;  // sum of callsite live_bytes
  uint64_t samples_taken = 0;

  // Keyed by callsite ID; std::map keeps iteration (and thus rendering
  // and merge results) deterministic.
  std::map<uint64_t, CallsiteProfile> callsites;

  SizeLifetimeRow size_lifetime[kSizeBuckets] = {};

  void MergeFrom(const HeapProfile& other);

  bool operator==(const HeapProfile&) const = default;
};

// Human-readable pprof-style text: header with attribution coverage,
// callsite table sorted by live bytes (descending, name tie-break), then
// the size x lifetime table. Deterministic.
std::string RenderHeapProfileText(const HeapProfile& profile);

// Machine-readable JSON for tools/mallocz.py and --profile=out.json.
std::string RenderHeapProfileJson(const HeapProfile& profile);

}  // namespace wsc::trace

#endif  // WSC_TRACE_HEAP_PROFILE_H_
