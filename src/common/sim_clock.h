// Simulated time base for the discrete-event workload driver.
//
// All latencies in the simulator are expressed in nanoseconds of virtual
// time. The clock only moves when the driver advances it, which makes every
// experiment deterministic and independent of host machine speed.

#ifndef WSC_COMMON_SIM_CLOCK_H_
#define WSC_COMMON_SIM_CLOCK_H_

#include <cstdint>

#include "common/logging.h"

namespace wsc {

// Virtual nanoseconds since simulation start.
using SimTime = int64_t;

// Duration helpers (all return nanoseconds).
constexpr SimTime Nanoseconds(int64_t n) { return n; }
constexpr SimTime Microseconds(int64_t n) { return n * 1000; }
constexpr SimTime Milliseconds(int64_t n) { return n * 1000 * 1000; }
constexpr SimTime Seconds(int64_t n) { return n * 1000 * 1000 * 1000; }
constexpr SimTime Minutes(int64_t n) { return Seconds(n * 60); }
constexpr SimTime Hours(int64_t n) { return Minutes(n * 60); }
constexpr SimTime Days(int64_t n) { return Hours(n * 24); }

// A monotonically advancing virtual clock.
class SimClock {
 public:
  SimClock() = default;

  // Current virtual time.
  SimTime now() const { return now_; }

  // Advances the clock by a non-negative delta.
  void Advance(SimTime delta) {
    WSC_DCHECK_GE(delta, 0);
    now_ += delta;
  }

  // Advances the clock to an absolute time that must not be in the past.
  void AdvanceTo(SimTime t) {
    WSC_DCHECK_GE(t, now_);
    now_ = t;
  }

 private:
  SimTime now_ = 0;
};

}  // namespace wsc

#endif  // WSC_COMMON_SIM_CLOCK_H_
