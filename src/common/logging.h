// Lightweight assertion and logging macros used throughout wsc-malloc.
//
// CHECK* macros are always on (they guard allocator invariants whose
// violation would silently corrupt bookkeeping); DCHECK* compile away in
// NDEBUG builds and are used on hot simulator paths.

#ifndef WSC_COMMON_LOGGING_H_
#define WSC_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace wsc {

// Prints a formatted fatal error and aborts. Used when an internal invariant
// is violated (a bug in this library, never a user error).
[[noreturn]] inline void FatalError(const char* file, int line,
                                    const char* expr) {
  std::fprintf(stderr, "FATAL %s:%d: CHECK failed: %s\n", file, line, expr);
  std::abort();
}

}  // namespace wsc

#define WSC_CHECK(expr)                              \
  do {                                               \
    if (!(expr)) {                                   \
      ::wsc::FatalError(__FILE__, __LINE__, #expr);  \
    }                                                \
  } while (0)

#define WSC_CHECK_OP(a, op, b) WSC_CHECK((a)op(b))
#define WSC_CHECK_EQ(a, b) WSC_CHECK_OP(a, ==, b)
#define WSC_CHECK_NE(a, b) WSC_CHECK_OP(a, !=, b)
#define WSC_CHECK_LT(a, b) WSC_CHECK_OP(a, <, b)
#define WSC_CHECK_LE(a, b) WSC_CHECK_OP(a, <=, b)
#define WSC_CHECK_GT(a, b) WSC_CHECK_OP(a, >, b)
#define WSC_CHECK_GE(a, b) WSC_CHECK_OP(a, >=, b)

#ifdef NDEBUG
#define WSC_DCHECK(expr) \
  do {                   \
  } while (0)
#else
#define WSC_DCHECK(expr) WSC_CHECK(expr)
#endif

#define WSC_DCHECK_EQ(a, b) WSC_DCHECK((a) == (b))
#define WSC_DCHECK_NE(a, b) WSC_DCHECK((a) != (b))
#define WSC_DCHECK_LT(a, b) WSC_DCHECK((a) < (b))
#define WSC_DCHECK_LE(a, b) WSC_DCHECK((a) <= (b))
#define WSC_DCHECK_GT(a, b) WSC_DCHECK((a) > (b))
#define WSC_DCHECK_GE(a, b) WSC_DCHECK((a) >= (b))

#endif  // WSC_COMMON_LOGGING_H_
