// ASCII table/series printers for bench output.
//
// Every bench binary regenerates one paper table or figure; these helpers
// render rows/series in a uniform, diff-friendly layout and can print the
// paper's reported value next to the measured value.

#ifndef WSC_COMMON_TABLE_H_
#define WSC_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace wsc {

// Columnar table with a header row; column widths auto-fit.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  // Adds one row; must match the header arity.
  void AddRow(std::vector<std::string> row);

  // Renders the table.
  std::string ToString() const;

  // Renders and writes to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with the given number of decimals.
std::string FormatDouble(double v, int decimals = 2);

// Formats a byte count with binary-unit suffix (KiB/MiB/GiB).
std::string FormatBytes(double bytes);

// Formats a percentage with sign, e.g. "+1.40%" / "-3.40%".
std::string FormatSignedPercent(double v, int decimals = 2);

// Prints a section banner for bench output.
void PrintBanner(const std::string& title);

// Prints an x/y series (one "x y" pair per line) with a label, matching how
// paper figures are plotted.
void PrintSeries(const std::string& label,
                 const std::vector<std::pair<double, double>>& points,
                 int decimals = 3);

}  // namespace wsc

#endif  // WSC_COMMON_TABLE_H_
