// Deterministic pseudo-random number generator.
//
// Everything in wsc-malloc that needs randomness (workload sampling, fleet
// machine seeding, scheduler jitter) draws from an explicitly-seeded Rng so
// that simulations are exactly reproducible. The engine is xoshiro256++,
// seeded through SplitMix64, which is fast and has no observable bias for
// our use cases.

#ifndef WSC_COMMON_RNG_H_
#define WSC_COMMON_RNG_H_

#include <cstdint>

#include "common/logging.h"

namespace wsc {

// A small, fast, deterministic random number generator (xoshiro256++).
class Rng {
 public:
  // Seeds the generator. Two Rng instances constructed with the same seed
  // produce identical streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  // Re-seeds the generator in place.
  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the single-word seed into 256 bits of state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  // Returns the next 64 uniformly distributed bits.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Returns a uniform integer in [0, bound). bound must be positive.
  uint64_t UniformInt(uint64_t bound) {
    WSC_DCHECK_GT(bound, 0u);
    // Lemire's multiply-shift rejection method.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
      uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Returns a uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    WSC_DCHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(
                    UniformInt(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Returns a uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Returns true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p) { return UniformDouble() < p; }

  // Derives a child seed; used to give each fleet machine / workload its own
  // independent deterministic stream.
  uint64_t Fork() { return Next() ^ 0xd1b54a32d192ed03ULL; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace wsc

#endif  // WSC_COMMON_RNG_H_
