// Random-variate samplers used to model workload allocation behavior.
//
// Warehouse-scale allocation behavior (Figs. 7 and 8 of the paper) is highly
// skewed: object sizes span 8 B to >1 GB and lifetimes span <1 ms to >7 days.
// We model these with mixtures of lognormal / Pareto / point-mass components
// and with Zipf popularity for fleet binary mixes (Fig. 3).

#ifndef WSC_COMMON_DISTRIBUTION_H_
#define WSC_COMMON_DISTRIBUTION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"

namespace wsc {

// Abstract sampler of a non-negative real-valued random variable.
class Distribution {
 public:
  virtual ~Distribution() = default;

  // Draws one sample using the caller's RNG stream.
  virtual double Sample(Rng& rng) const = 0;
};

// Always returns the same value. Used for point masses (e.g., a workload
// that allocates a single dominant object size).
class PointDistribution : public Distribution {
 public:
  explicit PointDistribution(double value);
  double Sample(Rng& rng) const override;

 private:
  double value_;
};

// Uniform over [lo, hi).
class UniformDistribution : public Distribution {
 public:
  UniformDistribution(double lo, double hi);
  double Sample(Rng& rng) const override;

 private:
  double lo_;
  double hi_;
};

// Lognormal with the given parameters of the underlying normal. Sizes of
// small heap objects in server workloads are classically lognormal-ish.
class LognormalDistribution : public Distribution {
 public:
  LognormalDistribution(double mu, double sigma);
  double Sample(Rng& rng) const override;

  // Convenience: builds a lognormal whose median is `median` and whose
  // spread multiplier (one sigma in log-space) is `spread`.
  static LognormalDistribution FromMedian(double median, double spread);

 private:
  double mu_;
  double sigma_;
};

// Pareto (power-law) with scale x_m and shape alpha, optionally capped.
// Captures the heavy tail of large allocations.
class ParetoDistribution : public Distribution {
 public:
  ParetoDistribution(double scale, double alpha, double cap = 0.0);
  double Sample(Rng& rng) const override;

 private:
  double scale_;
  double alpha_;
  double cap_;  // 0 means uncapped.
};

// Exponential with the given mean. Used for inter-arrival gaps.
class ExponentialDistribution : public Distribution {
 public:
  explicit ExponentialDistribution(double mean);
  double Sample(Rng& rng) const override;

 private:
  double mean_;
};

// A weighted mixture of component distributions.
class MixtureDistribution : public Distribution {
 public:
  struct Component {
    double weight;
    std::shared_ptr<const Distribution> dist;
  };

  explicit MixtureDistribution(std::vector<Component> components);
  double Sample(Rng& rng) const override;

  // Index of the component that would be chosen for a given uniform draw;
  // exposed for correlated sampling (size and lifetime drawn from the same
  // mixture component, see workload/workload.h).
  size_t PickComponent(Rng& rng) const;
  size_t num_components() const { return components_.size(); }
  const Distribution& component(size_t i) const;

 private:
  std::vector<Component> components_;
  std::vector<double> cumulative_;
};

// Discrete empirical distribution over explicit (value, weight) pairs.
class EmpiricalDistribution : public Distribution {
 public:
  struct Bin {
    double value;
    double weight;
  };

  explicit EmpiricalDistribution(std::vector<Bin> bins);
  double Sample(Rng& rng) const override;

 private:
  std::vector<Bin> bins_;
  std::vector<double> cumulative_;
};

// Zipf popularity over ranks 1..n with exponent s. Returns the rank as a
// double in [1, n]. Fleet binary popularity (Fig. 3) follows this shape.
class ZipfDistribution : public Distribution {
 public:
  ZipfDistribution(size_t n, double s);
  double Sample(Rng& rng) const override;

  // Rank probabilities, normalized.
  const std::vector<double>& probabilities() const { return probs_; }

 private:
  std::vector<double> probs_;
  std::vector<double> cumulative_;
};

}  // namespace wsc

#endif  // WSC_COMMON_DISTRIBUTION_H_
