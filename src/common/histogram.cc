#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "common/logging.h"

namespace wsc {

LogHistogram::LogHistogram() {
  std::memset(buckets_, 0, sizeof(buckets_));
  std::memset(bucket_value_sum_, 0, sizeof(bucket_value_sum_));
}

int LogHistogram::BucketFor(double value) {
  if (value < 1.0) return 0;
  int b = static_cast<int>(std::floor(std::log2(value)));
  return std::min(b, kNumBuckets - 1);
}

void LogHistogram::Add(double value, double weight) {
  WSC_DCHECK_GE(value, 0.0);
  WSC_DCHECK_GE(weight, 0.0);
  int b = BucketFor(value);
  buckets_[b] += weight;
  bucket_value_sum_[b] += weight * value;
  total_weight_ += weight;
  weighted_value_sum_ += weight * value;
  ++count_;
}

void LogHistogram::Merge(const LogHistogram& other) {
  for (int b = 0; b < kNumBuckets; ++b) {
    buckets_[b] += other.buckets_[b];
    bucket_value_sum_[b] += other.bucket_value_sum_[b];
  }
  total_weight_ += other.total_weight_;
  weighted_value_sum_ += other.weighted_value_sum_;
  count_ += other.count_;
}

double LogHistogram::Mean() const {
  if (total_weight_ <= 0.0) return 0.0;
  return weighted_value_sum_ / total_weight_;
}

double LogHistogram::Quantile(double q) const {
  if (total_weight_ <= 0.0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  double target = q * total_weight_;
  double acc = 0.0;
  for (int b = 0; b < kNumBuckets; ++b) {
    if (buckets_[b] <= 0.0) continue;
    if (acc + buckets_[b] >= target) {
      double lo = (b == 0) ? 0.0 : std::pow(2.0, b);
      double hi = std::pow(2.0, b + 1);
      double frac = (target - acc) / buckets_[b];
      return lo + frac * (hi - lo);
    }
    acc += buckets_[b];
  }
  return std::pow(2.0, kNumBuckets);
}

double LogHistogram::FractionBelow(double threshold) const {
  if (total_weight_ <= 0.0) return 0.0;
  double acc = 0.0;
  for (int b = 0; b < kNumBuckets; ++b) {
    if (buckets_[b] <= 0.0) continue;
    double lo = (b == 0) ? 0.0 : std::pow(2.0, b);
    double hi = std::pow(2.0, b + 1);
    if (hi <= threshold) {
      acc += buckets_[b];
    } else if (lo < threshold) {
      // Interpolate within the straddling bucket.
      acc += buckets_[b] * (threshold - lo) / (hi - lo);
    }
  }
  return acc / total_weight_;
}

std::vector<LogHistogram::CdfPoint> LogHistogram::Cdf() const {
  std::vector<CdfPoint> points;
  if (total_weight_ <= 0.0) return points;
  double acc = 0.0;
  for (int b = 0; b < kNumBuckets; ++b) {
    if (buckets_[b] <= 0.0) continue;
    acc += buckets_[b];
    points.push_back({std::pow(2.0, b + 1), acc / total_weight_});
  }
  return points;
}

std::string LogHistogram::ToString(const char* unit) const {
  std::ostringstream os;
  os << "count=" << count_ << " mean=" << Mean() << unit
     << " p50=" << Quantile(0.5) << unit << " p99=" << Quantile(0.99) << unit
     << "\n";
  for (int b = 0; b < kNumBuckets; ++b) {
    if (buckets_[b] <= 0.0) continue;
    double lo = (b == 0) ? 0.0 : std::pow(2.0, b);
    os << "  [" << lo << ", " << std::pow(2.0, b + 1) << ") " << unit << ": "
       << buckets_[b] << "\n";
  }
  return os.str();
}

}  // namespace wsc
