#include "common/table.h"

#include <cstdio>
#include <sstream>

#include "common/logging.h"

namespace wsc {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  WSC_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  WSC_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c];
      os << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    os << "\n";
  };
  emit_row(header_);
  os << "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string FormatDouble(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string FormatBytes(double bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, units[u]);
  return buf;
}

std::string FormatSignedPercent(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.*f%%", decimals, v);
  return buf;
}

void PrintBanner(const std::string& title) {
  std::string bar(title.size() + 4, '=');
  std::printf("\n%s\n= %s =\n%s\n", bar.c_str(), title.c_str(), bar.c_str());
}

void PrintSeries(const std::string& label,
                 const std::vector<std::pair<double, double>>& points,
                 int decimals) {
  std::printf("series: %s\n", label.c_str());
  for (const auto& [x, y] : points) {
    std::printf("  %.*f %.*f\n", decimals, x, decimals, y);
  }
}

}  // namespace wsc
