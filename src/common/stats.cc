#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace wsc {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::StdDev() const { return std::sqrt(Variance()); }

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  WSC_CHECK_EQ(x.size(), y.size());
  size_t n = x.size();
  if (n < 2) return 0.0;
  double mx = std::accumulate(x.begin(), x.end(), 0.0) / n;
  double my = std::accumulate(y.begin(), y.end(), 0.0) / n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double dx = x[i] - mx;
    double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {

// Average ranks with tie handling (ranks start at 1).
std::vector<double> Ranks(const std::vector<double>& v) {
  size_t n = v.size();
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0u);
  std::sort(idx.begin(), idx.end(),
            [&v](size_t a, size_t b) { return v[a] < v[b]; });
  std::vector<double> ranks(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && v[idx[j + 1]] == v[idx[i]]) ++j;
    double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0
                      + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[idx[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y) {
  WSC_CHECK_EQ(x.size(), y.size());
  if (x.size() < 2) return 0.0;
  return PearsonCorrelation(Ranks(x), Ranks(y));
}

double PercentChange(double a, double b) {
  if (a == 0.0) return 0.0;
  return (b - a) / a * 100.0;
}

}  // namespace wsc
