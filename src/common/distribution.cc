#include "common/distribution.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace wsc {

PointDistribution::PointDistribution(double value) : value_(value) {}

double PointDistribution::Sample(Rng& rng) const {
  (void)rng;
  return value_;
}

UniformDistribution::UniformDistribution(double lo, double hi)
    : lo_(lo), hi_(hi) {
  WSC_CHECK_LE(lo, hi);
}

double UniformDistribution::Sample(Rng& rng) const {
  return lo_ + (hi_ - lo_) * rng.UniformDouble();
}

LognormalDistribution::LognormalDistribution(double mu, double sigma)
    : mu_(mu), sigma_(sigma) {
  WSC_CHECK_GE(sigma, 0.0);
}

LognormalDistribution LognormalDistribution::FromMedian(double median,
                                                        double spread) {
  WSC_CHECK_GT(median, 0.0);
  WSC_CHECK_GE(spread, 1.0);
  return LognormalDistribution(std::log(median), std::log(spread));
}

double LognormalDistribution::Sample(Rng& rng) const {
  // Box-Muller transform; one normal draw per sample keeps the stream
  // deterministic regardless of call interleaving.
  double u1 = rng.UniformDouble();
  double u2 = rng.UniformDouble();
  // Guard the log against a zero draw.
  u1 = std::max(u1, 1e-300);
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return std::exp(mu_ + sigma_ * z);
}

ParetoDistribution::ParetoDistribution(double scale, double alpha, double cap)
    : scale_(scale), alpha_(alpha), cap_(cap) {
  WSC_CHECK_GT(scale, 0.0);
  WSC_CHECK_GT(alpha, 0.0);
}

double ParetoDistribution::Sample(Rng& rng) const {
  double u = std::max(rng.UniformDouble(), 1e-300);
  double x = scale_ / std::pow(u, 1.0 / alpha_);
  if (cap_ > 0.0) x = std::min(x, cap_);
  return x;
}

ExponentialDistribution::ExponentialDistribution(double mean) : mean_(mean) {
  WSC_CHECK_GT(mean, 0.0);
}

double ExponentialDistribution::Sample(Rng& rng) const {
  double u = std::max(rng.UniformDouble(), 1e-300);
  return -mean_ * std::log(u);
}

MixtureDistribution::MixtureDistribution(std::vector<Component> components)
    : components_(std::move(components)) {
  WSC_CHECK(!components_.empty());
  double total = 0.0;
  for (const Component& c : components_) {
    WSC_CHECK_GE(c.weight, 0.0);
    WSC_CHECK(c.dist != nullptr);
    total += c.weight;
  }
  WSC_CHECK_GT(total, 0.0);
  double acc = 0.0;
  cumulative_.reserve(components_.size());
  for (const Component& c : components_) {
    acc += c.weight / total;
    cumulative_.push_back(acc);
  }
  cumulative_.back() = 1.0;  // Guard against rounding.
}

size_t MixtureDistribution::PickComponent(Rng& rng) const {
  double u = rng.UniformDouble();
  auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  if (it == cumulative_.end()) --it;
  return static_cast<size_t>(it - cumulative_.begin());
}

const Distribution& MixtureDistribution::component(size_t i) const {
  WSC_CHECK_LT(i, components_.size());
  return *components_[i].dist;
}

double MixtureDistribution::Sample(Rng& rng) const {
  return components_[PickComponent(rng)].dist->Sample(rng);
}

EmpiricalDistribution::EmpiricalDistribution(std::vector<Bin> bins)
    : bins_(std::move(bins)) {
  WSC_CHECK(!bins_.empty());
  double total = 0.0;
  for (const Bin& b : bins_) {
    WSC_CHECK_GE(b.weight, 0.0);
    total += b.weight;
  }
  WSC_CHECK_GT(total, 0.0);
  double acc = 0.0;
  cumulative_.reserve(bins_.size());
  for (const Bin& b : bins_) {
    acc += b.weight / total;
    cumulative_.push_back(acc);
  }
  cumulative_.back() = 1.0;
}

double EmpiricalDistribution::Sample(Rng& rng) const {
  double u = rng.UniformDouble();
  auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  if (it == cumulative_.end()) --it;
  return bins_[static_cast<size_t>(it - cumulative_.begin())].value;
}

ZipfDistribution::ZipfDistribution(size_t n, double s) {
  WSC_CHECK_GT(n, 0u);
  probs_.resize(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    probs_[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
    total += probs_[i];
  }
  cumulative_.resize(n);
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    probs_[i] /= total;
    acc += probs_[i];
    cumulative_[i] = acc;
  }
  cumulative_.back() = 1.0;
}

double ZipfDistribution::Sample(Rng& rng) const {
  double u = rng.UniformDouble();
  auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  if (it == cumulative_.end()) --it;
  return static_cast<double>(it - cumulative_.begin()) + 1.0;
}

}  // namespace wsc
