// Open-addressing hash map keyed by nonzero uintptr_t.
//
// The allocator keeps several address-keyed side tables on its large-object
// and hugepage paths (large-span records, per-span requested sizes, the
// filler's hugepage index). std::unordered_map puts every entry behind a
// node allocation and a bucket indirection; since the keys here are arena
// addresses and hugepage indices — never zero — a flat linear-probing table
// with 0 as the empty sentinel serves the same lookups from one contiguous
// array. Deletion uses backward-shift (no tombstones), so probe sequences
// never degrade with churn. Iteration order is a deterministic function of
// the operation sequence, like every other container in the simulator.

#ifndef WSC_COMMON_FLAT_MAP_H_
#define WSC_COMMON_FLAT_MAP_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace wsc {

template <typename V>
class FlatPtrMap {
 public:
  FlatPtrMap() : slots_(kMinCapacity) {}

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Returns the value for `key`, or nullptr if absent.
  V* Find(uintptr_t key) {
    size_t i;
    return FindIndex(key, &i) ? &slots_[i].value : nullptr;
  }
  const V* Find(uintptr_t key) const {
    size_t i;
    return FindIndex(key, &i) ? &slots_[i].value : nullptr;
  }

  // Inserts a new entry; `key` must be nonzero and absent.
  V& Insert(uintptr_t key, V value) {
    WSC_DCHECK_GT(key, 0u);
    if ((size_ + 1) * 4 > slots_.size() * 3) Rehash(slots_.size() * 2);
    size_t i = Home(key);
    while (slots_[i].key != 0) {
      WSC_DCHECK(slots_[i].key != key);
      i = Next(i);
    }
    slots_[i].key = key;
    slots_[i].value = std::move(value);
    ++size_;
    return slots_[i].value;
  }

  // Removes `key` if present; returns whether it was.
  bool Erase(uintptr_t key) {
    size_t hole;
    if (!FindIndex(key, &hole)) return false;
    // Backward-shift deletion: pull displaced entries into the hole so
    // every surviving entry stays reachable from its home slot.
    for (size_t j = Next(hole); slots_[j].key != 0; j = Next(j)) {
      size_t home = Home(slots_[j].key);
      if (((j - home) & Mask()) >= ((j - hole) & Mask())) {
        slots_[hole] = std::move(slots_[j]);
        hole = j;
      }
    }
    slots_[hole] = Slot();
    --size_;
    return true;
  }

  // Calls fn(key, value) for every entry.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.key != 0) fn(s.key, s.value);
    }
  }

 private:
  struct Slot {
    uintptr_t key = 0;
    V value{};
  };

  static constexpr size_t kMinCapacity = 16;  // power of two

  size_t Mask() const { return slots_.size() - 1; }
  size_t Next(size_t i) const { return (i + 1) & Mask(); }

  size_t Home(uintptr_t key) const {
    // Fibonacci multiply + fold: arena addresses are page/hugepage aligned,
    // so the low bits alone would collide; the high bits of the product
    // don't.
    uint64_t h = static_cast<uint64_t>(key) * 0x9e3779b97f4a7c15ULL;
    return static_cast<size_t>(h ^ (h >> 32)) & Mask();
  }

  bool FindIndex(uintptr_t key, size_t* out) const {
    WSC_DCHECK_GT(key, 0u);
    for (size_t i = Home(key); slots_[i].key != 0; i = Next(i)) {
      if (slots_[i].key == key) {
        *out = i;
        return true;
      }
    }
    return false;
  }

  void Rehash(size_t capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(capacity, Slot());
    for (Slot& s : old) {
      if (s.key == 0) continue;
      size_t i = Home(s.key);
      while (slots_[i].key != 0) i = Next(i);
      slots_[i] = std::move(s);
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
};

}  // namespace wsc

#endif  // WSC_COMMON_FLAT_MAP_H_
