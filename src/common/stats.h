// Small statistics helpers: running moments and rank correlation.
//
// Spearman's rank correlation is used to reproduce the paper's Fig. 16
// finding of a -0.75 correlation between span capacity and span return rate.

#ifndef WSC_COMMON_STATS_H_
#define WSC_COMMON_STATS_H_

#include <cstdint>
#include <vector>

namespace wsc {

// Online mean / variance accumulator (Welford).
class RunningStat {
 public:
  void Add(double x);

  uint64_t count() const { return count_; }
  double Mean() const { return count_ ? mean_ : 0.0; }
  double Variance() const;
  double StdDev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double Sum() const { return sum_; }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Pearson correlation of two equal-length series.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

// Spearman rank correlation of two equal-length series. Ties receive
// fractional (average) ranks.
double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y);

// Relative change (b - a) / a in percent; returns 0 when a == 0.
double PercentChange(double a, double b);

}  // namespace wsc

#endif  // WSC_COMMON_STATS_H_
