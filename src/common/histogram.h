// Log-bucketed histogram used for sizes, lifetimes, and latencies.
//
// Paper figures 7 and 8 present object size and lifetime distributions over
// many orders of magnitude; a power-of-two-bucketed histogram captures them
// compactly and lets benches print CDFs in the same shape.

#ifndef WSC_COMMON_HISTOGRAM_H_
#define WSC_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace wsc {

// Histogram over non-negative values with power-of-two buckets.
// Bucket b covers [2^b, 2^(b+1)); values of 0 land in bucket 0.
class LogHistogram {
 public:
  LogHistogram();

  // Records `value` with the given weight (default 1).
  void Add(double value, double weight = 1.0);

  // Merges another histogram into this one.
  void Merge(const LogHistogram& other);

  // Total recorded weight.
  double total_weight() const { return total_weight_; }

  // Number of Add() calls (unweighted).
  uint64_t count() const { return count_; }

  // Weighted mean of recorded values.
  double Mean() const;

  // Approximate quantile (q in [0,1]) computed by linear interpolation
  // within the containing bucket.
  double Quantile(double q) const;

  // Fraction of recorded weight at values strictly below `threshold`.
  double FractionBelow(double threshold) const;

  // Fraction of recorded weight at values >= `threshold`.
  double FractionAtLeast(double threshold) const {
    return 1.0 - FractionBelow(threshold);
  }

  // One CDF point per non-empty bucket: (bucket upper bound, cumulative
  // fraction). Suitable for printing paper-style CDFs.
  struct CdfPoint {
    double upper_bound;
    double cumulative_fraction;
  };
  std::vector<CdfPoint> Cdf() const;

  // Renders a human-readable multi-line summary (for examples/debugging).
  std::string ToString(const char* unit = "") const;

  // --- Raw bucket access (telemetry rebinning, profile export) ---
  static constexpr int kNumBuckets = 64;

  // Recorded weight in bucket b (covering [2^b, 2^(b+1))).
  double BucketWeight(int b) const { return buckets_[b]; }

  // Exact sum of value*weight recorded into bucket b.
  double BucketValueSum(int b) const { return bucket_value_sum_[b]; }

  // Exact sum of value*weight over all buckets.
  double weighted_sum() const { return weighted_value_sum_; }

 private:
  static int BucketFor(double value);

  double buckets_[kNumBuckets];
  double bucket_value_sum_[kNumBuckets];  // For exact means per bucket.
  double total_weight_ = 0.0;
  double weighted_value_sum_ = 0.0;
  uint64_t count_ = 0;
};

}  // namespace wsc

#endif  // WSC_COMMON_HISTOGRAM_H_
