// Tests for the statsz renderers, plus the end-to-end guarantee that an
// allocator's snapshot covers every tier the paper's telemetry reports on.

#include "telemetry/statsz.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "tcmalloc/allocator.h"

namespace wsc::telemetry {
namespace {

Snapshot SampleSnapshot() {
  MetricRegistry reg;
  reg.RegisterCounter("cpu_cache", "hits")->Add(42);
  reg.RegisterGauge("page_heap", "filler_used_bytes")->Set(1.5);
  reg.RegisterHistogram("allocator", "heap_sample_bytes", {10.0, 100.0})
      ->Record(7.0, 3);
  return reg.TakeSnapshot();
}

TEST(AppendJsonEscaped, EscapesSpecials) {
  std::string out;
  AppendJsonEscaped(out, "a\"b\\c\n\t");
  EXPECT_EQ(out, "a\\\"b\\\\c\\n\\t");
}

TEST(FormatJsonNumber, IntegralAndFractional) {
  EXPECT_EQ(FormatJsonNumber(42), "42");
  EXPECT_EQ(FormatJsonNumber(-3), "-3");
  EXPECT_EQ(FormatJsonNumber(0), "0");
  // Fractional values must round-trip.
  EXPECT_DOUBLE_EQ(std::stod(FormatJsonNumber(0.1)), 0.1);
  // Non-finite values are not valid JSON; they render as 0.
  EXPECT_EQ(FormatJsonNumber(1.0 / 0.0), "0");
}

TEST(RenderStatszText, GroupsByComponentAndListsMetrics) {
  std::string text = RenderStatszText(SampleSnapshot());
  EXPECT_NE(text.find("[cpu_cache]"), std::string::npos);
  EXPECT_NE(text.find("[page_heap]"), std::string::npos);
  EXPECT_NE(text.find("hits"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find("heap_sample_bytes"), std::string::npos);
}

TEST(RenderStatszJson, SchemaAndValues) {
  std::string json = RenderStatszJson(SampleSnapshot());
  EXPECT_EQ(json.find("{\"schema_version\":1,\"metrics\":["), 0u);
  EXPECT_NE(json.find("\"component\":\"cpu_cache\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":42"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"bounds\":[10,100]"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":[3,0,0]"), std::string::npos);
  EXPECT_NE(json.find("\"count\":3"), std::string::npos);
}

TEST(WriteStatszFile, PicksFormatByExtension) {
  std::string base = ::testing::TempDir() + "/statsz_test_out";
  for (const std::string& path : {base + ".json", base + ".txt"}) {
    ASSERT_TRUE(WriteStatszFile(path, SampleSnapshot()));
    std::ifstream in(path);
    std::stringstream contents;
    contents << in.rdbuf();
    if (path.size() > 5 &&
        path.compare(path.size() - 5, 5, ".json") == 0) {
      EXPECT_EQ(contents.str().find("{\"schema_version\":1"), 0u);
    } else {
      EXPECT_NE(contents.str().find("[cpu_cache]"), std::string::npos);
    }
    std::remove(path.c_str());
  }
}

// The acceptance bar for the telemetry layer: a real allocator's snapshot
// must carry non-empty metrics for every tier of the paper's breakdown —
// per-CPU cache, transfer cache, central free list, hugepage filler, huge
// cache/region, and page heap.
TEST(AllocatorStatsz, SnapshotCoversAllTiers) {
  tcmalloc::AllocatorConfig config =
      tcmalloc::AllocatorConfig::Builder().WithVcpus(2).Build();
  tcmalloc::Allocator alloc(config);

  std::vector<uintptr_t> live;
  for (int i = 0; i < 20000; ++i) {
    size_t size = 16u << (i % 8);
    if (i % 64 == 63) size = 3u << 20;  // large: page-heap path
    live.push_back(alloc.Allocate(size, i % 2, i));
    if (live.size() > 256) {
      alloc.Free(live.front(), (i + 1) % 2, i);  // cross-vCPU frees
      live.erase(live.begin());
    }
    if (i % 5000 == 0) alloc.Maintain(i);
  }

  Snapshot snap = alloc.TelemetrySnapshot();
  for (const char* tier :
       {"cpu_cache", "transfer_cache", "central_free_list",
        "huge_page_filler", "huge_cache", "huge_region", "page_heap",
        "system", "allocator"}) {
    SCOPED_TRACE(tier);
    bool found = false;
    for (const MetricSample& s : snap.samples) {
      if (s.component == tier) found = true;
    }
    EXPECT_TRUE(found);
  }
  // The tiers this exercise actually drives report non-zero totals.
  EXPECT_GT(snap.ComponentTotal("cpu_cache"), 0.0);
  EXPECT_GT(snap.ComponentTotal("central_free_list"), 0.0);
  EXPECT_GT(snap.ComponentTotal("huge_page_filler"), 0.0);
  EXPECT_GT(snap.ComponentTotal("huge_cache"), 0.0);
  EXPECT_GT(snap.ComponentTotal("page_heap"), 0.0);
  EXPECT_EQ(snap.Find("allocator", "allocations")->counter,
            alloc.num_allocations());

  // Both renderers handle the full snapshot.
  EXPECT_FALSE(RenderStatszText(snap).empty());
  EXPECT_NE(RenderStatszJson(snap).find("\"component\":\"page_heap\""),
            std::string::npos);
}

}  // namespace
}  // namespace wsc::telemetry
