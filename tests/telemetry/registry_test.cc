// Tests for the metric registry: live handles, exported metrics,
// snapshot ordering, and the merge algebra the fleet aggregation relies
// on.

#include "telemetry/registry.h"

#include <gtest/gtest.h>

#include <vector>

namespace wsc::telemetry {
namespace {

TEST(Counter, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.Set(2.5);
  g.Add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
}

TEST(FixedHistogram, BucketsAndMoments) {
  FixedHistogram h({1.0, 10.0, 100.0});
  ASSERT_EQ(h.buckets().size(), 4u);  // bounds + overflow
  h.Record(0.5);        // <= 1
  h.Record(10.0);       // <= 10 (bound is inclusive)
  h.Record(50.0, 2);    // <= 100, weight 2
  h.Record(1000.0);     // overflow
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 2u);
  EXPECT_EQ(h.buckets()[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 10.0 + 2 * 50.0 + 1000.0);
  EXPECT_DOUBLE_EQ(h.Mean(), h.sum() / 5.0);
}

TEST(MetricRegistry, LiveHandlesSurviveAndSnapshot) {
  MetricRegistry reg;
  Counter* hits = reg.RegisterCounter("cpu_cache", "hits");
  Gauge* bytes = reg.RegisterGauge("cpu_cache", "cached_bytes");
  FixedHistogram* hist =
      reg.RegisterHistogram("allocator", "heap_sample_bytes", {100.0});

  // Re-registering the same metric returns the same handle.
  EXPECT_EQ(reg.RegisterCounter("cpu_cache", "hits"), hits);
  EXPECT_EQ(reg.num_metrics(), 3u);

  hits->Add(7);
  bytes->Set(1024);
  hist->Record(50.0);
  hist->Record(500.0);

  Snapshot snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.schema_version, kTelemetrySchemaVersion);
  ASSERT_EQ(snap.samples.size(), 3u);

  const MetricSample* s = snap.Find("cpu_cache", "hits");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->kind, MetricKind::kCounter);
  EXPECT_EQ(s->counter, 7u);
  EXPECT_DOUBLE_EQ(s->ScalarValue(), 7.0);

  s = snap.Find("cpu_cache", "cached_bytes");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->kind, MetricKind::kGauge);
  EXPECT_DOUBLE_EQ(s->gauge, 1024.0);

  s = snap.Find("allocator", "heap_sample_bytes");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->kind, MetricKind::kHistogram);
  EXPECT_EQ(s->hist_count, 2u);
  ASSERT_EQ(s->buckets.size(), 2u);
  EXPECT_EQ(s->buckets[0], 1u);
  EXPECT_EQ(s->buckets[1], 1u);
  EXPECT_DOUBLE_EQ(s->ScalarValue(), 2.0);  // histograms report count
}

TEST(MetricRegistry, SnapshotSortedByComponentThenName) {
  MetricRegistry reg;
  reg.RegisterCounter("transfer_cache", "misses");
  reg.RegisterCounter("cpu_cache", "underflows");
  reg.RegisterCounter("cpu_cache", "hits");
  Snapshot snap = reg.TakeSnapshot();
  ASSERT_EQ(snap.samples.size(), 3u);
  EXPECT_EQ(snap.samples[0].Key(), "cpu_cache/hits");
  EXPECT_EQ(snap.samples[1].Key(), "cpu_cache/underflows");
  EXPECT_EQ(snap.samples[2].Key(), "transfer_cache/misses");
}

TEST(MetricRegistry, ExportedMetricsAccumulateAndReset) {
  MetricRegistry reg;
  // Two central-free-list instances contribute to one exported metric.
  reg.BeginExport();
  reg.ExportCounter("central_free_list", "fetched_spans", 10);
  reg.ExportCounter("central_free_list", "fetched_spans", 5);
  reg.ExportGauge("central_free_list", "spans", 3);
  Snapshot first = reg.TakeSnapshot();
  EXPECT_EQ(first.Find("central_free_list", "fetched_spans")->counter, 15u);
  EXPECT_DOUBLE_EQ(first.Find("central_free_list", "spans")->gauge, 3.0);

  // The next export cycle starts from zero — no double counting.
  reg.BeginExport();
  reg.ExportCounter("central_free_list", "fetched_spans", 4);
  Snapshot second = reg.TakeSnapshot();
  EXPECT_EQ(second.Find("central_free_list", "fetched_spans")->counter, 4u);
  // A metric not re-exported this cycle reads zero, not its stale value.
  EXPECT_DOUBLE_EQ(second.Find("central_free_list", "spans")->gauge, 0.0);
}

TEST(MetricRegistry, BeginExportLeavesLiveMetricsAlone) {
  MetricRegistry reg;
  Counter* live = reg.RegisterCounter("allocator", "allocations");
  live->Add(9);
  reg.BeginExport();
  EXPECT_EQ(live->value(), 9u);
  EXPECT_EQ(reg.TakeSnapshot().Find("allocator", "allocations")->counter,
            9u);
}

TEST(Snapshot, MergeSumsSharedAndKeepsDisjoint) {
  MetricRegistry a;
  a.RegisterCounter("cpu_cache", "hits")->Add(10);
  a.RegisterGauge("page_heap", "filler_used_bytes")->Set(100);
  a.RegisterHistogram("allocator", "heap_sample_bytes", {10.0})
      ->Record(5.0);

  MetricRegistry b;
  b.RegisterCounter("cpu_cache", "hits")->Add(32);
  b.RegisterCounter("system", "mmap_calls")->Add(2);
  b.RegisterHistogram("allocator", "heap_sample_bytes", {10.0})
      ->Record(50.0);

  Snapshot merged = a.TakeSnapshot();
  merged.MergeFrom(b.TakeSnapshot());

  EXPECT_EQ(merged.Find("cpu_cache", "hits")->counter, 42u);
  EXPECT_DOUBLE_EQ(merged.Find("page_heap", "filler_used_bytes")->gauge,
                   100.0);
  EXPECT_EQ(merged.Find("system", "mmap_calls")->counter, 2u);
  const MetricSample* hist = merged.Find("allocator", "heap_sample_bytes");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->hist_count, 2u);
  EXPECT_EQ(hist->buckets[0], 1u);
  EXPECT_EQ(hist->buckets[1], 1u);
  EXPECT_DOUBLE_EQ(hist->hist_sum, 55.0);
  // Merged output stays sorted.
  for (size_t i = 1; i < merged.samples.size(); ++i) {
    EXPECT_LT(merged.samples[i - 1].Key(), merged.samples[i].Key());
  }
}

TEST(Snapshot, MergeIsAssociativeOverThisFixture) {
  auto make = [](uint64_t hits, double bytes) {
    MetricRegistry reg;
    reg.RegisterCounter("cpu_cache", "hits")->Add(hits);
    reg.RegisterGauge("cpu_cache", "cached_bytes")->Set(bytes);
    return reg.TakeSnapshot();
  };
  Snapshot s1 = make(1, 0.125), s2 = make(2, 0.25), s3 = make(3, 0.5);

  Snapshot left = s1;
  left.MergeFrom(s2);
  left.MergeFrom(s3);
  Snapshot right_inner = s2;
  right_inner.MergeFrom(s3);
  Snapshot right = s1;
  right.MergeFrom(right_inner);
  EXPECT_EQ(left, right);
}

TEST(Snapshot, ComponentTotal) {
  MetricRegistry reg;
  reg.RegisterCounter("huge_cache", "reuse_hits")->Add(3);
  reg.RegisterGauge("huge_cache", "cached_hugepages")->Set(4);
  reg.RegisterCounter("page_heap", "spans_created")->Add(100);
  Snapshot snap = reg.TakeSnapshot();
  EXPECT_DOUBLE_EQ(snap.ComponentTotal("huge_cache"), 7.0);
  EXPECT_DOUBLE_EQ(snap.ComponentTotal("page_heap"), 100.0);
  EXPECT_DOUBLE_EQ(snap.ComponentTotal("absent"), 0.0);
}

}  // namespace
}  // namespace wsc::telemetry
