// Tests for telemetry propagation through the fleet layer: every process
// result carries a snapshot, fleet merges are machine-index ordered, and
// the aggregate is bit-identical for any worker-thread count.

#include <gtest/gtest.h>

#include "fleet/experiment.h"
#include "fleet/fleet.h"
#include "fleet/machine.h"
#include "telemetry/registry.h"
#include "workload/profiles.h"

namespace wsc::fleet {
namespace {

FleetConfig SmallFleet() {
  FleetConfig config;
  config.num_machines = 6;
  config.num_binaries = 10;
  config.min_colocated = 1;
  config.max_colocated = 2;
  config.duration = Milliseconds(300);
  config.max_requests_per_process = 2000;
  return config;
}

TEST(MachineTelemetry, EveryProcessResultCarriesASnapshot) {
  workload::WorkloadSpec spec = workload::TopFiveProfiles()[0];
  Machine machine(hw::PlatformSpecFor(hw::PlatformGeneration::kGenD),
                  {spec, spec}, tcmalloc::AllocatorConfig(), /*seed=*/7);
  machine.Run(Milliseconds(500), 3000);
  ASSERT_EQ(machine.results().size(), 2u);
  for (const ProcessResult& r : machine.results()) {
    EXPECT_FALSE(r.telemetry.samples.empty());
    const telemetry::MetricSample* allocs =
        r.telemetry.Find("allocator", "allocations");
    ASSERT_NE(allocs, nullptr);
    EXPECT_EQ(allocs->counter, r.driver.allocations);
    // Heap samples are recorded at sim-interval boundaries.
    const telemetry::MetricSample* hist =
        r.telemetry.Find("allocator", "heap_sample_bytes");
    ASSERT_NE(hist, nullptr);
    EXPECT_GT(hist->hist_count, 0u);
  }
}

TEST(FleetTelemetry, MergedTelemetryMatchesManualMerge) {
  Fleet fleet(SmallFleet(), tcmalloc::AllocatorConfig(), /*seed=*/11);
  fleet.Run(1);
  ASSERT_FALSE(fleet.observations().empty());

  telemetry::Snapshot manual;
  for (const FleetObservation& obs : fleet.observations()) {
    manual.MergeFrom(obs.result.telemetry);
  }
  telemetry::Snapshot merged = MergedTelemetry(fleet.observations());
  EXPECT_EQ(merged, manual);
  EXPECT_FALSE(merged.samples.empty());

  // The fleet-wide counter equals the sum over processes — no samples
  // dropped or double counted.
  uint64_t total_allocs = 0;
  for (const FleetObservation& obs : fleet.observations()) {
    total_allocs += obs.result.driver.allocations;
  }
  EXPECT_EQ(merged.Find("allocator", "allocations")->counter, total_allocs);
}

TEST(FleetTelemetry, BitIdenticalAcrossThreadCounts) {
  tcmalloc::AllocatorConfig allocator;
  Fleet sequential(SmallFleet(), allocator, /*seed=*/31337);
  sequential.Run(1);
  telemetry::Snapshot base = MergedTelemetry(sequential.observations());
  ASSERT_FALSE(base.samples.empty());

  for (int threads : {2, 8}) {
    SCOPED_TRACE(threads);
    Fleet parallel(SmallFleet(), allocator, /*seed=*/31337);
    parallel.Run(threads);
    // operator== compares every sample field, doubles included: the
    // parallel merge must not change a single floating-point operation.
    EXPECT_EQ(MergedTelemetry(parallel.observations()), base);
  }
}

TEST(AbTelemetry, FleetAbFillsBothArms) {
  tcmalloc::AllocatorConfig control;
  tcmalloc::AllocatorConfig experiment =
      tcmalloc::AllocatorConfig::Builder().WithSpanPrioritization().Build();
  AbResult ab = RunFleetAb(SmallFleet(), control, experiment, /*seed=*/99);
  EXPECT_FALSE(ab.fleet.control_telemetry.samples.empty());
  EXPECT_FALSE(ab.fleet.experiment_telemetry.samples.empty());
  EXPECT_GT(
      ab.fleet.control_telemetry.Find("allocator", "allocations")->counter,
      0u);
  EXPECT_GT(ab.fleet.experiment_telemetry.Find("allocator", "allocations")
                ->counter,
            0u);
}

TEST(AbTelemetry, BenchmarkAbFillsBothArms) {
  tcmalloc::AllocatorConfig control;
  tcmalloc::AllocatorConfig experiment =
      tcmalloc::AllocatorConfig::Builder().WithDynamicCpuCaches().Build();
  AbDelta delta = RunBenchmarkAb(
      workload::TopFiveProfiles()[1],
      hw::PlatformSpecFor(hw::PlatformGeneration::kGenD), control,
      experiment, /*seed=*/5, Milliseconds(400), 2500);
  EXPECT_FALSE(delta.control_telemetry.samples.empty());
  EXPECT_FALSE(delta.experiment_telemetry.samples.empty());
  EXPECT_NE(delta.control_telemetry.Find("cpu_cache", "hits"), nullptr);
}

}  // namespace
}  // namespace wsc::fleet
