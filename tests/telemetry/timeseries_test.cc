// Tests for the interval time series and the log-bucket quantile sketch:
// the delta-telescoping contract (per-interval counter deltas sum back to
// the final snapshot), merge exactness (merging per-process series or
// sketches is bucketwise-exact, not approximate), and the relative-error
// bound of the sketch.

#include "telemetry/timeseries.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "telemetry/registry.h"
#include "telemetry/sketch.h"

namespace wsc::telemetry {
namespace {

// ---- QuantileSketch ---------------------------------------------------

TEST(QuantileSketch, EmptyIsZero) {
  QuantileSketch s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 0.0);
  EXPECT_TRUE(s.Points().empty());
}

TEST(QuantileSketch, RelativeErrorBound) {
  // 16 sub-buckets per power of two => worst-case relative error of a
  // bucket midpoint is 1/(2*16) ≈ 3.1%. Check against the exact
  // quantiles of 1..100000.
  QuantileSketch s;
  constexpr int kN = 100000;
  for (int v = 1; v <= kN; ++v) s.Record(v);
  EXPECT_EQ(s.count(), static_cast<uint64_t>(kN));
  for (double q : {0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 0.999}) {
    double exact = 1.0 + q * (kN - 1);
    double approx = s.Quantile(q);
    EXPECT_NEAR(approx, exact, exact * 0.032)
        << "q=" << q << " exact=" << exact << " approx=" << approx;
  }
}

TEST(QuantileSketch, QuantilesClampedToObservedRange) {
  QuantileSketch s;
  s.Record(1000.0);
  s.Record(1001.0);
  // Bucket midpoints can exceed max for sparse data; the clamp keeps the
  // answer inside [min, max].
  EXPECT_GE(s.Quantile(0.0), 1000.0);
  EXPECT_LE(s.Quantile(1.0), 1001.0);
}

TEST(QuantileSketch, SubUnitAndNonFiniteGoToBucketZero) {
  QuantileSketch s;
  s.Record(0.0);
  s.Record(-5.0);
  s.Record(0.25);
  s.Record(std::nan(""));
  EXPECT_EQ(s.count(), 4u);
  ASSERT_EQ(s.Points().size(), 1u);
  EXPECT_DOUBLE_EQ(s.Points()[0].first, 0.0);
  EXPECT_EQ(s.Points()[0].second, 4u);
}

TEST(QuantileSketch, MergeIsExact) {
  // Split one stream across two sketches; the merge must equal the
  // sketch that saw everything — same buckets, count, min, max — because
  // merges add buckets, they do not re-approximate. (The running sum is
  // compared with FP tolerance: addition order differs between the split
  // and sequential streams.)
  Rng rng(20240808);
  QuantileSketch all, left, right;
  for (int i = 0; i < 20000; ++i) {
    double v = std::ldexp(1.0 + rng.UniformDouble(),
                          static_cast<int>(rng.UniformInt(30)));
    all.Record(v);
    (i % 2 == 0 ? left : right).Record(v);
  }
  QuantileSketch merged = left;
  merged.MergeFrom(right);
  EXPECT_EQ(merged.count(), all.count());
  EXPECT_EQ(merged.Points(), all.Points());
  EXPECT_DOUBLE_EQ(merged.min(), all.min());
  EXPECT_DOUBLE_EQ(merged.max(), all.max());
  EXPECT_NEAR(merged.sum(), all.sum(), all.sum() * 1e-12);
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(merged.Quantile(q), all.Quantile(q));
  }
}

TEST(QuantileSketch, MergeEmptyIsIdentity) {
  QuantileSketch a, empty;
  a.Record(7.0);
  QuantileSketch merged = a;
  merged.MergeFrom(empty);
  EXPECT_EQ(merged, a);
  QuantileSketch other = empty;
  other.MergeFrom(a);
  EXPECT_EQ(other, a);
}

// ---- IntervalSeries ---------------------------------------------------

// A tiny simulated process: a registry whose counters/gauges/histogram
// advance by random amounts each interval.
struct FakeProcess {
  MetricRegistry registry;
  Counter* allocations;
  Counter* frees;
  Gauge* heap_bytes;
  FixedHistogram* sizes;
  Rng rng;

  explicit FakeProcess(uint64_t seed) : rng(seed) {
    allocations = registry.RegisterCounter("allocator", "allocations");
    frees = registry.RegisterCounter("allocator", "frees");
    heap_bytes = registry.RegisterGauge("allocator", "heap_bytes");
    sizes = registry.RegisterHistogram("allocator", "sizes",
                                       {64.0, 4096.0, 65536.0});
  }

  void Step() {
    allocations->Add(rng.UniformInt(1000));
    frees->Add(rng.UniformInt(1000));
    heap_bytes->Set(static_cast<double>(rng.UniformInt(1 << 30)));
    for (int i = 0; i < 10; ++i) {
      sizes->Record(static_cast<double>(rng.UniformInt(100000)));
    }
  }
};

TEST(IntervalSeries, DeltasTelescopeToFinalSnapshot) {
  FakeProcess p(1);
  IntervalSeries series;
  for (uint64_t i = 1; i <= 20; ++i) {
    p.Step();
    series.Capture(i, static_cast<double>(i) * 0.5,
                   p.registry.TakeSnapshot());
  }
  Snapshot final_snap = p.registry.TakeSnapshot();
  EXPECT_EQ(series.TotalCounter("allocator/allocations"),
            final_snap.Find("allocator", "allocations")->counter);
  EXPECT_EQ(series.TotalCounter("allocator/frees"),
            final_snap.Find("allocator", "frees")->counter);

  // Histogram bucket deltas telescope too.
  const MetricSample* hist = final_snap.Find("allocator", "sizes");
  ASSERT_NE(hist, nullptr);
  std::vector<uint64_t> summed(hist->buckets.size(), 0);
  uint64_t total_count = 0;
  for (const auto& interval : series.intervals()) {
    const auto& delta = interval.histograms.at("allocator/sizes");
    ASSERT_EQ(delta.buckets.size(), summed.size());
    for (size_t b = 0; b < summed.size(); ++b) summed[b] += delta.buckets[b];
    total_count += delta.count;
  }
  EXPECT_EQ(summed, hist->buckets);
  EXPECT_EQ(total_count, hist->hist_count);
}

TEST(IntervalSeries, GaugesArePointSamples) {
  FakeProcess p(2);
  IntervalSeries series;
  for (uint64_t i = 1; i <= 5; ++i) {
    p.Step();
    series.Capture(i, static_cast<double>(i), p.registry.TakeSnapshot());
    EXPECT_DOUBLE_EQ(
        series.intervals().back().gauges.at("allocator/heap_bytes"),
        p.heap_bytes->value());
  }
}

TEST(IntervalSeries, PropertyRandomStreamsMergeElementwise) {
  // Two processes capture on the same interval grid; the merged series
  // must be the elementwise sum, and every delta must be non-negative —
  // over many random streams, not one crafted case.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    FakeProcess a(seed), b(seed + 100);
    IntervalSeries sa, sb;
    for (uint64_t i = 1; i <= 12; ++i) {
      a.Step();
      b.Step();
      sa.Capture(i, static_cast<double>(i), a.registry.TakeSnapshot());
      sb.Capture(i, static_cast<double>(i), b.registry.TakeSnapshot());
    }
    IntervalSeries merged = sa;
    merged.MergeFrom(sb);
    ASSERT_EQ(merged.intervals().size(), 12u);
    for (size_t i = 0; i < merged.intervals().size(); ++i) {
      const auto& m = merged.intervals()[i];
      const auto& ia = sa.intervals()[i];
      const auto& ib = sb.intervals()[i];
      EXPECT_EQ(m.index, ia.index);
      for (const auto& [key, delta] : m.counters) {
        uint64_t expect = ia.counters.at(key) + ib.counters.at(key);
        EXPECT_EQ(delta, expect) << key;
      }
      for (const auto& [key, value] : m.gauges) {
        EXPECT_DOUBLE_EQ(value, ia.gauges.at(key) + ib.gauges.at(key))
            << key;
      }
    }
    // Telescoping survives the merge: fleet totals are process sums.
    EXPECT_EQ(merged.TotalCounter("allocator/allocations"),
              sa.TotalCounter("allocator/allocations") +
                  sb.TotalCounter("allocator/allocations"));
  }
}

TEST(IntervalSeries, MergeAlignsDisjointIntervals) {
  // A process that died early (intervals 1-2) merged with one that ran
  // long (intervals 2-4): indexes interleave, same-index intervals sum.
  FakeProcess a(7), b(8);
  IntervalSeries sa, sb;
  a.Step();
  sa.Capture(1, 0.5, a.registry.TakeSnapshot());
  a.Step();
  sa.Capture(2, 1.0, a.registry.TakeSnapshot());
  b.Step();
  sb.Capture(2, 1.0, b.registry.TakeSnapshot());
  b.Step();
  sb.Capture(4, 2.0, b.registry.TakeSnapshot());

  IntervalSeries merged = sa;
  merged.MergeFrom(sb);
  ASSERT_EQ(merged.intervals().size(), 3u);
  EXPECT_EQ(merged.intervals()[0].index, 1u);
  EXPECT_EQ(merged.intervals()[1].index, 2u);
  EXPECT_EQ(merged.intervals()[2].index, 4u);
  EXPECT_EQ(merged.intervals()[1].counters.at("allocator/allocations"),
            sa.intervals()[1].counters.at("allocator/allocations") +
                sb.intervals()[0].counters.at("allocator/allocations"));
}

TEST(IntervalSeries, MergeIsCommutativeOnIntervals) {
  FakeProcess a(11), b(12);
  IntervalSeries sa, sb;
  for (uint64_t i = 1; i <= 6; ++i) {
    a.Step();
    b.Step();
    sa.Capture(i, static_cast<double>(i), a.registry.TakeSnapshot());
    sb.Capture(i, static_cast<double>(i), b.registry.TakeSnapshot());
  }
  IntervalSeries ab = sa;
  ab.MergeFrom(sb);
  IntervalSeries ba = sb;
  ba.MergeFrom(sa);
  EXPECT_EQ(ab.intervals(), ba.intervals());
}

TEST(IntervalSeries, SketchesMergeByName) {
  IntervalSeries a, b;
  a.Sketch("footprint").Record(100.0);
  b.Sketch("footprint").Record(200.0);
  b.Sketch("latency").Record(5.0);
  a.MergeFrom(b);
  ASSERT_EQ(a.sketches().size(), 2u);
  EXPECT_EQ(a.sketches().at("footprint").count(), 2u);
  EXPECT_EQ(a.sketches().at("latency").count(), 1u);
}

TEST(IntervalSeries, RenderNdjsonShape) {
  FakeProcess p(3);
  IntervalSeries series;
  p.Step();
  series.Capture(1, 0.5, p.registry.TakeSnapshot());
  series.Sketch("footprint").Record(42.0);

  std::string plain = series.RenderNdjson("bench_x", "");
  EXPECT_NE(plain.find("\"kind\":\"timeseries\""), std::string::npos);
  EXPECT_NE(plain.find("\"kind\":\"sketch\""), std::string::npos);
  EXPECT_NE(plain.find("\"interval\":1"), std::string::npos);
  EXPECT_EQ(plain.find("\"arm\""), std::string::npos);
  EXPECT_EQ(plain.back(), '\n');

  std::string armed = series.RenderNdjson("bench_x", "control");
  EXPECT_NE(armed.find("\"arm\":\"control\""), std::string::npos);
}

}  // namespace
}  // namespace wsc::telemetry
