// Tests for workload spec builders.

#include "workload/workload.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace wsc::workload {
namespace {

TEST(Workload, MakeBehaviorWiresFields) {
  Behavior b = MakeBehavior(2.5, SizePoint(64), LifetimePoint(1000));
  EXPECT_DOUBLE_EQ(b.weight, 2.5);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(b.size_bytes->Sample(rng), 64.0);
  EXPECT_DOUBLE_EQ(b.lifetime_ns->Sample(rng), 1000.0);
}

TEST(Workload, SizeLognormalMedian) {
  Rng rng(2);
  auto dist = SizeLognormal(4096, 2.0);
  std::vector<double> samples;
  for (int i = 0; i < 20001; ++i) samples.push_back(dist->Sample(rng));
  std::nth_element(samples.begin(), samples.begin() + 10000, samples.end());
  EXPECT_NEAR(samples[10000], 4096, 300);
}

TEST(Workload, SizeParetoBounds) {
  Rng rng(3);
  auto dist = SizePareto(1024, 1.5, 65536);
  for (int i = 0; i < 1000; ++i) {
    double v = dist->Sample(rng);
    EXPECT_GE(v, 1024);
    EXPECT_LE(v, 65536);
  }
}

TEST(Workload, SingleThreadedPredicate) {
  WorkloadSpec spec;
  spec.max_threads = 1;
  EXPECT_TRUE(spec.single_threaded());
  spec.max_threads = 2;
  EXPECT_FALSE(spec.single_threaded());
}

}  // namespace
}  // namespace wsc::workload
