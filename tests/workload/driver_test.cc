// Tests for the discrete-event workload driver.

#include "workload/driver.h"

#include <gtest/gtest.h>

#include "workload/profiles.h"

namespace wsc::workload {
namespace {

WorkloadSpec TinySpec() {
  WorkloadSpec spec;
  spec.name = "tiny";
  spec.behaviors = {
      MakeBehavior(0.7, SizeLognormal(128, 2.0),
                   LifetimeLognormal(Microseconds(500), 3.0)),
      MakeBehavior(0.3, SizeLognormal(8192, 2.0),
                   LifetimeLognormal(Milliseconds(20), 3.0)),
  };
  spec.allocs_per_request = 5;
  spec.request_work_ns = 3000;
  spec.request_interval_ns = Microseconds(50);
  spec.min_threads = 2;
  spec.max_threads = 6;
  spec.thread_period = Seconds(2);
  return spec;
}

tcmalloc::AllocatorConfig DriverConfig() {
  return tcmalloc::AllocatorConfig::Builder()
      .WithVcpus(6)
      .WithArena(uintptr_t{1} << 44, size_t{32} << 30)
      .Build();
}

class DriverTest : public ::testing::Test {
 protected:
  DriverTest()
      : topo_(hw::PlatformSpecFor(hw::PlatformGeneration::kGenC)),
        alloc_(DriverConfig()),
        driver_(TinySpec(), &alloc_, &topo_, {0, 1, 2, 3, 4, 5}, nullptr,
                nullptr, /*seed=*/7) {}

  hw::CpuTopology topo_;
  tcmalloc::Allocator alloc_;
  Driver driver_;
};

TEST_F(DriverTest, StepExecutesOneRequest) {
  double service = driver_.Step();
  EXPECT_GT(service, 0.0);
  EXPECT_EQ(driver_.metrics().requests, 1u);
  EXPECT_GT(driver_.metrics().allocations, 0u);
  EXPECT_GT(driver_.now(), 0);
}

TEST_F(DriverTest, ObjectsDieOverTime) {
  driver_.RunRequests(20000);
  uint64_t live = driver_.live_objects();
  uint64_t allocated = driver_.metrics().allocations;
  EXPECT_GT(driver_.metrics().frees, 0u);
  // Steady state: live objects are far fewer than total allocations.
  EXPECT_LT(live, allocated / 2);
}

TEST_F(DriverTest, DrainFreesEverything) {
  driver_.RunRequests(5000);
  driver_.Drain();
  EXPECT_EQ(driver_.live_objects(), 0u);
  EXPECT_EQ(driver_.live_bytes(), 0u);
  EXPECT_EQ(alloc_.CollectStats().live_bytes, 0u);
  EXPECT_EQ(driver_.metrics().allocations, driver_.metrics().frees);
}

TEST_F(DriverTest, MetricsAccumulateConsistently) {
  driver_.RunRequests(2000);
  const DriverMetrics& m = driver_.metrics();
  EXPECT_GT(m.cpu_ns, m.base_work_ns);
  EXPECT_GT(m.malloc_ns, 0.0);
  EXPECT_GT(m.Throughput(), 0.0);
  EXPECT_GT(m.MallocCycleFraction(), 0.0);
  EXPECT_LT(m.MallocCycleFraction(), 1.0);
  EXPECT_GE(m.Cpi(), 1.0);
}

TEST_F(DriverTest, ThreadCountStaysInBounds) {
  for (int i = 0; i < 20000; ++i) {
    driver_.Step();
    ASSERT_GE(driver_.active_threads(), 2);
    ASSERT_LE(driver_.active_threads(), 6);
  }
}

TEST_F(DriverTest, ThreadCountFluctuates) {
  // Fig. 9a: the number of active threads varies over time.
  int min_seen = 100, max_seen = 0;
  for (int i = 0; i < 60000; ++i) {
    driver_.Step();
    min_seen = std::min(min_seen, driver_.active_threads());
    max_seen = std::max(max_seen, driver_.active_threads());
  }
  EXPECT_LT(min_seen, max_seen);
}

TEST_F(DriverTest, RunUntilReachesTime) {
  driver_.RunUntil(Milliseconds(50));
  EXPECT_GE(driver_.now(), Milliseconds(50));
}

TEST(DriverDeterminism, SameSeedSameMetrics) {
  hw::CpuTopology topo(hw::PlatformSpecFor(hw::PlatformGeneration::kGenC));
  WorkloadSpec spec = TinySpec();

  auto run = [&](uint64_t seed) {
    tcmalloc::Allocator alloc(DriverConfig());
    Driver driver(spec, &alloc, &topo, {0, 1, 2, 3}, nullptr, nullptr, seed);
    driver.RunRequests(5000);
    return std::make_tuple(driver.metrics().cpu_ns,
                           driver.metrics().allocations,
                           alloc.CollectStats().HeapBytes());
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(std::get<0>(run(1)), std::get<0>(run(2)));
}

TEST(DriverStartup, StartupBytesAllocatedUpFront) {
  WorkloadSpec spec = TinySpec();
  spec.startup_bytes = 10e6;
  spec.startup_object_size = SizePoint(4096);
  tcmalloc::Allocator alloc(DriverConfig());
  hw::CpuTopology topo(hw::PlatformSpecFor(hw::PlatformGeneration::kGenA));
  Driver driver(spec, &alloc, &topo, {0, 1}, nullptr, nullptr, 3);
  EXPECT_GE(driver.live_bytes(), 10e6);
  EXPECT_GE(alloc.CollectStats().live_bytes, size_t{10000000});
  // Startup objects survive a normal run (lifetime ~forever).
  driver.RunRequests(1000);
  EXPECT_GE(driver.live_bytes(), 10e6);
}

TEST(DriverHardwareModels, TlbAndLlcStallsAccumulate) {
  WorkloadSpec spec = TinySpec();
  hw::CpuTopology topo(hw::PlatformSpecFor(hw::PlatformGeneration::kGenC));
  tcmalloc::Allocator alloc(DriverConfig());
  hw::TlbSimulator tlb;
  hw::LlcModel llc(&topo, 8192, 5);
  std::vector<int> cpus;
  for (int c = 0; c < topo.num_cpus(); ++c) cpus.push_back(c);
  Driver driver(spec, &alloc, &topo, cpus, &llc, &tlb, 9);
  driver.RunRequests(5000);
  EXPECT_GT(driver.metrics().tlb_stall_ns, 0.0);
  EXPECT_GT(driver.metrics().llc_stall_ns, 0.0);
  EXPECT_GT(tlb.stats().accesses, 0u);
  EXPECT_GT(llc.stats().accesses, 0u);
}

TEST(DriverSingleThreaded, RedisStaysOnOneThread) {
  WorkloadSpec spec = RedisProfile();
  spec.startup_bytes = 1e6;  // shrink startup for test speed
  tcmalloc::AllocatorConfig config =
      tcmalloc::AllocatorConfig::Builder().WithVcpus(4).Build();
  tcmalloc::Allocator alloc(config);
  hw::CpuTopology topo(hw::PlatformSpecFor(hw::PlatformGeneration::kGenA));
  Driver driver(spec, &alloc, &topo, {0, 1, 2, 3}, nullptr, nullptr, 11);
  for (int i = 0; i < 1000; ++i) {
    driver.Step();
    ASSERT_EQ(driver.active_threads(), 1);
  }
}

}  // namespace
}  // namespace wsc::workload
