// Sanity tests over every workload profile.

#include "workload/profiles.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace wsc::workload {
namespace {

std::vector<WorkloadSpec> AllProfiles() {
  std::vector<WorkloadSpec> all = TopFiveProfiles();
  for (const auto& s : BenchmarkProfiles()) all.push_back(s);
  all.push_back(SpecLikeProfile());
  return all;
}

TEST(Profiles, AllProfilesAreWellFormed) {
  for (const WorkloadSpec& spec : AllProfiles()) {
    SCOPED_TRACE(spec.name);
    EXPECT_FALSE(spec.name.empty());
    EXPECT_FALSE(spec.behaviors.empty());
    double total_weight = 0;
    Rng rng(1);
    for (const Behavior& b : spec.behaviors) {
      EXPECT_GT(b.weight, 0.0);
      total_weight += b.weight;
      ASSERT_NE(b.size_bytes, nullptr);
      ASSERT_NE(b.lifetime_ns, nullptr);
      EXPECT_GT(b.size_bytes->Sample(rng), 0.0);
      EXPECT_GE(b.lifetime_ns->Sample(rng), 0.0);
    }
    EXPECT_GT(total_weight, 0.0);
    EXPECT_GE(spec.allocs_per_request, 1.0);
    EXPECT_GT(spec.request_work_ns, 0.0);
    EXPECT_GE(spec.max_threads, spec.min_threads);
    EXPECT_GE(spec.min_threads, 1);
    if (spec.startup_bytes > 0) {
      EXPECT_NE(spec.startup_object_size, nullptr);
    }
  }
}

TEST(Profiles, TopFiveMatchesPaperOrder) {
  auto top5 = TopFiveProfiles();
  ASSERT_EQ(top5.size(), 5u);
  EXPECT_EQ(top5[0].name, "spanner");
  EXPECT_EQ(top5[1].name, "monarch");
  EXPECT_EQ(top5[2].name, "bigtable");
  EXPECT_EQ(top5[3].name, "f1-query");
  EXPECT_EQ(top5[4].name, "disk");
}

TEST(Profiles, BenchmarksMatchPaperSet) {
  auto benchmarks = BenchmarkProfiles();
  ASSERT_EQ(benchmarks.size(), 4u);
  EXPECT_EQ(benchmarks[0].name, "redis");
  EXPECT_EQ(benchmarks[1].name, "data-pipeline");
  EXPECT_EQ(benchmarks[2].name, "image-processing");
  EXPECT_EQ(benchmarks[3].name, "tensorflow");
}

TEST(Profiles, RedisIsSingleThreaded) {
  EXPECT_TRUE(RedisProfile().single_threaded());
}

TEST(Profiles, SpecLikeIsComputeBound) {
  // SPEC-style workloads have near-zero steady-state malloc: far more base
  // work per allocation than any production profile.
  WorkloadSpec spec = SpecLikeProfile();
  double spec_work_per_alloc = spec.request_work_ns / spec.allocs_per_request;
  for (const WorkloadSpec& prod : TopFiveProfiles()) {
    EXPECT_GT(spec_work_per_alloc,
              10 * prod.request_work_ns / prod.allocs_per_request)
        << prod.name;
  }
}

TEST(Profiles, SyntheticBinariesAreDeterministicVariants) {
  WorkloadSpec a = SyntheticBinary(7, 123);
  WorkloadSpec b = SyntheticBinary(7, 123);
  EXPECT_EQ(a.name, b.name);
  EXPECT_DOUBLE_EQ(a.request_work_ns, b.request_work_ns);
  WorkloadSpec c = SyntheticBinary(7, 456);
  EXPECT_NE(a.request_work_ns, c.request_work_ns);
  // Different ranks rotate base families.
  WorkloadSpec d = SyntheticBinary(8, 123);
  EXPECT_NE(a.name, d.name);
}

TEST(Profiles, SyntheticBinaryNamesEncodeRank) {
  WorkloadSpec spec = SyntheticBinary(12, 9);
  EXPECT_NE(spec.name.find("binary-12"), std::string::npos);
}

}  // namespace
}  // namespace wsc::workload
