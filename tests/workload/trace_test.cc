// Tests for trace generation and replay.

#include "workload/trace.h"

#include <gtest/gtest.h>

namespace wsc::workload {
namespace {

tcmalloc::AllocatorConfig SmallArena() {
  return tcmalloc::AllocatorConfig::Builder()
      .WithArena(uintptr_t{1} << 44, size_t{16} << 30)
      .Build();
}

TEST(Trace, ManualTraceReplay) {
  Trace trace;
  trace.Alloc(100);
  trace.Alloc(200);
  trace.Free(0);  // frees the 100 B object
  trace.Alloc(50);
  trace.Free(1);
  trace.Free(0);
  EXPECT_EQ(trace.size(), 6u);

  tcmalloc::Allocator alloc(SmallArena());
  size_t peak = trace.Replay(alloc);
  EXPECT_EQ(peak, 300u);
  EXPECT_EQ(alloc.CollectStats().live_bytes, 0u);
}

TEST(Trace, GeneratedTraceIsBalanced) {
  Trace trace = Trace::GenerateRandom(10000, 42, 65536);
  int live = 0;
  int max_live = 0;
  for (const TraceOp& op : trace.ops()) {
    if (op.kind == TraceOp::Kind::kAlloc) {
      EXPECT_GE(op.value, 8u);
      EXPECT_LE(op.value, 65536u);
      ++live;
    } else {
      EXPECT_LT(op.value, static_cast<uint64_t>(live));
      --live;
    }
    max_live = std::max(max_live, live);
  }
  EXPECT_EQ(live, 0);       // fully drained
  EXPECT_GT(max_live, 10);  // non-trivial concurrency of live objects
}

TEST(Trace, GenerationIsDeterministic) {
  Trace a = Trace::GenerateRandom(5000, 7, 4096);
  Trace b = Trace::GenerateRandom(5000, 7, 4096);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.ops().size(); ++i) {
    EXPECT_EQ(a.ops()[i].value, b.ops()[i].value);
  }
}

TEST(Trace, DifferentSeedsDiffer) {
  Trace a = Trace::GenerateRandom(5000, 1, 4096);
  Trace b = Trace::GenerateRandom(5000, 2, 4096);
  bool differs = a.size() != b.size();
  for (size_t i = 0; !differs && i < std::min(a.size(), b.size()); ++i) {
    differs = a.ops()[i].value != b.ops()[i].value;
  }
  EXPECT_TRUE(differs);
}

TEST(Trace, ReplayAdvancesSimulatedTime) {
  Trace trace;
  trace.Alloc(64);
  trace.Free(0);
  tcmalloc::Allocator alloc(SmallArena());
  trace.Replay(alloc, 0, /*step_ns=*/1000);
  // The sampler saw increasing timestamps; nothing to assert beyond no
  // crash and full drain.
  EXPECT_EQ(alloc.CollectStats().live_bytes, 0u);
}

}  // namespace
}  // namespace wsc::workload
