// Tests for the log-bucketed histogram.

#include "common/histogram.h"

#include <gtest/gtest.h>

namespace wsc {
namespace {

TEST(LogHistogram, EmptyHistogram) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.FractionBelow(100), 0.0);
  EXPECT_TRUE(h.Cdf().empty());
}

TEST(LogHistogram, MeanIsExact) {
  LogHistogram h;
  h.Add(10);
  h.Add(20);
  h.Add(60);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.Mean(), 30.0);
}

TEST(LogHistogram, WeightedMean) {
  LogHistogram h;
  h.Add(10, 3.0);
  h.Add(50, 1.0);
  EXPECT_DOUBLE_EQ(h.Mean(), (30.0 + 50.0) / 4.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 4.0);
}

TEST(LogHistogram, FractionBelowInterpolates) {
  LogHistogram h;
  for (int i = 0; i < 100; ++i) h.Add(100);  // bucket [64,128)
  EXPECT_DOUBLE_EQ(h.FractionBelow(64), 0.0);
  EXPECT_DOUBLE_EQ(h.FractionBelow(128), 1.0);
  EXPECT_NEAR(h.FractionBelow(96), 0.5, 1e-9);  // linear within bucket
  EXPECT_DOUBLE_EQ(h.FractionAtLeast(128), 0.0);
}

TEST(LogHistogram, QuantilesAreMonotone) {
  LogHistogram h;
  for (int i = 1; i <= 10000; ++i) h.Add(i);
  double last = 0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    double v = h.Quantile(q);
    EXPECT_GE(v, last);
    last = v;
  }
  // Median of 1..10000 should land near 5000 within bucket resolution.
  EXPECT_GT(h.Quantile(0.5), 2500.0);
  EXPECT_LT(h.Quantile(0.5), 10000.0);
}

TEST(LogHistogram, CdfReachesOne) {
  LogHistogram h;
  h.Add(1);
  h.Add(1000);
  h.Add(1000000);
  auto cdf = h.Cdf();
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf.back().cumulative_fraction, 1.0);
  EXPECT_LT(cdf[0].cumulative_fraction, cdf[1].cumulative_fraction);
  EXPECT_LT(cdf[0].upper_bound, cdf[1].upper_bound);
}

TEST(LogHistogram, MergeAddsWeights) {
  LogHistogram a, b;
  a.Add(10, 2.0);
  b.Add(1000, 6.0);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.total_weight(), 8.0);
  EXPECT_NEAR(a.FractionBelow(100), 0.25, 1e-9);
}

TEST(LogHistogram, ZeroAndHugeValuesClamp) {
  LogHistogram h;
  h.Add(0.0);
  h.Add(1e300);  // clamps into the last bucket
  EXPECT_EQ(h.count(), 2u);
  // The zero-value lands in bucket [0,2); the huge value far above it.
  EXPECT_DOUBLE_EQ(h.FractionBelow(2.0), 0.5);
  EXPECT_NEAR(h.FractionBelow(1.0), 0.25, 1e-9);  // interpolated
}

TEST(LogHistogram, ToStringMentionsCount) {
  LogHistogram h;
  h.Add(5);
  std::string s = h.ToString("ns");
  EXPECT_NE(s.find("count=1"), std::string::npos);
}

}  // namespace
}  // namespace wsc
