// Tests for the bench table/series printers.

#include "common/table.h"

#include <gtest/gtest.h>

namespace wsc {
namespace {

TEST(TablePrinter, RendersHeaderSeparatorAndRows) {
  TablePrinter table({"app", "tput", "mem"});
  table.AddRow({"spanner", "+0.28%", "+0.08%"});
  table.AddRow({"disk", "+1.72%", "+0.62%"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("| app "), std::string::npos);
  EXPECT_NE(out.find("spanner"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  // Three content lines + separator.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TablePrinter, ColumnsAutoFitWidestCell) {
  TablePrinter table({"x"});
  table.AddRow({"a-very-long-cell-value"});
  std::string out = table.ToString();
  // All lines are padded to equal width.
  std::vector<size_t> lengths;
  size_t pos = 0;
  while (pos < out.size()) {
    size_t nl = out.find('\n', pos);
    lengths.push_back(nl - pos);
    pos = nl + 1;
  }
  ASSERT_EQ(lengths.size(), 3u);
  EXPECT_EQ(lengths[0], lengths[1]);
  EXPECT_EQ(lengths[1], lengths[2]);
}

TEST(TablePrinterDeathTest, RowArityMismatchIsFatal) {
  TablePrinter table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "CHECK failed");
}

TEST(Format, Doubles) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.0, 0), "3");
}

TEST(Format, Bytes) {
  EXPECT_EQ(FormatBytes(512), "512.00 B");
  EXPECT_EQ(FormatBytes(2048), "2.00 KiB");
  EXPECT_EQ(FormatBytes(3.5 * 1024 * 1024), "3.50 MiB");
  EXPECT_EQ(FormatBytes(2.0 * 1024 * 1024 * 1024), "2.00 GiB");
}

TEST(Format, SignedPercent) {
  EXPECT_EQ(FormatSignedPercent(1.4), "+1.40%");
  EXPECT_EQ(FormatSignedPercent(-3.4), "-3.40%");
  EXPECT_EQ(FormatSignedPercent(0.0, 1), "+0.0%");
}

}  // namespace
}  // namespace wsc
