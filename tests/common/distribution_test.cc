// Tests for the workload random-variate samplers.

#include "common/distribution.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"

namespace wsc {
namespace {

TEST(PointDistribution, AlwaysReturnsValue) {
  Rng rng(1);
  PointDistribution d(42.5);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(d.Sample(rng), 42.5);
}

TEST(UniformDistribution, StaysInRangeWithCorrectMean) {
  Rng rng(2);
  UniformDistribution d(10.0, 20.0);
  RunningStat stat;
  for (int i = 0; i < 50000; ++i) {
    double v = d.Sample(rng);
    ASSERT_GE(v, 10.0);
    ASSERT_LT(v, 20.0);
    stat.Add(v);
  }
  EXPECT_NEAR(stat.Mean(), 15.0, 0.1);
}

TEST(LognormalDistribution, MedianMatchesFromMedian) {
  Rng rng(3);
  auto d = LognormalDistribution::FromMedian(1000.0, 2.0);
  std::vector<double> samples;
  for (int i = 0; i < 50001; ++i) samples.push_back(d.Sample(rng));
  std::nth_element(samples.begin(), samples.begin() + 25000, samples.end());
  EXPECT_NEAR(samples[25000], 1000.0, 50.0);
}

TEST(LognormalDistribution, MeanMatchesTheory) {
  Rng rng(4);
  double sigma = std::log(2.0);
  LognormalDistribution d(std::log(100.0), sigma);
  RunningStat stat;
  for (int i = 0; i < 200000; ++i) stat.Add(d.Sample(rng));
  double expected = 100.0 * std::exp(sigma * sigma / 2.0);
  EXPECT_NEAR(stat.Mean(), expected, expected * 0.03);
}

TEST(ParetoDistribution, RespectsScaleAndCap) {
  Rng rng(5);
  ParetoDistribution d(100.0, 1.5, 5000.0);
  for (int i = 0; i < 10000; ++i) {
    double v = d.Sample(rng);
    ASSERT_GE(v, 100.0);
    ASSERT_LE(v, 5000.0);
  }
}

TEST(ParetoDistribution, HeavyTailWithoutCap) {
  Rng rng(6);
  ParetoDistribution d(1.0, 1.1, 0.0);
  double max_v = 0;
  for (int i = 0; i < 100000; ++i) max_v = std::max(max_v, d.Sample(rng));
  EXPECT_GT(max_v, 1000.0);  // heavy tail reaches far
}

TEST(ExponentialDistribution, MeanMatches) {
  Rng rng(7);
  ExponentialDistribution d(250.0);
  RunningStat stat;
  for (int i = 0; i < 100000; ++i) stat.Add(d.Sample(rng));
  EXPECT_NEAR(stat.Mean(), 250.0, 5.0);
}

TEST(MixtureDistribution, RespectsWeights) {
  Rng rng(8);
  MixtureDistribution mix({
      {0.8, std::make_shared<PointDistribution>(1.0)},
      {0.2, std::make_shared<PointDistribution>(2.0)},
  });
  int ones = 0;
  for (int i = 0; i < 100000; ++i) {
    if (mix.Sample(rng) == 1.0) ++ones;
  }
  EXPECT_NEAR(ones / 100000.0, 0.8, 0.01);
}

TEST(MixtureDistribution, PickComponentIsConsistent) {
  Rng rng(9);
  MixtureDistribution mix({
      {1.0, std::make_shared<PointDistribution>(5.0)},
      {3.0, std::make_shared<PointDistribution>(7.0)},
  });
  EXPECT_EQ(mix.num_components(), 2u);
  int second = 0;
  for (int i = 0; i < 100000; ++i) {
    size_t c = mix.PickComponent(rng);
    ASSERT_LT(c, 2u);
    second += c == 1;
  }
  EXPECT_NEAR(second / 100000.0, 0.75, 0.01);
  // component() exposes the right distribution.
  Rng rng2(1);
  EXPECT_DOUBLE_EQ(mix.component(0).Sample(rng2), 5.0);
  EXPECT_DOUBLE_EQ(mix.component(1).Sample(rng2), 7.0);
}

TEST(EmpiricalDistribution, SamplesOnlyGivenValues) {
  Rng rng(10);
  EmpiricalDistribution d({{8.0, 1.0}, {16.0, 2.0}, {32.0, 1.0}});
  int count16 = 0;
  for (int i = 0; i < 40000; ++i) {
    double v = d.Sample(rng);
    ASSERT_TRUE(v == 8.0 || v == 16.0 || v == 32.0);
    count16 += v == 16.0;
  }
  EXPECT_NEAR(count16 / 40000.0, 0.5, 0.02);
}

TEST(ZipfDistribution, RankOneIsMostPopular) {
  Rng rng(11);
  ZipfDistribution zipf(50, 1.1);
  std::vector<int> counts(51, 0);
  for (int i = 0; i < 100000; ++i) {
    int rank = static_cast<int>(zipf.Sample(rng));
    ASSERT_GE(rank, 1);
    ASSERT_LE(rank, 50);
    ++counts[rank];
  }
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[10]);
  EXPECT_GT(counts[10], counts[50]);
}

TEST(ZipfDistribution, ProbabilitiesNormalized) {
  ZipfDistribution zipf(10, 1.0);
  double total = 0;
  for (double p : zipf.probabilities()) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Zipf s=1: p(1)/p(2) == 2.
  EXPECT_NEAR(zipf.probabilities()[0] / zipf.probabilities()[1], 2.0, 1e-9);
}

TEST(Distributions, DeterministicAcrossRuns) {
  LognormalDistribution d(2.0, 1.0);
  Rng a(77), b(77);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(d.Sample(a), d.Sample(b));
  }
}

}  // namespace
}  // namespace wsc
