// Tests for the deterministic RNG.

#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace wsc {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformIntStaysInBounds) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.UniformInt(bound), bound);
    }
  }
}

TEST(Rng, UniformIntIsRoughlyUniform) {
  Rng rng(9);
  int counts[10] = {};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.UniformInt(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 100);
  }
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    double u = rng.UniformDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
  Rng rng2(14);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng2.Bernoulli(0.0));
    EXPECT_TRUE(rng2.Bernoulli(1.0));
  }
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng parent(21);
  Rng child_a(parent.Fork());
  Rng child_b(parent.Fork());
  std::set<uint64_t> values;
  for (int i = 0; i < 100; ++i) {
    values.insert(child_a.Next());
    values.insert(child_b.Next());
  }
  EXPECT_EQ(values.size(), 200u);  // no collisions between streams
}

TEST(Rng, ReseedRestartsStream) {
  Rng rng(5);
  uint64_t first = rng.Next();
  rng.Next();
  rng.Seed(5);
  EXPECT_EQ(rng.Next(), first);
}

}  // namespace
}  // namespace wsc
