// Tests for the simulated clock and duration helpers.

#include "common/sim_clock.h"

#include <gtest/gtest.h>

namespace wsc {
namespace {

TEST(SimClock, StartsAtZeroAndAdvances) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0);
  clock.Advance(100);
  EXPECT_EQ(clock.now(), 100);
  clock.Advance(0);
  EXPECT_EQ(clock.now(), 100);
  clock.AdvanceTo(500);
  EXPECT_EQ(clock.now(), 500);
}

TEST(SimClockDeathTest, BackwardsAdvanceIsFatalInDebug) {
#ifndef NDEBUG
  SimClock clock;
  clock.Advance(100);
  EXPECT_DEATH(clock.AdvanceTo(50), "CHECK failed");
  EXPECT_DEATH(clock.Advance(-1), "CHECK failed");
#else
  GTEST_SKIP() << "DCHECKs compiled out";
#endif
}

TEST(Durations, UnitConversions) {
  EXPECT_EQ(Nanoseconds(7), 7);
  EXPECT_EQ(Microseconds(1), 1000);
  EXPECT_EQ(Milliseconds(1), 1000 * 1000);
  EXPECT_EQ(Seconds(1), 1000 * 1000 * 1000);
  EXPECT_EQ(Minutes(2), 120 * Seconds(1));
  EXPECT_EQ(Hours(1), 60 * Minutes(1));
  EXPECT_EQ(Days(1), 24 * Hours(1));
}

}  // namespace
}  // namespace wsc
