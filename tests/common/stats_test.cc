// Tests for running statistics and correlation helpers.

#include "common/stats.h"

#include <gtest/gtest.h>

namespace wsc {
namespace {

TEST(RunningStat, MomentsOfKnownSequence) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_NEAR(s.Variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.Sum(), 40.0);
}

TEST(RunningStat, EmptyAndSingle) {
  RunningStat s;
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 0.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.StdDev(), 0.0);
}

TEST(Pearson, PerfectCorrelation) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  std::vector<double> neg = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, neg), -1.0, 1e-12);
}

TEST(Pearson, NoVarianceGivesZero) {
  std::vector<double> x = {1, 1, 1};
  std::vector<double> y = {1, 2, 3};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, y), 0.0);
}

TEST(Spearman, MonotoneNonlinearIsPerfect) {
  // Spearman sees through monotone nonlinearity; Pearson does not.
  std::vector<double> x = {1, 2, 3, 4, 5, 6};
  std::vector<double> y;
  for (double v : x) y.push_back(v * v * v);
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
}

TEST(Spearman, NegativeCorrelation) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {100, 50, 25, 12, 6};
  EXPECT_NEAR(SpearmanCorrelation(x, y), -1.0, 1e-12);
}

TEST(Spearman, HandlesTiesWithAverageRanks) {
  std::vector<double> x = {1, 2, 2, 3};
  std::vector<double> y = {10, 20, 20, 30};
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
  // Partial ties reduce but do not destroy the correlation.
  std::vector<double> z = {10, 20, 25, 30};
  double r = SpearmanCorrelation(x, z);
  EXPECT_GT(r, 0.9);
}

TEST(Spearman, ShortSeriesReturnsZero) {
  EXPECT_DOUBLE_EQ(SpearmanCorrelation({1.0}, {2.0}), 0.0);
  EXPECT_DOUBLE_EQ(SpearmanCorrelation({}, {}), 0.0);
}

TEST(PercentChange, BasicAndZeroBase) {
  EXPECT_DOUBLE_EQ(PercentChange(100, 101.4), 1.4000000000000057);
  EXPECT_DOUBLE_EQ(PercentChange(200, 100), -50.0);
  EXPECT_DOUBLE_EQ(PercentChange(0, 100), 0.0);
}

}  // namespace
}  // namespace wsc
