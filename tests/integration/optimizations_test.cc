// Integration tests: each of the paper's four optimizations must move its
// target metric in the right direction on a workload engineered to expose
// the effect. These are directional (shape) checks, not absolute-number
// checks — the benches in /bench report the magnitudes.

#include <gtest/gtest.h>

#include "fleet/experiment.h"
#include "workload/profiles.h"

namespace wsc::fleet {
namespace {

using tcmalloc::AllocatorConfig;
using workload::Behavior;
using workload::LifetimeLognormal;
using workload::MakeBehavior;
using workload::SizeLognormal;
using workload::WorkloadSpec;

// A mixed workload with dynamic threads, short+long lifetimes and a spread
// of sizes: every optimization has something to bite on.
WorkloadSpec MixedSpec() {
  WorkloadSpec spec;
  spec.name = "mixed";
  spec.behaviors = {
      MakeBehavior(0.55, SizeLognormal(64, 2.5),
                   LifetimeLognormal(Microseconds(300), 4.0)),
      // Same size range, long lived: pins spans (the paper's stranding).
      MakeBehavior(0.05, SizeLognormal(256, 3.0),
                   LifetimeLognormal(Seconds(5), 4.0)),
      MakeBehavior(0.25, SizeLognormal(4096, 2.0),
                   LifetimeLognormal(Milliseconds(30), 4.0)),
      MakeBehavior(0.05, SizeLognormal(4096, 2.0),
                   LifetimeLognormal(Seconds(4), 3.0)),
      MakeBehavior(0.08, SizeLognormal(64 * 1024, 2.0),
                   LifetimeLognormal(Milliseconds(60), 3.0)),
      MakeBehavior(0.02, SizeLognormal(512 * 1024, 1.5),
                   LifetimeLognormal(Milliseconds(100), 2.0)),
  };
  spec.allocs_per_request = 10;
  spec.request_work_ns = 4000;
  spec.request_interval_ns = Milliseconds(1);
  spec.touches_per_alloc = 2;
  spec.reuse_touches_per_request = 10;
  spec.min_threads = 2;
  spec.max_threads = 24;
  spec.thread_period = Seconds(8);
  spec.startup_bytes = 50e6;
  spec.startup_object_size = SizeLognormal(256, 2.0);
  return spec;
}

AbDelta RunMixedAb(const AllocatorConfig& control,
                   const AllocatorConfig& experiment, uint64_t seed) {
  return RunBenchmarkAb(MixedSpec(),
                        hw::PlatformSpecFor(hw::PlatformGeneration::kGenD),
                        control, experiment, seed, Seconds(20), 400000);
}

TEST(HeterogeneousCaches, HalvedDynamicCachesSaveMemoryWithoutTputLoss) {
  AllocatorConfig control;  // static 3 MiB per-vCPU caches
  AllocatorConfig experiment =
      AllocatorConfig::Builder()
          .WithDynamicCpuCaches()
          .WithCpuCacheBytes(control.per_cpu_cache_bytes / 2)
          .Build();

  AbDelta delta = RunMixedAb(control, experiment, 101);
  // Fig. 10: memory drops; the paper reports no performance impact.
  EXPECT_LT(delta.MemoryChangePct(), 0.0);
  EXPECT_GT(delta.ThroughputChangePct(), -1.0);
}

TEST(NucaTransferCache, ImprovesLocalityOnChipletPlatform) {
  AllocatorConfig control;
  AllocatorConfig experiment =
      AllocatorConfig::Builder().WithNucaTransferCache().Build();

  AbDelta delta = RunMixedAb(control, experiment, 102);
  // Table 1: LLC MPKI falls, throughput rises; memory may rise slightly.
  EXPECT_LT(delta.experiment.LlcMpki(), delta.control.LlcMpki());
  EXPECT_GT(delta.ThroughputChangePct(), 0.0);
}

TEST(SpanPrioritization, ReducesMemory) {
  AllocatorConfig control;
  AllocatorConfig experiment =
      AllocatorConfig::Builder().WithSpanPrioritization().Build();

  AbDelta delta = RunMixedAb(control, experiment, 103);
  // Fig. 14: fragmentation (and hence footprint) falls; productivity is
  // unchanged (allow generous noise).
  EXPECT_LT(delta.MemoryChangePct(), 0.0);
  EXPECT_NEAR(delta.ThroughputChangePct(), 0.0, 2.0);
}

TEST(LifetimeAwareFiller, ImprovesHugepageCoverageAndTlb) {
  AllocatorConfig control;
  AllocatorConfig experiment =
      AllocatorConfig::Builder().WithLifetimeAwareFiller().Build();

  AbDelta delta = RunMixedAb(control, experiment, 104);
  // Fig. 17 / Table 2: hugepage coverage up, dTLB walk fraction down.
  EXPECT_GE(delta.experiment.HugepageCoverage(),
            delta.control.HugepageCoverage());
  EXPECT_LE(delta.experiment.DtlbWalkFraction(),
            delta.control.DtlbWalkFraction() * 1.05);
}

TEST(AllOptimizations, CombinedImprovesThroughputAndMemory) {
  AllocatorConfig control;
  AllocatorConfig experiment = AllocatorConfig::AllOptimizations(control);

  AbDelta delta = RunMixedAb(control, experiment, 105);
  // Section 4.5: +1.4% throughput, -3.4% memory fleet-wide; directions
  // must hold on this single machine too.
  EXPECT_GT(delta.ThroughputChangePct(), 0.0);
  EXPECT_LT(delta.MemoryChangePct(), 0.0);
}

TEST(AllOptimizations, ConfigHelperSetsEverything) {
  AllocatorConfig base;
  AllocatorConfig all = AllocatorConfig::AllOptimizations(base);
  EXPECT_TRUE(all.dynamic_cpu_caches);
  EXPECT_TRUE(all.nuca_transfer_cache);
  EXPECT_TRUE(all.span_prioritization);
  EXPECT_TRUE(all.lifetime_aware_filler);
  EXPECT_EQ(all.per_cpu_cache_bytes, base.per_cpu_cache_bytes / 2);
}

}  // namespace
}  // namespace wsc::fleet
