// Tests for the parallel fleet execution engine: results must be
// bit-identical to the sequential run for any worker count, because
// machines share no state and the merge is machine-index ordered.

#include <gtest/gtest.h>

#include <cstdlib>
#include <mutex>
#include <vector>

#include "fleet/experiment.h"
#include "fleet/fleet.h"
#include "fleet/parallel.h"

namespace wsc::fleet {
namespace {

FleetConfig SmallFleet() {
  FleetConfig config;
  config.num_machines = 5;
  config.num_binaries = 12;
  config.min_colocated = 1;
  config.max_colocated = 2;
  config.duration = Milliseconds(300);
  config.max_requests_per_process = 2000;
  return config;
}

// Exact equality on every metric, including doubles: the parallel engine
// must not change a single floating-point operation.
void ExpectIdentical(const std::vector<FleetObservation>& a,
                     const std::vector<FleetObservation>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a[i].machine, b[i].machine);
    EXPECT_EQ(a[i].binary_rank, b[i].binary_rank);
    EXPECT_EQ(a[i].result.workload_name, b[i].result.workload_name);
    const auto& da = a[i].result.driver;
    const auto& db = b[i].result.driver;
    EXPECT_EQ(da.requests, db.requests);
    EXPECT_EQ(da.allocations, db.allocations);
    EXPECT_EQ(da.frees, db.frees);
    EXPECT_EQ(da.cpu_ns, db.cpu_ns);
    EXPECT_EQ(da.malloc_ns, db.malloc_ns);
    EXPECT_EQ(da.tlb_stall_ns, db.tlb_stall_ns);
    EXPECT_EQ(da.llc_stall_ns, db.llc_stall_ns);
    EXPECT_EQ(a[i].result.avg_heap_bytes, b[i].result.avg_heap_bytes);
    EXPECT_EQ(a[i].result.avg_live_bytes, b[i].result.avg_live_bytes);
    EXPECT_EQ(a[i].result.heap.live_bytes, b[i].result.heap.live_bytes);
    EXPECT_EQ(a[i].result.heap.ExternalFragmentation(),
              b[i].result.heap.ExternalFragmentation());
    EXPECT_EQ(a[i].result.hugepage_coverage, b[i].result.hugepage_coverage);
  }
}

TEST(ParallelFleet, ThreadCountDoesNotChangeResults) {
  tcmalloc::AllocatorConfig allocator;
  Fleet sequential(SmallFleet(), allocator, 31337);
  sequential.Run(1);
  Fleet parallel(SmallFleet(), allocator, 31337);
  parallel.Run(4);
  ExpectIdentical(sequential.observations(), parallel.observations());
}

TEST(ParallelFleet, MoreThreadsThanMachines) {
  tcmalloc::AllocatorConfig allocator;
  Fleet sequential(SmallFleet(), allocator, 99);
  sequential.Run(1);
  Fleet oversubscribed(SmallFleet(), allocator, 99);
  oversubscribed.Run(16);  // 16 workers, 5 machines
  ExpectIdentical(sequential.observations(), oversubscribed.observations());
}

TEST(ParallelFleet, AggregatedMetricsIdentical) {
  tcmalloc::AllocatorConfig allocator;
  Fleet a(SmallFleet(), allocator, 555);
  a.Run(1);
  Fleet b(SmallFleet(), allocator, 555);
  b.Run(3);
  MetricSet ma, mb;
  for (const auto& obs : a.observations()) Accumulate(ma, obs.result);
  for (const auto& obs : b.observations()) Accumulate(mb, obs.result);
  EXPECT_EQ(ma.requests, mb.requests);
  EXPECT_EQ(ma.cpu_ns, mb.cpu_ns);
  EXPECT_EQ(ma.malloc_ns, mb.malloc_ns);
  EXPECT_EQ(ma.memory_bytes, mb.memory_bytes);
  EXPECT_EQ(ma.frag_bytes, mb.frag_bytes);
  EXPECT_EQ(ma.llc_misses, mb.llc_misses);
  EXPECT_EQ(ma.processes, mb.processes);
}

TEST(ParallelFleet, AbExperimentDeltasIdentical) {
  tcmalloc::AllocatorConfig control;
  tcmalloc::AllocatorConfig experiment =
      tcmalloc::AllocatorConfig::Builder().WithSpanPrioritization().Build();

  FleetConfig seq_config = SmallFleet();
  seq_config.num_threads = 1;
  FleetConfig par_config = SmallFleet();
  par_config.num_threads = 4;

  AbResult seq = RunFleetAb(seq_config, control, experiment, 777);
  AbResult par = RunFleetAb(par_config, control, experiment, 777);

  EXPECT_EQ(seq.fleet.control.requests, par.fleet.control.requests);
  EXPECT_EQ(seq.fleet.experiment.requests, par.fleet.experiment.requests);
  EXPECT_EQ(seq.fleet.control.memory_bytes, par.fleet.control.memory_bytes);
  EXPECT_EQ(seq.fleet.experiment.memory_bytes,
            par.fleet.experiment.memory_bytes);
  EXPECT_EQ(seq.fleet.ThroughputChangePct(), par.fleet.ThroughputChangePct());
  EXPECT_EQ(seq.fleet.MemoryChangePct(), par.fleet.MemoryChangePct());
  ASSERT_EQ(seq.per_app.size(), par.per_app.size());
  for (size_t i = 0; i < seq.per_app.size(); ++i) {
    EXPECT_EQ(seq.per_app[i].control.requests, par.per_app[i].control.requests);
    EXPECT_EQ(seq.per_app[i].experiment.cpu_ns, par.per_app[i].experiment.cpu_ns);
  }
}

TEST(ParallelFleet, PlanMatchesExecution) {
  // PlanMachines is a pure function of (config, seed): two fleets with the
  // same inputs must plan identically, and every machine must get a plan.
  FleetConfig config = SmallFleet();
  tcmalloc::AllocatorConfig allocator;
  Fleet a(config, allocator, 4242);
  Fleet b(config, allocator, 4242);
  auto pa = a.PlanMachines();
  auto pb = b.PlanMachines();
  ASSERT_EQ(pa.size(), static_cast<size_t>(config.num_machines));
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t m = 0; m < pa.size(); ++m) {
    EXPECT_EQ(pa[m].machine_seed, pb[m].machine_seed);
    EXPECT_EQ(pa[m].ranks, pb[m].ranks);
    EXPECT_EQ(pa[m].workloads.size(), pb[m].workloads.size());
    EXPECT_EQ(pa[m].platform.name, pb[m].platform.name);
  }
}

TEST(ResolveThreadCount, ExplicitWinsOverEnvAndAuto) {
  EXPECT_EQ(ResolveThreadCount(3), 3);
  setenv("WSC_THREADS", "2", /*overwrite=*/1);
  EXPECT_EQ(ResolveThreadCount(5), 5);
  EXPECT_EQ(ResolveThreadCount(0), 2);
  unsetenv("WSC_THREADS");
  EXPECT_GE(ResolveThreadCount(0), 1);  // hardware concurrency fallback
}

TEST(ParallelFor, CoversAllIndicesOnce) {
  std::vector<int> hits(100, 0);
  std::mutex mu;
  ParallelFor(100, 4, [&](int i) {
    std::lock_guard<std::mutex> lock(mu);
    hits[i]++;
  });
  for (int i = 0; i < 100; ++i) EXPECT_EQ(hits[i], 1) << i;
}

}  // namespace
}  // namespace wsc::fleet
