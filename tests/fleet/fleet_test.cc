// Tests for fleet composition and determinism.

#include "fleet/fleet.h"

#include <gtest/gtest.h>

#include <set>

namespace wsc::fleet {
namespace {

FleetConfig TinyFleet() {
  FleetConfig config;
  config.num_machines = 4;
  config.num_binaries = 10;
  config.duration = Milliseconds(200);
  config.max_requests_per_process = 1500;
  return config;
}

TEST(Fleet, RunProducesObservationsForAllMachines) {
  Fleet fleet(TinyFleet(), tcmalloc::AllocatorConfig(), 42);
  fleet.Run();
  std::set<int> machines;
  for (const FleetObservation& obs : fleet.observations()) {
    machines.insert(obs.machine);
    EXPECT_GE(obs.binary_rank, 0);
    EXPECT_LT(obs.binary_rank, 10);
    EXPECT_GT(obs.result.driver.requests, 0u);
  }
  EXPECT_EQ(machines.size(), 4u);
}

TEST(Fleet, CompositionIsSeedDeterministicAcrossConfigs) {
  // The same seed must produce identical machine composition regardless of
  // allocator config (the paired-A/B invariant).
  tcmalloc::AllocatorConfig control;
  tcmalloc::AllocatorConfig experiment =
      tcmalloc::AllocatorConfig::AllOptimizations(control);
  Fleet a(TinyFleet(), control, 7);
  Fleet b(TinyFleet(), experiment, 7);
  a.Run();
  b.Run();
  ASSERT_EQ(a.observations().size(), b.observations().size());
  for (size_t i = 0; i < a.observations().size(); ++i) {
    EXPECT_EQ(a.observations()[i].machine, b.observations()[i].machine);
    EXPECT_EQ(a.observations()[i].binary_rank,
              b.observations()[i].binary_rank);
    EXPECT_EQ(a.observations()[i].result.workload_name,
              b.observations()[i].result.workload_name);
  }
}

TEST(Fleet, IdenticalConfigsProduceIdenticalResults) {
  tcmalloc::AllocatorConfig config;
  Fleet a(TinyFleet(), config, 9);
  Fleet b(TinyFleet(), config, 9);
  a.Run();
  b.Run();
  ASSERT_EQ(a.observations().size(), b.observations().size());
  for (size_t i = 0; i < a.observations().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.observations()[i].result.driver.cpu_ns,
                     b.observations()[i].result.driver.cpu_ns);
    EXPECT_DOUBLE_EQ(a.observations()[i].result.avg_heap_bytes,
                     b.observations()[i].result.avg_heap_bytes);
  }
}

TEST(Fleet, TopFiveRanksUseExactProfiles) {
  Fleet fleet(TinyFleet(), tcmalloc::AllocatorConfig(), 11);
  EXPECT_EQ(fleet.BinarySpec(0).name, "spanner");
  EXPECT_EQ(fleet.BinarySpec(4).name, "disk");
  EXPECT_NE(fleet.BinarySpec(5).name.find("binary-5"), std::string::npos);
}

TEST(Fleet, ZipfMakesLowRanksMoreCommon) {
  FleetConfig config = TinyFleet();
  config.num_machines = 40;
  config.max_requests_per_process = 50;  // composition only
  config.duration = Milliseconds(1);
  Fleet fleet(config, tcmalloc::AllocatorConfig(), 13);
  fleet.Run();
  int low = 0, high = 0;
  for (const FleetObservation& obs : fleet.observations()) {
    if (obs.binary_rank < 3) ++low;
    if (obs.binary_rank >= 7) ++high;
  }
  EXPECT_GT(low, high);
}

}  // namespace
}  // namespace wsc::fleet
