// Tests for the paired A/B experiment framework.

#include "fleet/experiment.h"

#include <gtest/gtest.h>

namespace wsc::fleet {
namespace {

FleetConfig TinyFleet() {
  FleetConfig config;
  config.num_machines = 3;
  config.num_binaries = 8;
  config.duration = Milliseconds(150);
  config.max_requests_per_process = 1200;
  return config;
}

TEST(Experiment, IdenticalConfigsGiveZeroDeltas) {
  tcmalloc::AllocatorConfig config;
  AbResult result = RunFleetAb(TinyFleet(), config, config, 21);
  EXPECT_DOUBLE_EQ(result.fleet.ThroughputChangePct(), 0.0);
  EXPECT_DOUBLE_EQ(result.fleet.MemoryChangePct(), 0.0);
  EXPECT_DOUBLE_EQ(result.fleet.CpiChangePct(), 0.0);
  EXPECT_GT(result.fleet.control.processes, 0);
}

TEST(Experiment, PerAppSlicesArePresent) {
  tcmalloc::AllocatorConfig config;
  AbResult result = RunFleetAb(TinyFleet(), config, config, 22);
  ASSERT_EQ(result.per_app.size(), 5u);
  EXPECT_NE(result.FindApp("spanner"), nullptr);
  EXPECT_NE(result.FindApp("disk"), nullptr);
  EXPECT_EQ(result.FindApp("nonexistent"), nullptr);
}

TEST(Experiment, AccumulateSumsRawMetrics) {
  ProcessResult r;
  r.driver.requests = 100;
  r.driver.cpu_ns = 1e9;  // 1 second
  r.driver.base_work_ns = 5e8;
  r.driver.malloc_ns = 4e7;
  r.avg_heap_bytes = 1000;
  r.avg_live_bytes = 800;
  r.hugepage_coverage = 0.5;
  r.ghz = 2.0;
  MetricSet set;
  Accumulate(set, r);
  Accumulate(set, r);
  EXPECT_DOUBLE_EQ(set.requests, 200.0);
  EXPECT_DOUBLE_EQ(set.Throughput(), 100.0);  // 200 req / 2 cpu-s
  EXPECT_DOUBLE_EQ(set.Cpi(), 2.0);
  EXPECT_DOUBLE_EQ(set.MallocFraction(), 0.04);
  EXPECT_DOUBLE_EQ(set.memory_bytes, 2000.0);
  EXPECT_DOUBLE_EQ(set.FragRatio(), 400.0 / 1600.0);
  EXPECT_DOUBLE_EQ(set.HugepageCoverage(), 0.5);
  EXPECT_EQ(set.processes, 2);
}

TEST(Experiment, DeltaMathMatchesPercentChange) {
  AbDelta delta;
  delta.control.requests = 1000;
  delta.control.cpu_ns = 1e9;
  delta.experiment.requests = 1014;
  delta.experiment.cpu_ns = 1e9;
  EXPECT_NEAR(delta.ThroughputChangePct(), 1.4, 1e-9);
  delta.control.memory_bytes = 100;
  delta.experiment.memory_bytes = 96.6;
  EXPECT_NEAR(delta.MemoryChangePct(), -3.4, 1e-9);
}

TEST(Experiment, BenchmarkAbRunsBothSides) {
  workload::WorkloadSpec spec;
  spec.name = "bench";
  spec.behaviors = {
      workload::MakeBehavior(1.0, workload::SizeLognormal(512, 2.0),
                             workload::LifetimeLognormal(Microseconds(200),
                                                         3.0)),
  };
  spec.allocs_per_request = 4;
  spec.request_work_ns = 2000;
  spec.request_interval_ns = Microseconds(30);
  spec.max_threads = 4;

  tcmalloc::AllocatorConfig control;
  tcmalloc::AllocatorConfig experiment = control;
  experiment.per_cpu_cache_bytes /= 2;

  AbDelta delta = RunBenchmarkAb(
      spec, hw::PlatformSpecFor(hw::PlatformGeneration::kGenC), control,
      experiment, 23, Seconds(1), 3000);
  EXPECT_EQ(delta.label, "bench");
  EXPECT_GT(delta.control.requests, 0.0);
  EXPECT_GT(delta.experiment.requests, 0.0);
}

}  // namespace
}  // namespace wsc::fleet
