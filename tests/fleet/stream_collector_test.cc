// Tests for the streaming fleet aggregation path: RunStreaming +
// StreamCollector must produce aggregates bit-identical to the buffered
// Run() + MergedTelemetry/MergedTimeSeries path for any worker count,
// with a reorder buffer bounded by the streaming window (never by the
// machine count), and capturing time series must not perturb the
// simulation (observer-effect freedom).

#include "fleet/stream_collector.h"

#include <gtest/gtest.h>

#include <vector>

#include "fleet/fleet.h"
#include "telemetry/timeseries.h"

namespace wsc::fleet {
namespace {

FleetConfig StreamFleet(int machines = 6) {
  FleetConfig config;
  config.num_machines = machines;
  config.num_binaries = 12;
  config.min_colocated = 1;
  config.max_colocated = 2;
  config.duration = Milliseconds(1500);
  config.max_requests_per_process = 2000;
  config.timeseries_interval = Milliseconds(500);
  config.selfprof_interval = 512;
  return config;
}

// Feeds buffered observations through a StreamCollector the way
// RunStreaming would: grouped by machine, in index order.
StreamCollector CollectBuffered(const std::vector<FleetObservation>& obs,
                                int num_machines) {
  StreamCollector collector;
  for (int m = 0; m < num_machines; ++m) {
    std::vector<FleetObservation> machine_obs;
    for (const FleetObservation& o : obs) {
      if (o.machine == m) machine_obs.push_back(o);
    }
    collector.Collect(m, machine_obs);
  }
  return collector;
}

TEST(StreamCollector, StreamingEqualsBufferedMerge) {
  tcmalloc::AllocatorConfig allocator;
  Fleet buffered(StreamFleet(), allocator, 20240808);
  buffered.Run(1);
  StreamCollector expected =
      CollectBuffered(buffered.observations(), StreamFleet().num_machines);

  Fleet streamed(StreamFleet(), allocator, 20240808);
  StreamCollector collector;
  streamed.RunStreaming(collector, /*num_threads=*/4);

  // Full bit-identity across every aggregate the collector keeps.
  EXPECT_EQ(collector.telemetry(), expected.telemetry());
  EXPECT_EQ(collector.timeseries(), expected.timeseries());
  EXPECT_EQ(collector.machines(), expected.machines());
  EXPECT_EQ(collector.processes(), expected.processes());
  EXPECT_EQ(collector.oom_kills(), expected.oom_kills());
  EXPECT_EQ(collector.total_requests(), expected.total_requests());
  EXPECT_EQ(collector.total_failed_allocations(),
            expected.total_failed_allocations());
  EXPECT_EQ(collector.total_avg_heap_bytes(),
            expected.total_avg_heap_bytes());

  // The interval series also matches the plain MergedTimeSeries fold
  // (the collector adds its own fleet sketches on top, so compare the
  // intervals, which both paths build identically).
  telemetry::IntervalSeries merged =
      MergedTimeSeries(buffered.observations());
  EXPECT_EQ(collector.timeseries().intervals(), merged.intervals());

  // The streamed self-profile equals the buffered fold (rendered form:
  // FoldedProfile has no operator==, but the render is canonical).
  EXPECT_FALSE(collector.self_profile().empty());
  EXPECT_EQ(prof::RenderFolded(collector.self_profile()),
            prof::RenderFolded(MergedSelfProfile(buffered.observations())));
}

TEST(StreamCollector, ThreadCountDoesNotChangeAggregates) {
  tcmalloc::AllocatorConfig allocator;
  Fleet one(StreamFleet(), allocator, 777);
  StreamCollector c1;
  one.RunStreaming(c1, /*num_threads=*/1);

  Fleet eight(StreamFleet(), allocator, 777);
  StreamCollector c8;
  eight.RunStreaming(c8, /*num_threads=*/8);

  EXPECT_EQ(c1.telemetry(), c8.telemetry());
  EXPECT_EQ(c1.timeseries(), c8.timeseries());
  EXPECT_EQ(c1.total_requests(), c8.total_requests());
  EXPECT_EQ(c1.total_avg_heap_bytes(), c8.total_avg_heap_bytes());
  // And the NDJSON rendering — the actual byte-identity contract.
  EXPECT_EQ(c1.timeseries().RenderNdjson("t", ""),
            c8.timeseries().RenderNdjson("t", ""));
}

TEST(StreamCollector, ReorderBufferBoundedByWindowNotMachines) {
  // 24 machines, 3 workers, window 6: no matter how machine runtimes
  // skew, at most `window` completed machines may wait for the fold
  // cursor. This is the O(1)-in-machine-count memory claim at unit scale
  // (the CI stream-scaling smoke pins the RSS version at 1000 machines).
  tcmalloc::AllocatorConfig allocator;
  Fleet f(StreamFleet(/*machines=*/24), allocator, 99);
  StreamCollector collector;
  f.RunStreaming(collector, /*num_threads=*/3, /*window=*/6);
  EXPECT_EQ(collector.machines(), 24);
  EXPECT_GE(collector.peak_pending(), 1u);
  EXPECT_LE(collector.peak_pending(), 6u);
}

TEST(StreamCollector, DefaultWindowIsTwiceWorkers) {
  tcmalloc::AllocatorConfig allocator;
  Fleet f(StreamFleet(/*machines=*/16), allocator, 5);
  StreamCollector collector;
  f.RunStreaming(collector, /*num_threads=*/2);  // window defaults to 4
  EXPECT_LE(collector.peak_pending(), 4u);
}

TEST(StreamCollector, CollectEnforcesIndexOrder) {
  StreamCollector collector;
  collector.Collect(0, {});
  collector.Collect(1, {});
  EXPECT_EQ(collector.machines(), 2);
  EXPECT_DEATH(collector.Collect(5, {}), "machine_index");
}

TEST(StreamCollector, TimeseriesCaptureIsObserverEffectFree) {
  // The same fleet with and without interval capture must do the same
  // simulation work: identical final telemetry, identical totals. The
  // sampler only reads snapshots at boundaries; it must never perturb
  // the allocator or the workload.
  tcmalloc::AllocatorConfig allocator;
  FleetConfig with_ts = StreamFleet();
  FleetConfig without_ts = StreamFleet();
  without_ts.timeseries_interval = 0;

  Fleet observed(with_ts, allocator, 4242);
  observed.Run(2);
  Fleet plain(without_ts, allocator, 4242);
  plain.Run(2);

  EXPECT_EQ(MergedTelemetry(observed.observations()),
            MergedTelemetry(plain.observations()));
  ASSERT_EQ(observed.observations().size(), plain.observations().size());
  for (size_t i = 0; i < observed.observations().size(); ++i) {
    const ProcessResult& a = observed.observations()[i].result;
    const ProcessResult& b = plain.observations()[i].result;
    EXPECT_EQ(a.driver.requests, b.driver.requests);
    EXPECT_EQ(a.driver.allocations, b.driver.allocations);
    EXPECT_EQ(a.avg_heap_bytes, b.avg_heap_bytes);
    // The observed run actually captured something; the plain run didn't.
    EXPECT_TRUE(b.timeseries.empty());
    EXPECT_FALSE(a.timeseries.empty());
  }
}

TEST(StreamCollector, DrainCaptureCoversFullRun) {
  // Every process's series must telescope to its final telemetry even
  // with the final partial interval (the drain capture at finalize).
  tcmalloc::AllocatorConfig allocator;
  Fleet f(StreamFleet(), allocator, 1234);
  f.Run(1);
  for (const FleetObservation& obs : f.observations()) {
    const telemetry::MetricSample* final_allocs =
        obs.result.telemetry.Find("allocator", "allocations");
    ASSERT_NE(final_allocs, nullptr);
    EXPECT_EQ(obs.result.timeseries.TotalCounter("allocator/allocations"),
              final_allocs->counter)
        << "machine " << obs.machine << " rank " << obs.binary_rank;
  }
}

TEST(StreamCollector, FleetSketchesPopulated) {
  tcmalloc::AllocatorConfig allocator;
  Fleet f(StreamFleet(), allocator, 31415);
  StreamCollector collector;
  f.RunStreaming(collector, /*num_threads=*/2);
  const auto& sketches = collector.timeseries().sketches();
  ASSERT_TRUE(sketches.count("machine_avg_heap_bytes"));
  ASSERT_TRUE(sketches.count("process_avg_heap_bytes"));
  ASSERT_TRUE(sketches.count("process_requests"));
  EXPECT_EQ(sketches.at("machine_avg_heap_bytes").count(),
            static_cast<uint64_t>(collector.machines()));
  EXPECT_EQ(sketches.at("process_avg_heap_bytes").count(),
            static_cast<uint64_t>(collector.processes()));
}

}  // namespace
}  // namespace wsc::fleet
