// Tests for fleet fault injection: fault plans must not perturb machine
// composition, faulted runs (mmap failures + hugepage scarcity + injected
// heap bugs + a machine OOM kill) must complete without crashing with
// nonzero "failure" telemetry, and everything must stay bit-identical for
// any worker-thread count.

#include <gtest/gtest.h>

#include "fleet/experiment.h"
#include "fleet/fleet.h"

namespace wsc::fleet {
namespace {

FleetConfig SmallFaultFleet() {
  FleetConfig config;
  config.num_machines = 5;
  config.num_binaries = 12;
  config.min_colocated = 1;
  config.max_colocated = 2;
  config.duration = Seconds(3);
  config.max_requests_per_process = 4000;
  config.faults.enabled = true;
  config.faults.mmap_windows = 2;
  config.faults.mmap_window_calls = 3;
  config.faults.mmap_call_horizon = 64;
  config.faults.huge_backing_windows = 2;
  config.faults.huge_backing_window_calls = 16;
  config.faults.huge_backing_call_horizon = 64;
  config.faults.double_free_probability = 0.02;
  config.faults.use_after_free_probability = 0.02;
  config.faults.overrun_probability = 0.02;
  config.faults.oom_kill_probability = 1.0;  // every machine kills once
  config.faults.oom_kill_min_frac = 0.2;
  config.faults.oom_kill_max_frac = 0.5;
  return config;
}

tcmalloc::AllocatorConfig GuardedAllocator() {
  return tcmalloc::AllocatorConfig::Builder()
      .WithSampleIntervalBytes(64 * 1024)
      .WithGuardedSampling()
      .Build();
}

TEST(FaultPlanning, PlansDoNotPerturbMachineComposition) {
  // Fault draws come after the machine seed fork, so enabling faults
  // leaves platforms, workloads, seeds, and pressure plans untouched.
  FleetConfig with = SmallFaultFleet();
  FleetConfig without = SmallFaultFleet();
  without.faults.enabled = false;

  tcmalloc::AllocatorConfig allocator;
  auto pw = Fleet(with, allocator, 4242).PlanMachines();
  auto po = Fleet(without, allocator, 4242).PlanMachines();
  ASSERT_EQ(pw.size(), po.size());
  for (size_t m = 0; m < pw.size(); ++m) {
    SCOPED_TRACE(m);
    EXPECT_EQ(pw[m].machine_seed, po[m].machine_seed);
    EXPECT_EQ(pw[m].ranks, po[m].ranks);
    EXPECT_EQ(pw[m].platform.name, po[m].platform.name);
    EXPECT_EQ(pw[m].fault_plans.size(), pw[m].workloads.size());
    EXPECT_GT(pw[m].oom_kill_time, 0);
    EXPECT_TRUE(po[m].fault_plans.empty());
    EXPECT_EQ(po[m].oom_kill_time, 0);
  }
}

TEST(FaultPlanning, PlansAreReproducibleAndPopulated) {
  FleetConfig config = SmallFaultFleet();
  tcmalloc::AllocatorConfig allocator;
  auto pa = Fleet(config, allocator, 99).PlanMachines();
  auto pb = Fleet(config, allocator, 99).PlanMachines();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t m = 0; m < pa.size(); ++m) {
    SCOPED_TRACE(m);
    ASSERT_EQ(pa[m].fault_plans.size(), pb[m].fault_plans.size());
    for (size_t i = 0; i < pa[m].fault_plans.size(); ++i) {
      EXPECT_EQ(pa[m].fault_plans[i], pb[m].fault_plans[i]);
      EXPECT_EQ(pa[m].fault_plans[i].mmap_windows.size(), 2u);
      EXPECT_EQ(pa[m].fault_plans[i].huge_backing_windows.size(), 2u);
    }
    EXPECT_EQ(pa[m].oom_kill_time, pb[m].oom_kill_time);
    EXPECT_EQ(pa[m].restart_seed, pb[m].restart_seed);
    // Bug probabilities are stamped onto every planned workload.
    for (const workload::WorkloadSpec& spec : pa[m].workloads) {
      EXPECT_TRUE(spec.injects_bugs());
    }
  }
}

TEST(FaultRun, FaultedFleetSurvivesWithNonzeroFailureTelemetry) {
  // The acceptance bar: a fleet under mmap failures, hugepage scarcity,
  // injected heap bugs, and one OOM kill per machine completes with zero
  // crashes and visibly nonzero failure counters.
  FleetConfig config = SmallFaultFleet();
  Fleet fleet(config, GuardedAllocator(), 777);
  fleet.Run(2);

  telemetry::Snapshot merged = MergedTelemetry(fleet.observations());
  const telemetry::MetricSample* mmap = merged.Find("failure", "mmap_denied");
  const telemetry::MetricSample* backing =
      merged.Find("failure", "hugepage_backing_denied");
  ASSERT_NE(mmap, nullptr);
  ASSERT_NE(backing, nullptr);
  EXPECT_GT(mmap->ScalarValue(), 0.0);
  EXPECT_GT(backing->ScalarValue(), 0.0);

  // Injected bugs were detected and attributed fleet-wide.
  uint64_t injected = 0, detected = 0;
  int oom_kills = 0;
  for (const FleetObservation& obs : fleet.observations()) {
    injected += obs.result.driver.injected_bugs;
    detected += obs.result.driver.detected_bugs;
    if (obs.result.oom_killed) ++oom_kills;
  }
  EXPECT_GT(injected, 0u);
  EXPECT_EQ(detected, injected);
  // Every machine planned a kill; it fires on machines whose processes
  // were still running at the planned time.
  EXPECT_GT(oom_kills, 0);
  EXPECT_LE(oom_kills, config.num_machines);

  // OOM restarts make some machine emit one more result than workloads,
  // and every observation's rank attribution stays within bounds.
  EXPECT_GT(fleet.observations().size(), 0u);
  for (const FleetObservation& obs : fleet.observations()) {
    EXPECT_GE(obs.result.workload_index, 0);
  }
}

TEST(FaultDeterminism, ThreadCountDoesNotChangeFaultedRuns) {
  // Bit-identical results for --threads=1 and --threads=8, faults and all:
  // fault points are call-indexed, plans are drawn seed-ordered, and the
  // OOM kill rides the machine's own local timeline.
  FleetConfig config = SmallFaultFleet();
  tcmalloc::AllocatorConfig allocator = GuardedAllocator();

  Fleet sequential(config, allocator, 31337);
  sequential.Run(1);
  Fleet parallel(config, allocator, 31337);
  parallel.Run(8);

  const auto& a = sequential.observations();
  const auto& b = parallel.observations();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a[i].result.workload_index, b[i].result.workload_index);
    EXPECT_EQ(a[i].result.oom_killed, b[i].result.oom_killed);
    EXPECT_EQ(a[i].result.driver.requests, b[i].result.driver.requests);
    EXPECT_EQ(a[i].result.driver.failed_allocations,
              b[i].result.driver.failed_allocations);
    EXPECT_EQ(a[i].result.driver.injected_bugs, b[i].result.driver.injected_bugs);
    EXPECT_EQ(a[i].result.driver.cpu_ns, b[i].result.driver.cpu_ns);
    EXPECT_EQ(a[i].result.avg_heap_bytes, b[i].result.avg_heap_bytes);
    EXPECT_EQ(a[i].result.telemetry, b[i].result.telemetry);
  }
  EXPECT_EQ(MergedTelemetry(a), MergedTelemetry(b));
}

TEST(FaultRun, DisabledFaultsLeaveFailureCountersAtZero) {
  FleetConfig config = SmallFaultFleet();
  config.faults.enabled = false;
  tcmalloc::AllocatorConfig allocator;
  Fleet fleet(config, allocator, 777);
  fleet.Run(2);

  telemetry::Snapshot merged = MergedTelemetry(fleet.observations());
  for (const char* name : {"alloc_failures", "double_frees_detected",
                           "use_after_frees_detected"}) {
    SCOPED_TRACE(name);
    const telemetry::MetricSample* sample = merged.Find("failure", name);
    ASSERT_NE(sample, nullptr);  // live handles: present even when healthy
    EXPECT_EQ(sample->ScalarValue(), 0.0);
  }
  for (const FleetObservation& obs : fleet.observations()) {
    EXPECT_FALSE(obs.result.oom_killed);
    EXPECT_EQ(obs.result.driver.injected_bugs, 0u);
  }
}

TEST(FaultAb, PairedArmsSeeIdenticalFaultPlans) {
  // Paired A/B fleets share the seed, so both arms face the same faults;
  // the experiment harness keeps working under fault injection.
  FleetConfig config = SmallFaultFleet();
  tcmalloc::AllocatorConfig control = GuardedAllocator();
  tcmalloc::AllocatorConfig experiment =
      tcmalloc::AllocatorConfig::AllOptimizations(control);
  AbResult result = RunFleetAb(config, control, experiment, 555);
  EXPECT_GT(result.fleet.control.requests, 0.0);
  EXPECT_GT(result.fleet.experiment.requests, 0.0);
  const telemetry::MetricSample* c =
      result.fleet.control_telemetry.Find("failure", "mmap_denied");
  const telemetry::MetricSample* e =
      result.fleet.experiment_telemetry.Find("failure", "mmap_denied");
  ASSERT_NE(c, nullptr);
  ASSERT_NE(e, nullptr);
  EXPECT_GT(c->ScalarValue(), 0.0);
  EXPECT_GT(e->ScalarValue(), 0.0);
}

}  // namespace
}  // namespace wsc::fleet
