// Tests for fleet memory-pressure injection: pressure events must not
// perturb machine composition, pressure runs must stay bit-identical for
// any worker-thread count (PR 1's determinism guarantee), and the events
// must actually drive the reclaim cascade (visible in merged telemetry).

#include <gtest/gtest.h>

#include "fleet/experiment.h"
#include "fleet/fleet.h"

namespace wsc::fleet {
namespace {

FleetConfig SmallPressureFleet() {
  FleetConfig config;
  config.num_machines = 5;
  config.num_binaries = 12;
  config.min_colocated = 1;
  config.max_colocated = 2;
  config.duration = Seconds(3);
  config.max_requests_per_process = 4000;
  config.pressure.enabled = true;
  // Early, deep windows so short test runs spend most of their time under
  // pressure.
  config.pressure.diurnal_start_frac = 0.1;
  config.pressure.diurnal_end_frac = 0.9;
  config.pressure.diurnal_fraction = 0.5;
  return config;
}

TEST(PressurePlanning, EventsDoNotPerturbMachineComposition) {
  // Pressure draws come after the machine seed fork, so enabling pressure
  // leaves platforms, workloads, and seeds untouched.
  FleetConfig with = SmallPressureFleet();
  FleetConfig without = SmallPressureFleet();
  without.pressure.enabled = false;

  tcmalloc::AllocatorConfig allocator;
  auto pw = Fleet(with, allocator, 4242).PlanMachines();
  auto po = Fleet(without, allocator, 4242).PlanMachines();
  ASSERT_EQ(pw.size(), po.size());
  for (size_t m = 0; m < pw.size(); ++m) {
    SCOPED_TRACE(m);
    EXPECT_EQ(pw[m].machine_seed, po[m].machine_seed);
    EXPECT_EQ(pw[m].ranks, po[m].ranks);
    EXPECT_EQ(pw[m].platform.name, po[m].platform.name);
    EXPECT_GE(pw[m].pressure_events.size(), 1u);  // at least the diurnal
    EXPECT_TRUE(po[m].pressure_events.empty());
  }
}

TEST(PressurePlanning, PlansAreReproducible) {
  FleetConfig config = SmallPressureFleet();
  tcmalloc::AllocatorConfig allocator;
  auto pa = Fleet(config, allocator, 99).PlanMachines();
  auto pb = Fleet(config, allocator, 99).PlanMachines();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t m = 0; m < pa.size(); ++m) {
    SCOPED_TRACE(m);
    ASSERT_EQ(pa[m].pressure_events.size(), pb[m].pressure_events.size());
    for (size_t e = 0; e < pa[m].pressure_events.size(); ++e) {
      EXPECT_EQ(pa[m].pressure_events[e].start,
                pb[m].pressure_events[e].start);
      EXPECT_EQ(pa[m].pressure_events[e].end, pb[m].pressure_events[e].end);
      EXPECT_EQ(pa[m].pressure_events[e].limit_fraction,
                pb[m].pressure_events[e].limit_fraction);
    }
  }
}

TEST(PressureDeterminism, ThreadCountDoesNotChangePressureRuns) {
  // The acceptance bar: a pressure run's merged telemetry — including
  // every "pressure" counter written by the reclaim cascade — is
  // bit-identical for --threads=1 and --threads=8.
  FleetConfig config = SmallPressureFleet();
  tcmalloc::AllocatorConfig allocator;

  Fleet sequential(config, allocator, 31337);
  sequential.Run(1);
  Fleet parallel(config, allocator, 31337);
  parallel.Run(8);

  const auto& a = sequential.observations();
  const auto& b = parallel.observations();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a[i].result.driver.requests, b[i].result.driver.requests);
    EXPECT_EQ(a[i].result.driver.failed_allocations,
              b[i].result.driver.failed_allocations);
    EXPECT_EQ(a[i].result.driver.cpu_ns, b[i].result.driver.cpu_ns);
    EXPECT_EQ(a[i].result.avg_heap_bytes, b[i].result.avg_heap_bytes);
    EXPECT_EQ(a[i].result.telemetry, b[i].result.telemetry);
  }
  EXPECT_EQ(MergedTelemetry(a), MergedTelemetry(b));
}

TEST(PressureRun, EventsDriveTheReclaimCascade) {
  FleetConfig config = SmallPressureFleet();
  tcmalloc::AllocatorConfig allocator;
  Fleet fleet(config, allocator, 777);
  fleet.Run(2);

  telemetry::Snapshot merged = MergedTelemetry(fleet.observations());
  const telemetry::MetricSample* hits =
      merged.Find("pressure", "soft_limit_hits");
  const telemetry::MetricSample* reclaimed =
      merged.Find("pressure", "reclaimed_bytes");
  ASSERT_NE(hits, nullptr);
  ASSERT_NE(reclaimed, nullptr);
  EXPECT_GT(hits->ScalarValue(), 0.0);
  EXPECT_GT(reclaimed->ScalarValue(), 0.0);
}

TEST(PressureRun, DisabledPressureLeavesCountersAtZero) {
  FleetConfig config = SmallPressureFleet();
  config.pressure.enabled = false;
  tcmalloc::AllocatorConfig allocator;
  Fleet fleet(config, allocator, 777);
  fleet.Run(2);

  telemetry::Snapshot merged = MergedTelemetry(fleet.observations());
  const telemetry::MetricSample* hits =
      merged.Find("pressure", "soft_limit_hits");
  ASSERT_NE(hits, nullptr);  // registered in every allocator's registry
  EXPECT_EQ(hits->ScalarValue(), 0.0);
  const telemetry::MetricSample* failures =
      merged.Find("pressure", "hard_limit_failures");
  ASSERT_NE(failures, nullptr);
  EXPECT_EQ(failures->ScalarValue(), 0.0);
}

TEST(PressureAb, PairedArmsSeeIdenticalEvents) {
  // Paired A/B fleets share the seed, so both arms get the same pressure
  // events; the failed-allocation accounting flows into MetricSet.
  FleetConfig config = SmallPressureFleet();
  tcmalloc::AllocatorConfig control;
  tcmalloc::AllocatorConfig experiment =
      tcmalloc::AllocatorConfig::AllOptimizations(control);
  AbResult result = RunFleetAb(config, control, experiment, 555);
  EXPECT_GT(result.fleet.control.requests, 0.0);
  EXPECT_GT(result.fleet.experiment.requests, 0.0);
  const telemetry::MetricSample* c =
      result.fleet.control_telemetry.Find("pressure", "soft_limit_hits");
  const telemetry::MetricSample* e =
      result.fleet.experiment_telemetry.Find("pressure", "soft_limit_hits");
  ASSERT_NE(c, nullptr);
  ASSERT_NE(e, nullptr);
  EXPECT_GT(c->ScalarValue(), 0.0);
  EXPECT_GT(e->ScalarValue(), 0.0);
}

}  // namespace
}  // namespace wsc::fleet
