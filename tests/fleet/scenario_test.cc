// Tests for the traffic-scenario layer: scenario planning must not perturb
// machine composition, regional phase shifts must actually shift, a zero-
// load antagonist must leave its victims bit-identical, deploy waves must
// keep the arena slot table bounded across mass restarts, and streaming
// aggregation must equal the buffered merge under every scenario.

#include "fleet/scenario.h"

#include <gtest/gtest.h>

#include "fleet/fleet.h"
#include "fleet/stream_collector.h"

namespace wsc::fleet {
namespace {

FleetConfig SmallScenarioFleet(const std::string& name) {
  FleetConfig config;
  config.num_machines = 6;
  config.num_binaries = 12;
  config.min_colocated = 1;
  config.max_colocated = 2;
  config.duration = Seconds(2);
  config.max_requests_per_process = 3000;
  config.scenario = ScenarioByName(name);
  return config;
}

TEST(ScenarioPlanning, DoesNotPerturbMachineComposition) {
  // Scenario draws come after the machine-seed fork, so enabling one
  // leaves platforms, victim workloads, and seeds untouched; the only
  // additions are load phases, deploy schedules, and appended antagonists.
  for (const std::string& name : ScenarioNames()) {
    SCOPED_TRACE(name);
    FleetConfig with = SmallScenarioFleet(name);
    FleetConfig without = SmallScenarioFleet(name);
    without.scenario.enabled = false;

    tcmalloc::AllocatorConfig allocator;
    auto pw = Fleet(with, allocator, 4242).PlanMachines();
    auto po = Fleet(without, allocator, 4242).PlanMachines();
    ASSERT_EQ(pw.size(), po.size());
    for (size_t m = 0; m < pw.size(); ++m) {
      SCOPED_TRACE(m);
      EXPECT_EQ(pw[m].machine_seed, po[m].machine_seed);
      EXPECT_EQ(pw[m].platform.name, po[m].platform.name);
      // Victims (the scenario-free composition) are a prefix of the
      // scenario plan's workloads; an antagonist may follow.
      ASSERT_GE(pw[m].workloads.size(), po[m].workloads.size());
      for (size_t i = 0; i < po[m].workloads.size(); ++i) {
        EXPECT_EQ(pw[m].workloads[i].name, po[m].workloads[i].name);
        EXPECT_EQ(pw[m].ranks[i], po[m].ranks[i]);
        EXPECT_FALSE(pw[m].workloads[i].antagonist);
      }
      for (size_t i = po[m].workloads.size(); i < pw[m].workloads.size();
           ++i) {
        EXPECT_TRUE(pw[m].workloads[i].antagonist);
        EXPECT_EQ(pw[m].ranks[i], kAntagonistRank);
      }
      EXPECT_TRUE(po[m].deploy_restarts.empty());
      for (const workload::WorkloadSpec& w : po[m].workloads) {
        EXPECT_TRUE(w.load_phases.empty());
      }
    }
  }
}

TEST(ScenarioPlanning, PlansAreReproducible) {
  for (const std::string& name : ScenarioNames()) {
    SCOPED_TRACE(name);
    FleetConfig config = SmallScenarioFleet(name);
    tcmalloc::AllocatorConfig allocator;
    auto pa = Fleet(config, allocator, 99).PlanMachines();
    auto pb = Fleet(config, allocator, 99).PlanMachines();
    ASSERT_EQ(pa.size(), pb.size());
    for (size_t m = 0; m < pa.size(); ++m) {
      SCOPED_TRACE(m);
      EXPECT_EQ(pa[m].deploy_restarts, pb[m].deploy_restarts);
      EXPECT_EQ(pa[m].deploy_restart_seed, pb[m].deploy_restart_seed);
      ASSERT_EQ(pa[m].workloads.size(), pb[m].workloads.size());
      for (size_t i = 0; i < pa[m].workloads.size(); ++i) {
        const auto& wa = pa[m].workloads[i].load_phases;
        const auto& wb = pb[m].workloads[i].load_phases;
        ASSERT_EQ(wa.size(), wb.size());
        for (size_t p = 0; p < wa.size(); ++p) {
          EXPECT_EQ(wa[p].start, wb[p].start);
          EXPECT_EQ(wa[p].end, wb[p].end);
          EXPECT_EQ(wa[p].multiplier, wb[p].multiplier);
        }
      }
    }
  }
}

TEST(ScenarioPlanning, DiurnalRegionsArePhaseShifted) {
  // Machines in the same region share the identical multiplier curve;
  // machines in different regions see shifted (different) curves.
  ScenarioConfig config = ScenarioByName("diurnal");
  SimTime duration = Seconds(4);
  Rng rng_a(1), rng_b(1), rng_c(1);
  MachineScenario m0 =
      PlanMachineScenario(config, /*machine_index=*/0, 12, duration, rng_a);
  MachineScenario m1 =
      PlanMachineScenario(config, /*machine_index=*/1, 12, duration, rng_b);
  MachineScenario m3 = PlanMachineScenario(
      config, /*machine_index=*/config.regions, 12, duration, rng_c);

  EXPECT_EQ(m0.region, 0);
  EXPECT_EQ(m1.region, 1);
  EXPECT_EQ(m3.region, 0);

  // Same region, same curve.
  ASSERT_EQ(m0.load_phases.size(), m3.load_phases.size());
  for (size_t p = 0; p < m0.load_phases.size(); ++p) {
    EXPECT_EQ(m0.load_phases[p].multiplier, m3.load_phases[p].multiplier);
  }
  // Different region: the sampled curve is phase-shifted (equal-neighbor
  // merging makes the phase lists themselves differ in shape, so compare
  // the multiplier function, not the list).
  ASSERT_FALSE(m1.load_phases.empty());
  bool any_differs = false;
  for (SimTime t = 0; t < duration && !any_differs; t += Milliseconds(250)) {
    size_t h0 = 0, h1 = 0;
    any_differs = workload::LoadMultiplierAt(m0.load_phases, t, h0) !=
                  workload::LoadMultiplierAt(m1.load_phases, t, h1);
  }
  EXPECT_TRUE(any_differs);
  // The curve actually swings between trough and peak.
  double lo = 1e9, hi = 0;
  for (const workload::LoadPhase& p : m0.load_phases) {
    lo = std::min(lo, p.multiplier);
    hi = std::max(hi, p.multiplier);
  }
  EXPECT_LT(lo, 0.8);
  EXPECT_GT(hi, 1.2);
}

TEST(ScenarioPlanning, FlashCrowdHitsOnlyTheTargetRegion) {
  ScenarioConfig config = ScenarioByName("flash-crowd");
  SimTime duration = Seconds(4);
  Rng rng_a(7), rng_b(7);
  MachineScenario hit = PlanMachineScenario(
      config, /*machine_index=*/config.flash.region, 12, duration, rng_a);
  MachineScenario miss = PlanMachineScenario(
      config, /*machine_index=*/config.flash.region + 1, 12, duration, rng_b);

  double hit_max = 0, miss_max = 0;
  for (const workload::LoadPhase& p : hit.load_phases) {
    hit_max = std::max(hit_max, p.multiplier);
  }
  for (const workload::LoadPhase& p : miss.load_phases) {
    miss_max = std::max(miss_max, p.multiplier);
  }
  EXPECT_GE(hit_max, config.flash.multiplier * 0.9);
  EXPECT_LT(miss_max, config.flash.multiplier * 0.9);
}

TEST(ScenarioPlanning, DisabledScenarioDrawsNoRandomness) {
  // A disabled scenario must consume nothing from the RNG stream: the
  // next draw after planning equals the next draw without planning.
  ScenarioConfig config;  // enabled = false
  Rng planned(123), fresh(123);
  MachineScenario scenario =
      PlanMachineScenario(config, 0, 8, Seconds(2), planned);
  EXPECT_TRUE(scenario.load_phases.empty());
  EXPECT_TRUE(scenario.deploy_restarts.empty());
  EXPECT_FALSE(scenario.antagonist);
  EXPECT_EQ(planned.Next(), fresh.Next());
}

TEST(ScenarioRun, ZeroLoadAntagonistLeavesVictimsBitIdentical) {
  // The isolation control: an antagonist pinned at load 0 exists on the
  // machine but never issues a request, so every victim's results must be
  // byte-equal to the scenario-free run (CPU partition, seeds, and arena
  // slots are assigned for victims before the antagonist is appended).
  FleetConfig with = SmallScenarioFleet("antagonist");
  with.scenario.antagonist.probability = 1.0;
  with.scenario.antagonist.load = 0.0;
  FleetConfig without = SmallScenarioFleet("antagonist");
  without.scenario.enabled = false;

  tcmalloc::AllocatorConfig allocator;
  Fleet fa(with, allocator, 2024);
  fa.Run(2);
  Fleet fb(without, allocator, 2024);
  fb.Run(2);

  std::vector<const FleetObservation*> victims;
  int antagonists = 0;
  for (const FleetObservation& obs : fa.observations()) {
    if (obs.binary_rank == kAntagonistRank) {
      ++antagonists;
      EXPECT_EQ(obs.result.driver.requests, 0u);
    } else {
      victims.push_back(&obs);
    }
  }
  EXPECT_EQ(antagonists, with.num_machines);  // probability 1.0
  ASSERT_EQ(victims.size(), fb.observations().size());
  for (size_t i = 0; i < victims.size(); ++i) {
    SCOPED_TRACE(i);
    const ProcessResult& a = victims[i]->result;
    const ProcessResult& b = fb.observations()[i].result;
    EXPECT_EQ(a.driver.requests, b.driver.requests);
    EXPECT_EQ(a.driver.cpu_ns, b.driver.cpu_ns);
    EXPECT_EQ(a.driver.malloc_ns, b.driver.malloc_ns);
    EXPECT_EQ(a.avg_heap_bytes, b.avg_heap_bytes);
    EXPECT_EQ(a.telemetry, b.telemetry);
  }
}

TEST(ScenarioRun, DeployWaveIsThreadCountInvariant) {
  // Deploy restarts retire and respawn processes mid-run; the result
  // stream (retired instances included) must stay bit-identical for any
  // worker-thread count.
  FleetConfig config = SmallScenarioFleet("deploy-wave");
  tcmalloc::AllocatorConfig allocator;
  Fleet sequential(config, allocator, 31337);
  sequential.Run(1);
  Fleet parallel(config, allocator, 31337);
  parallel.Run(8);

  const auto& a = sequential.observations();
  const auto& b = parallel.observations();
  ASSERT_EQ(a.size(), b.size());
  int restarted = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a[i].result.deploy_restarted, b[i].result.deploy_restarted);
    EXPECT_EQ(a[i].result.driver.requests, b[i].result.driver.requests);
    EXPECT_EQ(a[i].result.driver.cpu_ns, b[i].result.driver.cpu_ns);
    EXPECT_EQ(a[i].result.telemetry, b[i].result.telemetry);
    if (a[i].result.deploy_restarted) ++restarted;
  }
  EXPECT_GT(restarted, 0);
  EXPECT_EQ(MergedTelemetry(a), MergedTelemetry(b));
}

TEST(ScenarioRun, StreamingEqualsBufferedUnderEveryScenario) {
  for (const std::string& name : ScenarioNames()) {
    SCOPED_TRACE(name);
    FleetConfig config = SmallScenarioFleet(name);
    config.timeseries_interval = Milliseconds(500);
    tcmalloc::AllocatorConfig allocator;

    Fleet buffered(config, allocator, 555);
    buffered.Run(4);
    Fleet streamed(config, allocator, 555);
    StreamCollector collector;
    streamed.RunStreaming(collector, 4);

    EXPECT_EQ(collector.telemetry(),
              MergedTelemetry(buffered.observations()));
    // The collector layers its fleet distribution sketches on top of the
    // merged series, so the interval stream is the equality contract.
    EXPECT_EQ(collector.timeseries().intervals(),
              MergedTimeSeries(buffered.observations()).intervals());
    uint64_t buffered_requests = 0;
    int buffered_restarts = 0, buffered_antagonists = 0;
    for (const FleetObservation& obs : buffered.observations()) {
      buffered_requests += obs.result.driver.requests;
      if (obs.result.deploy_restarted) ++buffered_restarts;
      if (obs.binary_rank == kAntagonistRank) ++buffered_antagonists;
    }
    EXPECT_EQ(collector.total_requests(), buffered_requests);
    EXPECT_EQ(collector.deploy_restarts(), buffered_restarts);
    EXPECT_EQ(collector.antagonists(), buffered_antagonists);
    if (name == "deploy-wave") {
      EXPECT_GT(collector.deploy_restarts(), 0);
    }
    if (name == "antagonist") {
      EXPECT_GT(collector.antagonists(), 0);
    }
  }
}

TEST(DeployWave, HundredRestartsKeepArenaSlotTableBounded) {
  // The tentpole's Machine fix: before slot recycling, every restart
  // consumed a fresh arena stride slot and the table grew monotonically.
  // A 100-restart wave must end with the high-water mark still at the
  // co-location count, every slot back in circulation, and every
  // process-instance generation accounted for.
  workload::WorkloadSpec spec;
  spec.name = "deployed";
  spec.behaviors = {
      workload::MakeBehavior(1.0, workload::SizeLognormal(256, 2.0),
                             workload::LifetimeLognormal(Microseconds(500),
                                                         3.0)),
  };
  spec.allocs_per_request = 4;
  spec.request_work_ns = 2000;
  spec.request_interval_ns = Microseconds(20);
  spec.min_threads = 1;
  spec.max_threads = 2;

  DeploySchedule deploys;
  deploys.restart_seed = 77;
  const int kRestarts = 100;
  for (int i = 1; i <= kRestarts; ++i) {
    deploys.restart_times.push_back(Milliseconds(2 * i));
  }
  tcmalloc::AllocatorConfig config;
  Machine machine(hw::PlatformSpecFor(hw::PlatformGeneration::kGenC),
                  {spec, spec}, config, 9, /*pressure_events=*/{},
                  /*trace_events_per_process=*/0, /*faults=*/{},
                  /*selfprof_interval=*/0, /*timeseries_interval=*/0,
                  deploys);
  machine.Run(Milliseconds(2 * (kRestarts + 2)), /*max_requests=*/1 << 30);

  // Bounded: two workloads -> two slots ever created, period.
  EXPECT_EQ(machine.arena_slots_high_water(), 2);
  EXPECT_EQ(machine.deploy_restarts(), 2 * kRestarts);
  // 100 waves x 2 retired instances + 2 survivors.
  EXPECT_EQ(machine.results().size(),
            static_cast<size_t>(2 * kRestarts + 2));
  int survivors = 0;
  for (const ProcessResult& r : machine.results()) {
    if (!r.deploy_restarted) ++survivors;
  }
  EXPECT_EQ(survivors, 2);
}

TEST(Scenario, NamesRoundTrip) {
  ASSERT_EQ(ScenarioNames().size(), 4u);
  for (const std::string& name : ScenarioNames()) {
    ScenarioConfig config = ScenarioByName(name);
    EXPECT_TRUE(config.enabled) << name;
  }
  EXPECT_TRUE(ScenarioByName("diurnal").diurnal.enabled);
  EXPECT_TRUE(ScenarioByName("flash-crowd").flash.enabled);
  EXPECT_TRUE(ScenarioByName("deploy-wave").deploy.enabled);
  EXPECT_TRUE(ScenarioByName("antagonist").antagonist.enabled);
}

}  // namespace
}  // namespace wsc::fleet
