// Tests for the machine model (co-located processes).

#include "fleet/machine.h"

#include <gtest/gtest.h>

namespace wsc::fleet {
namespace {

workload::WorkloadSpec FastSpec(const char* name) {
  workload::WorkloadSpec spec;
  spec.name = name;
  spec.behaviors = {
      workload::MakeBehavior(1.0, workload::SizeLognormal(256, 2.0),
                             workload::LifetimeLognormal(Microseconds(500),
                                                         3.0)),
  };
  spec.allocs_per_request = 4;
  spec.request_work_ns = 2000;
  spec.request_interval_ns = Microseconds(20);
  spec.min_threads = 1;
  spec.max_threads = 4;
  return spec;
}

TEST(Machine, RunsSingleProcessToCompletion) {
  tcmalloc::AllocatorConfig config;
  Machine machine(hw::PlatformSpecFor(hw::PlatformGeneration::kGenC),
                  {FastSpec("solo")}, config, 1);
  machine.Run(Seconds(1), 5000);
  ASSERT_EQ(machine.results().size(), 1u);
  const ProcessResult& r = machine.results()[0];
  EXPECT_EQ(r.workload_name, "solo");
  EXPECT_GT(r.driver.requests, 0u);
  EXPECT_GT(r.avg_heap_bytes, 0.0);
  EXPECT_GT(r.driver.Throughput(), 0.0);
}

TEST(Machine, CoLocatedProcessesShareTimeline) {
  tcmalloc::AllocatorConfig config;
  Machine machine(hw::PlatformSpecFor(hw::PlatformGeneration::kGenC),
                  {FastSpec("a"), FastSpec("b"), FastSpec("c")}, config, 2);
  machine.Run(Seconds(1), 3000);
  ASSERT_EQ(machine.results().size(), 3u);
  // All processes made progress (next-event interleaving is fair).
  for (const ProcessResult& r : machine.results()) {
    EXPECT_GT(r.driver.requests, 1000u) << r.workload_name;
  }
  // Processes have separate allocators with disjoint arenas.
  EXPECT_NE(&machine.allocator(0), &machine.allocator(1));
  EXPECT_NE(machine.allocator(0).config().arena_base,
            machine.allocator(1).config().arena_base);
}

TEST(Machine, RequestCapBoundsRun) {
  tcmalloc::AllocatorConfig config;
  Machine machine(hw::PlatformSpecFor(hw::PlatformGeneration::kGenA),
                  {FastSpec("capped")}, config, 3);
  machine.Run(Hours(10), 2000);
  EXPECT_EQ(machine.results()[0].driver.requests, 2000u);
}

TEST(Machine, NucaDomainsPropagateToAllocatorConfig) {
  tcmalloc::AllocatorConfig config =
      tcmalloc::AllocatorConfig::Builder().WithNucaTransferCache().Build();
  hw::PlatformSpec platform = hw::PlatformSpecFor(hw::PlatformGeneration::kGenE);
  Machine machine(platform, {FastSpec("nuca")}, config, 4);
  EXPECT_EQ(machine.allocator(0).config().num_llc_domains,
            platform.num_domains());
  machine.Run(Milliseconds(100), 500);
  SUCCEED();
}

TEST(Machine, VcpusBoundedByCpuShareAndThreads) {
  tcmalloc::AllocatorConfig config;
  workload::WorkloadSpec spec = FastSpec("wide");
  spec.max_threads = 1000;  // more than any machine share
  Machine machine(hw::PlatformSpecFor(hw::PlatformGeneration::kGenA),
                  {spec, FastSpec("other")}, config, 5);
  // Each process gets half the machine's CPUs.
  hw::PlatformSpec plat = hw::PlatformSpecFor(hw::PlatformGeneration::kGenA);
  EXPECT_LE(machine.allocator(0).config().num_vcpus, plat.num_cpus() / 2);
}

TEST(Machine, ResultsCarryHardwareStats) {
  tcmalloc::AllocatorConfig config;
  Machine machine(hw::PlatformSpecFor(hw::PlatformGeneration::kGenC),
                  {FastSpec("hw")}, config, 6);
  machine.Run(Seconds(1), 4000);
  const ProcessResult& r = machine.results()[0];
  EXPECT_GT(r.tlb.accesses, 0u);
  EXPECT_GT(r.llc.accesses, 0u);
  EXPECT_GE(r.hugepage_coverage, 0.0);
  EXPECT_LE(r.hugepage_coverage, 1.0);
  EXPECT_GT(r.ghz, 0.0);
}

}  // namespace
}  // namespace wsc::fleet
