#!/usr/bin/env bash
# LD_PRELOAD interposition smoke test.
#
#   interposition_smoke.sh <libwscmalloc.so> <forkexec_stress-binary>
#
# Proves the shim survives contact with binaries it was never built
# against: /bin/ls (glibc program with locale/stdio heap traffic before
# main), a fork/exec storm from a multi-threaded allocator-hammering
# process, and a shell pipeline (multiple exec'd images, each re-running
# the shim bootstrap). A hung child is the classic fork-deadlock failure
# mode, so everything runs under `timeout`.

set -u

SHIM="${1:?usage: interposition_smoke.sh <libwscmalloc.so> <stress-bin>}"
STRESS="${2:?usage: interposition_smoke.sh <libwscmalloc.so> <stress-bin>}"

if [ ! -f "$SHIM" ]; then
  echo "interposition_smoke: missing shim $SHIM" >&2
  exit 1
fi

failures=0

run() {
  local name="$1"; shift
  if timeout 120 env LD_PRELOAD="$SHIM" "$@" >/dev/null 2>&1; then
    echo "interposition_smoke: $name OK"
  else
    echo "interposition_smoke: $name FAILED: LD_PRELOAD=$SHIM $*" >&2
    failures=$((failures + 1))
  fi
}

# A stock glibc binary must run unmodified under the shim.
run "ls" /bin/ls -l /
# Interposition must actually be in effect, not silently skipped.
run "require-shim" "$STRESS" --require-shim --children=1
# fork/exec from a multi-threaded process, children malloc then exec.
run "forkexec" "$STRESS" --require-shim --children=16
# Pipelines: several short-lived images, each bootstrapping the shim.
run "pipeline" /bin/sh -c 'ls / | sort | head -3 > /dev/null'

# The stress binary must also pass WITHOUT the shim (same code path on
# glibc), or the comparison proves nothing.
if timeout 120 "$STRESS" --children=4 >/dev/null 2>&1; then
  echo "interposition_smoke: bare OK"
else
  echo "interposition_smoke: bare run FAILED" >&2
  failures=$((failures + 1))
fi

if [ "$failures" -ne 0 ]; then
  echo "interposition_smoke: FAILED ($failures)"
  exit 1
fi
echo "interposition_smoke: OK"
