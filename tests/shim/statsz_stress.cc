// Live-statsz stress for the shim's background stats thread.
//
// Run with WSC_SHIM_STATSZ_PATH + WSC_SHIM_STATSZ_INTERVAL_MS set (the
// ctest registration does) and wscmalloc linked ahead of libc, so every
// malloc here routes through the shim and the stats thread is live from
// the first allocation. Proves the observability contract end to end:
//
//   1. periodic interval samples land in the ring (scraped via the
//      wscmalloc_stats_timeseries export) and in the NDJSON file;
//   2. SIGUSR2 forces an immediate out-of-schedule dump;
//   3. fork from a multi-threaded allocator-hammering process restarts
//      the stats thread in the child (child-pid samples appear) without
//      deadlocking against the fork quiesce;
//   4. exec with the stats thread running neither hangs nor crashes;
//   5. the shared O_APPEND file ends up with lines from both pids.
//
// Exit 0 = all of the above held within generous real-time deadlines.

#include <dlfcn.h>
#include <signal.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

namespace {

using StatsTimeseriesFn = size_t (*)(char*, size_t);

std::atomic<bool> g_stop{false};

void SleepMs(int ms) {
  struct timespec ts = {ms / 1000, (ms % 1000) * 1000000L};
  nanosleep(&ts, nullptr);
}

// Keeps allocator locks hot while forks and dumps race them.
void Hammer(unsigned seed) {
  unsigned state = seed;
  std::vector<void*> live(64, nullptr);
  while (!g_stop.load(std::memory_order_relaxed)) {
    state = state * 1664525u + 1013904223u;
    const size_t slot = state % live.size();
    free(live[slot]);
    live[slot] = malloc((state >> 16) % 8192 + 1);
  }
  for (void* p : live) free(p);
}

std::string ReadRing(StatsTimeseriesFn fn) {
  std::vector<char> buf(64 * 1024);
  size_t n = fn(buf.data(), buf.size());
  return std::string(buf.data(), n);
}

// Polls the ring until `needle` appears, up to `deadline_ms`.
bool WaitForRing(StatsTimeseriesFn fn, const std::string& needle,
                 int deadline_ms) {
  for (int waited = 0; waited < deadline_ms; waited += 20) {
    if (ReadRing(fn).find(needle) != std::string::npos) return true;
    SleepMs(20);
  }
  return false;
}

int Fail(const char* what) {
  std::fprintf(stderr, "statsz_stress: FAILED: %s\n", what);
  return 1;
}

}  // namespace

int main() {
  auto is_active =
      reinterpret_cast<int (*)()>(dlsym(RTLD_DEFAULT, "wscmalloc_is_active"));
  auto ring_fn = reinterpret_cast<StatsTimeseriesFn>(
      dlsym(RTLD_DEFAULT, "wscmalloc_stats_timeseries"));
  if (is_active == nullptr || is_active() != 1) {
    return Fail("wscmalloc not interposed");
  }
  if (ring_fn == nullptr) {
    return Fail("wscmalloc_stats_timeseries not exported");
  }
  const char* path = getenv("WSC_SHIM_STATSZ_PATH");
  if (path == nullptr || *path == '\0') {
    return Fail("WSC_SHIM_STATSZ_PATH not set by the harness");
  }

  std::vector<std::thread> hammers;
  for (unsigned t = 0; t < 4; ++t) hammers.emplace_back(Hammer, t + 1);

  char pid_tag[64];
  std::snprintf(pid_tag, sizeof(pid_tag), "{\"pid\":%ld,",
                static_cast<long>(getpid()));

  int failures = 0;

  // (1) Interval samples accumulate on their own.
  if (!WaitForRing(ring_fn, "\"trigger\":\"interval\"", 5000)) {
    failures += Fail("no interval sample within 5s");
  }
  if (ReadRing(ring_fn).find(pid_tag) == std::string::npos) {
    failures += Fail("ring samples not tagged with our pid");
  }

  // (2) SIGUSR2 forces a dump well before the next interval boundary.
  raise(SIGUSR2);
  if (!WaitForRing(ring_fn, "\"trigger\":\"signal\"", 5000)) {
    failures += Fail("no signal-triggered sample within 5s of SIGUSR2");
  }

  // (3) fork storm: children sample under their own pid, then exit.
  // Half of them exec to prove the stats thread survives image
  // replacement (the new image re-bootstraps its own thread).
  for (int i = 0; i < 8; ++i) {
    pid_t pid = fork();
    if (pid < 0) {
      failures += Fail("fork");
      continue;
    }
    if (pid == 0) {
      char child_tag[64];
      std::snprintf(child_tag, sizeof(child_tag), "{\"pid\":%ld,",
                    static_cast<long>(getpid()));
      // Churn so the child's samples show live allocator traffic.
      for (int j = 0; j < 1000; ++j) free(malloc((j % 13 + 1) * 64));
      if (!WaitForRing(ring_fn, child_tag, 5000)) {
        std::fprintf(stderr, "statsz_stress: child saw no own-pid sample\n");
        _exit(1);
      }
      if (i % 2 == 0) {
        char arg0[] = "/bin/true";
        char* argv[] = {arg0, nullptr};
        execv(arg0, argv);
        _exit(1);
      }
      _exit(0);
    }
    int status = 0;
    if (waitpid(pid, &status, 0) != pid || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      failures += Fail("child failed (restart-after-fork broken?)");
    }
  }

  g_stop.store(true);
  for (auto& h : hammers) h.join();

  // (5) The shared NDJSON file has lines from this pid; children shared
  // it via O_APPEND, so it must still be line-structured JSON objects.
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) {
    failures += Fail("statsz file missing");
  } else {
    bool own_line = false;
    size_t lines = 0;
    char line[1024];
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      ++lines;
      size_t len = std::strlen(line);
      if (line[0] != '{' || len < 3 || line[len - 1] != '\n' ||
          line[len - 2] != '}') {
        failures += Fail("statsz file line is not a whole JSON object");
        break;
      }
      if (std::strncmp(line, pid_tag, std::strlen(pid_tag)) == 0) {
        own_line = true;
      }
    }
    std::fclose(f);
    if (!own_line) failures += Fail("no file line tagged with our pid");
    if (lines == 0) failures += Fail("statsz file empty");
  }

  if (failures != 0) return 1;
  std::printf("statsz_stress: OK (ring + file + SIGUSR2 + fork/exec)\n");
  return 0;
}
