// API-semantics tests for libwscmalloc.so, run with the shim linked into
// the test binary itself: the executable defines no malloc, and
// libwscmalloc precedes libc in link order, so every allocation in this
// process — including gtest's own — routes through the shim exactly as
// under LD_PRELOAD. wscmalloc_is_active() proves it.
//
// These tests pin the POSIX/glibc contract of each entry point (realloc
// grow/shrink, posix_memalign error codes, calloc overflow, zero sizes,
// usable size) rather than allocator internals, which
// tests/tcmalloc/real_memory_mode_test.cc covers.

#include <malloc.h>

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "gtest/gtest.h"

extern "C" {
int wscmalloc_is_active();
const char* wscmalloc_backend();
size_t wscmalloc_release_memory(size_t bytes);
size_t wscmalloc_stats_json(char* buf, size_t cap);
}

namespace {

TEST(ShimApi, ShimIsInterposed) {
  EXPECT_EQ(wscmalloc_is_active(), 1);
  EXPECT_STREQ(wscmalloc_backend(), "real-memory");
}

TEST(ShimApi, MallocZeroIsUniqueAndFreeable) {
  void* a = malloc(0);
  void* b = malloc(0);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  free(a);
  free(b);
}

TEST(ShimApi, UsableSizeCoversRequest) {
  for (size_t size : {1ul, 7ul, 16ul, 57ul, 1024ul, 300000ul, 1048576ul}) {
    void* p = malloc(size);
    ASSERT_NE(p, nullptr) << size;
    EXPECT_GE(malloc_usable_size(p), size);
    // The full usable extent must actually be writable.
    std::memset(p, 0xAB, malloc_usable_size(p));
    free(p);
  }
  EXPECT_EQ(malloc_usable_size(nullptr), 0u);
}

TEST(ShimApi, CallocZeroesAndRejectsOverflow) {
  constexpr size_t kN = 1000;
  unsigned char* p = static_cast<unsigned char*>(calloc(kN, 7));
  ASSERT_NE(p, nullptr);
  for (size_t i = 0; i < kN * 7; ++i) ASSERT_EQ(p[i], 0) << i;
  free(p);

  errno = 0;
  volatile size_t overflow_n = SIZE_MAX / 2;  // opaque to -Walloc-size
  EXPECT_EQ(calloc(overflow_n, 3), nullptr);
  EXPECT_EQ(errno, ENOMEM);
}

TEST(ShimApi, ReallocGrowsPreservingContents) {
  char* p = static_cast<char*>(malloc(64));
  ASSERT_NE(p, nullptr);
  std::memset(p, 0x5C, 64);
  // Grow through several classes and into the large path.
  for (size_t size : {128ul, 4096ul, 300000ul}) {
    p = static_cast<char*>(realloc(p, size));
    ASSERT_NE(p, nullptr) << size;
    for (size_t i = 0; i < 64; ++i) ASSERT_EQ(p[i], 0x5C) << size << ":" << i;
    EXPECT_GE(malloc_usable_size(p), size);
  }
  free(p);
}

TEST(ShimApi, ReallocShrinkInPlaceWhenClose) {
  char* p = static_cast<char*>(malloc(1024));
  ASSERT_NE(p, nullptr);
  std::memset(p, 0x11, 1024);
  const size_t usable = malloc_usable_size(p);
  // A shrink that still fits the same class must not move the block.
  char* q = static_cast<char*>(realloc(p, usable - 8));
  EXPECT_EQ(q, p);
  free(q);
}

TEST(ShimApi, ReallocNullAndZeroEdges) {
  // realloc(nullptr, n) == malloc(n).
  void* p = realloc(nullptr, 48);
  ASSERT_NE(p, nullptr);
  // realloc(p, 0) frees and returns nullptr (glibc behaviour).
  EXPECT_EQ(realloc(p, 0), nullptr);
}

TEST(ShimApi, ReallocArrayRejectsOverflow) {
  errno = 0;
  volatile size_t overflow_n = SIZE_MAX / 4;  // opaque to -Walloc-size
  EXPECT_EQ(reallocarray(nullptr, overflow_n, 8), nullptr);
  EXPECT_EQ(errno, ENOMEM);
  void* p = reallocarray(nullptr, 16, 32);
  ASSERT_NE(p, nullptr);
  EXPECT_GE(malloc_usable_size(p), 512u);
  free(p);
}

TEST(ShimApi, PosixMemalignSweep) {
  for (size_t align = sizeof(void*); align <= (size_t{4} << 20); align *= 2) {
    for (size_t size : {1ul, 64ul, 4096ul, 300000ul}) {
      void* p = nullptr;
      ASSERT_EQ(posix_memalign(&p, align, size), 0)
          << "align=" << align << " size=" << size;
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u)
          << "align=" << align << " size=" << size;
      std::memset(p, 0x77, size);
      free(p);
    }
  }
}

TEST(ShimApi, PosixMemalignErrorCodes) {
  void* p = reinterpret_cast<void*>(0x1);
  // Non-power-of-two and sub-pointer alignments are EINVAL, p untouched.
  EXPECT_EQ(posix_memalign(&p, 3, 64), EINVAL);
  EXPECT_EQ(posix_memalign(&p, sizeof(void*) / 2, 64), EINVAL);
  EXPECT_EQ(p, reinterpret_cast<void*>(0x1));
}

TEST(ShimApi, AlignedAllocAndValloc) {
  void* p = aligned_alloc(256, 512);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 256, 0u);
  free(p);

  const size_t page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  p = valloc(100);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % page, 0u);
  free(p);

  // pvalloc rounds the size up to a whole page.
  p = pvalloc(1);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % page, 0u);
  EXPECT_GE(malloc_usable_size(p), page);
  free(p);
}

TEST(ShimApi, AbsurdSizeFailsWithEnomem) {
  errno = 0;
  EXPECT_EQ(malloc(size_t{1} << 60), nullptr);
  EXPECT_EQ(errno, ENOMEM);
  // The allocator must remain serviceable after an OOM refusal.
  void* p = malloc(64);
  ASSERT_NE(p, nullptr);
  free(p);
}

TEST(ShimApi, StatsJsonIsWellFormedAndBalances) {
  char buf[2048];
  const size_t n = wscmalloc_stats_json(buf, sizeof(buf));
  ASSERT_GT(n, 0u);
  ASSERT_LT(n, sizeof(buf));
  EXPECT_EQ(buf[0], '{');
  EXPECT_EQ(buf[n - 1], '}');
  EXPECT_NE(std::strstr(buf, "\"active\":true"), nullptr) << buf;
  EXPECT_NE(std::strstr(buf, "\"backend\":\"real-memory\""), nullptr) << buf;
  EXPECT_NE(std::strstr(buf, "\"allocations\":"), nullptr) << buf;
}

TEST(ShimApi, ReleaseMemoryReturnsConfirmedBytes) {
  // Build a releasable large population, free it, then release: the
  // confirmed count must be page-granular and not exceed what was freed.
  constexpr size_t kBlock = 1 << 20;
  constexpr int kBlocks = 32;
  void* blocks[kBlocks];
  for (int i = 0; i < kBlocks; ++i) {
    blocks[i] = malloc(kBlock);
    ASSERT_NE(blocks[i], nullptr);
    std::memset(blocks[i], 0xEF, kBlock);
  }
  for (int i = 0; i < kBlocks; ++i) free(blocks[i]);
  const size_t released = wscmalloc_release_memory(~size_t{0});
  EXPECT_GT(released, 0u);
  EXPECT_EQ(released % 4096, 0u);
  // A second sweep with nothing new freed confirms nothing twice.
  EXPECT_EQ(wscmalloc_release_memory(~size_t{0}), 0u);
}

}  // namespace
