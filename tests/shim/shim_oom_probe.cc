// OOM-behaviour probe, run by ctest as:
//
//   WSC_SHIM_RESERVE_MB=1024 ./shim_oom_probe
//
// The env var caps the shim's virtual reservation (floored at
// RealMemoryBacking::kMinReserveBytes = 1 GiB), so exhausting it needs
// ~1 GiB of *untouched* allocations — no physical memory, the pages are
// never faulted. The probe asserts malloc starts returning nullptr with
// errno == ENOMEM instead of crashing, and that free/realloc on the
// already-granted blocks still work afterwards.
//
// Deliberately not a gtest: gtest's own heap traffic would sit between
// the exhaustion loop and the assertions. Exit 0 = pass.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

extern "C" int wscmalloc_is_active();

int main() {
  if (wscmalloc_is_active() != 1) {
    std::fprintf(stderr, "shim_oom_probe: shim not active\n");
    return 1;
  }

  constexpr size_t kBlock = 8 << 20;  // 8 MiB, large-path allocations
  constexpr int kMaxBlocks = 4096;    // 32 GiB worth — far past any cap
  static void* blocks[kMaxBlocks];
  int granted = 0;
  errno = 0;
  for (; granted < kMaxBlocks; ++granted) {
    void* p = malloc(kBlock);
    if (p == nullptr) break;
    blocks[granted] = p;
  }
  if (granted == kMaxBlocks) {
    std::fprintf(stderr,
                 "shim_oom_probe: reservation never exhausted (is "
                 "WSC_SHIM_RESERVE_MB set?)\n");
    return 1;
  }
  if (errno != ENOMEM) {
    std::fprintf(stderr, "shim_oom_probe: errno == %d after OOM, want %d\n",
                 errno, ENOMEM);
    return 1;
  }
  // ~1 GiB reservation / 8 MiB blocks: expect on the order of 128 grants.
  if (granted < 64 || granted > 1024) {
    std::fprintf(stderr,
                 "shim_oom_probe: %d blocks granted before OOM, expected "
                 "roughly 128 for a 1 GiB reservation\n",
                 granted);
    return 1;
  }

  // Granted memory must stay usable after the OOM refusal...
  std::memset(blocks[0], 0xAA, kBlock);
  // ...and freeing must return capacity that malloc can hand out again.
  for (int i = 0; i < granted; ++i) free(blocks[i]);
  void* again = malloc(kBlock);
  if (again == nullptr) {
    std::fprintf(stderr,
                 "shim_oom_probe: malloc still failing after frees\n");
    return 1;
  }
  std::memset(again, 0xBB, kBlock);
  free(again);

  std::printf("shim_oom_probe: OK (%d x 8 MiB granted, then ENOMEM)\n",
              granted);
  return 0;
}
