#!/usr/bin/env python3
"""Virtual-mode bit-identity guard for the backend redesign.

The MemoryBacking seam must leave the simulated (virtual-arena) mode
untouched: fig03 with the pinned fleet shape must keep producing the
golden sim_requests for ANY --threads value, byte-identical BENCH_JSON
apart from the thread count and wall-clock fields. This is the same
contract tools/check_determinism.sh enforces in CI; this test re-checks
it next to the shim tests so a real-memory regression that leaks into the
shared allocator paths fails the shim suite too, with the golden value
pinned explicitly.

Usage: check_bit_identity.py <fig03_fleet_cdf-binary>
"""

import json
import re
import subprocess
import sys

FLAGS = ["--machines=2", "--duration=1", "--max-requests=300"]
GOLDEN_SIM_REQUESTS = 1200
THREADS = [1, 4]

VOLATILE = re.compile(
    r'"(threads)":[0-9]+|"(wall_seconds|sim_requests_per_sec)":[0-9.eE+-]+'
)


def bench_json_lines(bench, threads):
    out = subprocess.run(
        [bench] + FLAGS + [f"--threads={threads}"],
        capture_output=True, text=True, timeout=600,
    )
    if out.returncode != 0:
        sys.exit(f"FAIL: {bench} --threads={threads} exited "
                 f"{out.returncode}\n{out.stderr[-2000:]}")
    lines = [l for l in out.stdout.splitlines() if l.startswith("BENCH_JSON")]
    if not lines:
        sys.exit(f"FAIL: no BENCH_JSON lines from --threads={threads}")
    return lines


def main():
    if len(sys.argv) != 2:
        sys.exit(__doc__)
    bench = sys.argv[1]

    runs = {t: bench_json_lines(bench, t) for t in THREADS}

    # Golden pin: the simulated fleet shape serves exactly 1200 requests.
    for t, lines in runs.items():
        payload = json.loads(lines[0][len("BENCH_JSON "):])
        got = payload.get("sim_requests")
        if got != GOLDEN_SIM_REQUESTS:
            sys.exit(f"FAIL: --threads={t} sim_requests={got}, "
                     f"golden={GOLDEN_SIM_REQUESTS}")

    # Bit identity across thread counts, masking only the legitimately
    # thread-dependent fields.
    normalized = {
        t: [VOLATILE.sub("_", l) for l in lines] for t, lines in runs.items()
    }
    base_t = THREADS[0]
    for t in THREADS[1:]:
        if normalized[t] != normalized[base_t]:
            for a, b in zip(normalized[base_t], normalized[t]):
                if a != b:
                    sys.exit(f"FAIL: BENCH_JSON differs between "
                             f"--threads={base_t} and --threads={t}:\n"
                             f"  {a}\n  {b}")
            sys.exit(f"FAIL: BENCH_JSON line count differs between "
                     f"--threads={base_t} and --threads={t}")

    print(f"check_bit_identity: OK (sim_requests={GOLDEN_SIM_REQUESTS} "
          f"for --threads={THREADS})")


if __name__ == "__main__":
    main()
