// fork/exec stress for the LD_PRELOAD shim (run by interposition_smoke.sh
// both bare and under LD_PRELOAD=libwscmalloc.so).
//
// The hostile sequence for a preloaded allocator is fork() from a
// multi-threaded process: POSIX only guarantees the child can run
// async-signal-safe code, so if another thread held an allocator lock at
// fork time, the child's first malloc deadlocks. The shim handles this
// with pthread_atfork handlers that quiesce every lock; this binary
// proves it by forking children from a process with allocator-hammering
// threads, then having each child malloc/free and either _exit or
// execve(/bin/true) — exec also re-runs the whole preload bootstrap in
// the new image, since LD_PRELOAD survives exec.
//
// Flags:
//   --require-shim   fail unless wscmalloc is interposed (used by the
//                    smoke script to prove LD_PRELOAD took effect)
//   --children=N     forks to perform (default 16)
//
// Exit 0 = every child exited 0 and no deadlock occurred (the smoke
// script adds a timeout as the deadlock detector).

#include <dlfcn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

namespace {

std::atomic<bool> g_stop{false};

// Allocator churn designed to hold allocator locks often: large
// allocations take the page-heap lock, small ones the shard locks.
void Hammer(unsigned seed) {
  unsigned state = seed;
  std::vector<void*> live(64, nullptr);
  while (!g_stop.load(std::memory_order_relaxed)) {
    state = state * 1664525u + 1013904223u;
    const size_t slot = state % live.size();
    free(live[slot]);
    const size_t size = (state >> 8) % 2 ? (state >> 16) % 4096 + 1
                                         : size_t{512} * 1024;
    live[slot] = malloc(size);
    if (live[slot] != nullptr) {
      std::memset(live[slot], 1, size < 16 ? size : 16);
    }
  }
  for (void* p : live) free(p);
}

int ChildBody(bool do_exec) {
  // First mallocs after fork — the deadlock probe.
  for (int i = 0; i < 100; ++i) {
    void* p = malloc((i % 7 + 1) * 100);
    if (p == nullptr) return 1;
    std::memset(p, 2, 16);
    free(p);
  }
  void* big = malloc(size_t{1} << 20);
  if (big == nullptr) return 1;
  free(big);
  if (do_exec) {
    char arg0[] = "/bin/true";
    char* argv[] = {arg0, nullptr};
    execv(arg0, argv);
    return 1;  // exec failed
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool require_shim = false;
  int children = 16;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--require-shim") == 0) {
      require_shim = true;
    } else if (std::strncmp(argv[i], "--children=", 11) == 0) {
      children = std::atoi(argv[i] + 11);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  auto is_active =
      reinterpret_cast<int (*)()>(dlsym(RTLD_DEFAULT, "wscmalloc_is_active"));
  const bool shim = is_active != nullptr && is_active() == 1;
  if (require_shim && !shim) {
    std::fprintf(stderr, "forkexec_stress: wscmalloc not interposed\n");
    return 1;
  }

  std::vector<std::thread> hammers;
  for (unsigned t = 0; t < 4; ++t) hammers.emplace_back(Hammer, t + 1);

  int failures = 0;
  for (int i = 0; i < children; ++i) {
    const pid_t pid = fork();
    if (pid < 0) {
      std::perror("fork");
      failures++;
      continue;
    }
    if (pid == 0) _exit(ChildBody(/*do_exec=*/i % 2 == 0));
    int status = 0;
    if (waitpid(pid, &status, 0) != pid ||
        !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "forkexec_stress: child %d failed (status %d)\n",
                   i, status);
      failures++;
    }
  }

  g_stop.store(true);
  for (auto& h : hammers) h.join();

  if (failures != 0) return 1;
  std::printf("forkexec_stress: OK (%d children, shim=%s)\n", children,
              shim ? "wscmalloc" : "none");
  return 0;
}
