// Tracing must be an observer: attaching a recorder cannot perturb the
// simulation, and the merged trace/profile of a fleet run must be
// bit-identical for every worker-thread count (the repo-wide determinism
// contract, extended to the observability exports).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fleet/fleet.h"
#include "fleet/machine.h"
#include "hw/topology.h"
#include "tcmalloc/config.h"
#include "trace/chrome_trace.h"
#include "workload/profiles.h"

namespace wsc {
namespace {

fleet::FleetConfig SmallFleet(size_t trace_events) {
  fleet::FleetConfig config;
  config.num_machines = 4;
  config.num_binaries = 8;
  config.duration = Seconds(2);
  config.max_requests_per_process = 1200;
  config.trace_events_per_process = trace_events;
  return config;
}

TEST(TraceDeterminismTest, AttachingARecorderDoesNotPerturbTheRun) {
  fleet::Fleet traced(SmallFleet(/*trace_events=*/512),
                      tcmalloc::AllocatorConfig(), /*seed=*/7);
  fleet::Fleet untraced(SmallFleet(/*trace_events=*/0),
                        tcmalloc::AllocatorConfig(), /*seed=*/7);
  traced.Run(1);
  untraced.Run(1);

  ASSERT_EQ(traced.observations().size(), untraced.observations().size());
  for (size_t i = 0; i < traced.observations().size(); ++i) {
    const fleet::ProcessResult& a = traced.observations()[i].result;
    const fleet::ProcessResult& b = untraced.observations()[i].result;
    // Every simulation outcome is identical; only the drained ring
    // differs (present vs empty).
    EXPECT_EQ(a.driver.requests, b.driver.requests);
    EXPECT_EQ(a.driver.allocations, b.driver.allocations);
    EXPECT_EQ(a.driver.malloc_ns, b.driver.malloc_ns);
    EXPECT_EQ(a.heap.HeapBytes(), b.heap.HeapBytes());
    EXPECT_EQ(a.heap.live_bytes, b.heap.live_bytes);
    EXPECT_EQ(a.avg_heap_bytes, b.avg_heap_bytes);
    EXPECT_EQ(a.heap_profile, b.heap_profile);
    EXPECT_GT(a.trace.total_emitted, 0u);
    EXPECT_EQ(b.trace.total_emitted, 0u);
  }
}

TEST(TraceDeterminismTest, MergedTraceIsBitIdenticalAcrossThreadCounts) {
  fleet::Fleet one(SmallFleet(/*trace_events=*/1024),
                   tcmalloc::AllocatorConfig(), /*seed=*/11);
  fleet::Fleet eight(SmallFleet(/*trace_events=*/1024),
                     tcmalloc::AllocatorConfig(), /*seed=*/11);
  one.Run(1);
  eight.Run(8);

  std::string trace_one =
      trace::RenderChromeTrace(fleet::MergedTrace(one.observations()));
  std::string trace_eight =
      trace::RenderChromeTrace(fleet::MergedTrace(eight.observations()));
  EXPECT_EQ(trace_one, trace_eight);
  EXPECT_NE(trace_one.find("\"ph\":\"i\""), std::string::npos);
}

TEST(TraceDeterminismTest, MergedHeapProfileIsIdenticalAcrossThreadCounts) {
  fleet::Fleet one(SmallFleet(/*trace_events=*/0),
                   tcmalloc::AllocatorConfig(), /*seed=*/13);
  fleet::Fleet eight(SmallFleet(/*trace_events=*/0),
                     tcmalloc::AllocatorConfig(), /*seed=*/13);
  one.Run(1);
  eight.Run(8);

  trace::HeapProfile profile_one =
      fleet::MergedHeapProfile(one.observations());
  trace::HeapProfile profile_eight =
      fleet::MergedHeapProfile(eight.observations());
  EXPECT_EQ(profile_one, profile_eight);
  EXPECT_GT(profile_one.total_live_bytes, 0u);
  EXPECT_EQ(RenderHeapProfileJson(profile_one),
            RenderHeapProfileJson(profile_eight));
}

TEST(TraceDeterminismTest, TraceCoversEveryGuaranteedTier) {
  fleet::Fleet f(SmallFleet(/*trace_events=*/4096),
                 tcmalloc::AllocatorConfig(), /*seed=*/17);
  f.Run(2);
  std::string json =
      trace::RenderChromeTrace(fleet::MergedTrace(f.observations()));
  for (const char* tier :
       {"cpu_cache", "transfer_cache", "central_free_list", "page_heap",
        "huge_page_filler"}) {
    EXPECT_NE(json.find("\"cat\":\"" + std::string(tier) + "\""),
              std::string::npos)
        << "missing tier " << tier;
  }
}

}  // namespace
}  // namespace wsc
