#include <gtest/gtest.h>

#include <string>

#include "fleet/machine.h"
#include "hw/topology.h"
#include "tcmalloc/config.h"
#include "tcmalloc/malloc_extension.h"
#include "trace/heap_profile.h"
#include "workload/profiles.h"

namespace wsc {
namespace {

fleet::Machine RunMachine(uint64_t seed) {
  fleet::Machine machine(hw::PlatformSpecFor(hw::PlatformGeneration::kGenD),
                         {workload::TopFiveProfiles()[0]},
                         tcmalloc::AllocatorConfig(), seed);
  machine.Run(Seconds(3), /*max_requests=*/4000);
  return machine;
}

TEST(CallsiteIdTest, IsDeterministicNonZeroAndCollisionFreeHere) {
  constexpr uint64_t id = trace::CallsiteId("search/behavior0");
  static_assert(id != 0);
  EXPECT_EQ(id, trace::CallsiteId("search/behavior0"));
  EXPECT_NE(trace::CallsiteId("search/behavior0"),
            trace::CallsiteId("search/behavior1"));
  EXPECT_NE(trace::CallsiteId("search/startup"),
            trace::CallsiteId("ads/startup"));
}

TEST(HeapProfilerTest, AttributesLiveHeapToWorkloadCallsites) {
  fleet::Machine machine = RunMachine(/*seed=*/42);
  const trace::HeapProfile& profile = machine.results()[0].heap_profile;

  ASSERT_GT(profile.total_live_bytes, 0u);
  // The driver tags every Allocate and Free with its behavior callsite,
  // so attribution is exact — comfortably above the 95% acceptance floor.
  EXPECT_EQ(profile.attributed_live_bytes, profile.total_live_bytes);
  EXPECT_GE(static_cast<double>(profile.attributed_live_bytes),
            0.95 * static_cast<double>(profile.total_live_bytes));
  EXPECT_GT(profile.samples_taken, 0u);

  // Per-behavior and startup callsites are registered with names.
  bool saw_behavior = false, saw_startup = false;
  for (const auto& [id, row] : profile.callsites) {
    EXPECT_NE(id, 0u);
    EXPECT_FALSE(row.name.empty());
    EXPECT_LE(row.live_bytes, row.peak_live_bytes);
    EXPECT_LE(row.live_bytes, row.cum_bytes);
    if (row.name.find("/behavior") != std::string::npos) saw_behavior = true;
    if (row.name.find("/startup") != std::string::npos) saw_startup = true;
  }
  EXPECT_TRUE(saw_behavior);
  EXPECT_TRUE(saw_startup);
}

TEST(HeapProfilerTest, SampledDimensionsArePopulated) {
  fleet::Machine machine = RunMachine(/*seed=*/43);
  const trace::HeapProfile& profile = machine.results()[0].heap_profile;

  uint64_t samples = 0, size_lifetime_samples = 0;
  for (const auto& [id, row] : profile.callsites) samples += row.samples;
  for (const auto& row : profile.size_lifetime) {
    size_lifetime_samples += row.samples;
  }
  EXPECT_EQ(samples, profile.samples_taken);
  // Finalized (freed) samples populate the Fig. 8-style size x lifetime
  // table; a multi-second run frees plenty of short-lived objects.
  EXPECT_GT(size_lifetime_samples, 0u);
}

TEST(HeapProfilerTest, MallocExtensionExposesProfileAndSampler) {
  fleet::Machine machine = RunMachine(/*seed=*/44);
  tcmalloc::MallocExtension extension(&machine.allocator(0));

  trace::HeapProfile profile = extension.GetHeapProfileData();
  EXPECT_EQ(profile, machine.results()[0].heap_profile);
  EXPECT_EQ(extension.GetSamplesTaken(), profile.samples_taken);
  EXPECT_GT(extension.GetLifetimeProfile().all_lifetimes.count(), 0u);

  std::string text = extension.GetHeapProfile();
  EXPECT_NE(text.find("Heap profile:"), std::string::npos);
  EXPECT_NE(text.find("100.0% attributed"), std::string::npos);
}

TEST(HeapProfilerTest, RendersTextAndJsonDeterministically) {
  fleet::Machine machine = RunMachine(/*seed=*/45);
  const trace::HeapProfile& profile = machine.results()[0].heap_profile;

  std::string text = RenderHeapProfileText(profile);
  EXPECT_EQ(text, RenderHeapProfileText(profile));
  EXPECT_NE(text.find("Size x lifetime"), std::string::npos);

  std::string json = RenderHeapProfileJson(profile);
  EXPECT_EQ(json.rfind("{\"schema_version\":1,\"kind\":\"heap_profile\"", 0),
            0u);
  EXPECT_NE(json.find("\"callsites\":["), std::string::npos);
  EXPECT_NE(json.find("\"size_lifetime\":["), std::string::npos);
}

TEST(HeapProfilerTest, ProfilesMergeBySummingRows) {
  fleet::Machine a = RunMachine(/*seed=*/46);
  fleet::Machine b = RunMachine(/*seed=*/47);
  const trace::HeapProfile& pa = a.results()[0].heap_profile;
  const trace::HeapProfile& pb = b.results()[0].heap_profile;

  trace::HeapProfile merged = pa;
  merged.MergeFrom(pb);
  EXPECT_EQ(merged.total_live_bytes,
            pa.total_live_bytes + pb.total_live_bytes);
  EXPECT_EQ(merged.attributed_live_bytes,
            pa.attributed_live_bytes + pb.attributed_live_bytes);
  EXPECT_EQ(merged.samples_taken, pa.samples_taken + pb.samples_taken);

  // Same workload in both machines → same callsite IDs; rows sum.
  for (const auto& [id, row] : pa.callsites) {
    auto it = merged.callsites.find(id);
    ASSERT_NE(it, merged.callsites.end());
    uint64_t other = pb.callsites.count(id) != 0
                         ? pb.callsites.at(id).live_bytes
                         : 0;
    EXPECT_EQ(it->second.live_bytes, row.live_bytes + other);
  }
}

}  // namespace
}  // namespace wsc
