#include "trace/flight_recorder.h"

#include <gtest/gtest.h>

#include "trace/trace_event.h"

namespace wsc::trace {
namespace {

TEST(FlightRecorderTest, RecordsEventsInOrder) {
  FlightRecorder rec(8);
  rec.set_now(100);
  rec.Emit(EventType::kCpuCacheMiss, 1, -1, 3, -1, 64, 0);
  rec.set_now(200);
  rec.Emit(EventType::kTransferInsert, -1, 0, 3, -1, 32, 2);

  TraceBuffer buf = rec.Drain();
  EXPECT_EQ(buf.capacity, 8u);
  EXPECT_EQ(buf.total_emitted, 2u);
  EXPECT_EQ(buf.dropped, 0u);
  ASSERT_EQ(buf.events.size(), 2u);
  EXPECT_EQ(buf.events[0].type, EventType::kCpuCacheMiss);
  EXPECT_EQ(buf.events[0].ts, 100);
  EXPECT_EQ(buf.events[0].vcpu, 1);
  EXPECT_EQ(buf.events[0].cls, 3);
  EXPECT_EQ(buf.events[0].a, 64u);
  EXPECT_EQ(buf.events[1].type, EventType::kTransferInsert);
  EXPECT_EQ(buf.events[1].ts, 200);
  EXPECT_EQ(buf.events[1].domain, 0);
  EXPECT_EQ(buf.events[1].b, 2u);
}

TEST(FlightRecorderTest, WrapsKeepingTheMostRecentEvents) {
  FlightRecorder rec(4);
  for (int i = 0; i < 10; ++i) {
    rec.set_now(i);
    rec.Emit(EventType::kCpuCacheMiss, i, -1, -1, -1,
             static_cast<uint64_t>(i), 0);
  }

  TraceBuffer buf = rec.Drain();
  EXPECT_EQ(buf.total_emitted, 10u);
  EXPECT_EQ(buf.dropped, 6u);
  ASSERT_EQ(buf.events.size(), 4u);
  // The ring holds the newest four (6..9), chronological.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(buf.events[static_cast<size_t>(i)].ts, 6 + i);
    EXPECT_EQ(buf.events[static_cast<size_t>(i)].a,
              static_cast<uint64_t>(6 + i));
  }
}

TEST(FlightRecorderTest, PerTypeTotalsIncludeDroppedEvents) {
  FlightRecorder rec(2);
  for (int i = 0; i < 5; ++i) {
    rec.Emit(EventType::kFillerPlace, -1, -1, -1, 0, 1, 1);
  }
  for (int i = 0; i < 3; ++i) {
    rec.Emit(EventType::kFillerSubrelease, -1, -1, -1, 0, 1, 1);
  }

  TraceBuffer buf = rec.Drain();
  EXPECT_EQ(buf.dropped, 6u);
  // The Fig. 6 breakdown survives wraparound: per-type totals count every
  // Emit, not just what the ring still holds.
  EXPECT_EQ(buf.emitted_by_type[static_cast<int>(EventType::kFillerPlace)],
            5u);
  EXPECT_EQ(
      buf.emitted_by_type[static_cast<int>(EventType::kFillerSubrelease)],
      3u);
}

TEST(FlightRecorderTest, DrainCopiesWithoutStoppingTheRecorder) {
  FlightRecorder rec(4);
  rec.Emit(EventType::kPageHeapSpanAlloc, -1, -1, 0, -1, 1, 2);
  TraceBuffer first = rec.Drain();
  rec.Emit(EventType::kPageHeapSpanFree, -1, -1, 0, -1, 1, 2);
  TraceBuffer second = rec.Drain();

  EXPECT_EQ(first.events.size(), 1u);
  EXPECT_EQ(second.events.size(), 2u);
  EXPECT_EQ(second.total_emitted, 2u);
}

TEST(FlightRecorderTest, EveryEventTypeHasNameAndCategory) {
  for (int t = 0; t < kNumEventTypes; ++t) {
    EventType type = static_cast<EventType>(t);
    EXPECT_NE(EventTypeName(type), nullptr);
    EXPECT_STRNE(EventTypeName(type), "");
    EXPECT_NE(EventTypeCategory(type), nullptr);
    EXPECT_STRNE(EventTypeCategory(type), "");
  }
}

}  // namespace
}  // namespace wsc::trace
