#include "trace/chrome_trace.h"

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "trace/flight_recorder.h"

namespace wsc::trace {
namespace {

// Minimal JSON syntax checker (objects, arrays, strings, numbers,
// true/false/null) — enough to prove the rendered trace parses as the
// Chrome-tracing JSON Object Format without pulling in a JSON library.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') return Object();
    if (c == '[') return Array();
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    return Number();
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    std::string w(word);
    if (text_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

std::vector<ProcessTrace> SampleTraces() {
  FlightRecorder a(16);
  a.set_now(1000);
  a.Emit(EventType::kCpuCacheMiss, 2, 0, 5, -1, 128, 0);
  a.set_now(2500);
  a.Emit(EventType::kCflSpanAllocate, -1, -1, 5, 2, 77, 32);

  FlightRecorder b(4);
  for (int i = 0; i < 6; ++i) {
    b.set_now(100 * (i + 1));
    b.Emit(EventType::kFillerPlace, -1, -1, -1, 1,
           static_cast<uint64_t>(i), 4);
  }

  return {{0, 0, a.Drain()}, {0, 1, b.Drain()}};
}

TEST(ChromeTraceTest, RendersSyntacticallyValidJson) {
  std::string json = RenderChromeTrace(SampleTraces());
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
}

TEST(ChromeTraceTest, EmitsObjectFormatWithMetadata) {
  std::string json = RenderChromeTrace(SampleTraces());
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);

  // One process_name per distinct pid, one thread_name per process.
  EXPECT_EQ(CountOccurrences(json, "\"process_name\""), 1u);
  EXPECT_EQ(CountOccurrences(json, "\"thread_name\""), 2u);
  EXPECT_NE(json.find("\"machine0\""), std::string::npos);
  EXPECT_NE(json.find("\"process1\""), std::string::npos);

  // The wrapped recorder's drop count lands in its thread metadata.
  EXPECT_NE(json.find("\"emitted\":6,\"dropped\":2"), std::string::npos);

  // Instant events with tier categories, microsecond timestamps.
  EXPECT_NE(json.find("\"cat\":\"cpu_cache\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"central_free_list\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"huge_page_filler\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\",\"s\":\"t\",\"ts\":2.5"),
            std::string::npos);
  EXPECT_NE(json.find("\"span_id\":77"), std::string::npos);
}

TEST(ChromeTraceTest, EventCountMatchesBuffers) {
  std::vector<ProcessTrace> traces = SampleTraces();
  size_t expected = 0;
  for (const ProcessTrace& t : traces) expected += t.buffer.events.size();
  std::string json = RenderChromeTrace(traces);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"i\""), expected);
}

TEST(ChromeTraceTest, EmptyTraceIsStillValid) {
  std::string json = RenderChromeTrace({});
  EXPECT_EQ(json, "{\"traceEvents\":[]}");
  EXPECT_TRUE(JsonChecker(json).Valid());
}

TEST(ChromeTraceTest, RenderingIsDeterministic) {
  std::string a = RenderChromeTrace(SampleTraces());
  std::string b = RenderChromeTrace(SampleTraces());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace wsc::trace
