// Tests for NUMA-aware mode (Section 5): the middle tier and page
// allocator are duplicated per NUMA node, allocations return node-local
// memory, and frees route back to the owning node's hierarchy.

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "tcmalloc/allocator.h"

namespace wsc::tcmalloc {
namespace {

AllocatorConfig NumaConfig(int nodes) {
  return AllocatorConfig::Builder()
      .WithNumaNodes(nodes)
      .WithVcpus(4)
      .WithArena(uintptr_t{1} << 44, size_t{64} << 30)
      .Build();
}

TEST(Numa, DisabledHasOneNode) {
  AllocatorConfig config;
  Allocator alloc(config);
  EXPECT_EQ(alloc.num_numa_nodes(), 1);
  uintptr_t p = alloc.Allocate(64, 0, 0);
  EXPECT_EQ(alloc.NodeOfAddr(p), 0);
  alloc.Free(p, 0, 0);
}

TEST(Numa, AllocationsAreNodeLocal) {
  Allocator alloc(NumaConfig(2));
  EXPECT_EQ(alloc.num_numa_nodes(), 2);
  alloc.SetVcpuNode(0, 0);
  alloc.SetVcpuNode(1, 1);
  for (int i = 0; i < 200; ++i) {
    uintptr_t p0 = alloc.Allocate(64 + 32 * (i % 10), 0, 0);
    uintptr_t p1 = alloc.Allocate(64 + 32 * (i % 10), 1, 0);
    EXPECT_EQ(alloc.NodeOfAddr(p0), 0);
    EXPECT_EQ(alloc.NodeOfAddr(p1), 1);
  }
}

TEST(Numa, LargeAllocationsAreNodeLocal) {
  Allocator alloc(NumaConfig(2));
  alloc.SetVcpuNode(3, 1);
  uintptr_t p = alloc.Allocate(4 << 20, 3, 0);
  EXPECT_EQ(alloc.NodeOfAddr(p), 1);
  alloc.Free(p, 3, 0);
}

TEST(Numa, RemoteFreeRoutesBackToOwnerNode) {
  Allocator alloc(NumaConfig(2));
  alloc.SetVcpuNode(0, 0);
  alloc.SetVcpuNode(1, 1);
  // Allocate many objects on node 0 and free them from a node-1 vCPU;
  // after draining the caches, the spans must return to node 0's page
  // heap (any cross-node mixup would trip the span/pagemap CHECKs).
  std::vector<uintptr_t> objs;
  for (int i = 0; i < 3000; ++i) objs.push_back(alloc.Allocate(128, 0, 0));
  for (uintptr_t p : objs) alloc.Free(p, 1, 0);
  alloc.Maintain(Seconds(10));
  alloc.Maintain(Seconds(20));
  alloc.Maintain(Seconds(30));
  HeapStats stats = alloc.CollectStats();
  EXPECT_EQ(stats.live_bytes, 0u);
  EXPECT_EQ(stats.central_free_list_free, 0u);
  int cls = alloc.size_classes().ClassFor(128);
  EXPECT_GT(alloc.central_free_list(cls, 0).stats().returned_spans, 0u);
  // Node 1's CFL for this class never owned a span.
  EXPECT_EQ(alloc.central_free_list(cls, 1).stats().fetched_spans, 0u);
}

TEST(Numa, NodesHaveDisjointArenas) {
  Allocator alloc(NumaConfig(4));
  for (int node = 0; node < 4; ++node) {
    alloc.SetVcpuNode(0, node);
    // A fresh size class per node: the (node-agnostic, per-CPU) front-end
    // cache would otherwise serve the repeat allocation from the previous
    // node's batch, exactly as real TCMalloc does when a thread migrates.
    uintptr_t p = alloc.Allocate(size_t{1} << (10 + 2 * node), 0, 0);
    EXPECT_EQ(alloc.NodeOfAddr(p), node);
  }
}

TEST(Numa, StatsAggregateAcrossNodes) {
  Allocator alloc(NumaConfig(2));
  alloc.SetVcpuNode(0, 0);
  alloc.SetVcpuNode(1, 1);
  uintptr_t a = alloc.Allocate(4096, 0, 0);
  uintptr_t b = alloc.Allocate(4096, 1, 0);
  HeapStats stats = alloc.CollectStats();
  EXPECT_EQ(stats.live_bytes, 2 * 4096u);
  EXPECT_GT(alloc.system_stats().mapped_bytes, 0u);
  PageHeapStats ph = alloc.page_heap_stats();
  EXPECT_GT(ph.filler_used, 0u);
  alloc.Free(a, 0, 0);
  alloc.Free(b, 1, 0);
}

TEST(Numa, MixedWorkloadFullDrain) {
  // Property: random cross-node traffic drains completely.
  Allocator alloc(NumaConfig(2));
  alloc.SetVcpuNode(0, 0);
  alloc.SetVcpuNode(1, 0);
  alloc.SetVcpuNode(2, 1);
  alloc.SetVcpuNode(3, 1);
  Rng rng(77);
  std::vector<uintptr_t> live;
  for (int i = 0; i < 30000; ++i) {
    int vcpu = static_cast<int>(rng.UniformInt(4));
    if (!live.empty() && rng.Bernoulli(0.5)) {
      size_t k = rng.UniformInt(live.size());
      alloc.Free(live[k], vcpu, i);
      live[k] = live.back();
      live.pop_back();
    } else {
      size_t size = 1 + rng.UniformInt(rng.Bernoulli(0.03) ? 800000 : 4096);
      live.push_back(alloc.Allocate(size, vcpu, i));
    }
  }
  for (uintptr_t p : live) alloc.Free(p, 0, 0);
  EXPECT_EQ(alloc.CollectStats().live_bytes, 0u);
  EXPECT_EQ(alloc.num_allocations(), alloc.num_frees());
}

TEST(NumaDeathTest, InvalidNodeIsFatal) {
  Allocator alloc(NumaConfig(2));
  EXPECT_DEATH(alloc.SetVcpuNode(0, 2), "CHECK failed");
  EXPECT_DEATH(alloc.SetVcpuNode(0, -1), "CHECK failed");
}

}  // namespace
}  // namespace wsc::tcmalloc
