// Tests for the transfer cache: centralized behavior, NUCA sharding, and
// the plunder (anti-stranding) mechanism of Section 4.2.

#include "tcmalloc/transfer_cache.h"

#include <gtest/gtest.h>

#include <vector>

#include "fleet/machine.h"
#include "hw/topology.h"

namespace wsc::tcmalloc {
namespace {

uintptr_t Addr(int i) { return (uintptr_t{1} << 44) + 64 * (i + 1); }

AllocatorConfig LegacyConfig() {
  return AllocatorConfig::Builder()
      .WithTransferCacheBatches(2)  // small capacity for tests
      .WithNucaShardBatches(1)      // stay within the shrunken capacity
      .Build();
}

AllocatorConfig NucaConfig() {
  return AllocatorConfig::Builder()
      .WithNucaTransferCache()
      .WithLlcDomains(4)
      .WithTransferCacheBatches(2)
      .WithNucaShardBatches(1)
      .Build();
}

TEST(TransferCacheLegacy, InsertThenRemoveRoundTrips) {
  TransferCache tc(&SizeClasses::Default(), LegacyConfig());
  std::vector<uintptr_t> objs = {Addr(1), Addr(2), Addr(3)};
  EXPECT_EQ(tc.Insert(0, 5, objs.data(), 3), 3);
  uintptr_t out[4];
  EXPECT_EQ(tc.Remove(0, 5, out, 4), 3);
  EXPECT_EQ(tc.stats().central_hits, 3u);
  EXPECT_EQ(tc.stats().misses, 1u);  // fell short of the request
}

TEST(TransferCacheLegacy, ObjectsFlowBetweenCpusAndDomains) {
  TransferCache tc(&SizeClasses::Default(), LegacyConfig());
  uintptr_t obj = Addr(7);
  EXPECT_EQ(tc.Insert(/*domain=*/0, 3, &obj, 1), 1);
  uintptr_t out;
  // A different domain gets the object: centralized behavior.
  EXPECT_EQ(tc.Remove(/*domain=*/2, 3, &out, 1), 1);
  EXPECT_EQ(out, obj);
}

TEST(TransferCacheLegacy, CapacityBoundsInserts) {
  TransferCache tc(&SizeClasses::Default(), LegacyConfig());
  const SizeClasses& sc = SizeClasses::Default();
  int cls = 0;
  size_t cap = 2 * static_cast<size_t>(sc.batch_size(cls));
  std::vector<uintptr_t> objs;
  for (size_t i = 0; i < cap + 5; ++i) objs.push_back(Addr(i));
  int accepted = tc.Insert(0, cls, objs.data(), static_cast<int>(cap) + 5);
  EXPECT_EQ(accepted, static_cast<int>(cap));
  EXPECT_EQ(tc.stats().inserts_overflowed, 5u);
}

TEST(TransferCacheLegacy, TotalCachedBytes) {
  TransferCache tc(&SizeClasses::Default(), LegacyConfig());
  const SizeClasses& sc = SizeClasses::Default();
  int cls = sc.ClassFor(1024);
  uintptr_t objs[3] = {Addr(1), Addr(2), Addr(3)};
  tc.Insert(0, cls, objs, 3);
  EXPECT_EQ(tc.TotalCachedBytes(), 3 * sc.class_size(cls));
}

TEST(TransferCacheNuca, ShardServesItsOwnDomainFirst) {
  TransferCache tc(&SizeClasses::Default(), NucaConfig());
  EXPECT_TRUE(tc.nuca_enabled());
  uintptr_t obj = Addr(1);
  EXPECT_EQ(tc.Insert(/*domain=*/1, 3, &obj, 1), 1);
  uintptr_t out;
  EXPECT_EQ(tc.Remove(/*domain=*/1, 3, &out, 1), 1);
  EXPECT_EQ(out, obj);
  EXPECT_EQ(tc.stats().shard_hits, 1u);
  EXPECT_EQ(tc.stats().central_hits, 0u);
}

TEST(TransferCacheNuca, RemoteDomainDoesNotSeeShardObjects) {
  TransferCache tc(&SizeClasses::Default(), NucaConfig());
  uintptr_t obj = Addr(1);
  tc.Insert(/*domain=*/1, 3, &obj, 1);
  uintptr_t out;
  // Domain 0 misses: the object is in domain 1's shard, not the central
  // cache.
  EXPECT_EQ(tc.Remove(/*domain=*/0, 3, &out, 1), 0);
  EXPECT_EQ(tc.stats().misses, 1u);
}

TEST(TransferCacheNuca, ShardOverflowSpillsToCentral) {
  TransferCache tc(&SizeClasses::Default(), NucaConfig());
  const SizeClasses& sc = SizeClasses::Default();
  int cls = 0;
  int shard_cap = sc.batch_size(cls);  // 1 batch per shard
  std::vector<uintptr_t> objs;
  for (int i = 0; i < shard_cap + 3; ++i) objs.push_back(Addr(i));
  EXPECT_EQ(tc.Insert(0, cls, objs.data(), shard_cap + 3), shard_cap + 3);
  // The spill-over is in the central cache: another domain can fetch it.
  uintptr_t out[4];
  EXPECT_EQ(tc.Remove(/*domain=*/3, cls, out, 3), 3);
  EXPECT_EQ(tc.stats().central_hits, 3u);
}

TEST(TransferCacheNuca, PlunderMovesOnlyUntouchedObjects) {
  TransferCache tc(&SizeClasses::Default(), NucaConfig());
  int cls = 3;
  std::vector<uintptr_t> objs = {Addr(1), Addr(2), Addr(3), Addr(4)};
  tc.Insert(/*domain=*/2, cls, objs.data(), 4);
  tc.Plunder();  // arms the low-water mark at the current size (4)
  ASSERT_EQ(tc.stats().plundered_objects, 0u);

  // Touch the shard: remove two, reinsert two -> low-water mark is 2.
  uintptr_t out[2];
  ASSERT_EQ(tc.Remove(2, cls, out, 2), 2);
  tc.Insert(2, cls, out, 2);

  tc.Plunder();
  EXPECT_EQ(tc.stats().plundered_objects, 2u);
  // The plundered objects are now visible to other domains via central.
  uintptr_t got[4];
  EXPECT_EQ(tc.Remove(/*domain=*/0, cls, got, 4), 2);
}

TEST(TransferCacheNuca, PlunderDrainsIdleShardThenStops) {
  TransferCache tc(&SizeClasses::Default(), NucaConfig());
  int cls = 3;
  uintptr_t obj = Addr(9);
  tc.Insert(0, cls, &obj, 1);
  tc.Plunder();  // arms: the object arrived during this interval
  EXPECT_EQ(tc.stats().plundered_objects, 0u);
  tc.Plunder();  // object sat untouched for a full interval: moved
  EXPECT_EQ(tc.stats().plundered_objects, 1u);
  tc.Plunder();  // nothing left
  EXPECT_EQ(tc.stats().plundered_objects, 1u);
}

TEST(TransferCacheNuca, ShardsActivateLazily) {
  TransferCache tc(&SizeClasses::Default(), NucaConfig());
  // Only domain 0 used: inserting there must not pre-pay for others.
  uintptr_t obj = Addr(1);
  tc.Insert(0, 0, &obj, 1);
  // No crash and correct behavior on later first use of domain 3.
  uintptr_t out;
  EXPECT_EQ(tc.Remove(3, 0, &out, 1), 0);
  tc.Insert(3, 0, &obj, 1);
  EXPECT_EQ(tc.Remove(3, 0, &out, 1), 1);
}

TEST(TransferCacheLegacyAsNuca, SingleDomainDisablesSharding) {
  // Placement on a monolithic platform resolves the shard count to one
  // domain, which must disable sharding.
  hw::CpuTopology mono(hw::PlatformSpecFor(hw::PlatformGeneration::kGenA));
  AllocatorConfig config = fleet::ResolveTopology(NucaConfig(), mono);
  ASSERT_EQ(config.num_llc_domains, 1);
  TransferCache tc(&SizeClasses::Default(), config);
  EXPECT_FALSE(tc.nuca_enabled());
}

}  // namespace
}  // namespace wsc::tcmalloc
