// Tests for hugepage regions.

#include "tcmalloc/huge_region.h"

#include <gtest/gtest.h>

namespace wsc::tcmalloc {
namespace {

constexpr uintptr_t kBase = uintptr_t{1} << 40;

class HugeRegionTest : public ::testing::Test {
 protected:
  HugeRegionTest()
      : sys_(kBase, 4096 * kHugePageSize), cache_(&sys_, 64),
        regions_(&cache_) {}

  SystemAllocator sys_;
  HugeCache cache_;
  HugeRegionSet regions_;
};

TEST_F(HugeRegionTest, SingleRegionAllocateFree) {
  // 300 pages ~ 2.34 MiB: slightly exceeds one hugepage.
  PageId p = regions_.Allocate(300);
  EXPECT_EQ(regions_.num_regions(), 1u);
  EXPECT_EQ(regions_.used_pages(), 300u);
  EXPECT_TRUE(regions_.Owns(p));
  EXPECT_TRUE(regions_.Free(p, 300));
  // Region became empty: returned to the cache.
  EXPECT_EQ(regions_.num_regions(), 0u);
  EXPECT_EQ(cache_.stats().cached_hugepages, HugeRegion::kRegionHugePages);
}

TEST_F(HugeRegionTest, PacksMultipleAllocationsInOneRegion) {
  PageId a = regions_.Allocate(300);
  PageId b = regions_.Allocate(300);
  PageId c = regions_.Allocate(300);
  EXPECT_EQ(regions_.num_regions(), 1u);  // 4096-page regions fit all three
  EXPECT_NE(a.index, b.index);
  EXPECT_NE(b.index, c.index);
  EXPECT_EQ(regions_.used_pages(), 900u);
}

TEST_F(HugeRegionTest, GrowsWhenRegionFull) {
  // 13 x 300 = 3900 fits; the 14th overflows into a second region.
  for (int i = 0; i < 13; ++i) regions_.Allocate(300);
  EXPECT_EQ(regions_.num_regions(), 1u);
  regions_.Allocate(300);
  EXPECT_EQ(regions_.num_regions(), 2u);
}

TEST_F(HugeRegionTest, FreeReturnsFalseForForeignPages) {
  regions_.Allocate(300);
  EXPECT_FALSE(regions_.Free(PageId{1}, 10));
}

TEST_F(HugeRegionTest, ReusesFreedHoles) {
  PageId a = regions_.Allocate(300);
  regions_.Allocate(300);
  ASSERT_TRUE(regions_.Free(a, 300));
  PageId c = regions_.Allocate(200);  // fits the hole at a
  EXPECT_EQ(c.index, a.index);
  EXPECT_EQ(regions_.num_regions(), 1u);
}

TEST(HugeRegion, BitmapAllocateFree) {
  HugeRegion region(HugePageId{7});
  EXPECT_TRUE(region.empty());
  int a = region.Allocate(100);
  EXPECT_EQ(a, 0);
  int b = region.Allocate(HugeRegion::kRegionPages - 100);
  EXPECT_EQ(b, 100);
  EXPECT_EQ(region.Allocate(1), -1);  // full
  region.Free(a, 100);
  EXPECT_EQ(region.Allocate(50), 0);
}

TEST(HugeRegion, ContainsChecksRange) {
  HugeRegion region(HugePageId{10});
  PageId first = region.first_page();
  EXPECT_TRUE(region.Contains(first));
  EXPECT_TRUE(region.Contains(first + (HugeRegion::kRegionPages - 1)));
  EXPECT_FALSE(region.Contains(first + HugeRegion::kRegionPages));
  EXPECT_FALSE(region.Contains(first - 1));
}

}  // namespace
}  // namespace wsc::tcmalloc
