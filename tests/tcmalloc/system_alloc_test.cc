// Tests for the virtual-arena system allocator.

#include "tcmalloc/system_alloc.h"

#include <gtest/gtest.h>

namespace wsc::tcmalloc {
namespace {

constexpr uintptr_t kBase = uintptr_t{1} << 40;

TEST(SystemAllocator, ReturnsAlignedDisjointRuns) {
  SystemAllocator sys(kBase, 64 * kHugePageSize);
  HugePageId a = sys.AllocateHugePages(1);
  HugePageId b = sys.AllocateHugePages(3);
  HugePageId c = sys.AllocateHugePages(2);
  EXPECT_EQ(a.Addr() % kHugePageSize, 0u);
  EXPECT_EQ(b.Addr(), a.Addr() + kHugePageSize);
  EXPECT_EQ(c.Addr(), b.Addr() + 3 * kHugePageSize);
}

TEST(SystemAllocator, StatsTrackCallsAndBytes) {
  SystemAllocator sys(kBase, 64 * kHugePageSize, /*mmap_latency_ns=*/5000);
  sys.AllocateHugePages(2);
  sys.AllocateHugePages(1);
  EXPECT_EQ(sys.stats().mmap_calls, 2u);
  EXPECT_EQ(sys.stats().mapped_bytes, 3 * kHugePageSize);
  EXPECT_DOUBLE_EQ(sys.stats().mmap_ns, 10000.0);
}

TEST(SystemAllocatorDeathTest, ExhaustionIsFatal) {
  SystemAllocator sys(kBase, 2 * kHugePageSize);
  sys.AllocateHugePages(2);
  EXPECT_DEATH(sys.AllocateHugePages(1), "CHECK failed");
}

TEST(SystemAllocatorDeathTest, MisalignedBaseIsFatal) {
  EXPECT_DEATH(SystemAllocator(kBase + 4096, kHugePageSize), "CHECK failed");
}

TEST(SystemAllocator, PageAccessors) {
  SystemAllocator sys(kBase, 8 * kHugePageSize);
  EXPECT_EQ(sys.base(), kBase);
  EXPECT_EQ(sys.base_page().Addr(), kBase);
  EXPECT_EQ(sys.arena_pages(), 8 * kPagesPerHugePage);
}

}  // namespace
}  // namespace wsc::tcmalloc
