// Tests for the virtual-arena system allocator.

#include "tcmalloc/system_alloc.h"

#include <gtest/gtest.h>

namespace wsc::tcmalloc {
namespace {

constexpr uintptr_t kBase = uintptr_t{1} << 40;

TEST(SystemAllocator, ReturnsAlignedDisjointRuns) {
  SystemAllocator sys(kBase, 64 * kHugePageSize);
  HugePageId a = sys.AllocateHugePages(1);
  HugePageId b = sys.AllocateHugePages(3);
  HugePageId c = sys.AllocateHugePages(2);
  EXPECT_EQ(a.Addr() % kHugePageSize, 0u);
  EXPECT_EQ(b.Addr(), a.Addr() + kHugePageSize);
  EXPECT_EQ(c.Addr(), b.Addr() + 3 * kHugePageSize);
}

TEST(SystemAllocator, StatsTrackCallsAndBytes) {
  SystemAllocator sys(kBase, 64 * kHugePageSize, /*mmap_latency_ns=*/5000);
  sys.AllocateHugePages(2);
  sys.AllocateHugePages(1);
  EXPECT_EQ(sys.stats().mmap_calls, 2u);
  EXPECT_EQ(sys.stats().mapped_bytes, 3 * kHugePageSize);
  EXPECT_DOUBLE_EQ(sys.stats().mmap_ns, 10000.0);
}

TEST(SystemAllocator, ExhaustionReturnsInvalidAndCounts) {
  // Arena exhaustion is a surfaced failure, not a crash: callers get the
  // invalid sentinel and retry smaller / reclaim / fail the allocation.
  SystemAllocator sys(kBase, 2 * kHugePageSize);
  EXPECT_TRUE(IsValid(sys.AllocateHugePages(2)));
  HugePageId hp = sys.AllocateHugePages(1);
  EXPECT_FALSE(IsValid(hp));
  EXPECT_EQ(hp, kInvalidHugePage);
  EXPECT_EQ(sys.stats().mmap_failures, 1u);
  // Failed calls map nothing.
  EXPECT_EQ(sys.stats().mapped_bytes, 2 * kHugePageSize);
}

TEST(SystemAllocator, InjectedMmapFaultWindowDenies) {
  SystemAllocator sys(kBase, 64 * kHugePageSize);
  FaultPlan plan;
  plan.mmap_windows.push_back({1, 3});  // calls 1 and 2 fail
  FaultInjector injector(plan);
  sys.SetFaultInjector(&injector);
  EXPECT_TRUE(IsValid(sys.AllocateHugePages(1)));   // call 0
  EXPECT_FALSE(IsValid(sys.AllocateHugePages(1)));  // call 1
  EXPECT_FALSE(IsValid(sys.AllocateHugePages(1)));  // call 2
  EXPECT_TRUE(IsValid(sys.AllocateHugePages(1)));   // call 3
  EXPECT_EQ(sys.stats().mmap_failures, 2u);
  EXPECT_EQ(injector.mmap_denied(), 2u);
  EXPECT_EQ(injector.stats().calls[static_cast<int>(FaultKind::kMmap)], 4u);
}

TEST(SystemAllocatorDeathTest, MisalignedBaseIsFatal) {
  EXPECT_DEATH(SystemAllocator(kBase + 4096, kHugePageSize), "CHECK failed");
}

TEST(SystemAllocator, PageAccessors) {
  SystemAllocator sys(kBase, 8 * kHugePageSize);
  EXPECT_EQ(sys.base(), kBase);
  EXPECT_EQ(sys.base_page().Addr(), kBase);
  EXPECT_EQ(sys.arena_pages(), 8 * kPagesPerHugePage);
}

}  // namespace
}  // namespace wsc::tcmalloc
