// Tests for deterministic fault injection and graceful degradation: every
// tier must survive denied arena growth and hugepage scarcity by falling
// back or surfacing a counted failure — never by crashing — and recovery
// must be visible in the "failure" telemetry component.

#include "tcmalloc/fault_injection.h"

#include <gtest/gtest.h>

#include <vector>

#include "tcmalloc/allocator.h"
#include "tcmalloc/malloc_extension.h"

namespace wsc::tcmalloc {
namespace {

constexpr uintptr_t kBase = uintptr_t{1} << 44;

AllocatorConfig::Builder SmallArenaBuilder(size_t arena_bytes) {
  return AllocatorConfig::Builder().WithVcpus(2).WithArena(kBase, arena_bytes);
}

TEST(FaultInjector, WindowsConsumeCallIndicesPerKind) {
  FaultPlan plan;
  plan.mmap_windows.push_back({2, 4});
  plan.huge_backing_windows.push_back({0, 1});
  FaultInjector injector(plan);

  // Kinds have independent call counters.
  EXPECT_TRUE(injector.ShouldDenyHugeBacking());   // huge call 0: denied
  EXPECT_FALSE(injector.ShouldDenyHugeBacking());  // huge call 1
  EXPECT_FALSE(injector.ShouldFailMmap());         // mmap call 0
  EXPECT_FALSE(injector.ShouldFailMmap());         // mmap call 1
  EXPECT_TRUE(injector.ShouldFailMmap());          // mmap call 2: denied
  EXPECT_TRUE(injector.ShouldFailMmap());          // mmap call 3: denied
  EXPECT_FALSE(injector.ShouldFailMmap());         // mmap call 4

  EXPECT_EQ(injector.mmap_denied(), 2u);
  EXPECT_EQ(injector.huge_backing_denied(), 1u);
  EXPECT_EQ(injector.stats().calls[static_cast<int>(FaultKind::kMmap)], 5u);
  EXPECT_EQ(injector.stats().calls[static_cast<int>(FaultKind::kHugeBacking)],
            2u);
}

TEST(FaultInjector, EmptyPlanNeverDenies) {
  FaultInjector injector;
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(injector.ShouldFailMmap());
    EXPECT_FALSE(injector.ShouldDenyHugeBacking());
  }
  EXPECT_EQ(injector.mmap_denied(), 0u);
}

TEST(FaultHardening, MmapDeniedFromStartFailsGracefully) {
  // Every mmap call denied: the very first allocation cannot grow the
  // arena. It must come back as 0 — a counted failure — without crashing.
  AllocatorConfig config = SmallArenaBuilder(size_t{1} << 30).Build();
  Allocator alloc(config);
  FaultPlan plan;
  plan.mmap_windows.push_back({0, uint64_t{1} << 40});
  FaultInjector injector(plan);
  alloc.SetFaultInjector(&injector);

  EXPECT_EQ(alloc.Allocate(64, 0, 0), 0u);          // small path
  EXPECT_EQ(alloc.Allocate(1 << 20, 0, 0), 0u);     // large path
  EXPECT_EQ(alloc.num_allocations(), 0u);           // failures don't count

  MallocExtension extension(&alloc);
  EXPECT_GE(extension.GetProperty("failure.alloc_failures").value(), 2.0);
  EXPECT_GT(extension.GetProperty("failure.mmap_denied").value(), 0.0);
}

TEST(FaultHardening, ArenaExhaustionSurfacesAndRecoversAfterFrees) {
  // A tiny arena fills up; allocations start failing (simulated OOM) with
  // counted failures. After everything is freed the allocator serves again
  // from its own caches — no fresh mmap needed.
  AllocatorConfig config = SmallArenaBuilder(8 * kHugePageSize).Build();
  Allocator alloc(config);

  std::vector<uintptr_t> live;
  uintptr_t addr = 0;
  int failures = 0;
  for (int i = 0; i < 100000; ++i) {
    addr = alloc.Allocate(8192, 0, 0);
    if (addr == 0) {
      ++failures;
      if (failures >= 3) break;  // keep failing, keep not crashing
      continue;
    }
    live.push_back(addr);
  }
  ASSERT_GE(failures, 3);
  ASSERT_FALSE(live.empty());

  MallocExtension extension(&alloc);
  EXPECT_GE(extension.GetProperty("failure.alloc_failures").value(), 3.0);

  for (uintptr_t p : live) alloc.Free(p, 0, 0);
  EXPECT_NE(alloc.Allocate(8192, 0, 0), 0u);
}

TEST(FaultHardening, EmergencyReclaimRecoversDeniedGrowth) {
  // Park the process's free memory in vCPU 0's oversized cache, then deny
  // every further mmap and keep allocating from vCPU 1. Once the page
  // heap's leftovers run out, growth is denied and the only way to serve
  // vCPU 1 is the emergency cascade mobilizing vCPU 0's cached bytes —
  // allocations must keep succeeding, with the recovery counted.
  AllocatorConfig config = AllocatorConfig::Builder()
                               .WithVcpus(2)
                               .WithArena(kBase, size_t{1} << 30)
                               .WithCpuCacheBytes(32 * kHugePageSize)
                               .Build();
  Allocator alloc(config);

  std::vector<uintptr_t> parked;
  for (int i = 0; i < 2000; ++i) {
    uintptr_t addr = alloc.Allocate(8192, /*vcpu=*/0, 0);
    ASSERT_NE(addr, 0u);
    parked.push_back(addr);
  }
  for (uintptr_t p : parked) alloc.Free(p, /*vcpu=*/0, 0);

  FaultPlan plan;
  plan.mmap_windows.push_back({0, uint64_t{1} << 40});
  FaultInjector injector(plan);
  alloc.SetFaultInjector(&injector);

  MallocExtension extension(&alloc);
  for (int i = 0; i < 3000; ++i) {
    ASSERT_NE(alloc.Allocate(8192, /*vcpu=*/1, 0), 0u) << "iteration " << i;
    if (extension.GetProperty("failure.recovered_allocations").value() > 0) {
      break;
    }
  }
  EXPECT_GT(extension.GetProperty("failure.emergency_recoveries").value(),
            0.0);
  EXPECT_GT(extension.GetProperty("failure.recovered_allocations").value(),
            0.0);
  EXPECT_GT(injector.mmap_denied(), 0u);
}

TEST(FaultHardening, HugeBackingDenialLeavesRangesUnbacked) {
  // THP backing denied for every huge-cache system allocation: memory is
  // still granted and usable, but runs at 4 KiB TLB reach and shows up in
  // the scarcity counters.
  AllocatorConfig config = SmallArenaBuilder(size_t{1} << 30).Build();
  Allocator alloc(config);
  FaultPlan plan;
  plan.huge_backing_windows.push_back({0, uint64_t{1} << 40});
  FaultInjector injector(plan);
  alloc.SetFaultInjector(&injector);

  uintptr_t small = alloc.Allocate(64, 0, 0);
  uintptr_t big = alloc.Allocate(4 * kHugePageSize, 0, 0);
  EXPECT_NE(small, 0u);
  EXPECT_NE(big, 0u);
  EXPECT_GT(injector.huge_backing_denied(), 0u);

  MallocExtension extension(&alloc);
  EXPECT_GT(extension.GetProperty("failure.hugepage_backing_denied").value(),
            0.0);
  // Denied backing must depress hugepage coverage below a healthy run's.
  EXPECT_LT(extension.GetHugepageCoverage(), 1.0);
}

TEST(FaultHardening, FailureComponentAlwaysPresentInSnapshots) {
  // The live "failure" handles exist from construction, so fleet merges
  // and statsz dumps always see the component even on healthy runs.
  AllocatorConfig config = SmallArenaBuilder(size_t{1} << 30).Build();
  Allocator alloc(config);
  uintptr_t p = alloc.Allocate(64, 0, 0);
  alloc.Free(p, 0, 0);

  telemetry::Snapshot snapshot = alloc.TelemetrySnapshot();
  for (const char* name :
       {"alloc_failures", "emergency_recoveries", "recovered_allocations",
        "partial_batches", "double_frees_detected", "use_after_frees_detected",
        "buffer_overruns_detected", "mmap_denied", "hugepage_backing_denied",
        "span_fetch_failures", "large_fallbacks", "large_failures"}) {
    SCOPED_TRACE(name);
    const telemetry::MetricSample* sample = snapshot.Find("failure", name);
    ASSERT_NE(sample, nullptr);
    EXPECT_EQ(sample->ScalarValue(), 0.0);  // healthy run: all zero
  }
}

}  // namespace
}  // namespace wsc::tcmalloc
