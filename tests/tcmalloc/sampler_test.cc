// Tests for the GWP-style allocation sampler.

#include "tcmalloc/sampler.h"

#include <gtest/gtest.h>

namespace wsc::tcmalloc {
namespace {

TEST(Sampler, SamplesOncePerIntervalBytes) {
  Sampler sampler(/*sample_interval_bytes=*/1000);
  int sampled = 0;
  // 100 allocations of 100 B = 10000 B -> ~10 samples.
  for (int i = 0; i < 100; ++i) {
    if (sampler.RecordAllocation(1000 + i, 100, 100, 0)) ++sampled;
  }
  EXPECT_EQ(sampled, 10);
  EXPECT_EQ(sampler.samples_taken(), 10u);
}

TEST(Sampler, LargeAllocationAlwaysSampledWhenExceedingInterval) {
  Sampler sampler(1000);
  EXPECT_TRUE(sampler.RecordAllocation(42, 5000, 5000, 0));
}

TEST(Sampler, LifetimeRecordedOnFree) {
  Sampler sampler(100);
  ASSERT_TRUE(sampler.RecordAllocation(0xAB, 512, 512, Nanoseconds(1000)));
  sampler.RecordFree(0xAB, Nanoseconds(6000));
  const LifetimeProfile& profile = sampler.profile();
  EXPECT_EQ(profile.all_lifetimes.count(), 1u);
  EXPECT_DOUBLE_EQ(profile.all_lifetimes.Mean(), 5000.0);
  // Recorded under the right size bucket (2^9 = 512).
  int bucket = LifetimeProfile::SizeBucketFor(512);
  EXPECT_EQ(profile.lifetime_by_size[bucket].count(), 1u);
}

TEST(Sampler, UnsampledFreesAreIgnored) {
  Sampler sampler(size_t{1} << 40);  // samples (almost) nothing
  EXPECT_FALSE(sampler.RecordAllocation(0xCD, 64, 64, 0));
  sampler.RecordFree(0xCD, 100);  // no crash, no record
  EXPECT_EQ(sampler.profile().all_lifetimes.count(), 0u);
}

TEST(Sampler, FlushOutstandingCensorsLiveObjects) {
  Sampler sampler(100);
  ASSERT_TRUE(sampler.RecordAllocation(0x1, 256, 256, 0));
  ASSERT_TRUE(sampler.RecordAllocation(0x2, 256, 256, Seconds(1)));
  sampler.FlushOutstanding(Seconds(10));
  EXPECT_EQ(sampler.profile().all_lifetimes.count(), 2u);
  // Censored lifetimes: 10 s and 9 s.
  EXPECT_NEAR(sampler.profile().all_lifetimes.Mean(), 9.5e9, 1e9);
  // Repeated flush adds nothing.
  sampler.FlushOutstanding(Seconds(20));
  EXPECT_EQ(sampler.profile().all_lifetimes.count(), 2u);
}

TEST(LifetimeProfile, SizeBucketBoundaries) {
  EXPECT_EQ(LifetimeProfile::SizeBucketFor(1), 0);
  EXPECT_EQ(LifetimeProfile::SizeBucketFor(2), 1);
  EXPECT_EQ(LifetimeProfile::SizeBucketFor(3), 2);
  EXPECT_EQ(LifetimeProfile::SizeBucketFor(4), 2);
  EXPECT_EQ(LifetimeProfile::SizeBucketFor(1024), 10);
  EXPECT_EQ(LifetimeProfile::SizeBucketFor(size_t{1} << 50),
            LifetimeProfile::kSizeBuckets - 1);
}

TEST(LifetimeProfile, MergeCombinesHistograms) {
  LifetimeProfile a, b;
  a.all_lifetimes.Add(100);
  b.all_lifetimes.Add(300);
  b.lifetime_by_size[5].Add(1);
  a.Merge(b);
  EXPECT_EQ(a.all_lifetimes.count(), 2u);
  EXPECT_DOUBLE_EQ(a.all_lifetimes.Mean(), 200.0);
  EXPECT_EQ(a.lifetime_by_size[5].count(), 1u);
}

}  // namespace
}  // namespace wsc::tcmalloc
