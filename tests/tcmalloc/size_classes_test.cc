// Tests for the size-class table: bounds, lookup correctness, span
// geometry, and the internal-fragmentation guarantee.

#include "tcmalloc/size_classes.h"

#include <gtest/gtest.h>

#include "tcmalloc/pages.h"

namespace wsc::tcmalloc {
namespace {

TEST(SizeClasses, HasPaperishClassCount) {
  // Section 2.1: "rounded up to one of 80-90 size classes".
  const SizeClasses& sc = SizeClasses::Default();
  EXPECT_GE(sc.num_classes(), 80);
  EXPECT_LE(sc.num_classes(), 90);
}

TEST(SizeClasses, SizesAreStrictlyIncreasing) {
  const SizeClasses& sc = SizeClasses::Default();
  for (int c = 1; c < sc.num_classes(); ++c) {
    EXPECT_LT(sc.class_size(c - 1), sc.class_size(c));
  }
}

TEST(SizeClasses, FirstAndLastClass) {
  const SizeClasses& sc = SizeClasses::Default();
  EXPECT_EQ(sc.class_size(0), 8u);
  EXPECT_EQ(sc.class_size(sc.num_classes() - 1), kMaxSmallSize);
}

TEST(SizeClasses, ClassForRejectsZeroAndLarge) {
  const SizeClasses& sc = SizeClasses::Default();
  EXPECT_EQ(sc.ClassFor(0), -1);
  EXPECT_EQ(sc.ClassFor(kMaxSmallSize + 1), -1);
  EXPECT_EQ(sc.ClassFor(1 << 30), -1);
}

TEST(SizeClasses, ClassForBoundaries) {
  const SizeClasses& sc = SizeClasses::Default();
  EXPECT_EQ(sc.ClassFor(1), 0);
  EXPECT_EQ(sc.ClassFor(8), 0);
  EXPECT_EQ(sc.ClassFor(9), 1);
  EXPECT_EQ(sc.ClassFor(kMaxSmallSize), sc.num_classes() - 1);
}

// Property: every representable request maps to the smallest class that
// fits it.
TEST(SizeClasses, ClassForIsTightEverywhere) {
  const SizeClasses& sc = SizeClasses::Default();
  for (size_t size = 1; size <= kMaxSmallSize;
       size += (size < 4096 ? 1 : 997)) {
    int cls = sc.ClassFor(size);
    ASSERT_GE(cls, 0) << size;
    EXPECT_GE(sc.class_size(cls), size) << size;
    if (cls > 0) {
      EXPECT_LT(sc.class_size(cls - 1), size) << size;
    }
  }
  // The last class must be checked explicitly.
  EXPECT_EQ(sc.ClassFor(kMaxSmallSize), sc.num_classes() - 1);
}

TEST(SizeClasses, SpanGeometryConsistent) {
  const SizeClasses& sc = SizeClasses::Default();
  for (int c = 0; c < sc.num_classes(); ++c) {
    const SizeClassInfo& info = sc.info(c);
    EXPECT_GE(info.objects_per_span, 1);
    EXPECT_EQ(info.objects_per_span,
              static_cast<int>(LengthToBytes(info.pages_per_span) /
                               info.size));
    // Spans are smaller than a hugepage: they go through the filler.
    EXPECT_LT(info.pages_per_span, kPagesPerHugePage);
  }
}

TEST(SizeClasses, SpanTailWasteIsBounded) {
  // The generator promises tail waste <= 1/8 of the span.
  const SizeClasses& sc = SizeClasses::Default();
  for (int c = 0; c < sc.num_classes(); ++c) {
    const SizeClassInfo& info = sc.info(c);
    size_t span_bytes = LengthToBytes(info.pages_per_span);
    size_t used = info.size * static_cast<size_t>(info.objects_per_span);
    EXPECT_LE((span_bytes - used) * 8, span_bytes)
        << "class " << c << " size " << info.size;
  }
}

TEST(SizeClasses, BatchSizesAreReasonable) {
  const SizeClasses& sc = SizeClasses::Default();
  for (int c = 0; c < sc.num_classes(); ++c) {
    EXPECT_GE(sc.batch_size(c), 2);
    EXPECT_LE(sc.batch_size(c), 32);
  }
  // Small classes move large batches; the largest class moves few.
  EXPECT_EQ(sc.batch_size(0), 32);
  EXPECT_EQ(sc.batch_size(sc.num_classes() - 1), 2);
}

TEST(SizeClasses, SmallCapacitySpansExistForLifetimeFiller) {
  // The lifetime-aware filler distinguishes spans with capacity < 16; such
  // classes must exist (large size classes hold few objects, Fig. 16).
  const SizeClasses& sc = SizeClasses::Default();
  int below = 0, at_least = 0;
  for (int c = 0; c < sc.num_classes(); ++c) {
    if (sc.objects_per_span(c) < 16) {
      ++below;
    } else {
      ++at_least;
    }
  }
  EXPECT_GT(below, 0);
  EXPECT_GT(at_least, 0);
  // Single-object spans exist (the leftmost points of Fig. 16).
  EXPECT_EQ(sc.objects_per_span(sc.num_classes() - 1), 1);
}

// Parameterized sweep: internal fragmentation (slack between request and
// class) is bounded for every size region.
class SizeClassSlackTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SizeClassSlackTest, SlackBounded) {
  const SizeClasses& sc = SizeClasses::Default();
  size_t size = GetParam();
  int cls = sc.ClassFor(size);
  ASSERT_GE(cls, 0);
  double slack = static_cast<double>(sc.class_size(cls) - size) /
                 static_cast<double>(sc.class_size(cls));
  // Sub-minimum requests round to the 8 B class (unbounded relative
  // slack); tiny requests tolerate up to ~44% (8 B class steps); above
  // 64 B the spacing guarantees at most ~25%.
  if (size >= 8) {
    EXPECT_LE(slack, size > 64 ? 0.25 : 0.4375) << size;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SizeClassSlackTest,
                         ::testing::Values(1, 7, 8, 9, 16, 24, 100, 128, 250,
                                           512, 1000, 1024, 2000, 4096, 5000,
                                           8192, 10000, 20000, 32768, 65536,
                                           100000, 131072, 200000, 262144));

}  // namespace
}  // namespace wsc::tcmalloc
