// White-box tests for the real-memory backing and the real-threads
// allocator's real mode: here the addresses are dereferenceable, so the
// tests write through every object they get, the freelists thread through
// the object storage they exercise, and ReleaseMemoryToSystem performs a
// real madvise. The virtual mode's bit-identity is guarded elsewhere
// (tests/shim/check_bit_identity.py); this file proves the other half of
// the seam actually works as memory.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "tcmalloc/config.h"
#include "tcmalloc/memory_backing.h"
#include "tcmalloc/pages.h"
#include "tcmalloc/real_threads.h"
#include "tcmalloc/size_classes.h"
#include "telemetry/registry.h"

namespace wsc::tcmalloc {
namespace {

AllocatorConfig RealConfig() {
  return AllocatorConfig::Builder()
      .WithVcpus(4)
      .WithRealMemory()
      .Build();
}

double Metric(const telemetry::Snapshot& snap, const char* component,
              const char* name) {
  const telemetry::MetricSample* sample = snap.Find(component, name);
  return sample != nullptr ? sample->ScalarValue() : -1.0;
}

// ---- ReleasedRangeSet: the dedupe that keeps release accounting honest.

TEST(ReleasedRangeSetTest, AddDedupesOverlaps) {
  ReleasedRangeSet set;
  EXPECT_EQ(set.Add(0x1000, 0x1000), 0x1000u);
  // Re-releasing the same range is not new.
  EXPECT_EQ(set.Add(0x1000, 0x1000), 0u);
  // Partial overlap counts only the fresh part.
  EXPECT_EQ(set.Add(0x1800, 0x1000), 0x800u);
  EXPECT_EQ(set.total_bytes(), 0x1800u);
}

TEST(ReleasedRangeSetTest, RemoveSplitsRuns) {
  ReleasedRangeSet set;
  set.Add(0x1000, 0x3000);
  // Carve the middle out: the run splits in two.
  EXPECT_EQ(set.Remove(0x2000, 0x1000), 0x1000u);
  EXPECT_EQ(set.total_bytes(), 0x2000u);
  // Removing an uncovered range is a no-op.
  EXPECT_EQ(set.Remove(0x2000, 0x1000), 0u);
  // The two halves are still marked.
  EXPECT_EQ(set.Add(0x1000, 0x1000), 0u);
  EXPECT_EQ(set.Add(0x3000, 0x1000), 0u);
}

// ---- RealMemoryBacking: a real mmap reservation.

TEST(RealMemoryBackingTest, ReservesWritableHugepageAlignedMemory) {
  RealMemoryBacking backing(RealMemoryBacking::kMinReserveBytes);
  ASSERT_TRUE(backing.ok());
  EXPECT_EQ(backing.base() % kHugePageSize, 0u);
  EXPECT_GE(backing.reserved_bytes(), RealMemoryBacking::kMinReserveBytes);
  EXPECT_EQ(backing.kind(), BackendKind::kRealMemory);

  uintptr_t hp = backing.MapHugePages(2);
  ASSERT_NE(hp, 0u);
  EXPECT_EQ(hp % kHugePageSize, 0u);
  // The point of the real backing: this memory is real.
  std::memset(reinterpret_cast<void*>(hp), 0xAB, 2 * kHugePageSize);
  EXPECT_EQ(reinterpret_cast<unsigned char*>(hp)[kHugePageSize], 0xAB);
}

TEST(RealMemoryBackingTest, ReleaseZeroesAndDedupes) {
  RealMemoryBacking backing(RealMemoryBacking::kMinReserveBytes);
  ASSERT_TRUE(backing.ok());
  uintptr_t hp = backing.MapHugePages(1);
  ASSERT_NE(hp, 0u);
  unsigned char* mem = reinterpret_cast<unsigned char*>(hp);
  std::memset(mem, 0xCD, kHugePageSize);

  EXPECT_EQ(backing.Release(hp, kHugePageSize), kHugePageSize);
  // Releasing again confirms nothing new.
  EXPECT_EQ(backing.Release(hp, kHugePageSize), 0u);
  // MADV_DONTNEED refaults as zero.
  EXPECT_EQ(mem[0], 0);
  EXPECT_EQ(mem[kHugePageSize - 1], 0);

  backing.Commit(hp, kHugePageSize);
  EXPECT_EQ(backing.stats().recommitted_bytes, kHugePageSize);
  // Post-commit the full range releases fresh again.
  EXPECT_EQ(backing.Release(hp, kHugePageSize), kHugePageSize);
}

// ---- Real-threads allocator in real mode.

TEST(RealMemoryModeTest, BackendKindAndSmallRoundTrip) {
  RealThreadsAllocator alloc(RealConfig(), 1);
  EXPECT_EQ(alloc.backend_kind(), BackendKind::kRealMemory);
  ASSERT_NE(alloc.backing(), nullptr);
  RealThreadCache* tc = alloc.RegisterThread();

  uintptr_t p = alloc.Allocate(tc, 48);
  ASSERT_NE(p, 0u);
  EXPECT_TRUE(alloc.Owns(p));
  // Writable, and UsableSize reports the full class capacity.
  std::memset(reinterpret_cast<void*>(p), 0x5A, 48);
  size_t usable = alloc.UsableSize(p);
  EXPECT_GE(usable, 48u);
  EXPECT_EQ(usable, SizeClasses::Default().class_size(
                        SizeClasses::Default().ClassFor(48)));
  alloc.Free(tc, p, 48);
  // The freed object comes straight back off the intrusive list.
  EXPECT_EQ(alloc.Allocate(tc, 48), p);
  alloc.Free(tc, p, 48);
}

TEST(RealMemoryModeTest, FreeAddrRecoversSizeFromDirectory) {
  RealThreadsAllocator alloc(RealConfig(), 1);
  RealThreadCache* tc = alloc.RegisterThread();

  // Small: unsized free must route to the same class list as a sized one.
  uintptr_t small = alloc.Allocate(tc, 128);
  ASSERT_NE(small, 0u);
  alloc.FreeAddr(tc, small);
  EXPECT_EQ(alloc.Allocate(tc, 128), small);

  // Large: the directory holds the page count.
  constexpr size_t kLargeBytes = 1 << 20;
  uintptr_t large = alloc.Allocate(tc, kLargeBytes);
  ASSERT_NE(large, 0u);
  EXPECT_EQ(alloc.UsableSize(large), kLargeBytes);
  std::memset(reinterpret_cast<void*>(large), 0x77, kLargeBytes);
  alloc.FreeAddr(tc, large);
  EXPECT_EQ(alloc.UsableSize(large), 0u);
  // Unknown/middle-of-range addresses are ignored, not fatal.
  alloc.FreeAddr(tc, large + 3 * kPageSize);

  alloc.Free(tc, small, 128);
  telemetry::Snapshot snap = alloc.TelemetrySnapshot();
  EXPECT_EQ(Metric(snap, "allocator", "allocations"),
            Metric(snap, "allocator", "frees"));
}

TEST(RealMemoryModeTest, LargeRangesAreReused) {
  RealThreadsAllocator alloc(RealConfig(), 1);
  RealThreadCache* tc = alloc.RegisterThread();
  constexpr size_t kBytes = 4 << 20;

  uintptr_t a = alloc.Allocate(tc, kBytes);
  ASSERT_NE(a, 0u);
  alloc.Free(tc, a, kBytes);
  // Same size comes back from the pending list, not a fresh carve.
  EXPECT_EQ(alloc.Allocate(tc, kBytes), a);
  alloc.Free(tc, a, kBytes);
  // A smaller request splits the range from the front.
  uintptr_t b = alloc.Allocate(tc, kBytes / 2);
  EXPECT_EQ(b, a);
  uintptr_t c = alloc.Allocate(tc, kBytes / 2);
  EXPECT_EQ(c, a + kBytes / 2);
  alloc.Free(tc, b, kBytes / 2);
  alloc.Free(tc, c, kBytes / 2);
}

TEST(RealMemoryModeTest, AlignedAllocationSweep) {
  RealThreadsAllocator alloc(RealConfig(), 1);
  RealThreadCache* tc = alloc.RegisterThread();
  std::vector<std::pair<uintptr_t, size_t>> live;
  for (size_t align = 8; align <= (size_t{4} << 20); align <<= 1) {
    for (size_t size : {size_t{1}, size_t{64}, size_t{4096},
                        size_t{300000}}) {
      uintptr_t p = alloc.AllocateAligned(tc, size, align);
      ASSERT_NE(p, 0u) << "align=" << align << " size=" << size;
      EXPECT_EQ(p % align, 0u) << "align=" << align << " size=" << size;
      EXPECT_GE(alloc.UsableSize(p), size);
      std::memset(reinterpret_cast<void*>(p), 0x11, size);
      live.push_back({p, size});
    }
  }
  for (auto [p, size] : live) alloc.FreeAddr(tc, p);
  telemetry::Snapshot snap = alloc.TelemetrySnapshot();
  EXPECT_EQ(Metric(snap, "allocator", "allocations"),
            Metric(snap, "allocator", "frees"));
}

TEST(RealMemoryModeTest, ReleaseMemoryToSystemMadvisesPendingRanges) {
  RealThreadsAllocator alloc(RealConfig(), 1);
  RealThreadCache* tc = alloc.RegisterThread();
  constexpr size_t kBytes = 8 << 20;

  uintptr_t p = alloc.Allocate(tc, kBytes);
  ASSERT_NE(p, 0u);
  unsigned char* mem = reinterpret_cast<unsigned char*>(p);
  std::memset(mem, 0xEE, kBytes);
  alloc.Free(tc, p, kBytes);

  size_t released = alloc.ReleaseMemoryToSystem(kBytes);
  EXPECT_GT(released, 0u);
  // All but the header page (which carries the pending-list node).
  EXPECT_EQ(released, kBytes - kPageSize);
  // Really gone: refaults zero.
  EXPECT_EQ(mem[kPageSize], 0);
  EXPECT_EQ(mem[kBytes - 1], 0);
  // Releasing again finds nothing new.
  EXPECT_EQ(alloc.ReleaseMemoryToSystem(kBytes), 0u);

  // The released range is still reusable.
  uintptr_t q = alloc.Allocate(tc, kBytes);
  EXPECT_EQ(q, p);
  std::memset(mem, 0xEF, kBytes);
  alloc.Free(tc, q, kBytes);
}

TEST(RealMemoryModeTest, VirtualModeReleaseIsZero) {
  AllocatorConfig config = AllocatorConfig::Builder().WithVcpus(2).Build();
  RealThreadsAllocator alloc(config, 1);
  EXPECT_EQ(alloc.backend_kind(), BackendKind::kVirtualArena);
  EXPECT_EQ(alloc.backing(), nullptr);
  EXPECT_EQ(alloc.ReleaseMemoryToSystem(~size_t{0}), 0u);
  EXPECT_FALSE(alloc.Owns(config.arena_base));
}

// A producer/consumer storm over real memory: every object is written
// through, conservation must hold, and the intrusive lists must survive
// cross-thread frees. This is the real-mode twin of the virtual storm in
// real_threads_test.cc.
TEST(RealMemoryModeTest, CrossThreadStormConservesObjects) {
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 20000;
  RealThreadsAllocator alloc(RealConfig(), kThreads);

  std::vector<std::thread> workers;
  std::vector<std::vector<std::pair<uintptr_t, size_t>>> handoff(kThreads);
  std::mutex handoff_mu;
  std::atomic<uint64_t> write_check{0};

  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      RealThreadCache* tc = alloc.RegisterThread();
      uint64_t seed = 0x9E3779B97F4A7C15ull * (t + 1);
      std::vector<std::pair<uintptr_t, size_t>> mine;
      for (int op = 0; op < kOpsPerThread; ++op) {
        seed = seed * 6364136223846793005ull + 1442695040888963407ull;
        size_t size = 8 + (seed >> 33) % 1024;
        uintptr_t p = alloc.Allocate(tc, size);
        ASSERT_NE(p, 0u);
        *reinterpret_cast<uint64_t*>(p) = seed;
        write_check.fetch_add(seed, std::memory_order_relaxed);
        if ((seed & 3) == 0) {
          // Hand off to a sibling's pile: freed by another thread.
          std::lock_guard<std::mutex> guard(handoff_mu);
          handoff[(t + 1) % kThreads].push_back({p, size});
        } else {
          mine.push_back({p, size});
        }
        if (mine.size() > 64 || (op % 512) == 511) {
          for (auto [addr, sz] : mine) alloc.Free(tc, addr, sz);
          mine.clear();
          std::lock_guard<std::mutex> guard(handoff_mu);
          for (auto [addr, sz] : handoff[t]) alloc.Free(tc, addr, sz);
          handoff[t].clear();
        }
      }
      for (auto [addr, sz] : mine) alloc.Free(tc, addr, sz);
      std::lock_guard<std::mutex> guard(handoff_mu);
      for (auto [addr, sz] : handoff[t]) alloc.Free(tc, addr, sz);
      handoff[t].clear();
    });
  }
  for (auto& w : workers) w.join();

  // A worker can exit while a slower sibling is still pushing into its
  // handoff pile; drain the stragglers here (cross-thread frees from the
  // main thread are just as legal).
  RealThreadCache* main_tc = alloc.RegisterThread();
  for (auto& pile : handoff) {
    for (auto [addr, sz] : pile) alloc.Free(main_tc, addr, sz);
    pile.clear();
  }

  telemetry::Snapshot snap = alloc.TelemetrySnapshot();
  EXPECT_EQ(Metric(snap, "allocator", "allocations"),
            static_cast<double>(kThreads) * kOpsPerThread);
  EXPECT_EQ(Metric(snap, "allocator", "allocations"),
            Metric(snap, "allocator", "frees"));
  EXPECT_EQ(Metric(snap, "allocator", "live_bytes"), 0.0);
  EXPECT_EQ(Metric(snap, "system", "reserved_bytes"),
            static_cast<double>(alloc.backing()->reserved_bytes()));
}

}  // namespace
}  // namespace wsc::tcmalloc
