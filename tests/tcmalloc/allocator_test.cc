// End-to-end tests of the allocator facade: correctness of the malloc/free
// contract, tier routing, cycle accounting, and heap statistics.

#include "tcmalloc/allocator.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.h"

namespace wsc::tcmalloc {
namespace {

AllocatorConfig::Builder TestBuilder() {
  return AllocatorConfig::Builder().WithVcpus(4).WithArena(
      uintptr_t{1} << 44, size_t{32} << 30);
}

AllocatorConfig TestConfig() { return TestBuilder().Build(); }

TEST(Allocator, SmallAllocationRoundTrip) {
  Allocator alloc(TestConfig());
  uintptr_t p = alloc.Allocate(100, 0, 0);
  EXPECT_NE(p, 0u);
  HeapStats stats = alloc.CollectStats();
  // 100 B rounds to a size class >= 100.
  EXPECT_GE(stats.live_bytes, 100u);
  EXPECT_LE(stats.live_bytes, 128u);
  alloc.Free(p, 0, 0);
  EXPECT_EQ(alloc.CollectStats().live_bytes, 0u);
  EXPECT_EQ(alloc.num_allocations(), 1u);
  EXPECT_EQ(alloc.num_frees(), 1u);
}

TEST(Allocator, LargeAllocationBypassesCaches) {
  Allocator alloc(TestConfig());
  uintptr_t p = alloc.Allocate(1 << 20, 0, 0);
  EXPECT_NE(p, 0u);
  EXPECT_EQ(alloc.alloc_tier_hits().page_heap, 1u);
  EXPECT_EQ(alloc.alloc_tier_hits().cpu_cache, 0u);
  HeapStats stats = alloc.CollectStats();
  EXPECT_GE(stats.live_bytes, size_t{1} << 20);
  alloc.Free(p, 0, 0);
  EXPECT_EQ(alloc.CollectStats().live_bytes, 0u);
}

TEST(Allocator, SecondAllocationHitsCpuCache) {
  Allocator alloc(TestConfig());
  uintptr_t p = alloc.Allocate(64, 0, 0);
  alloc.Free(p, 0, 0);  // lands in the vCPU-0 cache
  uintptr_t q = alloc.Allocate(64, 0, 0);
  EXPECT_EQ(q, p);  // LIFO reuse
  EXPECT_GE(alloc.alloc_tier_hits().cpu_cache, 1u);
}

TEST(Allocator, BatchRefillPopulatesCache) {
  Allocator alloc(TestConfig());
  const SizeClasses& sc = alloc.size_classes();
  int cls = sc.ClassFor(64);
  // First allocation misses everywhere and refills from the CFL.
  alloc.Allocate(64, 0, 0);
  // batch - 1 objects cached: the next batch-1 allocations all hit.
  uint64_t misses_before = alloc.cpu_caches().GetVcpuStats(0).underflows;
  for (int i = 1; i < sc.batch_size(cls); ++i) alloc.Allocate(64, 0, 0);
  EXPECT_EQ(alloc.cpu_caches().GetVcpuStats(0).underflows, misses_before);
}

TEST(Allocator, NoTwoLiveObjectsOverlap) {
  Allocator alloc(TestConfig());
  Rng rng(99);
  struct Obj {
    uintptr_t addr;
    size_t size;
  };
  std::vector<Obj> live;
  std::map<uintptr_t, size_t> intervals;  // addr -> allocated extent
  const SizeClasses& sc = alloc.size_classes();
  for (int i = 0; i < 20000; ++i) {
    if (!live.empty() && rng.Bernoulli(0.45)) {
      size_t k = rng.UniformInt(live.size());
      alloc.Free(live[k].addr, static_cast<int>(rng.UniformInt(4)), i);
      intervals.erase(live[k].addr);
      live[k] = live.back();
      live.pop_back();
    } else {
      size_t size = 1 + rng.UniformInt(rng.Bernoulli(0.05) ? 500000 : 3000);
      uintptr_t addr =
          alloc.Allocate(size, static_cast<int>(rng.UniformInt(4)), i);
      int cls = sc.ClassFor(size);
      size_t extent = cls >= 0 ? sc.class_size(cls)
                               : LengthToBytes(BytesToLengthCeil(size));
      // Check against neighbors in the interval map.
      auto next = intervals.lower_bound(addr);
      if (next != intervals.end()) {
        ASSERT_LE(addr + extent, next->first) << "overlap above";
      }
      if (next != intervals.begin()) {
        auto prev = std::prev(next);
        ASSERT_LE(prev->first + prev->second, addr) << "overlap below";
      }
      intervals[addr] = extent;
      live.push_back({addr, size});
    }
  }
}

TEST(AllocatorDeathTest, DoubleFreeOfCachedObjectIsEventuallyFatal) {
  // Freeing twice puts the same address in the cache twice; the second
  // round-trip through the span layer detects it. Directly freeing an
  // address that was never allocated dies on the pagemap lookup.
  Allocator alloc(TestConfig());
  EXPECT_DEATH(alloc.Free(uintptr_t{1} << 45, 0, 0), "CHECK failed");
}

TEST(AllocatorDeathTest, ZeroSizeAllocationIsFatal) {
  Allocator alloc(TestConfig());
  EXPECT_DEATH(alloc.Allocate(0, 0, 0), "CHECK failed");
}

TEST(Allocator, CycleAccountingAttributesAllPaths) {
  Allocator alloc(TestConfig());
  Rng rng(5);
  std::vector<uintptr_t> live;
  for (int i = 0; i < 5000; ++i) {
    if (!live.empty() && rng.Bernoulli(0.4)) {
      alloc.Free(live.back(), 0, i);
      live.pop_back();
    } else {
      live.push_back(alloc.Allocate(1 + rng.UniformInt(4096), 0, i));
    }
  }
  const MallocCycleBreakdown& cycles = alloc.cycle_breakdown();
  EXPECT_GT(cycles.cpu_cache_ns, 0.0);
  EXPECT_GT(cycles.central_free_list_ns, 0.0);
  EXPECT_GT(cycles.page_heap_ns, 0.0);
  EXPECT_GT(cycles.mmap_ns, 0.0);
  EXPECT_GT(cycles.prefetch_ns, 0.0);
  EXPECT_GT(cycles.other_ns, 0.0);
  EXPECT_GT(cycles.Total(), 0.0);
  // The fast path dominates operation counts, so per-op cost is small.
  double per_op = cycles.Total() /
                  static_cast<double>(alloc.num_allocations() +
                                      alloc.num_frees());
  EXPECT_LT(per_op, 100.0);
}

TEST(Allocator, LastOpNsTracksTierCosts) {
  AllocatorConfig config = TestConfig();
  Allocator alloc(config);
  // First alloc goes through CFL + page heap + mmap: expensive.
  alloc.Allocate(64, 0, 0);
  double slow = alloc.last_op_ns();
  EXPECT_GT(slow, config.costs.page_heap_ns);
  // Second allocation of the same class: fast path only.
  alloc.Allocate(64, 0, 0);
  double fast = alloc.last_op_ns();
  EXPECT_LT(fast, 10.0);
  EXPECT_GT(slow, 10 * fast);
}

TEST(Allocator, HeapStatsBalance) {
  Allocator alloc(TestConfig());
  Rng rng(123);
  std::vector<uintptr_t> live;
  for (int i = 0; i < 30000; ++i) {
    if (!live.empty() && rng.Bernoulli(0.5)) {
      size_t k = rng.UniformInt(live.size());
      alloc.Free(live[k], 0, i);
      live[k] = live.back();
      live.pop_back();
    } else {
      live.push_back(alloc.Allocate(1 + rng.UniformInt(60000), 0, i));
    }
  }
  HeapStats stats = alloc.CollectStats();
  EXPECT_GT(stats.live_bytes, 0u);
  EXPECT_GE(stats.live_bytes, stats.requested_bytes);
  // The heap footprint covers live + cached-free memory and never exceeds
  // what was mapped from the system (minus released).
  EXPECT_LE(stats.HeapBytes(),
            alloc.system_stats().mapped_bytes);
  EXPECT_GT(stats.ExternalFragmentation(), 0u);
}

TEST(Allocator, FreeFromAnyVcpuIsAccepted) {
  Allocator alloc(TestConfig());
  uintptr_t p = alloc.Allocate(128, 0, 0);
  alloc.Free(p, 3, 0);  // freed by a different vCPU
  HeapStats stats = alloc.CollectStats();
  EXPECT_EQ(stats.live_bytes, 0u);
  // The object now sits in vCPU 3's cache.
  EXPECT_GT(alloc.cpu_caches().GetVcpuStats(3).used_bytes, 0u);
}

TEST(Allocator, MaintainRunsBackgroundTasks) {
  AllocatorConfig config = TestBuilder().WithDynamicCpuCaches().Build();
  Allocator alloc(config);
  std::vector<uintptr_t> live;
  for (int i = 0; i < 10000; ++i) {
    live.push_back(alloc.Allocate(64, 0, 0));
  }
  for (uintptr_t p : live) alloc.Free(p, 1, 0);
  // Maintain must not crash and should trigger resize + release paths.
  alloc.Maintain(Seconds(10));
  alloc.Maintain(Seconds(20));
  SUCCEED();
}

TEST(Allocator, AllocationHistogramsTrackSizes) {
  Allocator alloc(TestConfig());
  alloc.Allocate(100, 0, 0);
  alloc.Allocate(100, 0, 0);
  alloc.Allocate(1 << 20, 0, 0);
  EXPECT_EQ(alloc.alloc_count_hist().count(), 3u);
  // By count, small objects dominate; by bytes, the 1 MiB one does.
  EXPECT_GT(alloc.alloc_count_hist().FractionBelow(1024), 0.6);
  EXPECT_GT(alloc.alloc_bytes_hist().FractionAtLeast(1 << 19), 0.9);
}

TEST(Allocator, SampledAllocationsChargedSampledCycles) {
  AllocatorConfig config = TestBuilder().WithSampleIntervalBytes(4096).Build();
  Allocator alloc(config);
  for (int i = 0; i < 1000; ++i) alloc.Allocate(512, 0, 0);
  EXPECT_GT(alloc.sampler().samples_taken(), 50u);
  EXPECT_GT(alloc.cycle_breakdown().sampled_ns, 0.0);
}

TEST(Allocator, VcpuDomainMappingValidated) {
  AllocatorConfig config =
      TestBuilder().WithNucaTransferCache().WithLlcDomains(2).Build();
  Allocator alloc(config);
  alloc.SetVcpuDomain(0, 1);
  EXPECT_EQ(alloc.DomainOfVcpu(0), 1);
}

TEST(AllocatorDeathTest, InvalidDomainIsFatal) {
  AllocatorConfig config = TestBuilder().WithLlcDomains(2).Build();
  Allocator alloc(config);
  EXPECT_DEATH(alloc.SetVcpuDomain(0, 5), "CHECK failed");
}

}  // namespace
}  // namespace wsc::tcmalloc
