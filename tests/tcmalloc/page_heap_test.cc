// Tests for the composed page heap: request routing, donation, coverage,
// and the Fig. 15 component breakdown.

#include "tcmalloc/page_heap.h"

#include <gtest/gtest.h>

namespace wsc::tcmalloc {
namespace {

class PageHeapTest : public ::testing::Test {
 protected:
  PageHeapTest()
      : config_(MakeConfig()),
        system_(config_.arena_base, config_.arena_bytes),
        pagemap_(system_.base_page(), system_.arena_pages()),
        heap_(&SizeClasses::Default(), config_, &system_, &pagemap_) {}

  static AllocatorConfig MakeConfig() {
    return AllocatorConfig::Builder()
        .WithArena(uintptr_t{1} << 40, size_t{16} << 30)
        .Build();
  }

  AllocatorConfig config_;
  SystemAllocator system_;
  PageMap pagemap_;
  PageHeap heap_;
};

TEST_F(PageHeapTest, SmallSpanComesFromFillerAndIsMapped) {
  const SizeClasses& sc = SizeClasses::Default();
  int cls = sc.ClassFor(64);
  Span* span = heap_.NewSpan(cls);
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->size_class(), cls);
  EXPECT_EQ(span->num_pages(), sc.pages_per_span(cls));
  EXPECT_EQ(pagemap_.LookupAddr(span->start_addr()), span);
  PageHeapStats stats = heap_.stats();
  EXPECT_EQ(stats.filler_used, LengthToBytes(span->num_pages()));
  heap_.ReturnSpan(span);
  EXPECT_EQ(heap_.stats().filler_used, 0u);
}

TEST_F(PageHeapTest, SpanIdsAreUnique) {
  Span* a = heap_.NewSpan(0);
  Span* b = heap_.NewSpan(0);
  EXPECT_NE(a->span_id, b->span_id);
  heap_.ReturnSpan(a);
  heap_.ReturnSpan(b);
}

TEST_F(PageHeapTest, SubHugepageLargeSpanUsesFiller) {
  // 1 MiB = 128 pages < 256: filler, registered as capacity-1.
  Span* span = heap_.NewLargeSpan(128);
  EXPECT_TRUE(span->is_large());
  EXPECT_GT(heap_.stats().filler_used, 0u);
  heap_.FreeLargeSpan(span);
  EXPECT_EQ(heap_.stats().filler_used, 0u);
}

TEST_F(PageHeapTest, SlightlyOverHugepageUsesRegion) {
  // 300 pages = 2.34 MiB ("slightly exceeds a hugepage").
  Span* span = heap_.NewLargeSpan(300);
  PageHeapStats stats = heap_.stats();
  EXPECT_EQ(stats.region_used, LengthToBytes(300));
  EXPECT_EQ(stats.cache_used, 0u);
  heap_.FreeLargeSpan(span);
  EXPECT_EQ(heap_.stats().region_used, 0u);
}

TEST_F(PageHeapTest, BigAllocationUsesCacheAndDonatesSlack) {
  // 1100 pages = 8.6 MiB -> 5 hugepages with 180 pages of slack donated.
  Span* span = heap_.NewLargeSpan(1100);
  PageHeapStats stats = heap_.stats();
  EXPECT_GT(stats.cache_used, 0u);
  FillerStats filler = heap_.filler_stats();
  EXPECT_EQ(filler.donated_hugepages, 1u);
  // The donated tail can serve small spans.
  Span* small = heap_.NewSpan(0);
  EXPECT_EQ(HugePageContainingAddr(small->start_addr()).index,
            HugePageContainingAddr(span->start_addr()).index + 4);
  heap_.ReturnSpan(small);
  heap_.FreeLargeSpan(span);
  EXPECT_EQ(heap_.stats().cache_used, 0u);
  EXPECT_EQ(heap_.filler_stats().used_pages, 0u);
}

TEST_F(PageHeapTest, ExactHugepageMultipleHasNoDonation) {
  Span* span = heap_.NewLargeSpan(4 * kPagesPerHugePage);
  EXPECT_EQ(heap_.filler_stats().donated_hugepages, 0u);
  heap_.FreeLargeSpan(span);
  PageHeapStats stats = heap_.stats();
  EXPECT_EQ(stats.cache_used, 0u);
  EXPECT_GT(stats.cache_free + stats.cache_released, 0u);
}

TEST_F(PageHeapTest, CoverageIsFullWithoutSubrelease) {
  heap_.NewSpan(3);
  EXPECT_DOUBLE_EQ(heap_.HugepageCoverage(), 1.0);
  EXPECT_TRUE(heap_.IsHugepageBacked(config_.arena_base));
}

TEST_F(PageHeapTest, SubreleaseLowersCoverage) {
  const SizeClasses& sc = SizeClasses::Default();
  int cls = sc.ClassFor(8192);
  // Two dense hugepages, then free most spans of the second.
  std::vector<Span*> spans;
  for (int i = 0; i < 400; ++i) spans.push_back(heap_.NewSpan(cls));
  for (size_t i = 150; i < spans.size(); ++i) heap_.ReturnSpan(spans[i]);
  heap_.BackgroundRelease();
  EXPECT_LT(heap_.HugepageCoverage(), 1.0);
  FillerStats filler = heap_.filler_stats();
  EXPECT_GT(filler.released_hugepages, 0u);
  // Some live address now sits on a broken hugepage.
  bool any_broken = false;
  for (size_t i = 0; i < 150; ++i) {
    if (!heap_.IsHugepageBacked(spans[i]->start_addr())) any_broken = true;
  }
  EXPECT_TRUE(any_broken);
}

TEST_F(PageHeapTest, Fig15StyleBreakdownCoversComponents) {
  heap_.NewSpan(0);             // filler
  heap_.NewLargeSpan(300);      // region
  heap_.NewLargeSpan(1024);     // cache (4 hugepages, no slack)
  PageHeapStats stats = heap_.stats();
  EXPECT_GT(stats.filler_used, 0u);
  EXPECT_GT(stats.region_used, 0u);
  EXPECT_GT(stats.cache_used, 0u);
  EXPECT_EQ(stats.TotalInUse(),
            stats.filler_used + stats.region_used + stats.cache_used);
}

TEST_F(PageHeapTest, MmapChargedOnlyOnSystemGrowth) {
  uint64_t calls = system_.stats().mmap_calls;
  Span* a = heap_.NewLargeSpan(1024);
  EXPECT_GT(system_.stats().mmap_calls, calls);
  heap_.FreeLargeSpan(a);
  calls = system_.stats().mmap_calls;
  Span* b = heap_.NewLargeSpan(1024);  // reuses the cached run
  EXPECT_EQ(system_.stats().mmap_calls, calls);
  heap_.FreeLargeSpan(b);
}

}  // namespace
}  // namespace wsc::tcmalloc
