// Tests for the radix PageMap.

#include "tcmalloc/pagemap.h"

#include <gtest/gtest.h>

#include "tcmalloc/span.h"

namespace wsc::tcmalloc {
namespace {

TEST(PageMap, InsertLookupErase) {
  PageMap map(PageId{1 << 20}, 1 << 22);
  Span span(PageId{(1 << 20) + 100}, 4, 3, 1024, 32);
  map.Insert(&span);
  for (Length i = 0; i < 4; ++i) {
    EXPECT_EQ(map.Lookup(span.first_page() + i), &span);
  }
  EXPECT_EQ(map.Lookup(span.first_page() - 1), nullptr);
  EXPECT_EQ(map.Lookup(span.first_page() + 4), nullptr);
  map.Erase(&span);
  EXPECT_EQ(map.Lookup(span.first_page()), nullptr);
}

TEST(PageMap, LookupAddrFindsInteriorAddresses) {
  PageMap map(PageId{1 << 20}, 1 << 22);
  Span span(PageId{(1 << 20) + 7}, 2, 3, 512, 32);
  map.Insert(&span);
  EXPECT_EQ(map.LookupAddr(span.start_addr()), &span);
  EXPECT_EQ(map.LookupAddr(span.start_addr() + 513), &span);
  EXPECT_EQ(map.LookupAddr(span.start_addr() + span.span_bytes() - 1), &span);
  EXPECT_EQ(map.LookupAddr(span.start_addr() + span.span_bytes()), nullptr);
}

TEST(PageMap, SpansCrossingLeafBoundaries) {
  // Leaf size is 2^14 pages; place a span straddling the boundary.
  PageMap map(PageId{0}, 1 << 20);
  Span span(PageId{(1 << 14) - 2}, 4, 1, 2048, 16);
  map.Insert(&span);
  for (Length i = 0; i < 4; ++i) {
    EXPECT_EQ(map.Lookup(span.first_page() + i), &span);
  }
  map.Erase(&span);
  for (Length i = 0; i < 4; ++i) {
    EXPECT_EQ(map.Lookup(span.first_page() + i), nullptr);
  }
}

TEST(PageMap, LookupOutOfRangeReturnsNull) {
  PageMap map(PageId{1000}, 1000);
  EXPECT_EQ(map.Lookup(PageId{999}), nullptr);
  EXPECT_EQ(map.Lookup(PageId{2000}), nullptr);
  EXPECT_EQ(map.Lookup(PageId{0}), nullptr);
}

TEST(PageMapDeathTest, DoubleInsertIsFatal) {
  PageMap map(PageId{0}, 1 << 16);
  Span a(PageId{10}, 2, 0, 8, 1024);
  Span b(PageId{11}, 2, 0, 8, 1024);  // overlaps page 11
  map.Insert(&a);
  EXPECT_DEATH(map.Insert(&b), "CHECK failed");
}

TEST(PageMap, ManySpansNoInterference) {
  PageMap map(PageId{0}, 1 << 18);
  std::vector<std::unique_ptr<Span>> spans;
  for (int i = 0; i < 1000; ++i) {
    spans.push_back(
        std::make_unique<Span>(PageId{static_cast<uintptr_t>(i * 8)}, 8, 0,
                               4096, 16));
    map.Insert(spans.back().get());
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(map.Lookup(PageId{static_cast<uintptr_t>(i * 8 + 3)}),
              spans[i].get());
  }
}

}  // namespace
}  // namespace wsc::tcmalloc
