// Tests for the PageTracker bitmap and the hugepage filler, including the
// lifetime-aware placement of Section 4.4.

#include "tcmalloc/huge_page_filler.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace wsc::tcmalloc {
namespace {

// --- PageTracker ---

TEST(PageTracker, AllocateFirstFitAndFree) {
  PageTracker t(HugePageId{100});
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.LongestFreeRange(), kPagesPerHugePage);
  int a = t.Allocate(10);
  EXPECT_EQ(a, 0);
  int b = t.Allocate(20);
  EXPECT_EQ(b, 10);
  EXPECT_EQ(t.used_pages(), 30u);
  t.Free(a, 10);
  EXPECT_EQ(t.used_pages(), 20u);
  // First fit reuses the freed hole.
  EXPECT_EQ(t.Allocate(10), 0);
}

TEST(PageTracker, LongestFreeRangeTracksHoles) {
  PageTracker t(HugePageId{1});
  int a = t.Allocate(100);
  int b = t.Allocate(100);
  (void)b;
  EXPECT_EQ(t.LongestFreeRange(), kPagesPerHugePage - 200);
  t.Free(a, 100);
  EXPECT_EQ(t.LongestFreeRange(), 100u);  // hole > tail (56)
}

TEST(PageTracker, AllocateFailsWithoutContiguousRun) {
  PageTracker t(HugePageId{1});
  // Allocate everything then free alternating 1-page holes.
  ASSERT_EQ(t.Allocate(kPagesPerHugePage), 0);
  for (size_t p = 0; p < kPagesPerHugePage; p += 2) t.Free(p, 1);
  EXPECT_EQ(t.free_pages(), kPagesPerHugePage / 2);
  EXPECT_EQ(t.LongestFreeRange(), 1u);
  EXPECT_EQ(t.Allocate(2), -1);  // no 2-page run despite 128 free pages
  EXPECT_EQ(t.Allocate(1), 0);
}

TEST(PageTracker, FullTracker) {
  PageTracker t(HugePageId{1});
  EXPECT_EQ(t.Allocate(kPagesPerHugePage), 0);
  EXPECT_TRUE(t.full());
  EXPECT_EQ(t.Allocate(1), -1);
}

TEST(PageTrackerDeathTest, DoublePageFreeIsFatal) {
  PageTracker t(HugePageId{1});
  t.Allocate(4);
  t.Free(0, 4);
  EXPECT_DEATH(t.Free(0, 4), "CHECK failed");
}

TEST(PageTrackerDeathTest, MarkAllocatedOverlapIsFatal) {
  PageTracker t(HugePageId{1});
  t.MarkAllocated(0, 10);
  EXPECT_DEATH(t.MarkAllocated(5, 10), "CHECK failed");
}

// --- HugePageFiller ---

class FillerHarness : public HugePageBacking {
 public:
  explicit FillerHarness(bool lifetime_aware, int threshold = 16)
      : filler_(lifetime_aware, threshold, this) {}

  HugePageId GetHugePage() override { return HugePageId{next_hp_++}; }
  void PutHugePage(HugePageId hp, bool intact) override {
    sunk_.push_back({hp, intact});
  }

  HugePageFiller& filler() { return filler_; }
  const std::vector<std::pair<HugePageId, bool>>& sunk() const {
    return sunk_;
  }
  size_t hugepages_created() const { return next_hp_ - 1000; }

 private:
  uintptr_t next_hp_ = 1000;
  std::vector<std::pair<HugePageId, bool>> sunk_;
  HugePageFiller filler_;
};

TEST(HugePageFiller, PacksSpansOntoOneHugepage) {
  FillerHarness h(false);
  std::set<uintptr_t> pages;
  for (int i = 0; i < 16; ++i) {
    PageId p = h.filler().Allocate(4, /*span_capacity=*/100);
    EXPECT_TRUE(pages.insert(p.index).second);
    EXPECT_EQ(HugePageContaining(p).index, 1000u);  // all on hugepage #1
  }
  EXPECT_EQ(h.hugepages_created(), 1u);
  FillerStats stats = h.filler().stats();
  EXPECT_EQ(stats.used_pages, 64u);
  EXPECT_EQ(stats.free_pages, kPagesPerHugePage - 64);
}

TEST(HugePageFiller, PrefersFullestHugepage) {
  FillerHarness h(false);
  // Create two hugepages: fill hp0 almost fully, hp1 lightly.
  PageId a = h.filler().Allocate(250, 100);  // hp0: 250/256 used
  PageId b = h.filler().Allocate(100, 100);  // hp1: 100/256 used
  ASSERT_NE(HugePageContaining(a).index, HugePageContaining(b).index);
  // A 4-page span fits both; it must go to the fuller hp0.
  PageId c = h.filler().Allocate(4, 100);
  EXPECT_EQ(HugePageContaining(c).index, HugePageContaining(a).index);
}

TEST(HugePageFiller, HugepageFreedWhenEmptyAndSunkIntact) {
  FillerHarness h(false);
  PageId p = h.filler().Allocate(64, 100);
  h.filler().Free(p, 64);
  ASSERT_EQ(h.sunk().size(), 1u);
  EXPECT_EQ(h.sunk()[0].first.index, 1000u);
  EXPECT_TRUE(h.sunk()[0].second);  // intact: never subreleased
  EXPECT_EQ(h.filler().stats().total_hugepages, 0u);
  EXPECT_EQ(h.filler().stats().hugepages_freed, 1u);
}

TEST(HugePageFiller, LifetimeSetsUseSeparateHugepages) {
  FillerHarness h(true, /*threshold=*/16);
  // capacity >= 16 -> long-lived set; capacity < 16 -> short-lived set.
  PageId long_lived = h.filler().Allocate(4, /*span_capacity=*/512);
  PageId short_lived = h.filler().Allocate(4, /*span_capacity=*/1);
  EXPECT_NE(HugePageContaining(long_lived).index,
            HugePageContaining(short_lived).index);
  // More allocations of each category co-locate with their own set.
  PageId long2 = h.filler().Allocate(8, 100);
  PageId short2 = h.filler().Allocate(8, 2);
  EXPECT_EQ(HugePageContaining(long2).index,
            HugePageContaining(long_lived).index);
  EXPECT_EQ(HugePageContaining(short2).index,
            HugePageContaining(short_lived).index);
}

TEST(HugePageFiller, LifetimeThresholdBoundary) {
  FillerHarness h(true, /*threshold=*/16);
  PageId at = h.filler().Allocate(4, /*span_capacity=*/16);   // long-lived
  PageId below = h.filler().Allocate(4, /*span_capacity=*/15);  // short
  EXPECT_NE(HugePageContaining(at).index, HugePageContaining(below).index);
}

TEST(HugePageFiller, LifetimeOffUsesOneSet) {
  FillerHarness h(false);
  PageId a = h.filler().Allocate(4, 512);
  PageId b = h.filler().Allocate(4, 1);
  EXPECT_EQ(HugePageContaining(a).index, HugePageContaining(b).index);
}

TEST(HugePageFiller, DonatedTailServesSpans) {
  FillerHarness h(false);
  // Donate a hugepage whose first 200 pages belong to a large span.
  h.filler().Donate(HugePageId{5000}, /*donated_offset=*/200);
  EXPECT_EQ(h.filler().stats().donated_hugepages, 1u);
  // A small span that fits the 56-page tail lands there only when no
  // normal hugepage can serve it (donated pages are a last resort).
  PageId p = h.filler().Allocate(10, 100);
  EXPECT_EQ(HugePageContaining(p).index, 5000u);
  EXPECT_EQ(h.filler().stats().donated_hugepages, 0u);  // reused => normal
  // Freeing everything releases the hugepage.
  h.filler().Free(p, 10);
  h.filler().FreeDonatedHead(HugePageId{5000}, 200);
  ASSERT_EQ(h.sunk().size(), 1u);
  EXPECT_EQ(h.sunk()[0].first.index, 5000u);
}

TEST(HugePageFiller, SubreleaseBreaksSparsestHugepages) {
  FillerHarness h(false);
  // hp0 nearly full, hp1 sparse.
  PageId a = h.filler().Allocate(250, 100);
  PageId b = h.filler().Allocate(100, 100);
  (void)a;
  // Free most of hp1 to make it sparse.
  h.filler().Free(PageId{b.index}, 99);
  Length released = h.filler().SubreleaseExcess(/*target_fraction=*/0.05);
  EXPECT_GT(released, 0u);
  FillerStats stats = h.filler().stats();
  EXPECT_EQ(stats.released_hugepages, 1u);
  EXPECT_GT(stats.released_free_pages, 0u);
  // The sparse hugepage is the broken one.
  EXPECT_FALSE(h.filler().IsIntactHugepage(
      HugePageContaining(b).Addr()));
  EXPECT_TRUE(h.filler().IsIntactHugepage(
      HugePageContaining(a).Addr()));
}

TEST(HugePageFiller, SubreleaseNoopBelowTarget) {
  FillerHarness h(false);
  h.filler().Allocate(250, 100);  // dense
  EXPECT_EQ(h.filler().SubreleaseExcess(0.5), 0u);
  EXPECT_EQ(h.filler().stats().released_hugepages, 0u);
}

TEST(HugePageFiller, BrokenHugepageSinksNotIntact) {
  FillerHarness h(false);
  PageId a = h.filler().Allocate(50, 100);
  h.filler().Allocate(240, 100);  // second hugepage, dense
  // Make hp(a) sparse and subrelease it.
  h.filler().Free(a, 49);
  ASSERT_GT(h.filler().SubreleaseExcess(0.01), 0u);
  // Drain the last page: the hugepage leaves broken.
  h.filler().Free(PageId{a.index + 49}, 1);
  ASSERT_EQ(h.sunk().size(), 1u);
  EXPECT_FALSE(h.sunk()[0].second);
}

TEST(HugePageFiller, DemandGuardBlocksSubrelease) {
  // The skip-subrelease policy: free pages covered by the demand guard
  // (recent peak minus current use) are never released.
  FillerHarness h(false);
  PageId a = h.filler().Allocate(200, 100);
  h.filler().Free(a, 150);  // hp0: 50 used, 206 free (intact)
  // Guard covers all the free pages: nothing may be released.
  EXPECT_EQ(h.filler().SubreleaseExcess(0.01, /*demand_guard_pages=*/206),
            0u);
  EXPECT_EQ(h.filler().stats().released_hugepages, 0u);
  // Without the guard the same call releases.
  EXPECT_GT(h.filler().SubreleaseExcess(0.01, 0), 0u);
}

TEST(HugePageFiller, PartialGuardReleasesOnlyExcess) {
  FillerHarness h(false);
  PageId a = h.filler().Allocate(250, 100);
  h.filler().Allocate(100, 100);  // second hugepage
  h.filler().Free(a, 249);        // hp0: 1 used, 255 free
  // Guard protects 100 pages; the excess above guard+slack is released.
  Length released = h.filler().SubreleaseExcess(0.0, 100);
  EXPECT_GT(released, 0u);
}

TEST(HugePageFiller, UsedPagesOnIntactHugepages) {
  FillerHarness h(false);
  h.filler().Allocate(100, 100);
  EXPECT_EQ(h.filler().UsedPagesOnIntactHugepages(), 100u);
}

TEST(HugePageFiller, OwnsOnlyItsHugepages) {
  FillerHarness h(false);
  PageId p = h.filler().Allocate(4, 100);
  EXPECT_TRUE(h.filler().Owns(p.Addr()));
  EXPECT_FALSE(h.filler().Owns(uintptr_t{1} << 50));
}

}  // namespace
}  // namespace wsc::tcmalloc
