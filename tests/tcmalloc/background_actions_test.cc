// Tests for the allocator's background actions: idle per-CPU cache
// reclaim and transfer-cache cold-object draining. These are the paths
// that let spans drain back to the central free list when demand for a
// class subsides (prerequisites for Figs. 13/14/16).

#include <gtest/gtest.h>

#include <vector>

#include "tcmalloc/allocator.h"
#include "tcmalloc/per_cpu_cache.h"
#include "tcmalloc/transfer_cache.h"

namespace wsc::tcmalloc {
namespace {

AllocatorConfig SmallConfig() {
  return AllocatorConfig::Builder()
      .WithVcpus(4)
      .WithCpuCacheBytes(256 * 1024)
      .WithCpuCacheMinBytes(16 * 1024)
      .Build();
}

TEST(IdleReclaim, FlushesCachesWithNoRecentOps) {
  CpuCacheSet cache(&SizeClasses::Default(), SmallConfig());
  uintptr_t base = uintptr_t{1} << 44;
  for (int i = 0; i < 10; ++i) cache.Deallocate(1, 0, base + 8 * i);
  ASSERT_GT(cache.GetVcpuStats(1).used_bytes, 0u);

  // First step: vCPU 1 had ops this interval (the deallocations), so it
  // is not reclaimed yet.
  size_t flushed = 0;
  auto sink = [&flushed](int, const uintptr_t*, int n) { flushed += n; };
  cache.ResizeStep(sink);
  EXPECT_EQ(flushed, 0u);
  EXPECT_GT(cache.GetVcpuStats(1).used_bytes, 0u);

  // Second step with no intervening activity: idle -> reclaimed.
  cache.ResizeStep(sink);
  EXPECT_EQ(flushed, 10u);
  EXPECT_EQ(cache.GetVcpuStats(1).used_bytes, 0u);
}

TEST(IdleReclaim, ActiveCachesAreNotTouched) {
  CpuCacheSet cache(&SizeClasses::Default(), SmallConfig());
  uintptr_t base = uintptr_t{1} << 44;
  for (int i = 0; i < 10; ++i) cache.Deallocate(2, 0, base + 8 * i);
  cache.ResizeStep([](int, const uintptr_t*, int) {});
  // Keep vCPU 2 active.
  cache.Allocate(2, 0);
  size_t flushed = 0;
  cache.ResizeStep([&flushed](int, const uintptr_t*, int n) { flushed += n; });
  EXPECT_EQ(flushed, 0u);
  EXPECT_GT(cache.GetVcpuStats(2).used_bytes, 0u);
}

TEST(DrainCold, MovesOnlyUntouchedCentralObjects) {
  AllocatorConfig config;
  TransferCache tc(&SizeClasses::Default(), config);
  int cls = 3;
  uintptr_t base = uintptr_t{1} << 44;
  std::vector<uintptr_t> objs;
  for (int i = 0; i < 8; ++i) objs.push_back(base + 64 * i);
  ASSERT_EQ(tc.Insert(0, cls, objs.data(), 8), 8);

  // Arm the low-water mark.
  size_t drained = 0;
  auto sink = [&drained](int, const uintptr_t*, int n) { drained += n; };
  tc.DrainCold(sink);
  EXPECT_EQ(drained, 0u);  // everything arrived during this interval

  // Touch two objects (remove + reinsert): low water = 6.
  uintptr_t out[2];
  ASSERT_EQ(tc.Remove(0, cls, out, 2), 2);
  tc.Insert(0, cls, out, 2);
  tc.DrainCold(sink);
  EXPECT_EQ(drained, 6u);

  // The remaining two are still available.
  uintptr_t rest[4];
  EXPECT_EQ(tc.Remove(0, cls, rest, 4), 2);
}

TEST(DrainCold, DrainsFromTheColdBottomOfTheStack) {
  AllocatorConfig config;
  TransferCache tc(&SizeClasses::Default(), config);
  int cls = 0;
  uintptr_t cold = 0x100000000000;
  uintptr_t hot = 0x200000000000;
  tc.Insert(0, cls, &cold, 1);
  tc.DrainCold([](int, const uintptr_t*, int) {});  // arm
  tc.Insert(0, cls, &hot, 1);
  std::vector<uintptr_t> drained;
  tc.DrainCold([&drained](int, const uintptr_t* objs, int n) {
    for (int i = 0; i < n; ++i) drained.push_back(objs[i]);
  });
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0], cold);  // the old object left; the new one stayed
}

TEST(BackgroundActions, MaintainDrainsIdleMemoryEndToEnd) {
  // Allocate, free everything, and let two Maintain passes move all
  // cached objects back so every span returns to the page heap.
  AllocatorConfig config = SmallConfig();
  Allocator alloc(config);
  std::vector<uintptr_t> objs;
  for (int i = 0; i < 5000; ++i) {
    objs.push_back(alloc.Allocate(64, i % 4, 0));
  }
  for (uintptr_t p : objs) alloc.Free(p, 0, 0);

  alloc.Maintain(Seconds(10));
  alloc.Maintain(Seconds(20));
  alloc.Maintain(Seconds(30));

  HeapStats stats = alloc.CollectStats();
  EXPECT_EQ(stats.live_bytes, 0u);
  EXPECT_EQ(stats.cpu_cache_free, 0u);       // idle caches reclaimed
  EXPECT_EQ(stats.transfer_cache_free, 0u);  // cold objects drained
  EXPECT_EQ(stats.central_free_list_free, 0u);  // spans fully returned
  uint64_t returned = 0;
  int cls = alloc.size_classes().ClassFor(64);
  returned = alloc.central_free_list(cls).stats().returned_spans;
  EXPECT_GT(returned, 0u);
}

}  // namespace
}  // namespace wsc::tcmalloc
