// Tests for the per-CPU cache set, including the heterogeneous
// (usage-based dynamic) resizing algorithm of Section 4.1.

#include "tcmalloc/per_cpu_cache.h"

#include <gtest/gtest.h>

#include <vector>

namespace wsc::tcmalloc {
namespace {

AllocatorConfig::Builder SmallBuilder() {
  return AllocatorConfig::Builder()
      .WithVcpus(8)
      .WithCpuCacheBytes(64 * 1024)
      .WithCpuCacheMinBytes(8 * 1024);
}

AllocatorConfig SmallConfig() { return SmallBuilder().Build(); }

class PerCpuCacheTest : public ::testing::Test {
 protected:
  PerCpuCacheTest() : cache_(&SizeClasses::Default(), SmallConfig()) {}

  // Fabricated but well-formed object addresses.
  uintptr_t Addr(int i) { return (uintptr_t{1} << 44) + 8 * (i + 1); }

  CpuCacheSet cache_;
};

TEST_F(PerCpuCacheTest, MissOnEmptyCountsUnderflow) {
  EXPECT_EQ(cache_.Allocate(0, 0), 0u);
  auto stats = cache_.GetVcpuStats(0);
  EXPECT_EQ(stats.underflows, 1u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_TRUE(stats.populated);
}

TEST_F(PerCpuCacheTest, DeallocThenAllocHitsLifo) {
  EXPECT_TRUE(cache_.Deallocate(0, 3, Addr(1)));
  EXPECT_TRUE(cache_.Deallocate(0, 3, Addr(2)));
  EXPECT_EQ(cache_.Allocate(0, 3), Addr(2));  // LIFO for locality
  EXPECT_EQ(cache_.Allocate(0, 3), Addr(1));
  auto stats = cache_.GetVcpuStats(0);
  EXPECT_EQ(stats.hits, 4u);
  EXPECT_EQ(stats.used_bytes, 0u);
}

TEST_F(PerCpuCacheTest, CachesAreIsolatedPerVcpu) {
  EXPECT_TRUE(cache_.Deallocate(0, 3, Addr(1)));
  EXPECT_EQ(cache_.Allocate(1, 3), 0u);  // other vCPU misses
  EXPECT_EQ(cache_.Allocate(0, 3), Addr(1));
}

TEST_F(PerCpuCacheTest, OverflowAtByteCapacity) {
  // Fill class index for 256 KiB objects until the 64 KiB budget is hit:
  // no 256 KiB object ever fits... use a mid class instead.
  const SizeClasses& sc = SizeClasses::Default();
  int cls = sc.ClassFor(8192);
  size_t size = sc.class_size(cls);
  size_t capacity = SmallConfig().per_cpu_cache_bytes;
  int fits = static_cast<int>(capacity / size);
  for (int i = 0; i < fits; ++i) {
    EXPECT_TRUE(cache_.Deallocate(2, cls, Addr(i)));
  }
  EXPECT_FALSE(cache_.Deallocate(2, cls, Addr(fits)));  // overflow
  auto stats = cache_.GetVcpuStats(2);
  EXPECT_EQ(stats.overflows, 1u);
  EXPECT_LE(stats.used_bytes, capacity);
}

TEST_F(PerCpuCacheTest, RefillRespectsCapacity) {
  const SizeClasses& sc = SizeClasses::Default();
  int cls = sc.ClassFor(32 * 1024);
  size_t size = sc.class_size(cls);
  std::vector<uintptr_t> objs;
  for (int i = 0; i < 10; ++i) objs.push_back(Addr(i));
  int accepted = cache_.Refill(0, cls, objs.data(), 10);
  EXPECT_EQ(accepted,
            static_cast<int>(SmallConfig().per_cpu_cache_bytes / size));
  EXPECT_LE(cache_.GetVcpuStats(0).used_bytes,
            SmallConfig().per_cpu_cache_bytes);
}

TEST_F(PerCpuCacheTest, ExtractBatchRemovesObjects) {
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(cache_.Deallocate(0, 0, Addr(i)));
  }
  uintptr_t out[8];
  EXPECT_EQ(cache_.ExtractBatch(0, 0, out, 8), 5);
  EXPECT_EQ(cache_.GetVcpuStats(0).used_bytes, 0u);
  EXPECT_EQ(cache_.Allocate(0, 0), 0u);  // empty again
}

TEST_F(PerCpuCacheTest, TotalCachedBytesSumsAcrossVcpus) {
  cache_.Deallocate(0, 0, Addr(1));  // 8 B class
  cache_.Deallocate(1, 0, Addr(2));
  EXPECT_EQ(cache_.TotalCachedBytes(), 16u);
}

TEST_F(PerCpuCacheTest, FlushAllEmptiesEverything) {
  for (int v = 0; v < 4; ++v) {
    for (int i = 0; i < 10; ++i) cache_.Deallocate(v, 2, Addr(v * 16 + i));
  }
  size_t flushed = 0;
  cache_.FlushAll([&](int, const uintptr_t*, int n) { flushed += n; });
  EXPECT_EQ(flushed, 40u);
  EXPECT_EQ(cache_.TotalCachedBytes(), 0u);
}

TEST(PerCpuCacheStatic, StaticSizingNeverMovesCapacity) {
  AllocatorConfig config =
      SmallBuilder().WithDynamicCpuCaches(false).Build();
  CpuCacheSet cache(&SizeClasses::Default(), config);
  // Create misses on vCPU 0.
  for (int i = 0; i < 100; ++i) cache.Allocate(0, 0);
  cache.Allocate(1, 0);  // populate vCPU 1
  cache.ResizeStep([](int, const uintptr_t*, int) {});
  EXPECT_EQ(cache.GetVcpuStats(0).capacity_bytes,
            config.per_cpu_cache_bytes);
  EXPECT_EQ(cache.GetVcpuStats(1).capacity_bytes,
            config.per_cpu_cache_bytes);
  // Interval miss counters are still reset for telemetry.
  EXPECT_EQ(cache.GetVcpuStats(0).interval_misses, 0u);
}

TEST(PerCpuCacheDynamic, CapacityMovesTowardsMissingCaches) {
  AllocatorConfig config = SmallBuilder()
                               .WithDynamicCpuCaches()
                               .WithCpuCacheGrowCandidates(1)
                               .Build();
  CpuCacheSet cache(&SizeClasses::Default(), config);
  // vCPU 0 misses a lot; vCPUs 1-3 are idle but populated.
  for (int v = 1; v <= 3; ++v) cache.Allocate(v, 0);
  for (int i = 0; i < 1000; ++i) cache.Allocate(0, 0);
  size_t before_total = cache.TotalCapacityBytes();
  cache.ResizeStep([](int, const uintptr_t*, int) {});
  // Total capacity is conserved; vCPU 0 grew, someone else shrank.
  EXPECT_EQ(cache.TotalCapacityBytes(), before_total);
  EXPECT_GT(cache.GetVcpuStats(0).capacity_bytes,
            config.per_cpu_cache_bytes);
  size_t min_cap = config.per_cpu_cache_bytes;
  for (int v = 1; v <= 3; ++v) {
    min_cap = std::min(min_cap, cache.GetVcpuStats(v).capacity_bytes);
  }
  EXPECT_LT(min_cap, config.per_cpu_cache_bytes);
}

TEST(PerCpuCacheDynamic, ShrinkEvictsLargestClassesFirst) {
  AllocatorConfig config = SmallBuilder()
                               .WithDynamicCpuCaches()
                               .WithCpuCacheGrowCandidates(1)
                               .WithCpuCacheMinBytes(0)
                               .Build();
  CpuCacheSet cache(&SizeClasses::Default(), config);
  const SizeClasses& sc = SizeClasses::Default();
  int small_cls = sc.ClassFor(8);
  int big_cls = sc.ClassFor(16 * 1024);

  // Fill vCPU 1 near capacity with a mix of small and large objects.
  uintptr_t base = uintptr_t{1} << 44;
  for (int i = 0; i < 3; ++i) {
    cache.Deallocate(1, big_cls, base + i * 100000);
  }
  for (int i = 0; i < 100; ++i) {
    cache.Deallocate(1, small_cls, base + 1000000 + i * 8);
  }
  // vCPU 0 misses so that capacity is stolen from vCPU 1.
  for (int i = 0; i < 1000; ++i) cache.Allocate(0, small_cls);

  std::vector<int> evicted_classes;
  for (int round = 0; round < 10; ++round) {
    // Keep vCPU 1 active so idle reclaim does not flush it wholesale; the
    // capacity steal must evict through EvictToCapacity.
    cache.Allocate(1, big_cls + 1);
    cache.ResizeStep([&](int cls, const uintptr_t*, int n) {
      for (int k = 0; k < n; ++k) evicted_classes.push_back(cls);
    });
    for (int i = 0; i < 1000; ++i) cache.Allocate(0, small_cls);
  }
  ASSERT_FALSE(evicted_classes.empty());
  // The first evictions must come from the larger size class.
  EXPECT_EQ(evicted_classes.front(), big_cls);
}

TEST(PerCpuCacheDynamic, NeverShrinksBelowFloor) {
  AllocatorConfig config = SmallBuilder().WithDynamicCpuCaches().Build();
  CpuCacheSet cache(&SizeClasses::Default(), config);
  cache.Allocate(1, 0);  // populate victim
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 100; ++i) cache.Allocate(0, 0);
    cache.ResizeStep([](int, const uintptr_t*, int) {});
  }
  EXPECT_GE(cache.GetVcpuStats(1).capacity_bytes,
            config.per_cpu_cache_min_bytes);
}

TEST(PerCpuCacheDeathTest, OutOfRangeVcpuIsFatal) {
  CpuCacheSet cache(&SizeClasses::Default(), SmallConfig());
  EXPECT_DEATH(cache.Allocate(8, 0), "CHECK failed");
  EXPECT_DEATH(cache.Allocate(-1, 0), "CHECK failed");
}

}  // namespace
}  // namespace wsc::tcmalloc
