// Tests for the central free list, including the span-prioritization
// redesign of Section 4.3.

#include "tcmalloc/central_free_list.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "tcmalloc/size_classes.h"

namespace wsc::tcmalloc {
namespace {

// Span source handing out spans from a synthetic page range.
class FakeSpanSource : public SpanSource {
 public:
  explicit FakeSpanSource(const SizeClassInfo& info) : info_(info) {}

  Span* NewSpan(int cls) override {
    auto span = new Span(PageId{next_page_}, info_.pages_per_span, cls,
                         info_.size, info_.objects_per_span);
    span->span_id = ++next_id_;
    next_page_ += info_.pages_per_span;
    live_spans_.push_back(span);
    return span;
  }

  void ReturnSpan(Span* span) override {
    ++returned_;
    live_spans_.erase(
        std::find(live_spans_.begin(), live_spans_.end(), span));
    delete span;
  }

  int outstanding() const { return static_cast<int>(live_spans_.size()); }
  int returned() const { return returned_; }
  const std::vector<Span*>& live_spans() const { return live_spans_; }

 private:
  SizeClassInfo info_;
  uintptr_t next_page_ = 1 << 20;
  uint64_t next_id_ = 0;
  int returned_ = 0;
  std::vector<Span*> live_spans_;
};

class CflTest : public ::testing::TestWithParam<int> {  // param: num_lists
 protected:
  CflTest()
      : cls_(SizeClasses::Default().ClassFor(16)),
        info_(SizeClasses::Default().info(cls_)),
        source_(info_),
        cfl_(cls_, info_, GetParam(), &source_) {}

  int cls_;
  SizeClassInfo info_;
  FakeSpanSource source_;
  CentralFreeList cfl_;
};

TEST_P(CflTest, RemoveRangeProducesDistinctObjects) {
  std::vector<uintptr_t> out(100);
  ASSERT_EQ(cfl_.RemoveRange(out.data(), 100), 100);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(std::unique(out.begin(), out.end()), out.end());
  EXPECT_EQ(cfl_.stats().allocations, 100u);
}

TEST_P(CflTest, SpansAllFetchedFromSource) {
  int per_span = info_.objects_per_span;
  std::vector<uintptr_t> objs(3 * per_span + 1);
  ASSERT_EQ(cfl_.RemoveRange(objs.data(), 3 * per_span + 1),
            3 * per_span + 1);
  EXPECT_EQ(source_.outstanding(), 4);
  EXPECT_EQ(cfl_.stats().fetched_spans, 4u);
  auto snap = cfl_.SnapshotSpans();
  EXPECT_EQ(snap.size(), 4u);
}

INSTANTIATE_TEST_SUITE_P(BaselineAndPrioritized, CflTest,
                         ::testing::Values(1, 8));

// A harness that tracks Span* by object address so InsertObject can be
// driven exactly as the allocator does (via its pagemap).
class CflHarness {
 public:
  CflHarness(int cls, int num_lists)
      : info_(SizeClasses::Default().info(cls)),
        source_(info_),
        cfl_(cls, info_, num_lists, &source_) {}

  std::vector<uintptr_t> Allocate(int n) {
    std::vector<uintptr_t> out(n);
    EXPECT_EQ(cfl_.RemoveRange(out.data(), n), n);
    // Associate each object with its span via the address range.
    for (uintptr_t addr : out) RecordSpan(addr);
    return out;
  }

  void Free(uintptr_t addr) {
    Span* span = SpanFor(addr);
    ASSERT_NE(span, nullptr);
    cfl_.InsertObject(span, addr);
  }

  CentralFreeList& cfl() { return cfl_; }
  FakeSpanSource& source() { return source_; }

 private:
  void RecordSpan(uintptr_t addr) { (void)addr; }

  // The allocator resolves spans via its pagemap; the harness resolves
  // them by address range over the source's live spans.
  Span* SpanFor(uintptr_t addr) {
    for (Span* s : source_.live_spans()) {
      if (addr >= s->start_addr() &&
          addr < s->start_addr() + s->span_bytes()) {
        return s;
      }
    }
    return nullptr;
  }

  SizeClassInfo info_;
  FakeSpanSource source_;
  CentralFreeList cfl_;
};

TEST(CflRoundTrip, FullCycleReturnsAllSpans) {
  const SizeClasses& sc = SizeClasses::Default();
  int cls = sc.ClassFor(64);
  CflHarness h(cls, 8);
  auto objs = h.Allocate(1000);
  for (uintptr_t addr : objs) h.Free(addr);
  EXPECT_EQ(h.source().outstanding(), 0);
  EXPECT_GT(h.cfl().stats().returned_spans, 0u);
  EXPECT_EQ(h.cfl().num_spans(), 0u);
  EXPECT_EQ(h.cfl().FreeObjectBytes(), 0u);
}

TEST(CflRoundTrip, FreeObjectBytesTracksPartialSpans) {
  const SizeClasses& sc = SizeClasses::Default();
  int cls = sc.ClassFor(1024);
  CflHarness h(cls, 1);
  int per_span = sc.objects_per_span(cls);
  auto objs = h.Allocate(per_span);  // exactly one full span
  EXPECT_EQ(h.cfl().FreeObjectBytes(), 0u);
  h.Free(objs[0]);
  EXPECT_EQ(h.cfl().FreeObjectBytes(), sc.class_size(cls));
  h.Free(objs[1]);
  EXPECT_EQ(h.cfl().FreeObjectBytes(), 2 * sc.class_size(cls));
}

TEST(CflPrioritization, AllocatesFromFullestSpanFirst) {
  const SizeClasses& sc = SizeClasses::Default();
  int cls = sc.ClassFor(16);
  int per_span = sc.objects_per_span(cls);  // 512 objects per 8 KiB span

  CflHarness h(cls, 8);
  // Create two spans: A full except 2 objects, B nearly empty.
  auto objs = h.Allocate(2 * per_span);
  std::vector<uintptr_t> span_a(objs.begin(), objs.begin() + per_span);
  std::vector<uintptr_t> span_b(objs.begin() + per_span, objs.end());
  // Free 2 from A (A has per_span-2 live), all but 2 of B (B has 2 live).
  h.Free(span_a[0]);
  h.Free(span_a[1]);
  for (int i = 2; i < per_span; ++i) h.Free(span_b[i]);

  // The next allocations must come from A (most allocations, least likely
  // to be released), not from B: exactly the two addresses freed from A.
  auto next = h.Allocate(2);
  std::sort(next.begin(), next.end());
  std::vector<uintptr_t> expected = {span_a[0], span_a[1]};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(next, expected) << "allocated from the nearly-empty span";
}

TEST(CflBaseline, SingleListIgnoresOccupancy) {
  // With one list, allocation picks the front span regardless of
  // occupancy: freeing into span B last puts B in front.
  const SizeClasses& sc = SizeClasses::Default();
  int cls = sc.ClassFor(16);
  int per_span = sc.objects_per_span(cls);
  CflHarness h(cls, 1);
  auto objs = h.Allocate(2 * per_span);
  // Free one object from each span; B freed last -> B is listed first
  // (behavioral contrast to prioritization; both spans now have free
  // objects, and the baseline will serve from whichever is in front).
  h.Free(objs[0]);                    // span A
  h.Free(objs[per_span]);             // span B
  auto next = h.Allocate(1);
  EXPECT_EQ(next[0], objs[per_span]);  // came from B, the list front
}

TEST(CflTelemetry, SnapshotAndReturnedIds) {
  const SizeClasses& sc = SizeClasses::Default();
  int big = sc.num_classes() - 1;  // capacity-1 spans
  CflHarness h(big, 8);
  auto objs = h.Allocate(3);  // three spans
  auto snap = h.cfl().SnapshotSpans();
  EXPECT_EQ(snap.size(), 3u);
  for (const auto& s : snap) EXPECT_EQ(s.live_objects, 1);

  h.Free(objs[1]);
  auto returned = h.cfl().DrainReturnedSpanIds();
  EXPECT_EQ(returned.size(), 1u);
  EXPECT_TRUE(h.cfl().DrainReturnedSpanIds().empty());  // drained
  EXPECT_DOUBLE_EQ(h.cfl().SpanReturnRate(), 1.0 / 3.0);
}

TEST(CflDeathTest, InsertWrongClassIsFatal) {
  const SizeClasses& sc = SizeClasses::Default();
  int cls = sc.ClassFor(16);
  FakeSpanSource source(sc.info(cls));
  CentralFreeList cfl(cls, sc.info(cls), 8, &source);
  Span wrong(PageId{999}, 1, cls + 1, 32, 256);
  EXPECT_DEATH(cfl.InsertObject(&wrong, wrong.start_addr()),
               "CHECK failed");
}

}  // namespace
}  // namespace wsc::tcmalloc
