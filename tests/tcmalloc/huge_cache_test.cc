// Tests for the hugepage cache: run reuse, coalescing, and OS release.

#include "tcmalloc/huge_cache.h"

#include <gtest/gtest.h>

namespace wsc::tcmalloc {
namespace {

constexpr uintptr_t kBase = uintptr_t{1} << 40;

class HugeCacheTest : public ::testing::Test {
 protected:
  HugeCacheTest() : sys_(kBase, 1024 * kHugePageSize), cache_(&sys_, 8) {}

  SystemAllocator sys_;
  HugeCache cache_;
};

TEST_F(HugeCacheTest, AllocateFromSystemThenReuse) {
  HugePageId a = cache_.Allocate(2);
  EXPECT_EQ(cache_.stats().os_allocations, 1u);
  cache_.Release(a, 2);
  EXPECT_EQ(cache_.stats().cached_hugepages, 2u);
  HugePageId b = cache_.Allocate(2);
  EXPECT_EQ(b.index, a.index);  // reused
  EXPECT_EQ(cache_.stats().reuse_hits, 1u);
  EXPECT_EQ(cache_.stats().os_allocations, 1u);
}

TEST_F(HugeCacheTest, BestFitPrefersSmallestSufficientRun) {
  HugePageId a = cache_.Allocate(4);
  HugePageId b = cache_.Allocate(1);
  HugePageId c = cache_.Allocate(2);
  (void)b;
  cache_.Release(a, 4);
  cache_.Release(c, 2);
  // Request 2: the 2-run fits exactly; the 4-run must stay whole.
  HugePageId d = cache_.Allocate(2);
  EXPECT_EQ(d.index, c.index);
}

TEST_F(HugeCacheTest, AdjacentRunsCoalesce) {
  HugePageId a = cache_.Allocate(1);
  HugePageId b = cache_.Allocate(1);
  HugePageId c = cache_.Allocate(1);
  ASSERT_EQ(b.index, a.index + 1);
  ASSERT_EQ(c.index, b.index + 1);
  cache_.Release(a, 1);
  cache_.Release(c, 1);
  cache_.Release(b, 1);  // bridges a and c
  // A 3-hugepage request is served by the coalesced run.
  HugePageId d = cache_.Allocate(3);
  EXPECT_EQ(d.index, a.index);
  EXPECT_EQ(cache_.stats().os_allocations, 3u);  // no new OS allocation
}

TEST_F(HugeCacheTest, ExcessFreeHugepagesReleasedToOs) {
  HugePageId a = cache_.Allocate(20);
  cache_.Release(a, 20);  // cap is 8
  EXPECT_EQ(cache_.stats().cached_hugepages, 8u);
  EXPECT_EQ(cache_.stats().released_hugepages, 12u);
}

TEST_F(HugeCacheTest, ReleasedHugepagesBecomeIntactOnReuse) {
  HugePageId a = cache_.Allocate(20);
  cache_.Release(a, 20);
  ASSERT_EQ(cache_.stats().released_hugepages, 12u);
  // Reusing the run refaults released pages.
  cache_.Allocate(20);
  EXPECT_EQ(cache_.stats().released_hugepages, 0u);
  EXPECT_EQ(cache_.stats().cached_hugepages, 0u);
  EXPECT_EQ(cache_.stats().in_use_hugepages, 20u);
}

TEST_F(HugeCacheTest, NonIntactReleaseGoesStraightToOs) {
  HugePageId a = cache_.Allocate(1);
  cache_.Release(a, 1, /*intact=*/false);
  EXPECT_EQ(cache_.stats().cached_hugepages, 0u);
  EXPECT_EQ(cache_.stats().released_hugepages, 1u);
}

TEST_F(HugeCacheTest, ReleaseExcessShrinksToLimit) {
  HugePageId a = cache_.Allocate(6);
  cache_.Release(a, 6);
  EXPECT_EQ(cache_.ReleaseExcess(2), 4u);
  EXPECT_EQ(cache_.stats().cached_hugepages, 2u);
  EXPECT_EQ(cache_.ReleaseExcess(2), 0u);
}

TEST_F(HugeCacheTest, CachedBytes) {
  HugePageId a = cache_.Allocate(3);
  cache_.Release(a, 3);
  EXPECT_EQ(cache_.CachedBytes(), 3 * kHugePageSize);
}

TEST_F(HugeCacheTest, InUseAccountingBalances) {
  HugePageId a = cache_.Allocate(5);
  HugePageId b = cache_.Allocate(2);
  EXPECT_EQ(cache_.stats().in_use_hugepages, 7u);
  cache_.Release(a, 5);
  EXPECT_EQ(cache_.stats().in_use_hugepages, 2u);
  cache_.Release(b, 2);
  EXPECT_EQ(cache_.stats().in_use_hugepages, 0u);
}

TEST(HugeCacheDeathTest, DoubleReleaseIsFatal) {
  SystemAllocator sys(kBase, 64 * kHugePageSize);
  HugeCache cache(&sys, 64);
  HugePageId a = cache.Allocate(2);
  HugePageId b = cache.Allocate(2);
  (void)b;
  cache.Release(a, 2);
  EXPECT_DEATH(cache.Release(a, 2), "CHECK failed");
}

}  // namespace
}  // namespace wsc::tcmalloc
