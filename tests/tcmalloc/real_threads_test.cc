// Tests for the real-threads execution mode: object conservation under a
// genuine multi-thread alloc/free storm with cross-thread frees, the
// sharded refill path (including cross-shard work stealing), the LUT
// size-class lookup, and footprint sanity. The storm tests are the ones
// the CI sanitizer jobs (TSan/ASan) run to prove the lock-free fast path
// race-free rather than assuming it.

#include "tcmalloc/real_threads.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "tcmalloc/config.h"
#include "tcmalloc/pages.h"
#include "tcmalloc/size_classes.h"
#include "telemetry/registry.h"

namespace wsc::tcmalloc {
namespace {

AllocatorConfig TestConfig() {
  return AllocatorConfig::Builder()
      .WithVcpus(4)
      .WithArena(uintptr_t{1} << 44, size_t{16} << 30)
      .Build();
}

double Metric(const telemetry::Snapshot& snap, const char* component,
              const char* name) {
  const telemetry::MetricSample* sample = snap.Find(component, name);
  return sample != nullptr ? sample->ScalarValue() : -1.0;
}

// The flat LUT must agree with a straight linear scan of the class table
// for every size in the small range, and reject 0 and > kMaxSmallSize.
TEST(RealThreadsSizeLut, MatchesReferenceLookupEverywhere) {
  const SizeClasses& sc = SizeClasses::Default();
  EXPECT_EQ(sc.ClassFor(0), -1);
  EXPECT_EQ(sc.ClassFor(kMaxSmallSize + 1), -1);
  EXPECT_EQ(sc.ClassFor(~size_t{0}), -1);
  int reference = 0;
  for (size_t size = 1; size <= kMaxSmallSize; ++size) {
    while (sc.class_size(reference) < size) ++reference;
    ASSERT_EQ(sc.ClassFor(size), reference) << "size=" << size;
  }
  EXPECT_EQ(sc.ClassFor(kMaxSmallSize), sc.num_classes() - 1);
}

TEST(RealThreadsAllocatorTest, SingleThreadRoundTrip) {
  AllocatorConfig config = TestConfig();
  RealThreadsAllocator alloc(config, 1);
  RealThreadCache* tc = alloc.RegisterThread();

  std::vector<uintptr_t> objs;
  for (int i = 0; i < 1000; ++i) {
    objs.push_back(alloc.Allocate(tc, 64));
  }
  // Addresses are distinct while live.
  std::vector<uintptr_t> sorted = objs;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
  for (uintptr_t obj : objs) alloc.Free(tc, obj, 64);

  telemetry::Snapshot snap = alloc.TelemetrySnapshot();
  EXPECT_EQ(Metric(snap, "allocator", "allocations"), 1000);
  EXPECT_EQ(Metric(snap, "allocator", "frees"), 1000);
  EXPECT_EQ(Metric(snap, "allocator", "live_objects"), 0);
  EXPECT_EQ(Metric(snap, "allocator", "live_bytes"), 0);
}

// allocated == freed + live, and every carved object is accounted for in
// some cache tier — nothing leaks, nothing is double-tracked.
TEST(RealThreadsAllocatorTest, ConservationAfterStorm) {
  constexpr int kThreads = 4;
  constexpr uint64_t kOpsPerThread = 20000;
  AllocatorConfig config = TestConfig();
  RealThreadsAllocator alloc(config, kThreads);

  // Cross-thread frees via mutex-guarded mailboxes: thread t posts every
  // 8th object to thread (t+1) % N, and drains its own mailbox as it
  // goes. The mutex is test scaffolding, not the allocator under test.
  struct Mailbox {
    std::mutex mu;
    std::vector<std::pair<uintptr_t, uint32_t>> objects;
  };
  std::vector<Mailbox> mailboxes(kThreads);

  auto worker = [&](int tid) {
    RealThreadCache* tc = alloc.RegisterThread();
    Rng rng(1234 + tid);
    std::vector<std::pair<uintptr_t, uint32_t>> local;
    for (uint64_t op = 0; op < kOpsPerThread; ++op) {
      uint32_t size = static_cast<uint32_t>(8 + rng.UniformInt(8192));
      uintptr_t obj = alloc.Allocate(tc, size);
      if (op % 8 == 0) {
        std::lock_guard<std::mutex> guard(mailboxes[(tid + 1) % kThreads].mu);
        mailboxes[(tid + 1) % kThreads].objects.emplace_back(obj, size);
      } else {
        local.emplace_back(obj, size);
        if (local.size() > 256) {
          size_t victim = rng.UniformInt(local.size());
          alloc.Free(tc, local[victim].first, local[victim].second);
          local[victim] = local.back();
          local.pop_back();
        }
      }
      if (op % 32 == 0) {
        std::vector<std::pair<uintptr_t, uint32_t>> inbox;
        {
          std::lock_guard<std::mutex> guard(mailboxes[tid].mu);
          inbox.swap(mailboxes[tid].objects);
        }
        for (const auto& [addr, sz] : inbox) alloc.Free(tc, addr, sz);
      }
    }
    for (const auto& [addr, sz] : local) alloc.Free(tc, addr, sz);
  };

  std::vector<std::thread> pool;
  for (int tid = 0; tid < kThreads; ++tid) pool.emplace_back(worker, tid);
  for (std::thread& t : pool) t.join();

  // Objects still in mailboxes when their owner finished: freed here.
  RealThreadCache* main_tc = alloc.RegisterThread();
  for (Mailbox& mailbox : mailboxes) {
    for (const auto& [addr, sz] : mailbox.objects) {
      alloc.Free(main_tc, addr, sz);
    }
  }

  telemetry::Snapshot snap = alloc.TelemetrySnapshot();
  double allocations = Metric(snap, "allocator", "allocations");
  double frees = Metric(snap, "allocator", "frees");
  EXPECT_EQ(allocations, kThreads * kOpsPerThread);
  EXPECT_EQ(allocations, frees);
  EXPECT_EQ(Metric(snap, "allocator", "live_objects"), 0);
  EXPECT_EQ(Metric(snap, "allocator", "live_bytes"), 0);
  // Every carved small object is cached somewhere (thread caches were
  // not flushed, so objects sit across all three tiers).
  EXPECT_EQ(Metric(snap, "allocator", "carved_objects"),
            Metric(snap, "allocator", "cached_objects"));
  // Footprint sanity: the heap is fully freed, so the footprint is the
  // carved spans only, bounded far below the bytes churned.
  double footprint = Metric(snap, "allocator", "footprint_bytes");
  EXPECT_GT(footprint, 0);
  EXPECT_LT(footprint, 256.0 * 1024 * 1024);
  EXPECT_EQ(Metric(snap, "thread_cache", "registered_threads"),
            kThreads + 1);
}

// Two caches on different shards, single OS thread (deterministic): when
// shard B runs dry it must steal shard A's free objects instead of
// carving fresh spans — the Snippet 1 regression this design exists to
// avoid.
TEST(RealThreadsAllocatorTest, CrossShardWorkStealing) {
  AllocatorConfig config = TestConfig();
  RealThreadsAllocator alloc(config, /*expected_threads=*/2);
  ASSERT_EQ(alloc.num_shards(), 2);
  RealThreadCache* a = alloc.RegisterThread();  // shard 0
  RealThreadCache* b = alloc.RegisterThread();  // shard 1
  ASSERT_NE(a->shard, b->shard);

  constexpr int kObjects = 10000;
  std::vector<uintptr_t> objs;
  objs.reserve(kObjects);
  for (int i = 0; i < kObjects; ++i) objs.push_back(alloc.Allocate(a, 96));
  for (uintptr_t obj : objs) alloc.Free(a, obj, 96);
  alloc.FlushThreadCache(a);  // push A's cache down to shard 0's stores
  size_t carved_before = alloc.ArenaUsedBytes();

  objs.clear();
  for (int i = 0; i < kObjects; ++i) objs.push_back(alloc.Allocate(b, 96));
  for (uintptr_t obj : objs) alloc.Free(b, obj, 96);

  telemetry::Snapshot snap = alloc.TelemetrySnapshot();
  EXPECT_GT(Metric(snap, "contention", "work_steals"), 0);
  EXPECT_GT(Metric(snap, "contention", "stolen_objects"), 0);
  // B's run was served mostly by stealing A's freed objects: the arena
  // grew by at most a quarter of the first phase's carving.
  size_t grown = alloc.ArenaUsedBytes() - carved_before;
  EXPECT_LT(grown, (carved_before - (uintptr_t{0})) / 4);
}

TEST(RealThreadsAllocatorTest, LargeObjectsBypassClassesAndComeBack) {
  AllocatorConfig config = TestConfig();
  RealThreadsAllocator alloc(config, 1);
  RealThreadCache* tc = alloc.RegisterThread();

  size_t small_footprint = alloc.FootprintBytes();
  std::vector<std::pair<uintptr_t, size_t>> objs;
  for (int i = 0; i < 64; ++i) {
    size_t size = kMaxSmallSize + 1 + static_cast<size_t>(i) * 4096;
    objs.emplace_back(alloc.Allocate(tc, size), size);
  }
  EXPECT_GT(alloc.FootprintBytes(), small_footprint);
  for (const auto& [addr, size] : objs) alloc.Free(tc, addr, size);

  telemetry::Snapshot snap = alloc.TelemetrySnapshot();
  EXPECT_EQ(Metric(snap, "allocator", "large_allocations"), 64);
  EXPECT_EQ(Metric(snap, "allocator", "large_frees"), 64);
  EXPECT_EQ(Metric(snap, "allocator", "live_bytes"), 0);
  // Freed large ranges return to the (virtual) OS immediately.
  EXPECT_EQ(alloc.FootprintBytes(), small_footprint);
}

TEST(RealThreadsAllocatorTest, FlushReturnsEverythingToMiddleEnd) {
  AllocatorConfig config = TestConfig();
  RealThreadsAllocator alloc(config, 1);
  RealThreadCache* tc = alloc.RegisterThread();
  for (int i = 0; i < 500; ++i) {
    alloc.Free(tc, alloc.Allocate(tc, 128), 128);
  }
  EXPECT_GT(tc->CachedObjects(), 0u);
  alloc.FlushThreadCache(tc);
  EXPECT_EQ(tc->CachedObjects(), 0u);

  telemetry::Snapshot snap = alloc.TelemetrySnapshot();
  EXPECT_EQ(Metric(snap, "thread_cache", "cached_objects"), 0);
  // Conservation still holds with everything pushed down.
  EXPECT_EQ(Metric(snap, "allocator", "carved_objects"),
            Metric(snap, "allocator", "cached_objects"));
}

TEST(RealThreadsAllocatorTest, TelemetryExportsContentionComponent) {
  AllocatorConfig config = TestConfig();
  RealThreadsAllocator alloc(config, 2, &SizeClasses::Default(),
                             /*num_shards=*/2);
  RealThreadCache* tc = alloc.RegisterThread();
  for (int i = 0; i < 2000; ++i) {
    alloc.Free(tc, alloc.Allocate(tc, 4096), 4096);
  }
  telemetry::Snapshot snap = alloc.TelemetrySnapshot();
  // The components check_bench_json.py requires for real-threads lines.
  EXPECT_GT(snap.ComponentTotal("contention"), 0);
  EXPECT_GT(Metric(snap, "contention", "cfl_lock_acquisitions"), 0);
  EXPECT_GE(Metric(snap, "contention", "refill_stalls"), 0);
  EXPECT_GT(snap.ComponentTotal("thread_cache"), 0);
  EXPECT_GT(snap.ComponentTotal("sharded_transfer"), 0);
  EXPECT_GT(snap.ComponentTotal("sharded_cfl"), 0);
  // The fast path dominates a tight reuse loop.
  EXPECT_GT(Metric(snap, "thread_cache", "fast_alloc_hits"), 1900);
}

}  // namespace
}  // namespace wsc::tcmalloc
