// Property-based tests: randomized traces replayed against every allocator
// configuration must preserve the malloc/free contract and leave the heap
// fully drained.

#include <gtest/gtest.h>

#include <tuple>

#include "tcmalloc/allocator.h"
#include "workload/trace.h"

namespace wsc::tcmalloc {
namespace {

struct ConfigCase {
  const char* name;
  bool dynamic_cpu;
  bool nuca;
  bool span_prio;
  bool lifetime_filler;
};

constexpr ConfigCase kConfigs[] = {
    {"baseline", false, false, false, false},
    {"dynamic_cpu", true, false, false, false},
    {"nuca", false, true, false, false},
    {"span_prio", false, false, true, false},
    {"lifetime_filler", false, false, false, true},
    {"all", true, true, true, true},
};

AllocatorConfig MakeConfig(const ConfigCase& c) {
  return AllocatorConfig::Builder()
      .WithVcpus(8)
      .WithLlcDomains(4)
      .WithDynamicCpuCaches(c.dynamic_cpu)
      .WithNucaTransferCache(c.nuca)
      .WithSpanPrioritization(c.span_prio)
      .WithLifetimeAwareFiller(c.lifetime_filler)
      .WithArena(uintptr_t{1} << 44, size_t{32} << 30)
      .Build();
}

class TracePropertyTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(TracePropertyTest, RandomTraceDrainsCompletely) {
  const ConfigCase& c = kConfigs[std::get<0>(GetParam())];
  uint64_t seed = std::get<1>(GetParam());
  Allocator alloc(MakeConfig(c));

  workload::Trace trace =
      workload::Trace::GenerateRandom(30000, seed, 1 << 20);
  size_t peak = trace.Replay(alloc, /*vcpu=*/static_cast<int>(seed % 8));
  EXPECT_GT(peak, 0u);

  HeapStats stats = alloc.CollectStats();
  // Everything was freed: no live memory, all counters balanced.
  EXPECT_EQ(stats.live_bytes, 0u);
  EXPECT_EQ(alloc.num_allocations(), alloc.num_frees());
  // Cached memory is bounded by what was ever mapped.
  EXPECT_LE(stats.ExternalFragmentation(),
            alloc.system_stats().mapped_bytes);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigsAndSeeds, TracePropertyTest,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values(1u, 42u, 12345u)),
    [](const ::testing::TestParamInfo<std::tuple<int, uint64_t>>& info) {
      return std::string(kConfigs[std::get<0>(info.param)].name) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// Identical traces under identical configs must produce identical
// accounting (determinism property).
TEST(TraceDeterminism, SameSeedSameStats) {
  AllocatorConfig config = MakeConfig(kConfigs[5]);
  workload::Trace trace = workload::Trace::GenerateRandom(20000, 7, 1 << 18);

  Allocator a(config);
  Allocator b(config);
  trace.Replay(a);
  trace.Replay(b);
  EXPECT_EQ(a.CollectStats().HeapBytes(), b.CollectStats().HeapBytes());
  EXPECT_DOUBLE_EQ(a.cycle_breakdown().Total(), b.cycle_breakdown().Total());
  EXPECT_EQ(a.alloc_tier_hits().page_heap, b.alloc_tier_hits().page_heap);
}

// Span prioritization is purely a placement policy: the same trace must
// still fully drain, and fragmentation must never be negative.
TEST(TraceDeterminism, PrioritizationPreservesContract) {
  workload::Trace trace = workload::Trace::GenerateRandom(50000, 11, 4096);
  for (bool prio : {false, true}) {
    AllocatorConfig config =
        AllocatorConfig::Builder()
            .WithSpanPrioritization(prio)
            .WithArena(uintptr_t{1} << 44, size_t{32} << 30)
            .Build();
    Allocator alloc(config);
    trace.Replay(alloc);
    HeapStats stats = alloc.CollectStats();
    EXPECT_EQ(stats.live_bytes, 0u);
  }
}

// The sum of per-tier free bytes always equals what the tiers report
// individually (accounting consistency under churn).
TEST(HeapAccounting, TierFreeBytesConsistent) {
  AllocatorConfig config = MakeConfig(kConfigs[0]);
  Allocator alloc(config);
  workload::Trace trace = workload::Trace::GenerateRandom(40000, 3, 1 << 16);
  trace.Replay(alloc);
  HeapStats stats = alloc.CollectStats();
  size_t cfl = 0;
  for (int cls = 0; cls < alloc.size_classes().num_classes(); ++cls) {
    cfl += alloc.central_free_list(cls).FreeObjectBytes();
  }
  EXPECT_EQ(stats.central_free_list_free, cfl);
  EXPECT_EQ(stats.cpu_cache_free, alloc.cpu_caches().TotalCachedBytes());
  EXPECT_EQ(stats.transfer_cache_free,
            alloc.transfer_cache().TotalCachedBytes());
}

}  // namespace
}  // namespace wsc::tcmalloc
