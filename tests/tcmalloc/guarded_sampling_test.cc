// Tests for GWP-ASan-style guarded sampling: sampled allocations become
// guards, freed guards leave bounded tombstones, and driver-visible heap
// bugs — double free, use after free, buffer overrun — are detected,
// swallowed, counted under "failure", and attributed to the allocating
// callsite in the flight recorder.

#include <gtest/gtest.h>

#include "hw/topology.h"
#include "tcmalloc/allocator.h"
#include "tcmalloc/malloc_extension.h"
#include "tcmalloc/sampler.h"
#include "trace/flight_recorder.h"
#include "workload/driver.h"
#include "workload/workload.h"

namespace wsc::tcmalloc {
namespace {

constexpr uintptr_t kBase = uintptr_t{1} << 44;

// Every allocation sampled (interval 1 byte) and guarded.
AllocatorConfig GuardedConfig() {
  return AllocatorConfig::Builder()
      .WithVcpus(2)
      .WithArena(kBase, size_t{8} << 30)
      .WithSampleIntervalBytes(1)
      .WithGuardedSampling()
      .Build();
}

TEST(SamplerGuards, FreeLeavesTombstoneAndTakeConsumesIt) {
  Sampler sampler(/*sample_interval_bytes=*/1);
  sampler.set_guarded(true);
  ASSERT_TRUE(sampler.RecordAllocation(0x100, 96, 128, Seconds(1), 42));
  EXPECT_TRUE(sampler.IsGuarded(0x100));

  sampler.RecordFree(0x100, Seconds(2));
  EXPECT_FALSE(sampler.IsGuarded(0x100));
  ASSERT_NE(sampler.FindTombstone(0x100), nullptr);
  EXPECT_EQ(sampler.FindTombstone(0x100)->requested, 96u);
  EXPECT_EQ(sampler.FindTombstone(0x100)->callsite, 42u);

  Sampler::Tombstone tomb;
  ASSERT_TRUE(sampler.TakeTombstone(0x100, &tomb));
  EXPECT_EQ(tomb.allocated, 128u);
  // One bug, one report: the tombstone is gone.
  EXPECT_FALSE(sampler.TakeTombstone(0x100, &tomb));
  EXPECT_EQ(sampler.tombstone_count(), 0u);
}

TEST(SamplerGuards, AddressReuseRetiresTombstone) {
  Sampler sampler(1);
  sampler.set_guarded(true);
  ASSERT_TRUE(sampler.RecordAllocation(0x200, 64, 64, 0));
  sampler.RecordFree(0x200, 0);
  ASSERT_NE(sampler.FindTombstone(0x200), nullptr);
  // The allocator hands the address out again: it is a legitimate live
  // object now, not a dangling guard.
  ASSERT_TRUE(sampler.RecordAllocation(0x200, 64, 64, 0));
  EXPECT_EQ(sampler.FindTombstone(0x200), nullptr);
  EXPECT_TRUE(sampler.IsGuarded(0x200));
}

TEST(SamplerGuards, TombstonePoolIsBoundedFifo) {
  Sampler sampler(1);
  sampler.set_guarded(true);
  for (uintptr_t i = 0; i < 600; ++i) {
    uintptr_t addr = 0x1000 + i * 0x100;
    ASSERT_TRUE(sampler.RecordAllocation(addr, 64, 64, 0));
    sampler.RecordFree(addr, 0);
  }
  EXPECT_LE(sampler.tombstone_count(), 512u);
  // Oldest evicted, newest retained.
  EXPECT_EQ(sampler.FindTombstone(0x1000), nullptr);
  EXPECT_NE(sampler.FindTombstone(0x1000 + 599 * 0x100), nullptr);
}

TEST(SamplerGuards, UnguardedSamplerLeavesNoTombstones) {
  Sampler sampler(1);
  ASSERT_TRUE(sampler.RecordAllocation(0x300, 64, 64, 0));
  EXPECT_FALSE(sampler.IsGuarded(0x300));
  sampler.RecordFree(0x300, 0);
  EXPECT_EQ(sampler.tombstone_count(), 0u);
}

TEST(GuardedAllocator, DoubleFreeIsSwallowedCountedAndAttributed) {
  Allocator alloc(GuardedConfig());
  trace::FlightRecorder recorder(256);
  alloc.SetFlightRecorder(&recorder);

  constexpr uint64_t kCallsite = 777;
  uintptr_t p = alloc.Allocate(100, 0, 0, kCallsite);
  ASSERT_NE(p, 0u);
  ASSERT_TRUE(alloc.sampler().IsGuarded(p));

  alloc.Free(p, 0, 0);
  uint64_t frees_after_first = alloc.num_frees();
  alloc.Free(p, 0, 0);  // the bug: swallowed, not crashed, not re-counted
  EXPECT_EQ(alloc.num_frees(), frees_after_first);

  MallocExtension extension(&alloc);
  EXPECT_EQ(extension.GetProperty("failure.double_frees_detected").value(),
            1.0);

  bool reported = false;
  for (const trace::TraceEvent& e : recorder.Drain().events) {
    if (e.type != trace::EventType::kGuardReport) continue;
    reported = true;
    EXPECT_EQ(e.index,
              static_cast<int16_t>(trace::GuardReportKind::kDoubleFree));
    EXPECT_EQ(e.b, kCallsite);  // attributed to the allocating callsite
  }
  EXPECT_TRUE(reported);
}

TEST(GuardedAllocator, UseAfterFreeIsDetectedByProbe) {
  Allocator alloc(GuardedConfig());
  uintptr_t p = alloc.Allocate(64, 0, 0);
  ASSERT_NE(p, 0u);
  alloc.Free(p, 0, 0);
  EXPECT_TRUE(alloc.ProbeAccess(p, 0, 0, 0));   // touches the tombstone
  EXPECT_FALSE(alloc.ProbeAccess(p, 0, 0, 0));  // consumed: one report

  MallocExtension extension(&alloc);
  EXPECT_EQ(extension.GetProperty("failure.use_after_frees_detected").value(),
            1.0);
}

TEST(GuardedAllocator, OverrunPastRequestedBytesIsDetected) {
  Allocator alloc(GuardedConfig());
  uintptr_t p = alloc.Allocate(100, 0, 0);
  ASSERT_NE(p, 0u);
  EXPECT_FALSE(alloc.ProbeAccess(p, 99, 0, 0));  // in bounds: fine
  EXPECT_TRUE(alloc.ProbeAccess(p, 100, 0, 0));  // one past the request
  // The guard stays live: the object is still valid memory.
  EXPECT_TRUE(alloc.sampler().IsGuarded(p));
  alloc.Free(p, 0, 0);

  MallocExtension extension(&alloc);
  EXPECT_EQ(extension.GetProperty("failure.buffer_overruns_detected").value(),
            1.0);
}

TEST(GuardedAllocator, ProbesAreNoOpsWithoutGuardedSampling) {
  AllocatorConfig config = AllocatorConfig::Builder()
                               .WithVcpus(2)
                               .WithArena(kBase, size_t{8} << 30)
                               .WithSampleIntervalBytes(1)
                               .Build();
  Allocator alloc(config);
  uintptr_t p = alloc.Allocate(64, 0, 0);
  ASSERT_NE(p, 0u);
  EXPECT_FALSE(alloc.ProbeAccess(p, 1000, 0, 0));
  alloc.Free(p, 0, 0);
  EXPECT_FALSE(alloc.ProbeAccess(p, 0, 0, 0));
  MallocExtension extension(&alloc);
  EXPECT_EQ(extension.GetProperty("failure.use_after_frees_detected").value(),
            0.0);
  EXPECT_EQ(extension.GetProperty("failure.guarded_samples").value(), 0.0);
}

TEST(GuardedDriver, InjectedBugsAreAllDetected) {
  // The driver's opt-in bug mix only fires on guarded allocations, so with
  // guarded sampling on, every injected bug must be caught.
  Allocator alloc(GuardedConfig());
  workload::WorkloadSpec spec;
  spec.name = "buggy";
  spec.behaviors.push_back(workload::MakeBehavior(
      1.0, workload::SizeLognormal(256, 1.5),
      workload::LifetimeLognormal(1e6, 1.0)));
  spec.double_free_probability = 0.05;
  spec.use_after_free_probability = 0.05;
  spec.overrun_probability = 0.05;

  workload::Driver driver(spec, &alloc, /*topology=*/nullptr, {0},
                          /*llc=*/nullptr, /*tlb=*/nullptr, /*seed=*/1234);
  driver.RunRequests(2000);

  const workload::DriverMetrics& metrics = driver.metrics();
  EXPECT_GT(metrics.injected_bugs, 0u);
  EXPECT_EQ(metrics.detected_bugs, metrics.injected_bugs);

  MallocExtension extension(&alloc);
  double detected =
      extension.GetProperty("failure.double_frees_detected").value() +
      extension.GetProperty("failure.use_after_frees_detected").value() +
      extension.GetProperty("failure.buffer_overruns_detected").value();
  EXPECT_EQ(detected, static_cast<double>(metrics.detected_bugs));
  driver.Drain();
}

TEST(GuardedDriver, BugFreeSpecsDoNotPerturbRandomStreams) {
  // Enabling the guard machinery without bug probabilities must leave the
  // driver's request stream untouched (no extra RNG draws).
  workload::WorkloadSpec spec;
  spec.name = "clean";
  spec.behaviors.push_back(workload::MakeBehavior(
      1.0, workload::SizeLognormal(256, 1.5),
      workload::LifetimeLognormal(1e6, 1.0)));

  Allocator guarded(GuardedConfig());
  workload::Driver da(spec, &guarded, nullptr, {0}, nullptr, nullptr, 99);
  da.RunRequests(500);

  AllocatorConfig plain_config = AllocatorConfig::Builder()
                                     .WithVcpus(2)
                                     .WithArena(kBase, size_t{8} << 30)
                                     .WithSampleIntervalBytes(1)
                                     .Build();
  Allocator plain(plain_config);
  workload::Driver db(spec, &plain, nullptr, {0}, nullptr, nullptr, 99);
  db.RunRequests(500);

  EXPECT_EQ(da.metrics().allocations, db.metrics().allocations);
  EXPECT_EQ(da.metrics().cpu_ns, db.metrics().cpu_ns);
  EXPECT_EQ(da.metrics().injected_bugs, 0u);
}

}  // namespace
}  // namespace wsc::tcmalloc
