// Tests for Span object bookkeeping and the intrusive span list.

#include "tcmalloc/span.h"

#include <gtest/gtest.h>

#include <set>

namespace wsc::tcmalloc {
namespace {

Span MakeSmallSpan() {
  // 1 page of 8 KiB, 64 objects of 128 B.
  return Span(PageId{1000}, 1, /*size_class=*/5, /*object_size=*/128,
              /*objects_per_span=*/64);
}

TEST(Span, GeometryAccessors) {
  Span span = MakeSmallSpan();
  EXPECT_EQ(span.first_page().index, 1000u);
  EXPECT_EQ(span.num_pages(), 1u);
  EXPECT_EQ(span.start_addr(), 1000u << kPageShift);
  EXPECT_EQ(span.span_bytes(), kPageSize);
  EXPECT_EQ(span.capacity(), 64);
  EXPECT_FALSE(span.is_large());
  EXPECT_TRUE(span.empty());
  EXPECT_FALSE(span.full());
}

TEST(Span, AllocateAllObjectsAreDistinctAndInRange) {
  Span span = MakeSmallSpan();
  std::set<uintptr_t> seen;
  for (int i = 0; i < 64; ++i) {
    uintptr_t addr = span.AllocateObject();
    EXPECT_GE(addr, span.start_addr());
    EXPECT_LT(addr, span.start_addr() + span.span_bytes());
    EXPECT_EQ((addr - span.start_addr()) % 128, 0u);
    EXPECT_TRUE(seen.insert(addr).second) << "duplicate object";
  }
  EXPECT_TRUE(span.full());
  EXPECT_EQ(span.live_objects(), 64);
}

TEST(Span, FreeMakesObjectReallocatable) {
  Span span = MakeSmallSpan();
  uintptr_t a = span.AllocateObject();
  uintptr_t b = span.AllocateObject();
  EXPECT_EQ(span.live_objects(), 2);
  span.FreeObject(a);
  EXPECT_EQ(span.live_objects(), 1);
  EXPECT_FALSE(span.IsLiveObject(a));
  EXPECT_TRUE(span.IsLiveObject(b));
  // The freed slot becomes available again.
  std::set<uintptr_t> seen;
  for (int i = 0; i < 63; ++i) seen.insert(span.AllocateObject());
  EXPECT_TRUE(span.full());
  EXPECT_TRUE(seen.count(a) == 1);
}

TEST(SpanDeathTest, DoubleFreeIsFatal) {
  Span span = MakeSmallSpan();
  uintptr_t a = span.AllocateObject();
  span.FreeObject(a);
  EXPECT_DEATH(span.FreeObject(a), "CHECK failed");
}

TEST(SpanDeathTest, MisalignedFreeIsFatal) {
  Span span = MakeSmallSpan();
  uintptr_t a = span.AllocateObject();
  EXPECT_DEATH(span.FreeObject(a + 1), "CHECK failed");
}

TEST(Span, LargeSpan) {
  Span span(PageId{5000}, 300);
  EXPECT_TRUE(span.is_large());
  EXPECT_EQ(span.capacity(), 1);
  uintptr_t addr = span.AllocateObject();
  EXPECT_EQ(addr, span.start_addr());
  EXPECT_TRUE(span.full());
  span.FreeObject(addr);
  EXPECT_TRUE(span.empty());
}

TEST(Span, IsLiveObjectRejectsForeignAddresses) {
  Span span = MakeSmallSpan();
  uintptr_t a = span.AllocateObject();
  EXPECT_TRUE(span.IsLiveObject(a));
  EXPECT_FALSE(span.IsLiveObject(a + 1));                       // misaligned
  EXPECT_FALSE(span.IsLiveObject(span.start_addr() - 128));     // below
  EXPECT_FALSE(span.IsLiveObject(span.start_addr() + kPageSize));  // above
}

TEST(Span, FreeBitScanWrapsWithHint) {
  // Exercise the rotating free-bit search: fill, free a middle object,
  // re-allocate, free two at the ends.
  Span span(PageId{0}, 1, 0, 8, 1024);
  std::vector<uintptr_t> objs;
  for (int i = 0; i < 1024; ++i) objs.push_back(span.AllocateObject());
  span.FreeObject(objs[700]);
  EXPECT_EQ(span.AllocateObject(), objs[700]);
  span.FreeObject(objs[0]);
  span.FreeObject(objs[1023]);
  uintptr_t x = span.AllocateObject();
  uintptr_t y = span.AllocateObject();
  EXPECT_TRUE((x == objs[0] && y == objs[1023]) ||
              (x == objs[1023] && y == objs[0]));
  EXPECT_TRUE(span.full());
}

TEST(SpanList, PushRemovePopMaintainSize) {
  Span a = MakeSmallSpan();
  Span b = MakeSmallSpan();
  Span c = MakeSmallSpan();
  SpanList list;
  EXPECT_TRUE(list.empty());
  list.PushFront(&a);
  list.PushFront(&b);
  list.PushFront(&c);
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(list.front(), &c);
  list.Remove(&b);  // middle removal
  EXPECT_EQ(list.size(), 2u);
  EXPECT_EQ(list.PopFront(), &c);
  EXPECT_EQ(list.PopFront(), &a);
  EXPECT_TRUE(list.empty());
  // Removed spans have clean hooks and can be reinserted.
  list.PushFront(&b);
  EXPECT_EQ(list.front(), &b);
}

}  // namespace
}  // namespace wsc::tcmalloc
