// Tests for the memory-pressure control plane and its public surface:
// AllocatorConfig::Builder validation, MallocExtension introspection and
// limit control, the BackgroundReclaimer tier cascade, and hard-limit
// failure accounting.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tcmalloc/malloc_extension.h"

namespace wsc::tcmalloc {
namespace {

AllocatorConfig SmallConfig() {
  return AllocatorConfig::Builder()
      .WithVcpus(4)
      .WithCpuCacheBytes(256 * 1024)
      .WithCpuCacheMinBytes(16 * 1024)
      .Build();
}

// Allocates `count` objects of `size` and returns them.
std::vector<uintptr_t> AllocateMany(Allocator& alloc, size_t size,
                                    int count) {
  std::vector<uintptr_t> objs;
  objs.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    uintptr_t p = alloc.Allocate(size, i % 4, 0);
    if (p != 0) objs.push_back(p);
  }
  return objs;
}

// ---- Builder validation ----

TEST(ConfigBuilder, BuildsValidatedDefaults) {
  AllocatorConfig config = AllocatorConfig::Builder().Build();
  EXPECT_EQ(config.ValidationError(), "");
  EXPECT_FALSE(config.dynamic_cpu_caches);
}

TEST(ConfigBuilder, RejectsNucaWithOneExplicitDomain) {
  std::string error;
  auto config = AllocatorConfig::Builder()
                    .WithNucaTransferCache()
                    .WithLlcDomains(1)
                    .TryBuild(&error);
  EXPECT_FALSE(config.has_value());
  EXPECT_NE(error.find("llc"), std::string::npos) << error;
}

TEST(ConfigBuilder, RejectsNumaWithOneExplicitNode) {
  std::string error;
  auto config =
      AllocatorConfig::Builder().WithNumaNodes(1).TryBuild(&error);
  EXPECT_FALSE(config.has_value());
  EXPECT_FALSE(error.empty());
}

TEST(ConfigBuilder, RejectsSoftLimitAboveHardLimit) {
  std::string error;
  auto config = AllocatorConfig::Builder()
                    .WithSoftMemoryLimit(2 << 20)
                    .WithHardMemoryLimit(1 << 20)
                    .TryBuild(&error);
  EXPECT_FALSE(config.has_value());
  EXPECT_NE(error.find("soft"), std::string::npos) << error;
}

TEST(ConfigBuilder, NucaWithoutExplicitDomainsDefersToTopology) {
  // Enabling NUCA without a count leaves the sentinel for fleet::Machine
  // to resolve; such a config cannot construct a raw Allocator ...
  auto config =
      AllocatorConfig::Builder().WithNucaTransferCache().TryBuild();
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->num_llc_domains, AllocatorConfig::kTopologyDerived);
  EXPECT_FALSE(config->ValidationError().empty());

  // ... while an explicit count is construction-ready.
  auto explicit_config = AllocatorConfig::Builder()
                             .WithNucaTransferCache()
                             .WithLlcDomains(4)
                             .TryBuild();
  ASSERT_TRUE(explicit_config.has_value());
  EXPECT_EQ(explicit_config->ValidationError(), "");
}

TEST(ConfigBuilder, AllOptimizationsDerivesShardCountFromTopology) {
  // The old AllOptimizations silently kept num_llc_domains = 1, making the
  // NUCA toggle a no-op; now the count defers to machine topology.
  auto config =
      AllocatorConfig::Builder().WithAllOptimizations().TryBuild();
  ASSERT_TRUE(config.has_value());
  EXPECT_TRUE(config->nuca_transfer_cache);
  EXPECT_EQ(config->num_llc_domains, AllocatorConfig::kTopologyDerived);
}

TEST(ConfigBuilder, AllOptimizationsHonorsExplicitDomainChoice) {
  AllocatorConfig config = AllocatorConfig::Builder()
                               .WithAllOptimizations()
                               .WithLlcDomains(4)
                               .Build();
  EXPECT_EQ(config.num_llc_domains, 4);
  EXPECT_EQ(config.ValidationError(), "");
}

TEST(ConfigBuilder, StartsFromExistingConfig) {
  AllocatorConfig base = AllocatorConfig::Builder().WithVcpus(13).Build();
  AllocatorConfig config =
      AllocatorConfig::Builder(base).WithSpanPrioritization().Build();
  EXPECT_EQ(config.num_vcpus, 13);
  EXPECT_TRUE(config.span_prioritization);
}

// ---- MallocExtension introspection ----

TEST(MallocExtension, StatsMatchAllocatorAccessors) {
  Allocator alloc(SmallConfig());
  MallocExtension extension(&alloc);
  auto objs = AllocateMany(alloc, 128, 1000);

  EXPECT_EQ(extension.GetNumAllocations(), alloc.num_allocations());
  EXPECT_EQ(extension.GetHeapStats().live_bytes,
            alloc.CollectStats().live_bytes);
  EXPECT_EQ(extension.GetFootprintBytes(), alloc.FootprintBytes());
  EXPECT_GT(extension.GetFootprintBytes(), 0u);

  for (uintptr_t p : objs) alloc.Free(p, 0, 0);
  EXPECT_EQ(extension.GetNumFrees(), alloc.num_frees());
}

TEST(MallocExtension, GetPropertyReadsTelemetry) {
  Allocator alloc(SmallConfig());
  MallocExtension extension(&alloc);
  auto objs = AllocateMany(alloc, 64, 100);

  auto allocations = extension.GetProperty("allocator/allocations");
  EXPECT_FALSE(allocations.has_value());  // dot-separated, not slash
  allocations = extension.GetProperty("allocator.allocations");
  ASSERT_TRUE(allocations.has_value());
  EXPECT_EQ(*allocations, 100.0);

  EXPECT_FALSE(extension.GetProperty("nonsense.metric").has_value());
  EXPECT_FALSE(extension.GetProperty("nodots").has_value());
  EXPECT_FALSE(extension.GetProperty(".leading").has_value());
  EXPECT_FALSE(extension.GetProperty("trailing.").has_value());

  // The pressure component is registered at construction, so its counters
  // are visible (at zero) before any limit is ever set.
  auto reclaimed = extension.GetProperty("pressure.reclaimed_bytes");
  ASSERT_TRUE(reclaimed.has_value());
  EXPECT_EQ(*reclaimed, 0.0);

  for (uintptr_t p : objs) alloc.Free(p, 0, 0);
}

TEST(MallocExtension, LimitRoundTripsAndExportsGauges) {
  Allocator alloc(SmallConfig());
  MallocExtension extension(&alloc);
  extension.SetMemoryLimit(MemoryLimitKind::kSoft, 5 << 20);
  extension.SetMemoryLimit(MemoryLimitKind::kHard, 9 << 20);
  EXPECT_EQ(extension.GetMemoryLimit(MemoryLimitKind::kSoft),
            size_t{5} << 20);
  EXPECT_EQ(extension.GetMemoryLimit(MemoryLimitKind::kHard),
            size_t{9} << 20);
  EXPECT_EQ(extension.GetProperty("pressure.soft_limit_bytes"),
            static_cast<double>(5 << 20));
  EXPECT_EQ(extension.GetProperty("pressure.hard_limit_bytes"),
            static_cast<double>(9 << 20));
}

TEST(MallocExtension, ConfiguredLimitsReachTheReclaimer) {
  AllocatorConfig config = AllocatorConfig::Builder()
                               .WithSoftMemoryLimit(64 << 20)
                               .WithHardMemoryLimit(128 << 20)
                               .Build();
  Allocator alloc(config);
  MallocExtension extension(&alloc);
  EXPECT_EQ(extension.GetMemoryLimit(MemoryLimitKind::kSoft),
            size_t{64} << 20);
  EXPECT_EQ(extension.GetMemoryLimit(MemoryLimitKind::kHard),
            size_t{128} << 20);
}

// ---- Soft limit: the reclaim cascade ----

TEST(SoftLimit, ReclaimsTowardLimitAtMaintainBoundaries) {
  Allocator alloc(SmallConfig());
  MallocExtension extension(&alloc);

  // Build a footprint with a reclaimable half: allocate then free every
  // other object, leaving cached objects and fragmented spans behind.
  auto objs = AllocateMany(alloc, 4096, 20000);
  for (size_t i = 0; i < objs.size(); i += 2) {
    alloc.Free(objs[i], static_cast<int>(i) % 4, 0);
  }

  // Let the regular background actions settle first so the drop we observe
  // below is attributable to the pressure cascade, not routine maintenance.
  alloc.Maintain(Seconds(1));
  size_t before = extension.GetFootprintBytes();
  size_t limit = static_cast<size_t>(0.8 * static_cast<double>(before));
  extension.SetMemoryLimit(MemoryLimitKind::kSoft, limit);
  alloc.Maintain(Seconds(10));

  size_t after = extension.GetFootprintBytes();
  EXPECT_LT(after, before);
  EXPECT_GT(extension.GetProperty("pressure.reclaimed_bytes").value(), 0.0);
  EXPECT_GE(extension.GetProperty("pressure.soft_limit_hits").value(), 1.0);
  EXPECT_GE(extension.GetProperty("pressure.reclaim_runs").value(), 1.0);

  for (size_t i = 1; i < objs.size(); i += 2) {
    alloc.Free(objs[i], 0, 0);
  }
}

TEST(SoftLimit, CascadeShrinksCpuCachesBelowFloor) {
  Allocator alloc(SmallConfig());
  MallocExtension extension(&alloc);
  auto objs = AllocateMany(alloc, 256, 20000);
  for (uintptr_t p : objs) alloc.Free(p, 0, 0);
  ASSERT_GT(alloc.cpu_caches().TotalCachedBytes(), 0u);

  // An unreachable target forces every tier to run dry, including tier 1.
  extension.SetMemoryLimit(MemoryLimitKind::kSoft, 1);
  alloc.Maintain(Seconds(10));
  EXPECT_TRUE(alloc.cpu_caches().pressure_capped());
  EXPECT_EQ(alloc.cpu_caches().TotalCachedBytes(), 0u);
  EXPECT_EQ(alloc.transfer_cache().TotalCachedBytes(), 0u);

  // Lifting the limit (footprint back under) uncaps the caches.
  extension.SetMemoryLimit(MemoryLimitKind::kSoft, size_t{1} << 40);
  alloc.Maintain(Seconds(20));
  EXPECT_FALSE(alloc.cpu_caches().pressure_capped());
}

TEST(SoftLimit, NoReclaimWhenUnderLimit) {
  Allocator alloc(SmallConfig());
  MallocExtension extension(&alloc);
  auto objs = AllocateMany(alloc, 128, 1000);
  extension.SetMemoryLimit(MemoryLimitKind::kSoft, size_t{1} << 40);
  alloc.Maintain(Seconds(10));
  EXPECT_EQ(extension.GetProperty("pressure.soft_limit_hits").value(), 0.0);
  EXPECT_EQ(extension.GetProperty("pressure.reclaimed_bytes").value(), 0.0);
  for (uintptr_t p : objs) alloc.Free(p, 0, 0);
}

// ---- ReleaseMemoryToSystem ----

TEST(ReleaseMemoryToSystem, ReleasesFreeBackendMemory) {
  Allocator alloc(SmallConfig());
  MallocExtension extension(&alloc);

  // Large buffers go straight to the page heap; freeing them leaves whole
  // hugepages cached in the back end.
  std::vector<uintptr_t> bufs;
  for (int i = 0; i < 32; ++i) {
    bufs.push_back(alloc.Allocate(size_t{2} << 20, 0, 0));
  }
  for (uintptr_t p : bufs) alloc.Free(p, 0, 0);

  size_t released = extension.ReleaseMemoryToSystem(size_t{16} << 20);
  EXPECT_GE(released, size_t{16} << 20);
  EXPECT_EQ(extension.GetProperty("pressure.reclaimed_bytes").value(),
            static_cast<double>(released));
}

TEST(ReleaseMemoryToSystem, ZeroWhenNothingToRelease) {
  Allocator alloc(SmallConfig());
  MallocExtension extension(&alloc);
  EXPECT_EQ(extension.ReleaseMemoryToSystem(size_t{1} << 20), 0u);
}

// ---- Hard limit: counted, surfaced failures ----

TEST(HardLimit, AllocationsFailPastTheLimit) {
  const size_t kLimit = size_t{8} << 20;
  AllocatorConfig config = AllocatorConfig::Builder()
                               .WithVcpus(4)
                               .WithHardMemoryLimit(kLimit)
                               .Build();
  Allocator alloc(config);
  MallocExtension extension(&alloc);

  uint64_t failures = 0;
  std::vector<uintptr_t> objs;
  for (int i = 0; i < 30000; ++i) {
    uintptr_t p = alloc.Allocate(1024, i % 4, 0);
    if (p == 0) {
      ++failures;
    } else {
      objs.push_back(p);
    }
  }
  EXPECT_GT(failures, 0u);
  EXPECT_LE(extension.GetFootprintBytes(), kLimit);
  EXPECT_EQ(extension.GetProperty("pressure.hard_limit_failures").value(),
            static_cast<double>(failures));
  // Failed allocations are not counted as allocations.
  EXPECT_EQ(extension.GetNumAllocations(), objs.size());

  // Freeing memory makes allocations admissible again.
  for (uintptr_t p : objs) alloc.Free(p, 0, 0);
  EXPECT_NE(alloc.Allocate(1024, 0, 0), 0u);
}

TEST(HardLimit, EmergencyReclaimAvoidsSpuriousFailures) {
  // Footprint dominated by reclaimable cached memory: the admission path's
  // emergency reclaim must free it rather than fail the allocation.
  const size_t kLimit = size_t{48} << 20;
  AllocatorConfig config = AllocatorConfig::Builder()
                               .WithVcpus(4)
                               .WithHardMemoryLimit(kLimit)
                               .Build();
  Allocator alloc(config);
  MallocExtension extension(&alloc);

  // Fill most of the budget with large buffers, free them (now cached in
  // the back end), then allocate again: without emergency reclaim the
  // cached hugepages would push the footprint over the limit.
  std::vector<uintptr_t> bufs;
  for (int i = 0; i < 20; ++i) {
    bufs.push_back(alloc.Allocate(size_t{2} << 20, 0, 0));
  }
  for (uintptr_t p : bufs) alloc.Free(p, 0, 0);

  bufs.clear();
  uint64_t failures = 0;
  for (int i = 0; i < 20; ++i) {
    uintptr_t p = alloc.Allocate(size_t{2} << 20, 0, 0);
    if (p == 0) {
      ++failures;
    } else {
      bufs.push_back(p);
    }
  }
  EXPECT_EQ(failures, 0u);
  for (uintptr_t p : bufs) alloc.Free(p, 0, 0);
}

}  // namespace
}  // namespace wsc::tcmalloc
