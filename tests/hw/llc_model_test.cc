// Tests for the LLC locality model.

#include "hw/llc_model.h"

#include <gtest/gtest.h>

namespace wsc::hw {
namespace {

class LlcModelTest : public ::testing::Test {
 protected:
  LlcModelTest()
      : topo_(PlatformSpecFor(PlatformGeneration::kGenC)),
        llc_(&topo_, /*lines_per_domain=*/4096, /*seed=*/1) {}

  // gen-c: 16 cpus per domain.
  int CpuInDomain(int domain) { return domain * 16; }

  CpuTopology topo_;
  LlcModel llc_;
};

TEST_F(LlcModelTest, ColdAccessMissesToMemory) {
  double ns = llc_.AccessNs(0, 0x1000);
  EXPECT_DOUBLE_EQ(ns, topo_.spec().memory_latency_ns);
  EXPECT_EQ(llc_.stats().memory_misses, 1u);
}

TEST_F(LlcModelTest, RepeatAccessHitsLocally) {
  llc_.AccessNs(0, 0x1000);
  double ns = llc_.AccessNs(0, 0x1000);
  EXPECT_DOUBLE_EQ(ns, 0.0);
  EXPECT_EQ(llc_.stats().local_hits, 1u);
}

TEST_F(LlcModelTest, SameDomainSharingIsLocal) {
  llc_.AccessNs(CpuInDomain(0), 0x2000);
  // Another CPU in the same LLC domain hits locally.
  double ns = llc_.AccessNs(CpuInDomain(0) + 5, 0x2000);
  EXPECT_DOUBLE_EQ(ns, 0.0);
}

TEST_F(LlcModelTest, CrossDomainAccessPaysTransferAndMigrates) {
  llc_.AccessNs(CpuInDomain(0), 0x3000);
  double ns = llc_.AccessNs(CpuInDomain(1), 0x3000);
  EXPECT_DOUBLE_EQ(ns, topo_.spec().inter_domain_latency_ns);
  EXPECT_EQ(llc_.stats().remote_hits, 1u);
  // The line migrated: now local to domain 1, remote to domain 0.
  EXPECT_DOUBLE_EQ(llc_.AccessNs(CpuInDomain(1), 0x3000), 0.0);
  EXPECT_DOUBLE_EQ(llc_.AccessNs(CpuInDomain(0), 0x3000),
                   topo_.spec().inter_domain_latency_ns);
}

TEST_F(LlcModelTest, MpkiCountsRemoteAndMemoryMisses) {
  llc_.AccessNs(0, 0x100);          // memory miss
  llc_.AccessNs(CpuInDomain(1), 0x100);  // remote hit
  llc_.AccessNs(CpuInDomain(1), 0x100);  // local hit
  EXPECT_DOUBLE_EQ(llc_.stats().Mpki(1000), 2.0);
  EXPECT_DOUBLE_EQ(llc_.stats().Mpki(0), 0.0);
}

TEST_F(LlcModelTest, DifferentLinesAreIndependent) {
  llc_.AccessNs(0, 0x0);
  llc_.AccessNs(0, 0x40);  // next line: separate miss
  EXPECT_EQ(llc_.stats().memory_misses, 2u);
  // Same line, different byte: hit.
  llc_.AccessNs(0, 0x41);
  EXPECT_EQ(llc_.stats().local_hits, 1u);
}

TEST_F(LlcModelTest, EvictRangeDropsLines) {
  llc_.AccessNs(0, 0x8000);
  llc_.AccessNs(0, 0x8040);
  llc_.EvictRange(0x8000, 0x80);
  llc_.AccessNs(0, 0x8000);
  EXPECT_EQ(llc_.stats().memory_misses, 3u);
}

TEST_F(LlcModelTest, CapacityEvictionUnderPressure) {
  // Stream far more lines than one domain holds (4096): early lines are
  // eventually evicted.
  for (uint64_t i = 0; i < 100000; ++i) {
    llc_.AccessNs(0, i * 64);
  }
  llc_.ResetStats();
  llc_.AccessNs(0, 0);  // line 0 was evicted long ago
  EXPECT_EQ(llc_.stats().memory_misses, 1u);
}

TEST(LlcModelMonolithic, SingleDomainNeverRemote) {
  CpuTopology topo(PlatformSpecFor(PlatformGeneration::kGenA));
  LlcModel llc(&topo, 4096, 3);
  llc.AccessNs(0, 0x100);
  llc.AccessNs(topo.num_cpus() - 1, 0x100);
  EXPECT_EQ(llc.stats().remote_hits, 0u);
  EXPECT_EQ(llc.stats().local_hits, 1u);
}

}  // namespace
}  // namespace wsc::hw
