// Tests for the platform topology model.

#include "hw/topology.h"

#include <gtest/gtest.h>

namespace wsc::hw {
namespace {

TEST(PlatformSpec, DerivedCounts) {
  PlatformSpec spec;
  spec.sockets = 2;
  spec.llc_domains_per_socket = 4;
  spec.cores_per_domain = 8;
  spec.threads_per_core = 2;
  EXPECT_EQ(spec.num_domains(), 8);
  EXPECT_EQ(spec.num_cores(), 64);
  EXPECT_EQ(spec.num_cpus(), 128);
  EXPECT_TRUE(spec.is_nuca());
}

TEST(CpuTopology, SmtSiblingsShareCore) {
  CpuTopology topo(PlatformSpecFor(PlatformGeneration::kGenC));
  EXPECT_EQ(topo.CoreOfCpu(0), topo.CoreOfCpu(1));
  EXPECT_NE(topo.CoreOfCpu(1), topo.CoreOfCpu(2));
}

TEST(CpuTopology, DomainMappingIsContiguous) {
  // gen-c: 4 domains x 8 cores x 2 threads = 16 cpus per domain.
  CpuTopology topo(PlatformSpecFor(PlatformGeneration::kGenC));
  for (int cpu = 0; cpu < topo.num_cpus(); ++cpu) {
    EXPECT_EQ(topo.DomainOfCpu(cpu), cpu / 16);
  }
}

TEST(CpuTopology, SocketMapping) {
  CpuTopology topo(PlatformSpecFor(PlatformGeneration::kGenD));
  // gen-d: 2 sockets x 4 domains; domains 0-3 on socket 0.
  EXPECT_EQ(topo.SocketOfCpu(0), 0);
  EXPECT_EQ(topo.SocketOfCpu(topo.num_cpus() - 1), 1);
}

TEST(CpuTopology, TransferLatencyClasses) {
  CpuTopology topo(PlatformSpecFor(PlatformGeneration::kGenD));
  const PlatformSpec& spec = topo.spec();
  // Same domain.
  EXPECT_DOUBLE_EQ(topo.TransferLatencyNs(0, 2),
                   spec.intra_domain_latency_ns);
  // Different domain, same socket: cpus 0 and 16 (gen-d has 16 cpus per
  // domain).
  EXPECT_DOUBLE_EQ(topo.TransferLatencyNs(0, 16),
                   spec.inter_domain_latency_ns);
  // Different socket.
  EXPECT_DOUBLE_EQ(topo.TransferLatencyNs(0, topo.num_cpus() - 1),
                   spec.inter_socket_latency_ns);
}

TEST(CpuTopology, InterDomainRatioMatchesPaper) {
  // Fig. 11: inter-domain latency is 2.07x intra-domain.
  PlatformSpec spec = PlatformSpecFor(PlatformGeneration::kGenE);
  EXPECT_NEAR(spec.inter_domain_latency_ns / spec.intra_domain_latency_ns,
              2.07, 0.01);
}

TEST(PlatformGenerations, HyperthreadGrowthAcrossGenerations) {
  // Section 4.1: ~4x hyperthread growth over five platform generations.
  auto gens = AllPlatformGenerations();
  ASSERT_EQ(gens.size(), 5u);
  int first = PlatformSpecFor(gens.front()).num_cpus();
  int last = PlatformSpecFor(gens.back()).num_cpus();
  EXPECT_GE(last, 4 * first / 2);  // at least significant growth
  EXPECT_NEAR(static_cast<double>(last) / first, 4.0, 1.5);
}

TEST(PlatformGenerations, ChipletGensAreNuca) {
  EXPECT_FALSE(PlatformSpecFor(PlatformGeneration::kGenA).is_nuca());
  EXPECT_FALSE(PlatformSpecFor(PlatformGeneration::kGenB).is_nuca());
  EXPECT_TRUE(PlatformSpecFor(PlatformGeneration::kGenC).is_nuca());
  EXPECT_TRUE(PlatformSpecFor(PlatformGeneration::kGenD).is_nuca());
  EXPECT_TRUE(PlatformSpecFor(PlatformGeneration::kGenE).is_nuca());
}

TEST(CpuTopologyDeathTest, OutOfRangeCpuIsFatalInDebug) {
#ifndef NDEBUG
  CpuTopology topo(PlatformSpecFor(PlatformGeneration::kGenA));
  EXPECT_DEATH(topo.CoreOfCpu(topo.num_cpus()), "CHECK failed");
#else
  GTEST_SKIP() << "DCHECKs compiled out";
#endif
}

}  // namespace
}  // namespace wsc::hw
