// Tests for the dTLB simulator.

#include "hw/tlb.h"

#include <gtest/gtest.h>

namespace wsc::hw {
namespace {

constexpr uint64_t kPage4K = 4096;
constexpr uint64_t kPage2M = 2 * 1024 * 1024;

TEST(Tlb, FirstAccessWalksThenHits) {
  TlbSimulator tlb;
  double first = tlb.Access(0x1000000, false);
  EXPECT_GT(first, 0.0);  // cold: walk
  double second = tlb.Access(0x1000000, false);
  EXPECT_DOUBLE_EQ(second, 0.0);  // L1 hit
  EXPECT_EQ(tlb.stats().accesses, 2u);
  EXPECT_EQ(tlb.stats().l2_misses, 1u);
}

TEST(Tlb, SamePageDifferentOffsetHits) {
  TlbSimulator tlb;
  tlb.Access(0x1000000, false);
  EXPECT_DOUBLE_EQ(tlb.Access(0x1000000 + 100, false), 0.0);
  EXPECT_DOUBLE_EQ(tlb.Access(0x1000000 + 4095, false), 0.0);
  // The next 4 KiB page misses.
  EXPECT_GT(tlb.Access(0x1000000 + kPage4K, false), 0.0);
}

TEST(Tlb, HugepageEntryCovers2Mi) {
  TlbSimulator tlb;
  tlb.Access(0x40000000, true);
  // Anywhere within the same 2 MiB page hits.
  EXPECT_DOUBLE_EQ(tlb.Access(0x40000000 + kPage2M - 1, true), 0.0);
  EXPECT_GT(tlb.Access(0x40000000 + kPage2M, true), 0.0);
}

TEST(Tlb, HugepagesCoverFarMoreAddressSpace) {
  // Touch a working set of 64 MiB: with 4 KiB pages the L1+L2 thrash;
  // with 2 MiB pages everything fits in the L1.
  TlbConfig config;
  TlbSimulator small(config), huge(config);
  constexpr uint64_t kWorkingSet = 64ull << 20;
  for (int round = 0; round < 3; ++round) {
    for (uint64_t addr = 0; addr < kWorkingSet; addr += kPage4K) {
      small.Access(addr, false);
      huge.Access(addr, true);
    }
  }
  EXPECT_GT(small.stats().WalkRate(), 0.5);
  EXPECT_LT(huge.stats().WalkRate(), 0.01);
  EXPECT_GT(small.stats().stall_cycles, 100 * huge.stats().stall_cycles);
}

TEST(Tlb, L2CatchesL1Overflow) {
  TlbConfig config;
  config.l1_4k_entries = 4;
  config.l2_entries = 256;
  TlbSimulator tlb(config);
  // Touch 16 pages round-robin: misses L1 (4 entries) but fits L2.
  for (int round = 0; round < 4; ++round) {
    for (uint64_t p = 0; p < 16; ++p) tlb.Access(p * kPage4K, false);
  }
  EXPECT_GT(tlb.stats().l1_misses, tlb.stats().l2_misses);
  // Warm rounds never walk.
  uint64_t walks_after_warm = tlb.stats().l2_misses;
  for (uint64_t p = 0; p < 16; ++p) tlb.Access(p * kPage4K, false);
  EXPECT_EQ(tlb.stats().l2_misses, walks_after_warm);
}

TEST(Tlb, LruEvictsColdestEntry) {
  TlbConfig config;
  config.l1_4k_entries = 2;
  config.l2_entries = 4;
  TlbSimulator tlb(config);
  tlb.Access(0 * kPage4K, false);      // A
  tlb.Access(1 * kPage4K, false);      // B
  tlb.Access(0 * kPage4K, false);      // refresh A
  tlb.Access(2 * kPage4K, false);      // C evicts B (LRU)
  uint64_t l1_misses = tlb.stats().l1_misses;
  tlb.Access(0 * kPage4K, false);      // A still resident
  EXPECT_EQ(tlb.stats().l1_misses, l1_misses);
}

TEST(Tlb, FourKAnd2MDoNotAliasInL2) {
  TlbSimulator tlb;
  // The same numeric address as 4K and 2M mappings are distinct entries.
  tlb.Access(0, false);
  double cost = tlb.Access(0, true);
  EXPECT_GT(cost, 0.0);  // not a hit from the 4K entry
}

TEST(Tlb, FlushInvalidatesEverything) {
  TlbSimulator tlb;
  tlb.Access(0x5000, false);
  tlb.Flush();
  EXPECT_GT(tlb.Access(0x5000, false), 0.0);
}

TEST(Tlb, StatsResetKeepsEntries) {
  TlbSimulator tlb;
  tlb.Access(0x5000, false);
  tlb.ResetStats();
  EXPECT_EQ(tlb.stats().accesses, 0u);
  EXPECT_DOUBLE_EQ(tlb.Access(0x5000, false), 0.0);  // still cached
}

}  // namespace
}  // namespace wsc::hw
