// Tests for the core-to-core latency sweep (Fig. 11 harness).

#include "hw/latency_model.h"

#include <gtest/gtest.h>

namespace wsc::hw {
namespace {

TEST(LatencyModel, ChipletPlatformShowsNucaGap) {
  CpuTopology topo(PlatformSpecFor(PlatformGeneration::kGenC));
  CoreToCoreLatency lat = MeasureCoreToCore(topo);
  EXPECT_GT(lat.intra_domain_ns, 0.0);
  EXPECT_GT(lat.inter_domain_ns, lat.intra_domain_ns);
  // Fig. 11: inter-domain is 2.07x intra-domain.
  EXPECT_NEAR(lat.InterToIntraRatio(), 2.07, 0.02);
  // Single socket: no inter-socket pairs.
  EXPECT_DOUBLE_EQ(lat.inter_socket_ns, 0.0);
}

TEST(LatencyModel, DualSocketReportsSocketLatency) {
  CpuTopology topo(PlatformSpecFor(PlatformGeneration::kGenD));
  CoreToCoreLatency lat = MeasureCoreToCore(topo);
  EXPECT_GT(lat.inter_socket_ns, lat.inter_domain_ns);
}

TEST(LatencyModel, MonolithicPlatformHasNoInterDomain) {
  CpuTopology topo(PlatformSpecFor(PlatformGeneration::kGenA));
  CoreToCoreLatency lat = MeasureCoreToCore(topo);
  EXPECT_GT(lat.intra_domain_ns, 0.0);
  EXPECT_DOUBLE_EQ(lat.inter_domain_ns, 0.0);
  EXPECT_DOUBLE_EQ(lat.InterToIntraRatio(), 0.0);
}

}  // namespace
}  // namespace wsc::hw
