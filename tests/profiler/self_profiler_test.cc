// Tests for the sampling self-profiler core: scope stacks must stay
// balanced under early return and exceptions, the sampling cadence must
// be exact (it is the determinism guarantee), disabled scopes must be
// no-ops, and folded output must render and merge deterministically.

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>

#include "profiler/self_profiler.h"

namespace wsc::prof {
namespace {

TEST(SelfProfiler, DisabledScopesAreNoOps) {
  ASSERT_EQ(tls_profiler, nullptr);
  {
    WSC_PROF_SCOPE("never/Recorded");
    WSC_PROF_SCOPE("never/RecordedEither");
  }
  SelfProfiler profiler(1);
  EXPECT_EQ(profiler.ticks(), 0u);
  EXPECT_EQ(profiler.samples_taken(), 0u);
  EXPECT_TRUE(profiler.Folded().empty());
}

TEST(SelfProfiler, SamplingCadenceIsExact) {
  SelfProfiler profiler(5);
  ScopedInstall install(&profiler);
  for (int i = 0; i < 23; ++i) {
    WSC_PROF_SCOPE("loop/Body");
  }
  EXPECT_EQ(profiler.ticks(), 23u);
  EXPECT_EQ(profiler.samples_taken(), 4u);  // ticks 5, 10, 15, 20
  FoldedProfile folded = profiler.Folded();
  EXPECT_EQ(folded.total_ticks, 23u);
  EXPECT_EQ(folded.total_samples, 4u);
  EXPECT_EQ(folded.sample_interval, 5u);
  ASSERT_EQ(folded.stacks.count("loop/Body"), 1u);
  EXPECT_EQ(folded.stacks.at("loop/Body"), 4u);
}

TEST(SelfProfiler, ZeroIntervalClampsToEveryTick) {
  SelfProfiler profiler(0);
  EXPECT_EQ(profiler.sample_interval(), 1u);
  ScopedInstall install(&profiler);
  {
    WSC_PROF_SCOPE("a");
    WSC_PROF_SCOPE("b");
  }
  EXPECT_EQ(profiler.samples_taken(), 2u);
  FoldedProfile folded = profiler.Folded();
  EXPECT_EQ(folded.stacks.at("a"), 1u);
  EXPECT_EQ(folded.stacks.at("a;b"), 1u);
}

int ScopedEarlyReturn(SelfProfiler* profiler, int value) {
  ScopedInstall install(profiler);
  WSC_PROF_SCOPE("early/Return");
  if (value < 0) return -1;
  WSC_PROF_SCOPE("early/Deep");
  return value * 2;
}

TEST(SelfProfiler, StackBalancedOnEarlyReturn) {
  SelfProfiler profiler(1);
  EXPECT_EQ(ScopedEarlyReturn(&profiler, -5), -1);
  EXPECT_EQ(profiler.depth(), 0);
  EXPECT_EQ(ScopedEarlyReturn(&profiler, 5), 10);
  EXPECT_EQ(profiler.depth(), 0);
  FoldedProfile folded = profiler.Folded();
  EXPECT_EQ(folded.stacks.at("early/Return"), 2u);
  EXPECT_EQ(folded.stacks.at("early/Return;early/Deep"), 1u);
}

TEST(SelfProfiler, StackBalancedAcrossExceptions) {
  SelfProfiler profiler(1);
  ScopedInstall install(&profiler);
  try {
    WSC_PROF_SCOPE("throwing/Outer");
    WSC_PROF_SCOPE("throwing/Inner");
    throw std::runtime_error("unwind through the scopes");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(profiler.depth(), 0);
  {
    WSC_PROF_SCOPE("after/Unwind");
  }
  // The post-unwind scope must record at depth 1, not nested under the
  // unwound frames.
  FoldedProfile folded = profiler.Folded();
  EXPECT_EQ(folded.stacks.at("after/Unwind"), 1u);
  EXPECT_EQ(folded.stacks.count("throwing/Outer;after/Unwind"), 0u);
}

TEST(SelfProfiler, DeepStacksTruncateButStayBalanced) {
  SelfProfiler profiler(1);
  ScopedInstall install(&profiler);
  constexpr int kDepth = SelfProfiler::kMaxDepth + 8;

  // Recursive lambda: kDepth nested scopes, all sharing one frame name.
  auto recurse = [](auto&& self, int remaining) -> void {
    if (remaining == 0) return;
    WSC_PROF_SCOPE("deep/Frame");
    self(self, remaining - 1);
  };
  recurse(recurse, kDepth);

  EXPECT_EQ(profiler.depth(), 0);  // pops balanced past the truncation
  EXPECT_EQ(profiler.ticks(), static_cast<uint64_t>(kDepth));
  FoldedProfile folded = profiler.Folded();
  // The deepest samples keep only the outermost kMaxDepth frames.
  std::string deepest;
  for (int i = 0; i < SelfProfiler::kMaxDepth; ++i) {
    if (i > 0) deepest += ';';
    deepest += "deep/Frame";
  }
  uint64_t truncated = 0;
  for (const auto& [stack, count] : folded.stacks) {
    if (stack == deepest) truncated += count;
    EXPECT_LE(std::count(stack.begin(), stack.end(), ';'),
              SelfProfiler::kMaxDepth - 1);
  }
  // Frames beyond kMaxDepth all collapse onto the deepest stack key.
  EXPECT_EQ(truncated, static_cast<uint64_t>(kDepth - SelfProfiler::kMaxDepth + 1));
}

TEST(SelfProfiler, ProfScopeCapturesInstallAtEntry) {
  SelfProfiler outer(1);
  SelfProfiler inner(1);
  ScopedInstall install_outer(&outer);
  {
    WSC_PROF_SCOPE("swap/Outer");
    // Installing a different profiler mid-scope must not unbalance
    // either stack: the open scope pops from the profiler it pushed to.
    ScopedInstall install_inner(&inner);
    WSC_PROF_SCOPE("swap/Inner");
  }
  EXPECT_EQ(outer.depth(), 0);
  EXPECT_EQ(inner.depth(), 0);
  EXPECT_EQ(outer.Folded().stacks.count("swap/Outer"), 1u);
  EXPECT_EQ(inner.Folded().stacks.count("swap/Inner"), 1u);
  EXPECT_EQ(tls_profiler, &outer);  // install restored on scope exit
}

TEST(SelfProfiler, IdenticalSequencesRenderIdentically) {
  auto run = [] {
    SelfProfiler profiler(3);
    ScopedInstall install(&profiler);
    for (int i = 0; i < 50; ++i) {
      WSC_PROF_SCOPE("seq/Outer");
      if (i % 2 == 0) {
        WSC_PROF_SCOPE("seq/Even");
      } else {
        WSC_PROF_SCOPE("seq/Odd");
      }
    }
    return RenderFolded(profiler.Folded());
  };
  EXPECT_EQ(run(), run());
}

TEST(FoldedProfile, MergeAddsCountsAndAdoptsInterval) {
  SelfProfiler a(1), b(1);
  {
    ScopedInstall install(&a);
    WSC_PROF_SCOPE("m/Shared");
  }
  {
    ScopedInstall install(&b);
    WSC_PROF_SCOPE("m/Shared");
    WSC_PROF_SCOPE("m/OnlyB");
  }
  FoldedProfile merged;  // starts empty, interval unset
  merged.MergeFrom(a.Folded());
  merged.MergeFrom(b.Folded());
  EXPECT_EQ(merged.stacks.at("m/Shared"), 2u);
  EXPECT_EQ(merged.stacks.at("m/Shared;m/OnlyB"), 1u);
  EXPECT_EQ(merged.total_samples, 3u);
  EXPECT_EQ(merged.total_ticks, 3u);
  EXPECT_EQ(merged.sample_interval, 1u);
}

TEST(FoldedProfile, RenderersEmitSortedStacksAndJsonFields) {
  SelfProfiler profiler(1);
  {
    ScopedInstall install(&profiler);
    WSC_PROF_SCOPE("r/B");
  }
  {
    ScopedInstall install(&profiler);
    WSC_PROF_SCOPE("r/A");
  }
  FoldedProfile folded = profiler.Folded();
  EXPECT_EQ(RenderFolded(folded), "r/A 1\nr/B 1\n");
  std::string json = RenderFoldedJson(folded);
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"selfprof\""), std::string::npos);
  EXPECT_NE(json.find("\"sample_interval\":1"), std::string::npos);
  EXPECT_NE(json.find("\"total_samples\":2"), std::string::npos);
  EXPECT_NE(json.find("{\"stack\":\"r/A\",\"samples\":1}"),
            std::string::npos);
}

TEST(FoldedProfile, EmptyProfileRendersIdleOnlyWhenSampled) {
  // A profiler that never saw a scope renders empty; Pop() at depth zero
  // is tolerated (defensive, cannot happen through ProfScope).
  SelfProfiler profiler(1);
  profiler.Pop();
  EXPECT_EQ(profiler.depth(), 0);
  EXPECT_EQ(RenderFolded(profiler.Folded()), "");
}

}  // namespace
}  // namespace wsc::prof
