// Tests for the self-profiler's fleet-level guarantees: profiles of a
// deterministic simulated run must be bit-identical for any worker
// thread count, enabling profiling must not perturb simulation results,
// and the enabled overhead must stay within a loose sanity bound (the
// strict <2% wall-clock budget is measured on fig03 in EXPERIMENTS.md —
// CI machines are too noisy to gate tightly here).

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "fleet/experiment.h"
#include "fleet/fleet.h"
#include "profiler/self_profiler.h"

namespace wsc::fleet {
namespace {

FleetConfig SmallFleet() {
  FleetConfig config;
  config.num_machines = 5;
  config.num_binaries = 12;
  config.min_colocated = 1;
  config.max_colocated = 2;
  config.duration = Milliseconds(300);
  config.max_requests_per_process = 2000;
  return config;
}

std::string RunAndRenderProfile(int num_threads, uint64_t seed) {
  FleetConfig config = SmallFleet();
  config.selfprof_interval = 97;
  tcmalloc::AllocatorConfig allocator;
  Fleet fleet(config, allocator, seed);
  fleet.Run(num_threads);
  return prof::RenderFolded(MergedSelfProfile(fleet.observations()));
}

TEST(ProfilerDeterminism, FoldedOutputIdenticalForAnyThreadCount) {
  std::string sequential = RunAndRenderProfile(1, 31337);
  std::string parallel = RunAndRenderProfile(8, 31337);
  ASSERT_FALSE(sequential.empty());
  EXPECT_EQ(sequential, parallel);  // byte-identical, not just similar
}

TEST(ProfilerDeterminism, ProfileCoversAllocatorAndFleetTiers) {
  std::string folded = RunAndRenderProfile(4, 4242);
  // The ISSUE's required instrumentation tiers all show up in a real run.
  for (const char* frame :
       {"machine/ProcessLoop", "driver/Step", "allocator/Allocate",
        "allocator/Free", "cpu_cache/Pop", "cpu_cache/Push"}) {
    EXPECT_NE(folded.find(frame), std::string::npos)
        << "frame missing from fleet profile: " << frame;
  }
}

TEST(ProfilerDeterminism, ProfilingDoesNotPerturbSimResults) {
  tcmalloc::AllocatorConfig allocator;
  FleetConfig off_config = SmallFleet();
  FleetConfig on_config = SmallFleet();
  on_config.selfprof_interval = 97;

  Fleet off(off_config, allocator, 777);
  off.Run(2);
  Fleet on(on_config, allocator, 777);
  on.Run(2);

  const auto& a = off.observations();
  const auto& b = on.observations();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a[i].result.driver.requests, b[i].result.driver.requests);
    EXPECT_EQ(a[i].result.driver.allocations,
              b[i].result.driver.allocations);
    EXPECT_EQ(a[i].result.driver.malloc_ns, b[i].result.driver.malloc_ns);
    EXPECT_EQ(a[i].result.avg_heap_bytes, b[i].result.avg_heap_bytes);
    EXPECT_TRUE(a[i].result.self_profile.empty());
    EXPECT_FALSE(b[i].result.self_profile.empty());
  }
}

TEST(ProfilerDeterminism, MergedProfileTotalsAreConsistent) {
  FleetConfig config = SmallFleet();
  config.selfprof_interval = 97;
  tcmalloc::AllocatorConfig allocator;
  Fleet fleet(config, allocator, 2024);
  fleet.Run(3);
  prof::FoldedProfile merged = MergedSelfProfile(fleet.observations());
  ASSERT_FALSE(merged.empty());
  EXPECT_EQ(merged.sample_interval, 97u);
  uint64_t stack_sum = 0;
  for (const auto& [stack, count] : merged.stacks) stack_sum += count;
  EXPECT_EQ(stack_sum, merged.total_samples);
  // Every tick between samples is accounted for: N samples need at least
  // N * interval ticks.
  EXPECT_GE(merged.total_ticks, merged.total_samples * 97);
}

TEST(ProfilerDeterminism, EnabledOverheadWithinLooseBound) {
  // Loose catastrophic-regression tripwire only: wall clock on shared CI
  // runners jitters far beyond the real budget. The strict <2% number is
  // measured with interleaved A/B runs of fig03 (see EXPERIMENTS.md).
  tcmalloc::AllocatorConfig allocator;
  auto wall = [&](uint64_t interval) {
    FleetConfig config = SmallFleet();
    config.selfprof_interval = interval;
    Fleet fleet(config, allocator, 555);
    auto start = std::chrono::steady_clock::now();
    fleet.Run(2);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  double off = wall(0);
  double on = wall(97);
  EXPECT_LT(on, off * 3.0 + 0.25)
      << "profiling-enabled run took " << on << "s vs " << off
      << "s disabled";
}

}  // namespace
}  // namespace wsc::fleet
