file(REMOVE_RECURSE
  "CMakeFiles/nuca_placement.dir/nuca_placement.cpp.o"
  "CMakeFiles/nuca_placement.dir/nuca_placement.cpp.o.d"
  "nuca_placement"
  "nuca_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nuca_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
