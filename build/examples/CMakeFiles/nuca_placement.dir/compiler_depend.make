# Empty compiler generated dependencies file for nuca_placement.
# This may be replaced when dependencies are built.
