file(REMOVE_RECURSE
  "CMakeFiles/fleet_ab_experiment.dir/fleet_ab_experiment.cpp.o"
  "CMakeFiles/fleet_ab_experiment.dir/fleet_ab_experiment.cpp.o.d"
  "fleet_ab_experiment"
  "fleet_ab_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_ab_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
