# Empty compiler generated dependencies file for fleet_ab_experiment.
# This may be replaced when dependencies are built.
