# Empty compiler generated dependencies file for ablation_cpu_capacity.
# This may be replaced when dependencies are built.
