file(REMOVE_RECURSE
  "CMakeFiles/ablation_cpu_capacity.dir/ablation_cpu_capacity.cc.o"
  "CMakeFiles/ablation_cpu_capacity.dir/ablation_cpu_capacity.cc.o.d"
  "ablation_cpu_capacity"
  "ablation_cpu_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cpu_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
