file(REMOVE_RECURSE
  "CMakeFiles/fig16_capacity_return.dir/fig16_capacity_return.cc.o"
  "CMakeFiles/fig16_capacity_return.dir/fig16_capacity_return.cc.o.d"
  "fig16_capacity_return"
  "fig16_capacity_return.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_capacity_return.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
