# Empty dependencies file for fig16_capacity_return.
# This may be replaced when dependencies are built.
