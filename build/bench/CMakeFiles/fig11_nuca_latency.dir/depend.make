# Empty dependencies file for fig11_nuca_latency.
# This may be replaced when dependencies are built.
