# Empty compiler generated dependencies file for sec45_combined.
# This may be replaced when dependencies are built.
