file(REMOVE_RECURSE
  "CMakeFiles/sec45_combined.dir/sec45_combined.cc.o"
  "CMakeFiles/sec45_combined.dir/sec45_combined.cc.o.d"
  "sec45_combined"
  "sec45_combined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec45_combined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
