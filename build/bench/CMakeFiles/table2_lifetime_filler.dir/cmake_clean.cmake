file(REMOVE_RECURSE
  "CMakeFiles/table2_lifetime_filler.dir/table2_lifetime_filler.cc.o"
  "CMakeFiles/table2_lifetime_filler.dir/table2_lifetime_filler.cc.o.d"
  "table2_lifetime_filler"
  "table2_lifetime_filler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_lifetime_filler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
