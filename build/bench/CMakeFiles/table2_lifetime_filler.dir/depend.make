# Empty dependencies file for table2_lifetime_filler.
# This may be replaced when dependencies are built.
