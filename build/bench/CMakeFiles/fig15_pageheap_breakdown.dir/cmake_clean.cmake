file(REMOVE_RECURSE
  "CMakeFiles/fig15_pageheap_breakdown.dir/fig15_pageheap_breakdown.cc.o"
  "CMakeFiles/fig15_pageheap_breakdown.dir/fig15_pageheap_breakdown.cc.o.d"
  "fig15_pageheap_breakdown"
  "fig15_pageheap_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_pageheap_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
