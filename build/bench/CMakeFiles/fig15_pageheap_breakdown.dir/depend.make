# Empty dependencies file for fig15_pageheap_breakdown.
# This may be replaced when dependencies are built.
