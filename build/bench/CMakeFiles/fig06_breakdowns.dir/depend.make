# Empty dependencies file for fig06_breakdowns.
# This may be replaced when dependencies are built.
