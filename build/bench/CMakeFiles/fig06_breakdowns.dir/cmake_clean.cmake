file(REMOVE_RECURSE
  "CMakeFiles/fig06_breakdowns.dir/fig06_breakdowns.cc.o"
  "CMakeFiles/fig06_breakdowns.dir/fig06_breakdowns.cc.o.d"
  "fig06_breakdowns"
  "fig06_breakdowns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_breakdowns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
