
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_resize_policy.cc" "bench/CMakeFiles/ablation_resize_policy.dir/ablation_resize_policy.cc.o" "gcc" "bench/CMakeFiles/ablation_resize_policy.dir/ablation_resize_policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fleet/CMakeFiles/wsc_fleet.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/wsc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/tcmalloc/CMakeFiles/wsc_tcmalloc.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/wsc_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wsc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
