file(REMOVE_RECURSE
  "CMakeFiles/ablation_resize_policy.dir/ablation_resize_policy.cc.o"
  "CMakeFiles/ablation_resize_policy.dir/ablation_resize_policy.cc.o.d"
  "ablation_resize_policy"
  "ablation_resize_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_resize_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
