file(REMOVE_RECURSE
  "CMakeFiles/ablation_filler_threshold.dir/ablation_filler_threshold.cc.o"
  "CMakeFiles/ablation_filler_threshold.dir/ablation_filler_threshold.cc.o.d"
  "ablation_filler_threshold"
  "ablation_filler_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_filler_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
