# Empty compiler generated dependencies file for fig09_vcpu_dynamics.
# This may be replaced when dependencies are built.
