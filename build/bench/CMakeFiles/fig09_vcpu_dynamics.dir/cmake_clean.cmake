file(REMOVE_RECURSE
  "CMakeFiles/fig09_vcpu_dynamics.dir/fig09_vcpu_dynamics.cc.o"
  "CMakeFiles/fig09_vcpu_dynamics.dir/fig09_vcpu_dynamics.cc.o.d"
  "fig09_vcpu_dynamics"
  "fig09_vcpu_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_vcpu_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
