# Empty compiler generated dependencies file for fig03_fleet_cdf.
# This may be replaced when dependencies are built.
