file(REMOVE_RECURSE
  "CMakeFiles/fig03_fleet_cdf.dir/fig03_fleet_cdf.cc.o"
  "CMakeFiles/fig03_fleet_cdf.dir/fig03_fleet_cdf.cc.o.d"
  "fig03_fleet_cdf"
  "fig03_fleet_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_fleet_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
