file(REMOVE_RECURSE
  "CMakeFiles/ablation_cfl_lists.dir/ablation_cfl_lists.cc.o"
  "CMakeFiles/ablation_cfl_lists.dir/ablation_cfl_lists.cc.o.d"
  "ablation_cfl_lists"
  "ablation_cfl_lists.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cfl_lists.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
