# Empty compiler generated dependencies file for ablation_cfl_lists.
# This may be replaced when dependencies are built.
