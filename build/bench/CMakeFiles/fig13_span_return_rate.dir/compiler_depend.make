# Empty compiler generated dependencies file for fig13_span_return_rate.
# This may be replaced when dependencies are built.
