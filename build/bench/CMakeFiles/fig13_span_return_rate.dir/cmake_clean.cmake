file(REMOVE_RECURSE
  "CMakeFiles/fig13_span_return_rate.dir/fig13_span_return_rate.cc.o"
  "CMakeFiles/fig13_span_return_rate.dir/fig13_span_return_rate.cc.o.d"
  "fig13_span_return_rate"
  "fig13_span_return_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_span_return_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
