file(REMOVE_RECURSE
  "CMakeFiles/table1_nuca_transfer_cache.dir/table1_nuca_transfer_cache.cc.o"
  "CMakeFiles/table1_nuca_transfer_cache.dir/table1_nuca_transfer_cache.cc.o.d"
  "table1_nuca_transfer_cache"
  "table1_nuca_transfer_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_nuca_transfer_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
