# Empty compiler generated dependencies file for table1_nuca_transfer_cache.
# This may be replaced when dependencies are built.
