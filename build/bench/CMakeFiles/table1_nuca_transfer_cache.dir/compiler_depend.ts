# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for table1_nuca_transfer_cache.
