# Empty dependencies file for fig05_cycles_and_frag.
# This may be replaced when dependencies are built.
