file(REMOVE_RECURSE
  "CMakeFiles/fig05_cycles_and_frag.dir/fig05_cycles_and_frag.cc.o"
  "CMakeFiles/fig05_cycles_and_frag.dir/fig05_cycles_and_frag.cc.o.d"
  "fig05_cycles_and_frag"
  "fig05_cycles_and_frag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_cycles_and_frag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
