# Empty compiler generated dependencies file for fig08_lifetimes.
# This may be replaced when dependencies are built.
