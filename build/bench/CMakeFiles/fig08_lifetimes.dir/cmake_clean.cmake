file(REMOVE_RECURSE
  "CMakeFiles/fig08_lifetimes.dir/fig08_lifetimes.cc.o"
  "CMakeFiles/fig08_lifetimes.dir/fig08_lifetimes.cc.o.d"
  "fig08_lifetimes"
  "fig08_lifetimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_lifetimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
