# Empty dependencies file for fig07_object_cdf.
# This may be replaced when dependencies are built.
